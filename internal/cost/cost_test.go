package cost

import (
	"testing"

	"gemini/internal/arch"
)

func TestSimbaD2DAreaFraction(t *testing.T) {
	e := New()
	cfg := arch.Simba()
	b := e.Evaluate(&cfg)
	// Paper Sec. VI-B1: under S-Arch nearly 40% of chip area is D2D.
	if b.D2DAreaFraction < 0.3 || b.D2DAreaFraction > 0.5 {
		t.Errorf("S-Arch D2D fraction = %.2f, want ~0.4", b.D2DAreaFraction)
	}
	cfgG := arch.GArch72()
	bg := e.Evaluate(&cfgG)
	if bg.D2DAreaFraction >= b.D2DAreaFraction/2 {
		t.Errorf("G-Arch D2D fraction %.2f should be far below S-Arch %.2f", bg.D2DAreaFraction, b.D2DAreaFraction)
	}
}

func TestYieldDecreasesWithArea(t *testing.T) {
	e := New()
	prev := 1.0
	for _, area := range []float64{10, 40, 100, 400, 800} {
		y := e.yield(area)
		if y >= prev {
			t.Errorf("yield(%v) = %v not decreasing", area, y)
		}
		if y <= 0 || y > 1 {
			t.Errorf("yield(%v) = %v outside (0,1]", area, y)
		}
		prev = y
	}
	if y := e.yield(e.Tech.AreaUnit); y != e.Tech.YieldUnit {
		t.Errorf("yield(unit area) = %v, want %v", y, e.Tech.YieldUnit)
	}
}

func TestMCComponentsPositive(t *testing.T) {
	e := New()
	for _, cfg := range []arch.Config{arch.Simba(), arch.GArch72(), arch.Grayskull()} {
		b := e.Evaluate(&cfg)
		if b.ComputeSilicon <= 0 || b.IOSilicon <= 0 || b.DRAM <= 0 || b.Substrate <= 0 {
			t.Errorf("%s: non-positive component %+v", cfg.Name, b)
		}
		if b.Total() != b.ComputeSilicon+b.IOSilicon+b.DRAM+b.Substrate {
			t.Errorf("%s: Total mismatch", cfg.Name)
		}
	}
}

func TestMonolithicCheaperPackaging(t *testing.T) {
	e := New()
	mono := arch.GArch72()
	mono.XCut, mono.YCut = 1, 1
	multi := arch.GArch72()
	bm := e.Evaluate(&mono)
	bc := e.Evaluate(&multi)
	if bm.Substrate >= bc.Substrate {
		t.Errorf("monolithic substrate %v should be cheaper than chiplet %v", bm.Substrate, bc.Substrate)
	}
	if e.D2DCount(&mono) != 0 {
		t.Error("monolithic chip should have no D2D interfaces")
	}
}

func TestFinerChipletsWorseMC(t *testing.T) {
	// Paper insight 1: overly fine-grained partitions (Simba's 36) cost
	// more than moderate ones (2) at the same resources.
	e := New()
	two := arch.GArch72()
	fine := arch.GArch72()
	fine.XCut, fine.YCut = 6, 6
	b2 := e.Evaluate(&two)
	b36 := e.Evaluate(&fine)
	if b36.Total() <= b2.Total() {
		t.Errorf("36 chiplets (%v) should cost more than 2 (%v)", b36.Total(), b2.Total())
	}
	if b36.D2DAreaFraction <= b2.D2DAreaFraction {
		t.Error("finer partitioning should raise the D2D area share")
	}
}

func TestChipletsBeatMonolithicAtScale(t *testing.T) {
	// At 512 TOPs-class dies the yield term dominates: moderate chiplet
	// counts must beat one huge die (paper Fig. 6(a)).
	e := New()
	mono := arch.Config{
		CoresX: 16, CoresY: 16, XCut: 1, YCut: 1,
		NoCBW: 64, D2DBW: 32, DRAMBW: 512,
		MACsPerCore: 1024, GLBPerCore: 2 * arch.MB, FreqGHz: 1,
	}
	quad := mono
	quad.XCut, quad.YCut = 2, 2
	bm := e.Evaluate(&mono)
	bq := e.Evaluate(&quad)
	if bq.Total() >= bm.Total() {
		t.Errorf("4 chiplets (%v) should beat a %0.f mm^2 monolith (%v)",
			bq.Total(), bm.ComputeChipletArea, bm.Total())
	}
	if bq.ComputeYield <= bm.ComputeYield {
		t.Error("smaller chiplets must yield better")
	}
}

func TestMCIncreasesWithResources(t *testing.T) {
	e := New()
	base := arch.GArch72()
	b0 := e.Evaluate(&base)

	bigGLB := base
	bigGLB.GLBPerCore *= 4
	if e.Evaluate(&bigGLB).Total() <= b0.Total() {
		t.Error("4x GLB should raise MC")
	}
	bigMAC := base
	bigMAC.MACsPerCore *= 4
	if e.Evaluate(&bigMAC).Total() <= b0.Total() {
		t.Error("4x MACs should raise MC")
	}
	bigDRAM := base
	bigDRAM.DRAMBW *= 2
	if e.Evaluate(&bigDRAM).Total() <= b0.Total() {
		t.Error("2x DRAM BW should raise MC")
	}
	bigD2D := base
	bigD2D.D2DBW *= 4
	if e.Evaluate(&bigD2D).Total() <= b0.Total() {
		t.Error("4x D2D BW should raise MC")
	}
}

func TestMoreCoresRaiseMC(t *testing.T) {
	// Paper insight 2: finer core granularity (more cores at constant
	// TOPs, each still carrying full per-core overheads) raises MC.
	e := New()
	coarse := arch.Config{ // 9 cores x 8192 MACs
		CoresX: 3, CoresY: 3, XCut: 1, YCut: 1,
		NoCBW: 32, DRAMBW: 144, MACsPerCore: 8192, GLBPerCore: 2 * arch.MB, FreqGHz: 1,
	}
	fine := arch.Config{ // 72 cores x 1024 MACs
		CoresX: 9, CoresY: 8, XCut: 1, YCut: 1,
		NoCBW: 32, DRAMBW: 144, MACsPerCore: 1024, GLBPerCore: 2 * arch.MB, FreqGHz: 1,
	}
	bc := e.Evaluate(&coarse)
	bf := e.Evaluate(&fine)
	if bf.Total() <= bc.Total() {
		t.Errorf("72 cores (%v) should cost more than 9 (%v) at equal TOPs", bf.Total(), bc.Total())
	}
}

func TestDRAMCost(t *testing.T) {
	e := New()
	cfg := arch.GArch72() // 144 GB/s -> 5 dies
	b := e.Evaluate(&cfg)
	if want := 5 * e.Tech.DRAMDiePrice; b.DRAM != want {
		t.Errorf("DRAM cost = %v, want %v", b.DRAM, want)
	}
}

func TestTierPrice(t *testing.T) {
	tiers := DefaultTech().ChipletTiers
	if tierPrice(tiers, 100) != 0.02 {
		t.Error("small substrate should use first tier")
	}
	if tierPrice(tiers, 1000) != 0.03 {
		t.Error("medium substrate should use second tier")
	}
	if tierPrice(tiers, 5000) != 0.045 {
		t.Error("large substrate should use last tier")
	}
	if tierPrice(nil, 100) != 0 {
		t.Error("no tiers should price 0")
	}
}
