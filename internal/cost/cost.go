// Package cost implements the Monetary Cost Evaluator of the Gemini
// framework (Sec. V-C): silicon die costs with an area-dependent yield
// model, DRAM die costs, and substrate/packaging costs that depend on
// whether chiplet integration is used. MC depends only on the architecture,
// never on the workload or mapping.
//
//gemini:deterministic
package cost

import (
	"math"

	"gemini/internal/arch"
)

// Tech holds the cost-model constants. Areas in mm^2, money in USD.
// Values are calibrated so that the S-Arch chiplet spends ~40% of its area
// on D2D interfaces (paper Sec. VI-B1) and yield/packaging trends match
// Sec. V-C; see DESIGN.md §2.
type Tech struct {
	MACArea       float64 // mm^2 per int8 MAC
	GLBAreaPerMB  float64
	CoreMiscArea  float64 // control, DMA, router baseline
	NoCAreaPerGBs float64 // per-core NoC area per GB/s of link bandwidth

	D2DFixedArea  float64 // PHY + controller baseline per interface
	D2DAreaPerGBs float64

	DRAMPHYArea float64 // per DRAM controller on the IO chiplet
	IOMiscArea  float64 // PCIe/host PHYs per IO chiplet

	SiliconPerMM2 float64 // $ per mm^2 of good die area basis
	YieldUnit     float64 // yield of one AreaUnit of silicon
	AreaUnit      float64 // mm^2 (paper: 40 mm^2, Yield 0.9 @12nm)

	DRAMDiePrice float64 // $ per GDDR6 die (32 GB/s)

	// Substrate parameters (paper Sec. V-C): fan-out for monolithic chips,
	// high-density organic for chiplet integration, with area-tiered cost.
	FanoutScale        float64
	FanoutPerMM2       float64
	ChipletScale       float64
	ChipletTiers       []Tier
	PackageYieldPerDie float64
}

// Tier maps a substrate area bound to a cost per mm^2.
type Tier struct {
	MaxArea float64 // mm^2; the last tier should be +Inf-ish
	PerMM2  float64
}

// DefaultTech returns the calibrated 12 nm / organic-substrate constants.
func DefaultTech() Tech {
	return Tech{
		MACArea:       0.0005,
		GLBAreaPerMB:  1.0,
		CoreMiscArea:  0.3,
		NoCAreaPerGBs: 0.002,

		D2DFixedArea:  0.1,
		D2DAreaPerGBs: 0.012,

		DRAMPHYArea: 2.0,
		IOMiscArea:  4.0,

		SiliconPerMM2: 0.15,
		YieldUnit:     0.82,
		AreaUnit:      40,

		DRAMDiePrice: 3.5,

		FanoutScale:  1.2,
		FanoutPerMM2: 0.005,
		ChipletScale: 2.0,
		ChipletTiers: []Tier{
			{MaxArea: 500, PerMM2: 0.02},
			{MaxArea: 1500, PerMM2: 0.03},
			{MaxArea: 1e18, PerMM2: 0.045},
		},
		PackageYieldPerDie: 0.99,
	}
}

// Breakdown is the MC of one accelerator, split as in the paper's Fig. 5/7
// MC stacks (DRAM, chiplet manufacturing = silicon, substrate = packaging).
type Breakdown struct {
	ComputeSilicon float64
	IOSilicon      float64
	DRAM           float64
	Substrate      float64

	// Diagnostics for the Fig. 8(a) yield/area curves.
	ComputeChipletArea float64 // mm^2 of one computing chiplet
	TotalSiliconArea   float64 // all dies
	ComputeYield       float64 // yield of one computing chiplet
	D2DAreaFraction    float64 // share of a computing chiplet spent on D2D
}

// Total sums all MC components.
func (b Breakdown) Total() float64 {
	return b.ComputeSilicon + b.IOSilicon + b.DRAM + b.Substrate
}

// Silicon sums die manufacturing costs.
func (b Breakdown) Silicon() float64 { return b.ComputeSilicon + b.IOSilicon }

// Evaluator computes MC under a technology model.
type Evaluator struct {
	Tech Tech
}

// New returns an evaluator with the default technology constants.
func New() *Evaluator { return &Evaluator{Tech: DefaultTech()} }

// yield returns the paper's yield model: YieldUnit^(area/AreaUnit).
func (e *Evaluator) yield(area float64) float64 {
	return pow(e.Tech.YieldUnit, area/e.Tech.AreaUnit)
}

// dieCost returns area/yield * silicon price (paper Sec. V-C).
func (e *Evaluator) dieCost(area float64) float64 {
	if area <= 0 {
		return 0
	}
	return area / e.yield(area) * e.Tech.SiliconPerMM2
}

// CoreArea returns the silicon area of one computing core.
func (e *Evaluator) CoreArea(cfg *arch.Config) float64 {
	t := e.Tech
	return t.MACArea*float64(cfg.MACsPerCore) +
		t.GLBAreaPerMB*float64(cfg.GLBPerCore)/float64(arch.MB) +
		t.CoreMiscArea +
		t.NoCAreaPerGBs*cfg.NoCBW
}

// D2DCount returns the D2D interfaces on one computing chiplet: one per
// edge core on each of the four sides (paper Sec. III), zero for a
// monolithic chip.
func (e *Evaluator) D2DCount(cfg *arch.Config) int {
	if cfg.Chiplets() <= 1 {
		return 0
	}
	return 2 * (cfg.ChipletW() + cfg.ChipletH())
}

// ComputeChipletArea returns one computing chiplet's area.
func (e *Evaluator) ComputeChipletArea(cfg *arch.Config) float64 {
	t := e.Tech
	cores := float64(cfg.ChipletW() * cfg.ChipletH())
	d2d := float64(e.D2DCount(cfg)) * (t.D2DFixedArea + t.D2DAreaPerGBs*cfg.D2DBW)
	return cores*e.CoreArea(cfg) + d2d
}

// ioChiplets returns per-IO-chiplet areas (two IO chiplets flank the core
// array, splitting the DRAM controllers).
func (e *Evaluator) ioChiplets(cfg *arch.Config) []float64 {
	d := cfg.DRAMControllers()
	left := (d + 1) / 2
	right := d - left
	t := e.Tech
	out := []float64{t.IOMiscArea + t.DRAMPHYArea*float64(left)}
	if right > 0 {
		out = append(out, t.IOMiscArea+t.DRAMPHYArea*float64(right))
	}
	return out
}

// Evaluate computes the full MC breakdown of an architecture.
func (e *Evaluator) Evaluate(cfg *arch.Config) Breakdown {
	t := e.Tech
	var b Breakdown

	chipArea := e.ComputeChipletArea(cfg)
	n := cfg.Chiplets()
	b.ComputeChipletArea = chipArea
	b.ComputeYield = e.yield(chipArea)
	if d2d := float64(e.D2DCount(cfg)) * (t.D2DFixedArea + t.D2DAreaPerGBs*cfg.D2DBW); chipArea > 0 {
		b.D2DAreaFraction = d2d / chipArea
	}
	b.ComputeSilicon = float64(n) * e.dieCost(chipArea)
	b.TotalSiliconArea = float64(n) * chipArea

	ios := e.ioChiplets(cfg)
	for _, a := range ios {
		b.IOSilicon += e.dieCost(a)
		b.TotalSiliconArea += a
	}

	b.DRAM = float64(cfg.DRAMControllers()) * t.DRAMDiePrice

	dies := n + len(ios)
	pkgYield := pow(t.PackageYieldPerDie, float64(dies))
	if n > 1 {
		sub := b.TotalSiliconArea * t.ChipletScale
		b.Substrate = sub * tierPrice(t.ChipletTiers, sub) / pkgYield
	} else {
		sub := b.TotalSiliconArea * t.FanoutScale
		b.Substrate = sub * t.FanoutPerMM2 / pkgYield
	}
	return b
}

func tierPrice(tiers []Tier, area float64) float64 {
	for _, t := range tiers {
		if area <= t.MaxArea {
			return t.PerMM2
		}
	}
	if len(tiers) == 0 {
		return 0
	}
	return tiers[len(tiers)-1].PerMM2
}

func pow(base, exp float64) float64 {
	if base <= 0 {
		return 0
	}
	return math.Pow(base, exp)
}
