package cost

import (
	"testing"

	"gemini/internal/arch"
)

func TestNREDesignCostGrowsWithArea(t *testing.T) {
	n := DefaultNRE()
	small, big := n.DesignCost(20), n.DesignCost(200)
	if big <= small {
		t.Errorf("bigger die should cost more NRE: %v vs %v", big, small)
	}
	if small <= n.PerDesignBase {
		t.Errorf("area term missing: %v", small)
	}
}

func TestAmortizationFavorsReuseAtLowVolume(t *testing.T) {
	// Two accelerators built from one shared chiplet design pay one NRE;
	// two bespoke designs pay two. At low volume the shared line wins even
	// with a worse recurring cost — the paper's Sec. VII-B argument.
	e := New()
	n := DefaultNRE()
	g := arch.GArch72()
	b := e.Evaluate(&g)
	chipletArea := e.ComputeChipletArea(&g)

	volume := 10_000.0
	shared := AmortizeProductLine(n, b, []float64{chipletArea}, volume)
	// The bespoke line needs two die designs for the two scales.
	bespokeRecurring := b
	bespokeRecurring.ComputeSilicon *= 0.9 // bespoke dies are 10% cheaper to make
	bespoke := AmortizeProductLine(n, bespokeRecurring, []float64{chipletArea, chipletArea * 2}, volume)

	if shared.Total() >= bespoke.Total() {
		t.Errorf("at %0.f units, shared design (%v) should beat bespoke (%v)",
			volume, shared.Total(), bespoke.Total())
	}
	// At huge volume the NRE washes out and the cheaper recurring wins.
	volume = 100_000_000
	shared = AmortizeProductLine(n, b, []float64{chipletArea}, volume)
	bespoke = AmortizeProductLine(n, bespokeRecurring, []float64{chipletArea, chipletArea * 2}, volume)
	if bespoke.Total() >= shared.Total() {
		t.Errorf("at huge volume, bespoke recurring advantage should win: %v vs %v",
			bespoke.Total(), shared.Total())
	}
}

func TestAmortizeDegenerateVolume(t *testing.T) {
	n := DefaultNRE()
	a := AmortizeProductLine(n, Breakdown{}, []float64{40}, 0)
	if a.NREPerUnit != n.DesignCost(40) {
		t.Errorf("zero volume should clamp to 1 unit: %v", a.NREPerUnit)
	}
}
