package cost

// NRE models the non-recurring engineering costs the paper's Sec. VII-B
// argues chiplet reuse amortizes: design, verification, IP licensing, and
// mask/tape-out, paid once per distinct die design and divided over the
// production volume. The paper discusses this qualitatively ("NRE costs
// tend to grow non-linearly with process advancement"); this extension
// makes the reuse argument quantitative.
type NRE struct {
	// PerDesignBase is the fixed cost of taping out one die design
	// (masks, verification) in dollars.
	PerDesignBase float64
	// PerMM2 adds design/IP effort proportional to the die area.
	PerMM2 float64
}

// DefaultNRE returns 12 nm-class NRE constants: a mask set plus design and
// verification effort in the low tens of millions, growing with die size.
func DefaultNRE() NRE {
	return NRE{
		PerDesignBase: 15e6,
		PerMM2:        50e3,
	}
}

// DesignCost returns the one-time cost of a die design of the given area.
func (n NRE) DesignCost(area float64) float64 {
	return n.PerDesignBase + n.PerMM2*area
}

// AmortizedMC is a Breakdown extended with per-unit NRE for a product line.
type AmortizedMC struct {
	Recurring Breakdown
	// NREPerUnit is the summed design costs of all distinct dies divided
	// by the production volume.
	NREPerUnit float64
}

// Total is the effective per-unit cost.
func (a AmortizedMC) Total() float64 { return a.Recurring.Total() + a.NREPerUnit }

// AmortizeProductLine computes per-accelerator effective MC for a product
// line: distinctDieAreas lists the unique die designs the line requires
// (compute chiplets counted once when shared across accelerators, IO dies
// once per distinct design), volume is the total units shipped across the
// line, and recurring is the per-unit manufacturing breakdown.
func AmortizeProductLine(n NRE, recurring Breakdown, distinctDieAreas []float64, volume float64) AmortizedMC {
	if volume <= 0 {
		volume = 1
	}
	nre := 0.0
	for _, a := range distinctDieAreas {
		nre += n.DesignCost(a)
	}
	return AmortizedMC{Recurring: recurring, NREPerUnit: nre / volume}
}
