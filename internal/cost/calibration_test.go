package cost

import (
	"testing"

	"gemini/internal/arch"
)

// Calibration tests: the MC model must land in the neighborhood of the
// paper's reported cost deltas (DESIGN.md §2 documents the substitution).
func TestCalibrationGArchVsSArch(t *testing.T) {
	e := New()
	s, g := arch.Simba(), arch.GArch72()
	delta := e.Evaluate(&g).Total()/e.Evaluate(&s).Total() - 1
	// Paper: +14.3%. Accept a modest premium band.
	if delta < 0.02 || delta > 0.30 {
		t.Errorf("G-Arch vs S-Arch MC delta = %+.1f%%, want small positive premium (paper +14.3%%)", 100*delta)
	}
}

func TestCalibrationGTorusVsTArch(t *testing.T) {
	e := New()
	tk, gt := arch.Grayskull(), arch.GArchTorus()
	red := 1 - e.Evaluate(&gt).Total()/e.Evaluate(&tk).Total()
	// Paper: -40.1%. The monolithic 120-core die must pay a heavy yield
	// penalty relative to the 6-chiplet design.
	if red < 0.25 || red > 0.60 {
		t.Errorf("G-Torus MC reduction = %.1f%%, want ~40%% (paper 40.1%%)", 100*red)
	}
}
