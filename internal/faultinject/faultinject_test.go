package faultinject

import (
	"errors"
	"testing"
	"time"
)

// A nil injector never fires and never allocates state.
func TestNilInjectorIsNoop(t *testing.T) {
	var inj *Injector
	for i := 0; i < 100; i++ {
		if err := inj.Check(PointCell, "a/b"); err != nil {
			t.Fatalf("nil injector fired: %v", err)
		}
	}
	if inj.Fired(PointCell) != 0 || inj.TotalFired() != 0 {
		t.Fatal("nil injector reported fires")
	}
}

// On schedules fire on exact per-(point, key) occurrence indices.
func TestOnSchedule(t *testing.T) {
	inj := New(1, Rule{Point: PointCell, Kind: KindError, On: []int{1, 3}})
	var got []int
	for n := 0; n < 5; n++ {
		if err := inj.Check(PointCell, "c0/m0"); err != nil {
			var fe *Error
			if !errors.As(err, &fe) {
				t.Fatalf("occurrence %d: error type %T", n, err)
			}
			if fe.Occurrence != n {
				t.Fatalf("occurrence %d reported as %d", n, fe.Occurrence)
			}
			got = append(got, n)
		}
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("fired on %v, want [1 3]", got)
	}
	// A different key has its own occurrence counter.
	if err := inj.Check(PointCell, "c1/m0"); err != nil {
		t.Fatalf("fresh key occurrence 0 fired: %v", err)
	}
	if inj.Fired(PointCell) != 2 {
		t.Fatalf("Fired = %d, want 2", inj.Fired(PointCell))
	}
}

// Count fires on the first N occurrences, then stops.
func TestCountSchedule(t *testing.T) {
	inj := New(1, Rule{Point: PointCacheSave, Kind: KindError, Count: 2})
	fails := 0
	for n := 0; n < 5; n++ {
		if inj.Check(PointCacheSave, "/tmp/cache") != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("fired %d times, want 2", fails)
	}
}

// Key narrows a rule by substring; other keys pass.
func TestKeySubstringMatch(t *testing.T) {
	inj := New(1, Rule{Point: PointCell, Key: "badcand/", Kind: KindError, Count: 100})
	if err := inj.Check(PointCell, "goodcand/model"); err != nil {
		t.Fatalf("non-matching key fired: %v", err)
	}
	if err := inj.Check(PointCell, "badcand/model"); err == nil {
		t.Fatal("matching key did not fire")
	}
}

// Prob schedules are a deterministic function of (seed, point, key, n):
// replaying the same call sequence fires on the identical occurrences, and
// a different seed yields a different (but also deterministic) schedule.
func TestProbDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []int {
		inj := New(seed, Rule{Point: PointCell, Kind: KindError, Prob: 0.3})
		var fired []int
		for n := 0; n < 200; n++ {
			if inj.Check(PointCell, "c/m") != nil {
				fired = append(fired, n)
			}
		}
		return fired
	}
	a1, a2 := schedule(7), schedule(7)
	if len(a1) == 0 || len(a1) == 200 {
		t.Fatalf("prob 0.3 fired %d/200 times; schedule degenerate", len(a1))
	}
	for i := range a1 {
		if i >= len(a2) || a1[i] != a2[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
	if len(a1) != len(a2) {
		t.Fatal("same seed produced different schedules")
	}
	b := schedule(8)
	same := len(a1) == len(b)
	if same {
		for i := range a1 {
			if a1[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// KindPanic panics with a recognizable value; KindDelay sleeps and passes.
func TestPanicAndDelayKinds(t *testing.T) {
	inj := New(1,
		Rule{Point: PointCell, Kind: KindPanic, On: []int{0}},
		Rule{Point: PointStatusSave, Kind: KindDelay, Delay: 10 * time.Millisecond, On: []int{0}},
	)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("KindPanic did not panic")
			}
		}()
		inj.Check(PointCell, "c/m")
	}()
	start := time.Now()
	if err := inj.Check(PointStatusSave, "sweep"); err != nil {
		t.Fatalf("KindDelay returned error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("KindDelay slept %v, want >= 10ms", d)
	}
	if inj.TotalFired() != 2 {
		t.Fatalf("TotalFired = %d, want 2", inj.TotalFired())
	}
}
