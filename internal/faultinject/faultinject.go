// Package faultinject is a deterministic fault-injection harness for the
// sweep engine's chaos tests. An Injector holds a seeded schedule of rules
// and is threaded — nil by default — through the mapping pipeline, the
// persistence savers and the schedulers. Call sites ask Check whether a
// fault fires at a named point; a firing rule returns a transient error,
// panics, or sleeps, by rule kind. Decisions are pure functions of (seed,
// point, key, occurrence index), so a fixed schedule replays bit-identically
// across runs and under -race, and a nil injector is a single pointer
// comparison — never-firing hooks are provably free.
//
// The package is build-tag-free on purpose: production binaries carry the
// hooks disarmed, so the code path tests exercise is the code path that
// ships.
package faultinject

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Point names a hook location in the engine. Points are coarse on purpose:
// rules narrow within a point by key substring.
type Point string

// The engine's hook points.
const (
	// PointCell fires inside one (candidate, model) mapping attempt; the key
	// is "<candidate>/<model>".
	PointCell Point = "cell"
	// PointCacheSave fires in the disk-cache spill saver; the key is the
	// cache directory.
	PointCacheSave Point = "cache-save"
	// PointCheckpointSave fires in the sweep service's checkpoint saver; the
	// key is the sweep id.
	PointCheckpointSave Point = "checkpoint-save"
	// PointCheckpointLoad fires when a checkpoint is read for resume; the
	// key is the sweep id.
	PointCheckpointLoad Point = "checkpoint-load"
	// PointStatusSave fires in the sweep service's status saver; the key is
	// the sweep id.
	PointStatusSave Point = "status-save"
)

// Kind selects what a firing rule does.
type Kind int

const (
	// KindError makes Check return a transient *Error.
	KindError Kind = iota
	// KindPanic makes Check panic (the engine's recover paths convert it to
	// a typed cell error).
	KindPanic
	// KindDelay makes Check sleep for the rule's Delay and return nil — a
	// hung evaluation, for exercising per-cell deadlines.
	KindDelay
)

// String names the kind for error text and logs.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule is one entry of the injection schedule. A rule matches a Check call
// when the points are equal and Key is a substring of the call's key (empty
// Key matches every key). A matching rule fires on the call's per-(point,
// key) occurrence index n (0-based) when any of its triggers hit:
//
//   - On lists explicit occurrence indices;
//   - Count > 0 fires on the first Count occurrences;
//   - Prob > 0 fires when the seeded hash of (point, key, n) falls below it,
//     which scatters faults deterministically across a sweep.
type Rule struct {
	Point Point
	Key   string
	Kind  Kind
	On    []int
	Count int
	Prob  float64
	// Delay is the KindDelay sleep duration.
	Delay time.Duration
}

// Error is the transient failure a KindError rule injects. It satisfies the
// engine's Transient classification via the Transient method, so injected
// faults exercise exactly the retry path real transient I/O failures take.
type Error struct {
	Point      Point
	Key        string
	Occurrence int
}

// Error renders the injected failure.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s %q (occurrence %d)", e.Point, e.Key, e.Occurrence)
}

// Transient marks every injected error retryable.
func (e *Error) Transient() bool { return true }

// panicValue is what a KindPanic rule panics with, so recover sites can log
// a recognizable value.
type panicValue struct{ e Error }

func (p panicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s %q (occurrence %d)", p.e.Point, p.e.Key, p.e.Occurrence)
}

// Injector is a seeded fault schedule. The zero value is not usable —
// construct with New. A nil *Injector is valid everywhere and never fires.
type Injector struct {
	seed  int64
	rules []Rule

	mu     sync.Mutex
	counts map[countKey]int
	fired  map[Point]int
}

type countKey struct {
	p   Point
	key string
}

// New builds an injector firing the given rules under the given seed. The
// seed only matters to Prob-triggered rules; On/Count schedules are seed-
// independent.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		seed:   seed,
		rules:  rules,
		counts: make(map[countKey]int),
		fired:  make(map[Point]int),
	}
}

// Check is the hook call sites make: it advances the (point, key) occurrence
// counter and performs the first matching rule that fires — returning a
// transient *Error, panicking, or sleeping — or returns nil. Safe for
// concurrent use; a nil receiver always returns nil without locking.
func (inj *Injector) Check(p Point, key string) error {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	ck := countKey{p, key}
	n := inj.counts[ck]
	inj.counts[ck] = n + 1
	var hit *Rule
	for i := range inj.rules {
		r := &inj.rules[i]
		if r.Point != p || !strings.Contains(key, r.Key) {
			continue
		}
		if r.fires(inj.seed, p, key, n) {
			hit = r
			inj.fired[p]++
			break
		}
	}
	inj.mu.Unlock()
	if hit == nil {
		return nil
	}
	switch hit.Kind {
	case KindPanic:
		panic(panicValue{Error{Point: p, Key: key, Occurrence: n}})
	case KindDelay:
		time.Sleep(hit.Delay)
		return nil
	default:
		return &Error{Point: p, Key: key, Occurrence: n}
	}
}

// fires decides whether the rule triggers on occurrence n of (p, key).
func (r *Rule) fires(seed int64, p Point, key string, n int) bool {
	for _, on := range r.On {
		if on == n {
			return true
		}
	}
	if r.Count > 0 && n < r.Count {
		return true
	}
	if r.Prob > 0 && hashFrac(seed, p, key, n) < r.Prob {
		return true
	}
	return false
}

// Fired reports how many times any rule fired at the point since New.
func (inj *Injector) Fired(p Point) int {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired[p]
}

// TotalFired reports how many times any rule fired at any point.
func (inj *Injector) TotalFired() int {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	total := 0
	for _, n := range inj.fired {
		total += n
	}
	return total
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashFrac maps (seed, point, key, n) to a uniform fraction in [0, 1) via
// FNV-1a, so Prob schedules are deterministic per seed yet scatter across
// cells and occurrences.
func hashFrac(seed int64, p Point, key string, n int) float64 {
	h := uint64(fnvOffset64)
	step := func(b byte) {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	v := uint64(seed)
	for i := 0; i < 8; i++ {
		step(byte(v))
		v >>= 8
	}
	for i := 0; i < len(p); i++ {
		step(p[i])
	}
	step(0)
	for i := 0; i < len(key); i++ {
		step(key[i])
	}
	step(0)
	w := uint64(n)
	for i := 0; i < 8; i++ {
		step(byte(w))
		w >>= 8
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}
