// Package arch implements the scalable hardware template of the Gemini
// paper (Sec. III): a configurable array of computing cores interconnected
// by a mesh (or folded-torus) NoC, partitioned into chiplets along X/Y cuts,
// with IO chiplets hosting DRAM controllers on the left/right edges.
package arch

import (
	"fmt"
)

// Topology selects the NoC interconnect shape.
type Topology int

const (
	// Mesh is the default point-to-point parallel interconnect (Sec. III).
	Mesh Topology = iota
	// FoldedTorus adds wrap-around rows/columns links (Sec. VI-B2).
	FoldedTorus
)

// String returns the topology name.
func (t Topology) String() string {
	if t == FoldedTorus {
		return "folded-torus"
	}
	return "mesh"
}

// DRAMCtrlBW is the bandwidth supplied by one DRAM die/controller in GB/s
// (GDDR6, paper Sec. V-C).
const DRAMCtrlBW = 32.0

// Config holds the template's configurable parameters (paper Sec. III).
// Bandwidths are in GB/s, GLB in bytes, frequency in GHz.
type Config struct {
	Name string

	// Core array geometry.
	CoresX, CoresY int
	// Chiplet divisions per direction; 1x1 is a monolithic chip.
	XCut, YCut int

	// Per-link NoC bandwidth, per-interface D2D bandwidth, total DRAM
	// bandwidth.
	NoCBW, D2DBW, DRAMBW float64

	// Per-core compute resources.
	MACsPerCore int
	GLBPerCore  int

	FreqGHz  float64
	Topology Topology
}

// Cores returns the number of computing cores.
func (c *Config) Cores() int { return c.CoresX * c.CoresY }

// Chiplets returns the number of computing chiplets.
func (c *Config) Chiplets() int { return c.XCut * c.YCut }

// ChipletW returns the core-array width of one chiplet.
func (c *Config) ChipletW() int { return c.CoresX / c.XCut }

// ChipletH returns the core-array height of one chiplet.
func (c *Config) ChipletH() int { return c.CoresY / c.YCut }

// TOPS returns the peak int8 throughput in tera-operations per second
// (2 ops per MAC).
func (c *Config) TOPS() float64 {
	return 2 * float64(c.MACsPerCore) * float64(c.Cores()) * c.FreqGHz / 1000
}

// DRAMControllers returns the DRAM die/controller count implied by the
// total DRAM bandwidth, at least two so the flow-of-data encoding has a
// non-trivial choice (paper Fig. 3 uses two).
func (c *Config) DRAMControllers() int {
	n := int(c.DRAMBW/DRAMCtrlBW + 0.999999)
	if n < 2 {
		n = 2
	}
	return n
}

// Validate checks the structural constraints of the template: positive
// dimensions and cut counts that divide the core array (paper Sec. VI-A1).
func (c *Config) Validate() error {
	if c.CoresX <= 0 || c.CoresY <= 0 {
		return fmt.Errorf("arch: non-positive core array %dx%d", c.CoresX, c.CoresY)
	}
	if c.XCut <= 0 || c.YCut <= 0 {
		return fmt.Errorf("arch: non-positive cuts %dx%d", c.XCut, c.YCut)
	}
	if c.CoresX%c.XCut != 0 {
		return fmt.Errorf("arch: XCut=%d does not divide CoresX=%d", c.XCut, c.CoresX)
	}
	if c.CoresY%c.YCut != 0 {
		return fmt.Errorf("arch: YCut=%d does not divide CoresY=%d", c.YCut, c.CoresY)
	}
	if c.NoCBW <= 0 || c.DRAMBW <= 0 {
		return fmt.Errorf("arch: non-positive bandwidth (NoC %.1f, DRAM %.1f)", c.NoCBW, c.DRAMBW)
	}
	if c.Chiplets() > 1 && c.D2DBW <= 0 {
		return fmt.Errorf("arch: multi-chiplet config needs positive D2D bandwidth")
	}
	if c.MACsPerCore <= 0 || c.GLBPerCore <= 0 {
		return fmt.Errorf("arch: non-positive core resources (MACs %d, GLB %d)", c.MACsPerCore, c.GLBPerCore)
	}
	if c.FreqGHz <= 0 {
		return fmt.Errorf("arch: non-positive frequency %.2f", c.FreqGHz)
	}
	return nil
}

// CoreID indexes a computing core, row-major: y*CoresX + x.
type CoreID int

// CoreAt returns the core at grid position (x, y).
func (c *Config) CoreAt(x, y int) CoreID { return CoreID(y*c.CoresX + x) }

// CoreXY returns the grid position of a core.
func (c *Config) CoreXY(id CoreID) (x, y int) {
	return int(id) % c.CoresX, int(id) / c.CoresX
}

// ChipletOf returns the chiplet coordinates (cx, cy) containing a core.
func (c *Config) ChipletOf(id CoreID) (cx, cy int) {
	x, y := c.CoreXY(id)
	return x / c.ChipletW(), y / c.ChipletH()
}

// SameChiplet reports whether two cores share a chiplet.
func (c *Config) SameChiplet(a, b CoreID) bool {
	ax, ay := c.ChipletOf(a)
	bx, by := c.ChipletOf(b)
	return ax == bx && ay == by
}

// DRAMPort describes where a DRAM controller injects traffic into the mesh:
// the set of edge routers (cores) its IO chiplet connects to.
type DRAMPort struct {
	Ctrl  int // controller index, 0-based
	Cores []CoreID
}

// DRAMPorts distributes the DRAM controllers over the left and right edges
// of the core array (IO chiplets sit on both sides, paper Fig. 2), each
// controller attaching to a contiguous span of edge routers so its
// bandwidth can match several NoC links.
func (c *Config) DRAMPorts() []DRAMPort {
	d := c.DRAMControllers()
	ports := make([]DRAMPort, d)
	left := (d + 1) / 2
	right := d - left
	assign := func(ctrlBase, n, col int) {
		for i := 0; i < n; i++ {
			rows := spanRows(c.CoresY, n, i)
			p := DRAMPort{Ctrl: ctrlBase + i}
			for y := rows.lo; y < rows.hi; y++ {
				p.Cores = append(p.Cores, c.CoreAt(col, y))
			}
			ports[ctrlBase+i] = p
		}
	}
	assign(0, left, 0)
	if right > 0 {
		assign(left, right, c.CoresX-1)
	}
	return ports
}

type rowSpan struct{ lo, hi int }

func spanRows(total, parts, idx int) rowSpan {
	q, r := total/parts, total%parts
	lo := idx*q + min(idx, r)
	size := q
	if idx < r {
		size++
	}
	if size == 0 { // more controllers than rows: share the nearest row
		row := idx * total / parts
		return rowSpan{row, row + 1}
	}
	return rowSpan{lo, lo + size}
}

// String summarizes the architecture in the paper's tuple notation:
// (chiplets, cores, DRAM BW, NoC BW, D2D BW, GLB/core, MAC/core).
func (c *Config) String() string {
	d2d := "None"
	if c.Chiplets() > 1 {
		d2d = fmt.Sprintf("%.0fGB/s", c.D2DBW)
	}
	return fmt.Sprintf("(%d, %d, %.0fGB/s, %.0fGB/s, %s, %dKB, %d)",
		c.Chiplets(), c.Cores(), c.DRAMBW, c.NoCBW, d2d, c.GLBPerCore/1024, c.MACsPerCore)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
