package arch

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range []Config{Simba(), GArch72(), Grayskull(), GArchTorus()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestTOPS(t *testing.T) {
	s := Simba()
	if got := s.TOPS(); got < 73 || got > 74 { // 2*1024*36*1e9 = 73.7 TOPs
		t.Errorf("Simba TOPS = %.1f, want ~73.7", got)
	}
	g := Grayskull()
	if got := g.TOPS(); got < 490 || got > 492 { // 2*2048*120 = 491.5
		t.Errorf("Grayskull TOPS = %.1f, want ~491.5", got)
	}
}

func TestChipletGeometry(t *testing.T) {
	c := GArch72() // 6x6 cores, 2x1 cuts
	if c.Chiplets() != 2 || c.ChipletW() != 3 || c.ChipletH() != 6 {
		t.Fatalf("geometry: chiplets=%d w=%d h=%d", c.Chiplets(), c.ChipletW(), c.ChipletH())
	}
	left := c.CoreAt(2, 3)
	right := c.CoreAt(3, 3)
	if c.SameChiplet(left, right) {
		t.Error("cores across the X cut should be on different chiplets")
	}
	if !c.SameChiplet(c.CoreAt(0, 0), c.CoreAt(2, 5)) {
		t.Error("cores within the left chiplet should match")
	}
	cx, cy := c.ChipletOf(right)
	if cx != 1 || cy != 0 {
		t.Errorf("ChipletOf = (%d,%d), want (1,0)", cx, cy)
	}
}

func TestCoreIDRoundTrip(t *testing.T) {
	c := Simba()
	f := func(x, y uint8) bool {
		xx, yy := int(x)%c.CoresX, int(y)%c.CoresY
		id := c.CoreAt(xx, yy)
		gx, gy := c.CoreXY(id)
		return gx == xx && gy == yy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.XCut = 4 },   // does not divide 6
		func(c *Config) { c.CoresX = 0 }, //
		func(c *Config) { c.NoCBW = 0 },  //
		func(c *Config) { c.MACsPerCore = 0 },
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.D2DBW = 0 }, // multi-chiplet needs D2D BW
	}
	for i, mutate := range bad {
		c := GArch72()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	mono := GArch72()
	mono.XCut, mono.YCut, mono.D2DBW = 1, 1, 0
	if err := mono.Validate(); err != nil {
		t.Errorf("monolithic config needs no D2D bandwidth: %v", err)
	}
}

func TestDRAMControllers(t *testing.T) {
	c := GArch72() // 144 GB/s -> ceil(144/32) = 5
	if got := c.DRAMControllers(); got != 5 {
		t.Errorf("controllers = %d, want 5", got)
	}
	c.DRAMBW = 30 // below one die, but minimum two for FD choice
	if got := c.DRAMControllers(); got != 2 {
		t.Errorf("controllers = %d, want 2", got)
	}
}

func TestDRAMPortsCoverEdges(t *testing.T) {
	c := GArch72()
	ports := c.DRAMPorts()
	if len(ports) != c.DRAMControllers() {
		t.Fatalf("ports = %d, want %d", len(ports), c.DRAMControllers())
	}
	leftRows := map[int]bool{}
	for _, p := range ports {
		if len(p.Cores) == 0 {
			t.Fatalf("controller %d has no attachment cores", p.Ctrl)
		}
		for _, core := range p.Cores {
			x, y := c.CoreXY(core)
			if x != 0 && x != c.CoresX-1 {
				t.Errorf("controller %d attaches to interior core (%d,%d)", p.Ctrl, x, y)
			}
			if x == 0 {
				leftRows[y] = true
			}
		}
	}
	if len(leftRows) != c.CoresY {
		t.Errorf("left-edge rows covered = %d, want %d", len(leftRows), c.CoresY)
	}
}

func TestStringTuple(t *testing.T) {
	g := GArch72()
	s := g.String()
	want := "(2, 36, 144GB/s, 32GB/s, 16GB/s, 2048KB, 1024)"
	if s != want {
		t.Errorf("String = %q, want %q", s, want)
	}
	gk := Grayskull()
	if !strings.Contains(gk.String(), "None") {
		t.Errorf("monolithic tuple should show D2D None: %s", gk.String())
	}
}
