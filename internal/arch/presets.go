package arch

// Presets for the architectures named in the paper's evaluation.

// KB is one kibibyte, for GLB sizing.
const KB = 1024

// MB is one mebibyte.
const MB = 1024 * KB

// Simba returns the S-Arch baseline (paper Sec. VI-A4): the 36-chiplet,
// 36-core, 72 TOPs Simba configuration equipped with IO dies providing
// 2 GB/s per TOPs of DRAM bandwidth and 1 MB GLB per core (per the
// Simba-series Magnet paper), with GRS D2D links.
func Simba() Config {
	return Config{
		Name:        "S-Arch",
		CoresX:      6,
		CoresY:      6,
		XCut:        6,
		YCut:        6,
		NoCBW:       32,
		D2DBW:       16,
		DRAMBW:      144,
		MACsPerCore: 1024,
		GLBPerCore:  1 * MB,
		FreqGHz:     1,
		Topology:    Mesh,
	}
}

// GArch72 returns the architecture Gemini's 72 TOPs DSE discovers
// (paper Sec. VI-B1): (2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024).
func GArch72() Config {
	return Config{
		Name:        "G-Arch",
		CoresX:      6,
		CoresY:      6,
		XCut:        2,
		YCut:        1,
		NoCBW:       32,
		D2DBW:       16,
		DRAMBW:      144,
		MACsPerCore: 1024,
		GLBPerCore:  2 * MB,
		FreqGHz:     1,
		Topology:    Mesh,
	}
}

// Grayskull returns the T-Arch baseline (paper Sec. VI-B2): a 120-core
// monolithic accelerator with Tenstorrent Grayskull's architectural
// parameters and a folded-torus NoC.
func Grayskull() Config {
	return Config{
		Name:        "T-Arch",
		CoresX:      12,
		CoresY:      10,
		XCut:        1,
		YCut:        1,
		NoCBW:       64,
		D2DBW:       0,
		DRAMBW:      192,
		MACsPerCore: 2048,
		GLBPerCore:  1 * MB,
		FreqGHz:     1,
		Topology:    FoldedTorus,
	}
}

// GArchTorus returns the architecture Gemini's folded-torus DSE discovers
// (paper Sec. VI-B2): (6, 60, 480GB/s, 64GB/s, 32GB/s, 2MB, 2048).
func GArchTorus() Config {
	return Config{
		Name:        "G-Arch-Torus",
		CoresX:      10,
		CoresY:      6,
		XCut:        2,
		YCut:        3,
		NoCBW:       64,
		D2DBW:       32,
		DRAMBW:      480,
		MACsPerCore: 2048,
		GLBPerCore:  2 * MB,
		FreqGHz:     1,
		Topology:    FoldedTorus,
	}
}
