package sa

import (
	"math"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

func allLayers(g *dnn.Graph) []int {
	ids := make([]int, len(g.Layers))
	for i := range g.Layers {
		ids[i] = i
	}
	return ids
}

func setup(t *testing.T) (*core.Scheme, *eval.Evaluator, *arch.Config) {
	t.Helper()
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	s, err := core.StripeScheme(g, &cfg, [][]int{allLayers(g)}, []int{2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return s, eval.New(&cfg), &cfg
}

func TestOptimizeImproves(t *testing.T) {
	s, ev, cfg := setup(t)
	opt := DefaultOptions()
	opt.Iterations = 800
	r := Optimize(s, ev, opt)
	if r.Scheme == nil {
		t.Fatal("no scheme returned")
	}
	if err := r.Scheme.Validate(cfg); err != nil {
		t.Fatalf("optimized scheme invalid: %v", err)
	}
	if r.Cost > r.InitCost {
		t.Errorf("SA worsened cost: %v -> %v", r.InitCost, r.Cost)
	}
	if r.Improvement() < 1 {
		t.Errorf("improvement = %v", r.Improvement())
	}
	if r.Accepted == 0 {
		t.Error("SA accepted no moves in 800 iterations")
	}
}

func TestOptimizeDeterministicBySeed(t *testing.T) {
	s, ev, _ := setup(t)
	opt := DefaultOptions()
	opt.Iterations = 300
	a := Optimize(s, ev, opt)
	b := Optimize(s, ev, opt)
	if a.Cost != b.Cost || a.Accepted != b.Accepted {
		t.Errorf("same seed diverged: %v/%d vs %v/%d", a.Cost, a.Accepted, b.Cost, b.Accepted)
	}
	opt.Seed = 99
	c := Optimize(s, ev, opt)
	if c.Attempted != a.Attempted {
		t.Errorf("attempt counts differ: %d vs %d", c.Attempted, a.Attempted)
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	s, ev, _ := setup(t)
	before := s.Clone()
	opt := DefaultOptions()
	opt.Iterations = 200
	Optimize(s, ev, opt)
	for gi, g := range s.Groups {
		for mi, ms := range g.MSs {
			want := before.Groups[gi].MSs[mi]
			if ms.Part != want.Part || ms.FD != want.FD || len(ms.CG) != len(want.CG) {
				t.Fatal("input scheme was mutated")
			}
			for ci := range ms.CG {
				if ms.CG[ci] != want.CG[ci] {
					t.Fatal("input CG mutated")
				}
			}
		}
	}
}

func TestOptimizeCostMatchesEvaluator(t *testing.T) {
	s, ev, _ := setup(t)
	opt := DefaultOptions()
	opt.Iterations = 300
	r := Optimize(s, ev, opt)
	full := ev.Evaluate(r.Scheme)
	want := eval.Cost(full, opt.Beta, opt.Gamma)
	if math.Abs(r.Cost-want) > want*1e-9 {
		t.Errorf("incremental cost %v != full evaluation %v", r.Cost, want)
	}
}

func TestOptimizeReducesD2DOnChipletArch(t *testing.T) {
	// Paper Sec. V-B1: the SA process inherently optimizes D2D
	// communication. Compare D2D byte-hops before and after on a 2-chiplet
	// architecture.
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	s, err := core.StripeScheme(g, &cfg, [][]int{allLayers(g)}, []int{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(&cfg)
	before := ev.Evaluate(s)
	opt := DefaultOptions()
	opt.Iterations = 1500
	r := Optimize(s, ev, opt)
	after := r.Eval
	if !after.Feasible {
		t.Fatal("optimized scheme infeasible")
	}
	var d2dBefore, d2dAfter float64
	for _, gr := range before.Groups {
		d2dBefore += gr.D2DBytes
	}
	for _, gr := range after.Groups {
		d2dAfter += gr.D2DBytes
	}
	if d2dAfter > d2dBefore {
		t.Errorf("SA increased D2D bytes: %v -> %v", d2dBefore, d2dAfter)
	}
	if eval.Cost(after, 1, 1) > eval.Cost(before, 1, 1) {
		t.Errorf("SA worsened E*D: %v -> %v", eval.Cost(before, 1, 1), eval.Cost(after, 1, 1))
	}
}

func TestOptimizeMultiGroup(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	s, err := core.StripeScheme(g, &cfg, [][]int{{0, 1, 2, 3}, {4, 5, 6}}, []int{2, 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(&cfg)
	opt := DefaultOptions()
	opt.Iterations = 500
	r := Optimize(s, ev, opt)
	if err := r.Scheme.Validate(&cfg); err != nil {
		t.Fatalf("multi-group result invalid: %v", err)
	}
	if len(r.Scheme.Groups) != 2 {
		t.Fatal("group structure changed")
	}
	if r.Cost > r.InitCost {
		t.Errorf("cost worsened: %v -> %v", r.InitCost, r.Cost)
	}
}

func TestZeroIterationsReturnsInitial(t *testing.T) {
	s, ev, _ := setup(t)
	opt := DefaultOptions()
	opt.Iterations = 0
	r := Optimize(s, ev, opt)
	if r.Cost != r.InitCost {
		t.Errorf("0 iterations changed cost: %v vs %v", r.Cost, r.InitCost)
	}
	if r.Attempted != 0 {
		t.Errorf("attempted %d moves", r.Attempted)
	}
}

func TestDelayOnlyObjective(t *testing.T) {
	s, ev, _ := setup(t)
	opt := DefaultOptions()
	opt.Iterations = 400
	opt.Beta, opt.Gamma = 0, 1
	r := Optimize(s, ev, opt)
	if math.Abs(r.Cost-r.Eval.Delay) > r.Cost*1e-9 {
		t.Errorf("delay-only cost %v != delay %v", r.Cost, r.Eval.Delay)
	}
}
