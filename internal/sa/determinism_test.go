package sa

import (
	"strings"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

func annealInput(t *testing.T) (*core.Scheme, *arch.Config) {
	t.Helper()
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	ids := make([]int, len(g.Layers))
	for i := range ids {
		ids[i] = i
	}
	s, err := core.StripeScheme(g, &cfg, [][]int{ids}, []int{2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return s, &cfg
}

func schemeJSON(t *testing.T, s *core.Scheme) string {
	t.Helper()
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSameSeedTwice verifies the incremental-evaluation machinery (group
// memoization, consumer-aware invalidation, dirty-group best cloning) keeps
// the annealer fully deterministic: two runs with the same seed must agree
// bit-for-bit on costs, acceptance counters, and the returned scheme.
func TestSameSeedTwice(t *testing.T) {
	s, cfg := annealInput(t)
	opt := DefaultOptions()
	opt.Iterations = 500
	opt.Seed = 42

	a := Optimize(s, eval.New(cfg), opt)
	b := Optimize(s, eval.New(cfg), opt)

	if a.Cost != b.Cost || a.InitCost != b.InitCost {
		t.Fatalf("costs differ: %v/%v vs %v/%v", a.Cost, a.InitCost, b.Cost, b.InitCost)
	}
	if a.Attempted != b.Attempted || a.Applied != b.Applied || a.Accepted != b.Accepted {
		t.Fatalf("counters differ: %+v vs %+v", a, b)
	}
	if a.OpAccepted != b.OpAccepted {
		t.Fatalf("per-op acceptance differs: %v vs %v", a.OpAccepted, b.OpAccepted)
	}
	if sa, sb := schemeJSON(t, a.Scheme), schemeJSON(t, b.Scheme); sa != sb {
		t.Fatal("best schemes differ between same-seed runs")
	}
	if a.Eval.Delay != b.Eval.Delay || a.Eval.Energy.Total() != b.Eval.Energy.Total() {
		t.Fatal("best evaluations differ between same-seed runs")
	}
}

// TestSharedEvaluatorMatchesFresh verifies memoization is purely a cache:
// reusing one evaluator across two runs gives the same result as fresh
// evaluators per run.
func TestSharedEvaluatorMatchesFresh(t *testing.T) {
	s, cfg := annealInput(t)
	opt := DefaultOptions()
	opt.Iterations = 300
	opt.Seed = 9

	shared := eval.New(cfg)
	a := Optimize(s, shared, opt)
	b := Optimize(s, shared, opt)
	c := Optimize(s, eval.New(cfg), opt)
	if a.Cost != b.Cost || a.Cost != c.Cost {
		t.Fatalf("shared-evaluator runs diverge: %v, %v, %v", a.Cost, b.Cost, c.Cost)
	}
}

// TestConsumerClosure checks the OP5 invalidation sets on a partitioned
// scheme: every group is affected by itself, and groups consuming a
// producer's ofmaps appear in the producer's closure.
func TestConsumerClosure(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	// Two groups: layer 0-1 produce, layer 2.. consume across the boundary.
	var a, b []int
	for i := range g.Layers {
		if i < 2 {
			a = append(a, i)
		} else {
			b = append(b, i)
		}
	}
	s, err := core.StripeScheme(g, &cfg, [][]int{a, b}, []int{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	aff := consumerClosure(s)
	if len(aff) != 2 {
		t.Fatalf("groups = %d", len(aff))
	}
	want0 := false
	for _, gj := range aff[0] {
		if gj == 1 {
			want0 = true
		}
	}
	if !want0 {
		t.Fatalf("group 1 consumes from group 0 but closure is %v", aff[0])
	}
	if aff[1][0] != 1 || len(aff[1]) != 1 {
		t.Fatalf("last group should only affect itself, got %v", aff[1])
	}
}
