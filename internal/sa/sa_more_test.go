package sa

import (
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

func TestOperatorAcceptanceSpread(t *testing.T) {
	s, ev, _ := setup(t)
	opt := DefaultOptions()
	opt.Iterations = 3000
	r := Optimize(s, ev, opt)
	accepted := 0
	kinds := 0
	for _, n := range r.OpAccepted {
		accepted += n
		if n > 0 {
			kinds++
		}
	}
	if accepted != r.Accepted {
		t.Errorf("per-op acceptance %d != total %d", accepted, r.Accepted)
	}
	// All five operators should contribute to a long search.
	if kinds < 4 {
		t.Errorf("only %d operator kinds accepted in 3000 iterations: %v", kinds, r.OpAccepted)
	}
	_ = core.OpPart // document the indexing relationship
}

func TestGreedyModeStillImproves(t *testing.T) {
	s, ev, _ := setup(t)
	opt := DefaultOptions()
	opt.Iterations = 500
	opt.InitTemp, opt.FinalTemp = 0, 0 // pure hill climbing
	r := Optimize(s, ev, opt)
	if r.Cost > r.InitCost {
		t.Errorf("greedy mode worsened cost: %v -> %v", r.InitCost, r.Cost)
	}
}

func TestHighTemperatureStillTracksBest(t *testing.T) {
	// Even with an absurdly hot schedule, the returned scheme is the best
	// seen, never worse than the start.
	s, ev, _ := setup(t)
	opt := DefaultOptions()
	opt.Iterations = 500
	opt.InitTemp, opt.FinalTemp = 100, 100
	r := Optimize(s, ev, opt)
	if r.Cost > r.InitCost {
		t.Errorf("best-so-far tracking failed: %v -> %v", r.InitCost, r.Cost)
	}
}

func TestObjectiveExponentsChangeOutcome(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	s, err := core.StripeScheme(g, &cfg, [][]int{allLayers(g)}, []int{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(&cfg)
	energyOpt := DefaultOptions()
	energyOpt.Iterations = 800
	energyOpt.Beta, energyOpt.Gamma = 1, 0
	re := Optimize(s, ev, energyOpt)

	delayOpt := DefaultOptions()
	delayOpt.Iterations = 800
	delayOpt.Beta, delayOpt.Gamma = 0, 1
	rd := Optimize(s, ev, delayOpt)

	// The energy-optimized scheme should use no more energy than the
	// delay-optimized one, and vice versa for delay.
	if re.Eval.Energy.Total() > rd.Eval.Energy.Total()*(1+1e-9) {
		t.Errorf("energy objective lost on energy: %v vs %v",
			re.Eval.Energy.Total(), rd.Eval.Energy.Total())
	}
	if rd.Eval.Delay > re.Eval.Delay*(1+1e-9) {
		t.Errorf("delay objective lost on delay: %v vs %v", rd.Eval.Delay, re.Eval.Delay)
	}
}

func TestOptimizeGroupWeightsRespectSize(t *testing.T) {
	// With one large and one tiny group, the large group (bigger space)
	// should receive most of the move attempts; verify indirectly through
	// acceptance being possible in both (no starvation of either).
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	s, err := core.StripeScheme(g, &cfg, [][]int{{0, 1, 2, 3, 4}, {5, 6}}, []int{2, 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(&cfg)
	opt := DefaultOptions()
	opt.Iterations = 1500
	r := Optimize(s, ev, opt)
	if r.Applied == 0 {
		t.Fatal("no operator applications")
	}
	if err := r.Scheme.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
}
