package sa

import (
	"testing"

	"gemini/internal/eval"
)

// TestDominatedHookNeverFiringBitIdentical pins the in-loop abandonment
// contract: a hooked run whose Dominated callback never returns true must be
// bit-identical to an unhooked run — same costs, counters, acceptance
// pattern and best scheme — because the check consumes no randomness and
// touches no search state.
func TestDominatedHookNeverFiringBitIdentical(t *testing.T) {
	s, cfg := annealInput(t)
	opt := DefaultOptions()
	opt.Iterations = 500
	opt.Seed = 42

	plain := Optimize(s, eval.New(cfg), opt)

	hooked := opt
	polls := 0
	hooked.CheckEvery = 8
	hooked.Dominated = func(best float64) bool {
		polls++
		if best > plain.InitCost {
			t.Errorf("hook saw best %v above the initial cost %v", best, plain.InitCost)
		}
		return false
	}
	h := Optimize(s, eval.New(cfg), hooked)

	if polls == 0 {
		t.Fatal("Dominated hook was never polled")
	}
	if h.Abandoned {
		t.Fatal("never-firing hook abandoned the run")
	}
	if h.Cost != plain.Cost || h.InitCost != plain.InitCost {
		t.Fatalf("costs differ: %v/%v vs %v/%v", h.Cost, h.InitCost, plain.Cost, plain.InitCost)
	}
	if h.Attempted != plain.Attempted || h.Applied != plain.Applied || h.Accepted != plain.Accepted {
		t.Fatalf("counters differ: %+v vs %+v", h, plain)
	}
	if h.OpAccepted != plain.OpAccepted {
		t.Fatalf("per-op acceptance differs: %v vs %v", h.OpAccepted, plain.OpAccepted)
	}
	if sh, sp := schemeJSON(t, h.Scheme), schemeJSON(t, plain.Scheme); sh != sp {
		t.Fatal("best schemes differ between hooked and plain runs")
	}
}

// TestDominatedHookStopsMidAnneal: a firing hook must stop the search
// within one polling stride and report Abandoned with the iteration count
// actually spent.
func TestDominatedHookStopsMidAnneal(t *testing.T) {
	s, cfg := annealInput(t)
	opt := DefaultOptions()
	opt.Iterations = 500
	opt.Seed = 7
	opt.CheckEvery = 16
	fireAfter := 3
	polls := 0
	opt.Dominated = func(float64) bool {
		polls++
		return polls > fireAfter
	}

	r := Optimize(s, eval.New(cfg), opt)
	if !r.Abandoned {
		t.Fatal("firing hook did not abandon")
	}
	wantIters := (fireAfter + 1) * 16 // stops at the (fireAfter+1)-th poll
	if r.Attempted != wantIters {
		t.Errorf("attempted %d iterations, want exactly %d (abandon on the poll boundary)", r.Attempted, wantIters)
	}
	if r.Scheme == nil {
		t.Error("abandoned run lost its best-so-far scheme")
	}
}

// TestPortfolioPropagatesMidAnnealAbandon: a restart abandoned mid-anneal
// must abandon the whole portfolio, keep the partial restart out of Costs,
// and account every iteration spent.
func TestPortfolioPropagatesMidAnnealAbandon(t *testing.T) {
	s, cfg := annealInput(t)
	opt := DefaultOptions()
	opt.Iterations = 200
	opt.Seed = 3
	opt.CheckEvery = 16

	full := MultiStart(s, eval.New(cfg), opt, 2)
	if full.Abandoned || len(full.Costs) != 2 {
		t.Fatalf("baseline portfolio: %+v", full)
	}

	// Fire during the second restart.
	polls := 0
	firstRestartPolls := opt.Iterations/opt.CheckEvery - 1
	hooked := opt
	hooked.Dominated = func(float64) bool {
		polls++
		return polls > firstRestartPolls+2
	}
	p := MultiStartAdaptive(s, eval.New(cfg), hooked, 2, AdaptiveOptions{})
	if !p.Abandoned {
		t.Fatal("portfolio ignored the mid-anneal abandon")
	}
	if len(p.Costs) != 1 {
		t.Fatalf("partial restart leaked into Costs: %v", p.Costs)
	}
	if p.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1 (the interrupted restart never completed)", p.Skipped())
	}
	if p.Iterations <= opt.Iterations || p.Iterations >= full.Iterations {
		t.Errorf("iterations %d should lie between one full restart (%d) and the full portfolio (%d)",
			p.Iterations, opt.Iterations, full.Iterations)
	}
}
