package sa

import (
	"math"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

func portfolioScheme(t testing.TB, cfg *arch.Config) *core.Scheme {
	t.Helper()
	g := dnn.TinyTransformer()
	ids := make([]int, len(g.Layers))
	for i := range ids {
		ids[i] = i
	}
	s, err := core.StripeScheme(g, cfg, [][]int{ids}, []int{2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMultiStartDeterministic pins the portfolio acceptance property:
// identical seeds yield a bit-identical best, regardless of cache warmth.
func TestMultiStartDeterministic(t *testing.T) {
	cfg := arch.GArch72()
	s := portfolioScheme(t, &cfg)
	opt := DefaultOptions()
	opt.Iterations = 120

	run := func() Portfolio { return MultiStart(s, eval.New(&cfg), opt, 4) }
	a, b := run(), run()
	if a.Best.Cost != b.Best.Cost || a.BestRestart != b.BestRestart {
		t.Fatalf("portfolio not deterministic: (%v, %d) vs (%v, %d)",
			a.Best.Cost, a.BestRestart, b.Best.Cost, b.BestRestart)
	}
	if len(a.Costs) != 4 {
		t.Fatalf("costs = %d, want 4", len(a.Costs))
	}
	for i := range a.Costs {
		if a.Costs[i] != b.Costs[i] {
			t.Errorf("restart %d: %v vs %v", i, a.Costs[i], b.Costs[i])
		}
	}

	// Warm evaluator (shared across both portfolios): still bit-identical.
	ev := eval.New(&cfg)
	c, d := MultiStart(s, ev, opt, 4), MultiStart(s, ev, opt, 4)
	if c.Best.Cost != a.Best.Cost || d.Best.Cost != a.Best.Cost {
		t.Errorf("warm-cache portfolio diverged: %v, %v vs %v", c.Best.Cost, d.Best.Cost, a.Best.Cost)
	}
}

func TestMultiStartSingleEqualsOptimize(t *testing.T) {
	cfg := arch.GArch72()
	s := portfolioScheme(t, &cfg)
	opt := DefaultOptions()
	opt.Iterations = 100
	want := Optimize(s, eval.New(&cfg), opt)
	for _, restarts := range []int{1, 0, -3} {
		got := MultiStart(s, eval.New(&cfg), opt, restarts)
		if got.Best.Cost != want.Cost || got.BestRestart != 0 {
			t.Errorf("restarts=%d: cost %v (restart %d), want %v (restart 0)",
				restarts, got.Best.Cost, got.BestRestart, want.Cost)
		}
		if len(got.Costs) != 1 {
			t.Errorf("restarts=%d: %d costs", restarts, len(got.Costs))
		}
	}
}

// TestMultiStartFoldsBest: the winner must be the minimum over restart
// costs, and each restart must equal a standalone run with its derived seed.
func TestMultiStartFoldsBest(t *testing.T) {
	cfg := arch.GArch72()
	s := portfolioScheme(t, &cfg)
	opt := DefaultOptions()
	opt.Iterations = 120
	p := MultiStart(s, eval.New(&cfg), opt, 4)

	best := math.Inf(1)
	for i, c := range p.Costs {
		o := opt
		o.Seed = RestartSeed(opt.Seed, i)
		solo := Optimize(s, eval.New(&cfg), o)
		if solo.Cost != c {
			t.Errorf("restart %d cost %v, standalone %v", i, c, solo.Cost)
		}
		if c < best {
			best = c
		}
	}
	if p.Best.Cost != best {
		t.Errorf("best %v, want min %v", p.Best.Cost, best)
	}
	if p.Costs[p.BestRestart] != p.Best.Cost {
		t.Errorf("BestRestart %d does not match Best", p.BestRestart)
	}
}

// TestMultiStartRangeWidensBitIdentical pins the racing/checkpoint re-entry
// contract: folding a prefix portfolio [0, from) with a fresh window
// [from, to) must be bit-identical to a single [0, to) portfolio — same
// best cost, same absolute winning restart, same per-restart costs.
func TestMultiStartRangeWidensBitIdentical(t *testing.T) {
	cfg := arch.GArch72()
	s := portfolioScheme(t, &cfg)
	opt := DefaultOptions()
	opt.Iterations = 120

	full := MultiStart(s, eval.New(&cfg), opt, 6)
	for _, from := range []int{1, 2, 4} {
		prefix := MultiStartRange(s, eval.New(&cfg), opt, 0, from, AdaptiveOptions{})
		window := MultiStartRange(s, eval.New(&cfg), opt, from, 6, AdaptiveOptions{})
		if window.Planned != 6-from || len(window.Costs) != 6-from {
			t.Fatalf("from=%d: window ran %d/%d restarts, want %d", from, len(window.Costs), window.Planned, 6-from)
		}
		// Fold prefix and window exactly as runCellTarget does: the prior
		// wins ties because it holds the lower restart indices.
		best, bestRestart := prefix.Best.Cost, prefix.BestRestart
		if BetterCost(window.Best.Cost, best) {
			best, bestRestart = window.Best.Cost, window.BestRestart
		}
		if best != full.Best.Cost || bestRestart != full.BestRestart {
			t.Errorf("from=%d: folded (%v, %d), full (%v, %d)",
				from, best, bestRestart, full.Best.Cost, full.BestRestart)
		}
		costs := append(append([]float64{}, prefix.Costs...), window.Costs...)
		for i := range costs {
			if costs[i] != full.Costs[i] {
				t.Errorf("from=%d restart %d: folded cost %v, full %v", from, i, costs[i], full.Costs[i])
			}
		}
	}
}

func TestBetterCostNaN(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 2, true},
		{2, 1, false},
		{nan, 1, false},
		{nan, math.Inf(1), false},
		{1, nan, true},
		{math.Inf(1), nan, true},
		{nan, nan, false},
		{1, 1, false},
	}
	for _, c := range cases {
		if got := BetterCost(c.a, c.b); got != c.want {
			t.Errorf("BetterCost(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestAdaptiveWidePatienceBitIdentical pins the acceptance criterion: a
// patience that can never trigger (>= restarts, or disabled) must leave the
// adaptive portfolio bit-identical to the fixed schedule.
func TestAdaptiveWidePatienceBitIdentical(t *testing.T) {
	cfg := arch.GArch72()
	s := portfolioScheme(t, &cfg)
	opt := DefaultOptions()
	opt.Iterations = 120

	want := MultiStart(s, eval.New(&cfg), opt, 4)
	for _, patience := range []int{0, -1, 4, 5, 100} {
		got := MultiStartAdaptive(s, eval.New(&cfg), opt, 4, AdaptiveOptions{Patience: patience})
		if got.Best.Cost != want.Best.Cost || got.BestRestart != want.BestRestart ||
			got.Abandoned || len(got.Costs) != len(want.Costs) {
			t.Fatalf("patience=%d diverged: %+v vs %+v", patience, got, want)
		}
		for i := range want.Costs {
			if got.Costs[i] != want.Costs[i] {
				t.Errorf("patience=%d restart %d: %v vs %v", patience, i, got.Costs[i], want.Costs[i])
			}
		}
	}
}

// TestAdaptivePatiencePrefix: a patience-stopped portfolio must run exactly
// the prefix of the fixed schedule predicted by the consecutive-miss streak,
// with identical per-restart costs and the same fold over that prefix.
func TestAdaptivePatiencePrefix(t *testing.T) {
	cfg := arch.GArch72()
	s := portfolioScheme(t, &cfg)
	opt := DefaultOptions()
	opt.Iterations = 120
	const restarts = 8

	full := MultiStart(s, eval.New(&cfg), opt, restarts)
	for patience := 1; patience < restarts; patience++ {
		// Predict the stop point from the full schedule's costs.
		wantLen, streak := restarts, 0
		best := full.Costs[0]
		for i := 1; i < restarts; i++ {
			if BetterCost(full.Costs[i], best) {
				best = full.Costs[i]
				streak = 0
			} else {
				streak++
			}
			if streak >= patience {
				wantLen = i + 1
				break
			}
		}

		got := MultiStartAdaptive(s, eval.New(&cfg), opt, restarts, AdaptiveOptions{Patience: patience})
		if got.Abandoned {
			t.Fatalf("patience=%d: portfolio marked abandoned", patience)
		}
		if len(got.Costs) != wantLen || got.Skipped() != restarts-wantLen {
			t.Fatalf("patience=%d ran %d restarts (skipped %d), want %d (%d)",
				patience, len(got.Costs), got.Skipped(), wantLen, restarts-wantLen)
		}
		for i := range got.Costs {
			if got.Costs[i] != full.Costs[i] {
				t.Errorf("patience=%d restart %d: %v vs fixed %v", patience, i, got.Costs[i], full.Costs[i])
			}
		}
	}
}

// TestAdaptiveStopAbandons: the Stop callback abandons the portfolio between
// restarts — restart 0 always runs, and a constantly-true Stop cuts
// everything after it.
func TestAdaptiveStopAbandons(t *testing.T) {
	cfg := arch.GArch72()
	s := portfolioScheme(t, &cfg)
	opt := DefaultOptions()
	opt.Iterations = 80

	polls := 0
	p := MultiStartAdaptive(s, eval.New(&cfg), opt, 4, AdaptiveOptions{
		Stop: func() bool { polls++; return true },
	})
	if !p.Abandoned {
		t.Fatal("portfolio not marked abandoned")
	}
	if len(p.Costs) != 1 || p.Skipped() != 3 {
		t.Fatalf("ran %d restarts (skipped %d), want 1 (3)", len(p.Costs), p.Skipped())
	}
	if polls != 1 {
		t.Errorf("Stop polled %d times, want 1", polls)
	}

	// A Stop that never fires changes nothing.
	q := MultiStartAdaptive(s, eval.New(&cfg), opt, 4, AdaptiveOptions{
		Stop: func() bool { return false },
	})
	w := MultiStart(s, eval.New(&cfg), opt, 4)
	if q.Abandoned || q.Best.Cost != w.Best.Cost || len(q.Costs) != len(w.Costs) {
		t.Errorf("inert Stop diverged: %+v vs %+v", q, w)
	}
}

// TestMultiStartRecoversPanic: a panicking restart must surface as PanicInfo
// data on the portfolio — restart index, value, stack — instead of unwinding
// the caller, and the portfolio is not settled (no costs fold).
func TestMultiStartRecoversPanic(t *testing.T) {
	cfg := arch.GArch72()
	opt := DefaultOptions()
	opt.Iterations = 40
	// A nil scheme panics inside Optimize; the guard must catch it.
	p := MultiStart(nil, eval.New(&cfg), opt, 3)
	if p.Panic == nil {
		t.Fatal("panicking restart produced no PanicInfo")
	}
	if p.Panic.Restart != 0 {
		t.Errorf("Restart = %d, want 0", p.Panic.Restart)
	}
	if p.Panic.Value == nil || p.Panic.Stack == "" {
		t.Errorf("PanicInfo incomplete: value=%v stack %d bytes", p.Panic.Value, len(p.Panic.Stack))
	}
	if len(p.Costs) != 0 {
		t.Errorf("panicked portfolio folded %d costs; it is not a settled outcome", len(p.Costs))
	}
}
