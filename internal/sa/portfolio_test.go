package sa

import (
	"math"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

func portfolioScheme(t testing.TB, cfg *arch.Config) *core.Scheme {
	t.Helper()
	g := dnn.TinyTransformer()
	ids := make([]int, len(g.Layers))
	for i := range ids {
		ids[i] = i
	}
	s, err := core.StripeScheme(g, cfg, [][]int{ids}, []int{2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMultiStartDeterministic pins the portfolio acceptance property:
// identical seeds yield a bit-identical best, regardless of cache warmth.
func TestMultiStartDeterministic(t *testing.T) {
	cfg := arch.GArch72()
	s := portfolioScheme(t, &cfg)
	opt := DefaultOptions()
	opt.Iterations = 120

	run := func() Portfolio { return MultiStart(s, eval.New(&cfg), opt, 4) }
	a, b := run(), run()
	if a.Best.Cost != b.Best.Cost || a.BestRestart != b.BestRestart {
		t.Fatalf("portfolio not deterministic: (%v, %d) vs (%v, %d)",
			a.Best.Cost, a.BestRestart, b.Best.Cost, b.BestRestart)
	}
	if len(a.Costs) != 4 {
		t.Fatalf("costs = %d, want 4", len(a.Costs))
	}
	for i := range a.Costs {
		if a.Costs[i] != b.Costs[i] {
			t.Errorf("restart %d: %v vs %v", i, a.Costs[i], b.Costs[i])
		}
	}

	// Warm evaluator (shared across both portfolios): still bit-identical.
	ev := eval.New(&cfg)
	c, d := MultiStart(s, ev, opt, 4), MultiStart(s, ev, opt, 4)
	if c.Best.Cost != a.Best.Cost || d.Best.Cost != a.Best.Cost {
		t.Errorf("warm-cache portfolio diverged: %v, %v vs %v", c.Best.Cost, d.Best.Cost, a.Best.Cost)
	}
}

func TestMultiStartSingleEqualsOptimize(t *testing.T) {
	cfg := arch.GArch72()
	s := portfolioScheme(t, &cfg)
	opt := DefaultOptions()
	opt.Iterations = 100
	want := Optimize(s, eval.New(&cfg), opt)
	for _, restarts := range []int{1, 0, -3} {
		got := MultiStart(s, eval.New(&cfg), opt, restarts)
		if got.Best.Cost != want.Cost || got.BestRestart != 0 {
			t.Errorf("restarts=%d: cost %v (restart %d), want %v (restart 0)",
				restarts, got.Best.Cost, got.BestRestart, want.Cost)
		}
		if len(got.Costs) != 1 {
			t.Errorf("restarts=%d: %d costs", restarts, len(got.Costs))
		}
	}
}

// TestMultiStartFoldsBest: the winner must be the minimum over restart
// costs, and each restart must equal a standalone run with its derived seed.
func TestMultiStartFoldsBest(t *testing.T) {
	cfg := arch.GArch72()
	s := portfolioScheme(t, &cfg)
	opt := DefaultOptions()
	opt.Iterations = 120
	p := MultiStart(s, eval.New(&cfg), opt, 4)

	best := math.Inf(1)
	for i, c := range p.Costs {
		o := opt
		o.Seed = RestartSeed(opt.Seed, i)
		solo := Optimize(s, eval.New(&cfg), o)
		if solo.Cost != c {
			t.Errorf("restart %d cost %v, standalone %v", i, c, solo.Cost)
		}
		if c < best {
			best = c
		}
	}
	if p.Best.Cost != best {
		t.Errorf("best %v, want min %v", p.Best.Cost, best)
	}
	if p.Costs[p.BestRestart] != p.Best.Cost {
		t.Errorf("BestRestart %d does not match Best", p.BestRestart)
	}
}

func TestBetterCostNaN(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 2, true},
		{2, 1, false},
		{nan, 1, false},
		{nan, math.Inf(1), false},
		{1, nan, true},
		{math.Inf(1), nan, true},
		{nan, nan, false},
		{1, 1, false},
	}
	for _, c := range cases {
		if got := betterCost(c.a, c.b); got != c.want {
			t.Errorf("betterCost(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
