// Package sa implements the Gemini LP SPM exploration engine (Sec. V-B1):
// a simulated-annealing search over the optimization space defined by the
// layer-centric encoding, driven by the five operators of internal/core.
// Layer groups are selected with probability proportional to their
// optimization-space size, and each accepted move is evaluated through the
// full Evaluator, so the search inherently minimizes costly D2D traffic.
//
//gemini:deterministic
//gemini:documented
package sa

import (
	"math"
	"math/rand"
	"sort"

	"gemini/internal/core"
	"gemini/internal/eval"
	"gemini/internal/space"
)

// Options configures the annealer.
type Options struct {
	// Iterations is the number of SA steps.
	Iterations int
	// Seed makes runs reproducible.
	Seed int64
	// Beta and Gamma are the objective exponents of E^beta * D^gamma.
	Beta, Gamma float64
	// InitTemp is the initial relative temperature: a move that worsens the
	// cost by InitTemp x 100% is accepted with probability 1/e at start.
	InitTemp float64
	// FinalTemp is the relative temperature at the last iteration.
	FinalTemp float64
	// Ops restricts the search to a subset of the five operators
	// (nil/empty = all). Used by the operator ablation.
	Ops []core.Op

	// Dominated, when non-nil, is the in-loop abandonment hook: it is polled
	// every CheckEvery iterations with the best cost found so far, and a
	// true return stops the search immediately (Result.Abandoned is set).
	// The DSE scheduler uses it to walk a dominated candidate out of the
	// annealing hot loop instead of letting it finish the restart. The check
	// consumes no randomness and allocates nothing, so a hook that never
	// fires leaves the search bit-identical to an unhooked run.
	Dominated func(bestSoFar float64) bool
	// CheckEvery is the Dominated polling stride in iterations
	// (<= 0: every 32).
	CheckEvery int
}

// defaultCheckEvery is the Dominated polling stride when CheckEvery is not
// set: frequent enough that a dominated cell wastes at most a few dozen
// group evaluations, rare enough to keep the atomic incumbent read off the
// per-iteration path.
const defaultCheckEvery = 32

// DefaultOptions returns the settings used by the experiments.
func DefaultOptions() Options {
	return Options{
		Iterations: 2000,
		Seed:       1,
		Beta:       1,
		Gamma:      1,
		InitTemp:   0.25,
		FinalTemp:  0.002,
	}
}

// Result reports the annealing outcome.
type Result struct {
	Scheme   *core.Scheme
	Eval     eval.Result
	Cost     float64
	InitCost float64

	Attempted, Applied, Accepted int
	OpAccepted                   [5]int

	// Abandoned reports that the Dominated hook stopped the search before
	// Iterations completed; Scheme/Cost hold the best state found up to that
	// point (callers that abandon because the cell is dominated typically
	// discard them).
	Abandoned bool
}

// Improvement returns InitCost / Cost (>= 1 when the search helped).
func (r Result) Improvement() float64 {
	if r.Cost <= 0 {
		return 1
	}
	return r.InitCost / r.Cost
}

type state struct {
	energy []float64 // per-group energy (J)
	delay  []float64 // per-group delay (s)
	feas   []bool
}

// cost folds the per-group energy/delay into the scalar SA objective. It
// runs once per move, on the hot path.
//
//gemini:noalloc
func (st *state) cost(beta, gamma float64) float64 {
	var e, d float64
	for i := range st.energy {
		if !st.feas[i] {
			return math.Inf(1)
		}
		e += st.energy[i]
		d += st.delay[i]
	}
	if d <= 0 || e <= 0 {
		return math.Inf(1)
	}
	return math.Pow(e, beta) * math.Pow(d, gamma)
}

// measure re-evaluates one group after a move and records the outcome in
// the state's reused slices.
//
//gemini:noalloc
func measure(ev *eval.Evaluator, s *core.Scheme, st *state, gi int) {
	gr := ev.EvaluateGroup(s, gi)
	st.feas[gi] = gr.Feasible
	st.energy[gi] = gr.Energy.Total()
	st.delay[gi] = gr.Delay
}

// Optimize anneals the scheme in place and returns the best scheme found.
// The input scheme is not modified.
func Optimize(input *core.Scheme, ev *eval.Evaluator, opt Options) Result {
	s := input.Clone()
	rng := rand.New(rand.NewSource(opt.Seed))
	mu := &core.Mutator{Graph: s.Graph, Drams: ev.Cfg.DRAMControllers(), Rng: rng}
	pickOp := func() (core.Op, bool) {
		if len(opt.Ops) == 0 {
			return 0, false
		}
		return opt.Ops[rng.Intn(len(opt.Ops))], true
	}

	n := len(s.Groups)
	st := &state{energy: make([]float64, n), delay: make([]float64, n), feas: make([]bool, n)}
	for gi := range s.Groups {
		measure(ev, s, st, gi)
	}
	cur := st.cost(opt.Beta, opt.Gamma)
	res := Result{InitCost: cur}

	// Consumer-aware invalidation for OP5: an OF change in group gi can only
	// affect gi itself and the groups that fetch data produced in gi (their
	// DRAM read source moves). Group membership is fixed under all five
	// operators, so the adjacency is computed once.
	affected := consumerClosure(s)

	// Group selection weights proportional to optimization-space size.
	// Selection runs on every iteration of the hot loop, so the cumulative
	// weights are precomputed once and each pick is a binary search instead
	// of an O(n) scan: pick returns the smallest gi with cumW[gi] >= x,
	// which is the group the linear subtraction scan would land on.
	cumW := make([]float64, n)
	totalW := 0.0
	for gi, g := range s.Groups {
		totalW += space.GroupWeight(ev.Cfg.Cores(), len(g.MSs))
		cumW[gi] = totalW
	}
	pick := func() int {
		x := rng.Float64() * totalW
		gi := sort.SearchFloat64s(cumW, x)
		if gi >= n {
			return n - 1
		}
		return gi
	}

	best := s.Clone()
	bestCost := cur
	temp := opt.InitTemp
	cooling := 1.0
	if opt.Iterations > 1 && opt.FinalTemp > 0 && opt.InitTemp > 0 {
		cooling = math.Pow(opt.FinalTemp/opt.InitTemp, 1/float64(opt.Iterations-1))
	}

	// A rejected move must restore exactly the state entries measure wrote:
	// gi alone for OP1-4, affected[gi] for OP5. Snapshotting only those
	// entries replaces three O(n) copies per iteration with O(touched).
	maxTouched := 1
	for _, a := range affected {
		if len(a) > maxTouched {
			maxTouched = len(a)
		}
	}
	saveE := make([]float64, maxTouched)
	saveD := make([]float64, maxTouched)
	saveF := make([]bool, maxTouched)
	var giBuf [1]int
	// dirty marks groups where s has drifted from the best snapshot.
	dirty := make([]bool, n)

	checkEvery := opt.CheckEvery
	if checkEvery <= 0 {
		checkEvery = defaultCheckEvery
	}

	for it := 0; it < opt.Iterations; it++ {
		// In-loop abandonment: poll the Dominated hook on a fixed stride.
		// The check reads no randomness and touches no search state, so runs
		// where the hook never fires stay bit-identical to unhooked runs.
		if opt.Dominated != nil && it != 0 && it%checkEvery == 0 && opt.Dominated(bestCost) {
			res.Abandoned = true
			break
		}
		gi := pick()
		res.Attempted++
		old := s.Groups[gi]
		cand := old.Clone()
		s.Groups[gi] = cand
		var op core.Op
		var ok bool
		if restricted, use := pickOp(); use {
			op, ok = restricted, mu.ApplyOp(cand, restricted)
		} else {
			op, ok = mu.Apply(cand)
		}
		if !ok {
			s.Groups[gi] = old
			temp *= cooling
			continue
		}
		res.Applied++

		touched := giBuf[:]
		touched[0] = gi
		if op == core.OpFD {
			// OF changes alter where consumer groups fetch data from; only
			// the mutated group and its consumers can change.
			touched = affected[gi]
		}
		for j, gj := range touched {
			saveE[j], saveD[j], saveF[j] = st.energy[gj], st.delay[gj], st.feas[gj]
			measure(ev, s, st, gj)
		}
		next := st.cost(opt.Beta, opt.Gamma)

		accept := false
		if next <= cur {
			accept = true
		} else if !math.IsInf(next, 1) {
			rel := (next - cur) / cur
			accept = rng.Float64() < math.Exp(-rel/temp)
		}
		if accept {
			cur = next
			res.Accepted++
			res.OpAccepted[int(op)]++
			dirty[gi] = true
			if cur < bestCost {
				bestCost = cur
				// Sync best with s by re-cloning only the groups that have
				// diverged since the last snapshot.
				for gj, d := range dirty {
					if d {
						best.Groups[gj] = s.Groups[gj].Clone()
						dirty[gj] = false
					}
				}
			}
		} else {
			s.Groups[gi] = old
			for j, gj := range touched {
				st.energy[gj], st.delay[gj], st.feas[gj] = saveE[j], saveD[j], saveF[j]
			}
		}
		temp *= cooling
	}

	res.Scheme = best
	res.Cost = bestCost
	res.Eval = ev.Evaluate(best)
	return res
}

// consumerClosure returns, for each group, the ascending list of groups to
// re-measure when its flow-of-data encoding changes: the group itself plus
// every group containing a consumer of one of its layers.
func consumerClosure(s *core.Scheme) [][]int {
	n := len(s.Groups)
	layerGroup := make(map[int]int)
	for gi, g := range s.Groups {
		for _, ms := range g.MSs {
			layerGroup[ms.Layer] = gi
		}
	}
	adj := make([][]bool, n)
	for gi := range adj {
		adj[gi] = make([]bool, n)
		adj[gi][gi] = true
	}
	for _, l := range s.Graph.Layers {
		cg, ok := layerGroup[l.ID]
		if !ok {
			continue
		}
		for _, in := range l.Inputs {
			if in.Src < 0 {
				continue
			}
			if pg, ok := layerGroup[in.Src]; ok && pg != cg {
				adj[pg][cg] = true
			}
		}
	}
	affected := make([][]int, n)
	for gi := range adj {
		for gj, hit := range adj[gi] {
			if hit {
				affected[gi] = append(affected[gi], gj)
			}
		}
	}
	return affected
}
