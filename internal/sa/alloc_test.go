package sa

import "testing"

// TestMovePathAllocFree pins the //gemini:noalloc annotations on measure and
// (*state).cost: after warm-up, one SA move's re-measurement and cost fold
// perform zero heap allocations. BenchmarkEvaluateGroup (BENCH_1) pins the
// evaluator side of the hot loop; this covers the sa-side helpers so the
// hotpathalloc analyzer's annotation set stays tied to measured behavior.
func TestMovePathAllocFree(t *testing.T) {
	s, ev, _ := setup(t)
	n := len(s.Groups)
	st := &state{energy: make([]float64, n), delay: make([]float64, n), feas: make([]bool, n)}
	for gi := 0; gi < n; gi++ {
		measure(ev, s, st, gi) // warm the evaluator memo and scratch pools
	}
	allocs := testing.AllocsPerRun(200, func() {
		measure(ev, s, st, 0)
		_ = st.cost(1, 1)
	})
	if allocs != 0 {
		t.Fatalf("SA move path allocates %.0f times per move, want 0", allocs)
	}
}
