package sa

import (
	"math"
	"runtime/debug"

	"gemini/internal/core"
	"gemini/internal/eval"
)

// PanicInfo records a restart that panicked mid-anneal: which restart, the
// recovered value, and the goroutine stack at the panic site.
type PanicInfo struct {
	Restart int
	Value   any
	Stack   string
}

// Portfolio is the outcome of a multi-start annealing run.
type Portfolio struct {
	// Best is the winning restart's full result.
	Best Result
	// BestRestart is the winning restart index (ties go to the lowest
	// index, so the fold is deterministic).
	BestRestart int
	// Costs records every restart's best cost, in restart order. Its length
	// is the number of restarts that actually ran; it is shorter than
	// Planned when patience or an abandon callback stopped the portfolio.
	Costs []float64
	// Planned is the requested portfolio width.
	Planned int
	// Abandoned reports that the Stop callback interrupted the portfolio
	// between restarts, or the per-restart Dominated hook interrupted one
	// mid-anneal. Best holds the best result of the restarts that did run,
	// but callers that abandon because the whole cell is dominated typically
	// discard it.
	Abandoned bool
	// Iterations is the total SA iterations attempted across every restart,
	// including the partial iterations of a mid-anneal abandoned restart.
	// The DSE scheduler aggregates it to account for the work in-loop
	// abandonment saves.
	Iterations int
	// Panic, when non-nil, records that a restart panicked. The portfolio
	// stops at the panicked restart and is NOT a settled outcome: folding
	// only the restarts that happened to precede the panic would make the
	// result depend on where the fault landed. Callers treat it as a
	// transient cell failure; a retry re-runs the whole portfolio with the
	// same derived seeds, so a successful retry is bit-identical to a
	// fault-free run.
	Panic *PanicInfo
}

// Skipped returns how many planned restarts never ran (a restart abandoned
// mid-anneal counts: it never completed).
func (p Portfolio) Skipped() int { return p.Planned - len(p.Costs) }

// RestartSeed derives the seed of restart i from the base seed. Restart 0
// uses the base seed itself, so a one-restart portfolio is bit-identical to
// a plain Optimize call.
func RestartSeed(base int64, i int) int64 {
	return base + int64(i)
}

// AdaptiveOptions configures early stopping of a multi-start portfolio.
// The zero value disables both mechanisms, making MultiStartAdaptive
// bit-identical to MultiStart.
type AdaptiveOptions struct {
	// Patience stops the portfolio after this many consecutive restarts
	// that failed to improve the best cost (<= 0: never stop early).
	// Restart 0 always runs, and any Patience >= restarts can never
	// trigger, so such portfolios are bit-identical to the fixed schedule.
	Patience int
	// Stop, when non-nil, is polled before every restart after the first;
	// returning true abandons the remaining restarts immediately. The DSE
	// scheduler uses it to re-read the live pruning incumbent between
	// restarts and walk away from dominated cells.
	Stop func() bool
}

// MultiStart anneals the scheme restarts times with deterministically
// derived seeds and folds the runs to the best result. The restarts share
// the evaluator — and therefore its group-result memo or shared cache — so
// later restarts race over mostly warm entries. The fold is a pure
// deterministic reduction: lowest cost wins, ties break to the lowest
// restart index, and NaN costs never beat non-NaN ones, so a fixed
// (scheme, evaluator params, options, restarts) tuple always yields a
// bit-identical winner regardless of cache state.
func MultiStart(input *core.Scheme, ev *eval.Evaluator, opt Options, restarts int) Portfolio {
	return MultiStartAdaptive(input, ev, opt, restarts, AdaptiveOptions{})
}

// MultiStartAdaptive is MultiStart with an adaptive schedule: restarts run
// in the same deterministic order with the same derived seeds, but the
// portfolio stops early after ao.Patience consecutive non-improving seeds,
// and ao.Stop can abandon it between restarts. The fold over the restarts
// that do run is identical to MultiStart's, so a portfolio that never stops
// early (Patience <= 0 or >= restarts, Stop never firing) is bit-identical
// to the fixed schedule.
func MultiStartAdaptive(input *core.Scheme, ev *eval.Evaluator, opt Options, restarts int, ao AdaptiveOptions) Portfolio {
	if restarts < 1 {
		restarts = 1
	}
	return MultiStartRange(input, ev, opt, 0, restarts, ao)
}

// MultiStartRange runs the restart window [from, to) of the portfolio the
// base options define: restart i always anneals with RestartSeed(opt.Seed, i)
// regardless of the window, so a portfolio can be widened incrementally — the
// racing scheduler's rungs and checkpoint re-entry rely on folding a stored
// prefix [0, from) with a fresh window [from, to) being bit-identical to one
// [0, to) run. BestRestart is the absolute restart index. ao.Stop is polled
// before every restart except restart 0 of the full portfolio (a window with
// from > 0 resumes mid-portfolio, where the poll already happened between
// restarts); ao.Patience counts non-improving restarts within the window
// only. Requires 0 <= from < to; out-of-range arguments are clamped to the
// smallest valid window.
func MultiStartRange(input *core.Scheme, ev *eval.Evaluator, opt Options, from, to int, ao AdaptiveOptions) Portfolio {
	if from < 0 {
		from = 0
	}
	if to <= from {
		to = from + 1
	}
	p := Portfolio{Costs: make([]float64, 0, to-from), Planned: to - from}
	streak := 0
	for i := from; i < to; i++ {
		if (i > 0) && ao.Stop != nil && ao.Stop() {
			p.Abandoned = true
			break
		}
		o := opt
		o.Seed = RestartSeed(opt.Seed, i)
		r, pi := optimizeGuarded(input, ev, o, i)
		if pi != nil {
			p.Panic = pi
			break
		}
		p.Iterations += r.Attempted
		if r.Abandoned {
			// The Dominated hook cut this restart off mid-anneal: its partial
			// cost is not a completed restart outcome, so it joins neither
			// Costs nor the fold.
			p.Abandoned = true
			break
		}
		p.Costs = append(p.Costs, r.Cost)
		if i == from || BetterCost(r.Cost, p.Best.Cost) {
			p.Best = r
			p.BestRestart = i
			streak = 0
		} else {
			streak++
		}
		if ao.Patience > 0 && streak >= ao.Patience {
			break
		}
	}
	return p
}

// optimizeGuarded runs one restart under a panic guard, so a fault in one
// anneal (a pathological scheme, an injected chaos panic) surfaces as data
// on the portfolio instead of unwinding the scheduler worker.
func optimizeGuarded(input *core.Scheme, ev *eval.Evaluator, o Options, restart int) (r Result, pi *PanicInfo) {
	defer func() {
		if v := recover(); v != nil {
			pi = &PanicInfo{Restart: restart, Value: v, Stack: string(debug.Stack())}
		}
	}()
	return Optimize(input, ev, o), nil
}

// BetterCost reports whether a strictly improves on b under a total order
// where NaN is worse than everything (including +Inf).
func BetterCost(a, b float64) bool {
	if math.IsNaN(a) {
		return false
	}
	if math.IsNaN(b) {
		return true
	}
	return a < b
}
