package sa

import (
	"math"

	"gemini/internal/core"
	"gemini/internal/eval"
)

// Portfolio is the outcome of a multi-start annealing run.
type Portfolio struct {
	// Best is the winning restart's full result.
	Best Result
	// BestRestart is the winning restart index (ties go to the lowest
	// index, so the fold is deterministic).
	BestRestart int
	// Costs records every restart's best cost, in restart order.
	Costs []float64
}

// RestartSeed derives the seed of restart i from the base seed. Restart 0
// uses the base seed itself, so a one-restart portfolio is bit-identical to
// a plain Optimize call.
func RestartSeed(base int64, i int) int64 {
	return base + int64(i)
}

// MultiStart anneals the scheme restarts times with deterministically
// derived seeds and folds the runs to the best result. The restarts share
// the evaluator — and therefore its group-result memo or shared cache — so
// later restarts race over mostly warm entries. The fold is a pure
// deterministic reduction: lowest cost wins, ties break to the lowest
// restart index, and NaN costs never beat non-NaN ones, so a fixed
// (scheme, evaluator params, options, restarts) tuple always yields a
// bit-identical winner regardless of cache state.
func MultiStart(input *core.Scheme, ev *eval.Evaluator, opt Options, restarts int) Portfolio {
	if restarts < 1 {
		restarts = 1
	}
	p := Portfolio{Costs: make([]float64, restarts)}
	for i := 0; i < restarts; i++ {
		o := opt
		o.Seed = RestartSeed(opt.Seed, i)
		r := Optimize(input, ev, o)
		p.Costs[i] = r.Cost
		if i == 0 || betterCost(r.Cost, p.Best.Cost) {
			p.Best = r
			p.BestRestart = i
		}
	}
	return p
}

// betterCost reports whether a strictly improves on b under a total order
// where NaN is worse than everything (including +Inf).
func betterCost(a, b float64) bool {
	if math.IsNaN(a) {
		return false
	}
	if math.IsNaN(b) {
		return true
	}
	return a < b
}
