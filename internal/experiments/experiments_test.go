package experiments

import (
	"strings"
	"testing"

	"gemini/internal/dse"
)

func quick() Options {
	o := QuickOptions()
	o.SAIterations = 80
	o.Batches = []int{2}
	return o
}

func TestFig5Quick(t *testing.T) {
	r, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 2 models x 1 batch x 3 settings.
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Setting == "S-Arch+T-Map" && (row.NormDelay != 1 || row.NormEnergy != 1) {
			t.Errorf("baseline not normalized to 1: %+v", row)
		}
		if row.Delay <= 0 || row.Energy.Total() <= 0 {
			t.Errorf("degenerate row: %+v", row)
		}
	}
	// The co-exploration shape: G wins on both axes vs the baseline.
	if r.PerfGain < 1 {
		t.Errorf("perf gain %.2f < 1", r.PerfGain)
	}
	if r.EnergyGain < 1 {
		t.Errorf("energy gain %.2f < 1", r.EnergyGain)
	}
	// Mapping-only gains cannot exceed... they can, but must be >= 1 since
	// SA starts from the baseline scheme.
	if r.MapOnlyPerfGain < 1 || r.MapOnlyEnergyGain < 1 {
		t.Errorf("mapping-only gains below 1: %v / %v", r.MapOnlyPerfGain, r.MapOnlyEnergyGain)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "headline") {
		t.Error("print output missing headline")
	}
}

func TestTArchQuick(t *testing.T) {
	r, err := TArch(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.PerfGain < 1 {
		t.Errorf("perf gain %.2f < 1 (paper: 1.74)", r.PerfGain)
	}
	if r.MCReduction <= 0 {
		t.Errorf("MC reduction %.2f, want positive (paper: 40.1%%)", r.MCReduction)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "folded torus") {
		t.Error("missing print output")
	}
}

func TestFig6Quick(t *testing.T) {
	o := quick()
	r, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no scatter points")
	}
	// Every point is normalized to the optimum, so >= some point near 1.
	minEDP := r.Points[0].EDP
	for _, p := range r.Points {
		if p.EDP < minEDP {
			minEDP = p.EDP
		}
		if p.EDP <= 0 || p.MC <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if minEDP > 1.0001 {
		t.Errorf("min normalized EDP = %v, want <= 1", minEDP)
	}
	if len(r.Optima) != 8 { // 2 spaces x 4 objectives
		t.Errorf("optima = %d, want 8", len(r.Optima))
	}
	for k, ch := range r.OptimaChiplets {
		if ch < 1 {
			t.Errorf("%s: chiplets = %d", k, ch)
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "objective optima") {
		t.Error("print incomplete")
	}
}

func TestFig7Quick(t *testing.T) {
	r, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 objectives", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Delay <= 0 || row.DRAMBytes <= 0 || row.AvgLayersPerGroup <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "MC*E*D") {
		t.Error("print incomplete")
	}
}

func TestFig8Quick(t *testing.T) {
	r, err := Fig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(r.Rows))
	}
	byScheme := map[string]map[float64]float64{}
	for _, row := range r.Rows {
		if byScheme[row.Scheme] == nil {
			byScheme[row.Scheme] = map[float64]float64{}
		}
		byScheme[row.Scheme][row.TOPS] = row.MCED
	}
	for tops, v := range byScheme["Optimal"] {
		if v < 0.999 || v > 1.001 {
			t.Errorf("Optimal at %.0f TOPs normalized to %v, want 1", tops, v)
		}
		// Paper shape: Simba-chiplet constructions are far worse than the
		// per-scale optimum, and worse than the joint optimum.
		if byScheme["Simba-chiplets"][tops] <= v {
			t.Errorf("Simba construction at %.0f TOPs should be worse than Optimal", tops)
		}
		if byScheme["Simba-chiplets"][tops] < byScheme["JointOptimal"][tops] {
			t.Errorf("Joint optimal should beat Simba construction at %.0f TOPs", tops)
		}
	}
	if r.JointGap < 0 {
		t.Errorf("joint gap %v, want >= 0 (joint cannot beat per-scale optimum)", r.JointGap)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "joint-optimal gap") {
		t.Error("print incomplete")
	}
}

func TestFig9Quick(t *testing.T) {
	r, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.TangramHops <= 0 || r.GeminiHops <= 0 {
		t.Fatal("missing hop counts")
	}
	// The paper's Fig. 9 claim: Gemini reduces hops and especially D2D hops.
	if r.HopReduction < 0 {
		t.Errorf("hop reduction %.2f negative", r.HopReduction)
	}
	if r.GeminiD2DHops > r.TangramD2DHops {
		t.Errorf("SA increased D2D hops: %v -> %v", r.TangramD2DHops, r.GeminiD2DHops)
	}
	if !strings.Contains(r.TangramASCII, "|") || !strings.Contains(r.GeminiASCII, "|") {
		t.Error("heatmaps missing chiplet markers")
	}
	if !strings.HasPrefix(r.TangramCSV, "from_x") {
		t.Error("csv malformed")
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "hop reduction") {
		t.Error("print incomplete")
	}
}

func TestSpaceSizesTable(t *testing.T) {
	rows := SpaceSizes()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.AdvantageLog10 <= 0 {
			t.Errorf("M=%d N=%d: Gemini space should dwarf Tangram's", r.M, r.N)
		}
	}
	var sb strings.Builder
	PrintSpaceSizes(&sb)
	if !strings.Contains(sb.String(), "Sec. IV-B") {
		t.Error("print incomplete")
	}
}

// TestSharedSessionAcrossFigures pins the cross-figure session reuse: Fig. 6
// and Fig. 7 sweep the same tiny space, so running them through one session
// must produce identical results to sessionless runs while the second
// figure's sweep lands on a warm shared cache.
func TestSharedSessionAcrossFigures(t *testing.T) {
	plain := quick()
	want6, err := Fig6(plain)
	if err != nil {
		t.Fatal(err)
	}
	want7, err := Fig7(plain)
	if err != nil {
		t.Fatal(err)
	}

	shared := quick()
	shared.Session = dse.NewSession()
	got6, err := Fig6(shared)
	if err != nil {
		t.Fatal(err)
	}
	afterFig6 := shared.Session.CacheStats()
	got7, err := Fig7(shared)
	if err != nil {
		t.Fatal(err)
	}
	afterFig7 := shared.Session.CacheStats()

	if len(got6.Points) != len(want6.Points) {
		t.Fatalf("fig6 points: %d vs %d", len(got6.Points), len(want6.Points))
	}
	for i := range want6.Points {
		if want6.Points[i] != got6.Points[i] {
			t.Errorf("fig6 point %d differs: %+v vs %+v", i, want6.Points[i], got6.Points[i])
		}
	}
	if len(got7.Rows) != len(want7.Rows) {
		t.Fatalf("fig7 rows: %d vs %d", len(got7.Rows), len(want7.Rows))
	}
	for i := range want7.Rows {
		if want7.Rows[i] != got7.Rows[i] {
			t.Errorf("fig7 row %d differs: %+v vs %+v", i, want7.Rows[i], got7.Rows[i])
		}
	}

	// Fig. 7 re-sweeps Fig. 6's 128 TOPs space under identical options, so
	// its cells resume from the session checkpoint (and anything re-mapped
	// rides the warm cache).
	if shared.Session.ResumedCells() == 0 && afterFig7.Hits <= afterFig6.Hits {
		t.Errorf("fig7 reused nothing: resumed=%d, hits %d -> %d",
			shared.Session.ResumedCells(), afterFig6.Hits, afterFig7.Hits)
	}
}
