package experiments

import (
	"strings"
	"testing"
)

func TestChipletGranularityQuick(t *testing.T) {
	r, err := ChipletGranularity(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byChiplets := map[int]GranularityRow{}
	for _, row := range r.Rows {
		byChiplets[row.Chiplets] = row
		if row.Yield <= 0 || row.Yield > 1 {
			t.Errorf("%d chiplets: yield %v", row.Chiplets, row.Yield)
		}
	}
	// Paper insight 1 shape: finer partitioning raises the D2D share and
	// per-chiplet yield, and 36 chiplets are strictly worse than 2 under
	// MC*E*D.
	if byChiplets[36].D2DShare <= byChiplets[2].D2DShare {
		t.Error("finer chiplets should spend more area on D2D")
	}
	if byChiplets[36].Yield <= byChiplets[1].Yield {
		t.Error("smaller chiplets must yield better")
	}
	if byChiplets[36].MCED <= byChiplets[2].MCED {
		t.Errorf("36 chiplets (%.2f) should be worse than 2 (%.2f) under MC*E*D",
			byChiplets[36].MCED, byChiplets[2].MCED)
	}
	if byChiplets[36].MC.Total() <= byChiplets[2].MC.Total() {
		t.Error("36 chiplets should cost more than 2")
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "chiplet granularity") {
		t.Error("print incomplete")
	}
}

func TestCoreGranularityQuick(t *testing.T) {
	// Pipeline-length benefits need the throughput scenario: with tiny
	// batches, fill/drain overhead legitimately suppresses fusion.
	o := quick()
	o.Batches = []int{16}
	r, err := CoreGranularity(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// MC rises with core count (insight 2's monotone claim).
	byCores := map[int]CoreGranularityRow{}
	maxCores, minCores := 0, 1<<30
	for _, row := range r.Rows {
		byCores[row.Cores] = row
		if row.Cores > maxCores {
			maxCores = row.Cores
		}
		if row.Cores < minCores {
			minCores = row.Cores
		}
	}
	if byCores[maxCores].MC <= byCores[minCores].MC {
		t.Errorf("MC should rise with core count: %v @%d vs %v @%d",
			byCores[maxCores].MC, maxCores, byCores[minCores].MC, minCores)
	}
	// More cores enable longer pipelines.
	if byCores[maxCores].AvgLayersPerGroup < byCores[minCores].AvgLayersPerGroup {
		t.Errorf("more cores should allow longer pipelines: %.1f @%d vs %.1f @%d",
			byCores[maxCores].AvgLayersPerGroup, maxCores,
			byCores[minCores].AvgLayersPerGroup, minCores)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "core granularity") {
		t.Error("print incomplete")
	}
}
