package experiments

import (
	"fmt"
	"io"
	"math"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dse"
	"gemini/internal/eval"
	"gemini/internal/noc"
	"gemini/internal/sa"
)

// Fig8Row is one construction scheme for one target compute level.
type Fig8Row struct {
	TOPS   float64
	Scheme string // Simba, CrossReuse, JointOptimal, Optimal

	Arch          string
	MC            float64
	Energy, Delay float64
	MCED          float64 // normalized to Optimal of the same TOPS
}

// Fig8Result is the chiplet-reuse study.
type Fig8Result struct {
	Rows []Fig8Row
	// JointGap is the average MC*E*D overhead of Joint Optimal over
	// Optimal (paper: ~34%).
	JointGap float64
}

// simbaScaled builds an accelerator from Simba chiplets at roughly the
// target TOPS (one core per chiplet, Simba per-core parameters).
func simbaScaled(targetTOPS float64) arch.Config {
	base := arch.Simba()
	cores := int(math.Round(targetTOPS * 1000 / (2 * float64(base.MACsPerCore) * base.FreqGHz)))
	w, h := dse.GridFor(cores)
	if float64(w) > 2.5*float64(h) {
		w, h = dse.GridFor(cores + 1)
	}
	cfg := base
	cfg.Name = fmt.Sprintf("Simba-x%d", w*h)
	cfg.CoresX, cfg.CoresY = w, h
	cfg.XCut, cfg.YCut = w, h // every core is its own chiplet
	cfg.DRAMBW = 2 * targetTOPS
	return cfg
}

// Fig8 reproduces the chiplet-reuse study for 128 and 512 TOPs: building
// from Simba chiplets, cross-reusing each scale's optimal chiplet at the
// other scale, the jointly optimized chiplet, and each scale's own optimum.
func Fig8(opt Options) (*Fig8Result, error) {
	models := opt.fig8Models()
	batch := 64
	if len(opt.Batches) > 0 {
		batch = opt.Batches[len(opt.Batches)-1]
	}
	d := opt.dseOptions(batch)

	// Fig. 8 needs construction-scheme optima, not the whole scatter, so
	// even full mode uses a trimmed grid (quick mode a tiny one).
	sp128, sp512 := dse.Space128().Reduced(), dse.Space512().Reduced()
	if opt.Quick {
		sp128, sp512 = tinySpace(dse.Space128()), tinySpace(dse.Space512())
	}
	r128 := opt.run(sp128.Enumerate(), models, d)
	r512 := opt.run(sp512.Enumerate(), models, d)
	best128, best512 := dse.Best(r128), dse.Best(r512)
	if best128 == nil || best512 == nil {
		return nil, fmt.Errorf("fig8: no feasible optimum")
	}

	// Joint: the most promising 128 TOPs bases, scaled x4 to 512 TOPs.
	bases := make([]arch.Config, 0, 8)
	for i := range r128 {
		if r128[i].Feasible {
			bases = append(bases, r128[i].Cfg)
		}
		if len(bases) == 8 {
			break
		}
	}
	joint := opt.jointRun(bases, []int{1, 4}, models, d)
	var jbest *dse.JointResult
	for i := range joint {
		if joint[i].Feasible {
			jbest = &joint[i]
			break
		}
	}
	if jbest == nil {
		return nil, fmt.Errorf("fig8: no feasible joint candidate")
	}

	mce := func(r *dse.CandidateResult) float64 { return r.MC.Total() * r.Energy * r.Delay }

	evalOne := func(cfg arch.Config) (*dse.CandidateResult, error) {
		rs := opt.run([]arch.Config{cfg}, models, d)
		if len(rs) == 0 || !rs[0].Feasible {
			return nil, fmt.Errorf("fig8: %s infeasible", cfg.Name)
		}
		return &rs[0], nil
	}

	res := &Fig8Result{}
	addRow := func(tops float64, scheme string, cr *dse.CandidateResult, norm float64) {
		res.Rows = append(res.Rows, Fig8Row{
			TOPS: tops, Scheme: scheme, Arch: cr.Cfg.Name,
			MC: cr.MC.Total(), Energy: cr.Energy, Delay: cr.Delay,
			MCED: mce(cr) / norm,
		})
	}

	// 128 TOPs constructions.
	simba128, err := evalOne(simbaScaled(sp128.TOPS))
	if err != nil {
		return nil, err
	}
	// Cross reuse: one chiplet class of the 512 optimum at 128 scale (its
	// chiplet count divided by 4). When the 512 optimum is monolithic or
	// otherwise indivisible — reuse is then impossible by construction, the
	// paper's very point — fall back to the best divisible 512 candidate.
	cross128cfg, err := shrinkBest(r512, 4)
	if err != nil {
		return nil, err
	}
	cross128, err := evalOne(cross128cfg)
	if err != nil {
		return nil, err
	}
	n128 := mce(best128)
	addRow(sp128.TOPS, "Simba-chiplets", simba128, n128)
	addRow(sp128.TOPS, "CrossReuse", cross128, n128)
	addRow(sp128.TOPS, "JointOptimal", &jbest.Scaled[0], n128)
	addRow(sp128.TOPS, "Optimal", best128, n128)

	// 512 TOPs constructions.
	simba512, err := evalOne(simbaScaled(sp512.TOPS))
	if err != nil {
		return nil, err
	}
	cross512cfg, err := dse.ScaleUp(best128.Cfg, 4)
	if err != nil {
		return nil, err
	}
	cross512, err := evalOne(cross512cfg)
	if err != nil {
		return nil, err
	}
	n512 := mce(best512)
	addRow(sp512.TOPS, "Simba-chiplets", simba512, n512)
	addRow(sp512.TOPS, "CrossReuse", cross512, n512)
	addRow(sp512.TOPS, "JointOptimal", &jbest.Scaled[1], n512)
	addRow(sp512.TOPS, "Optimal", best512, n512)

	res.JointGap = (mce(&jbest.Scaled[0])/n128+mce(&jbest.Scaled[1])/n512)/2 - 1
	return res, nil
}

// shrinkBest returns the first (best-objective) feasible candidate whose
// chiplet grid divides by factor, shrunk to 1/factor of its compute.
func shrinkBest(results []dse.CandidateResult, factor int) (arch.Config, error) {
	for i := range results {
		if !results[i].Feasible {
			continue
		}
		if cfg, err := shrinkTo(results[i].Cfg, factor); err == nil {
			return cfg, nil
		}
	}
	return arch.Config{}, fmt.Errorf("fig8: no candidate shrinkable by %d", factor)
}

// shrinkTo divides a configuration's chiplet grid by factor (the inverse of
// ScaleUp), reusing one (or a few) of its chiplets at a lower scale.
func shrinkTo(cfg arch.Config, factor int) (arch.Config, error) {
	for fx := 1; fx <= factor; fx++ {
		if factor%fx != 0 {
			continue
		}
		fy := factor / fx
		if cfg.XCut%fx != 0 || cfg.YCut%fy != 0 {
			continue
		}
		out := cfg
		out.CoresX /= fx
		out.XCut /= fx
		out.CoresY /= fy
		out.YCut /= fy
		out.DRAMBW /= float64(factor)
		out.Name = out.String()
		if err := out.Validate(); err == nil {
			return out, nil
		}
	}
	return arch.Config{}, fmt.Errorf("fig8: cannot shrink %s by %d", cfg.Name, factor)
}

// Print writes the Fig. 8 table.
func (r *Fig8Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 8: chiplet reuse across 128/512 TOPs (MC*E*D normalized to each scale's Optimal)")
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", row.TOPS), row.Scheme, row.Arch,
			fmt.Sprintf("%.2f", row.MC), fmtE(row.Energy), fmtE(row.Delay),
			fmt.Sprintf("%.2f", row.MCED),
		})
	}
	table(w, []string{"TOPs", "scheme", "arch", "MC($)", "energy(J)", "delay(s)", "MC*E*D"}, rows)
	fmt.Fprintf(w, "\njoint-optimal gap over per-scale optimal: %+.0f%% (paper: ~+34%%)\n", 100*r.JointGap)
}

// Fig9Result compares the Tangram and Gemini SPM schemes of one transformer
// layer group on the 72 TOPs G-Arch.
type Fig9Result struct {
	Arch string

	TangramHops, GeminiHops       float64 // on-chip byte-hops per pass
	TangramD2DHops, GeminiD2DHops float64
	HopReduction, D2DReduction    float64 // fractions (paper: 34.2%, 74%)

	TangramMaxLink, GeminiMaxLink float64

	TangramASCII, GeminiASCII string
	TangramCSV, GeminiCSV     string
}

// Fig9 maps the heavy three-layer attention slice of a Transformer encoder
// (score matmul -> softmax -> context matmul, whose inter-layer volumes
// dwarf the rest, as in the paper's bottom-left inset) with the stripe
// heuristic and with the SA search, then renders both traffic heatmaps.
func Fig9(opt Options) (*Fig9Result, error) {
	cfg := arch.GArch72()
	g := cachedModel("transformer")
	// Locate the first attention block: l0.qk -> l0.sm -> l0.av.
	var layers []int
	for _, l := range g.Layers {
		switch l.Name {
		case "l0.qk", "l0.sm", "l0.av":
			layers = append(layers, l.ID)
		}
	}
	if len(layers) != 3 {
		return nil, fmt.Errorf("fig9: attention block not found")
	}
	bu := 2
	scheme, err := core.StripeScheme(g, &cfg, [][]int{layers}, []int{bu}, 64)
	if err != nil {
		return nil, err
	}
	ev := eval.New(&cfg)
	iters := 4000
	if opt.Quick {
		iters = 800
	}
	so := sa.DefaultOptions()
	so.Iterations = iters
	so.Seed = opt.Seed
	best := sa.Optimize(scheme, ev, so)

	res := &Fig9Result{Arch: cfg.Name}
	measure := func(s *core.Scheme) (on, d2d, maxLink float64, csv, ascii string, err error) {
		an, err := core.Analyze(s, 0, &cfg)
		if err != nil {
			return 0, 0, 0, "", "", err
		}
		net := noc.New(&cfg)
		tr := net.NewTraffic()
		for _, f := range an.ActFlows {
			tr.AddMulticast(f.Src, f.Dsts, f.Bytes)
		}
		for _, f := range an.ActDRAM {
			if f.Write {
				tr.AddDRAMWrite(f.Ctrl, f.Cores[0], f.Bytes)
			} else {
				tr.AddDRAMReadMulticast(f.Ctrl, f.Cores, f.Bytes)
			}
		}
		on, d2d, _ = tr.TotalBytes()
		maxLink, _ = tr.MaxLinkLoad()
		return on, d2d, maxLink, tr.CSV(), tr.ASCII(), nil
	}
	var errT error
	res.TangramHops, res.TangramD2DHops, res.TangramMaxLink, res.TangramCSV, res.TangramASCII, errT = measure(scheme)
	if errT != nil {
		return nil, errT
	}
	res.GeminiHops, res.GeminiD2DHops, res.GeminiMaxLink, res.GeminiCSV, res.GeminiASCII, errT = measure(best.Scheme)
	if errT != nil {
		return nil, errT
	}
	tot := res.TangramHops + res.TangramD2DHops
	if tot > 0 {
		res.HopReduction = 1 - (res.GeminiHops+res.GeminiD2DHops)/tot
	}
	if res.TangramD2DHops > 0 {
		res.D2DReduction = 1 - res.GeminiD2DHops/res.TangramD2DHops
	}
	return res, nil
}

// Print writes the Fig. 9 comparison with both ASCII heatmaps.
func (r *Fig9Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 9: transformer attention group traffic on %s\n", r.Arch)
	table(w, []string{"scheme", "byte-hops", "d2d byte-hops", "max link bytes"}, [][]string{
		{"Tangram", fmtE(r.TangramHops + r.TangramD2DHops), fmtE(r.TangramD2DHops), fmtE(r.TangramMaxLink)},
		{"Gemini", fmtE(r.GeminiHops + r.GeminiD2DHops), fmtE(r.GeminiD2DHops), fmtE(r.GeminiMaxLink)},
	})
	fmt.Fprintf(w, "\nhop reduction %.1f%% (paper: 34.2%%), D2D hop reduction %.1f%% (paper: 74%%)\n",
		100*r.HopReduction, 100*r.D2DReduction)
	fmt.Fprintf(w, "\nTangram heatmap (per-core peak outgoing pressure, 0-9):\n%s", r.TangramASCII)
	fmt.Fprintf(w, "\nGemini heatmap:\n%s", r.GeminiASCII)
}
