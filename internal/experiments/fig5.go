package experiments

import (
	"fmt"
	"io"

	"gemini/internal/arch"
	"gemini/internal/eval"
)

// Fig5Row is one (model, batch, setting) measurement of the overall
// comparison.
type Fig5Row struct {
	Model   string
	Batch   int
	Setting string // "S-Arch+T-Map", "S-Arch+G-Map", "G-Arch+G-Map"

	Delay  float64
	Energy eval.EnergyBreakdown

	// NormDelay/NormEnergy are normalized to the S-Arch+T-Map baseline of
	// the same (model, batch), as in the paper's figure.
	NormDelay, NormEnergy float64
}

// Fig5Result is the full Fig. 5 dataset plus the paper's headline numbers.
type Fig5Result struct {
	Rows []Fig5Row

	// PerfGain and EnergyGain are the geometric-mean improvements of
	// G-Arch+G-Map over S-Arch+T-Map (paper: 1.98x and 1.41x).
	PerfGain, EnergyGain float64
	// MapOnlyPerfGain isolates the mapping contribution (S-Arch+G-Map).
	MapOnlyPerfGain, MapOnlyEnergyGain float64
	// MCIncrease is MC(G-Arch)/MC(S-Arch) - 1 (paper: +14.3%).
	MCIncrease float64
}

type fig5Setting struct {
	name   string
	cfg    arch.Config
	anneal bool
}

// Fig5 reproduces the overall comparison: five DNNs x two batch sizes x
// three (architecture, mapping) settings.
func Fig5(opt Options) (*Fig5Result, error) {
	sArch := arch.Simba()
	gArch := arch.GArch72()
	settings := []fig5Setting{
		{"S-Arch+T-Map", sArch, false},
		{"S-Arch+G-Map", sArch, true},
		{"G-Arch+G-Map", gArch, true},
	}
	res := &Fig5Result{}
	var perf, energy, mapPerf, mapEnergy []float64
	for _, model := range opt.models() {
		for _, batch := range opt.Batches {
			base := -1.0
			var baseE float64
			for _, st := range settings {
				d := opt.dseOptions(batch)
				if !st.anneal {
					d.SAIterations = 0
				}
				mr, err := opt.mapModel(&st.cfg, model, d)
				if err != nil {
					return nil, fmt.Errorf("fig5: %s on %s: %w", model.Name, st.name, err)
				}
				row := Fig5Row{
					Model: model.Name, Batch: batch, Setting: st.name,
					Delay: mr.Delay, Energy: mr.Eval.Energy,
				}
				if base < 0 {
					base, baseE = mr.Delay, mr.Energy
				}
				row.NormDelay = mr.Delay / base
				row.NormEnergy = mr.Energy / baseE
				res.Rows = append(res.Rows, row)
				switch st.name {
				case "G-Arch+G-Map":
					perf = append(perf, base/mr.Delay)
					energy = append(energy, baseE/mr.Energy)
				case "S-Arch+G-Map":
					mapPerf = append(mapPerf, base/mr.Delay)
					mapEnergy = append(mapEnergy, baseE/mr.Energy)
				}
			}
		}
	}
	res.PerfGain = geomean(perf)
	res.EnergyGain = geomean(energy)
	res.MapOnlyPerfGain = geomean(mapPerf)
	res.MapOnlyEnergyGain = geomean(mapEnergy)
	res.MCIncrease = archMC(&gArch).Total()/archMC(&sArch).Total() - 1
	return res, nil
}

// Print writes the Fig. 5 dataset as the paper reports it: normalized delay
// and a DRAM/NoC/D2D/intra-core energy breakdown per bar.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 5: overall comparison (normalized to S-Arch+T-Map per model/batch)")
	var rows [][]string
	base := map[string]float64{}
	for _, row := range r.Rows {
		key := fmt.Sprintf("%s/%d", row.Model, row.Batch)
		if row.Setting == "S-Arch+T-Map" {
			base[key] = row.Energy.Total()
		}
		cells := []string{row.Model, fmt.Sprint(row.Batch), row.Setting,
			fmt.Sprintf("%.3f", row.NormDelay), fmt.Sprintf("%.3f", row.NormEnergy)}
		cells = append(cells, breakdownCells(row.Energy, base[key])...)
		rows = append(rows, cells)
	}
	table(w, []string{"model", "batch", "setting", "delay", "energy", "e.dram", "e.noc", "e.d2d", "e.intra"}, rows)
	fmt.Fprintf(w, "\nheadline: perf %.2fx, energy-eff %.2fx, MC %+.1f%% (paper: 1.98x, 1.41x, +14.3%%)\n",
		r.PerfGain, r.EnergyGain, 100*r.MCIncrease)
	fmt.Fprintf(w, "mapping only (S-Arch+G-Map): perf %.2fx, energy-eff %.2fx\n",
		r.MapOnlyPerfGain, r.MapOnlyEnergyGain)
}

// TArchResult is the Sec. VI-B2 folded-torus comparison.
type TArchResult struct {
	PerfGain    float64 // paper: 1.74x
	EnergyGain  float64 // paper: 1.13x
	MCReduction float64 // paper: 40.1%
}

// TArch compares G-Arch(torus)+G-Map against the Grayskull-like T-Arch
// with T-Map on a folded-torus NoC.
func TArch(opt Options) (*TArchResult, error) {
	tArch := arch.Grayskull()
	gArch := arch.GArchTorus()
	var perf, energy []float64
	for _, model := range opt.models() {
		for _, batch := range opt.Batches {
			dT := opt.dseOptions(batch)
			dT.SAIterations = 0
			base, err := opt.mapModel(&tArch, model, dT)
			if err != nil {
				return nil, fmt.Errorf("tarch: %s: %w", model.Name, err)
			}
			dG := opt.dseOptions(batch)
			ours, err := opt.mapModel(&gArch, model, dG)
			if err != nil {
				return nil, fmt.Errorf("tarch: %s on g-arch: %w", model.Name, err)
			}
			perf = append(perf, base.Delay/ours.Delay)
			energy = append(energy, base.Energy/ours.Energy)
		}
	}
	return &TArchResult{
		PerfGain:    geomean(perf),
		EnergyGain:  geomean(energy),
		MCReduction: 1 - archMC(&gArch).Total()/archMC(&tArch).Total(),
	}, nil
}

// Print writes the Sec. VI-B2 summary.
func (r *TArchResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Sec. VI-B2 (folded torus): G-Arch+G-Map vs T-Arch+T-Map: perf %.2fx, energy-eff %.2fx, MC %+.1f%% (paper: 1.74x, 1.13x, -40.1%%)\n",
		r.PerfGain, r.EnergyGain, -100*r.MCReduction)
}
