package experiments

import (
	"fmt"
	"io"
	"math"

	"gemini/internal/dnn"
	"gemini/internal/dse"
)

// Objectives explored in Fig. 6/7: the four MC/E/D combinations the paper
// marks with triangles.
var FourObjectives = []struct {
	Name string
	Obj  dse.Objective
}{
	{"E*D", dse.Objective{Alpha: 0, Beta: 1, Gamma: 1}},
	{"MC*E", dse.Objective{Alpha: 1, Beta: 1, Gamma: 0}},
	{"MC*D", dse.Objective{Alpha: 1, Beta: 0, Gamma: 1}},
	{"MC*E*D", dse.Objective{Alpha: 1, Beta: 1, Gamma: 1}},
}

// Fig6Point is one architecture candidate in the design-space scatter.
type Fig6Point struct {
	TOPS     float64
	Arch     string
	Chiplets int
	Cores    int
	EDP      float64 // normalized to the MC*E*D optimum
	MC       float64 // normalized likewise
}

// Fig6Result holds the scatter plus the per-objective optima.
type Fig6Result struct {
	Points []Fig6Point
	// Optima[objName] is the winning architecture tuple per objective.
	Optima map[string]string
	// OptimaChiplets records the chiplet counts of the optima, the
	// quantity behind the paper's granularity insight (1-4 moderate).
	OptimaChiplets map[string]int
	OptimaCores    map[string]int
}

// fig6Workload is the DSE workload (Transformer per Sec. VI-A1).
func fig6Workload(opt Options) []*dnn.Graph {
	if opt.Quick {
		return []*dnn.Graph{cachedModel("tinytransformer")}
	}
	return []*dnn.Graph{cachedModel("transformer")}
}

// Fig6 sweeps the candidate spaces of the given TOPS targets and reports
// EDP and MC of every candidate grouped by chiplet and core counts.
// Quick mode reduces the grid; full mode uses the Table I grids.
func Fig6(opt Options, spaces ...dse.Space) (*Fig6Result, error) {
	if len(spaces) == 0 {
		if opt.Quick {
			spaces = []dse.Space{tinySpace(dse.Space128()), tinySpace(dse.Space512())}
		} else {
			spaces = []dse.Space{dse.Space128(), dse.Space512()}
		}
	}
	models := fig6Workload(opt)
	batch := 64
	if len(opt.Batches) > 0 {
		batch = opt.Batches[len(opt.Batches)-1]
	}
	res := &Fig6Result{
		Optima:         map[string]string{},
		OptimaChiplets: map[string]int{},
		OptimaCores:    map[string]int{},
	}
	for _, sp := range spaces {
		cands := sp.Enumerate()
		d := opt.dseOptions(batch)
		results := opt.run(cands, models, d)
		// Normalize to the MC*E*D optimum.
		best := dse.Best(results)
		if best == nil {
			return nil, fmt.Errorf("fig6: no feasible candidate in %s", sp.Name)
		}
		for i := range results {
			r := &results[i]
			if !r.Feasible {
				continue
			}
			res.Points = append(res.Points, Fig6Point{
				TOPS:     sp.TOPS,
				Arch:     r.Cfg.Name,
				Chiplets: r.Cfg.Chiplets(),
				Cores:    r.Cfg.Cores(),
				EDP:      r.EDP() / best.EDP(),
				MC:       r.MC.Total() / best.MC.Total(),
			})
		}
		for _, o := range FourObjectives {
			var win *dse.CandidateResult
			bestScore := math.Inf(1)
			for i := range results {
				r := &results[i]
				if !r.Feasible {
					continue
				}
				s := dse.Score(r.MC.Total(), r.Energy, r.Delay, o.Obj)
				if s < bestScore {
					bestScore = s
					win = r
				}
			}
			if win != nil {
				key := fmt.Sprintf("%s/%s", sp.Name, o.Name)
				res.Optima[key] = win.Cfg.Name
				res.OptimaChiplets[key] = win.Cfg.Chiplets()
				res.OptimaCores[key] = win.Cfg.Cores()
			}
		}
	}
	return res, nil
}

// Print writes the Fig. 6 series: per (TOPS, chiplets) and (TOPS, cores)
// the best normalized EDP and MC, plus the four objective optima.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 6: design-space EDP and MC (normalized to the MC*E*D optimum)")
	type key struct {
		tops float64
		v    int
	}
	agg := func(group func(Fig6Point) int, label string) {
		bestEDP := map[key]float64{}
		bestMC := map[key]float64{}
		var keys []key
		for _, p := range r.Points {
			k := key{p.TOPS, group(p)}
			if _, ok := bestEDP[k]; !ok {
				bestEDP[k] = math.Inf(1)
				bestMC[k] = math.Inf(1)
				keys = append(keys, k)
			}
			if p.EDP < bestEDP[k] {
				bestEDP[k] = p.EDP
			}
			if p.MC < bestMC[k] {
				bestMC[k] = p.MC
			}
		}
		var rows [][]string
		for _, k := range keys {
			rows = append(rows, []string{
				fmt.Sprintf("%.0f", k.tops), fmt.Sprint(k.v),
				fmt.Sprintf("%.3f", bestEDP[k]), fmt.Sprintf("%.3f", bestMC[k]),
			})
		}
		table(w, []string{"TOPs", label, "best EDP", "best MC"}, rows)
		fmt.Fprintln(w)
	}
	agg(func(p Fig6Point) int { return p.Chiplets }, "chiplets")
	agg(func(p Fig6Point) int { return p.Cores }, "cores")
	fmt.Fprintln(w, "objective optima:")
	for _, o := range FourObjectives {
		for _, sp := range []string{"128TOPs", "512TOPs", "128TOPs-reduced", "512TOPs-reduced", "128TOPs-tiny", "512TOPs-tiny"} {
			k := sp + "/" + o.Name
			if v, ok := r.Optima[k]; ok {
				fmt.Fprintf(w, "  %-22s -> %s (chiplets=%d cores=%d)\n", k, v, r.OptimaChiplets[k], r.OptimaCores[k])
			}
		}
	}
}

// Fig7Row describes one objective-optimal architecture of the 128 TOPs
// space with its full breakdowns.
type Fig7Row struct {
	Objective string
	Arch      string
	Chiplets  int
	Cores     int

	Delay                                         float64
	EnergyDRAM, EnergyNoC, EnergyD2D, EnergyIntra float64
	MCDRAM, MCSilicon, MCSubstrate                float64

	DRAMBytes         float64
	AvgLayersPerGroup float64
}

// Fig7Result is the Fig. 7 dataset, normalized to the MC*E*D optimum.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7 re-evaluates the four objective optima of the 128 TOPs space and
// reports the energy/MC/delay breakdowns plus the DRAM-access and pipeline-
// length statistics of Sec. VII-A2.
func Fig7(opt Options, spaceOverride ...dse.Space) (*Fig7Result, error) {
	sp := dse.Space128()
	if opt.Quick {
		sp = tinySpace(sp)
	}
	if len(spaceOverride) > 0 {
		sp = spaceOverride[0]
	}
	models := fig6Workload(opt)
	batch := 64
	if len(opt.Batches) > 0 {
		batch = opt.Batches[len(opt.Batches)-1]
	}
	cands := sp.Enumerate()
	results := opt.run(cands, models, opt.dseOptions(batch))
	res := &Fig7Result{}
	for _, o := range FourObjectives {
		var win *dse.CandidateResult
		bestScore := math.Inf(1)
		for i := range results {
			r := &results[i]
			if !r.Feasible {
				continue
			}
			s := dse.Score(r.MC.Total(), r.Energy, r.Delay, o.Obj)
			if s < bestScore {
				bestScore = s
				win = r
			}
		}
		if win == nil {
			return nil, fmt.Errorf("fig7: no feasible candidate for %s", o.Name)
		}
		mr := win.PerModel[0]
		row := Fig7Row{
			Objective:         o.Name,
			Arch:              win.Cfg.Name,
			Chiplets:          win.Cfg.Chiplets(),
			Cores:             win.Cfg.Cores(),
			Delay:             win.Delay,
			EnergyDRAM:        mr.Eval.Energy.DRAM,
			EnergyNoC:         mr.Eval.Energy.NoC,
			EnergyD2D:         mr.Eval.Energy.D2D,
			EnergyIntra:       mr.Eval.Energy.IntraCore(),
			MCDRAM:            win.MC.DRAM,
			MCSilicon:         win.MC.Silicon(),
			MCSubstrate:       win.MC.Substrate,
			DRAMBytes:         mr.Eval.DRAMBytes,
			AvgLayersPerGroup: mr.AvgLayersPerGroup,
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the Fig. 7 table normalized to the MC*E*D optimum.
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 7: objective-optimal 128 TOPs architectures (normalized to MC*E*D optimum)")
	var baseE, baseMC, baseD float64
	for _, row := range r.Rows {
		if row.Objective == "MC*E*D" {
			baseE = row.EnergyDRAM + row.EnergyNoC + row.EnergyD2D + row.EnergyIntra
			baseMC = row.MCDRAM + row.MCSilicon + row.MCSubstrate
			baseD = row.Delay
		}
	}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Objective, row.Arch,
			fmt.Sprintf("%.3f", (row.EnergyDRAM+row.EnergyNoC+row.EnergyD2D+row.EnergyIntra)/baseE),
			fmt.Sprintf("%.3f", row.EnergyDRAM/baseE),
			fmt.Sprintf("%.3f", (row.EnergyNoC+row.EnergyD2D)/baseE),
			fmt.Sprintf("%.3f", row.EnergyIntra/baseE),
			fmt.Sprintf("%.3f", (row.MCDRAM+row.MCSilicon+row.MCSubstrate)/baseMC),
			fmt.Sprintf("%.3f", row.Delay/baseD),
			fmtE(row.DRAMBytes),
			fmt.Sprintf("%.1f", row.AvgLayersPerGroup),
		})
	}
	table(w, []string{"objective", "arch", "energy", "e.dram", "e.net", "e.intra", "MC", "delay", "dram.bytes", "layers/grp"}, rows)
}
