// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. VI-VII): the Fig. 5 overall comparison, the Fig. 6
// design-space scatter, the Fig. 7 objective-optima analysis, the Fig. 8
// chiplet-reuse study, the Fig. 9 traffic heatmaps, the Sec. VI-B2
// folded-torus comparison, and the Sec. IV-B space-size table.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"

	"gemini/internal/arch"
	"gemini/internal/cost"
	"gemini/internal/dnn"
	"gemini/internal/dse"
	"gemini/internal/eval"
	"gemini/internal/space"
)

// Options sets the experiment fidelity.
type Options struct {
	// Quick substitutes the tiny test networks and small SA budgets so a
	// whole experiment finishes in seconds (benchmarks); full mode uses the
	// paper's workloads.
	Quick        bool
	SAIterations int
	Batches      []int
	Workers      int
	Seed         int64

	// Restarts widens the per-cell SA portfolio; Patience stops a cell's
	// portfolio after that many consecutive non-improving restarts (0 =
	// fixed schedule). Order overrides the sweep dispatch order ("" keeps
	// the DSE default, ascending lower bound).
	Restarts int
	Patience int
	Order    dse.SweepOrder

	// Session, when set, runs every figure's sweeps and mappings through
	// one shared DSE session, so the figures reuse each other's warm
	// evaluation-cache entries (Fig. 6 and Fig. 7 sweep the same space;
	// Fig. 8's factor-1 joint candidates revisit its base sweep).
	Session *dse.Session
}

// run dispatches a candidate sweep through the shared session when one is
// configured.
func (o Options) run(cands []arch.Config, models []*dnn.Graph, d dse.Options) []dse.CandidateResult {
	if o.Session != nil {
		return o.Session.Run(cands, models, d)
	}
	return dse.Run(cands, models, d)
}

// mapModel dispatches a single mapping likewise.
func (o Options) mapModel(cfg *arch.Config, g *dnn.Graph, d dse.Options) (*dse.MapResult, error) {
	if o.Session != nil {
		return o.Session.MapModel(cfg, g, d)
	}
	return dse.MapModel(cfg, g, d)
}

// jointRun dispatches the chiplet-reuse exploration likewise.
func (o Options) jointRun(bases []arch.Config, factors []int, models []*dnn.Graph, d dse.Options) []dse.JointResult {
	if o.Session != nil {
		return o.Session.JointRun(bases, factors, models, d)
	}
	return dse.JointRun(bases, factors, models, d)
}

// Workload graphs are cached per process so every figure maps the same
// *dnn.Graph instance: the evaluators' memos and the session's shared
// cache key groups by graph identity, so stable instances are what make
// cross-figure warm hits possible. Graphs are read-only after construction.
var (
	modelMu    sync.Mutex
	modelCache = map[string]*dnn.Graph{}
)

func cachedModel(name string) *dnn.Graph {
	modelMu.Lock()
	defer modelMu.Unlock()
	if g, ok := modelCache[name]; ok {
		return g
	}
	var g *dnn.Graph
	switch name {
	case "tinycnn":
		g = dnn.TinyCNN()
	case "tinytransformer":
		g = dnn.TinyTransformer()
	default:
		var err error
		g, err = dnn.Model(name)
		if err != nil {
			panic(err)
		}
	}
	modelCache[name] = g
	return g
}

// QuickOptions returns the bench-friendly fidelity.
func QuickOptions() Options {
	return Options{Quick: true, SAIterations: 120, Batches: []int{1, 4}, Seed: 1}
}

// FullOptions returns the paper-fidelity settings (batch 1 and 64).
func FullOptions() Options {
	return Options{SAIterations: 4000, Batches: []int{1, 64}, Seed: 1}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// models returns the Fig. 5 workload list (paper Sec. VI-A3).
func (o Options) models() []*dnn.Graph {
	if o.Quick {
		return []*dnn.Graph{cachedModel("tinycnn"), cachedModel("tinytransformer")}
	}
	out := make([]*dnn.Graph, 0, 5)
	for _, n := range []string{"resnet50", "resnext50", "inceptionresnet", "pnasnet", "transformer"} {
		out = append(out, cachedModel(n))
	}
	return out
}

// fig8Models returns the Fig. 8 workload list (RN-50, IRes, PNas, GN,
// TF-Large).
func (o Options) fig8Models() []*dnn.Graph {
	if o.Quick {
		return []*dnn.Graph{cachedModel("tinycnn")}
	}
	out := make([]*dnn.Graph, 0, 5)
	for _, n := range []string{"resnet50", "inceptionresnet", "pnasnet", "googlenet", "transformerlarge"} {
		out = append(out, cachedModel(n))
	}
	return out
}

// tinySpace shrinks a Table I space to a handful of candidates so quick
// experiments finish in seconds while preserving the chiplet-granularity
// axis the figures sweep.
func tinySpace(sp dse.Space) dse.Space {
	r := sp
	r.Name = sp.Name + "-tiny"
	r.DRAMPerTOPS = []float64{2}
	r.NoCBWs = []float64{32}
	r.D2DRatios = []float64{0.5}
	r.GLBs = []int{2048 * arch.KB}
	r.MACs = []int{2048, 8192}
	return r
}

func (o Options) dseOptions(batch int) dse.Options {
	d := dse.DefaultOptions()
	d.Batch = batch
	d.SAIterations = o.SAIterations
	d.Workers = o.workers()
	d.Seed = o.Seed
	if o.Restarts > 0 {
		d.Restarts = o.Restarts
	}
	d.Patience = o.Patience
	if o.Order != "" {
		d.Order = o.Order
	}
	if o.Quick {
		d.MaxGroupLayers = 7
		d.BatchUnits = []int{1, 2}
	}
	return d
}

func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	p := 1.0
	for _, v := range vals {
		p *= v
	}
	return math.Pow(p, 1/float64(len(vals)))
}

// table writes an aligned text table.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}

// archMC is shared sugar.
func archMC(cfg *arch.Config) cost.Breakdown { return cost.New().Evaluate(cfg) }

func fmtE(v float64) string { return fmt.Sprintf("%.4g", v) }

// breakdownCells renders an energy breakdown normalized by a base total.
func breakdownCells(b eval.EnergyBreakdown, base float64) []string {
	n := func(v float64) string { return fmt.Sprintf("%.3f", v/base) }
	return []string{n(b.DRAM), n(b.NoC), n(b.D2D), n(b.IntraCore())}
}

// SpaceSizeRow is one line of the Sec. IV-B table.
type SpaceSizeRow struct {
	M, N           int
	GeminiLog10    float64
	TangramLog10   float64
	AdvantageLog10 float64
}

// SpaceSizes reproduces the Sec. IV-B optimization-space comparison.
func SpaceSizes() []SpaceSizeRow {
	var rows []SpaceSizeRow
	for _, m := range []int{16, 36, 64, 128} {
		for _, n := range []int{2, 4, 8, 16} {
			// The lower-bound formula needs M > 2(N-1); smaller groups have
			// zero conservative bound.
			if m-n-1 < n-1 {
				continue
			}
			g := space.Log10(space.GeminiLowerBound(m, n))
			t := space.Log10(space.TangramUpperBound(m, n))
			rows = append(rows, SpaceSizeRow{M: m, N: n, GeminiLog10: g, TangramLog10: t, AdvantageLog10: g - t})
		}
	}
	return rows
}

// PrintSpaceSizes writes the Sec. IV-B table.
func PrintSpaceSizes(w io.Writer) {
	rows := SpaceSizes()
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			fmt.Sprint(r.M), fmt.Sprint(r.N),
			fmt.Sprintf("10^%.1f", r.GeminiLog10),
			fmt.Sprintf("10^%.1f", r.TangramLog10),
			fmt.Sprintf("10^%.1f", r.AdvantageLog10),
		}
	}
	fmt.Fprintln(w, "Sec. IV-B: LP SPM optimization-space sizes (Gemini lower bound vs Tangram upper bound)")
	table(w, []string{"M(cores)", "N(layers)", "gemini", "tangram", "advantage"}, cells)
}
