package experiments

import (
	"fmt"
	"io"

	"gemini/internal/arch"
	"gemini/internal/cost"
	"gemini/internal/dnn"
	"gemini/internal/dse"
)

// GranularityRow is one point of the chiplet-granularity sweep
// (paper Fig. 8(a) and insight 1).
type GranularityRow struct {
	Chiplets   int
	XCut, YCut int

	MC        cost.Breakdown
	Energy    float64
	Delay     float64
	MCED      float64 // normalized to the best row
	Yield     float64
	TotalArea float64
	D2DShare  float64
}

// GranularityResult is the Fig. 8(a)-style sweep.
type GranularityResult struct {
	Arch string
	Rows []GranularityRow
	// BestChiplets is the chiplet count minimizing MC*E*D; the paper's
	// insight 1 expects a moderate value with the extremes worse.
	BestChiplets int
}

// ChipletGranularity sweeps the chiplet partitioning of the 72 TOPs
// G-Arch-class accelerator from monolithic to one-core-per-chiplet,
// holding all other resources fixed (paper Fig. 8(a), Sec. VII-A1).
func ChipletGranularity(opt Options) (*GranularityResult, error) {
	base := arch.GArch72()
	var model *dnn.Graph
	if opt.Quick {
		model = cachedModel("tinytransformer")
	} else {
		model = cachedModel("transformer")
	}
	batch := 64
	if len(opt.Batches) > 0 {
		batch = opt.Batches[len(opt.Batches)-1]
	}
	d := opt.dseOptions(batch)
	mce := cost.New()

	cuts := []struct{ x, y int }{{1, 1}, {2, 1}, {2, 2}, {3, 3}, {6, 3}, {6, 6}}
	res := &GranularityResult{Arch: base.Name}
	bestObj := 0.0
	for _, c := range cuts {
		cfg := base
		cfg.XCut, cfg.YCut = c.x, c.y
		cfg.Name = cfg.String()
		if cfg.Validate() != nil {
			continue
		}
		mr, err := opt.mapModel(&cfg, model, d)
		if err != nil {
			return nil, fmt.Errorf("granularity: %d chiplets: %w", c.x*c.y, err)
		}
		b := mce.Evaluate(&cfg)
		row := GranularityRow{
			Chiplets: c.x * c.y, XCut: c.x, YCut: c.y,
			MC: b, Energy: mr.Energy, Delay: mr.Delay,
			MCED:      b.Total() * mr.Energy * mr.Delay,
			Yield:     b.ComputeYield,
			TotalArea: b.TotalSiliconArea,
			D2DShare:  b.D2DAreaFraction,
		}
		res.Rows = append(res.Rows, row)
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("granularity: no valid cut")
	}
	best := res.Rows[0].MCED
	for _, r := range res.Rows {
		if r.MCED < best {
			best = r.MCED
		}
	}
	for i := range res.Rows {
		res.Rows[i].MCED /= best
		if res.Rows[i].MCED == 1 {
			res.BestChiplets = res.Rows[i].Chiplets
			bestObj = res.Rows[i].MCED
		}
	}
	_ = bestObj
	return res, nil
}

// Print writes the Fig. 8(a)-style table.
func (r *GranularityResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 8(a) / insight 1: chiplet granularity sweep on %s resources\n", r.Arch)
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Chiplets),
			fmt.Sprintf("%.2f", row.MC.Total()),
			fmt.Sprintf("%.2f", row.MC.Silicon()),
			fmt.Sprintf("%.2f", row.MC.Substrate),
			fmt.Sprintf("%.2f", row.Yield),
			fmt.Sprintf("%.0f", row.TotalArea),
			fmt.Sprintf("%.0f%%", 100*row.D2DShare),
			fmtE(row.Energy), fmtE(row.Delay),
			fmt.Sprintf("%.2f", row.MCED),
		})
	}
	table(w, []string{"chiplets", "MC($)", "silicon", "substrate", "yield", "area(mm2)", "d2d%", "energy(J)", "delay(s)", "MC*E*D"}, rows)
	fmt.Fprintf(w, "\nbest under MC*E*D: %d chiplet(s); the paper expects a moderate count with 36 strictly worse\n", r.BestChiplets)
}

// CoreGranularityRow is one point of the core-granularity sweep
// (paper Fig. 6(b), insight 2).
type CoreGranularityRow struct {
	Cores int
	MACs  int

	MC                float64
	Energy            float64
	Delay             float64
	EDP               float64 // normalized to best
	AvgLayersPerGroup float64
	DRAMBytes         float64
}

// CoreGranularityResult is the insight-2 sweep.
type CoreGranularityResult struct {
	Rows []CoreGranularityRow
}

// CoreGranularity sweeps MAC/core at constant total compute (the paper's
// 72 TOPs class), reporting the EDP/MC/pipeline trends of Sec. VII-A2.
func CoreGranularity(opt Options) (*CoreGranularityResult, error) {
	var model *dnn.Graph
	if opt.Quick {
		model = cachedModel("tinytransformer")
	} else {
		model = cachedModel("transformer")
	}
	batch := 64
	if len(opt.Batches) > 0 {
		batch = opt.Batches[len(opt.Batches)-1]
	}
	d := opt.dseOptions(batch)
	sp := dse.Space72()
	mce := cost.New()

	res := &CoreGranularityResult{}
	for _, macs := range []int{512, 1024, 2048, 4096, 8192} {
		cores := sp.CoresFor(macs)
		w, h := dse.GridFor(cores)
		if float64(w) > 2.5*float64(h) {
			continue
		}
		cfg := arch.Config{
			CoresX: w, CoresY: h, XCut: 1, YCut: 1,
			NoCBW: 32, DRAMBW: 144,
			MACsPerCore: macs, GLBPerCore: 2 * arch.MB, FreqGHz: 1,
		}
		cfg.Name = cfg.String()
		if cfg.Validate() != nil {
			continue
		}
		mr, err := opt.mapModel(&cfg, model, d)
		if err != nil {
			return nil, fmt.Errorf("core granularity: %d cores: %w", cores, err)
		}
		res.Rows = append(res.Rows, CoreGranularityRow{
			Cores: cores, MACs: macs,
			MC:     mce.Evaluate(&cfg).Total(),
			Energy: mr.Energy, Delay: mr.Delay,
			EDP:               mr.Energy * mr.Delay,
			AvgLayersPerGroup: mr.AvgLayersPerGroup,
			DRAMBytes:         mr.Eval.DRAMBytes,
		})
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("core granularity: no valid configuration")
	}
	best := res.Rows[0].EDP
	for _, r := range res.Rows {
		if r.EDP < best {
			best = r.EDP
		}
	}
	for i := range res.Rows {
		res.Rows[i].EDP /= best
	}
	return res, nil
}

// Print writes the insight-2 table (cores ascending).
func (r *CoreGranularityResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 6(b) / insight 2: core granularity at constant compute")
	var rows [][]string
	for i := len(r.Rows) - 1; i >= 0; i-- { // ascending core count
		row := r.Rows[i]
		rows = append(rows, []string{
			fmt.Sprint(row.Cores), fmt.Sprint(row.MACs),
			fmt.Sprintf("%.2f", row.MC),
			fmtE(row.Energy), fmtE(row.Delay),
			fmt.Sprintf("%.2f", row.EDP),
			fmt.Sprintf("%.1f", row.AvgLayersPerGroup),
			fmtE(row.DRAMBytes),
		})
	}
	table(w, []string{"cores", "MAC/core", "MC($)", "energy(J)", "delay(s)", "EDP(norm)", "layers/stage", "dram bytes"}, rows)
}
