// Package noc models the template's network-on-chip: mesh or folded-torus
// topologies with dimension-ordered (XY) routing, D2D link identification at
// chiplet boundaries, multicast tree accumulation, and per-link traffic
// loads used by the evaluator and the Fig. 9 heatmaps.
//
//gemini:deterministic
package noc

import (
	"gemini/internal/arch"
)

// Link is one directed channel between adjacent routers. D2D links cross a
// chiplet boundary and use the D2D bandwidth and energy model.
type Link struct {
	From, To arch.CoreID
	D2D      bool
}

// Network is the static link graph for an architecture. After New returns it
// is immutable, so it is safe for concurrent use without locking.
type Network struct {
	Cfg   *arch.Config
	Links []Link

	idx   map[[2]arch.CoreID]int
	ports []arch.DRAMPort

	// Full route table, precomputed at New: the XY path from src to dst is
	// routeDat[routeOff[src*cores+dst] : routeOff[src*cores+dst+1]].
	cores    int
	routeOff []int32
	routeDat []int32
}

// New builds the network for a validated configuration.
func New(cfg *arch.Config) *Network {
	n := &Network{
		Cfg:   cfg,
		idx:   make(map[[2]arch.CoreID]int),
		ports: cfg.DRAMPorts(),
	}
	addLink := func(a, b arch.CoreID) {
		n.idx[[2]arch.CoreID{a, b}] = len(n.Links)
		n.Links = append(n.Links, Link{From: a, To: b, D2D: !cfg.SameChiplet(a, b)})
	}
	w, h := cfg.CoresX, cfg.CoresY
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := cfg.CoreAt(x, y)
			if x+1 < w {
				addLink(c, cfg.CoreAt(x+1, y))
				addLink(cfg.CoreAt(x+1, y), c)
			}
			if y+1 < h {
				addLink(c, cfg.CoreAt(x, y+1))
				addLink(cfg.CoreAt(x, y+1), c)
			}
		}
	}
	if cfg.Topology == arch.FoldedTorus {
		for y := 0; y < h; y++ {
			if w > 2 {
				addLink(cfg.CoreAt(w-1, y), cfg.CoreAt(0, y))
				addLink(cfg.CoreAt(0, y), cfg.CoreAt(w-1, y))
			}
		}
		for x := 0; x < w; x++ {
			if h > 2 {
				addLink(cfg.CoreAt(x, h-1), cfg.CoreAt(x, 0))
				addLink(cfg.CoreAt(x, 0), cfg.CoreAt(x, h-1))
			}
		}
	}
	n.buildRoutes()
	return n
}

// LinkBWSum returns the aggregate bandwidth (GB/s) of every directed link of
// the configuration's interconnect — NoC links at NoCBW plus chiplet-crossing
// links at D2DBW. It enumerates the same link set New builds, without paying
// for route tables, so the DSE bound engine can charge an aggregate
// interconnect capacity per candidate: no schedule can move bytes across the
// chip faster than the sum of all link bandwidths drains them.
func LinkBWSum(cfg *arch.Config) float64 {
	var noc, d2d int
	count := func(a, b arch.CoreID) {
		if cfg.SameChiplet(a, b) {
			noc += 2 // both directions
		} else {
			d2d += 2
		}
	}
	w, h := cfg.CoresX, cfg.CoresY
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := cfg.CoreAt(x, y)
			if x+1 < w {
				count(c, cfg.CoreAt(x+1, y))
			}
			if y+1 < h {
				count(c, cfg.CoreAt(x, y+1))
			}
		}
	}
	if cfg.Topology == arch.FoldedTorus {
		if w > 2 {
			for y := 0; y < h; y++ {
				count(cfg.CoreAt(w-1, y), cfg.CoreAt(0, y))
			}
		}
		if h > 2 {
			for x := 0; x < w; x++ {
				count(cfg.CoreAt(x, h-1), cfg.CoreAt(x, 0))
			}
		}
	}
	return float64(noc)*cfg.NoCBW + float64(d2d)*cfg.D2DBW
}

// Cut is one chiplet-boundary bisection of the core array: the set of every
// directed link whose endpoints lie on opposite sides of the boundary. At is
// the first core column (vertical cut) or row (horizontal cut) on the far
// side, so a vertical cut separates x < At from x >= At. BW is the aggregate
// bandwidth (GB/s) of the crossing link set.
type Cut struct {
	Vertical bool
	At       int
	BW       float64
}

// SideOf reports which side of the cut a core lies on: 0 for the near side
// (x or y < At), 1 for the far side. It runs once per core per cut inside
// the DSE bound engine's candidate loop.
//
//gemini:noalloc
func (c Cut) SideOf(cfg *arch.Config, id arch.CoreID) int {
	x, y := cfg.CoreXY(id)
	v := y
	if c.Vertical {
		v = x
	}
	if v < c.At {
		return 0
	}
	return 1
}

// ChipletCuts enumerates the chiplet-level bisections of the configuration:
// one vertical cut per interior chiplet column boundary (x = k*ChipletW,
// k = 1..XCut-1) and one horizontal cut per interior chiplet row boundary.
// Each cut's BW sums the bandwidth of every directed link crossing it in the
// exact link set New builds — mesh boundary links plus, on a folded torus,
// the wrap links of that axis, whose endpoints sit on opposite sides of every
// interior cut. A monolithic chip (1x1 cuts) has no bisections and returns
// nil. The DSE bound engine uses these cuts as capacity constraints: traffic
// that provably crosses a bisection cannot drain faster than the cut's
// aggregate bandwidth.
func ChipletCuts(cfg *arch.Config) []Cut {
	var cuts []Cut
	for k := 1; k < cfg.XCut; k++ {
		cuts = append(cuts, Cut{Vertical: true, At: k * cfg.ChipletW()})
	}
	for k := 1; k < cfg.YCut; k++ {
		cuts = append(cuts, Cut{Vertical: false, At: k * cfg.ChipletH()})
	}
	if len(cuts) == 0 {
		return nil
	}
	count := func(a, b arch.CoreID) {
		bw := cfg.NoCBW
		if !cfg.SameChiplet(a, b) {
			bw = cfg.D2DBW
		}
		for i, c := range cuts {
			if c.SideOf(cfg, a) != c.SideOf(cfg, b) {
				cuts[i].BW += 2 * bw // both directions
			}
		}
	}
	w, h := cfg.CoresX, cfg.CoresY
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := cfg.CoreAt(x, y)
			if x+1 < w {
				count(c, cfg.CoreAt(x+1, y))
			}
			if y+1 < h {
				count(c, cfg.CoreAt(x, y+1))
			}
		}
	}
	if cfg.Topology == arch.FoldedTorus {
		if w > 2 {
			for y := 0; y < h; y++ {
				count(cfg.CoreAt(w-1, y), cfg.CoreAt(0, y))
			}
		}
		if h > 2 {
			for x := 0; x < w; x++ {
				count(cfg.CoreAt(x, h-1), cfg.CoreAt(x, 0))
			}
		}
	}
	return cuts
}

// buildRoutes precomputes the XY path between every ordered core pair into a
// single flat table, so Route is a lock-free slice lookup on the hot path.
func (n *Network) buildRoutes() {
	n.cores = n.Cfg.Cores()
	n.routeOff = make([]int32, n.cores*n.cores+1)
	n.routeDat = n.routeDat[:0]
	for src := 0; src < n.cores; src++ {
		for dst := 0; dst < n.cores; dst++ {
			n.appendRoute(arch.CoreID(src), arch.CoreID(dst))
			n.routeOff[src*n.cores+dst+1] = int32(len(n.routeDat))
		}
	}
}

// appendRoute walks the dimension-ordered path from src to dst, appending
// each traversed link ID to the flat route table.
func (n *Network) appendRoute(src, dst arch.CoreID) {
	if src == dst {
		return
	}
	sx, sy := n.Cfg.CoreXY(src)
	dx, dy := n.Cfg.CoreXY(dst)
	x, y := sx, sy
	for x != dx {
		nx := n.step(x, dx, n.Cfg.CoresX)
		n.routeDat = append(n.routeDat, int32(n.idx[[2]arch.CoreID{n.Cfg.CoreAt(x, y), n.Cfg.CoreAt(nx, y)}]))
		x = nx
	}
	for y != dy {
		ny := n.step(y, dy, n.Cfg.CoresY)
		n.routeDat = append(n.routeDat, int32(n.idx[[2]arch.CoreID{n.Cfg.CoreAt(x, y), n.Cfg.CoreAt(x, ny)}]))
		y = ny
	}
}

// LinkBW returns the bandwidth of link l in GB/s.
func (n *Network) LinkBW(l int) float64 {
	if n.Links[l].D2D {
		return n.Cfg.D2DBW
	}
	return n.Cfg.NoCBW
}

// step returns the next hop coordinate along one dimension under
// dimension-ordered routing, honoring the shorter torus direction.
func (n *Network) step(cur, dst, size int) int {
	if cur == dst {
		return cur
	}
	fwd := dst - cur
	if n.Cfg.Topology == arch.FoldedTorus && size > 2 {
		alt := fwd
		if fwd > 0 && size-fwd < fwd {
			alt = fwd - size
		} else if fwd < 0 && size+fwd < -fwd {
			alt = fwd + size
		}
		fwd = alt
	}
	var nxt int
	if fwd > 0 {
		nxt = cur + 1
	} else {
		nxt = cur - 1
	}
	if nxt < 0 {
		nxt = size - 1
	}
	if nxt >= size {
		nxt = 0
	}
	return nxt
}

// Route returns the link IDs of the XY path from src to dst. The slice is a
// view into the precomputed route table and must not be modified.
func (n *Network) Route(src, dst arch.CoreID) []int32 {
	k := int(src)*n.cores + int(dst)
	return n.routeDat[n.routeOff[k]:n.routeOff[k+1]]
}

// PortCore returns the edge router a DRAM controller uses to reach peer:
// the attachment core of the controller closest (in rows) to the peer, so
// controller traffic spreads over the controller's span.
func (n *Network) PortCore(ctrl int, peer arch.CoreID) arch.CoreID {
	p := n.ports[ctrl%len(n.ports)]
	_, py := n.Cfg.CoreXY(peer)
	best := p.Cores[0]
	bestD := 1 << 30
	for _, c := range p.Cores {
		_, cy := n.Cfg.CoreXY(c)
		d := cy - py
		if d < 0 {
			d = -d
		}
		if d < bestD {
			bestD = d
			best = c
		}
	}
	return best
}

// Controllers returns the number of DRAM controllers.
func (n *Network) Controllers() int { return len(n.ports) }

// Traffic accumulates byte loads per link and per DRAM controller for one
// pipeline pass.
type Traffic struct {
	net  *Network
	Load []float64 // bytes per link

	DRAMRead  []float64 // bytes read from each controller
	DRAMWrite []float64 // bytes written to each controller

	Hops    float64 // byte-hops over on-chip links
	D2DHops float64 // byte-hops over D2D links

	// Multicast link dedup: visited[l] == epoch marks link l as already
	// counted for the current multicast tree. Bumping epoch clears the set
	// in O(1) with no per-call allocation.
	visited []uint64
	epoch   uint64
}

// NewTraffic returns an empty accumulator for the network.
func (n *Network) NewTraffic() *Traffic {
	return &Traffic{
		net:       n,
		Load:      make([]float64, len(n.Links)),
		DRAMRead:  make([]float64, n.Controllers()),
		DRAMWrite: make([]float64, n.Controllers()),
		visited:   make([]uint64, len(n.Links)),
	}
}

// Reset clears all accumulated loads.
func (t *Traffic) Reset() {
	for i := range t.Load {
		t.Load[i] = 0
	}
	for i := range t.DRAMRead {
		t.DRAMRead[i] = 0
		t.DRAMWrite[i] = 0
	}
	t.Hops, t.D2DHops = 0, 0
}

func (t *Traffic) addPath(path []int32, bytes float64) {
	for _, l := range path {
		t.Load[l] += bytes
		if t.net.Links[l].D2D {
			t.D2DHops += bytes
		} else {
			t.Hops += bytes
		}
	}
}

// AddUnicast accumulates a core-to-core transfer.
func (t *Traffic) AddUnicast(src, dst arch.CoreID, bytes float64) {
	if bytes <= 0 {
		return
	}
	t.addPath(t.net.Route(src, dst), bytes)
}

// AddMulticast accumulates a transfer of the same bytes from src to every
// destination, counting each link of the union routing tree once (the
// template's NoC supports multicast, paper Sec. IV-C).
func (t *Traffic) AddMulticast(src arch.CoreID, dsts []arch.CoreID, bytes float64) {
	if bytes <= 0 || len(dsts) == 0 {
		return
	}
	if len(dsts) == 1 {
		t.AddUnicast(src, dsts[0], bytes)
		return
	}
	t.epoch++
	for _, d := range dsts {
		for _, l := range t.net.Route(src, d) {
			if t.visited[l] == t.epoch {
				continue
			}
			t.visited[l] = t.epoch
			t.Load[l] += bytes
			if t.net.Links[l].D2D {
				t.D2DHops += bytes
			} else {
				t.Hops += bytes
			}
		}
	}
}

// AddDRAMRead accumulates a controller-to-core transfer. ctrl < 0 means
// interleaved: the bytes spread evenly over all controllers (FD value 0).
func (t *Traffic) AddDRAMRead(ctrl int, dst arch.CoreID, bytes float64) {
	t.addDRAM(ctrl, dst, bytes, true)
}

// AddDRAMWrite accumulates a core-to-controller transfer. ctrl < 0 means
// interleaved.
func (t *Traffic) AddDRAMWrite(ctrl int, src arch.CoreID, bytes float64) {
	t.addDRAM(ctrl, src, bytes, false)
}

// AddDRAMReadMulticast accumulates a DRAM read multicast to several cores
// (e.g. a weight slice shared by replicated workloads).
func (t *Traffic) AddDRAMReadMulticast(ctrl int, dsts []arch.CoreID, bytes float64) {
	if bytes <= 0 || len(dsts) == 0 {
		return
	}
	if ctrl < 0 {
		d := float64(t.net.Controllers())
		for c := 0; c < t.net.Controllers(); c++ {
			t.dramReadMulticastOne(c, dsts, bytes/d)
		}
		return
	}
	t.dramReadMulticastOne(ctrl, dsts, bytes)
}

func (t *Traffic) dramReadMulticastOne(ctrl int, dsts []arch.CoreID, bytes float64) {
	t.DRAMRead[ctrl] += bytes
	t.epoch++
	for _, d := range dsts {
		port := t.net.PortCore(ctrl, d)
		for _, l := range t.net.Route(port, d) {
			if t.visited[l] == t.epoch {
				continue
			}
			t.visited[l] = t.epoch
			t.Load[l] += bytes
			if t.net.Links[l].D2D {
				t.D2DHops += bytes
			} else {
				t.Hops += bytes
			}
		}
	}
}

func (t *Traffic) addDRAM(ctrl int, core arch.CoreID, bytes float64, read bool) {
	if bytes <= 0 {
		return
	}
	if ctrl < 0 {
		d := float64(t.net.Controllers())
		for c := 0; c < t.net.Controllers(); c++ {
			t.addDRAM(c, core, bytes/d, read)
		}
		return
	}
	ctrl %= t.net.Controllers()
	port := t.net.PortCore(ctrl, core)
	if read {
		t.DRAMRead[ctrl] += bytes
		t.addPath(t.net.Route(port, core), bytes)
	} else {
		t.DRAMWrite[ctrl] += bytes
		t.addPath(t.net.Route(core, port), bytes)
	}
}

// AddFrom merges another accumulator scaled by factor.
func (t *Traffic) AddFrom(o *Traffic, factor float64) {
	for i, v := range o.Load {
		t.Load[i] += v * factor
	}
	for i := range o.DRAMRead {
		t.DRAMRead[i] += o.DRAMRead[i] * factor
		t.DRAMWrite[i] += o.DRAMWrite[i] * factor
	}
	t.Hops += o.Hops * factor
	t.D2DHops += o.D2DHops * factor
}

// BottleneckTime returns the seconds needed to drain the accumulated loads:
// the maximum over links of load/bandwidth and over DRAM controllers of
// traffic/controller-bandwidth. Bandwidths are GB/s (1e9 bytes/s).
func (t *Traffic) BottleneckTime() float64 {
	worst := 0.0
	for i, load := range t.Load {
		if load == 0 {
			continue
		}
		bw := t.net.LinkBW(i)
		if bw <= 0 {
			return inf
		}
		if s := load / (bw * 1e9); s > worst {
			worst = s
		}
	}
	per := t.net.Cfg.DRAMBW / float64(t.net.Controllers()) * 1e9
	for i := range t.DRAMRead {
		if s := (t.DRAMRead[i] + t.DRAMWrite[i]) / per; s > worst {
			worst = s
		}
	}
	return worst
}

// TotalBytes returns aggregate on-chip and D2D byte-hops plus total DRAM
// traffic, for energy accounting.
func (t *Traffic) TotalBytes() (onchip, d2d, dram float64) {
	for i := range t.DRAMRead {
		dram += t.DRAMRead[i] + t.DRAMWrite[i]
	}
	return t.Hops, t.D2DHops, dram
}

// MaxLinkLoad returns the largest per-link byte load and its index.
func (t *Traffic) MaxLinkLoad() (float64, int) {
	best, idx := 0.0, -1
	for i, v := range t.Load {
		if v > best {
			best, idx = v, i
		}
	}
	return best, idx
}

const inf = 1e300
