package noc

import (
	"fmt"
	"sort"
	"strings"
)

// HeatmapRow is one link's load for CSV export (Fig. 9 data).
type HeatmapRow struct {
	FromX, FromY int
	ToX, ToY     int
	D2D          bool
	Bytes        float64
	// Pressure is the load normalized by link bandwidth; D2D links show
	// proportionally higher pressure, as in the paper's figure.
	Pressure float64
}

// HeatmapRows returns per-link loads sorted by descending pressure.
func (t *Traffic) HeatmapRows() []HeatmapRow {
	rows := make([]HeatmapRow, 0, len(t.Load))
	for i, load := range t.Load {
		l := t.net.Links[i]
		fx, fy := t.net.Cfg.CoreXY(l.From)
		tx, ty := t.net.Cfg.CoreXY(l.To)
		bw := t.net.LinkBW(i)
		p := 0.0
		if bw > 0 {
			p = load / bw
		}
		rows = append(rows, HeatmapRow{fx, fy, tx, ty, l.D2D, load, p})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].Pressure > rows[b].Pressure })
	return rows
}

// CSV renders the heatmap rows as a CSV document.
func (t *Traffic) CSV() string {
	var b strings.Builder
	b.WriteString("from_x,from_y,to_x,to_y,d2d,bytes,pressure\n")
	for _, r := range t.HeatmapRows() {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%t,%.0f,%.3f\n", r.FromX, r.FromY, r.ToX, r.ToY, r.D2D, r.Bytes, r.Pressure)
	}
	return b.String()
}

// ASCII renders a coarse textual heatmap: for every core, the maximum
// pressure over its outgoing links, bucketed 0-9, with '|' marking vertical
// chiplet cuts. Intended for terminal inspection of Fig. 9-style data.
func (t *Traffic) ASCII() string {
	cfg := t.net.Cfg
	maxP := 0.0
	peak := make([]float64, cfg.Cores())
	for i, load := range t.Load {
		bw := t.net.LinkBW(i)
		if bw <= 0 {
			continue
		}
		p := load / bw
		from := int(t.net.Links[i].From)
		if p > peak[from] {
			peak[from] = p
		}
		if p > maxP {
			maxP = p
		}
	}
	var b strings.Builder
	for y := 0; y < cfg.CoresY; y++ {
		for x := 0; x < cfg.CoresX; x++ {
			if x > 0 && x%cfg.ChipletW() == 0 {
				b.WriteByte('|')
			} else if x > 0 {
				b.WriteByte(' ')
			}
			v := 0
			if maxP > 0 {
				v = int(peak[cfg.CoreAt(x, y)] / maxP * 9.999)
				if v > 9 {
					v = 9
				}
			}
			b.WriteByte(byte('0' + v))
		}
		b.WriteByte('\n')
		if (y+1)%cfg.ChipletH() == 0 && y+1 < cfg.CoresY {
			b.WriteString(strings.Repeat("-", 2*cfg.CoresX-1) + "\n")
		}
	}
	return b.String()
}
