package noc

import (
	"math/rand"
	"strings"
	"testing"

	"gemini/internal/arch"
)

func meshCfg() *arch.Config {
	c := arch.GArch72()
	return &c
}

func TestMeshLinkCount(t *testing.T) {
	c := meshCfg() // 6x6
	n := New(c)
	want := 2*(6-1)*6 + 2*6*(6-1) // directed horizontal + vertical
	if len(n.Links) != want {
		t.Errorf("links = %d, want %d", len(n.Links), want)
	}
}

func TestD2DLinksAtCut(t *testing.T) {
	c := meshCfg() // XCut=2 between x=2 and x=3
	n := New(c)
	d2d := 0
	for _, l := range n.Links {
		fx, _ := c.CoreXY(l.From)
		tx, _ := c.CoreXY(l.To)
		cross := (fx == 2 && tx == 3) || (fx == 3 && tx == 2)
		if l.D2D != cross {
			t.Fatalf("link %v-%v D2D=%t, want %t", l.From, l.To, l.D2D, cross)
		}
		if l.D2D {
			d2d++
		}
	}
	if d2d != 12 { // 6 rows x 2 directions
		t.Errorf("d2d links = %d, want 12", d2d)
	}
}

func TestRouteManhattan(t *testing.T) {
	c := meshCfg()
	n := New(c)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := arch.CoreID(rng.Intn(c.Cores()))
		b := arch.CoreID(rng.Intn(c.Cores()))
		ax, ay := c.CoreXY(a)
		bx, by := c.CoreXY(b)
		want := abs(ax-bx) + abs(ay-by)
		if got := len(n.Route(a, b)); got != want {
			t.Fatalf("route %v->%v len=%d, want %d", a, b, got, want)
		}
	}
}

func TestRoutePathContiguous(t *testing.T) {
	c := meshCfg()
	n := New(c)
	src, dst := c.CoreAt(0, 0), c.CoreAt(5, 5)
	cur := src
	for _, li := range n.Route(src, dst) {
		l := n.Links[li]
		if l.From != cur {
			t.Fatalf("path discontinuity at %v (link from %v)", cur, l.From)
		}
		cur = l.To
	}
	if cur != dst {
		t.Fatalf("path ends at %v, want %v", cur, dst)
	}
}

func TestTorusShorterOrEqual(t *testing.T) {
	mesh := arch.Grayskull()
	mesh.Topology = arch.Mesh
	torus := arch.Grayskull()
	nm, nt := New(&mesh), New(&torus)
	rng := rand.New(rand.NewSource(2))
	shorter := 0
	for i := 0; i < 500; i++ {
		a := arch.CoreID(rng.Intn(mesh.Cores()))
		b := arch.CoreID(rng.Intn(mesh.Cores()))
		lm, lt := len(nm.Route(a, b)), len(nt.Route(a, b))
		if lt > lm {
			t.Fatalf("torus path %v->%v longer than mesh (%d > %d)", a, b, lt, lm)
		}
		if lt < lm {
			shorter++
		}
	}
	if shorter == 0 {
		t.Error("torus never used wrap links")
	}
}

func TestTorusWrapPath(t *testing.T) {
	c := arch.Grayskull() // 12x10 folded torus
	n := New(&c)
	// Opposite edge cores: wrap distance is 1 per dimension.
	got := len(n.Route(c.CoreAt(0, 0), c.CoreAt(11, 0)))
	if got != 1 {
		t.Errorf("wrap route length = %d, want 1", got)
	}
}

func TestUnicastAccumulates(t *testing.T) {
	c := meshCfg()
	n := New(c)
	tr := n.NewTraffic()
	tr.AddUnicast(c.CoreAt(0, 0), c.CoreAt(3, 0), 100)
	onchip, d2d, _ := tr.TotalBytes()
	// 3 hops: two on-chip (0->1->2), one D2D (2->3).
	if onchip != 200 || d2d != 100 {
		t.Errorf("onchip=%v d2d=%v, want 200/100", onchip, d2d)
	}
	if got, _ := tr.MaxLinkLoad(); got != 100 {
		t.Errorf("max link load = %v", got)
	}
}

func TestMulticastDedup(t *testing.T) {
	c := meshCfg()
	n := New(c)
	src := c.CoreAt(0, 0)
	dsts := []arch.CoreID{c.CoreAt(2, 0), c.CoreAt(2, 1), c.CoreAt(2, 2)}

	uni := n.NewTraffic()
	for _, d := range dsts {
		uni.AddUnicast(src, d, 100)
	}
	multi := n.NewTraffic()
	multi.AddMulticast(src, dsts, 100)

	uo, _, _ := uni.TotalBytes()
	mo, _, _ := multi.TotalBytes()
	if mo >= uo {
		t.Errorf("multicast byte-hops %v should beat unicast %v", mo, uo)
	}
	// Tree: 0->1->2 shared (2 links), then 2 vertical links = 4 links.
	if mo != 400 {
		t.Errorf("multicast hops = %v, want 400", mo)
	}
	// Longest single path is a lower bound.
	single := n.NewTraffic()
	single.AddUnicast(src, dsts[2], 100)
	so, _, _ := single.TotalBytes()
	if mo < so {
		t.Errorf("multicast %v below longest unicast %v", mo, so)
	}
}

func TestMulticastPropertyBounds(t *testing.T) {
	c := meshCfg()
	n := New(c)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		src := arch.CoreID(rng.Intn(c.Cores()))
		k := 1 + rng.Intn(5)
		dsts := make([]arch.CoreID, k)
		for j := range dsts {
			dsts[j] = arch.CoreID(rng.Intn(c.Cores()))
		}
		uni, multi := n.NewTraffic(), n.NewTraffic()
		longest := 0.0
		for _, d := range dsts {
			uni.AddUnicast(src, d, 10)
			one := n.NewTraffic()
			one.AddUnicast(src, d, 10)
			oo, od, _ := one.TotalBytes()
			if oo+od > longest {
				longest = oo + od
			}
		}
		multi.AddMulticast(src, dsts, 10)
		uo, ud, _ := uni.TotalBytes()
		mo, md, _ := multi.TotalBytes()
		if mo+md > uo+ud {
			t.Fatalf("multicast exceeded unicast sum (%v > %v)", mo+md, uo+ud)
		}
		if mo+md < longest {
			t.Fatalf("multicast below longest single path (%v < %v)", mo+md, longest)
		}
	}
}

func TestDRAMInterleaveBalances(t *testing.T) {
	c := meshCfg()
	n := New(c)
	tr := n.NewTraffic()
	tr.AddDRAMRead(-1, c.CoreAt(3, 3), 1000)
	total := 0.0
	for i := range tr.DRAMRead {
		total += tr.DRAMRead[i]
		if tr.DRAMRead[i] == 0 {
			t.Errorf("controller %d unused under interleave", i)
		}
	}
	if total != 1000 {
		t.Errorf("total read = %v, want 1000", total)
	}
}

func TestDRAMSpecificController(t *testing.T) {
	c := meshCfg()
	n := New(c)
	tr := n.NewTraffic()
	tr.AddDRAMWrite(1, c.CoreAt(3, 3), 500)
	if tr.DRAMWrite[1] != 500 {
		t.Errorf("ctrl 1 write = %v", tr.DRAMWrite[1])
	}
	for i := range tr.DRAMWrite {
		if i != 1 && tr.DRAMWrite[i] != 0 {
			t.Errorf("ctrl %d unexpectedly used", i)
		}
	}
}

func TestBottleneckTime(t *testing.T) {
	c := meshCfg()
	n := New(c)
	tr := n.NewTraffic()
	// Load one on-chip link with 32e9 bytes at 32 GB/s -> exactly 1 s.
	tr.AddUnicast(c.CoreAt(0, 0), c.CoreAt(1, 0), 32e9)
	if got := tr.BottleneckTime(); got < 0.99 || got > 1.01 {
		t.Errorf("bottleneck = %v s, want ~1", got)
	}
	// The same bytes over a D2D link (16 GB/s) take twice as long.
	tr2 := n.NewTraffic()
	tr2.AddUnicast(c.CoreAt(2, 0), c.CoreAt(3, 0), 32e9)
	if got := tr2.BottleneckTime(); got < 1.99 || got > 2.01 {
		t.Errorf("d2d bottleneck = %v s, want ~2", got)
	}
}

func TestAddFromScales(t *testing.T) {
	c := meshCfg()
	n := New(c)
	a := n.NewTraffic()
	a.AddUnicast(c.CoreAt(0, 0), c.CoreAt(5, 0), 100)
	b := n.NewTraffic()
	b.AddFrom(a, 3)
	ao, ad, _ := a.TotalBytes()
	bo, bd, _ := b.TotalBytes()
	if bo != 3*ao || bd != 3*ad {
		t.Errorf("AddFrom scaling wrong: %v/%v vs %v/%v", bo, bd, ao, ad)
	}
}

func TestResetClears(t *testing.T) {
	c := meshCfg()
	n := New(c)
	tr := n.NewTraffic()
	tr.AddUnicast(c.CoreAt(0, 0), c.CoreAt(5, 5), 100)
	tr.AddDRAMRead(0, c.CoreAt(2, 2), 50)
	tr.Reset()
	o, d, dr := tr.TotalBytes()
	if o != 0 || d != 0 || dr != 0 {
		t.Errorf("reset left traffic: %v %v %v", o, d, dr)
	}
}

func TestHeatmapOutputs(t *testing.T) {
	c := meshCfg()
	n := New(c)
	tr := n.NewTraffic()
	tr.AddUnicast(c.CoreAt(0, 0), c.CoreAt(5, 5), 1000)
	rows := tr.HeatmapRows()
	if len(rows) != len(n.Links) {
		t.Fatalf("rows = %d, want %d", len(rows), len(n.Links))
	}
	if rows[0].Pressure < rows[len(rows)-1].Pressure {
		t.Error("rows not sorted by pressure")
	}
	csv := tr.CSV()
	if !strings.HasPrefix(csv, "from_x,from_y") || strings.Count(csv, "\n") != len(n.Links)+1 {
		t.Error("csv malformed")
	}
	ascii := tr.ASCII()
	if !strings.Contains(ascii, "|") {
		t.Error("ascii heatmap missing chiplet cut marker")
	}
	if len(strings.Split(strings.TrimSpace(ascii), "\n")) != c.CoresY {
		t.Errorf("ascii rows = %d", len(strings.Split(strings.TrimSpace(ascii), "\n")))
	}
}

func TestPortCoreNearestRow(t *testing.T) {
	c := meshCfg()
	n := New(c)
	// Controller 0 spans the top rows of the left edge; a peer in its span
	// gets the same-row port.
	peer := c.CoreAt(4, 0)
	port := n.PortCore(0, peer)
	px, py := c.CoreXY(port)
	if px != 0 {
		t.Errorf("port x = %d, want left edge", px)
	}
	if py != 0 {
		t.Errorf("port y = %d, want row 0", py)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
