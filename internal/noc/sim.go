package noc

import (
	"fmt"
	"math"

	"gemini/internal/arch"
)

// SimFlow is one transfer for the event-driven contention simulator.
type SimFlow struct {
	Src, Dst arch.CoreID
	Bytes    float64
}

// SimResult reports a contention simulation.
type SimResult struct {
	// DrainTime is the simulated seconds until the last flow completes.
	DrainTime float64
	// Completions holds each flow's finish time, in input order.
	Completions []float64
	// Rounds counts rate-recomputation events (diagnostics).
	Rounds int
}

// Simulate runs an event-driven max-min fair-share simulation of the flows:
// all flows start together, every link's bandwidth is divided fairly among
// the flows crossing it (progressive filling), and rates are recomputed
// whenever a flow completes. It cross-validates the analytic bottleneck
// model: the simulated drain time is never below the analytic
// BottleneckTime of the same flows and coincides with it when a single
// bottleneck dominates.
func (n *Network) Simulate(flows []SimFlow) (*SimResult, error) {
	type state struct {
		path      []int32
		remaining float64
		rate      float64
		done      bool
		finish    float64
	}
	sts := make([]state, len(flows))
	for i, f := range flows {
		if f.Bytes < 0 {
			return nil, fmt.Errorf("noc: flow %d has negative bytes", i)
		}
		sts[i] = state{path: n.Route(f.Src, f.Dst), remaining: f.Bytes}
		if len(sts[i].path) == 0 || f.Bytes == 0 {
			sts[i].done = true // same-core or empty transfer is instant
			sts[i].remaining = 0
		}
	}

	res := &SimResult{Completions: make([]float64, len(flows))}
	now := 0.0
	for {
		// Collect active flows.
		active := 0
		for i := range sts {
			if !sts[i].done {
				active++
			}
		}
		if active == 0 {
			break
		}
		res.Rounds++

		// Max-min fair rates via progressive filling.
		fixed := make([]bool, len(sts))
		rate := make([]float64, len(sts))
		capLeft := make([]float64, len(n.Links))
		for l := range capLeft {
			capLeft[l] = n.LinkBW(l) * 1e9
		}
		for {
			// Count unfixed flows per link.
			cnt := make([]int, len(n.Links))
			for i := range sts {
				if sts[i].done || fixed[i] {
					continue
				}
				for _, l := range sts[i].path {
					cnt[l]++
				}
			}
			// Most constrained link.
			bottleneck, share := -1, math.Inf(1)
			for l := range cnt {
				if cnt[l] == 0 {
					continue
				}
				s := capLeft[l] / float64(cnt[l])
				if s < share {
					share, bottleneck = s, l
				}
			}
			if bottleneck < 0 {
				break // all active flows fixed
			}
			// Fix every unfixed flow crossing the bottleneck at the share.
			for i := range sts {
				if sts[i].done || fixed[i] {
					continue
				}
				crosses := false
				for _, l := range sts[i].path {
					if int(l) == bottleneck {
						crosses = true
						break
					}
				}
				if !crosses {
					continue
				}
				fixed[i] = true
				rate[i] = share
				for _, l := range sts[i].path {
					capLeft[l] -= share
					if capLeft[l] < 0 {
						capLeft[l] = 0
					}
				}
			}
		}

		// Advance to the earliest completion under current rates.
		dt := math.Inf(1)
		for i := range sts {
			if sts[i].done {
				continue
			}
			if rate[i] <= 0 {
				return nil, fmt.Errorf("noc: flow %d starved (zero-bandwidth link on path)", i)
			}
			if t := sts[i].remaining / rate[i]; t < dt {
				dt = t
			}
		}
		now += dt
		for i := range sts {
			if sts[i].done {
				continue
			}
			sts[i].remaining -= rate[i] * dt
			if sts[i].remaining <= 1e-9 {
				sts[i].remaining = 0
				sts[i].done = true
				sts[i].finish = now
			}
		}
	}
	for i := range sts {
		res.Completions[i] = sts[i].finish
		if sts[i].finish > res.DrainTime {
			res.DrainTime = sts[i].finish
		}
	}
	return res, nil
}

// AnalyticDrain computes the analytic bottleneck time of the same flows
// (load summed per link, divided by bandwidth), for cross-validation.
func (n *Network) AnalyticDrain(flows []SimFlow) float64 {
	load := make([]float64, len(n.Links))
	for _, f := range flows {
		for _, l := range n.Route(f.Src, f.Dst) {
			load[l] += f.Bytes
		}
	}
	worst := 0.0
	for l, v := range load {
		if v == 0 {
			continue
		}
		if t := v / (n.LinkBW(l) * 1e9); t > worst {
			worst = t
		}
	}
	return worst
}
