package noc

import (
	"strings"
	"testing"

	"gemini/internal/arch"
)

func TestD2DPressureDoubling(t *testing.T) {
	// Fig. 9 note: with D2D bandwidth at half the NoC's, equal byte loads
	// show double the pressure on D2D links. HeatmapRows' pressure metric
	// (load / bandwidth) encodes exactly that.
	c := meshCfg() // NoC 32, D2D 16
	n := New(c)
	tr := n.NewTraffic()
	tr.AddUnicast(c.CoreAt(1, 0), c.CoreAt(2, 0), 1000) // on-chip
	tr.AddUnicast(c.CoreAt(2, 1), c.CoreAt(3, 1), 1000) // D2D crossing
	var onP, d2dP float64
	for _, r := range tr.HeatmapRows() {
		if r.Bytes == 0 {
			continue
		}
		if r.D2D {
			d2dP = r.Pressure
		} else {
			onP = r.Pressure
		}
	}
	if d2dP != 2*onP {
		t.Errorf("D2D pressure %v, want 2x on-chip %v", d2dP, onP)
	}
}

func TestTorusChipletCutD2D(t *testing.T) {
	// A folded torus with cuts still marks boundary (and wrap) links D2D.
	cfg := arch.GArchTorus() // 10x6, 2x3 cuts
	n := New(&cfg)
	d2d := 0
	for _, l := range n.Links {
		if l.D2D {
			d2d++
		}
	}
	if d2d == 0 {
		t.Fatal("torus with cuts should have D2D links")
	}
	// Wrap links connect opposite edges, which lie in different chiplets.
	wrap := n.Route(cfg.CoreAt(0, 0), cfg.CoreAt(9, 0))
	if len(wrap) != 1 {
		t.Fatalf("expected single wrap hop, got %d", len(wrap))
	}
	if !n.Links[wrap[0]].D2D {
		t.Error("wrap link between edge chiplets should be D2D")
	}
}

func TestTwoByTwoTorusHasNoWrap(t *testing.T) {
	cfg := arch.Config{
		CoresX: 2, CoresY: 2, XCut: 1, YCut: 1,
		NoCBW: 32, DRAMBW: 64, MACsPerCore: 1024, GLBPerCore: 1 << 20,
		FreqGHz: 1, Topology: arch.FoldedTorus,
	}
	n := New(&cfg)
	// Wrap links on a 2-wide dimension would duplicate the direct link.
	want := 2*(2-1)*2 + 2*2*(2-1)
	if len(n.Links) != want {
		t.Errorf("2x2 torus links = %d, want %d (no wraps)", len(n.Links), want)
	}
}

func TestCSVStable(t *testing.T) {
	c := meshCfg()
	n := New(c)
	tr := n.NewTraffic()
	tr.AddUnicast(c.CoreAt(0, 0), c.CoreAt(5, 5), 500)
	a, b := tr.CSV(), tr.CSV()
	if a != b {
		t.Error("CSV output not deterministic")
	}
	if !strings.Contains(a, "true") {
		t.Error("no D2D rows serialized despite crossing the cut")
	}
}

func TestBottleneckInfiniteOnZeroBW(t *testing.T) {
	cfg := arch.GArch72()
	cfg.D2DBW = 0
	n := New(&cfg)
	tr := n.NewTraffic()
	tr.AddUnicast(cfg.CoreAt(2, 0), cfg.CoreAt(3, 0), 100)
	if got := tr.BottleneckTime(); got < 1e100 {
		t.Errorf("zero-bandwidth link should give effectively infinite time, got %v", got)
	}
}

// TestLinkBWSumMatchesLinkGraph pins the arithmetic link-bandwidth
// aggregate (used by the DSE bound engine) to the actual link set New
// builds, across topologies and cut layouts.
func TestLinkBWSumMatchesLinkGraph(t *testing.T) {
	cfgs := []arch.Config{arch.GArch72(), arch.Grayskull()}
	mono := arch.GArch72()
	mono.XCut, mono.YCut = 1, 1
	cfgs = append(cfgs, mono)
	cuts := arch.GArch72()
	cuts.XCut, cuts.YCut = 3, 3
	cfgs = append(cfgs, cuts)
	torus := cuts
	torus.Topology = arch.FoldedTorus
	cfgs = append(cfgs, torus)
	for _, cfg := range cfgs {
		n := New(&cfg)
		want := 0.0
		for i := range n.Links {
			want += n.LinkBW(i)
		}
		if got := LinkBWSum(&cfg); got != want {
			t.Errorf("%s %s: LinkBWSum = %v, want %v (from %d links)",
				cfg.Topology, cfg.Name, got, want, len(n.Links))
		}
	}
}
