package noc

import (
	"math/rand"
	"testing"

	"gemini/internal/arch"
)

// bruteCutBW recomputes a cut's bandwidth the slow way: build the full
// network and sum the bandwidth of every directed link whose endpoints lie
// on opposite sides.
func bruteCutBW(cfg *arch.Config, c Cut) float64 {
	n := New(cfg)
	var bw float64
	for i, l := range n.Links {
		if c.SideOf(cfg, l.From) != c.SideOf(cfg, l.To) {
			bw += n.LinkBW(i)
		}
	}
	return bw
}

// TestChipletCutsVsBruteForce pins the closed-form cut enumeration against
// the real link graph across presets and randomized geometries, both
// topologies. A mismatch means the bound engine would charge a fictitious
// cut capacity.
func TestChipletCutsVsBruteForce(t *testing.T) {
	cfgs := []arch.Config{arch.Simba(), arch.GArch72(), arch.Grayskull(), arch.GArchTorus()}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		c := arch.GArch72()
		c.CoresX = []int{4, 6, 8, 12}[rng.Intn(4)]
		c.CoresY = []int{2, 4, 6, 10}[rng.Intn(4)]
		for {
			c.XCut = 1 + rng.Intn(4)
			if c.CoresX%c.XCut == 0 {
				break
			}
		}
		for {
			c.YCut = 1 + rng.Intn(3)
			if c.CoresY%c.YCut == 0 {
				break
			}
		}
		if rng.Intn(2) == 1 {
			c.Topology = arch.FoldedTorus
		}
		c.D2DBW = float64(1 + rng.Intn(32))
		c.NoCBW = float64(8 * (1 + rng.Intn(8)))
		c.Name = c.String()
		cfgs = append(cfgs, c)
	}
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: invalid config: %v", cfg.Name, err)
		}
		cuts := ChipletCuts(&cfg)
		wantN := (cfg.XCut - 1) + (cfg.YCut - 1)
		if len(cuts) != wantN {
			t.Fatalf("%s: %d cuts, want %d", cfg.Name, len(cuts), wantN)
		}
		for _, c := range cuts {
			want := bruteCutBW(&cfg, c)
			if c.BW != want {
				t.Errorf("%s cut{vertical=%t at=%d}: BW=%v, want %v (brute force)",
					cfg.Name, c.Vertical, c.At, c.BW, want)
			}
			if c.BW <= 0 {
				t.Errorf("%s cut{vertical=%t at=%d}: non-positive BW %v",
					cfg.Name, c.Vertical, c.At, c.BW)
			}
		}
	}
}

// TestChipletCutsMonolithic: a 1x1-cut chip has no bisections.
func TestChipletCutsMonolithic(t *testing.T) {
	cfg := arch.Grayskull()
	if cuts := ChipletCuts(&cfg); cuts != nil {
		t.Fatalf("monolithic config produced cuts: %v", cuts)
	}
}

// TestChipletCutsKnownGeometry: GArch72 is 6x6 with a single vertical cut at
// x=3; on a mesh exactly the 12 boundary links (6 rows x 2 directions) cross
// it, all D2D.
func TestChipletCutsKnownGeometry(t *testing.T) {
	cfg := arch.GArch72()
	cuts := ChipletCuts(&cfg)
	if len(cuts) != 1 {
		t.Fatalf("cuts = %v, want one", cuts)
	}
	c := cuts[0]
	if !c.Vertical || c.At != 3 {
		t.Fatalf("cut = %+v, want vertical at x=3", c)
	}
	if want := 12 * cfg.D2DBW; c.BW != want {
		t.Fatalf("cut BW = %v, want %v", c.BW, want)
	}
}
