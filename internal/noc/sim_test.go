package noc

import (
	"math"
	"math/rand"
	"testing"

	"gemini/internal/arch"
)

func TestSimulateSingleFlowMatchesAnalytic(t *testing.T) {
	c := meshCfg()
	n := New(c)
	flows := []SimFlow{{Src: c.CoreAt(0, 0), Dst: c.CoreAt(1, 0), Bytes: 32e9}}
	r, err := n.Simulate(flows)
	if err != nil {
		t.Fatal(err)
	}
	want := n.AnalyticDrain(flows) // 32e9 bytes at 32 GB/s = 1 s
	if math.Abs(r.DrainTime-want) > 1e-9 || math.Abs(want-1) > 1e-9 {
		t.Errorf("drain = %v, analytic = %v, want 1s", r.DrainTime, want)
	}
}

func TestSimulateSharedLinkFairness(t *testing.T) {
	c := meshCfg()
	n := New(c)
	// Two equal flows over the same single link: each gets half bandwidth,
	// so both finish at exactly the analytic bottleneck time.
	flows := []SimFlow{
		{Src: c.CoreAt(0, 0), Dst: c.CoreAt(1, 0), Bytes: 16e9},
		{Src: c.CoreAt(0, 0), Dst: c.CoreAt(1, 0), Bytes: 16e9},
	}
	r, err := n.Simulate(flows)
	if err != nil {
		t.Fatal(err)
	}
	want := n.AnalyticDrain(flows)
	if math.Abs(r.DrainTime-want) > want*1e-9 {
		t.Errorf("drain = %v, want %v", r.DrainTime, want)
	}
	if math.Abs(r.Completions[0]-r.Completions[1]) > want*1e-9 {
		t.Errorf("equal flows should finish together: %v", r.Completions)
	}
}

func TestSimulateUnequalFlowsStaggered(t *testing.T) {
	c := meshCfg()
	n := New(c)
	flows := []SimFlow{
		{Src: c.CoreAt(0, 0), Dst: c.CoreAt(1, 0), Bytes: 8e9},
		{Src: c.CoreAt(0, 0), Dst: c.CoreAt(1, 0), Bytes: 24e9},
	}
	r, err := n.Simulate(flows)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completions[0] >= r.Completions[1] {
		t.Errorf("smaller flow should finish first: %v", r.Completions)
	}
	// After the small flow drains, the big one gets the full link, so the
	// total equals the analytic serialized time.
	want := n.AnalyticDrain(flows)
	if math.Abs(r.DrainTime-want) > want*1e-6 {
		t.Errorf("drain = %v, want %v", r.DrainTime, want)
	}
	if r.Rounds < 2 {
		t.Errorf("expected a rate recomputation after first completion")
	}
}

// Property: the simulated drain is never below the analytic bottleneck and
// never above the fully serialized time.
func TestSimulateBounds(t *testing.T) {
	c := meshCfg()
	n := New(c)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(12)
		flows := make([]SimFlow, k)
		serial := 0.0
		for i := range flows {
			flows[i] = SimFlow{
				Src:   arch.CoreID(rng.Intn(c.Cores())),
				Dst:   arch.CoreID(rng.Intn(c.Cores())),
				Bytes: float64(1+rng.Intn(100)) * 1e8,
			}
			one := n.AnalyticDrain(flows[i : i+1])
			serial += one
		}
		r, err := n.Simulate(flows)
		if err != nil {
			t.Fatal(err)
		}
		analytic := n.AnalyticDrain(flows)
		if r.DrainTime < analytic*(1-1e-9) {
			t.Fatalf("trial %d: simulated %v below analytic %v", trial, r.DrainTime, analytic)
		}
		if r.DrainTime > serial+1e-9 {
			t.Fatalf("trial %d: simulated %v above serialized %v", trial, r.DrainTime, serial)
		}
	}
}

func TestSimulateD2DSlowdown(t *testing.T) {
	c := meshCfg()
	n := New(c)
	// Crossing the chiplet cut is slower than an equal-length on-chip path.
	cross, err := n.Simulate([]SimFlow{{Src: c.CoreAt(2, 0), Dst: c.CoreAt(3, 0), Bytes: 16e9}})
	if err != nil {
		t.Fatal(err)
	}
	local, err := n.Simulate([]SimFlow{{Src: c.CoreAt(1, 0), Dst: c.CoreAt(2, 0), Bytes: 16e9}})
	if err != nil {
		t.Fatal(err)
	}
	if cross.DrainTime <= local.DrainTime {
		t.Errorf("D2D crossing (%v) should be slower than on-chip (%v)", cross.DrainTime, local.DrainTime)
	}
}

func TestSimulateDegenerateFlows(t *testing.T) {
	c := meshCfg()
	n := New(c)
	r, err := n.Simulate([]SimFlow{
		{Src: c.CoreAt(2, 2), Dst: c.CoreAt(2, 2), Bytes: 100}, // same core
		{Src: c.CoreAt(0, 0), Dst: c.CoreAt(1, 1), Bytes: 0},   // empty
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DrainTime != 0 {
		t.Errorf("degenerate flows should drain instantly, got %v", r.DrainTime)
	}
	if _, err := n.Simulate([]SimFlow{{Src: 0, Dst: 1, Bytes: -5}}); err == nil {
		t.Error("negative bytes should error")
	}
}

func TestSimulateStarvationOnZeroBW(t *testing.T) {
	cfg := arch.GArch72()
	cfg.D2DBW = 0 // invalid config, but the simulator must not hang
	n := New(&cfg)
	_, err := n.Simulate([]SimFlow{{Src: cfg.CoreAt(2, 0), Dst: cfg.CoreAt(3, 0), Bytes: 100}})
	if err == nil {
		t.Fatal("expected starvation error for zero-bandwidth link")
	}
}
