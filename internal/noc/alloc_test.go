package noc

import (
	"testing"

	"gemini/internal/arch"
)

// TestSideOfAllocFree pins the //gemini:noalloc annotation on Cut.SideOf:
// classifying a core against a cut is pure arithmetic on the config geometry
// and performs zero heap allocations. The DSE bound engine calls it once per
// core per cut inside its candidate loop, so this keeps the hotpathalloc
// analyzer's annotation set tied to measured behavior.
func TestSideOfAllocFree(t *testing.T) {
	cfg := arch.GArch72()
	cuts := ChipletCuts(&cfg)
	if len(cuts) == 0 {
		t.Fatal("GArch72 has no chiplet cuts")
	}
	side := 0
	allocs := testing.AllocsPerRun(200, func() {
		for _, c := range cuts {
			for id := 0; id < cfg.CoresX*cfg.CoresY; id++ {
				side += c.SideOf(&cfg, arch.CoreID(id))
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Cut.SideOf allocates %.0f times per sweep, want 0 (side sum %d)", allocs, side)
	}
}
