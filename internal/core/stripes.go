package core

import (
	"fmt"
	"sort"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

// SnakeOrder returns all cores in boustrophedon row order, so consecutive
// runs form the "consecutive and rectangle-shaped" stripes of the heuristic
// SPM strategies the paper baselines against (Sec. II-B).
func SnakeOrder(cfg *arch.Config) []arch.CoreID {
	out := make([]arch.CoreID, 0, cfg.Cores())
	for y := 0; y < cfg.CoresY; y++ {
		if y%2 == 0 {
			for x := 0; x < cfg.CoresX; x++ {
				out = append(out, cfg.CoreAt(x, y))
			}
		} else {
			for x := cfg.CoresX - 1; x >= 0; x-- {
				out = append(out, cfg.CoreAt(x, y))
			}
		}
	}
	return out
}

// layerWeight estimates a layer's share of compute for core allocation.
func layerWeight(l *dnn.Layer) float64 {
	return float64(l.MACs()) + float64(l.VectorOps())/8 + 1
}

// AllocateCores distributes m cores over the layers proportionally to their
// compute weight (largest-remainder method), each layer receiving at least
// one core and at most its maximum useful partition count.
func AllocateCores(g *dnn.Graph, layers []int, m, batchUnit int) ([]int, error) {
	n := len(layers)
	if n == 0 {
		return nil, fmt.Errorf("core: empty layer group")
	}
	if n > m {
		return nil, fmt.Errorf("core: %d layers exceed %d cores", n, m)
	}
	caps := make([]int, n)
	weights := make([]float64, n)
	total := 0.0
	for i, id := range layers {
		l := g.Layer(id)
		caps[i] = maxParts(l, batchUnit)
		weights[i] = layerWeight(l)
		total += weights[i]
	}
	alloc := make([]int, n)
	remainders := make([]float64, n)
	used := 0
	for i := range layers {
		ideal := weights[i] / total * float64(m)
		alloc[i] = int(ideal)
		if alloc[i] < 1 {
			alloc[i] = 1
		}
		if alloc[i] > caps[i] {
			alloc[i] = caps[i]
		}
		remainders[i] = ideal - float64(alloc[i])
		used += alloc[i]
	}
	// Distribute leftovers to the largest remainders that can absorb them.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for used < m {
		sort.Slice(order, func(a, b int) bool { return remainders[order[a]] > remainders[order[b]] })
		progressed := false
		for _, i := range order {
			if used >= m {
				break
			}
			if alloc[i] < caps[i] {
				alloc[i]++
				remainders[i] -= 1
				used++
				progressed = true
			}
		}
		if !progressed {
			break // every layer saturated; leave cores idle
		}
	}
	// Shrink if the at-least-one rule overshot m.
	for used > m {
		worst := -1
		for i := range alloc {
			if alloc[i] > 1 && (worst < 0 || remainders[i] < remainders[worst]) {
				worst = i
			}
		}
		if worst < 0 {
			return nil, fmt.Errorf("core: cannot fit %d layers in %d cores", n, m)
		}
		alloc[worst]--
		used--
	}
	return alloc, nil
}

// maxParts bounds how many workloads a layer can be split into.
func maxParts(l *dnn.Layer, batchUnit int) int {
	p := l.OH * l.OW * batchUnit * l.OK
	if p < 1 {
		p = 1
	}
	return p
}

// HeuristicPart picks the stripe heuristic's partition for n cores:
// spatial dimensions first (H, then W), then batch, channels last, the
// strategy of Tangram-style stripe SPM.
func HeuristicPart(l *dnn.Layer, batchUnit, n int) (Part, bool) {
	best := Part{}
	bestCost := 1e18
	found := false
	forEachFactorization(l, batchUnit, n, func(p Part) {
		cost := factorCost(l, batchUnit, p)
		if cost < bestCost {
			bestCost = cost
			best = p
			found = true
		}
	})
	return best, found
}

// factorCost scores a factorization for the stripe heuristic: penalize
// channel and batch splits (heuristics favor spatial stripes) and uneven
// remainders.
func factorCost(l *dnn.Layer, batchUnit int, p Part) float64 {
	cost := 4*float64(p.K-1) + 2*float64(p.B-1)
	if l.OH%p.H != 0 {
		cost += 0.5
	}
	if l.OW%p.W != 0 {
		cost += 0.5
	}
	if l.OK%p.K != 0 {
		cost += 0.5
	}
	if batchUnit%p.B != 0 {
		cost += 0.5
	}
	// Prefer more square spatial splits.
	if p.H > 0 && p.W > 0 {
		r := float64(p.H) / float64(p.W)
		if r < 1 {
			r = 1 / r
		}
		cost += (r - 1) * 0.01
	}
	return cost
}

// forEachFactorization enumerates every valid Part with product n.
func forEachFactorization(l *dnn.Layer, batchUnit, n int, fn func(Part)) {
	for h := 1; h <= n && h <= l.OH; h++ {
		if n%h != 0 {
			continue
		}
		nh := n / h
		for w := 1; w <= nh && w <= l.OW; w++ {
			if nh%w != 0 {
				continue
			}
			nw := nh / w
			for b := 1; b <= nw && b <= batchUnit; b++ {
				if nw%b != 0 {
					continue
				}
				k := nw / b
				if k <= l.OK {
					fn(Part{H: h, W: w, B: b, K: k})
				}
			}
		}
	}
}

// LargestFeasible returns the largest core count <= n for which the layer
// admits a valid factorization.
func LargestFeasible(l *dnn.Layer, batchUnit, n int) int {
	for v := n; v >= 1; v-- {
		if _, ok := HeuristicPart(l, batchUnit, v); ok {
			return v
		}
	}
	return 1
}

// Stripes builds the heuristic stripe-based LMS for a layer group: compute-
// proportional core counts, consecutive snake-order core stripes, spatial-
// first partitions, and interleaved DRAM flows. This is both the T-Map
// baseline and the SA's initial scheme (paper Sec. V-B1).
func Stripes(g *dnn.Graph, layers []int, cfg *arch.Config, batchUnit int) (*LMS, error) {
	alloc, err := AllocateCores(g, layers, cfg.Cores(), batchUnit)
	if err != nil {
		return nil, err
	}
	group := make(map[int]bool, len(layers))
	for _, id := range layers {
		group[id] = true
	}
	order := SnakeOrder(cfg)
	lms := &LMS{BatchUnit: batchUnit}
	pos := 0
	for i, id := range layers {
		l := g.Layer(id)
		n := alloc[i]
		part, ok := HeuristicPart(l, batchUnit, n)
		if !ok {
			n = LargestFeasible(l, batchUnit, n)
			part, _ = HeuristicPart(l, batchUnit, n)
		}
		cg := append([]arch.CoreID(nil), order[pos:pos+n]...)
		pos += n
		fd := FD{IF: FDImplicit, WGT: FDImplicit, OF: FDImplicit}
		if NeedsExplicitIF(l) {
			fd.IF = FDInterleave
		}
		if l.HasWeights {
			fd.WGT = FDInterleave
		}
		if NeedsExplicitOF(g, group, id) {
			fd.OF = FDInterleave
		}
		lms.MSs = append(lms.MSs, &MS{Layer: id, Part: part, CG: cg, FD: fd})
	}
	return lms, nil
}

// StripeScheme builds a full stripe-mapped Scheme from a layer-group
// partition of the graph: groups lists layer IDs per group in topological
// order, batchUnits the samples per pass of each group.
func StripeScheme(g *dnn.Graph, cfg *arch.Config, groups [][]int, batchUnits []int, batch int) (*Scheme, error) {
	if len(groups) != len(batchUnits) {
		return nil, fmt.Errorf("core: %d groups but %d batch units", len(groups), len(batchUnits))
	}
	s := &Scheme{Graph: g, Batch: batch, Groups: make([]*LMS, len(groups))}
	for i, layers := range groups {
		lms, err := Stripes(g, layers, cfg, batchUnits[i])
		if err != nil {
			return nil, err
		}
		s.Groups[i] = lms
	}
	return s, nil
}
