package core

import (
	"math/rand"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

func testCfg() *arch.Config {
	c := arch.GArch72()
	return &c
}

// allLayers returns every layer ID of a graph.
func allLayers(g *dnn.Graph) []int {
	ids := make([]int, len(g.Layers))
	for i := range g.Layers {
		ids[i] = i
	}
	return ids
}

// tinyScheme maps the whole TinyCNN as one stripe group.
func tinyScheme(t *testing.T, cfg *arch.Config, bu int) *Scheme {
	t.Helper()
	g := dnn.TinyCNN()
	s, err := StripeScheme(g, cfg, [][]int{allLayers(g)}, []int{bu}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNIDCorrespondence(t *testing.T) {
	p := Part{H: 1, W: 1, B: 2, K: 2}
	// Paper Fig. 3 example: IDs (0,0,0,0)->0, (0,0,0,1)->1, (0,0,1,0)->2, (0,0,1,1)->3.
	want := map[[4]int]int{
		{0, 0, 0, 0}: 0, {0, 0, 0, 1}: 1, {0, 0, 1, 0}: 2, {0, 0, 1, 1}: 3,
	}
	for id, nid := range want {
		if got := p.NID(id[0], id[1], id[2], id[3]); got != nid {
			t.Errorf("NID%v = %d, want %d", id, got, nid)
		}
	}
	// NID is a bijection onto [0, N).
	p2 := Part{H: 2, W: 3, B: 2, K: 2}
	seen := make(map[int]bool)
	for h := 0; h < p2.H; h++ {
		for w := 0; w < p2.W; w++ {
			for b := 0; b < p2.B; b++ {
				for k := 0; k < p2.K; k++ {
					nid := p2.NID(h, w, b, k)
					if nid < 0 || nid >= p2.N() || seen[nid] {
						t.Fatalf("NID collision or range error at (%d,%d,%d,%d)=%d", h, w, b, k, nid)
					}
					seen[nid] = true
				}
			}
		}
	}
}

func TestStripeSchemeValidates(t *testing.T) {
	cfg := testCfg()
	s := tinyScheme(t, cfg, 2)
	if err := s.Validate(cfg); err != nil {
		t.Fatalf("stripe scheme invalid: %v", err)
	}
}

func TestStripeSchemeResNetValidates(t *testing.T) {
	cfg := testCfg()
	g := dnn.ResNet50()
	// Split into chunks of at most 18 layers (two groups per 36 cores).
	var groups [][]int
	var bus []int
	for lo := 0; lo < len(g.Layers); lo += 18 {
		hi := lo + 18
		if hi > len(g.Layers) {
			hi = len(g.Layers)
		}
		ids := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			ids = append(ids, i)
		}
		groups = append(groups, ids)
		bus = append(bus, 1)
	}
	s, err := StripeScheme(g, cfg, groups, bus, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(cfg); err != nil {
		t.Fatalf("resnet stripes invalid: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cfg := testCfg()

	s := tinyScheme(t, cfg, 2)
	s.Groups[0].MSs[0].CG[0] = arch.CoreID(999)
	if err := s.Validate(cfg); err == nil {
		t.Error("invalid core ID accepted")
	}

	s = tinyScheme(t, cfg, 2)
	s.Groups[0].MSs[0].Part.K = 3 // |CG| no longer matches
	if err := s.Validate(cfg); err == nil {
		t.Error("part/CG mismatch accepted")
	}

	s = tinyScheme(t, cfg, 2)
	s.Groups[0].MSs[1].CG[0] = s.Groups[0].MSs[0].CG[0] // duplicate core
	if err := s.Validate(cfg); err == nil {
		t.Error("overlapping CGs accepted")
	}

	s = tinyScheme(t, cfg, 2)
	s.Groups[0].MSs[0].FD.IF = FDImplicit // first layer needs explicit IF
	if err := s.Validate(cfg); err == nil {
		t.Error("missing explicit IF accepted")
	}

	s = tinyScheme(t, cfg, 2)
	s.Groups[0].MSs[2].FD.WGT = 1 // eltwise has no weights
	if err := s.Validate(cfg); err == nil {
		t.Error("explicit WGT on weight-less layer accepted")
	}

	s = tinyScheme(t, cfg, 2)
	last := s.Groups[0].MSs[len(s.Groups[0].MSs)-1]
	last.FD.OF = cfg.DRAMControllers() + 1 // out of range
	if err := s.Validate(cfg); err == nil {
		t.Error("out-of-range OF accepted")
	}
}

func TestStripesUseDistinctConsecutiveCores(t *testing.T) {
	cfg := testCfg()
	s := tinyScheme(t, cfg, 2)
	used := map[arch.CoreID]bool{}
	total := 0
	for _, ms := range s.Groups[0].MSs {
		for _, c := range ms.CG {
			if used[c] {
				t.Fatalf("core %d assigned twice", c)
			}
			used[c] = true
			total++
		}
	}
	if total > cfg.Cores() {
		t.Fatalf("assigned %d cores, have %d", total, cfg.Cores())
	}
	if total < cfg.Cores()/2 {
		t.Errorf("stripes used only %d of %d cores", total, cfg.Cores())
	}
}

func TestHeuristicPartPrefersSpatial(t *testing.T) {
	l := &dnn.Layer{Kind: dnn.Conv, OH: 32, OW: 32, OK: 64, IC: 32, R: 3, S: 3, Stride: 1, Groups: 1}
	p, ok := HeuristicPart(l, 1, 8)
	if !ok {
		t.Fatal("no factorization for 8")
	}
	if p.K != 1 || p.B != 1 {
		t.Errorf("heuristic part = %+v, want spatial-only split", p)
	}
	if p.N() != 8 {
		t.Errorf("part product = %d", p.N())
	}
}

func TestHeuristicPartFallsBackToK(t *testing.T) {
	// A 1x1 spatial layer (FC-like) can only split across K and B.
	l := &dnn.Layer{Kind: dnn.FC, OH: 1, OW: 1, OK: 1000, IC: 2048, HasWeights: true}
	p, ok := HeuristicPart(l, 1, 6)
	if !ok {
		t.Fatal("no factorization")
	}
	if p.K != 6 {
		t.Errorf("part = %+v, want K=6", p)
	}
}

func TestAllocateCoresProportional(t *testing.T) {
	g := dnn.TinyCNN()
	alloc, err := AllocateCores(g, allLayers(g), 36, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	heaviest, heaviestIdx := int64(0), 0
	for i, id := range allLayers(g) {
		total += alloc[i]
		if alloc[i] < 1 {
			t.Errorf("layer %d got %d cores", id, alloc[i])
		}
		if m := g.Layer(id).MACs(); m > heaviest {
			heaviest, heaviestIdx = m, i
		}
	}
	if total > 36 {
		t.Errorf("allocated %d cores of 36", total)
	}
	max := 0
	for _, a := range alloc {
		if a > max {
			max = a
		}
	}
	if alloc[heaviestIdx] != max {
		t.Errorf("heaviest layer got %d cores, max is %d", alloc[heaviestIdx], max)
	}
}

func TestAllocateCoresErrors(t *testing.T) {
	g := dnn.TinyCNN()
	if _, err := AllocateCores(g, allLayers(g), 3, 1); err == nil {
		t.Error("7 layers on 3 cores should fail")
	}
	if _, err := AllocateCores(g, nil, 36, 1); err == nil {
		t.Error("empty group should fail")
	}
}

func TestRandomPartAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := &dnn.Layer{Kind: dnn.Conv, OH: 14, OW: 14, OK: 256, IC: 64, R: 3, S: 3, Stride: 1, Groups: 1}
	for n := 1; n <= 36; n++ {
		for trial := 0; trial < 20; trial++ {
			p, ok := RandomPart(l, 4, n, rng)
			if !ok {
				t.Fatalf("no factorization for n=%d", n)
			}
			if p.N() != n || !p.Valid(l, 4) {
				t.Fatalf("invalid random part %+v for n=%d", p, n)
			}
		}
	}
}

func TestOperatorsPreserveInvariants(t *testing.T) {
	cfg := testCfg()
	rng := rand.New(rand.NewSource(42))
	mu := &Mutator{Graph: dnn.TinyCNN(), Drams: cfg.DRAMControllers(), Rng: rng}
	s := tinyScheme(t, cfg, 2)
	mu.Graph = s.Graph
	applied := map[Op]int{}
	for i := 0; i < 2000; i++ {
		op, ok := mu.Apply(s.Groups[0])
		if ok {
			applied[op]++
		}
		if err := s.Validate(cfg); err != nil {
			t.Fatalf("iteration %d op %v broke invariants: %v", i, op, err)
		}
	}
	for op := Op(0); op < numOps; op++ {
		if applied[op] == 0 {
			t.Errorf("operator %v never succeeded in 2000 iterations", op)
		}
	}
}

func TestOpMoveChangesSizes(t *testing.T) {
	cfg := testCfg()
	rng := rand.New(rand.NewSource(7))
	s := tinyScheme(t, cfg, 2)
	mu := &Mutator{Graph: s.Graph, Drams: cfg.DRAMControllers(), Rng: rng}
	before := make([]int, len(s.Groups[0].MSs))
	for i, ms := range s.Groups[0].MSs {
		before[i] = len(ms.CG)
	}
	moved := false
	for i := 0; i < 200 && !moved; i++ {
		if mu.ApplyOp(s.Groups[0], OpMove) {
			for j, ms := range s.Groups[0].MSs {
				if len(ms.CG) != before[j] {
					moved = true
				}
			}
		}
	}
	if !moved {
		t.Fatal("OP4 never changed CG sizes")
	}
	if err := s.Validate(cfg); err != nil {
		t.Fatal(err)
	}
}

// OP4 reachability (paper claim): a CG of size s can reach any size in
// [1, s + spare] through a sequence of OP4 moves.
func TestOpMoveReachability(t *testing.T) {
	cfg := testCfg()
	rng := rand.New(rand.NewSource(3))
	s := tinyScheme(t, cfg, 2)
	mu := &Mutator{Graph: s.Graph, Drams: cfg.DRAMControllers(), Rng: rng}
	target := s.Groups[0].MSs[0]
	sizes := map[int]bool{len(target.CG): true}
	for i := 0; i < 5000; i++ {
		mu.ApplyOp(s.Groups[0], OpMove)
		sizes[len(target.CG)] = true
	}
	if !sizes[1] {
		t.Error("OP4 never shrank the first CG to one core")
	}
	if len(sizes) < 4 {
		t.Errorf("OP4 explored only %d distinct sizes", len(sizes))
	}
}

func TestCloneIsDeep(t *testing.T) {
	cfg := testCfg()
	s := tinyScheme(t, cfg, 2)
	cp := s.Clone()
	cp.Groups[0].MSs[0].CG[0] = arch.CoreID(35)
	cp.Groups[0].MSs[0].Part = Part{H: 1, W: 1, B: 1, K: 1}
	cp.Groups[0].MSs[0].FD.IF = 2
	orig := s.Groups[0].MSs[0]
	if orig.CG[0] == arch.CoreID(35) && orig.Part.N() == 1 {
		t.Error("clone shares state with original")
	}
}

func TestNeedsExplicitOF(t *testing.T) {
	g := dnn.TinyCNN()
	all := map[int]bool{}
	for i := range g.Layers {
		all[i] = true
	}
	last := len(g.Layers) - 1
	if !NeedsExplicitOF(g, all, last) {
		t.Error("DNN output layer must store ofmaps")
	}
	if NeedsExplicitOF(g, all, 0) {
		t.Error("interior layer with in-group consumers should be implicit")
	}
	// With the group cut after layer 0, layer 0's consumers are outside.
	if !NeedsExplicitOF(g, map[int]bool{0: true}, 0) {
		t.Error("cross-group producer must store ofmaps")
	}
}
