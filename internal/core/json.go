package core

import (
	"encoding/json"
	"fmt"
	"io"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

// schemeJSON is the serialized form of a Scheme: everything except the
// graph itself, which the loader re-binds by model name (the artifact
// stores schemes the same way, keyed to the workload).
type schemeJSON struct {
	Model  string      `json:"model"`
	Batch  int         `json:"batch"`
	Groups []groupJSON `json:"groups"`
}

type groupJSON struct {
	BatchUnit int      `json:"batch_unit"`
	MSs       []msJSON `json:"layers"`
}

type msJSON struct {
	Layer int    `json:"layer"`
	Name  string `json:"name,omitempty"`
	Part  [4]int `json:"part"` // H, W, B, K
	CG    []int  `json:"cg"`
	FD    [3]int `json:"fd"` // IF, WGT, OF
}

// WriteJSON serializes the scheme (layer names included for readability).
func (s *Scheme) WriteJSON(w io.Writer) error {
	out := schemeJSON{Model: s.Graph.Name, Batch: s.Batch}
	for _, g := range s.Groups {
		gj := groupJSON{BatchUnit: g.BatchUnit}
		for _, ms := range g.MSs {
			mj := msJSON{
				Layer: ms.Layer,
				Part:  [4]int{ms.Part.H, ms.Part.W, ms.Part.B, ms.Part.K},
				FD:    [3]int{ms.FD.IF, ms.FD.WGT, ms.FD.OF},
			}
			if l := s.Graph.Layer(ms.Layer); l != nil {
				mj.Name = l.Name
			}
			for _, c := range ms.CG {
				mj.CG = append(mj.CG, int(c))
			}
			gj.MSs = append(gj.MSs, mj)
		}
		out.Groups = append(out.Groups, gj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadSchemeJSON deserializes a scheme bound to graph. The graph's name
// must match the serialized model name. The result is structurally
// reconstructed but not validated; call Validate with the target
// architecture afterwards.
func ReadSchemeJSON(r io.Reader, graph *dnn.Graph) (*Scheme, error) {
	var in schemeJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding scheme: %w", err)
	}
	if in.Model != graph.Name {
		return nil, fmt.Errorf("core: scheme is for model %q, graph is %q", in.Model, graph.Name)
	}
	s := &Scheme{Graph: graph, Batch: in.Batch}
	for _, gj := range in.Groups {
		lms := &LMS{BatchUnit: gj.BatchUnit}
		for _, mj := range gj.MSs {
			ms := &MS{
				Layer: mj.Layer,
				Part:  Part{H: mj.Part[0], W: mj.Part[1], B: mj.Part[2], K: mj.Part[3]},
				FD:    FD{IF: mj.FD[0], WGT: mj.FD[1], OF: mj.FD[2]},
			}
			for _, c := range mj.CG {
				ms.CG = append(ms.CG, arch.CoreID(c))
			}
			lms.MSs = append(lms.MSs, ms)
		}
		s.Groups = append(s.Groups, lms)
	}
	return s, nil
}
