package core

import (
	"math/rand"

	"gemini/internal/dnn"
)

// Op identifies one of the five SA operators (paper Sec. V-B1).
type Op int

const (
	// OpPart (OP1) re-randomizes a layer's Part within its constraints.
	OpPart Op = iota
	// OpSwapIntra (OP2) swaps two cores within one layer's CG.
	OpSwapIntra
	// OpSwapInter (OP3) swaps a core between two layers' CGs.
	OpSwapInter
	// OpMove (OP4) moves a core from one CG to another and re-randomizes
	// both Parts to the new sizes.
	OpMove
	// OpFD (OP5) re-randomizes one explicit flow-of-data entry.
	OpFD
	numOps
)

// String names the operator as in the paper.
func (o Op) String() string {
	switch o {
	case OpPart:
		return "OP1-part"
	case OpSwapIntra:
		return "OP2-swap-intra"
	case OpSwapInter:
		return "OP3-swap-inter"
	case OpMove:
		return "OP4-move-core"
	case OpFD:
		return "OP5-flow"
	}
	return "op?"
}

// RandomPart draws a uniformly random valid factorization of n workloads
// for the layer, or ok=false when none exists.
func RandomPart(l *dnn.Layer, batchUnit, n int, rng *rand.Rand) (Part, bool) {
	var opts []Part
	forEachFactorization(l, batchUnit, n, func(p Part) { opts = append(opts, p) })
	if len(opts) == 0 {
		return Part{}, false
	}
	return opts[rng.Intn(len(opts))], true
}

// Mutator applies the paper's five SA operators to one layer group of a
// scheme, in place. Drams is the controller count D (FD values range 0..D).
type Mutator struct {
	Graph *dnn.Graph
	Drams int
	Rng   *rand.Rand
}

// Apply picks a random operator and applies it to group lms, returning the
// operator used and whether the transformation succeeded (failed operators
// leave the group unchanged).
func (mu *Mutator) Apply(lms *LMS) (Op, bool) {
	op := Op(mu.Rng.Intn(int(numOps)))
	return op, mu.ApplyOp(lms, op)
}

// ApplyOp applies a specific operator.
func (mu *Mutator) ApplyOp(lms *LMS, op Op) bool {
	switch op {
	case OpPart:
		return mu.opPart(lms)
	case OpSwapIntra:
		return mu.opSwapIntra(lms)
	case OpSwapInter:
		return mu.opSwapInter(lms)
	case OpMove:
		return mu.opMove(lms)
	case OpFD:
		return mu.opFD(lms)
	}
	return false
}

// opPart (OP1): randomly select a layer and change the values in its Part,
// still satisfying the Part constraints.
func (mu *Mutator) opPart(lms *LMS) bool {
	ms := lms.MSs[mu.Rng.Intn(len(lms.MSs))]
	l := mu.Graph.Layer(ms.Layer)
	p, ok := RandomPart(l, lms.BatchUnit, len(ms.CG), mu.Rng)
	if !ok || p == ms.Part {
		return false
	}
	ms.Part = p
	return true
}

// opSwapIntra (OP2): randomly select a layer and swap two cores within its
// CG — exchanging the workloads of those two cores for a single layer.
func (mu *Mutator) opSwapIntra(lms *LMS) bool {
	candidates := make([]*MS, 0, len(lms.MSs))
	for _, ms := range lms.MSs {
		if len(ms.CG) >= 2 {
			candidates = append(candidates, ms)
		}
	}
	if len(candidates) == 0 {
		return false
	}
	ms := candidates[mu.Rng.Intn(len(candidates))]
	a := mu.Rng.Intn(len(ms.CG))
	b := mu.Rng.Intn(len(ms.CG) - 1)
	if b >= a {
		b++
	}
	ms.CG[a], ms.CG[b] = ms.CG[b], ms.CG[a]
	return true
}

// opSwapInter (OP3): randomly select two layers and swap two cores between
// their CGs — exchanging the workloads of those cores across two layers.
func (mu *Mutator) opSwapInter(lms *LMS) bool {
	if len(lms.MSs) < 2 {
		return false
	}
	i := mu.Rng.Intn(len(lms.MSs))
	j := mu.Rng.Intn(len(lms.MSs) - 1)
	if j >= i {
		j++
	}
	mi, mj := lms.MSs[i], lms.MSs[j]
	a := mu.Rng.Intn(len(mi.CG))
	b := mu.Rng.Intn(len(mj.CG))
	mi.CG[a], mj.CG[b] = mj.CG[b], mi.CG[a]
	return true
}

// opMove (OP4): move a core from one layer's CG to another's and randomly
// update both Parts to match the new CG sizes.
func (mu *Mutator) opMove(lms *LMS) bool {
	if len(lms.MSs) < 2 {
		return false
	}
	// Donor must keep at least one core.
	donors := make([]int, 0, len(lms.MSs))
	for idx, ms := range lms.MSs {
		if len(ms.CG) >= 2 {
			donors = append(donors, idx)
		}
	}
	if len(donors) == 0 {
		return false
	}
	di := donors[mu.Rng.Intn(len(donors))]
	ri := mu.Rng.Intn(len(lms.MSs) - 1)
	if ri >= di {
		ri++
	}
	donor, recv := lms.MSs[di], lms.MSs[ri]
	dl := mu.Graph.Layer(donor.Layer)
	rl := mu.Graph.Layer(recv.Layer)

	dPart, ok := RandomPart(dl, lms.BatchUnit, len(donor.CG)-1, mu.Rng)
	if !ok {
		return false
	}
	rPart, ok := RandomPart(rl, lms.BatchUnit, len(recv.CG)+1, mu.Rng)
	if !ok {
		return false
	}
	pos := mu.Rng.Intn(len(donor.CG))
	moved := donor.CG[pos]
	donor.CG = append(donor.CG[:pos], donor.CG[pos+1:]...)
	ins := mu.Rng.Intn(len(recv.CG) + 1)
	recv.CG = append(recv.CG, 0)
	copy(recv.CG[ins+1:], recv.CG[ins:])
	recv.CG[ins] = moved
	donor.Part = dPart
	recv.Part = rPart
	return true
}

// opFD (OP5): randomly select a layer, choose one of its non-negative FD
// items, and re-randomize it within [0, D].
func (mu *Mutator) opFD(lms *LMS) bool {
	type slot struct {
		ms    *MS
		which int // 0=IF 1=WGT 2=OF
	}
	var slots []slot
	for _, ms := range lms.MSs {
		if ms.FD.IF != FDImplicit {
			slots = append(slots, slot{ms, 0})
		}
		if ms.FD.WGT != FDImplicit {
			slots = append(slots, slot{ms, 1})
		}
		if ms.FD.OF != FDImplicit {
			slots = append(slots, slot{ms, 2})
		}
	}
	if len(slots) == 0 {
		return false
	}
	sl := slots[mu.Rng.Intn(len(slots))]
	v := mu.Rng.Intn(mu.Drams + 1) // 0 = interleave, 1..D = specific DRAM
	switch sl.which {
	case 0:
		if sl.ms.FD.IF == v {
			return false
		}
		sl.ms.FD.IF = v
	case 1:
		if sl.ms.FD.WGT == v {
			return false
		}
		sl.ms.FD.WGT = v
	default:
		if sl.ms.FD.OF == v {
			return false
		}
		sl.ms.FD.OF = v
	}
	return true
}
