package core

import (
	"bytes"
	"strings"
	"testing"

	"gemini/internal/dnn"
)

func TestSchemeJSONRoundTrip(t *testing.T) {
	cfg := testCfg()
	s := tinyScheme(t, cfg, 2)
	s.Groups[0].MSs[0].FD.IF = 3 // non-default value must survive

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchemeJSON(&buf, s.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(cfg); err != nil {
		t.Fatalf("round-tripped scheme invalid: %v", err)
	}
	if got.Batch != s.Batch || len(got.Groups) != len(s.Groups) {
		t.Fatal("structure changed")
	}
	for gi, g := range s.Groups {
		gg := got.Groups[gi]
		if gg.BatchUnit != g.BatchUnit {
			t.Fatal("batch unit changed")
		}
		for mi, ms := range g.MSs {
			mm := gg.MSs[mi]
			if mm.Layer != ms.Layer || mm.Part != ms.Part || mm.FD != ms.FD {
				t.Fatalf("ms %d changed: %+v vs %+v", mi, mm, ms)
			}
			for ci := range ms.CG {
				if mm.CG[ci] != ms.CG[ci] {
					t.Fatal("CG changed")
				}
			}
		}
	}
}

func TestSchemeJSONContainsNames(t *testing.T) {
	cfg := testCfg()
	s := tinyScheme(t, cfg, 1)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name": "c1"`) {
		t.Error("serialized scheme missing layer names")
	}
}

func TestSchemeJSONModelMismatch(t *testing.T) {
	cfg := testCfg()
	s := tinyScheme(t, cfg, 1)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	other := dnn.TinyTransformer()
	if _, err := ReadSchemeJSON(&buf, other); err == nil {
		t.Fatal("expected model mismatch error")
	}
}

func TestSchemeJSONGarbage(t *testing.T) {
	if _, err := ReadSchemeJSON(strings.NewReader("{nope"), dnn.TinyCNN()); err == nil {
		t.Fatal("expected decode error")
	}
}
