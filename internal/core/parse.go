package core

import (
	"fmt"
	"sort"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/intracore"
)

// PW is a partitioned workload: the slice of a layer's output cube assigned
// to one core by the correspondence rule (paper Sec. IV-A).
type PW struct {
	Layer          int
	Core           arch.CoreID
	HR, WR, BR, KR dnn.Range
}

// Vol returns the output elements this workload produces per pass.
func (p *PW) Vol() int64 {
	return int64(p.HR.Len()) * int64(p.WR.Len()) * int64(p.BR.Len()) * int64(p.KR.Len())
}

// CoreFlow is a per-pass data movement from one core's GLB to one or more
// consumer cores (identical payloads are multicast, paper Sec. IV-C).
type CoreFlow struct {
	Src   arch.CoreID
	Dsts  []arch.CoreID
	Bytes float64
}

// DRAMFlow is a per-pass or per-run DRAM transfer. Ctrl is a 0-based
// controller index or -1 for interleaved. Reads multicast to Cores; writes
// originate from Cores[0].
type DRAMFlow struct {
	Layer int
	Ctrl  int
	Cores []arch.CoreID
	Bytes float64
	Write bool
}

// Analysis is the parsed form of one layer group's LMS: per-core workloads
// for the intra-core engine plus all activation and weight flows for the
// Evaluator.
type Analysis struct {
	GroupIndex int
	BatchUnit  int

	PWs     []PW
	ByLayer map[int][]int // layer -> indices into PWs (NID order)

	// Works holds the intra-core workload of each occupied core.
	Works map[arch.CoreID]intracore.Workload

	// ActFlows and ActDRAM repeat every batch-unit pass.
	ActFlows []CoreFlow
	ActDRAM  []DRAMFlow

	// WeightFlows load each layer's weight slices; the Evaluator applies
	// them once per run for GLB-resident weights or once per pass when a
	// core must stream them.
	WeightFlows []DRAMFlow

	// Depth is the pipeline depth (longest dependency chain) of the group.
	Depth int
}

// fdCtrl converts an FD value to the noc controller convention.
func fdCtrl(v int) int {
	if v == FDInterleave {
		return -1
	}
	return v - 1
}

// Analyze parses group gi of the scheme into per-core workloads and flows.
// The scheme must have passed Validate.
func Analyze(s *Scheme, gi int, cfg *arch.Config) (*Analysis, error) {
	lms := s.Groups[gi]
	g := s.Graph
	bu := lms.BatchUnit
	ofDRAM := s.OFDram()

	an := &Analysis{
		GroupIndex: gi,
		BatchUnit:  bu,
		ByLayer:    make(map[int][]int, len(lms.MSs)),
		Works:      make(map[arch.CoreID]intracore.Workload),
	}
	group := make(map[int]*MS, len(lms.MSs))
	for _, ms := range lms.MSs {
		group[ms.Layer] = ms
	}

	// Enumerate partitioned workloads per the correspondence rule.
	for _, ms := range lms.MSs {
		l := g.Layer(ms.Layer)
		p := ms.Part
		for h := 0; h < p.H; h++ {
			for w := 0; w < p.W; w++ {
				for b := 0; b < p.B; b++ {
					for k := 0; k < p.K; k++ {
						hr, wr, br, kr := p.Ranges(l, bu, h, w, b, k)
						pw := PW{
							Layer: ms.Layer,
							Core:  ms.CG[p.NID(h, w, b, k)],
							HR:    hr, WR: wr, BR: br, KR: kr,
						}
						an.ByLayer[ms.Layer] = append(an.ByLayer[ms.Layer], len(an.PWs))
						an.PWs = append(an.PWs, pw)
					}
				}
			}
		}
	}

	inBytes := make(map[arch.CoreID]int64)

	// Infer activation flows for every consumer edge.
	for _, ms := range lms.MSs {
		l := g.Layer(ms.Layer)
		for _, edge := range l.Inputs {
			if err := an.analyzeEdge(s, cfg, group, l, ms, edge, ofDRAM, inBytes); err != nil {
				return nil, err
			}
		}
		// Explicit ofmap writes to DRAM.
		if ms.FD.OF != FDImplicit {
			for _, pi := range an.ByLayer[ms.Layer] {
				pw := &an.PWs[pi]
				an.ActDRAM = append(an.ActDRAM, DRAMFlow{
					Layer: ms.Layer,
					Ctrl:  fdCtrl(ms.FD.OF),
					Cores: []arch.CoreID{pw.Core},
					Bytes: float64(pw.Vol()) * dnn.ElemBytes,
					Write: true,
				})
			}
		}
	}

	// Weight loads, grouped by K-range so replicated slices multicast.
	for _, ms := range lms.MSs {
		l := g.Layer(ms.Layer)
		if !l.HasWeights {
			continue
		}
		perK := l.WeightVol() / int64(l.OK)
		byKR := make(map[dnn.Range][]arch.CoreID)
		for _, pi := range an.ByLayer[ms.Layer] {
			pw := &an.PWs[pi]
			byKR[pw.KR] = appendUnique(byKR[pw.KR], pw.Core)
		}
		for kr, cores := range byKR {
			an.WeightFlows = append(an.WeightFlows, DRAMFlow{
				Layer: ms.Layer,
				Ctrl:  fdCtrl(ms.FD.WGT),
				Cores: cores,
				Bytes: float64(perK*int64(kr.Len())) * dnn.ElemBytes,
			})
		}
	}

	// Build intra-core workloads.
	for _, ms := range lms.MSs {
		l := g.Layer(ms.Layer)
		perK := int64(0)
		if l.HasWeights {
			perK = l.WeightVol() / int64(l.OK)
		}
		for _, pi := range an.ByLayer[ms.Layer] {
			pw := &an.PWs[pi]
			vol := pw.Vol()
			work := intracore.Workload{
				Kind:     l.Kind,
				H:        pw.HR.Len(),
				W:        pw.WR.Len(),
				B:        pw.BR.Len(),
				K:        pw.KR.Len(),
				IC:       reducedChannels(l),
				R:        maxInt(l.R, 1),
				S:        maxInt(l.S, 1),
				Groups:   1, // IC already reduced per output channel
				MACs:     partMACs(l, vol),
				VecOps:   partVecOps(l, vol),
				InBytes:  inBytes[pw.Core],
				WBytes:   perK * int64(pw.KR.Len()) * dnn.ElemBytes,
				OutBytes: vol * dnn.ElemBytes,
			}
			if prev, dup := an.Works[pw.Core]; dup {
				return nil, fmt.Errorf("core: core %d assigned twice (%v and layer %d)", pw.Core, prev.Kind, pw.Layer)
			}
			an.Works[pw.Core] = work
		}
	}

	an.Depth = groupDepth(g, group)
	an.sortFlows()
	return an, nil
}

// sortFlows orders all flow slices deterministically. Flow emission walks
// maps, so without this the float summation order (and therefore SA
// accept/reject decisions) would vary between runs with the same seed.
func (an *Analysis) sortFlows() {
	coreLess := func(a, b []arch.CoreID) bool {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return len(a) < len(b)
	}
	sort.Slice(an.ActFlows, func(i, j int) bool {
		x, y := an.ActFlows[i], an.ActFlows[j]
		if x.Src != y.Src {
			return x.Src < y.Src
		}
		if x.Bytes != y.Bytes {
			return x.Bytes < y.Bytes
		}
		return coreLess(x.Dsts, y.Dsts)
	})
	dramLess := func(s []DRAMFlow) func(i, j int) bool {
		return func(i, j int) bool {
			x, y := s[i], s[j]
			if x.Layer != y.Layer {
				return x.Layer < y.Layer
			}
			if x.Ctrl != y.Ctrl {
				return x.Ctrl < y.Ctrl
			}
			if x.Write != y.Write {
				return !x.Write
			}
			if x.Bytes != y.Bytes {
				return x.Bytes < y.Bytes
			}
			return coreLess(x.Cores, y.Cores)
		}
	}
	sort.Slice(an.ActDRAM, dramLess(an.ActDRAM))
	sort.Slice(an.WeightFlows, dramLess(an.WeightFlows))
}

// analyzeEdge infers the flows feeding layer l through one input edge.
func (an *Analysis) analyzeEdge(s *Scheme, cfg *arch.Config, group map[int]*MS, l *dnn.Layer, ms *MS, edge dnn.Input, ofDRAM map[int]int, inBytes map[arch.CoreID]int64) error {
	g := s.Graph

	var srcOH, srcOW, srcOK int
	var prodMS *MS
	switch {
	case edge.Src == dnn.ExternalInput:
		srcOH, srcOW, srcOK = l.IH(), l.IW(), l.IC
	default:
		pl := g.Layer(edge.Src)
		srcOH, srcOW, srcOK = pl.OH, pl.OW, pl.OK
		prodMS = group[edge.Src]
	}

	// Consumer needs, grouped by identical region for multicast dedup.
	type need struct {
		region dnn.EdgeRegion
		cores  []arch.CoreID
	}
	needs := make(map[dnn.EdgeRegion]*need)
	for _, pi := range an.ByLayer[ms.Layer] {
		pw := &an.PWs[pi]
		reg := l.NeededRegion(edge, pw.HR, pw.WR, pw.BR, pw.KR, srcOH, srcOW, srcOK)
		v := reg.Vol()
		if v == 0 {
			continue
		}
		inBytes[pw.Core] += v * dnn.ElemBytes
		n, ok := needs[reg]
		if !ok {
			n = &need{region: reg}
			needs[reg] = n
		}
		n.cores = appendUnique(n.cores, pw.Core)
	}

	if prodMS == nil {
		// Data comes from DRAM: the DNN input's explicit IF, or the DRAM
		// where the cross-group producer stored its ofmaps.
		ctrl := 0
		if edge.Src == dnn.ExternalInput {
			ctrl = fdCtrl(ms.FD.IF)
		} else if of, ok := ofDRAM[edge.Src]; ok {
			ctrl = fdCtrl(of)
		} else {
			// Producer group not present (e.g. the graph-partition engine
			// scoring an isolated segment): assume interleaved storage.
			ctrl = -1
		}
		for _, n := range needs {
			an.ActDRAM = append(an.ActDRAM, DRAMFlow{
				Layer: ms.Layer,
				Ctrl:  ctrl,
				Cores: n.cores,
				Bytes: float64(n.region.Vol()) * dnn.ElemBytes,
			})
		}
		return nil
	}

	// In-group producer: intersect each consumer need with every producer
	// workload's owned region; identical payloads from one producer core to
	// several consumers become one multicast flow.
	pl := g.Layer(edge.Src)
	for _, n := range needs {
		for _, qi := range an.ByLayer[edge.Src] {
			q := &an.PWs[qi]
			ovl := dnn.EdgeRegion{
				H: n.region.H.Intersect(q.HR),
				W: n.region.W.Intersect(q.WR),
				B: n.region.B.Intersect(q.BR),
				K: n.region.K.Intersect(q.KR),
			}
			v := ovl.Vol()
			if v == 0 {
				continue
			}
			dsts := make([]arch.CoreID, 0, len(n.cores))
			for _, c := range n.cores {
				if c != q.Core {
					dsts = append(dsts, c)
				}
			}
			if len(dsts) == 0 {
				continue // produced and consumed on the same core
			}
			an.ActFlows = append(an.ActFlows, CoreFlow{
				Src:   q.Core,
				Dsts:  dsts,
				Bytes: float64(v) * dnn.ElemBytes,
			})
		}
	}
	_ = pl
	return nil
}

// reducedChannels returns the input channels reduced per output element.
func reducedChannels(l *dnn.Layer) int {
	switch l.Kind {
	case dnn.Conv:
		gr := l.Groups
		if gr <= 0 {
			gr = 1
		}
		return maxInt(l.IC/gr, 1)
	case dnn.FC, dnn.MatMul:
		return l.IC
	default:
		return 1
	}
}

// partMACs returns the exact MAC count of an output sub-volume.
func partMACs(l *dnn.Layer, vol int64) int64 {
	switch l.Kind {
	case dnn.Conv:
		return vol * int64(reducedChannels(l)) * int64(l.R) * int64(l.S)
	case dnn.FC, dnn.MatMul:
		return vol * int64(l.IC)
	}
	return 0
}

// partVecOps returns the vector-unit operations of an output sub-volume.
func partVecOps(l *dnn.Layer, vol int64) int64 {
	switch l.Kind {
	case dnn.Pool:
		return vol * int64(l.R) * int64(l.S)
	case dnn.Eltwise:
		return vol * int64(maxInt(len(l.Inputs), 2))
	case dnn.Softmax:
		return vol * 3
	}
	return vol * int64(l.FusedOps)
}

// groupDepth returns the longest dependency chain within the group.
func groupDepth(g *dnn.Graph, group map[int]*MS) int {
	depth := make(map[int]int, len(group))
	best := 0
	for _, l := range g.Layers { // topological order
		if _, ok := group[l.ID]; !ok {
			continue
		}
		d := 1
		for _, in := range l.Inputs {
			if in.Src >= 0 {
				if pd, ok := depth[in.Src]; ok && pd+1 > d {
					d = pd + 1
				}
			}
		}
		depth[l.ID] = d
		if d > best {
			best = d
		}
	}
	return best
}

func appendUnique(s []arch.CoreID, c arch.CoreID) []arch.CoreID {
	for _, v := range s {
		if v == c {
			return s
		}
	}
	return append(s, c)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
