package core

import (
	"fmt"
	"slices"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/intracore"
)

// PW is a partitioned workload: the slice of a layer's output cube assigned
// to one core by the correspondence rule (paper Sec. IV-A).
type PW struct {
	Layer          int
	Core           arch.CoreID
	HR, WR, BR, KR dnn.Range
}

// Vol returns the output elements this workload produces per pass.
func (p *PW) Vol() int64 {
	return int64(p.HR.Len()) * int64(p.WR.Len()) * int64(p.BR.Len()) * int64(p.KR.Len())
}

// CoreFlow is a per-pass data movement from one core's GLB to one or more
// consumer cores (identical payloads are multicast, paper Sec. IV-C).
type CoreFlow struct {
	Src   arch.CoreID
	Dsts  []arch.CoreID
	Bytes float64
}

// DRAMFlow is a per-pass or per-run DRAM transfer. Ctrl is a 0-based
// controller index or -1 for interleaved. Reads multicast to Cores; writes
// originate from Cores[0].
type DRAMFlow struct {
	Layer int
	Ctrl  int
	Cores []arch.CoreID
	Bytes float64
	Write bool
}

// Analysis is the parsed form of one layer group's LMS: per-core workloads
// for the intra-core engine plus all activation and weight flows for the
// Evaluator. An Analysis can be reused across AnalyzeInto calls: its public
// slices and maps are overwritten in place and its private scratch buffers
// are recycled, so the SA hot loop parses groups without allocating.
type Analysis struct {
	GroupIndex int
	BatchUnit  int

	PWs     []PW
	ByLayer map[int][]int // layer -> indices into PWs (NID order)

	// Works holds the intra-core workload of each occupied core.
	Works map[arch.CoreID]intracore.Workload

	// ActFlows and ActDRAM repeat every batch-unit pass.
	ActFlows []CoreFlow
	ActDRAM  []DRAMFlow

	// WeightFlows load each layer's weight slices; the Evaluator applies
	// them once per run for GLB-resident weights or once per pass when a
	// core must stream them.
	WeightFlows []DRAMFlow

	// Depth is the pipeline depth (longest dependency chain) of the group.
	Depth int

	// Reusable scratch. coreArena backs the Cores/Dsts slices of the
	// emitted flows; pwIdx backs the ByLayer values (each layer's workloads
	// occupy a contiguous index range).
	pwIdx     []int
	coreArena []arch.CoreID
	group     map[int]*MS
	ofDRAM    map[int]int
	depthBuf  map[int]int
	inBytes   []int64 // indexed by CoreID
	needs     []needEntry
	klists    []krEntry
}

// needEntry groups the consumer cores that fetch one identical input region
// (the unit of multicast dedup). The small per-edge set is kept as a slice
// with linear lookup: it is bounded by the group's core count and a slice
// both avoids map allocation churn and keeps emission order deterministic.
type needEntry struct {
	region dnn.EdgeRegion
	cores  []arch.CoreID
}

// krEntry groups the cores sharing one weight K-range slice.
type krEntry struct {
	kr    dnn.Range
	cores []arch.CoreID
}

// internCores copies a core list into the analysis arena, returning a
// capacity-clipped view that later arena appends cannot alias.
func (an *Analysis) internCores(cs ...arch.CoreID) []arch.CoreID {
	start := len(an.coreArena)
	an.coreArena = append(an.coreArena, cs...)
	return an.coreArena[start:len(an.coreArena):len(an.coreArena)]
}

// fdCtrl converts an FD value to the noc controller convention.
func fdCtrl(v int) int {
	if v == FDInterleave {
		return -1
	}
	return v - 1
}

// Analyze parses group gi of the scheme into a fresh Analysis.
// The scheme must have passed Validate.
func Analyze(s *Scheme, gi int, cfg *arch.Config) (*Analysis, error) {
	an := new(Analysis)
	if err := AnalyzeInto(an, s, gi, cfg); err != nil {
		return nil, err
	}
	return an, nil
}

// reset prepares a (possibly reused) Analysis for a new parse, recycling
// every buffer it has grown so far.
func (an *Analysis) reset(lms *LMS, gi, cores int) {
	an.GroupIndex = gi
	an.BatchUnit = lms.BatchUnit
	an.PWs = an.PWs[:0]
	an.ActFlows = an.ActFlows[:0]
	an.ActDRAM = an.ActDRAM[:0]
	an.WeightFlows = an.WeightFlows[:0]
	an.coreArena = an.coreArena[:0]
	an.Depth = 0
	if an.ByLayer == nil {
		an.ByLayer = make(map[int][]int, len(lms.MSs))
		an.Works = make(map[arch.CoreID]intracore.Workload)
		an.group = make(map[int]*MS, len(lms.MSs))
		an.ofDRAM = make(map[int]int)
		an.depthBuf = make(map[int]int, len(lms.MSs))
	} else {
		clear(an.ByLayer)
		clear(an.Works)
		clear(an.group)
		clear(an.ofDRAM)
		clear(an.depthBuf)
	}
	if cap(an.inBytes) < cores {
		an.inBytes = make([]int64, cores)
	}
	an.inBytes = an.inBytes[:cores]
	for i := range an.inBytes {
		an.inBytes[i] = 0
	}
}

// AnalyzeInto parses group gi of the scheme into an, reusing an's buffers.
// It is the allocation-free core of the Evaluator's hot loop: after warm-up
// a parse touches no heap. The scheme must have passed Validate.
//
//gemini:noalloc
func AnalyzeInto(an *Analysis, s *Scheme, gi int, cfg *arch.Config) error {
	lms := s.Groups[gi]
	g := s.Graph
	bu := lms.BatchUnit
	an.reset(lms, gi, cfg.Cores())
	for _, grp := range s.Groups {
		for _, ms := range grp.MSs {
			if ms.FD.OF != FDImplicit {
				an.ofDRAM[ms.Layer] = ms.FD.OF
			}
		}
	}
	for _, ms := range lms.MSs {
		an.group[ms.Layer] = ms
	}

	// Enumerate partitioned workloads per the correspondence rule. Each
	// layer's workloads occupy a contiguous range of PW indices, so the
	// ByLayer values are views into the shared pwIdx buffer.
	for _, ms := range lms.MSs {
		l := g.Layer(ms.Layer)
		p := ms.Part
		start := len(an.PWs)
		for h := 0; h < p.H; h++ {
			for w := 0; w < p.W; w++ {
				for b := 0; b < p.B; b++ {
					for k := 0; k < p.K; k++ {
						hr, wr, br, kr := p.Ranges(l, bu, h, w, b, k)
						an.PWs = append(an.PWs, PW{
							Layer: ms.Layer,
							Core:  ms.CG[p.NID(h, w, b, k)],
							HR:    hr, WR: wr, BR: br, KR: kr,
						})
					}
				}
			}
		}
		an.ByLayer[ms.Layer] = an.pwIdxRange(start, len(an.PWs))
	}

	// Infer activation flows for every consumer edge.
	for _, ms := range lms.MSs {
		l := g.Layer(ms.Layer)
		for _, edge := range l.Inputs {
			if err := an.analyzeEdge(s, l, ms, edge); err != nil {
				return err
			}
		}
		// Explicit ofmap writes to DRAM.
		if ms.FD.OF != FDImplicit {
			for _, pi := range an.ByLayer[ms.Layer] {
				pw := &an.PWs[pi]
				an.ActDRAM = append(an.ActDRAM, DRAMFlow{
					Layer: ms.Layer,
					Ctrl:  fdCtrl(ms.FD.OF),
					Cores: an.internCores(pw.Core),
					Bytes: float64(pw.Vol()) * dnn.ElemBytes,
					Write: true,
				})
			}
		}
	}

	// Weight loads, grouped by K-range so replicated slices multicast.
	for _, ms := range lms.MSs {
		l := g.Layer(ms.Layer)
		if !l.HasWeights {
			continue
		}
		perK := l.WeightVol() / int64(l.OK)
		an.klists = an.klists[:0]
		for _, pi := range an.ByLayer[ms.Layer] {
			pw := &an.PWs[pi]
			ki := -1
			for i := range an.klists {
				if an.klists[i].kr == pw.KR {
					ki = i
					break
				}
			}
			if ki < 0 {
				an.klists = growKR(an.klists, pw.KR)
				ki = len(an.klists) - 1
			}
			an.klists[ki].cores = appendUnique(an.klists[ki].cores, pw.Core)
		}
		for i := range an.klists {
			kl := &an.klists[i]
			an.WeightFlows = append(an.WeightFlows, DRAMFlow{
				Layer: ms.Layer,
				Ctrl:  fdCtrl(ms.FD.WGT),
				Cores: an.internCores(kl.cores...),
				Bytes: float64(perK*int64(kl.kr.Len())) * dnn.ElemBytes,
			})
		}
	}

	// Build intra-core workloads.
	for _, ms := range lms.MSs {
		l := g.Layer(ms.Layer)
		perK := int64(0)
		if l.HasWeights {
			perK = l.WeightVol() / int64(l.OK)
		}
		for _, pi := range an.ByLayer[ms.Layer] {
			pw := &an.PWs[pi]
			vol := pw.Vol()
			work := intracore.Workload{
				Kind:     l.Kind,
				H:        pw.HR.Len(),
				W:        pw.WR.Len(),
				B:        pw.BR.Len(),
				K:        pw.KR.Len(),
				IC:       reducedChannels(l),
				R:        maxInt(l.R, 1),
				S:        maxInt(l.S, 1),
				Groups:   1, // IC already reduced per output channel
				MACs:     partMACs(l, vol),
				VecOps:   partVecOps(l, vol),
				InBytes:  an.inBytes[pw.Core],
				WBytes:   perK * int64(pw.KR.Len()) * dnn.ElemBytes,
				OutBytes: vol * dnn.ElemBytes,
			}
			if prev, dup := an.Works[pw.Core]; dup {
				//gemini:alloc-ok cold path: duplicate assignment means the scheme is invalid and the parse aborts
				return fmt.Errorf("core: core %d assigned twice (%v and layer %d)", pw.Core, prev.Kind, pw.Layer)
			}
			an.Works[pw.Core] = work
		}
	}

	an.Depth = groupDepth(g, an.group, an.depthBuf)
	an.sortFlows()
	return nil
}

// pwIdxRange returns the identity index slice [lo,hi) backed by the shared
// grow-only pwIdx buffer.
func (an *Analysis) pwIdxRange(lo, hi int) []int {
	for len(an.pwIdx) < hi {
		an.pwIdx = append(an.pwIdx, len(an.pwIdx))
	}
	return an.pwIdx[lo:hi:hi]
}

// growKR extends the klists buffer by one entry for kr, recycling the cores
// backing of a previously used slot when available.
func growKR(buf []krEntry, kr dnn.Range) []krEntry {
	if len(buf) < cap(buf) {
		buf = buf[:len(buf)+1]
	} else {
		buf = append(buf, krEntry{})
	}
	e := &buf[len(buf)-1]
	e.kr = kr
	e.cores = e.cores[:0]
	return buf
}

// growNeed extends the needs buffer by one entry for region, recycling the
// cores backing of a previously used slot when available.
func growNeed(buf []needEntry, region dnn.EdgeRegion) []needEntry {
	if len(buf) < cap(buf) {
		buf = buf[:len(buf)+1]
	} else {
		buf = append(buf, needEntry{})
	}
	e := &buf[len(buf)-1]
	e.region = region
	e.cores = e.cores[:0]
	return buf
}

// sortFlows orders all flow slices deterministically. Flow emission order
// follows scratch-buffer insertion order, so without this the float
// summation order (and therefore SA accept/reject decisions) could vary
// between structurally identical schemes built along different paths.
func (an *Analysis) sortFlows() {
	coreCmp := func(a, b []arch.CoreID) int {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				if a[i] < b[i] {
					return -1
				}
				return 1
			}
		}
		return len(a) - len(b)
	}
	slices.SortFunc(an.ActFlows, func(x, y CoreFlow) int {
		if x.Src != y.Src {
			if x.Src < y.Src {
				return -1
			}
			return 1
		}
		if x.Bytes != y.Bytes {
			if x.Bytes < y.Bytes {
				return -1
			}
			return 1
		}
		return coreCmp(x.Dsts, y.Dsts)
	})
	dramCmp := func(x, y DRAMFlow) int {
		if x.Layer != y.Layer {
			return x.Layer - y.Layer
		}
		if x.Ctrl != y.Ctrl {
			return x.Ctrl - y.Ctrl
		}
		if x.Write != y.Write {
			if y.Write {
				return -1
			}
			return 1
		}
		if x.Bytes != y.Bytes {
			if x.Bytes < y.Bytes {
				return -1
			}
			return 1
		}
		return coreCmp(x.Cores, y.Cores)
	}
	slices.SortFunc(an.ActDRAM, dramCmp)
	slices.SortFunc(an.WeightFlows, dramCmp)
}

// analyzeEdge infers the flows feeding layer l through one input edge.
func (an *Analysis) analyzeEdge(s *Scheme, l *dnn.Layer, ms *MS, edge dnn.Input) error {
	g := s.Graph

	var srcOH, srcOW, srcOK int
	var prodMS *MS
	switch {
	case edge.Src == dnn.ExternalInput:
		srcOH, srcOW, srcOK = l.IH(), l.IW(), l.IC
	default:
		pl := g.Layer(edge.Src)
		srcOH, srcOW, srcOK = pl.OH, pl.OW, pl.OK
		prodMS = an.group[edge.Src]
	}

	// Consumer needs, grouped by identical region for multicast dedup.
	an.needs = an.needs[:0]
	for _, pi := range an.ByLayer[ms.Layer] {
		pw := &an.PWs[pi]
		reg := l.NeededRegion(edge, pw.HR, pw.WR, pw.BR, pw.KR, srcOH, srcOW, srcOK)
		v := reg.Vol()
		if v == 0 {
			continue
		}
		an.inBytes[pw.Core] += v * dnn.ElemBytes
		ni := -1
		for i := range an.needs {
			if an.needs[i].region == reg {
				ni = i
				break
			}
		}
		if ni < 0 {
			an.needs = growNeed(an.needs, reg)
			ni = len(an.needs) - 1
		}
		an.needs[ni].cores = appendUnique(an.needs[ni].cores, pw.Core)
	}

	if prodMS == nil {
		// Data comes from DRAM: the DNN input's explicit IF, or the DRAM
		// where the cross-group producer stored its ofmaps.
		ctrl := 0
		if edge.Src == dnn.ExternalInput {
			ctrl = fdCtrl(ms.FD.IF)
		} else if of, ok := an.ofDRAM[edge.Src]; ok {
			ctrl = fdCtrl(of)
		} else {
			// Producer group not present (e.g. the graph-partition engine
			// scoring an isolated segment): assume interleaved storage.
			ctrl = -1
		}
		for i := range an.needs {
			n := &an.needs[i]
			an.ActDRAM = append(an.ActDRAM, DRAMFlow{
				Layer: ms.Layer,
				Ctrl:  ctrl,
				Cores: an.internCores(n.cores...),
				Bytes: float64(n.region.Vol()) * dnn.ElemBytes,
			})
		}
		return nil
	}

	// In-group producer: intersect each consumer need with every producer
	// workload's owned region; identical payloads from one producer core to
	// several consumers become one multicast flow.
	for i := range an.needs {
		n := &an.needs[i]
		for _, qi := range an.ByLayer[edge.Src] {
			q := &an.PWs[qi]
			ovl := dnn.EdgeRegion{
				H: n.region.H.Intersect(q.HR),
				W: n.region.W.Intersect(q.WR),
				B: n.region.B.Intersect(q.BR),
				K: n.region.K.Intersect(q.KR),
			}
			v := ovl.Vol()
			if v == 0 {
				continue
			}
			start := len(an.coreArena)
			for _, c := range n.cores {
				if c != q.Core {
					an.coreArena = append(an.coreArena, c)
				}
			}
			if len(an.coreArena) == start {
				continue // produced and consumed on the same core
			}
			an.ActFlows = append(an.ActFlows, CoreFlow{
				Src:   q.Core,
				Dsts:  an.coreArena[start:len(an.coreArena):len(an.coreArena)],
				Bytes: float64(v) * dnn.ElemBytes,
			})
		}
	}
	return nil
}

// reducedChannels returns the input channels reduced per output element.
func reducedChannels(l *dnn.Layer) int {
	switch l.Kind {
	case dnn.Conv:
		gr := l.Groups
		if gr <= 0 {
			gr = 1
		}
		return maxInt(l.IC/gr, 1)
	case dnn.FC, dnn.MatMul:
		return l.IC
	default:
		return 1
	}
}

// partMACs returns the exact MAC count of an output sub-volume.
func partMACs(l *dnn.Layer, vol int64) int64 {
	switch l.Kind {
	case dnn.Conv:
		return vol * int64(reducedChannels(l)) * int64(l.R) * int64(l.S)
	case dnn.FC, dnn.MatMul:
		return vol * int64(l.IC)
	}
	return 0
}

// partVecOps returns the vector-unit operations of an output sub-volume.
func partVecOps(l *dnn.Layer, vol int64) int64 {
	switch l.Kind {
	case dnn.Pool:
		return vol * int64(l.R) * int64(l.S)
	case dnn.Eltwise:
		return vol * int64(maxInt(len(l.Inputs), 2))
	case dnn.Softmax:
		return vol * 3
	}
	return vol * int64(l.FusedOps)
}

// groupDepth returns the longest dependency chain within the group. depth
// is a caller-provided (cleared) scratch map.
func groupDepth(g *dnn.Graph, group map[int]*MS, depth map[int]int) int {
	best := 0
	for _, l := range g.Layers { // topological order
		if _, ok := group[l.ID]; !ok {
			continue
		}
		d := 1
		for _, in := range l.Inputs {
			if in.Src >= 0 {
				if pd, ok := depth[in.Src]; ok && pd+1 > d {
					d = pd + 1
				}
			}
		}
		depth[l.ID] = d
		if d > best {
			best = d
		}
	}
	return best
}

func appendUnique(s []arch.CoreID, c arch.CoreID) []arch.CoreID {
	for _, v := range s {
		if v == c {
			return s
		}
	}
	return append(s, c)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
