package core

import (
	"math/rand"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

func analyzeTiny(t *testing.T, bu int) (*Scheme, *Analysis) {
	t.Helper()
	cfg := testCfg()
	s := tinyScheme(t, cfg, bu)
	if err := s.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(s, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, an
}

func TestAnalyzePWCounts(t *testing.T) {
	s, an := analyzeTiny(t, 2)
	for _, ms := range s.Groups[0].MSs {
		if got := len(an.ByLayer[ms.Layer]); got != ms.Part.N() {
			t.Errorf("layer %d: %d PWs, want %d", ms.Layer, got, ms.Part.N())
		}
	}
}

func TestAnalyzeOutputCoverage(t *testing.T) {
	s, an := analyzeTiny(t, 2)
	bu := s.Groups[0].BatchUnit
	for _, ms := range s.Groups[0].MSs {
		l := s.Graph.Layer(ms.Layer)
		var vol int64
		for _, pi := range an.ByLayer[ms.Layer] {
			vol += an.PWs[pi].Vol()
		}
		want := l.OfmapVol() * int64(bu)
		if vol != want {
			t.Errorf("layer %s: PW volumes sum to %d, want %d", l.Name, vol, want)
		}
	}
}

func TestAnalyzeOneWorkloadPerCore(t *testing.T) {
	_, an := analyzeTiny(t, 2)
	seen := map[arch.CoreID]bool{}
	for _, pw := range an.PWs {
		if seen[pw.Core] {
			t.Fatalf("core %d hosts two workloads", pw.Core)
		}
		seen[pw.Core] = true
	}
	if len(an.Works) != len(an.PWs) {
		t.Errorf("works = %d, PWs = %d", len(an.Works), len(an.PWs))
	}
}

func TestAnalyzeMACConservation(t *testing.T) {
	s, an := analyzeTiny(t, 2)
	bu := int64(s.Groups[0].BatchUnit)
	var got int64
	for _, w := range an.Works {
		got += w.MACs
	}
	var want int64
	for _, l := range s.Graph.Layers {
		want += l.MACs() * bu
	}
	if got != want {
		t.Errorf("MACs = %d, want %d", got, want)
	}
}

// Flow conservation: the bytes flowing into all consumers of an in-group
// edge (NoC flows plus same-core retention) must equal the consumers' total
// input need for that edge.
func TestAnalyzeFlowConservationEltwise(t *testing.T) {
	cfg := testCfg()
	// Two-layer chain: conv -> eltwise-style softmax is simplest; use
	// TinyCNN's add layer (id 2) fed by convs 0 and 1.
	s := tinyScheme(t, cfg, 2)
	an, err := Analyze(s, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	add := s.Graph.Layer(2)
	if add.Kind != dnn.Eltwise {
		t.Fatal("layer 2 should be the residual add")
	}
	// Total need: every consumer part needs its own region from each edge.
	var need int64
	for _, pi := range an.ByLayer[2] {
		pw := &an.PWs[pi]
		for _, e := range add.Inputs {
			src := s.Graph.Layer(e.Src)
			reg := add.NeededRegion(e, pw.HR, pw.WR, pw.BR, pw.KR, src.OH, src.OW, src.OK)
			need += reg.Vol()
		}
	}
	// Delivered: NoC flows into add's cores + same-core retention.
	addCores := map[arch.CoreID]bool{}
	for _, pi := range an.ByLayer[2] {
		addCores[an.PWs[pi].Core] = true
	}
	var delivered float64
	for _, f := range an.ActFlows {
		for _, d := range f.Dsts {
			if addCores[d] {
				delivered += f.Bytes
			}
		}
	}
	// Same-core retention: producer part overlapping consumer part on the
	// same core. Compute directly.
	var retained int64
	for _, pi := range an.ByLayer[2] {
		pw := &an.PWs[pi]
		for _, e := range add.Inputs {
			src := s.Graph.Layer(e.Src)
			reg := add.NeededRegion(e, pw.HR, pw.WR, pw.BR, pw.KR, src.OH, src.OW, src.OK)
			for _, qi := range an.ByLayer[e.Src] {
				q := &an.PWs[qi]
				if q.Core != pw.Core {
					continue
				}
				ovl := dnn.EdgeRegion{
					H: reg.H.Intersect(q.HR), W: reg.W.Intersect(q.WR),
					B: reg.B.Intersect(q.BR), K: reg.K.Intersect(q.KR),
				}
				retained += ovl.Vol()
			}
		}
	}
	if int64(delivered)+retained != need {
		t.Errorf("delivered %v + retained %d != need %d", delivered, retained, need)
	}
}

func TestAnalyzeExternalInputFromDRAM(t *testing.T) {
	s, an := analyzeTiny(t, 2)
	first := s.Groups[0].MSs[0]
	var ext float64
	for _, f := range an.ActDRAM {
		if f.Layer == first.Layer && !f.Write {
			ext += f.Bytes
		}
	}
	l := s.Graph.Layer(first.Layer)
	// Each consumer core needs its halo region; total is at least the raw
	// input volume (halos overlap).
	minBytes := float64(int64(l.IH())*int64(l.IW())*int64(l.IC)) * float64(s.Groups[0].BatchUnit)
	if ext < minBytes {
		t.Errorf("external input reads %v < input volume %v", ext, minBytes)
	}
}

func TestAnalyzeOutputWrites(t *testing.T) {
	s, an := analyzeTiny(t, 2)
	lastID := len(s.Graph.Layers) - 1
	var wr float64
	for _, f := range an.ActDRAM {
		if f.Write && f.Layer == lastID {
			wr += f.Bytes
		}
	}
	want := float64(s.Graph.Layer(lastID).OfmapVol()) * float64(s.Groups[0].BatchUnit)
	if wr != want {
		t.Errorf("output writes %v, want %v", wr, want)
	}
}

func TestAnalyzeWeightFlows(t *testing.T) {
	s, an := analyzeTiny(t, 2)
	perLayer := map[int]float64{}
	for _, f := range an.WeightFlows {
		if f.Write {
			t.Fatal("weight flow marked as write")
		}
		perLayer[f.Layer] += f.Bytes * float64(len(f.Cores)) // replicated slices multicast
	}
	for _, ms := range s.Groups[0].MSs {
		l := s.Graph.Layer(ms.Layer)
		if !l.HasWeights {
			if perLayer[ms.Layer] != 0 {
				t.Errorf("weight-less layer %d has weight flows", ms.Layer)
			}
			continue
		}
		// Bytes x cores >= full weight volume (every K slice loaded
		// somewhere, replicas via multicast).
		if perLayer[ms.Layer] < float64(l.WeightVol()) {
			t.Errorf("layer %d weight flows %v < weight volume %d", ms.Layer, perLayer[ms.Layer], l.WeightVol())
		}
	}
}

func TestAnalyzeCrossGroupReadsFromProducersDRAM(t *testing.T) {
	cfg := testCfg()
	g := dnn.TinyCNN()
	// Two groups: {0,1,2,3} and {4,5,6}.
	s, err := StripeScheme(g, cfg, [][]int{{0, 1, 2, 3}, {4, 5, 6}}, []int{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	// Pin layer 3's ofmap DRAM to controller 2 and verify group 1 reads
	// layer 4's input from there.
	s.Groups[0].MSs[3].FD.OF = 2
	an, err := Analyze(s, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range an.ActDRAM {
		if f.Layer == 4 && !f.Write {
			found = true
			if f.Ctrl != 1 { // DRAM id 2 -> controller index 1
				t.Errorf("cross-group read ctrl = %d, want 1", f.Ctrl)
			}
		}
	}
	if !found {
		t.Fatal("no cross-group DRAM read for layer 4")
	}
}

func TestAnalyzeInterleavedUsesMinusOne(t *testing.T) {
	_, an := analyzeTiny(t, 2)
	// Stripe FDs are interleaved (0) -> ctrl -1 everywhere.
	for _, f := range an.ActDRAM {
		if f.Ctrl != -1 {
			t.Errorf("flow for layer %d ctrl = %d, want interleaved", f.Layer, f.Ctrl)
		}
	}
}

func TestAnalyzeDepth(t *testing.T) {
	_, an := analyzeTiny(t, 2)
	if an.Depth != 7 {
		t.Errorf("depth = %d, want 7", an.Depth)
	}
	cfg := testCfg()
	g := dnn.TinyCNN()
	s, err := StripeScheme(g, cfg, [][]int{{0, 1, 2, 3}, {4, 5, 6}}, []int{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	an2, err := Analyze(s, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if an2.Depth != 3 {
		t.Errorf("subgroup depth = %d, want 3", an2.Depth)
	}
}

// Property: analysis stays consistent under random operator sequences.
func TestAnalyzeAfterRandomOps(t *testing.T) {
	cfg := testCfg()
	rng := rand.New(rand.NewSource(99))
	s := tinyScheme(t, cfg, 2)
	mu := &Mutator{Graph: s.Graph, Drams: cfg.DRAMControllers(), Rng: rng}
	var wantMACs int64
	for _, l := range s.Graph.Layers {
		wantMACs += l.MACs() * int64(s.Groups[0].BatchUnit)
	}
	for i := 0; i < 100; i++ {
		for j := 0; j < 10; j++ {
			mu.Apply(s.Groups[0])
		}
		if err := s.Validate(cfg); err != nil {
			t.Fatal(err)
		}
		an, err := Analyze(s, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		for _, w := range an.Works {
			got += w.MACs
		}
		if got != wantMACs {
			t.Fatalf("iteration %d: MACs %d, want %d", i, got, wantMACs)
		}
		var outVol int64
		lastID := len(s.Graph.Layers) - 1
		for _, pi := range an.ByLayer[lastID] {
			outVol += an.PWs[pi].Vol()
		}
		if outVol != s.Graph.Layer(lastID).OfmapVol()*int64(s.Groups[0].BatchUnit) {
			t.Fatalf("iteration %d: output volume drifted", i)
		}
	}
}

func TestAnalyzeMatMulGroup(t *testing.T) {
	cfg := testCfg()
	g := dnn.TinyTransformer()
	s, err := StripeScheme(g, cfg, [][]int{allLayers(g)}, []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(s, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var macs int64
	for _, w := range an.Works {
		macs += w.MACs
	}
	if macs != g.TotalMACs() {
		t.Errorf("transformer MACs %d, want %d", macs, g.TotalMACs())
	}
}
