// Package core implements the paper's primary contribution (Sec. IV): the
// layer-centric encoding of Layer-Pipeline spatial mapping schemes, the
// parsing method that turns an encoded scheme into per-core partitioned
// workloads and data flows, the heuristic stripe baseline (Tangram's T-Map),
// and the five simulated-annealing operators that navigate the encoding's
// optimization space.
//
//gemini:deterministic
package core

import (
	"fmt"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

// Part is the four-dimensional partition attribute of a layer's mapping
// scheme: how many approximately equal pieces the output cube is split into
// along ofmap Height, Width, Batch and Channel (paper Fig. 3).
type Part struct {
	H, W, B, K int
}

// N returns the number of partitioned workloads (must equal len(CG)).
func (p Part) N() int { return p.H * p.W * p.B * p.K }

// Valid reports whether the partition is positive and within the layer's
// cube extents for the given batch unit.
func (p Part) Valid(l *dnn.Layer, batchUnit int) bool {
	return p.H >= 1 && p.W >= 1 && p.B >= 1 && p.K >= 1 &&
		p.H <= l.OH && p.W <= l.OW && p.B <= batchUnit && p.K <= l.OK
}

// Flow-of-data sentinel values (paper Sec. IV-A).
const (
	// FDImplicit marks data flows that need no explicit management or are
	// absent (-1 in the paper's notation).
	FDImplicit = -1
	// FDInterleave distributes the data evenly across all DRAMs (0).
	FDInterleave = 0
	// DRAM IDs are 1..D.
)

// FD is the flow-of-data attribute: the DRAM sources of a layer's ifmaps
// and weights and the destination of its ofmaps.
type FD struct {
	IF, WGT, OF int
}

// MS is the mapping scheme of one layer: Partition, ordered Core Group and
// Flow of Data (paper Sec. IV-A).
type MS struct {
	Layer int
	Part  Part
	CG    []arch.CoreID
	FD    FD
}

// Clone returns a deep copy.
func (m *MS) Clone() *MS {
	cp := *m
	cp.CG = append([]arch.CoreID(nil), m.CG...)
	return &cp
}

// LMS is the LP spatial mapping scheme of one layer group: the MS of every
// layer in the group, in the group's topological order.
type LMS struct {
	// BatchUnit is the number of samples processed per pipeline pass
	// (chosen by the graph partition engine).
	BatchUnit int
	MSs       []*MS
}

// Clone returns a deep copy.
func (s *LMS) Clone() *LMS {
	cp := &LMS{BatchUnit: s.BatchUnit, MSs: make([]*MS, len(s.MSs))}
	for i, m := range s.MSs {
		cp.MSs[i] = m.Clone()
	}
	return cp
}

// Layers returns the layer IDs of the group in order.
func (s *LMS) Layers() []int {
	ids := make([]int, len(s.MSs))
	for i, m := range s.MSs {
		ids[i] = m.Layer
	}
	return ids
}

// MSFor returns the mapping scheme of a layer, or nil.
func (s *LMS) MSFor(layer int) *MS {
	for _, m := range s.MSs {
		if m.Layer == layer {
			return m
		}
	}
	return nil
}

// Scheme is a complete LP mapping of a DNN: an ordered sequence of layer
// groups, each with its LMS, executed one after another on the accelerator.
type Scheme struct {
	Graph  *dnn.Graph
	Batch  int
	Groups []*LMS
}

// Clone returns a deep copy (the graph is shared).
func (s *Scheme) Clone() *Scheme {
	cp := &Scheme{Graph: s.Graph, Batch: s.Batch, Groups: make([]*LMS, len(s.Groups))}
	for i, g := range s.Groups {
		cp.Groups[i] = g.Clone()
	}
	return cp
}

// GroupOf returns the index of the group containing layer, or -1.
func (s *Scheme) GroupOf(layer int) int {
	for gi, g := range s.Groups {
		if g.MSFor(layer) != nil {
			return gi
		}
	}
	return -1
}

// OFDram returns, for every layer with an explicit ofmap destination, the
// DRAM it writes to; consumers in later groups fetch from there (paper:
// "the data can be fetched from the DRAM where the previous layer's ofmaps
// were stored").
func (s *Scheme) OFDram() map[int]int {
	m := make(map[int]int)
	for _, g := range s.Groups {
		for _, ms := range g.MSs {
			if ms.FD.OF != FDImplicit {
				m[ms.Layer] = ms.FD.OF
			}
		}
	}
	return m
}

// NeedsExplicitIF reports whether the layer consumes the DNN's external
// input (paper rule: ifmaps are explicitly managed only then).
func NeedsExplicitIF(l *dnn.Layer) bool {
	for _, in := range l.Inputs {
		if in.Src == dnn.ExternalInput {
			return true
		}
	}
	return false
}

// NeedsExplicitOF reports whether the layer's ofmaps must go to DRAM: some
// consumer lies outside the group, or the layer is a DNN output.
func NeedsExplicitOF(g *dnn.Graph, group map[int]bool, layer int) bool {
	consumers := 0
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			if in.Src == layer {
				consumers++
				if !group[l.ID] {
					return true
				}
			}
		}
	}
	return consumers == 0
}

// Validate checks every encoding invariant of the scheme (paper Sec. IV-A):
// partitions within cube extents, |CG| = Part.N, per-group disjoint core
// groups with valid core IDs, and flow-of-data values consistent with the
// graph structure and DRAM count.
func (s *Scheme) Validate(cfg *arch.Config) error {
	if s.Batch < 1 {
		return fmt.Errorf("core: batch %d < 1", s.Batch)
	}
	d := cfg.DRAMControllers()
	seen := make(map[int]bool) // layer -> already mapped
	for gi, g := range s.Groups {
		if g.BatchUnit < 1 || g.BatchUnit > s.Batch {
			return fmt.Errorf("core: group %d batch unit %d outside [1,%d]", gi, g.BatchUnit, s.Batch)
		}
		group := make(map[int]bool, len(g.MSs))
		for _, ms := range g.MSs {
			group[ms.Layer] = true
		}
		used := make(map[arch.CoreID]int)
		for _, ms := range g.MSs {
			l := s.Graph.Layer(ms.Layer)
			if l == nil {
				return fmt.Errorf("core: group %d references unknown layer %d", gi, ms.Layer)
			}
			if seen[ms.Layer] {
				return fmt.Errorf("core: layer %d mapped twice", ms.Layer)
			}
			seen[ms.Layer] = true
			if !ms.Part.Valid(l, g.BatchUnit) {
				return fmt.Errorf("core: layer %s part %+v invalid for cube %dx%dx%dx%d",
					l.Name, ms.Part, l.OH, l.OW, g.BatchUnit, l.OK)
			}
			if ms.Part.N() != len(ms.CG) {
				return fmt.Errorf("core: layer %s |CG|=%d != Part.N=%d", l.Name, len(ms.CG), ms.Part.N())
			}
			for _, c := range ms.CG {
				if int(c) < 0 || int(c) >= cfg.Cores() {
					return fmt.Errorf("core: layer %s has invalid core %d", l.Name, c)
				}
				if prev, dup := used[c]; dup {
					return fmt.Errorf("core: core %d used by layers %d and %d in group %d", c, prev, ms.Layer, gi)
				}
				used[c] = ms.Layer
			}
			if err := validateFD(s.Graph, group, l, ms.FD, d); err != nil {
				return fmt.Errorf("core: group %d: %w", gi, err)
			}
		}
	}
	for _, l := range s.Graph.Layers {
		if !seen[l.ID] {
			return fmt.Errorf("core: layer %s not mapped", l.Name)
		}
	}
	return nil
}

func validateFD(g *dnn.Graph, group map[int]bool, l *dnn.Layer, fd FD, drams int) error {
	checkRange := func(name string, v int, explicit bool) error {
		if explicit {
			if v < FDInterleave || v > drams {
				return fmt.Errorf("layer %s %s=%d outside [0,%d]", l.Name, name, v, drams)
			}
			return nil
		}
		if v != FDImplicit {
			return fmt.Errorf("layer %s %s=%d must be implicit (-1)", l.Name, name, v)
		}
		return nil
	}
	if err := checkRange("IF", fd.IF, NeedsExplicitIF(l)); err != nil {
		return err
	}
	if err := checkRange("WGT", fd.WGT, l.HasWeights); err != nil {
		return err
	}
	return checkRange("OF", fd.OF, NeedsExplicitOF(g, group, l.ID))
}

// NID computes the numerical ID of a partitioned workload from its
// four-dimensional ID under the paper's correspondence rule:
// h*W*B*K + w*B*K + b*K + k.
func (p Part) NID(h, w, b, k int) int {
	return ((h*p.W+w)*p.B+b)*p.K + k
}

// Ranges returns the output-cube ranges of the workload with 4-D id
// (h, w, b, k) for a layer with the given cube extents.
func (p Part) Ranges(l *dnn.Layer, batchUnit, h, w, b, k int) (hr, wr, br, kr dnn.Range) {
	return dnn.SplitDim(l.OH, p.H, h),
		dnn.SplitDim(l.OW, p.W, w),
		dnn.SplitDim(batchUnit, p.B, b),
		dnn.SplitDim(l.OK, p.K, k)
}
