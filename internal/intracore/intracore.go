// Package intracore implements the intra-core exploration engine of the
// Gemini framework (Sec. V-B1): for each partitioned workload it performs an
// exhaustive search over output tilings and the implied loop orders for an
// NVDLA-style PE array, minimizing an energy-delay product subject to the
// core's global-buffer capacity, and reports cycle counts plus buffer
// traffic for the Evaluator.
package intracore

import (
	"math"
	"sync"

	"gemini/internal/dnn"
)

// Workload is a partitioned layer slice assigned to one core, per
// batch-unit pass.
type Workload struct {
	Kind       dnn.Kind
	H, W, B, K int // output cube extents of this part
	IC         int // input channels this part consumes (per group set)
	R, S       int
	Groups     int

	MACs     int64 // multiply-accumulates for this part
	VecOps   int64 // vector-unit operations for this part
	InBytes  int64 // activation bytes delivered to the GLB per pass
	WBytes   int64 // stationary weight bytes of this part
	OutBytes int64 // output bytes produced per pass
}

// Core describes the compute resources relevant to intra-core scheduling.
type Core struct {
	MACs    int
	GLB     int // bytes
	FreqGHz float64
}

// Result is the optimum found by the exhaustive tiling search.
type Result struct {
	Cycles    int64   // compute + GLB-bound cycles on the PE array
	VecCycles int64   // vector-unit cycles (overlappable with PE array)
	GLBBytes  float64 // GLB<->PE traffic for energy accounting
	Util      float64 // PE array utilization in [0,1]

	// TileH/TileW/TileK describe the chosen tiling, KOuterTiles and
	// SpatialTiles the loop structure, for inspection and tests.
	TileH, TileW, TileK int

	// WeightsResident reports whether the part's weights fit in the GLB
	// alongside working tiles; when false the Evaluator streams weights
	// from DRAM every pass instead of once per run.
	WeightsResident bool

	// Feasible is false when even the minimal tiling exceeds the GLB; the
	// Evaluator treats such schemes as invalid.
	Feasible bool
}

// array returns the PE-array spatial unrolling (Kpar x Cpar): the largest
// power-of-two split with Cpar <= Kpar, e.g. 1024 -> 32x32, 512 -> 32x16.
func array(macs int) (kpar, cpar int) {
	cpar = 1
	for cpar*cpar*4 <= macs {
		cpar *= 2
	}
	kpar = macs / cpar
	if kpar < 1 {
		kpar = 1
	}
	return kpar, cpar
}

// tileCandidates returns a small divisor-like candidate set for dim n.
func tileCandidates(n int) []int {
	if n <= 1 {
		return []int{1}
	}
	set := map[int]bool{1: true, n: true}
	for v := 2; v < n; v *= 2 {
		set[v] = true
	}
	if n >= 3 {
		set[(n+1)/2] = true
		set[(n+3)/4] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		if v >= 1 && v <= n {
			out = append(out, v)
		}
	}
	return out
}

func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// glbBudget is the GLB fraction usable for data (the rest holds
// instructions and message buffers).
const glbBudget = 0.95

// glbBytesPerCycle scales GLB bandwidth with the PE array width.
func glbBytesPerCycle(macs int) float64 { return float64(macs) / 4 }

// Explore runs the exhaustive tiling/loop-order search for one workload.
func Explore(w Workload, c Core) Result {
	if w.MACs == 0 {
		// Vector-only layer (pool/eltwise/softmax): no PE-array work.
		lanes := vecLanes(c.MACs)
		res := Result{
			VecCycles:       ceilDiv64(w.VecOps, int64(lanes)),
			GLBBytes:        float64(w.InBytes + w.OutBytes),
			Util:            0,
			WeightsResident: true,
			Feasible:        float64(w.InBytes+w.OutBytes) <= float64(c.GLB)*glbBudget,
			TileH:           w.H, TileW: w.W, TileK: w.K,
		}
		return res
	}

	kpar, cpar := array(c.MACs)
	icg := w.IC
	if w.Groups > 1 {
		icg = w.IC / w.Groups
		if icg < 1 {
			icg = 1
		}
	}
	rs := w.R * w.S
	if rs <= 0 {
		rs = 1
	}

	// PE-array cycles are tiling independent: the dot-product unrolling is
	// (Kpar output channels) x (Cpar input channels) per cycle.
	kTilesHW := ceilDiv(w.K, kpar)
	cTilesHW := ceilDiv(icg, cpar)
	macCycles := int64(kTilesHW) * int64(cTilesHW) * int64(w.H) * int64(w.W) * int64(w.B) * int64(rs)
	if w.Kind == dnn.FC || w.Kind == dnn.MatMul {
		macCycles = int64(kTilesHW) * int64(cTilesHW) * int64(w.H) * int64(w.W) * int64(w.B)
	}
	util := float64(w.MACs) / float64(macCycles*int64(c.MACs))
	if util > 1 {
		util = 1
	}

	budget := float64(c.GLB) * glbBudget
	weightsResident := float64(w.WBytes)+float64(w.InBytes)+float64(w.OutBytes) <= budget

	best := Result{Feasible: false}
	bestCost := math.Inf(1)

	ths := tileCandidates(w.H)
	tws := tileCandidates(w.W)
	tks := tileCandidates(w.K)
	for _, th := range ths {
		for _, tw := range tws {
			for _, tk := range tks {
				// Working set: an input tile with halo, a weight tile over
				// all (grouped) input channels, and a psum tile.
				ihT := th
				iwT := tw
				if w.Kind == dnn.Conv || w.Kind == dnn.Pool {
					ihT = (th-1)*1 + w.R
					iwT = (tw-1)*1 + w.S
				}
				inTile := float64(ihT) * float64(iwT) * float64(icg)
				wTile := float64(tk) * float64(icg) * float64(rs)
				if w.WBytes == 0 {
					wTile = float64(tk) * float64(icg) // activation operand B
				}
				psumTile := float64(th) * float64(tw) * float64(tk) * 4 // 32-bit partials
				work := (inTile+wTile)*1.5 + psumTile                   // 1.5x: double buffering
				if work > budget {
					continue
				}

				nKT := ceilDiv(w.K, tk)
				nSpT := ceilDiv(w.H, th) * ceilDiv(w.W, tw) * w.B
				// GLB traffic under the K-outer / spatial-inner nest the
				// tiling implies: inputs re-read per K tile, weights
				// re-read per spatial tile, outputs written once.
				inReads := float64(w.InBytes) * float64(nKT)
				wReads := float64(w.WBytes) * float64(nSpT)
				if w.WBytes == 0 {
					wReads = wTile * float64(nKT) * float64(nSpT)
				}
				outWrites := float64(w.OutBytes)
				traffic := inReads + wReads + outWrites

				glbCycles := int64(traffic / glbBytesPerCycle(c.MACs))
				cycles := macCycles
				if glbCycles > cycles {
					cycles = glbCycles
				}
				cost := float64(cycles) * (traffic + float64(w.MACs))
				if cost < bestCost {
					bestCost = cost
					best = Result{
						Cycles:          cycles,
						GLBBytes:        traffic,
						Util:            util,
						TileH:           th,
						TileW:           tw,
						TileK:           tk,
						WeightsResident: weightsResident,
						Feasible:        true,
					}
				}
			}
		}
	}
	best.VecCycles = ceilDiv64(w.VecOps, int64(vecLanes(c.MACs)))
	return best
}

func vecLanes(macs int) int {
	l := macs / 16
	if l < 1 {
		l = 1
	}
	return l
}

// Memo is a concurrency-safe cache of Explore results keyed by workload and
// core parameters; the SA loop re-evaluates identical parts constantly.
type Memo struct {
	mu sync.Mutex
	m  map[memoKey]Result
}

type memoKey struct {
	w Workload
	c Core
}

// NewMemo returns an empty cache.
func NewMemo() *Memo { return &Memo{m: make(map[memoKey]Result)} }

// Explore returns the cached optimum, computing it on a miss.
func (mm *Memo) Explore(w Workload, c Core) Result {
	k := memoKey{w, c}
	mm.mu.Lock()
	if r, ok := mm.m[k]; ok {
		mm.mu.Unlock()
		return r
	}
	mm.mu.Unlock()
	r := Explore(w, c)
	mm.mu.Lock()
	mm.m[k] = r
	mm.mu.Unlock()
	return r
}

// Len reports the number of cached entries.
func (mm *Memo) Len() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.m)
}
