package intracore

import (
	"sync"
	"testing"

	"gemini/internal/dnn"
)

func defCore() Core {
	return Core{MACs: 1024, GLB: 2 << 20, FreqGHz: 1}
}

func convWorkload(h, w, b, k, ic int) Workload {
	macs := int64(h) * int64(w) * int64(b) * int64(k) * int64(ic) * 9
	return Workload{
		Kind: dnn.Conv, H: h, W: w, B: b, K: k, IC: ic, R: 3, S: 3, Groups: 1,
		MACs:     macs,
		VecOps:   int64(h*w*b*k) * 2,
		InBytes:  int64((h + 2) * (w + 2) * ic * b),
		WBytes:   int64(9 * ic * k),
		OutBytes: int64(h * w * b * k),
	}
}

func TestArraySplit(t *testing.T) {
	cases := []struct{ macs, kpar, cpar int }{
		{1024, 32, 32},
		{512, 32, 16},
		{2048, 64, 32},
		{4096, 64, 64},
		{8192, 128, 64},
	}
	for _, c := range cases {
		k, cp := array(c.macs)
		if k != c.kpar || cp != c.cpar {
			t.Errorf("array(%d) = %dx%d, want %dx%d", c.macs, k, cp, c.kpar, c.cpar)
		}
		if k*cp != c.macs {
			t.Errorf("array(%d) loses MACs: %d", c.macs, k*cp)
		}
	}
}

func TestExploreConvBasics(t *testing.T) {
	r := Explore(convWorkload(28, 28, 1, 64, 64), defCore())
	if !r.Feasible {
		t.Fatal("expected feasible mapping")
	}
	if r.Cycles <= 0 {
		t.Fatal("non-positive cycles")
	}
	if r.Util <= 0 || r.Util > 1 {
		t.Fatalf("utilization = %v", r.Util)
	}
	if !r.WeightsResident {
		t.Error("small conv weights should be resident")
	}
	// Cycles can never beat the roofline MACs/arraySize.
	minCycles := r.Cycles * int64(defCore().MACs)
	w := convWorkload(28, 28, 1, 64, 64)
	if minCycles < w.MACs {
		t.Errorf("cycles %d below compute roofline", r.Cycles)
	}
}

func TestExploreUtilizationFullArray(t *testing.T) {
	// K=32 and IC=32 exactly fill the 32x32 array of a 1024-MAC core.
	w := convWorkload(16, 16, 1, 32, 32)
	r := Explore(w, defCore())
	if r.Util < 0.99 {
		t.Errorf("util = %v, want ~1 for aligned dims", r.Util)
	}
	// K=8 leaves 3/4 of the K lanes idle.
	w2 := convWorkload(16, 16, 1, 8, 32)
	r2 := Explore(w2, defCore())
	if r2.Util > 0.26 {
		t.Errorf("util = %v, want <=0.25 for K=8", r2.Util)
	}
}

func TestExploreVectorOnly(t *testing.T) {
	w := Workload{
		Kind: dnn.Pool, H: 14, W: 14, B: 1, K: 64, IC: 64, R: 2, S: 2,
		VecOps: 14 * 14 * 64 * 4, InBytes: 28 * 28 * 64, OutBytes: 14 * 14 * 64,
	}
	r := Explore(w, defCore())
	if !r.Feasible {
		t.Fatal("pool should be feasible")
	}
	if r.Cycles != 0 || r.VecCycles <= 0 {
		t.Errorf("pool cycles = %d/%d, want vector-only", r.Cycles, r.VecCycles)
	}
}

func TestExploreInfeasibleWhenGLBTiny(t *testing.T) {
	c := Core{MACs: 1024, GLB: 256, FreqGHz: 1} // 256 bytes cannot hold any tile
	r := Explore(convWorkload(56, 56, 4, 256, 256), c)
	if r.Feasible {
		t.Error("expected infeasible for tiny GLB")
	}
}

func TestExploreWeightsSpill(t *testing.T) {
	// Weights (9*2048*2048 = 37.7 MB) vastly exceed a 2 MB GLB, but tiled
	// execution is still possible.
	w := convWorkload(7, 7, 1, 2048, 2048)
	r := Explore(w, defCore())
	if !r.Feasible {
		t.Fatal("large conv should still be tileable")
	}
	if r.WeightsResident {
		t.Error("37 MB of weights cannot be resident in 2 MB GLB")
	}
	if r.TileK >= 2048 {
		t.Errorf("tileK = %d, expected K tiling under pressure", r.TileK)
	}
}

func TestExploreMoreComputeMoreCycles(t *testing.T) {
	small := Explore(convWorkload(14, 14, 1, 64, 64), defCore())
	big := Explore(convWorkload(28, 28, 1, 128, 64), defCore())
	if big.Cycles <= small.Cycles {
		t.Errorf("bigger workload should cost more cycles: %d vs %d", big.Cycles, small.Cycles)
	}
}

func TestExploreBiggerArrayFaster(t *testing.T) {
	w := convWorkload(28, 28, 1, 256, 256)
	small := Explore(w, Core{MACs: 512, GLB: 2 << 20, FreqGHz: 1})
	big := Explore(w, Core{MACs: 4096, GLB: 2 << 20, FreqGHz: 1})
	if big.Cycles >= small.Cycles {
		t.Errorf("4096-MAC core should beat 512: %d vs %d", big.Cycles, small.Cycles)
	}
}

func TestExploreMatMul(t *testing.T) {
	w := Workload{
		Kind: dnn.MatMul, H: 128, W: 1, B: 1, K: 512, IC: 512, R: 1, S: 1,
		MACs: 128 * 512 * 512, VecOps: 128 * 512,
		InBytes: 128 * 512, WBytes: 512 * 512, OutBytes: 128 * 512,
	}
	r := Explore(w, defCore())
	if !r.Feasible {
		t.Fatal("matmul should be feasible")
	}
	if r.Cycles*int64(defCore().MACs) < w.MACs {
		t.Error("matmul cycles below roofline")
	}
}

func TestMemoCachesAndIsConcurrencySafe(t *testing.T) {
	m := NewMemo()
	w := convWorkload(28, 28, 1, 64, 64)
	c := defCore()
	first := m.Explore(w, c)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if got := m.Explore(w, c); got != first {
					t.Errorf("memo returned different result")
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.Len() != 1 {
		t.Errorf("memo entries = %d, want 1", m.Len())
	}
}

func TestTileCandidatesWithinRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 56, 224} {
		for _, v := range tileCandidates(n) {
			if v < 1 || v > n {
				t.Errorf("tileCandidates(%d) produced %d", n, v)
			}
		}
	}
}
