package intracore

import (
	"testing"

	"gemini/internal/dnn"
)

func TestExploreActivationMatMul(t *testing.T) {
	// Weight-less matmul (attention): operand B streams through the GLB
	// like an activation; WBytes = 0 must not break tiling.
	w := Workload{
		Kind: dnn.MatMul, H: 128, W: 1, B: 1, K: 128, IC: 512,
		MACs:     128 * 128 * 512,
		InBytes:  128*512 + 512*128,
		WBytes:   0,
		OutBytes: 128 * 128,
	}
	r := Explore(w, defCore())
	if !r.Feasible {
		t.Fatal("weight-less matmul should be feasible")
	}
	if !r.WeightsResident {
		t.Error("no weights: residency should be trivially true")
	}
	if r.GLBBytes <= 0 {
		t.Error("no GLB traffic accounted")
	}
}

func TestExploreGLBTrafficBound(t *testing.T) {
	// A 1x1 conv with huge channel counts on a tiny-bandwidth array is
	// GLB-traffic bound: cycles exceed the pure-MAC roofline.
	w := Workload{
		Kind: dnn.Conv, H: 2, W: 2, B: 1, K: 4096, IC: 4096, R: 1, S: 1, Groups: 1,
		MACs:     2 * 2 * 4096 * 4096,
		VecOps:   0,
		InBytes:  2 * 2 * 4096,
		WBytes:   4096 * 4096,
		OutBytes: 2 * 2 * 4096,
	}
	c := Core{MACs: 8192, GLB: 8 << 20, FreqGHz: 1}
	r := Explore(w, c)
	if !r.Feasible {
		t.Fatal("infeasible")
	}
	kpar, cpar := array(c.MACs)
	macCycles := int64((4096/kpar)*(4096/cpar)) * 4
	if r.Cycles < macCycles {
		t.Fatalf("cycles %d below MAC roofline %d", r.Cycles, macCycles)
	}
}

func TestExploreDeterministic(t *testing.T) {
	w := convWorkload(28, 28, 2, 96, 64)
	a := Explore(w, defCore())
	b := Explore(w, defCore())
	if a != b {
		t.Fatalf("Explore not deterministic: %+v vs %+v", a, b)
	}
}

func TestExploreDistinguishesPartShapes(t *testing.T) {
	// The same MAC count with different output shapes should generally
	// produce different GLB traffic — the paper's point that Part affects
	// the intra-core optimization space (Sec. IV-C).
	tall := Explore(convWorkload(56, 14, 1, 64, 64), defCore())
	square := Explore(convWorkload(28, 28, 1, 64, 64), defCore())
	if tall.Cycles <= 0 || square.Cycles <= 0 {
		t.Fatal("degenerate")
	}
	if tall == square {
		t.Error("distinct part shapes produced identical results (suspicious)")
	}
}

func TestVecLanesFloor(t *testing.T) {
	if vecLanes(8) != 1 {
		t.Errorf("vecLanes(8) = %d", vecLanes(8))
	}
	if vecLanes(1024) != 64 {
		t.Errorf("vecLanes(1024) = %d", vecLanes(1024))
	}
}

func TestMemoDistinguishesCores(t *testing.T) {
	m := NewMemo()
	w := convWorkload(14, 14, 1, 64, 64)
	a := m.Explore(w, Core{MACs: 512, GLB: 1 << 20, FreqGHz: 1})
	b := m.Explore(w, Core{MACs: 4096, GLB: 1 << 20, FreqGHz: 1})
	if a.Cycles == b.Cycles {
		t.Error("different cores should give different cycles")
	}
	if m.Len() != 2 {
		t.Errorf("memo entries = %d, want 2", m.Len())
	}
}
