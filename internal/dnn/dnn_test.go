package dnn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitDimCoversExactly(t *testing.T) {
	cases := []struct{ n, parts int }{
		{10, 1}, {10, 3}, {7, 7}, {224, 6}, {1, 1}, {5, 4}, {128, 5},
	}
	for _, c := range cases {
		covered := 0
		prevHi := 0
		for i := 0; i < c.parts; i++ {
			r := SplitDim(c.n, c.parts, i)
			if r.Lo != prevHi {
				t.Fatalf("SplitDim(%d,%d,%d): gap or overlap at %d (lo=%d)", c.n, c.parts, i, prevHi, r.Lo)
			}
			prevHi = r.Hi
			covered += r.Len()
		}
		if covered != c.n || prevHi != c.n {
			t.Errorf("SplitDim(%d,%d): covered %d, end %d", c.n, c.parts, covered, prevHi)
		}
	}
}

func TestSplitDimBalanced(t *testing.T) {
	// Part sizes differ by at most one, and earlier parts get the extras.
	f := func(n, parts uint8) bool {
		nn := int(n%200) + 1
		pp := int(parts%16) + 1
		if pp > nn {
			pp = nn
		}
		minSz, maxSz := nn, 0
		for i := 0; i < pp; i++ {
			sz := SplitDim(nn, pp, i).Len()
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return maxSz-minSz <= 1 && minSz >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitDimInvalid(t *testing.T) {
	if r := SplitDim(10, 0, 0); !r.Empty() {
		t.Errorf("parts=0 should be empty, got %+v", r)
	}
	if r := SplitDim(10, 3, 3); !r.Empty() {
		t.Errorf("idx out of range should be empty, got %+v", r)
	}
	if r := SplitDim(10, 3, -1); !r.Empty() {
		t.Errorf("negative idx should be empty, got %+v", r)
	}
}

func TestRangeOps(t *testing.T) {
	a := Range{2, 8}
	if a.Len() != 6 {
		t.Errorf("Len = %d", a.Len())
	}
	if got := a.Intersect(Range{5, 20}); got != (Range{5, 8}) {
		t.Errorf("Intersect = %+v", got)
	}
	if got := a.Intersect(Range{10, 20}); !got.Empty() {
		t.Errorf("disjoint Intersect not empty: %+v", got)
	}
	if got := a.Shift(3); got != (Range{5, 11}) {
		t.Errorf("Shift = %+v", got)
	}
	if (Range{5, 5}).Len() != 0 || (Range{6, 5}).Len() != 0 {
		t.Error("degenerate ranges should have zero length")
	}
}

func TestConvDims(t *testing.T) {
	l := &Layer{Kind: Conv, OH: 56, OW: 56, OK: 64, R: 3, S: 3, Stride: 1, PadH: 1, PadW: 1, IC: 64, Groups: 1, HasWeights: true}
	if got := l.IH(); got != 56 {
		t.Errorf("IH = %d, want 56", got)
	}
	if got := l.MACs(); got != 56*56*64*64*9 {
		t.Errorf("MACs = %d", got)
	}
	if got := l.WeightVol(); got != 3*3*64*64 {
		t.Errorf("WeightVol = %d", got)
	}
	strided := &Layer{Kind: Conv, OH: 112, OW: 112, OK: 64, R: 7, S: 7, Stride: 2, PadH: 3, PadW: 3, IC: 3, Groups: 1}
	if got := strided.IH(); got != 223 { // (112-1)*2 + 7 - 6
		t.Errorf("strided IH = %d, want 223", got)
	}
}

func TestGroupedConvChannels(t *testing.T) {
	l := &Layer{Kind: Conv, OH: 28, OW: 28, OK: 128, R: 3, S: 3, Stride: 1, PadH: 1, PadW: 1, IC: 128, Groups: 32}
	// K range [4, 8) lies entirely in group 1 (4 K per group, 4 C per group).
	got := l.InputCRange(Range{4, 8})
	if got != (Range{4, 8}) {
		t.Errorf("grouped InputCRange = %+v, want {4 8}", got)
	}
	// Spanning groups 0..1 needs channels of both groups.
	got = l.InputCRange(Range{2, 6})
	if got != (Range{0, 8}) {
		t.Errorf("spanning InputCRange = %+v, want {0 8}", got)
	}
	dense := &Layer{Kind: Conv, OK: 128, IC: 64, Groups: 1}
	if got := dense.InputCRange(Range{10, 20}); got != (Range{0, 64}) {
		t.Errorf("dense InputCRange = %+v, want all channels", got)
	}
	dw := &Layer{Kind: Conv, OK: 64, IC: 64, Groups: 64}
	if got := dw.InputCRange(Range{10, 20}); got != (Range{10, 20}) {
		t.Errorf("depthwise InputCRange = %+v, want identity", got)
	}
}

func TestNeededRegionConvHalo(t *testing.T) {
	// 3x3 stride-1 pad-1 conv: output rows [4,8) need input rows [3,9).
	l := &Layer{Kind: Conv, OH: 16, OW: 16, OK: 8, R: 3, S: 3, Stride: 1, PadH: 1, PadW: 1, IC: 4, Groups: 1}
	in := Input{Src: 0}
	reg := l.NeededRegion(in, Range{4, 8}, Range{0, 16}, Range{0, 1}, Range{0, 8}, 16, 16, 4)
	if reg.H != (Range{3, 9}) {
		t.Errorf("halo H = %+v, want {3 9}", reg.H)
	}
	if reg.K != (Range{0, 4}) {
		t.Errorf("K = %+v, want all input channels", reg.K)
	}
	// Boundary rows clamp at the feature-map edge.
	reg = l.NeededRegion(in, Range{0, 4}, Range{0, 16}, Range{0, 1}, Range{0, 8}, 16, 16, 4)
	if reg.H != (Range{0, 5}) {
		t.Errorf("clamped H = %+v, want {0 5}", reg.H)
	}
}

func TestNeededRegionConcatOffsets(t *testing.T) {
	// Consumer with IC=96 fed by two producers at offsets 0 (64ch) and 64 (32ch).
	l := &Layer{Kind: Conv, OH: 8, OW: 8, OK: 16, R: 1, S: 1, Stride: 1, IC: 96, Groups: 1}
	e0 := Input{Src: 0, DstOff: 0}
	e1 := Input{Src: 1, DstOff: 64}
	r0 := l.NeededRegion(e0, Range{0, 8}, Range{0, 8}, Range{0, 1}, Range{0, 16}, 8, 8, 64)
	r1 := l.NeededRegion(e1, Range{0, 8}, Range{0, 8}, Range{0, 1}, Range{0, 16}, 8, 8, 32)
	if r0.K != (Range{0, 64}) {
		t.Errorf("edge0 K = %+v", r0.K)
	}
	if r1.K != (Range{0, 32}) {
		t.Errorf("edge1 K = %+v", r1.K)
	}
	if r0.Vol()+r1.Vol() != 8*8*96 {
		t.Errorf("total ifmap = %d, want %d", r0.Vol()+r1.Vol(), 8*8*96)
	}
}

func TestNeededRegionEltwiseChannelCoupling(t *testing.T) {
	l := &Layer{Kind: Eltwise, OH: 8, OW: 8, OK: 32, IC: 32}
	reg := l.NeededRegion(Input{Src: 0}, Range{2, 4}, Range{0, 8}, Range{0, 2}, Range{8, 16}, 8, 8, 32)
	want := EdgeRegion{H: Range{2, 4}, W: Range{0, 8}, B: Range{0, 2}, K: Range{8, 16}}
	if reg != want {
		t.Errorf("eltwise region = %+v, want %+v", reg, want)
	}
}

func TestNeededRegionMatMulRoles(t *testing.T) {
	// C(HxK) = A(HxIC) · Bᵀ with B (K x IC): consumer k-range follows B rows.
	l := &Layer{Kind: MatMul, OH: 16, OW: 1, OK: 16, IC: 64}
	rb := l.NeededRegion(Input{Src: 1, Role: RoleB}, Range{0, 4}, Range{0, 1}, Range{0, 1}, Range{4, 8}, 16, 1, 64)
	if rb.H != (Range{4, 8}) || rb.K != (Range{0, 64}) {
		t.Errorf("RoleB region = %+v", rb)
	}
	// C = A · B with B (IC x K): consumer k-range follows B channels.
	rbt := l.NeededRegion(Input{Src: 1, Role: RoleBT}, Range{0, 4}, Range{0, 1}, Range{0, 1}, Range{4, 8}, 64, 1, 16)
	if rbt.H != (Range{0, 64}) || rbt.K != (Range{4, 8}) {
		t.Errorf("RoleBT region = %+v", rbt)
	}
	ra := l.NeededRegion(Input{Src: 0, Role: RoleMain}, Range{2, 6}, Range{0, 1}, Range{0, 1}, Range{4, 8}, 16, 1, 64)
	if ra.H != (Range{2, 6}) || ra.K != (Range{0, 64}) {
		t.Errorf("RoleMain region = %+v", ra)
	}
}

// Partition coverage property: for any layer kind and any partition, the
// union of all partitioned-workload input needs through an edge covers at
// least the union of what the whole layer needs (no dropped data).
func TestNeededRegionCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []Kind{Conv, Pool, Eltwise}
	for trial := 0; trial < 200; trial++ {
		kind := kinds[rng.Intn(len(kinds))]
		oh, ow, ok := 4+rng.Intn(16), 4+rng.Intn(16), 4+4*rng.Intn(8)
		pad := rng.Intn(2)
		l := &Layer{Kind: kind, OH: oh, OW: ow, OK: ok, IC: ok, R: 1 + rng.Intn(3), S: 1 + rng.Intn(3), Stride: 1 + rng.Intn(2), PadH: pad, PadW: pad, Groups: 1}
		if kind == Conv {
			l.IC = 8
		}
		// A kernel narrower than the stride legitimately skips input rows;
		// the coverage invariant holds only for R,S >= stride.
		if l.R < l.Stride {
			l.R = l.Stride
		}
		if l.S < l.Stride {
			l.S = l.Stride
		}
		srcOH, srcOW, srcOK := l.IH(), l.IW(), l.IC
		hp := 1 + rng.Intn(3)
		kp := 1 + rng.Intn(3)
		covH := make([]bool, srcOH)
		covK := make([]bool, srcOK)
		for hi := 0; hi < hp; hi++ {
			for ki := 0; ki < kp; ki++ {
				hr := SplitDim(oh, hp, hi)
				kr := SplitDim(ok, kp, ki)
				reg := l.NeededRegion(Input{Src: 0}, hr, Range{0, ow}, Range{0, 1}, kr, srcOH, srcOW, srcOK)
				for h := reg.H.Lo; h < reg.H.Hi; h++ {
					covH[h] = true
				}
				for k := reg.K.Lo; k < reg.K.Hi; k++ {
					covK[k] = true
				}
			}
		}
		whole := l.NeededRegion(Input{Src: 0}, Range{0, oh}, Range{0, ow}, Range{0, 1}, Range{0, ok}, srcOH, srcOW, srcOK)
		for h := whole.H.Lo; h < whole.H.Hi; h++ {
			if !covH[h] {
				t.Fatalf("trial %d kind %v: input row %d uncovered", trial, kind, h)
			}
		}
		for k := whole.K.Lo; k < whole.K.Hi; k++ {
			if !covK[k] {
				t.Fatalf("trial %d kind %v: input channel %d uncovered", trial, kind, k)
			}
		}
	}
}

func TestVectorOps(t *testing.T) {
	pool := &Layer{Kind: Pool, OH: 4, OW: 4, OK: 8, R: 3, S: 3}
	if got := pool.VectorOps(); got != 4*4*8*9 {
		t.Errorf("pool ops = %d", got)
	}
	add := &Layer{Kind: Eltwise, OH: 4, OW: 4, OK: 8, Inputs: []Input{{}, {}, {}}}
	if got := add.VectorOps(); got != 4*4*8*3 {
		t.Errorf("eltwise ops = %d", got)
	}
	conv := &Layer{Kind: Conv, OH: 4, OW: 4, OK: 8, FusedOps: 2}
	if got := conv.VectorOps(); got != 4*4*8*2 {
		t.Errorf("fused ops = %d", got)
	}
}

func TestDepth(t *testing.T) {
	g := TinyCNN()
	// c1 -> c2 -> add -> p1 -> c3 -> gap -> fc is the longest chain.
	if got := g.Depth(); got != 7 {
		t.Errorf("depth = %d, want 7", got)
	}
}

func TestConsumers(t *testing.T) {
	g := TinyCNN()
	cons := g.Consumers()
	// c1 (id 0) feeds c2 and the residual add.
	if len(cons[0]) != 2 {
		t.Errorf("c1 consumers = %v, want 2 edges", cons[0])
	}
	last := len(g.Layers) - 1
	if len(cons[last]) != 0 {
		t.Errorf("fc should have no consumers, got %v", cons[last])
	}
}
