package dnn

import "testing"

func TestVGG16Shape(t *testing.T) {
	g := VGG16()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	weighted := 0
	for _, l := range g.Layers {
		if l.HasWeights {
			weighted++
		}
	}
	if weighted != 16 {
		t.Errorf("weighted layers = %d, want 16", weighted)
	}
	// ~15.5 GMACs and ~138M parameters.
	if m := g.TotalMACs(); m < 14_000_000_000 || m > 17_000_000_000 {
		t.Errorf("VGG16 MACs = %d, want ~15.5G", m)
	}
	if w := g.TotalWeights(); w < 130_000_000 || w > 145_000_000 {
		t.Errorf("VGG16 params = %d, want ~138M", w)
	}
}

func TestMobileNetV2Shape(t *testing.T) {
	g := MobileNetV2()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	dw, adds := 0, 0
	for _, l := range g.Layers {
		if l.Kind == Conv && l.Groups == l.IC && l.Groups > 1 {
			dw++
		}
		if l.Kind == Eltwise {
			adds++
		}
	}
	if dw != 17 {
		t.Errorf("depthwise convs = %d, want 17", dw)
	}
	if adds != 10 {
		t.Errorf("residual adds = %d, want 10", adds)
	}
	// ~0.3 GMACs and ~3.4M parameters.
	if m := g.TotalMACs(); m < 250_000_000 || m > 450_000_000 {
		t.Errorf("MobileNetV2 MACs = %d, want ~0.3G", m)
	}
	if w := g.TotalWeights(); w < 2_500_000 || w > 4_500_000 {
		t.Errorf("MobileNetV2 params = %d, want ~3.4M", w)
	}
}

func TestExtraModelsRegistered(t *testing.T) {
	for _, name := range []string{"vgg16", "mobilenetv2"} {
		if _, err := Model(name); err != nil {
			t.Errorf("Model(%q): %v", name, err)
		}
	}
	if len(ModelNames()) != 11 {
		t.Errorf("zoo size = %d, want 11", len(ModelNames()))
	}
}
