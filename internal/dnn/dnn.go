// Package dnn provides the DNN DAG representation used by the Gemini
// framework: layers with four-dimensional output cubes (H, W, B, K), typed
// producer/consumer edges, and exact per-dimension input-region inference
// needed by the LP spatial-mapping analyzer.
//
// Graphs are built per sample; the batch dimension (B) is introduced at
// mapping time as the batch unit of a pipeline stage.
package dnn

import (
	"errors"
	"fmt"
)

// Kind enumerates the layer types the hardware template computes. Activation
// and normalization operators are fused into their producers at build time
// (FusedOps), so only layers that occupy cores appear in a graph.
type Kind int

const (
	// Conv is a 2-D (optionally grouped or depthwise) convolution.
	Conv Kind = iota
	// FC is a fully connected layer over a flattened input.
	FC
	// MatMul is a matrix multiply with rows along H. With HasWeights it
	// behaves like a per-token projection; without, its second operand is
	// another layer's activation (attention score / context matmuls).
	MatMul
	// Pool is a max/average pooling layer (vector unit, per channel).
	Pool
	// Eltwise is an element-wise combination (residual add).
	Eltwise
	// Softmax is a row softmax (vector unit).
	Softmax
)

// String returns the lower-case layer-kind name.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case FC:
		return "fc"
	case MatMul:
		return "matmul"
	case Pool:
		return "pool"
	case Eltwise:
		return "eltwise"
	case Softmax:
		return "softmax"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Role describes how a MatMul consumer's output cube maps onto one of its
// operands.
type Role int

const (
	// RoleMain is the default operand: rows follow the consumer's H range.
	RoleMain Role = iota
	// RoleB marks the transposed second operand of a weight-less MatMul
	// (C = A·Bᵀ): its rows follow the consumer's K range and its channels
	// span the contraction dimension (attention-score matmul).
	RoleB
	// RoleBT marks the non-transposed second operand (C = A·B): its
	// channels follow the consumer's K range and its rows span the
	// contraction dimension (attention-context matmul).
	RoleBT
)

// ExternalInput is the sentinel source ID for the DNN's primary input.
const ExternalInput = -1

// Input is a typed producer edge of a layer.
type Input struct {
	// Src is the producer layer ID, or ExternalInput.
	Src int
	// DstOff is the channel offset at which the producer's channels appear
	// in the consumer's input channel space (concat rewiring).
	DstOff int
	// Role selects the operand semantics for MatMul consumers.
	Role Role
}

// Layer is one node of a DNN DAG. The output feature map is the
// four-dimensional cube (OH, OW, batch, OK); the batch extent is supplied by
// the mapper.
type Layer struct {
	ID   int
	Name string
	Kind Kind

	// Output cube (per sample).
	OH, OW, OK int

	// Kernel geometry (Conv/Pool). PadH/PadW allow the asymmetric
	// factorized kernels (1x7, 7x1) of Inception-style networks.
	R, S       int
	Stride     int
	PadH, PadW int

	// IC is the total input channel count (sum over inputs for rewired
	// concats). For MatMul it is the contraction dimension.
	IC int
	// Groups partitions the channel space of a Conv (1 = dense,
	// IC = depthwise).
	Groups int

	Inputs []Input

	// HasWeights reports whether the layer owns a stationary parameter
	// tensor that must be fetched from DRAM.
	HasWeights bool

	// FusedOps counts fused element-wise post-operations (ReLU, BN, bias,
	// LayerNorm) applied per output element on the vector unit.
	FusedOps int
}

// Bytes per element; the template computes in int8 like Simba.
const ElemBytes = 1

// MACs returns the multiply-accumulate count per sample.
func (l *Layer) MACs() int64 {
	switch l.Kind {
	case Conv:
		g := l.Groups
		if g <= 0 {
			g = 1
		}
		return int64(l.OH) * int64(l.OW) * int64(l.OK) * int64(l.IC/g) * int64(l.R) * int64(l.S)
	case FC:
		return int64(l.IC) * int64(l.OK)
	case MatMul:
		return int64(l.OH) * int64(l.IC) * int64(l.OK)
	}
	return 0
}

// VectorOps returns the vector-unit operation count per sample: pooling
// windows, element-wise combines, softmax passes, and fused post-ops.
func (l *Layer) VectorOps() int64 {
	out := int64(l.OH) * int64(l.OW) * int64(l.OK)
	switch l.Kind {
	case Pool:
		return out * int64(l.R) * int64(l.S)
	case Eltwise:
		return out * int64(maxInt(len(l.Inputs), 2))
	case Softmax:
		return out * 3 // max, exp-sum, normalize passes
	}
	return out * int64(l.FusedOps)
}

// OfmapVol returns the output volume in elements per sample.
func (l *Layer) OfmapVol() int64 {
	return int64(l.OH) * int64(l.OW) * int64(l.OK)
}

// WeightVol returns the parameter volume in elements (0 when weight-less).
func (l *Layer) WeightVol() int64 {
	if !l.HasWeights {
		return 0
	}
	switch l.Kind {
	case Conv:
		g := l.Groups
		if g <= 0 {
			g = 1
		}
		return int64(l.R) * int64(l.S) * int64(l.IC/g) * int64(l.OK)
	case FC, MatMul:
		return int64(l.IC) * int64(l.OK)
	}
	return 0
}

// IH returns the input feature-map height implied by the output geometry.
func (l *Layer) IH() int {
	return inDim(l.OH, l.R, l.Stride, l.PadH, l.Kind)
}

// IW returns the input feature-map width implied by the output geometry.
func (l *Layer) IW() int {
	return inDim(l.OW, l.S, l.Stride, l.PadW, l.Kind)
}

func inDim(o, k, stride, pad int, kind Kind) int {
	switch kind {
	case Conv, Pool:
		if stride <= 0 {
			stride = 1
		}
		d := (o-1)*stride + k - 2*pad
		if d < 1 {
			d = 1
		}
		return d
	case FC:
		return 1
	default:
		return o
	}
}

// IfmapVol returns the total input activation volume per sample (all edges).
func (l *Layer) IfmapVol() int64 {
	switch l.Kind {
	case Conv, Pool:
		return int64(l.IH()) * int64(l.IW()) * int64(l.IC)
	case FC:
		return int64(l.IC)
	case MatMul:
		v := int64(l.OH) * int64(l.IC) // operand A
		if !l.HasWeights {
			v += int64(l.IC) * int64(l.OK) // operand B activation
		}
		return v
	default: // shape preserving
		return int64(l.OH) * int64(l.OW) * int64(l.OK) * int64(maxInt(len(l.Inputs), 1))
	}
}

// Range is a half-open interval [Lo, Hi) along one cube dimension.
type Range struct{ Lo, Hi int }

// Len returns the interval length (never negative).
func (r Range) Len() int {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// Empty reports whether the range covers no indices.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Intersect returns the overlap of two ranges.
func (r Range) Intersect(o Range) Range {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Range{lo, hi}
}

// Shift returns the range translated by d.
func (r Range) Shift(d int) Range { return Range{r.Lo + d, r.Hi + d} }

// SplitDim partitions [0,n) into parts approximately equal ranges and
// returns the idx-th one. The first n%parts ranges receive the extra
// element, matching the paper's "approximately equal parts" rule.
func SplitDim(n, parts, idx int) Range {
	if parts <= 0 || idx < 0 || idx >= parts {
		return Range{}
	}
	q, r := n/parts, n%parts
	lo := idx*q + minInt(idx, r)
	size := q
	if idx < r {
		size++
	}
	return Range{lo, lo + size}
}

// InputHRange maps an output-row range to the producer-row range the
// consumer needs on the given edge (halo included for Conv/Pool).
func (l *Layer) InputHRange(in Input, hr Range, srcOH int) Range {
	switch l.Kind {
	case Conv, Pool:
		lo := hr.Lo*l.Stride - l.PadH
		hi := (hr.Hi-1)*l.Stride - l.PadH + l.R
		return Range{lo, hi}.Intersect(Range{0, srcOH})
	case FC:
		return Range{0, srcOH}
	case MatMul:
		if in.Role == RoleB {
			return Range{0, srcOH} // refined by channel mapping below
		}
		return hr.Intersect(Range{0, srcOH})
	default:
		return hr.Intersect(Range{0, srcOH})
	}
}

// InputWRange maps an output-column range to the producer-column range.
func (l *Layer) InputWRange(in Input, wr Range, srcOW int) Range {
	switch l.Kind {
	case Conv, Pool:
		lo := wr.Lo*l.Stride - l.PadW
		hi := (wr.Hi-1)*l.Stride - l.PadW + l.S
		return Range{lo, hi}.Intersect(Range{0, srcOW})
	case FC, MatMul:
		return Range{0, srcOW}
	default:
		return wr.Intersect(Range{0, srcOW})
	}
}

// InputCRange returns the consumer's required input-channel interval for an
// output-channel range kr, in the consumer's own input channel space.
// Channel-coupled kinds (Pool, Eltwise, Softmax, depthwise/grouped Conv) need
// only the matching channel group; dense kinds need all channels.
func (l *Layer) InputCRange(kr Range) Range {
	switch l.Kind {
	case Pool, Eltwise, Softmax:
		return kr
	case Conv:
		g := l.Groups
		if g <= 1 {
			return Range{0, l.IC}
		}
		kg := l.OK / g
		cg := l.IC / g
		if kg <= 0 || cg <= 0 {
			return Range{0, l.IC}
		}
		gLo := kr.Lo / kg
		gHi := (kr.Hi - 1) / kg
		return Range{gLo * cg, (gHi + 1) * cg}.Intersect(Range{0, l.IC})
	default:
		return Range{0, l.IC}
	}
}

// EdgeRegion describes the producer-side ofmap region a consumer workload
// needs through one input edge.
type EdgeRegion struct {
	H, W, B, K Range
}

// NeededRegion computes, for the edge in, the producer ofmap region required
// by a consumer workload covering output ranges (hr, wr, br, kr). The
// producer dims are (srcOH, srcOW, srcOK). An empty region (zero volume)
// means the edge contributes nothing to this workload.
func (l *Layer) NeededRegion(in Input, hr, wr, br, kr Range, srcOH, srcOW, srcOK int) EdgeRegion {
	// Channel mapping: the consumer's input channel interval intersected
	// with the slice this edge supplies ([DstOff, DstOff+srcOK)), then
	// translated into the producer's K space.
	var kNeed Range
	if l.Kind == MatMul && in.Role == RoleB {
		// Bᵀ operand: rows follow the consumer's output columns; its
		// channel (K) extent is the contraction dim, needed in full.
		return EdgeRegion{
			H: kr.Intersect(Range{0, srcOH}),
			W: Range{0, srcOW},
			B: br,
			K: Range{0, srcOK},
		}
	}
	if l.Kind == MatMul && in.Role == RoleBT {
		// B operand: channels follow the consumer's output columns; its
		// rows span the contraction dimension, needed in full.
		return EdgeRegion{
			H: Range{0, srcOH},
			W: Range{0, srcOW},
			B: br,
			K: kr.Intersect(Range{0, srcOK}),
		}
	}
	cNeed := l.InputCRange(kr)
	kNeed = cNeed.Shift(-in.DstOff).Intersect(Range{0, srcOK})
	if kNeed.Empty() {
		return EdgeRegion{}
	}
	return EdgeRegion{
		H: l.InputHRange(in, hr, srcOH),
		W: l.InputWRange(in, wr, srcOW),
		B: br,
		K: kNeed,
	}
}

// Vol returns the region volume in elements.
func (r EdgeRegion) Vol() int64 {
	return int64(r.H.Len()) * int64(r.W.Len()) * int64(r.B.Len()) * int64(r.K.Len())
}

// Graph is a DNN DAG. Layers are stored in topological order (producers
// before consumers); Builder guarantees this by construction.
type Graph struct {
	Name   string
	Layers []*Layer
}

// Layer returns the layer with the given ID, or nil.
func (g *Graph) Layer(id int) *Layer {
	if id < 0 || id >= len(g.Layers) {
		return nil
	}
	return g.Layers[id]
}

// TotalMACs sums MACs over all layers (per sample).
func (g *Graph) TotalMACs() int64 {
	var t int64
	for _, l := range g.Layers {
		t += l.MACs()
	}
	return t
}

// TotalWeights sums parameter volumes over all layers.
func (g *Graph) TotalWeights() int64 {
	var t int64
	for _, l := range g.Layers {
		t += l.WeightVol()
	}
	return t
}

// Consumers returns, for each layer ID, the IDs of layers consuming it.
func (g *Graph) Consumers() [][]int {
	out := make([][]int, len(g.Layers))
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			if in.Src >= 0 {
				out[in.Src] = append(out[in.Src], l.ID)
			}
		}
	}
	return out
}

// Validate checks structural invariants: IDs match positions, edges point
// backwards (topological order), channel offsets cover [0, IC) without gaps
// for multi-input layers, and dimensions are positive.
func (g *Graph) Validate() error {
	for i, l := range g.Layers {
		if l.ID != i {
			return fmt.Errorf("dnn: layer %q has ID %d at position %d", l.Name, l.ID, i)
		}
		if l.OH <= 0 || l.OW <= 0 || l.OK <= 0 {
			return fmt.Errorf("dnn: layer %q has non-positive output cube %dx%dx%d", l.Name, l.OH, l.OW, l.OK)
		}
		if len(l.Inputs) == 0 {
			return fmt.Errorf("dnn: layer %q has no inputs", l.Name)
		}
		for _, in := range l.Inputs {
			if in.Src != ExternalInput && (in.Src < 0 || in.Src >= i) {
				return fmt.Errorf("dnn: layer %q has edge from %d breaking topological order", l.Name, in.Src)
			}
			if in.DstOff < 0 || in.DstOff >= l.IC {
				return fmt.Errorf("dnn: layer %q edge offset %d outside input channels [0,%d)", l.Name, in.DstOff, l.IC)
			}
		}
		if l.Kind == Conv {
			g := l.Groups
			if g <= 0 {
				g = 1
			}
			if l.IC%g != 0 || l.OK%g != 0 {
				return fmt.Errorf("dnn: layer %q groups %d do not divide IC=%d OK=%d", l.Name, g, l.IC, l.OK)
			}
		}
	}
	if len(g.Layers) == 0 {
		return errors.New("dnn: empty graph")
	}
	return nil
}

// Depth returns the longest path length (in layers) of the graph.
func (g *Graph) Depth() int {
	depth := make([]int, len(g.Layers))
	best := 0
	for _, l := range g.Layers {
		d := 1
		for _, in := range l.Inputs {
			if in.Src >= 0 && depth[in.Src]+1 > d {
				d = depth[in.Src] + 1
			}
		}
		depth[l.ID] = d
		if d > best {
			best = d
		}
	}
	return best
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
