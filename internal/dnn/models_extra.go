package dnn

import "fmt"

func init() {
	modelZoo["vgg16"] = VGG16
	modelZoo["mobilenetv2"] = MobileNetV2
}

// VGG16 builds the classic 16-layer VGG network: large dense convolutions
// with very heavy FC layers, the weight-dominated extreme of the zoo.
func VGG16() *Graph {
	b := NewBuilder("vgg16")
	x := b.Input(224, 224, 3)
	block := func(name string, in Ref, convs, k int) Ref {
		out := in
		for i := 0; i < convs; i++ {
			out = b.Conv(fmt.Sprintf("%s.c%d", name, i+1), out, k, 3, 3, 1, 1)
		}
		return b.Pool(name+".pool", out, 2, 2, 0)
	}
	x = block("b1", x, 2, 64)
	x = block("b2", x, 2, 128)
	x = block("b3", x, 3, 256)
	x = block("b4", x, 3, 512)
	x = block("b5", x, 3, 512)
	x = b.FC("fc6", x, 4096)
	x = b.FC("fc7", x, 4096)
	b.FC("fc8", x, 1000)
	return b.MustBuild()
}

// MobileNetV2 builds the inverted-residual depthwise network: the
// communication-heavy, compute-light extreme that stresses the mapping
// engine's channel-coupled flow inference.
func MobileNetV2() *Graph {
	b := NewBuilder("mobilenetv2")
	x := b.Input(224, 224, 3)
	x = b.Conv("stem", x, 32, 3, 3, 2, 1)

	bottleneck := func(name string, in Ref, expand, out, stride int) Ref {
		mid := in.Channels() * expand
		h := in
		if expand != 1 {
			h = b.Conv(name+".exp", in, mid, 1, 1, 1, 0)
		}
		h = b.GroupedConv(name+".dw", h, mid, 3, 3, stride, 1, mid)
		h = b.Conv(name+".prj", h, out, 1, 1, 1, 0)
		if stride == 1 && in.Channels() == out {
			return b.Add(name+".add", h, in)
		}
		return h
	}
	type stage struct{ t, c, n, s int }
	stages := []stage{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	for si, st := range stages {
		for i := 0; i < st.n; i++ {
			stride := 1
			if i == 0 {
				stride = st.s
			}
			x = bottleneck(fmt.Sprintf("s%d.b%d", si, i), x, st.t, st.c, stride)
		}
	}
	x = b.Conv("head", x, 1280, 1, 1, 1, 0)
	x = b.GlobalPool("gap", x)
	b.FC("fc", x, 1000)
	return b.MustBuild()
}
