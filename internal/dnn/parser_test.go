package dnn

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

const sampleDesc = `
# a small residual CNN
model samplenet
input x 32 32 3
conv c1 x k=16 r=3 stride=1 pad=1
conv c2 c1 k=16 r=3 stride=1 pad=1
add  a1 c1 c2
pool p1 a1 r=2 stride=2
conv c3 p1 k=32 r=3 pad=1
gap  g  c3
fc   out g k=10
`

func TestParseSample(t *testing.T) {
	g, err := ParseString(sampleDesc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "samplenet" {
		t.Errorf("name = %q", g.Name)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Parsed model matches the hand-built TinyCNN topology.
	ref := TinyCNN()
	if len(g.Layers) != len(ref.Layers) {
		t.Fatalf("layers = %d, want %d", len(g.Layers), len(ref.Layers))
	}
	if g.TotalMACs() != ref.TotalMACs() {
		t.Errorf("MACs = %d, want %d", g.TotalMACs(), ref.TotalMACs())
	}
	if g.Depth() != ref.Depth() {
		t.Errorf("depth = %d, want %d", g.Depth(), ref.Depth())
	}
}

func TestParseTransformerOps(t *testing.T) {
	desc := `
model attn
input x 16 1 64
proj q x k=64
proj k x k=64
proj v x k=64
matmulT s q k
softmax a s
matmul c a v
proj o c k=64
add r o x
`
	g, err := ParseString(desc)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	for _, l := range g.Layers {
		kinds[l.Kind]++
	}
	if kinds[MatMul] != 6 { // 4 weighted projections + 2 activation matmuls
		t.Errorf("matmuls = %d, want 6", kinds[MatMul])
	}
	if kinds[Softmax] != 1 || kinds[Eltwise] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestParseConcatAndGroups(t *testing.T) {
	desc := `
model inceptionish
input x 16 16 8
conv b1 x k=8 r=1
conv b2 x k=8 r=3 pad=1
concat cat b1 b2
conv g1 cat k=16 r=3 pad=1 groups=4
gap gg g1
fc out gg k=4
`
	g, err := ParseString(desc)
	if err != nil {
		t.Fatal(err)
	}
	var grouped *Layer
	for _, l := range g.Layers {
		if l.Groups == 4 {
			grouped = l
		}
	}
	if grouped == nil {
		t.Fatal("grouped conv missing")
	}
	if grouped.IC != 16 {
		t.Errorf("concat consumer IC = %d, want 16", grouped.IC)
	}
	if len(grouped.Inputs) != 2 {
		t.Errorf("concat consumer edges = %d, want 2", len(grouped.Inputs))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"undefined tensor":    "model m\nconv c x k=8 r=3\n",
		"unknown op":          "model m\ninput x 8 8 3\nfrobnicate y x\n",
		"missing model":       "input x 8 8 3\n",
		"malformed option":    "model m\ninput x 8 8 3\nconv c x k8 r=3\n",
		"non-integer dims":    "model m\ninput x eight 8 3\n",
		"conv missing kernel": "model m\ninput x 8 8 3\nconv c x k=8\n",
		"pool missing window": "model m\ninput x 8 8 3\npool p x stride=2\n",
		"fc missing units":    "model m\ninput x 8 8 3\nfc f x\n",
		"add single input":    "model m\ninput x 8 8 3\nadd a x\n",
	}
	for name, desc := range cases {
		if _, err := ParseString(desc); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseRoundTripMapsEndToEnd(t *testing.T) {
	g, err := Parse(strings.NewReader(sampleDesc))
	if err != nil {
		t.Fatal(err)
	}
	// Parsed graphs flow through the same machinery as zoo models.
	if g.Layers[len(g.Layers)-1].Kind != FC {
		t.Error("output layer should be the FC head")
	}
}

// TestParseNumericOptionErrorWrapped pins the %w wrap on numeric option
// errors (found by the errclass analyzer): callers can classify the failure
// with errors.As against *strconv.NumError instead of matching error text.
func TestParseNumericOptionErrorWrapped(t *testing.T) {
	_, err := ParseString("model m\ninput x 8 8 3\nconv c1 x k=abc\n")
	if err == nil {
		t.Fatal("want error for non-numeric option value")
	}
	var ne *strconv.NumError
	if !errors.As(err, &ne) {
		t.Fatalf("parse error %v does not wrap *strconv.NumError", err)
	}
}
