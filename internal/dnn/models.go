package dnn

import (
	"fmt"
	"sort"
	"strings"
)

// ModelNames lists the registered workloads: the paper's evaluation set
// (Sec. VI-A3 and Fig. 8 — ResNet-50, ResNeXt-50, Inception-ResNet-v1,
// PNASNet, GoogLeNet, Transformer, Transformer-Large, plus VGG-16 and
// MobileNetV2) and the test-scale tinycnn/tinytransformer workloads.
func ModelNames() []string {
	names := make([]string, 0, len(modelZoo))
	for n := range modelZoo {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var modelZoo = map[string]func() *Graph{
	"resnet50":         ResNet50,
	"resnext50":        ResNeXt50,
	"inceptionresnet":  InceptionResNetV1,
	"pnasnet":          PNASNet,
	"googlenet":        GoogLeNet,
	"transformer":      Transformer,
	"transformerlarge": TransformerLarge,
	// Test-scale synthetic workloads, registered so sweep specs (HTTP
	// clients, CI smoke runs) can request a cheap end-to-end sweep by name.
	"tinycnn":         TinyCNN,
	"tinytransformer": TinyTransformer,
}

// HasModel reports whether name is a registered zoo model, without
// building it — request validators use this so rejecting a bad spec never
// pays for constructing the valid graphs around it.
func HasModel(name string) bool {
	_, ok := modelZoo[strings.ToLower(name)]
	return ok
}

// Model builds a zoo model by name. Constructor panics — zoo constructors
// use Builder.MustBuild, so a topology bug or a bad future registration
// panics at build time — are recovered into errors here: model loading is
// request-path code in gemini-serve, and a bad model name or broken
// constructor must fail that one request, never the process.
func Model(name string) (g *Graph, err error) {
	f, ok := modelZoo[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("dnn: unknown model %q (have %v)", name, ModelNames())
	}
	defer func() {
		if v := recover(); v != nil {
			g, err = nil, fmt.Errorf("dnn: building model %q panicked: %v", name, v)
		}
	}()
	return f(), nil
}

// bottleneck appends one ResNet bottleneck block (1x1 reduce, 3x3, 1x1
// expand, residual add), optionally with a projection shortcut and grouped
// middle convolution (ResNeXt).
func bottleneck(b *Builder, name string, in Ref, mid, out, stride, groups int, project bool) Ref {
	x := b.Conv(name+".c1", in, mid, 1, 1, 1, 0)
	x = b.GroupedConv(name+".c2", x, mid, 3, 3, stride, 1, groups)
	x = b.Conv(name+".c3", x, out, 1, 1, 1, 0)
	sc := in
	if project {
		sc = b.Conv(name+".sc", in, out, 1, 1, stride, 0)
	}
	return b.Add(name+".add", x, sc)
}

func resnetLike(name string, groups int, midScale int) *Graph {
	b := NewBuilder(name)
	in := b.Input(224, 224, 3)
	x := b.Conv("stem", in, 64, 7, 7, 2, 3)
	x = b.Pool("stem.pool", x, 3, 2, 1)
	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			nm := fmt.Sprintf("s%d.b%d", si+1, bi)
			x = bottleneck(b, nm, x, st.mid*midScale, st.out, stride, groups, bi == 0)
		}
	}
	x = b.GlobalPool("gap", x)
	b.FC("fc", x, 1000)
	return b.MustBuild()
}

// ResNet50 builds the standard 50-layer residual network at 224x224.
func ResNet50() *Graph { return resnetLike("resnet50", 1, 1) }

// ResNeXt50 builds ResNeXt-50 (32x4d): identical topology with 32-way
// grouped middle convolutions and doubled bottleneck width.
func ResNeXt50() *Graph { return resnetLike("resnext50", 32, 2) }

// GoogLeNet builds the 22-layer Inception-v1 network: nine inception
// modules, each with four parallel branches joined by channel concatenation.
func GoogLeNet() *Graph {
	b := NewBuilder("googlenet")
	inception := func(name string, in Ref, c1, r3, c3, r5, c5, pp int) Ref {
		br1 := b.Conv(name+".1x1", in, c1, 1, 1, 1, 0)
		br2 := b.Conv(name+".3r", in, r3, 1, 1, 1, 0)
		br2 = b.Conv(name+".3x3", br2, c3, 3, 3, 1, 1)
		br3 := b.Conv(name+".5r", in, r5, 1, 1, 1, 0)
		br3 = b.Conv(name+".5x5", br3, c5, 5, 5, 1, 2)
		br4 := b.Pool(name+".pool", in, 3, 1, 1)
		br4 = b.Conv(name+".pp", br4, pp, 1, 1, 1, 0)
		return b.Concat(br1, br2, br3, br4)
	}
	in := b.Input(224, 224, 3)
	x := b.Conv("stem1", in, 64, 7, 7, 2, 3)
	x = b.Pool("pool1", x, 3, 2, 1)
	x = b.Conv("stem2", x, 64, 1, 1, 1, 0)
	x = b.Conv("stem3", x, 192, 3, 3, 1, 1)
	x = b.Pool("pool2", x, 3, 2, 1)
	x = inception("i3a", x, 64, 96, 128, 16, 32, 32)
	x = inception("i3b", x, 128, 128, 192, 32, 96, 64)
	x = b.Pool("pool3", x, 3, 2, 1)
	x = inception("i4a", x, 192, 96, 208, 16, 48, 64)
	x = inception("i4b", x, 160, 112, 224, 24, 64, 64)
	x = inception("i4c", x, 128, 128, 256, 24, 64, 64)
	x = inception("i4d", x, 112, 144, 288, 32, 64, 64)
	x = inception("i4e", x, 256, 160, 320, 32, 128, 128)
	x = b.Pool("pool4", x, 3, 2, 1)
	x = inception("i5a", x, 256, 160, 320, 32, 128, 128)
	x = inception("i5b", x, 384, 192, 384, 48, 128, 128)
	x = b.GlobalPool("gap", x)
	b.FC("fc", x, 1000)
	return b.MustBuild()
}

// InceptionResNetV1 builds a reduced-depth Inception-ResNet-v1: full stem
// and reduction blocks, with 3/4/2 repeats of blocks A/B/C (the paper's
// 5/10/5). The branching structure — the property that stresses LP SPM — is
// preserved exactly; only cell repeats are reduced. See DESIGN.md §2.
func InceptionResNetV1() *Graph {
	b := NewBuilder("inceptionresnet")
	in := b.Input(299, 299, 3)
	x := b.Conv("stem.c1", in, 32, 3, 3, 2, 0)
	x = b.Conv("stem.c2", x, 32, 3, 3, 1, 0)
	x = b.Conv("stem.c3", x, 64, 3, 3, 1, 1)
	x = b.Pool("stem.pool", x, 3, 2, 0)
	x = b.Conv("stem.c4", x, 80, 1, 1, 1, 0)
	x = b.Conv("stem.c5", x, 192, 3, 3, 1, 0)
	x = b.Conv("stem.c6", x, 256, 3, 3, 2, 0)

	blockA := func(name string, in Ref) Ref {
		b1 := b.Conv(name+".b1", in, 32, 1, 1, 1, 0)
		b2 := b.Conv(name+".b2a", in, 32, 1, 1, 1, 0)
		b2 = b.Conv(name+".b2b", b2, 32, 3, 3, 1, 1)
		b3 := b.Conv(name+".b3a", in, 32, 1, 1, 1, 0)
		b3 = b.Conv(name+".b3b", b3, 32, 3, 3, 1, 1)
		b3 = b.Conv(name+".b3c", b3, 32, 3, 3, 1, 1)
		up := b.Conv(name+".up", b.Concat(b1, b2, b3), in.Channels(), 1, 1, 1, 0)
		return b.Add(name+".add", up, in)
	}
	for i := 0; i < 3; i++ {
		x = blockA(fmt.Sprintf("a%d", i), x)
	}
	// Reduction-A
	ra1 := b.Conv("redA.b1", x, 384, 3, 3, 2, 0)
	ra2 := b.Conv("redA.b2a", x, 192, 1, 1, 1, 0)
	ra2 = b.Conv("redA.b2b", ra2, 192, 3, 3, 1, 1)
	ra2 = b.Conv("redA.b2c", ra2, 256, 3, 3, 2, 0)
	ra3 := b.Pool("redA.pool", x, 3, 2, 0)
	x = b.Concat(ra1, ra2, ra3)

	blockB := func(name string, in Ref) Ref {
		b1 := b.Conv(name+".b1", in, 128, 1, 1, 1, 0)
		b2 := b.Conv(name+".b2a", in, 128, 1, 1, 1, 0)
		b2 = b.ConvHW(name+".b2b", b2, 128, 1, 7, 1, 0, 3)
		b2 = b.ConvHW(name+".b2c", b2, 128, 7, 1, 1, 3, 0)
		up := b.Conv(name+".up", b.Concat(b1, b2), in.Channels(), 1, 1, 1, 0)
		return b.Add(name+".add", up, in)
	}
	for i := 0; i < 4; i++ {
		x = blockB(fmt.Sprintf("b%d", i), x)
	}
	// Reduction-B
	rb1 := b.Conv("redB.b1a", x, 256, 1, 1, 1, 0)
	rb1 = b.Conv("redB.b1b", rb1, 384, 3, 3, 2, 0)
	rb2 := b.Conv("redB.b2a", x, 256, 1, 1, 1, 0)
	rb2 = b.Conv("redB.b2b", rb2, 256, 3, 3, 2, 0)
	rb3 := b.Conv("redB.b3a", x, 256, 1, 1, 1, 0)
	rb3 = b.Conv("redB.b3b", rb3, 256, 3, 3, 1, 1)
	rb3 = b.Conv("redB.b3c", rb3, 256, 3, 3, 2, 0)
	rb4 := b.Pool("redB.pool", x, 3, 2, 0)
	x = b.Concat(rb1, rb2, rb3, rb4)

	blockC := func(name string, in Ref) Ref {
		b1 := b.Conv(name+".b1", in, 192, 1, 1, 1, 0)
		b2 := b.Conv(name+".b2a", in, 192, 1, 1, 1, 0)
		b2 = b.ConvHW(name+".b2b", b2, 192, 1, 3, 1, 0, 1)
		b2 = b.ConvHW(name+".b2c", b2, 192, 3, 1, 1, 1, 0)
		up := b.Conv(name+".up", b.Concat(b1, b2), in.Channels(), 1, 1, 1, 0)
		return b.Add(name+".add", up, in)
	}
	for i := 0; i < 2; i++ {
		x = blockC(fmt.Sprintf("c%d", i), x)
	}
	x = b.GlobalPool("gap", x)
	b.FC("fc", x, 1000)
	return b.MustBuild()
}

// PNASNet builds a reduced PNASNet-5-like network: a stack of cells whose
// internal structure (parallel separable convolutions and poolings combined
// by adds and concatenation) matches PNASNet's intricate dependency pattern,
// with fewer cell repeats than the full network. See DESIGN.md §2.
func PNASNet() *Graph {
	b := NewBuilder("pnasnet")
	cell := func(name string, in Ref, f, stride int) Ref {
		s1 := b.SepConv(name+".sep5", in, f, 5, stride, 2)
		s2 := b.SepConv(name+".sep3", in, f, 3, stride, 1)
		c1 := b.Add(name+".add1", s1, s2)
		p1 := b.Pool(name+".maxp", in, 3, stride, 1)
		p1c := b.Conv(name+".pproj", p1, f, 1, 1, 1, 0)
		s3 := b.SepConv(name+".sep7", in, f, 7, stride, 3)
		c2 := b.Add(name+".add2", p1c, s3)
		s4 := b.SepConv(name+".sep3b", c1, f, 3, 1, 1)
		c3 := b.Add(name+".add3", s4, c2)
		return b.Concat(c1, c2, c3)
	}
	in := b.Input(224, 224, 3)
	x := b.Conv("stem", in, 32, 3, 3, 2, 1)
	f := 54
	for stage := 0; stage < 3; stage++ {
		x = cell(fmt.Sprintf("red%d", stage), x, f, 2)
		for i := 0; i < 2; i++ {
			x = cell(fmt.Sprintf("s%d.c%d", stage, i), x, f, 1)
		}
		f *= 2
	}
	x = b.GlobalPool("gap", x)
	b.FC("fc", x, 1000)
	return b.MustBuild()
}

// transformerEncoder builds an n-layer Transformer encoder: per layer, Q/K/V
// projections, attention score matmul, softmax, context matmul, output
// projection, residual adds, and a two-matmul feed-forward block. Sequence
// tokens occupy the H dimension; LayerNorms are fused post-ops.
func transformerEncoder(name string, layers, seq, d, dff int) *Graph {
	b := NewBuilder(name)
	x := b.Input(seq, 1, d)
	// Token embedding projection puts the external input behind a weighted
	// layer, as the paper's model parser does.
	h := b.Proj("embed", x, d)
	for i := 0; i < layers; i++ {
		nm := fmt.Sprintf("l%d", i)
		q := b.Proj(nm+".q", h, d)
		k := b.Proj(nm+".k", h, d)
		v := b.Proj(nm+".v", h, d)
		scores := b.MatMulT(nm+".qk", q, k)
		attn := b.Softmax(nm+".sm", scores)
		ctx := b.MatMul(nm+".av", attn, v)
		proj := b.Proj(nm+".o", ctx, d)
		h = b.Add(nm+".add1", proj, h)
		f1 := b.Proj(nm+".ff1", h, dff)
		f2 := b.Proj(nm+".ff2", f1, d)
		h = b.Add(nm+".add2", f2, h)
	}
	b.Proj("head", h, d)
	return b.MustBuild()
}

// Transformer builds the base encoder (6 layers, d=512, dff=2048, seq=128),
// the paper's default DSE workload.
func Transformer() *Graph {
	return transformerEncoder("transformer", 6, 128, 512, 2048)
}

// TransformerLarge builds the large variant used in Fig. 8 (12 layers,
// d=1024, dff=4096, seq=128).
func TransformerLarge() *Graph {
	return transformerEncoder("transformerlarge", 12, 128, 1024, 4096)
}

// TinyCNN builds a small 6-layer CNN used by tests and the quickstart
// example; it exercises conv, pool, residual and FC layer kinds while
// remaining fast to map.
func TinyCNN() *Graph {
	b := NewBuilder("tinycnn")
	in := b.Input(32, 32, 3)
	x := b.Conv("c1", in, 16, 3, 3, 1, 1)
	y := b.Conv("c2", x, 16, 3, 3, 1, 1)
	x = b.Add("add", x, y)
	x = b.Pool("p1", x, 2, 2, 0)
	x = b.Conv("c3", x, 32, 3, 3, 1, 1)
	x = b.GlobalPool("gap", x)
	b.FC("fc", x, 10)
	return b.MustBuild()
}

// TinyTransformer builds a 2-layer, d=64 encoder for tests.
func TinyTransformer() *Graph {
	return transformerEncoder("tinytransformer", 2, 16, 64, 128)
}
