package dnn

import "fmt"

// Ref identifies the output of one or more layers during graph construction.
// A multi-part Ref is a virtual concatenation along the channel dimension:
// Builder eliminates concat layers by rewiring consumers with channel
// offsets, as the Gemini analyzer requires.
type Ref struct {
	parts []refPart
}

type refPart struct {
	src int // layer ID or ExternalInput
	k   int // channels supplied by this part
	oh  int
	ow  int
}

// Channels returns the channel count of the (possibly virtual) tensor.
func (r Ref) Channels() int {
	k := 0
	for _, p := range r.parts {
		k += p.k
	}
	return k
}

// Height returns the spatial height of the referenced tensor.
func (r Ref) Height() int {
	if len(r.parts) == 0 {
		return 0
	}
	return r.parts[0].oh
}

// Width returns the spatial width of the referenced tensor.
func (r Ref) Width() int {
	if len(r.parts) == 0 {
		return 0
	}
	return r.parts[0].ow
}

// Builder incrementally constructs a Graph in topological order.
type Builder struct {
	g   *Graph
	err error
}

// NewBuilder returns a Builder for a named graph.
func NewBuilder(name string) *Builder {
	return &Builder{g: &Graph{Name: name}}
}

// Input declares the external input tensor of the DNN.
func (b *Builder) Input(h, w, c int) Ref {
	return Ref{parts: []refPart{{src: ExternalInput, k: c, oh: h, ow: w}}}
}

func (b *Builder) fail(format string, args ...any) Ref {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return Ref{}
}

func (b *Builder) add(l *Layer, in Ref, role Role) Ref {
	l.ID = len(b.g.Layers)
	off := 0
	for _, p := range in.parts {
		l.Inputs = append(l.Inputs, Input{Src: p.src, DstOff: off, Role: role})
		off += p.k
	}
	b.g.Layers = append(b.g.Layers, l)
	return Ref{parts: []refPart{{src: l.ID, k: l.OK, oh: l.OH, ow: l.OW}}}
}

// Conv appends a convolution with fused BN+ReLU (two vector post-ops).
func (b *Builder) Conv(name string, in Ref, k, r, s, stride, pad int) Ref {
	return b.GroupedConv(name, in, k, r, s, stride, pad, 1)
}

// ConvHW appends a convolution with per-dimension padding, as needed by the
// factorized 1x7 / 7x1 kernels of Inception-style networks.
func (b *Builder) ConvHW(name string, in Ref, k, r, s, stride, padH, padW int) Ref {
	ic := in.Channels()
	if ic == 0 {
		return b.fail("conv %q: empty input", name)
	}
	oh := outDim(in.Height(), r, stride, padH)
	ow := outDim(in.Width(), s, stride, padW)
	if oh <= 0 || ow <= 0 {
		return b.fail("conv %q: non-positive output %dx%d", name, oh, ow)
	}
	return b.add(&Layer{
		Name: name, Kind: Conv,
		OH: oh, OW: ow, OK: k,
		R: r, S: s, Stride: stride, PadH: padH, PadW: padW,
		IC: ic, Groups: 1,
		HasWeights: true, FusedOps: 2,
	}, in, RoleMain)
}

// GroupedConv appends a grouped convolution (groups = in-channels gives a
// depthwise convolution).
func (b *Builder) GroupedConv(name string, in Ref, k, r, s, stride, pad, groups int) Ref {
	ic := in.Channels()
	if ic == 0 {
		return b.fail("conv %q: empty input", name)
	}
	if groups <= 0 {
		groups = 1
	}
	if ic%groups != 0 || k%groups != 0 {
		return b.fail("conv %q: groups=%d does not divide ic=%d k=%d", name, groups, ic, k)
	}
	oh := outDim(in.Height(), r, stride, pad)
	ow := outDim(in.Width(), s, stride, pad)
	if oh <= 0 || ow <= 0 {
		return b.fail("conv %q: non-positive output %dx%d", name, oh, ow)
	}
	return b.add(&Layer{
		Name: name, Kind: Conv,
		OH: oh, OW: ow, OK: k,
		R: r, S: s, Stride: stride, PadH: pad, PadW: pad,
		IC: ic, Groups: groups,
		HasWeights: true, FusedOps: 2,
	}, in, RoleMain)
}

// SepConv appends a depthwise + pointwise separable convolution pair and
// returns the pointwise output.
func (b *Builder) SepConv(name string, in Ref, k, r, stride, pad int) Ref {
	dw := b.GroupedConv(name+".dw", in, in.Channels(), r, r, stride, pad, in.Channels())
	return b.Conv(name+".pw", dw, k, 1, 1, 1, 0)
}

// Pool appends a pooling layer.
func (b *Builder) Pool(name string, in Ref, r, stride, pad int) Ref {
	oh := outDim(in.Height(), r, stride, pad)
	ow := outDim(in.Width(), r, stride, pad)
	if oh <= 0 || ow <= 0 {
		return b.fail("pool %q: non-positive output %dx%d", name, oh, ow)
	}
	return b.add(&Layer{
		Name: name, Kind: Pool,
		OH: oh, OW: ow, OK: in.Channels(),
		R: r, S: r, Stride: stride, PadH: pad, PadW: pad,
		IC: in.Channels(),
	}, in, RoleMain)
}

// GlobalPool appends a pooling layer that reduces the spatial dims to 1x1.
func (b *Builder) GlobalPool(name string, in Ref) Ref {
	return b.Pool(name, in, in.Height(), in.Height(), 0)
}

// Add appends an element-wise residual addition of same-shape tensors.
func (b *Builder) Add(name string, ins ...Ref) Ref {
	if len(ins) < 2 {
		return b.fail("add %q: needs at least two inputs", name)
	}
	h, w, k := ins[0].Height(), ins[0].Width(), ins[0].Channels()
	for _, in := range ins[1:] {
		if in.Height() != h || in.Width() != w || in.Channels() != k {
			return b.fail("add %q: shape mismatch %dx%dx%d vs %dx%dx%d",
				name, h, w, k, in.Height(), in.Width(), in.Channels())
		}
	}
	l := &Layer{
		Name: name, Kind: Eltwise,
		OH: h, OW: w, OK: k, IC: k,
		FusedOps: 1,
	}
	l.ID = len(b.g.Layers)
	for _, in := range ins {
		// Each element-wise input aligns at channel 0; a virtually
		// concatenated input keeps its per-part offsets within [0, k).
		off := 0
		for _, p := range in.parts {
			l.Inputs = append(l.Inputs, Input{Src: p.src, DstOff: off})
			off += p.k
		}
	}
	b.g.Layers = append(b.g.Layers, l)
	return Ref{parts: []refPart{{src: l.ID, k: k, oh: h, ow: w}}}
}

// Concat virtually concatenates tensors along channels (no layer emitted).
func (b *Builder) Concat(ins ...Ref) Ref {
	var out Ref
	if len(ins) == 0 {
		return b.fail("concat: no inputs")
	}
	h, w := ins[0].Height(), ins[0].Width()
	for _, in := range ins {
		if in.Height() != h || in.Width() != w {
			return b.fail("concat: spatial mismatch %dx%d vs %dx%d", h, w, in.Height(), in.Width())
		}
		out.parts = append(out.parts, in.parts...)
	}
	return out
}

// FC appends a fully connected layer over the flattened input.
func (b *Builder) FC(name string, in Ref, k int) Ref {
	ic := in.Channels() * in.Height() * in.Width()
	l := &Layer{
		Name: name, Kind: FC,
		OH: 1, OW: 1, OK: k,
		IC: ic, HasWeights: true, FusedOps: 1,
	}
	// FC flattens; treat the virtual concat as a single dense input space.
	l.ID = len(b.g.Layers)
	off := 0
	for _, p := range in.parts {
		l.Inputs = append(l.Inputs, Input{Src: p.src, DstOff: off})
		off += p.k
	}
	b.g.Layers = append(b.g.Layers, l)
	return Ref{parts: []refPart{{src: l.ID, k: k, oh: 1, ow: 1}}}
}

// Proj appends a weighted token projection (rows = in.Height(), contraction
// = in.Channels()), i.e. a MatMul with a stationary weight matrix.
func (b *Builder) Proj(name string, in Ref, k int) Ref {
	return b.add(&Layer{
		Name: name, Kind: MatMul,
		OH: in.Height(), OW: 1, OK: k,
		IC: in.Channels(), HasWeights: true, FusedOps: 1,
	}, in, RoleMain)
}

// MatMulT appends C = A·Bᵀ over activations: A is (H × IC), B is (K × IC);
// the output is (H × K) with K = bT.Height(). Used for attention scores.
func (b *Builder) MatMulT(name string, a, bT Ref) Ref {
	if bT.Channels() != a.Channels() {
		return b.fail("matmulT %q: contraction mismatch %d vs %d", name, a.Channels(), bT.Channels())
	}
	return b.matmul2(name, a, bT, bT.Height(), RoleB)
}

// MatMul appends C = A·B over activations: A is (H × IC), B is (IC × K)
// given row-major with IC rows; the output is (H × K) with K = bm.Channels().
// Used for the attention context matmul.
func (b *Builder) MatMul(name string, a, bm Ref) Ref {
	if bm.Height() != a.Channels() {
		return b.fail("matmul %q: contraction mismatch %d vs %d rows", name, a.Channels(), bm.Height())
	}
	return b.matmul2(name, a, bm, bm.Channels(), RoleBT)
}

func (b *Builder) matmul2(name string, a, other Ref, k int, role Role) Ref {
	l := &Layer{
		Name: name, Kind: MatMul,
		OH: a.Height(), OW: 1, OK: k,
		IC: a.Channels(),
	}
	l.ID = len(b.g.Layers)
	for _, p := range a.parts {
		l.Inputs = append(l.Inputs, Input{Src: p.src, DstOff: 0, Role: RoleMain})
	}
	for _, p := range other.parts {
		l.Inputs = append(l.Inputs, Input{Src: p.src, DstOff: 0, Role: role})
	}
	b.g.Layers = append(b.g.Layers, l)
	return Ref{parts: []refPart{{src: l.ID, k: k, oh: a.Height(), ow: 1}}}
}

// Softmax appends a row softmax.
func (b *Builder) Softmax(name string, in Ref) Ref {
	return b.add(&Layer{
		Name: name, Kind: Softmax,
		OH: in.Height(), OW: in.Width(), OK: in.Channels(), IC: in.Channels(),
	}, in, RoleMain)
}

// Build validates and returns the constructed graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build that panics on error; model-zoo constructors use it
// since their topologies are fixed at compile time.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func outDim(in, k, stride, pad int) int {
	if stride <= 0 {
		stride = 1
	}
	return (in+2*pad-k)/stride + 1
}
