package dnn

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a DNN description in the framework's plain-text format and
// builds a graph, playing the role of the paper's Model Parser ("extract
// DNN features"). The format is line-oriented:
//
//	# comment
//	model <name>
//	input <ref> <height> <width> <channels>
//	conv <ref> <in> k=<out-channels> r=<kh> s=<kw> [stride=1] [pad=0] [groups=1]
//	pool <ref> <in> r=<window> [stride=1] [pad=0]
//	gap <ref> <in>
//	fc <ref> <in> k=<units>
//	proj <ref> <in> k=<units>
//	matmulT <ref> <a> <b>
//	matmul <ref> <a> <b>
//	softmax <ref> <in>
//	add <ref> <in1> <in2> [...]
//	concat <ref> <in1> <in2> [...]
//
// Each line defines a tensor reference; later lines refer to earlier ones.
func Parse(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	b := NewBuilder("parsed")
	refs := map[string]Ref{}
	named := false
	lineNo := 0

	get := func(name string) (Ref, error) {
		ref, ok := refs[name]
		if !ok {
			return Ref{}, fmt.Errorf("undefined tensor %q", name)
		}
		return ref, nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := fields[0]
		args := fields[1:]
		fail := func(format string, a ...any) error {
			return fmt.Errorf("dnn: line %d: %w", lineNo, fmt.Errorf(format, a...))
		}

		switch op {
		case "model":
			if len(args) != 1 {
				return nil, fail("model needs a name")
			}
			b = NewBuilder(args[0])
			named = true
			refs = map[string]Ref{}
		case "input":
			if len(args) != 4 {
				return nil, fail("input needs <ref> <h> <w> <c>")
			}
			h, err1 := strconv.Atoi(args[1])
			w, err2 := strconv.Atoi(args[2])
			c, err3 := strconv.Atoi(args[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fail("input dims must be integers")
			}
			refs[args[0]] = b.Input(h, w, c)
		case "conv":
			if len(args) < 2 {
				return nil, fail("conv needs <ref> <in> options")
			}
			in, err := get(args[1])
			if err != nil {
				return nil, fail("%w", err)
			}
			kv, err := parseKV(args[2:], map[string]int{"stride": 1, "pad": 0, "groups": 1})
			if err != nil {
				return nil, fail("%w", err)
			}
			if kv["k"] == 0 || kv["r"] == 0 {
				return nil, fail("conv needs k= and r= (s defaults to r)")
			}
			sdim := kv["s"]
			if sdim == 0 {
				sdim = kv["r"]
			}
			refs[args[0]] = b.GroupedConv(args[0], in, kv["k"], kv["r"], sdim, kv["stride"], kv["pad"], kv["groups"])
		case "pool":
			in, kv, err := oneInputKV(args, get, map[string]int{"stride": 1, "pad": 0})
			if err != nil {
				return nil, fail("%w", err)
			}
			if kv["r"] == 0 {
				return nil, fail("pool needs r=")
			}
			refs[args[0]] = b.Pool(args[0], in, kv["r"], kv["stride"], kv["pad"])
		case "gap":
			in, _, err := oneInputKV(args, get, nil)
			if err != nil {
				return nil, fail("%w", err)
			}
			refs[args[0]] = b.GlobalPool(args[0], in)
		case "fc", "proj":
			in, kv, err := oneInputKV(args, get, nil)
			if err != nil {
				return nil, fail("%w", err)
			}
			if kv["k"] == 0 {
				return nil, fail("%s needs k=", op)
			}
			if op == "fc" {
				refs[args[0]] = b.FC(args[0], in, kv["k"])
			} else {
				refs[args[0]] = b.Proj(args[0], in, kv["k"])
			}
		case "matmul", "matmulT":
			if len(args) != 3 {
				return nil, fail("%s needs <ref> <a> <b>", op)
			}
			a, err := get(args[1])
			if err != nil {
				return nil, fail("%w", err)
			}
			bb, err := get(args[2])
			if err != nil {
				return nil, fail("%w", err)
			}
			if op == "matmulT" {
				refs[args[0]] = b.MatMulT(args[0], a, bb)
			} else {
				refs[args[0]] = b.MatMul(args[0], a, bb)
			}
		case "softmax":
			in, _, err := oneInputKV(args, get, nil)
			if err != nil {
				return nil, fail("%w", err)
			}
			refs[args[0]] = b.Softmax(args[0], in)
		case "add", "concat":
			if len(args) < 3 {
				return nil, fail("%s needs <ref> and >=2 inputs", op)
			}
			ins := make([]Ref, 0, len(args)-1)
			for _, n := range args[1:] {
				in, err := get(n)
				if err != nil {
					return nil, fail("%w", err)
				}
				ins = append(ins, in)
			}
			if op == "add" {
				refs[args[0]] = b.Add(args[0], ins...)
			} else {
				refs[args[0]] = b.Concat(ins...)
			}
		default:
			return nil, fail("unknown op %q", op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dnn: reading description: %w", err)
	}
	if !named {
		return nil, fmt.Errorf("dnn: description has no 'model' line")
	}
	return b.Build()
}

// ParseString parses a model description from a string.
func ParseString(s string) (*Graph, error) {
	return Parse(strings.NewReader(s))
}

func oneInputKV(args []string, get func(string) (Ref, error), defaults map[string]int) (Ref, map[string]int, error) {
	if len(args) < 2 {
		return Ref{}, nil, fmt.Errorf("needs <ref> <in>")
	}
	in, err := get(args[1])
	if err != nil {
		return Ref{}, nil, err
	}
	kv, err := parseKV(args[2:], defaults)
	return in, kv, err
}

func parseKV(args []string, defaults map[string]int) (map[string]int, error) {
	kv := map[string]int{}
	for k, v := range defaults {
		kv[k] = v
	}
	for _, a := range args {
		key, val, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("malformed option %q (want key=value)", a)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("option %q: %w", a, err)
		}
		kv[key] = n
	}
	return kv, nil
}
