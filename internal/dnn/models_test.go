package dnn

import (
	"strings"
	"testing"
)

func TestModelZooValidates(t *testing.T) {
	for _, name := range ModelNames() {
		g, err := Model(name)
		if err != nil {
			t.Fatalf("Model(%q): %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.TotalMACs() <= 0 {
			t.Errorf("%s: no MACs", name)
		}
	}
}

func TestModelUnknown(t *testing.T) {
	if _, err := Model("nope"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestModelCaseInsensitive(t *testing.T) {
	if _, err := Model("ResNet50"); err != nil {
		t.Fatalf("case-insensitive lookup failed: %v", err)
	}
}

func TestResNet50Shape(t *testing.T) {
	g := ResNet50()
	// 1 stem + 16 blocks x 3 convs + 4 projection shortcuts + 1 fc = 54
	// weighted layers.
	weighted := 0
	for _, l := range g.Layers {
		if l.HasWeights {
			weighted++
		}
	}
	if weighted != 54 {
		t.Errorf("weighted layers = %d, want 54", weighted)
	}
	// ~4.1 GMACs per sample for standard ResNet-50.
	macs := g.TotalMACs()
	if macs < 3_500_000_000 || macs > 4_500_000_000 {
		t.Errorf("ResNet-50 MACs = %d, want ~4.1G", macs)
	}
	// ~25.5M parameters.
	w := g.TotalWeights()
	if w < 20_000_000 || w > 30_000_000 {
		t.Errorf("ResNet-50 weights = %d, want ~25M", w)
	}
}

func TestResNeXt50Grouped(t *testing.T) {
	g := ResNeXt50()
	grouped := 0
	for _, l := range g.Layers {
		if l.Kind == Conv && l.Groups == 32 {
			grouped++
		}
	}
	if grouped != 16 {
		t.Errorf("grouped convs = %d, want 16", grouped)
	}
	macs := g.TotalMACs()
	if macs < 3_500_000_000 || macs > 5_000_000_000 {
		t.Errorf("ResNeXt-50 MACs = %d, want ~4.2G", macs)
	}
}

func TestGoogLeNetShape(t *testing.T) {
	g := GoogLeNet()
	convs := 0
	for _, l := range g.Layers {
		if l.Kind == Conv {
			convs++
		}
	}
	// Stem (3) + 9 modules x 6 convs = 57.
	if convs != 57 {
		t.Errorf("convs = %d, want 57", convs)
	}
	macs := g.TotalMACs()
	if macs < 1_200_000_000 || macs > 2_200_000_000 {
		t.Errorf("GoogLeNet MACs = %d, want ~1.6G", macs)
	}
}

func TestTransformerShape(t *testing.T) {
	g := Transformer()
	// Per layer: 4 weighted projections + 2 FFN matmuls; plus embed + head.
	weighted := 0
	matmuls := 0
	for _, l := range g.Layers {
		if l.HasWeights {
			weighted++
		}
		if l.Kind == MatMul && !l.HasWeights {
			matmuls++
		}
	}
	if weighted != 6*6+2 {
		t.Errorf("weighted = %d, want 38", weighted)
	}
	if matmuls != 12 {
		t.Errorf("activation matmuls = %d, want 12", matmuls)
	}
	// Base encoder @ seq=128: ~2.4 GMACs.
	macs := g.TotalMACs()
	if macs < 1_500_000_000 || macs > 3_500_000_000 {
		t.Errorf("Transformer MACs = %d", macs)
	}
}

func TestTransformerLargeBigger(t *testing.T) {
	small, large := Transformer(), TransformerLarge()
	if large.TotalMACs() <= 2*small.TotalMACs() {
		t.Errorf("large (%d MACs) should be >2x base (%d)", large.TotalMACs(), small.TotalMACs())
	}
}

func TestPNASNetHasDepthwise(t *testing.T) {
	g := PNASNet()
	dw := 0
	for _, l := range g.Layers {
		if l.Kind == Conv && l.Groups > 1 && l.Groups == l.IC {
			dw++
		}
	}
	if dw == 0 {
		t.Error("PNASNet should contain depthwise convolutions")
	}
}

func TestInceptionResNetResiduals(t *testing.T) {
	g := InceptionResNetV1()
	adds := 0
	for _, l := range g.Layers {
		if l.Kind == Eltwise {
			adds++
		}
	}
	if adds != 9 { // 3 A + 4 B + 2 C blocks
		t.Errorf("residual adds = %d, want 9", adds)
	}
}

func TestConcatRewiring(t *testing.T) {
	g := GoogLeNet()
	// The layer after the first inception module consumes four producers
	// through channel offsets; offsets must tile the input channel space.
	for _, l := range g.Layers {
		if len(l.Inputs) < 3 || l.Kind == Eltwise {
			continue
		}
		total := 0
		for _, in := range l.Inputs {
			src := g.Layer(in.Src)
			if src == nil {
				t.Fatalf("%s: missing producer %d", l.Name, in.Src)
			}
			if in.DstOff != total {
				t.Fatalf("%s: edge offset %d, want %d", l.Name, in.DstOff, total)
			}
			total += src.OK
		}
		if total != l.IC {
			t.Fatalf("%s: concat channels %d != IC %d", l.Name, total, l.IC)
		}
		return // one checked module is enough
	}
	t.Fatal("no concat consumer found in GoogLeNet")
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	in := b.Input(8, 8, 3)
	b.GroupedConv("g", in, 16, 3, 3, 1, 1, 5) // 5 does not divide 3
	if _, err := b.Build(); err == nil {
		t.Error("expected group divisibility error")
	}

	b2 := NewBuilder("bad2")
	in2 := b2.Input(8, 8, 4)
	x := b2.Conv("c", in2, 8, 3, 3, 1, 1)
	y := b2.Conv("d", in2, 16, 3, 3, 1, 1)
	b2.Add("a", x, y) // channel mismatch
	if _, err := b2.Build(); err == nil {
		t.Error("expected shape mismatch error")
	}

	b3 := NewBuilder("bad3")
	in3 := b3.Input(4, 4, 4)
	b3.Pool("p", in3, 9, 1, 0) // window larger than input
	if _, err := b3.Build(); err == nil {
		t.Error("expected non-positive output error")
	}
}

func TestGraphValidateCatchesCorruption(t *testing.T) {
	g := TinyCNN()
	g.Layers[2].Inputs[0].Src = 5 // forward edge
	if err := g.Validate(); err == nil {
		t.Error("expected topological-order error")
	}
}

// TestModelRecoversConstructorPanic: a zoo constructor that panics (topology
// bug, bad registration) must fail the one Model call, not the process.
func TestModelRecoversConstructorPanic(t *testing.T) {
	modelZoo["__broken__"] = func() *Graph { panic("topology bug") }
	defer delete(modelZoo, "__broken__")
	g, err := Model("__broken__")
	if g != nil || err == nil {
		t.Fatalf("Model = (%v, %v), want (nil, error)", g, err)
	}
	for _, want := range []string{"__broken__", "panicked", "topology bug"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
