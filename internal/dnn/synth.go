package dnn

import (
	"fmt"
	"math/rand"
)

// SynthParams bounds the random graph generator.
type SynthParams struct {
	// Layers is the number of compute layers to generate (>= 2).
	Layers int
	// MaxChannels caps channel widths (rounded to multiples of 8).
	MaxChannels int
	// Spatial is the input height/width.
	Spatial int
	// ResidualProb is the chance a layer gets a residual partner,
	// BranchProb the chance of starting a two-branch concat section.
	ResidualProb, BranchProb float64
}

// DefaultSynthParams returns moderate generator bounds.
func DefaultSynthParams() SynthParams {
	return SynthParams{
		Layers:       12,
		MaxChannels:  64,
		Spatial:      32,
		ResidualProb: 0.3,
		BranchProb:   0.3,
	}
}

// Synth generates a random but always-valid CNN-style DAG: conv/pool
// chains, residual adds between same-shape tensors, and two-branch concat
// sections, exercising the analyzer's halo, channel-offset and coupling
// logic. The same seed yields the same graph.
func Synth(seed int64, p SynthParams) *Graph {
	if p.Layers < 2 {
		p.Layers = 2
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(fmt.Sprintf("synth-%d", seed))
	cur := b.Input(p.Spatial, p.Spatial, 8)

	channels := func() int {
		c := 8 * (1 + rng.Intn(p.MaxChannels/8))
		return c
	}
	var sameShape Ref
	haveSkip := false
	emitted := 0
	name := func(kind string) string {
		emitted++
		return fmt.Sprintf("%s%d", kind, emitted)
	}

	for emitted < p.Layers {
		switch {
		case haveSkip && rng.Float64() < p.ResidualProb &&
			sameShape.Height() == cur.Height() && sameShape.Channels() == cur.Channels():
			cur = b.Add(name("add"), cur, sameShape)
			haveSkip = false
		case rng.Float64() < p.BranchProb && p.Layers-emitted >= 3:
			k1, k2 := channels(), channels()
			left := b.Conv(name("bl"), cur, k1, 1, 1, 1, 0)
			right := b.Conv(name("br"), cur, k2, 3, 3, 1, 1)
			cur = b.Concat(left, right)
			// A fuse conv keeps downstream shapes simple.
			cur = b.Conv(name("fuse"), cur, channels(), 1, 1, 1, 0)
		case rng.Float64() < 0.2 && cur.Height() >= 8:
			cur = b.Pool(name("pool"), cur, 2, 2, 0)
		default:
			r := []int{1, 3, 5}[rng.Intn(3)]
			stride := 1
			if rng.Float64() < 0.15 && cur.Height() >= 8 {
				stride = 2
			}
			k := channels()
			gr := 1
			if r == 3 && rng.Float64() < 0.2 {
				// depthwise block
				gr = cur.Channels()
				k = cur.Channels()
			}
			cur = b.GroupedConv(name("conv"), cur, k, r, r, stride, r/2, gr)
			if rng.Float64() < 0.5 {
				sameShape = cur
				haveSkip = true
			}
		}
	}
	cur = b.GlobalPool("gap", cur)
	b.FC("head", cur, 10)
	return b.MustBuild()
}
