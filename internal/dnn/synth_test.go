package dnn

import "testing"

func TestSynthAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		g := Synth(seed, DefaultSynthParams())
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(g.Layers) < 4 {
			t.Fatalf("seed %d: only %d layers", seed, len(g.Layers))
		}
	}
}

func TestSynthDeterministic(t *testing.T) {
	a := Synth(42, DefaultSynthParams())
	b := Synth(42, DefaultSynthParams())
	if len(a.Layers) != len(b.Layers) || a.TotalMACs() != b.TotalMACs() {
		t.Fatal("same seed produced different graphs")
	}
	c := Synth(43, DefaultSynthParams())
	if a.TotalMACs() == c.TotalMACs() && len(a.Layers) == len(c.Layers) && a.Depth() == c.Depth() {
		t.Log("seeds 42/43 coincide on all summary stats (unlikely but not fatal)")
	}
}

func TestSynthExercisesVariety(t *testing.T) {
	kinds := map[Kind]bool{}
	groups := false
	multiEdge := false
	for seed := int64(0); seed < 40; seed++ {
		g := Synth(seed, DefaultSynthParams())
		for _, l := range g.Layers {
			kinds[l.Kind] = true
			if l.Groups > 1 {
				groups = true
			}
			if len(l.Inputs) > 1 {
				multiEdge = true
			}
		}
	}
	for _, k := range []Kind{Conv, Pool, Eltwise, FC} {
		if !kinds[k] {
			t.Errorf("40 seeds never produced a %v layer", k)
		}
	}
	if !groups {
		t.Error("no depthwise conv generated")
	}
	if !multiEdge {
		t.Error("no multi-input layer generated")
	}
}

func TestSynthRespectsLayerBudget(t *testing.T) {
	p := DefaultSynthParams()
	p.Layers = 30
	g := Synth(7, p)
	// Budget + gap + head, with small overshoot from branch sections.
	if len(g.Layers) < 30 || len(g.Layers) > 40 {
		t.Errorf("layers = %d, want ~30-40", len(g.Layers))
	}
}
