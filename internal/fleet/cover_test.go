package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gemini/internal/dse"
)

// postRaw posts raw bytes (valid or not) and returns the status code.
func postRaw(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestWireValidate drives every wire message's Validate through its error
// branches directly — the handler-path tests only see valid shapes.
func TestWireValidate(t *testing.T) {
	spec := parseSpec(t, testSpecJSON("wv"))
	shardSpec := spec
	shardSpec.Shard = &dse.ShardSpec{Index: 0, Count: 2}
	okLease := Lease{SweepID: "s", LeaseID: "l", Shard: 0, Shards: 2, Spec: shardSpec, TTLMS: 1000}
	if err := okLease.Validate(); err != nil {
		t.Fatalf("valid lease rejected: %v", err)
	}

	bad := []struct {
		name string
		v    validatable
	}{
		{"lease no ids", &Lease{Shards: 1, TTLMS: 1}},
		{"lease shard range", &Lease{SweepID: "s", LeaseID: "l", Shard: 3, Shards: 2, TTLMS: 1}},
		{"lease ttl", &Lease{SweepID: "s", LeaseID: "l", Shards: 1, TTLMS: 0}},
		{"lease bad incumbent", &Lease{SweepID: "s", LeaseID: "l", Shards: 1, TTLMS: 1,
			Incumbent: IncumbentState{Found: true, Objective: math.Inf(1)}}},
		{"lease bad spec", &Lease{SweepID: "s", LeaseID: "l", Shards: 1, TTLMS: 1}},
		{"lease shard mismatch", &Lease{SweepID: "s", LeaseID: "l", Shard: 1, Shards: 2, Spec: shardSpec, TTLMS: 1}},
		{"lease request", &LeaseRequest{}},
		{"renew request", &RenewRequest{SweepID: "s"}},
		{"renew response ttl", &RenewResponse{TTLMS: 0}},
		{"renew response incumbent", &RenewResponse{TTLMS: 1,
			Incumbent: IncumbentState{Found: true, Objective: math.NaN()}}},
		{"incumbent update id", &IncumbentUpdate{Objective: 1}},
		{"incumbent update objective", &IncumbentUpdate{SweepID: "s", Objective: math.Inf(-1)}},
		{"incumbent state", &IncumbentState{Found: true, Objective: math.NaN()}},
		{"shard stats", &ShardStats{SAIterations: -1}},
		{"shard best", &ShardBest{Objective: math.Inf(1)}},
		{"upload ids", &CheckpointUpload{Checkpoint: []byte("{}")}},
		{"upload no bytes", &CheckpointUpload{SweepID: "s", LeaseID: "l"}},
		{"upload bad stats", &CheckpointUpload{SweepID: "s", LeaseID: "l", Checkpoint: []byte("{}"),
			Stats: &ShardStats{Cells: -2}}},
		{"upload bad best", &CheckpointUpload{SweepID: "s", LeaseID: "l", Checkpoint: []byte("{}"),
			Best: &ShardBest{Objective: math.NaN()}}},
		{"checkpoint response", &CheckpointResponse{
			Incumbent: IncumbentState{Found: true, Objective: math.Inf(1)}}},
	}
	for _, tc := range bad {
		if err := tc.v.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.v)
		}
	}
}

// TestCoordinatorSurface covers the read-only endpoints, submit rejections,
// id minting and the health snapshot — no real sweeps run here.
func TestCoordinatorSurface(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{}) // default TTL, clock, no logger
	srv := httptest.NewServer(coord)
	defer srv.Close()

	// Empty list.
	resp, err := http.Get(srv.URL + "/sweeps")
	if err != nil {
		t.Fatalf("GET /sweeps: %v", err)
	}
	var list []SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	resp.Body.Close()
	if len(list) != 0 {
		t.Fatalf("fresh coordinator lists %d sweeps", len(list))
	}

	// Submit rejections.
	if code := postRaw(t, srv.URL+"/sweeps", "{nope"); code != http.StatusBadRequest {
		t.Fatalf("bad submit JSON answered %d", code)
	}
	spec := parseSpec(t, testSpecJSON("ignored"))
	spec.ID = "bad id!"
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: spec, Shards: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad sweep id answered %d", code)
	}
	invalid := spec
	invalid.ID = ""
	invalid.Models = nil
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: invalid, Shards: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid spec answered %d", code)
	}
	badModel := spec
	badModel.ID = ""
	badModel.Models = []string{"no-such-model"}
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: badModel, Shards: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown model answered %d", code)
	}

	// A submit with no id mints one.
	minted := parseSpec(t, testSpecJSON("ignored"))
	minted.ID = ""
	var st SweepStatus
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: minted, Shards: 2}, &st); code != http.StatusCreated {
		t.Fatalf("id-less submit answered %d", code)
	}
	if !strings.HasPrefix(st.ID, "fleet-") {
		t.Fatalf("minted id %q does not look generated", st.ID)
	}

	// List and status see it; unknown status is 404.
	resp, err = http.Get(srv.URL + "/sweeps")
	if err != nil {
		t.Fatalf("GET /sweeps: %v", err)
	}
	list = nil
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v, want the submitted sweep", list)
	}
	resp, err = http.Get(srv.URL + "/sweeps/" + st.ID)
	if err != nil {
		t.Fatalf("GET /sweeps/%s: %v", st.ID, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status answered %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/sweeps/none")
	if err != nil {
		t.Fatalf("GET /sweeps/none: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown status answered %d", resp.StatusCode)
	}

	// Health before and after a lease.
	h := coord.Health()
	if h.Sweeps != 1 || h.Active != 1 || h.ShardsPending != 2 {
		t.Fatalf("health = %+v", h)
	}
	if code := postRaw(t, srv.URL+"/lease", "{nope"); code != http.StatusBadRequest {
		t.Fatalf("bad lease JSON answered %d", code)
	}
	if code := postJSON(t, srv.URL+"/lease", LeaseRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("nameless lease request answered %d", code)
	}
	var lease Lease
	if code := postJSON(t, srv.URL+"/lease", LeaseRequest{Worker: "wx"}, &lease); code != http.StatusOK {
		t.Fatalf("lease answered %d", code)
	}
	h = coord.Health()
	if h.ShardsLeased != 1 || len(h.Workers) != 1 || h.Workers[0] != "wx" {
		t.Fatalf("health after lease = %+v", h)
	}

	// Renew and incumbent rejections.
	if code := postRaw(t, srv.URL+"/renew", "{nope"); code != http.StatusBadRequest {
		t.Fatalf("bad renew JSON answered %d", code)
	}
	if code := postJSON(t, srv.URL+"/renew", RenewRequest{SweepID: st.ID}, nil); code != http.StatusBadRequest {
		t.Fatalf("lease-less renew answered %d", code)
	}
	if code := postJSON(t, srv.URL+"/renew", RenewRequest{SweepID: "none", LeaseID: "l"}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown-sweep renew answered %d", code)
	}
	if code := postJSON(t, srv.URL+"/renew", RenewRequest{SweepID: st.ID, LeaseID: "wrong"}, nil); code != http.StatusGone {
		t.Fatalf("wrong-lease renew answered %d", code)
	}
	if code := postRaw(t, srv.URL+"/incumbent", "{nope"); code != http.StatusBadRequest {
		t.Fatalf("bad incumbent JSON answered %d", code)
	}
	if code := postRaw(t, srv.URL+"/incumbent", `{"sweep_id":"s","objective":1e999}`); code != http.StatusBadRequest {
		t.Fatalf("non-finite incumbent answered %d", code)
	}

	// Checkpoint rejections: bad JSON, invalid envelope, unknown sweep, and
	// corrupt checkpoint bytes on a live lease.
	if code := postRaw(t, srv.URL+"/checkpoint", "{nope"); code != http.StatusBadRequest {
		t.Fatalf("bad checkpoint JSON answered %d", code)
	}
	if code := postJSON(t, srv.URL+"/checkpoint", CheckpointUpload{SweepID: st.ID}, nil); code != http.StatusBadRequest {
		t.Fatalf("byte-less upload answered %d", code)
	}
	if code := postJSON(t, srv.URL+"/checkpoint", CheckpointUpload{
		SweepID: "none", LeaseID: "l", Checkpoint: []byte(`{}`),
	}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown-sweep upload answered %d", code)
	}
	if code := postJSON(t, srv.URL+"/checkpoint", CheckpointUpload{
		SweepID: st.ID, LeaseID: lease.LeaseID, Checkpoint: []byte(`{"version":999}`),
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("corrupt upload answered %d", code)
	}

	// Checkpoint accessor on an unknown sweep.
	if _, ok := coord.Checkpoint("none"); ok {
		t.Fatalf("Checkpoint found an unknown sweep")
	}
}

// TestSubmitGuards covers the grid cap and the corrupt-prior-checkpoint
// conflict.
func TestSubmitGuards(t *testing.T) {
	spec := parseSpec(t, testSpecJSON("guard"))

	capped := NewCoordinator(CoordinatorConfig{MaxCells: 1})
	srv := httptest.NewServer(capped)
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: spec, Shards: 1}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("over-cap submit answered %d, want 422", code)
	}
	srv.Close()

	corrupt := NewCoordinator(CoordinatorConfig{
		LoadCheckpoint: func(id string) []byte { return []byte("not a checkpoint") },
	})
	srv = httptest.NewServer(corrupt)
	defer srv.Close()
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: spec, Shards: 1}, nil); code != http.StatusConflict {
		t.Fatalf("corrupt-prior submit answered %d, want 409", code)
	}
}

// TestSingleShardDrain drives one shard by hand through the Complete upload
// so the done transition, the stats fold and the Persist hook are covered
// without a worker loop.
func TestSingleShardDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (tiny) sweep")
	}
	spec := parseSpec(t, testSpecJSON("drain"))
	var persisted []byte
	coord := NewCoordinator(CoordinatorConfig{
		Logf:    t.Logf,
		Persist: func(id string, data []byte) { persisted = data },
	})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: spec, Shards: 1}, nil); code != http.StatusCreated {
		t.Fatalf("submit answered %d", code)
	}
	var lease Lease
	if code := postJSON(t, srv.URL+"/lease", LeaseRequest{Worker: "manual"}, &lease); code != http.StatusOK {
		t.Fatalf("lease answered %d", code)
	}
	cands, err := lease.Spec.Candidates()
	if err != nil {
		t.Fatalf("candidates: %v", err)
	}
	graphs, err := lease.Spec.Graphs()
	if err != nil {
		t.Fatalf("graphs: %v", err)
	}
	opt := lease.Spec.Options()
	opt.SAIterations = 10
	ses := dse.NewSession()
	results, stats, err := ses.RunContext(context.Background(), cands, graphs, opt)
	if err != nil {
		t.Fatalf("manual shard run: %v", err)
	}
	var buf bytes.Buffer
	if err := ses.SaveCheckpoint(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	up := CheckpointUpload{
		SweepID:  lease.SweepID,
		LeaseID:  lease.LeaseID,
		Worker:   "manual",
		Complete: true,
		Stats: &ShardStats{
			Candidates:   len(cands),
			Cells:        len(cands) * len(graphs),
			SAIterations: stats.SAIterations,
			ResumedCells: stats.ResumedCells,
		},
		Checkpoint: buf.Bytes(),
	}
	if best := dse.Best(results); best != nil && best.Feasible {
		up.Best = &ShardBest{Candidate: best.Cfg.Name, Objective: best.Obj}
	}
	var cresp CheckpointResponse
	if code := postJSON(t, srv.URL+"/checkpoint", up, &cresp); code != http.StatusOK {
		t.Fatalf("complete upload answered %d", code)
	}
	if !cresp.SweepDone {
		t.Fatalf("single-shard sweep not done after its complete upload")
	}
	if len(persisted) == 0 {
		t.Fatalf("Persist hook never received the canonical checkpoint")
	}
	got, _ := coord.Status("drain")
	if got.State != "done" || got.Stats.SAIterations != stats.SAIterations {
		t.Fatalf("status after drain = %+v", got)
	}
	ck, ok := coord.Checkpoint("drain")
	if !ok || !bytes.Equal(ck, persisted) {
		t.Fatalf("accessor checkpoint differs from persisted canonical bytes")
	}
}

// TestWorkerConfigAndErrors covers the worker-side defaults and failure
// paths that the happy-path tests never hit.
func TestWorkerConfigAndErrors(t *testing.T) {
	var cfg WorkerConfig
	if got := cfg.name(); !strings.HasPrefix(got, "worker-") {
		t.Fatalf("default worker name = %q", got)
	}
	cfg.Name = "n"
	if cfg.name() != "n" {
		t.Fatalf("explicit name ignored")
	}
	if cfg.poll() != 500*time.Millisecond {
		t.Fatalf("default poll = %v", cfg.poll())
	}
	cfg.Poll = time.Second
	if cfg.poll() != time.Second {
		t.Fatalf("explicit poll ignored")
	}

	if err := RunWorker(context.Background(), WorkerConfig{}); err == nil {
		t.Fatalf("worker without a coordinator URL did not fail")
	}

	// A coordinator that always errors: the worker retries through its poll
	// sleep until the context dies.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer bad.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	err := RunWorker(ctx, WorkerConfig{Coordinator: bad.URL, Name: "e", Poll: 10 * time.Millisecond, Logf: t.Logf})
	if err != context.DeadlineExceeded {
		t.Fatalf("erroring coordinator: worker returned %v, want context deadline", err)
	}

	// An already-dead context returns immediately.
	dead, kill := context.WithCancel(context.Background())
	kill()
	if err := RunWorker(dead, WorkerConfig{Coordinator: bad.URL}); err != context.Canceled {
		t.Fatalf("dead context: worker returned %v", err)
	}

	// sleepCtx wakes on cancellation.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go cancel2()
	if sleepCtx(ctx2, time.Minute) {
		<-ctx2.Done() // raced the cancel: the full sleep must not have elapsed
	}

	// client.post surfaces transport errors and non-2xx statuses.
	cl := &client{base: bad.URL, hc: bad.Client(), worker: "e"}
	if _, err := cl.lease(context.Background()); err == nil {
		t.Fatalf("lease against erroring server did not fail")
	}
	closed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	closed.Close()
	cl = &client{base: closed.URL, hc: http.DefaultClient, worker: "e"}
	if _, err := cl.post(context.Background(), "/lease", LeaseRequest{Worker: "e"}, nil); err == nil {
		t.Fatalf("post against closed server did not fail")
	}
}

// TestRunWorkerIdlePoll covers the non-ExitWhenIdle 204 path: the worker
// sleeps its poll interval and asks again until canceled.
func TestRunWorkerIdlePoll(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	polls := make(chan struct{}, 16)
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/lease" {
			select {
			case polls <- struct{}{}:
			default:
			}
		}
		coord.ServeHTTP(w, r)
	}))
	defer counting.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerConfig{Coordinator: counting.URL, Name: "idle", Poll: 5 * time.Millisecond})
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-polls:
		case <-time.After(5 * time.Second):
			t.Fatalf("worker stopped polling after %d polls", i)
		}
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("idle worker returned %v", err)
	}
}

var _ = fmt.Sprintf // keep fmt imported if assertions above change
