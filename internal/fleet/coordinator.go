// Package fleet distributes one sweep across worker processes: a
// coordinator partitions a sweep spec's candidate grid into shard leases,
// hands them to workers over HTTP, fans every incumbent improvement back
// out so all shards prune against the fleet-wide best, and merges worker
// checkpoints into the sweep's canonical arch-fingerprint-keyed checkpoint.
// Worker death is handled by lease expiry: an orphaned shard goes back in
// the pending pool and its next holder starts from the merged checkpoint,
// so already-settled cells restore instead of recompute.
//
// The coordinator is an http.Handler with its own routes (the sweep
// service mounts it under /fleet/); it never runs mapping work itself —
// its dse.Session exists purely as the merge vehicle, because checkpoint
// load is a merge by construction.
//
//gemini:deterministic-output
//gemini:documented
package fleet

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"sync"
	"time"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/dse"
)

// CoordinatorConfig configures a fleet coordinator.
type CoordinatorConfig struct {
	// LeaseTTL is how long a shard lease lives without renewal before the
	// shard is reissued to another worker (default 10s). Workers renew at a
	// third of the TTL.
	LeaseTTL time.Duration
	// MaxCells caps a submitted sweep's (candidate × model) grid; 0 means
	// no cap. The sweep service forwards its own cap here.
	MaxCells int
	// Logf receives coordinator logs (default: discard).
	Logf func(format string, args ...any)
	// Now supplies the clock leases are granted and expired against
	// (default time.Now). Tests inject a fake clock to drive expiry
	// deterministically.
	Now func() time.Time
	// Persist, when set, receives the canonical merged checkpoint bytes
	// each time a sweep completes; the sweep service points it at the same
	// DataDir files /sweep checkpoints use.
	Persist func(sweepID string, checkpoint []byte)
	// LoadCheckpoint, when set, is consulted at submit time for a prior
	// checkpoint of the sweep id (nil means none); the sweep service wires
	// it to DataDir so a re-submitted fleet sweep resumes its settled cells.
	LoadCheckpoint func(sweepID string) []byte
}

func (c *CoordinatorConfig) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 10 * time.Second
}

func (c *CoordinatorConfig) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Coordinator owns the fleet control plane: sweep submission, shard lease
// management, incumbent fan-out and checkpoint merging. It is an
// http.Handler; see the route patterns in NewCoordinator.
type Coordinator struct {
	cfg CoordinatorConfig
	mux *http.ServeMux

	mu       sync.Mutex
	sweeps   map[string]*fleetSweep
	order    []string // submission order; every map access walks this
	leaseSeq int
}

type shardPhase int

const (
	shardPending shardPhase = iota
	shardLeased
	shardDone
)

// shardState tracks one modulo-slice of a sweep's candidate grid.
type shardState struct {
	phase      shardPhase
	leaseID    string
	worker     string
	expires    time.Time
	candidates int
	// settledAtLease is how many of the shard's cells the merged checkpoint
	// already held when the current lease was granted; the holder's
	// reported ResumedCells must reach it or the difference is recomputed
	// work, surfaced in SweepAggregate.RecomputedSettledCells.
	settledAtLease int
}

// fleetSweep is the coordinator's record of one submitted sweep.
type fleetSweep struct {
	id     string
	spec   dse.Spec
	opt    dse.Options
	cands  []arch.Config
	graphs []*dnn.Graph
	shards []shardState
	// ses is the merge vehicle: LoadCheckpoint merges worker uploads,
	// SaveCheckpoint emits the canonical deterministic bytes.
	ses   *dse.Session
	inc   IncumbentState
	stats SweepAggregate
	done  bool
}

// SweepAggregate is the coordinator's fleet-wide accounting for one sweep,
// folded from completed shards' ShardStats.
type SweepAggregate struct {
	// SAIterations sums annealing iterations across completed shards.
	SAIterations int `json:"sa_iterations"`
	// ResumedCells sums cells shards restored from lease checkpoints.
	ResumedCells int `json:"resumed_cells"`
	// PrunedCandidates sums candidates shards' bound gates skipped.
	PrunedCandidates int `json:"pruned_candidates"`
	// RecomputedSettledCells counts cells that were settled in the merged
	// checkpoint at lease time but recomputed anyway by the lease holder;
	// the re-shard machinery exists to keep this zero.
	RecomputedSettledCells int `json:"recomputed_settled_cells"`
	// ExpiredLeases counts leases that lapsed and sent their shard back to
	// the pending pool.
	ExpiredLeases int `json:"expired_leases"`
	// Uploads counts checkpoint uploads merged (partial and complete).
	Uploads int `json:"uploads"`
}

// SweepStatus is the GET /sweeps/{id} body.
type SweepStatus struct {
	// ID names the fleet sweep.
	ID string `json:"id"`
	// State is "running" until every shard completes, then "done".
	State string `json:"state"`
	// Shards is the sweep's total shard count.
	Shards int `json:"shards"`
	// ShardsPending, ShardsLeased and ShardsDone partition the shards.
	ShardsPending int `json:"shards_pending"`
	// ShardsLeased is the number of shards currently out on lease.
	ShardsLeased int `json:"shards_leased"`
	// ShardsDone is the number of completed shards.
	ShardsDone int `json:"shards_done"`
	// Candidates and Cells size the full (unsharded) grid.
	Candidates int `json:"candidates"`
	// Cells is the (candidate × model) grid size.
	Cells int `json:"cells"`
	// CheckpointCells is how many cells the merged checkpoint holds.
	CheckpointCells int `json:"checkpoint_cells"`
	// Incumbent is the fleet-wide best achieved feasible objective.
	Incumbent IncumbentState `json:"incumbent"`
	// Stats is the fleet-wide accounting.
	Stats SweepAggregate `json:"stats"`
	// Leases lists live leases in shard order.
	Leases []LeaseStatus `json:"leases,omitempty"`
}

// LeaseStatus describes one live lease in a SweepStatus.
type LeaseStatus struct {
	// Shard is the leased shard's index.
	Shard int `json:"shard"`
	// LeaseID names the grant.
	LeaseID string `json:"lease_id"`
	// Worker holds the lease.
	Worker string `json:"worker"`
	// ExpiresInMS is time to expiry at snapshot time.
	ExpiresInMS int `json:"expires_in_ms"`
}

// Health is the coordinator block embedded in the sweep service's /healthz.
type Health struct {
	// Sweeps counts submitted fleet sweeps.
	Sweeps int `json:"sweeps"`
	// Active counts sweeps with shards still pending or leased.
	Active int `json:"active"`
	// ShardsPending, ShardsLeased and ShardsDone aggregate across sweeps.
	ShardsPending int `json:"shards_pending"`
	// ShardsLeased counts shards currently out on lease.
	ShardsLeased int `json:"shards_leased"`
	// ShardsDone counts completed shards.
	ShardsDone int `json:"shards_done"`
	// ExpiredLeases counts lease expiries across all sweeps.
	ExpiredLeases int `json:"expired_leases"`
	// Workers lists workers currently holding leases, sorted.
	Workers []string `json:"workers,omitempty"`
}

// fleetIDPattern mirrors the sweep service's client-supplied id shape.
var fleetIDPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// NewCoordinator builds a coordinator serving the fleet control plane:
//
//	POST /sweeps        submit a sweep for fleet execution
//	GET  /sweeps        list fleet sweeps
//	GET  /sweeps/{id}   one sweep's status
//	POST /lease         worker: fetch a shard lease (204 when none pending)
//	POST /renew         worker: keep a lease alive, pull the incumbent
//	POST /incumbent     worker: push an incumbent improvement
//	POST /checkpoint    worker: upload a (partial or final) shard checkpoint
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{
		cfg:    cfg,
		sweeps: make(map[string]*fleetSweep),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweeps", c.handleSubmit)
	mux.HandleFunc("GET /sweeps", c.handleList)
	mux.HandleFunc("GET /sweeps/{id}", c.handleStatus)
	mux.HandleFunc("POST /lease", c.handleLease)
	mux.HandleFunc("POST /renew", c.handleRenew)
	mux.HandleFunc("POST /incumbent", c.handleIncumbent)
	mux.HandleFunc("POST /checkpoint", c.handleCheckpoint)
	c.mux = mux
	return c
}

// ServeHTTP dispatches to the coordinator's routes.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// reapLocked expires lapsed leases, returning their shards to the pending
// pool. Called with c.mu held, on every handler entry, so expiry needs no
// background timer: liveness only matters when someone is asking for work.
func (c *Coordinator) reapLocked(now time.Time) {
	for _, id := range c.order {
		fs := c.sweeps[id]
		for i := range fs.shards {
			sh := &fs.shards[i]
			if sh.phase == shardLeased && now.After(sh.expires) {
				c.logf("fleet: sweep %s shard %d lease %s (worker %s) expired; shard back to pending",
					fs.id, i, sh.leaseID, sh.worker)
				sh.phase = shardPending
				sh.leaseID = ""
				sh.worker = ""
				fs.stats.ExpiredLeases++
			}
		}
	}
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad submit body: %v", err)
		return
	}
	spec := req.Spec
	if spec.Shard != nil {
		writeError(w, http.StatusBadRequest, "spec carries a shard slice; sharding is the coordinator's job")
		return
	}
	if spec.ID == "" {
		spec.ID = newFleetID()
	} else if !fleetIDPattern.MatchString(spec.ID) {
		writeError(w, http.StatusBadRequest, "sweep id %q: want %s", spec.ID, fleetIDPattern)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	cands, err := spec.Candidates()
	if err != nil {
		writeError(w, http.StatusBadRequest, "candidates: %v", err)
		return
	}
	graphs, err := spec.Graphs()
	if err != nil {
		writeError(w, http.StatusBadRequest, "graphs: %v", err)
		return
	}
	if c.cfg.MaxCells > 0 && len(cands)*len(graphs) > c.cfg.MaxCells {
		writeError(w, http.StatusUnprocessableEntity, "sweep grid %d cells exceeds server limit %d",
			len(cands)*len(graphs), c.cfg.MaxCells)
		return
	}
	shards := req.Shards
	if shards < 1 {
		writeError(w, http.StatusBadRequest, "shards = %d, want >= 1", shards)
		return
	}
	if shards > len(cands) {
		shards = len(cands)
	}

	fs := &fleetSweep{
		id:     spec.ID,
		spec:   spec,
		opt:    spec.Options(),
		cands:  cands,
		graphs: graphs,
		shards: make([]shardState, shards),
		ses:    dse.NewSession(),
	}
	for i := range fs.shards {
		// Shard i keeps candidates at enumeration indices ≡ i (mod shards).
		fs.shards[i].candidates = (len(cands) - i + shards - 1) / shards
	}
	if c.cfg.LoadCheckpoint != nil {
		if prior := c.cfg.LoadCheckpoint(spec.ID); len(prior) > 0 {
			if err := fs.ses.LoadCheckpoint(bytes.NewReader(prior)); err != nil {
				writeError(w, http.StatusConflict, "prior checkpoint for %q: %v", spec.ID, err)
				return
			}
		}
	}

	c.mu.Lock()
	if _, dup := c.sweeps[fs.id]; dup {
		c.mu.Unlock()
		writeError(w, http.StatusConflict, "fleet sweep %q already exists", fs.id)
		return
	}
	c.sweeps[fs.id] = fs
	c.order = append(c.order, fs.id)
	st := c.statusLocked(fs)
	c.mu.Unlock()

	c.logf("fleet: sweep %s submitted: %d candidates x %d models in %d shards (%d cells resumed)",
		fs.id, len(cands), len(graphs), shards, fs.ses.CheckpointCells())
	writeJSON(w, http.StatusCreated, st)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.reapLocked(c.cfg.now())
	list := make([]SweepStatus, 0, len(c.order))
	for _, id := range c.order {
		list = append(list, c.statusLocked(c.sweeps[id]))
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	fs, ok := c.sweeps[id]
	if !ok {
		c.mu.Unlock()
		writeError(w, http.StatusNotFound, "no fleet sweep %q", id)
		return
	}
	c.reapLocked(c.cfg.now())
	st := c.statusLocked(fs)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// statusLocked snapshots a sweep's status. Called with c.mu held.
func (c *Coordinator) statusLocked(fs *fleetSweep) SweepStatus {
	now := c.cfg.now()
	st := SweepStatus{
		ID:              fs.id,
		State:           "running",
		Shards:          len(fs.shards),
		Candidates:      len(fs.cands),
		Cells:           len(fs.cands) * len(fs.graphs),
		CheckpointCells: fs.ses.CheckpointCells(),
		Incumbent:       fs.inc,
		Stats:           fs.stats,
	}
	if fs.done {
		st.State = "done"
	}
	for i := range fs.shards {
		sh := &fs.shards[i]
		switch sh.phase {
		case shardPending:
			st.ShardsPending++
		case shardLeased:
			st.ShardsLeased++
			st.Leases = append(st.Leases, LeaseStatus{
				Shard:       i,
				LeaseID:     sh.leaseID,
				Worker:      sh.worker,
				ExpiresInMS: int(sh.expires.Sub(now).Milliseconds()),
			})
		case shardDone:
			st.ShardsDone++
		}
	}
	return st
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad lease request: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	c.mu.Lock()
	now := c.cfg.now()
	c.reapLocked(now)
	for _, id := range c.order {
		fs := c.sweeps[id]
		if fs.done {
			continue
		}
		for i := range fs.shards {
			sh := &fs.shards[i]
			if sh.phase != shardPending {
				continue
			}
			lease, err := c.grantLocked(fs, i, req.Worker, now)
			if err != nil {
				c.mu.Unlock()
				writeError(w, http.StatusInternalServerError, "granting shard: %v", err)
				return
			}
			settled, cells := sh.settledAtLease, sh.candidates*len(fs.graphs)
			c.mu.Unlock()
			c.logf("fleet: sweep %s shard %d/%d leased to %s as %s (%d/%d shard cells settled)",
				lease.SweepID, lease.Shard, lease.Shards, req.Worker, lease.LeaseID,
				settled, cells)
			writeJSON(w, http.StatusOK, lease)
			return
		}
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// grantLocked leases shard i of fs to worker. Called with c.mu held.
func (c *Coordinator) grantLocked(fs *fleetSweep, i int, worker string, now time.Time) (*Lease, error) {
	sh := &fs.shards[i]
	sp := fs.spec
	sp.Shard = &dse.ShardSpec{Index: i, Count: len(fs.shards)}
	sp.ID = fmt.Sprintf("%s.s%d", fs.id, i)

	shardCands := make([]arch.Config, 0, sh.candidates)
	for j := i; j < len(fs.cands); j += len(fs.shards) {
		shardCands = append(shardCands, fs.cands[j])
	}

	c.leaseSeq++
	ttl := c.cfg.leaseTTL()
	lease := &Lease{
		SweepID:   fs.id,
		LeaseID:   fmt.Sprintf("lease-%d", c.leaseSeq),
		Shard:     i,
		Shards:    len(fs.shards),
		Spec:      sp,
		Incumbent: fs.inc,
		TTLMS:     int(ttl.Milliseconds()),
	}
	if fs.ses.CheckpointCells() > 0 {
		var buf bytes.Buffer
		if err := fs.ses.SaveCheckpoint(&buf); err != nil {
			return nil, err
		}
		lease.Checkpoint = buf.Bytes()
	}

	sh.phase = shardLeased
	sh.leaseID = lease.LeaseID
	sh.worker = worker
	sh.expires = now.Add(ttl)
	sh.settledAtLease = fs.ses.SettledCells(shardCands, fs.graphs, fs.opt)
	return lease, nil
}

// findLeaseLocked resolves a (sweep, lease) pair to its shard index, or -1
// when the lease is gone (expired, superseded or never granted). Called
// with c.mu held.
func (c *Coordinator) findLeaseLocked(fs *fleetSweep, leaseID string) int {
	for i := range fs.shards {
		sh := &fs.shards[i]
		if sh.phase == shardLeased && sh.leaseID == leaseID {
			return i
		}
	}
	return -1
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad renew request: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	c.mu.Lock()
	now := c.cfg.now()
	c.reapLocked(now)
	fs, ok := c.sweeps[req.SweepID]
	if !ok {
		c.mu.Unlock()
		writeError(w, http.StatusNotFound, "no fleet sweep %q", req.SweepID)
		return
	}
	i := c.findLeaseLocked(fs, req.LeaseID)
	if i < 0 {
		c.mu.Unlock()
		writeError(w, http.StatusGone, "lease %s is no longer live", req.LeaseID)
		return
	}
	ttl := c.cfg.leaseTTL()
	fs.shards[i].expires = now.Add(ttl)
	resp := RenewResponse{TTLMS: int(ttl.Milliseconds()), Incumbent: fs.inc}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// foldIncumbentLocked folds an achieved feasible objective into the sweep's
// fleet-wide incumbent (monotone min). Called with c.mu held.
func (fs *fleetSweep) foldIncumbentLocked(candidate string, obj float64) bool {
	if obj < fs.inc.best() {
		fs.inc = IncumbentState{Found: true, Candidate: candidate, Objective: obj}
		return true
	}
	return false
}

func (c *Coordinator) handleIncumbent(w http.ResponseWriter, r *http.Request) {
	var up IncumbentUpdate
	if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
		writeError(w, http.StatusBadRequest, "bad incumbent update: %v", err)
		return
	}
	if err := up.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	c.mu.Lock()
	fs, ok := c.sweeps[up.SweepID]
	if !ok {
		c.mu.Unlock()
		writeError(w, http.StatusNotFound, "no fleet sweep %q", up.SweepID)
		return
	}
	improved := fs.foldIncumbentLocked(up.Candidate, up.Objective)
	state := fs.inc
	c.mu.Unlock()

	if improved {
		c.logf("fleet: sweep %s incumbent -> %.6g (%s)", up.SweepID, state.Objective, state.Candidate)
	}
	writeJSON(w, http.StatusOK, state)
}

func (c *Coordinator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var up CheckpointUpload
	if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
		writeError(w, http.StatusBadRequest, "bad checkpoint upload: %v", err)
		return
	}
	if err := up.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	c.mu.Lock()
	now := c.cfg.now()
	c.reapLocked(now)
	fs, ok := c.sweeps[up.SweepID]
	if !ok {
		c.mu.Unlock()
		writeError(w, http.StatusNotFound, "no fleet sweep %q", up.SweepID)
		return
	}
	// Merge first, regardless of lease liveness: settled cells are valid
	// whoever computed them, and dropping a dying worker's last upload
	// would recompute work for no reason.
	if err := fs.ses.LoadCheckpoint(bytes.NewReader(up.Checkpoint)); err != nil {
		c.mu.Unlock()
		writeError(w, http.StatusBadRequest, "merging checkpoint: %v", err)
		return
	}
	fs.stats.Uploads++
	// An achieved best folds even from a stale lease — it is still sound.
	if up.Best != nil {
		fs.foldIncumbentLocked(up.Best.Candidate, up.Best.Objective)
	}

	i := c.findLeaseLocked(fs, up.LeaseID)
	if i < 0 {
		c.mu.Unlock()
		writeError(w, http.StatusGone, "lease %s is no longer live (checkpoint merged)", up.LeaseID)
		return
	}
	sh := &fs.shards[i]
	// Any upload on a live lease proves the worker is alive; extend it.
	sh.expires = now.Add(c.cfg.leaseTTL())

	var persistID string
	var persistBytes []byte
	if up.Complete {
		sh.phase = shardDone
		sh.leaseID = ""
		if st := up.Stats; st != nil {
			fs.stats.SAIterations += st.SAIterations
			fs.stats.ResumedCells += st.ResumedCells
			fs.stats.PrunedCandidates += st.PrunedCandidates
			if rec := sh.settledAtLease - st.ResumedCells; rec > 0 {
				fs.stats.RecomputedSettledCells += rec
			}
		}
		allDone := true
		for j := range fs.shards {
			if fs.shards[j].phase != shardDone {
				allDone = false
				break
			}
		}
		if allDone {
			fs.done = true
			var buf bytes.Buffer
			if err := fs.ses.SaveCheckpoint(&buf); err == nil {
				persistID, persistBytes = fs.id, buf.Bytes()
			} else {
				c.logf("fleet: sweep %s: canonical checkpoint save failed: %v", fs.id, err)
			}
		}
	}
	resp := CheckpointResponse{Incumbent: fs.inc, SweepDone: fs.done}
	c.mu.Unlock()

	if up.Complete {
		c.logf("fleet: sweep %s shard %d complete (worker %s); sweep done=%v", up.SweepID, i, up.Worker, resp.SweepDone)
	}
	if persistBytes != nil && c.cfg.Persist != nil {
		c.cfg.Persist(persistID, persistBytes)
	}
	writeJSON(w, http.StatusOK, resp)
}

// Health snapshots the coordinator for the sweep service's /healthz block.
func (c *Coordinator) Health() Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.cfg.now())
	var h Health
	h.Sweeps = len(c.order)
	var workers []string
	seen := make(map[string]bool)
	for _, id := range c.order {
		fs := c.sweeps[id]
		if !fs.done {
			h.Active++
		}
		h.ExpiredLeases += fs.stats.ExpiredLeases
		for i := range fs.shards {
			sh := &fs.shards[i]
			switch sh.phase {
			case shardPending:
				h.ShardsPending++
			case shardLeased:
				h.ShardsLeased++
				if !seen[sh.worker] {
					seen[sh.worker] = true
					workers = append(workers, sh.worker)
				}
			case shardDone:
				h.ShardsDone++
			}
		}
	}
	sort.Strings(workers)
	h.Workers = workers
	return h
}

// Status returns one sweep's status snapshot, for tests and the service.
func (c *Coordinator) Status(id string) (SweepStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs, ok := c.sweeps[id]
	if !ok {
		return SweepStatus{}, false
	}
	c.reapLocked(c.cfg.now())
	return c.statusLocked(fs), true
}

// Checkpoint returns the sweep's current merged canonical checkpoint bytes.
func (c *Coordinator) Checkpoint(id string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs, ok := c.sweeps[id]
	if !ok {
		return nil, false
	}
	var buf bytes.Buffer
	if err := fs.ses.SaveCheckpoint(&buf); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// newFleetID mints a random sweep id for submissions that carry none.
func newFleetID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("fleet-%d", time.Now().UnixNano())
	}
	return "fleet-" + hex.EncodeToString(b[:])
}

// errorBody mirrors the sweep service's error shape.
type errorBody struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}
