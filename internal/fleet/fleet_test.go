package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gemini/internal/dse"
)

// testSpecJSON is a small 4-candidate x 1-model grid that runs in well
// under a second per cell; prune stays off so the full grid settles and
// checkpoint identity can be asserted bit-for-bit.
func testSpecJSON(id string) string {
	return fmt.Sprintf(`{
		"id": %q,
		"space": {"tops": 72, "cuts": [1], "dram_per_tops": [2],
		          "noc_gbps": [32, 48, 64, 96], "d2d_ratios": [0.5],
		          "glb_kb": [1024], "macs": [1024]},
		"models": ["tinycnn"],
		"sa_iterations": 60
	}`, id)
}

func parseSpec(t *testing.T, raw string) dse.Spec {
	t.Helper()
	var spec dse.Spec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatalf("parsing test spec: %v", err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("validating test spec: %v", err)
	}
	return spec
}

// postJSON drives a coordinator endpoint and decodes the response into out
// when non-nil, returning the status code.
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// singleProcessRun executes the unsharded spec in one fresh session and
// returns its checkpoint bytes and best feasible result.
func singleProcessRun(t *testing.T, spec dse.Spec) ([]byte, *dse.CandidateResult) {
	t.Helper()
	cands, err := spec.Candidates()
	if err != nil {
		t.Fatalf("candidates: %v", err)
	}
	graphs, err := spec.Graphs()
	if err != nil {
		t.Fatalf("graphs: %v", err)
	}
	ses := dse.NewSession()
	results, _, err := ses.RunContext(context.Background(), cands, graphs, spec.Options())
	if err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	var buf bytes.Buffer
	if err := ses.SaveCheckpoint(&buf); err != nil {
		t.Fatalf("single-process checkpoint: %v", err)
	}
	return buf.Bytes(), dse.Best(results)
}

// TestFleetEndToEnd drains a 2-shard sweep with one worker and checks the
// merged coordinator checkpoint is bit-identical to a single-process run of
// the same spec, with the same best result and zero recomputed cells.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sweeps")
	}
	spec := parseSpec(t, testSpecJSON("e2e"))
	soloCkpt, soloBest := singleProcessRun(t, spec)
	if soloBest == nil || !soloBest.Feasible {
		t.Fatalf("single-process run found no feasible best")
	}

	coord := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, Logf: t.Logf})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	var st SweepStatus
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: spec, Shards: 2}, &st); code != http.StatusCreated {
		t.Fatalf("submit answered %d", code)
	}
	if st.Shards != 2 || st.ShardsPending != 2 {
		t.Fatalf("submit status = %+v, want 2 pending shards", st)
	}

	err := RunWorker(context.Background(), WorkerConfig{
		Coordinator:  srv.URL,
		Name:         "w1",
		ExitWhenIdle: true,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}

	got, ok := coord.Status("e2e")
	if !ok {
		t.Fatalf("sweep vanished")
	}
	if got.State != "done" || got.ShardsDone != 2 {
		t.Fatalf("after drain: %+v, want done with 2 shards done", got)
	}
	if !got.Incumbent.Found {
		t.Fatalf("no fleet incumbent after drain")
	}
	if got.Incumbent.Objective != soloBest.Obj || got.Incumbent.Candidate != soloBest.Cfg.Name {
		t.Fatalf("fleet best (%s, %v) != single-process best (%s, %v)",
			got.Incumbent.Candidate, got.Incumbent.Objective, soloBest.Cfg.Name, soloBest.Obj)
	}
	if got.Stats.RecomputedSettledCells != 0 {
		t.Fatalf("recomputed settled cells = %d, want 0", got.Stats.RecomputedSettledCells)
	}
	if got.Stats.SAIterations <= 0 {
		t.Fatalf("aggregated sa_iterations = %d, want > 0", got.Stats.SAIterations)
	}

	fleetCkpt, ok := coord.Checkpoint("e2e")
	if !ok {
		t.Fatalf("no fleet checkpoint")
	}
	if !bytes.Equal(fleetCkpt, soloCkpt) {
		t.Fatalf("merged fleet checkpoint differs from single-process checkpoint:\nfleet %d bytes, solo %d bytes",
			len(fleetCkpt), len(soloCkpt))
	}
}

// fakeClock is an injectable coordinator clock for deterministic lease
// expiry.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestWorkerDeathReshard kills a worker mid-sweep (it stops renewing after
// a partial upload) and checks the orphaned shard re-leases with the merged
// checkpoint: the successor resumes every settled cell (zero recompute),
// the expiry is counted, and the final merged checkpoint is bit-identical
// to a single-process run.
func TestWorkerDeathReshard(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sweeps")
	}
	spec := parseSpec(t, testSpecJSON("reshard"))
	soloCkpt, soloBest := singleProcessRun(t, spec)

	clock := &fakeClock{t: time.Unix(1_000_000, 0)}
	coord := NewCoordinator(CoordinatorConfig{
		LeaseTTL: 30 * time.Second,
		Logf:     t.Logf,
		Now:      clock.Now,
	})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	var st SweepStatus
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: spec, Shards: 2}, &st); code != http.StatusCreated {
		t.Fatalf("submit answered %d", code)
	}

	// Worker A takes shard 0, settles its first candidate, uploads the
	// partial checkpoint, and dies (never renews, never completes).
	var lease Lease
	if code := postJSON(t, srv.URL+"/lease", LeaseRequest{Worker: "doomed"}, &lease); code != http.StatusOK {
		t.Fatalf("lease answered %d", code)
	}
	if lease.Shard != 0 || lease.Shards != 2 {
		t.Fatalf("first lease got shard %d/%d, want 0/2", lease.Shard, lease.Shards)
	}
	aCands, err := lease.Spec.Candidates()
	if err != nil {
		t.Fatalf("lease candidates: %v", err)
	}
	graphs, err := lease.Spec.Graphs()
	if err != nil {
		t.Fatalf("lease graphs: %v", err)
	}
	aSes := dse.NewSession()
	if _, _, err := aSes.RunContext(context.Background(), aCands[:1], graphs, lease.Spec.Options()); err != nil {
		t.Fatalf("doomed worker's partial run: %v", err)
	}
	var partial bytes.Buffer
	if err := aSes.SaveCheckpoint(&partial); err != nil {
		t.Fatalf("partial checkpoint: %v", err)
	}
	partialCells := aSes.CheckpointCells()
	if partialCells == 0 {
		t.Fatalf("partial run settled no cells")
	}
	var cresp CheckpointResponse
	if code := postJSON(t, srv.URL+"/checkpoint", CheckpointUpload{
		SweepID:    lease.SweepID,
		LeaseID:    lease.LeaseID,
		Worker:     "doomed",
		Checkpoint: partial.Bytes(),
	}, &cresp); code != http.StatusOK {
		t.Fatalf("partial upload answered %d", code)
	}

	// The lease lapses.
	clock.Advance(31 * time.Second)

	// Worker B drains the sweep: the reaped shard 0 re-leases to it first,
	// seeded with the dead worker's settled cells.
	if err := RunWorker(context.Background(), WorkerConfig{
		Coordinator:  srv.URL,
		Name:         "survivor",
		ExitWhenIdle: true,
		Logf:         t.Logf,
	}); err != nil {
		t.Fatalf("surviving worker: %v", err)
	}

	got, ok := coord.Status("reshard")
	if !ok {
		t.Fatalf("sweep vanished")
	}
	if got.State != "done" {
		t.Fatalf("sweep not done after drain: %+v", got)
	}
	if got.Stats.ExpiredLeases != 1 {
		t.Fatalf("expired leases = %d, want 1", got.Stats.ExpiredLeases)
	}
	if got.Stats.RecomputedSettledCells != 0 {
		t.Fatalf("recomputed settled cells = %d, want 0", got.Stats.RecomputedSettledCells)
	}
	if got.Stats.ResumedCells != partialCells {
		t.Fatalf("resumed cells = %d, want the dead worker's %d settled cells",
			got.Stats.ResumedCells, partialCells)
	}
	if soloBest != nil && got.Incumbent.Objective != soloBest.Obj {
		t.Fatalf("fleet best %v != single-process best %v", got.Incumbent.Objective, soloBest.Obj)
	}

	fleetCkpt, ok := coord.Checkpoint("reshard")
	if !ok {
		t.Fatalf("no fleet checkpoint")
	}
	if !bytes.Equal(fleetCkpt, soloCkpt) {
		t.Fatalf("merged checkpoint after re-shard differs from single-process checkpoint")
	}
}

// TestCoordinatorWire exercises the control-plane contracts that don't need
// real sweeps: submit validation, incumbent fan-out on every round trip,
// stale-lease handling and the merge-on-410 rule.
func TestCoordinatorWire(t *testing.T) {
	spec := parseSpec(t, testSpecJSON("wire"))
	clock := &fakeClock{t: time.Unix(2_000_000, 0)}
	coord := NewCoordinator(CoordinatorConfig{LeaseTTL: 10 * time.Second, Now: clock.Now})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	// A spec carrying its own shard slice is the coordinator's job to
	// assign, not the client's.
	sharded := spec
	sharded.Shard = &dse.ShardSpec{Index: 0, Count: 2}
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: sharded, Shards: 2}, nil); code != http.StatusBadRequest {
		t.Fatalf("sharded spec submit answered %d, want 400", code)
	}
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: spec, Shards: 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("shards=0 submit answered %d, want 400", code)
	}

	// Shards clamp to the candidate count (4 here).
	var st SweepStatus
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: spec, Shards: 99}, &st); code != http.StatusCreated {
		t.Fatalf("submit answered %d", code)
	}
	if st.Shards != 4 {
		t.Fatalf("99 requested shards clamped to %d, want 4 (one per candidate)", st.Shards)
	}
	if code := postJSON(t, srv.URL+"/sweeps", SubmitRequest{Spec: spec, Shards: 2}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate id submit answered %d, want 409", code)
	}

	// Incumbent pushes fold monotonically and fan out on lease and renew.
	var inc IncumbentState
	if code := postJSON(t, srv.URL+"/incumbent", IncumbentUpdate{SweepID: "wire", Candidate: "a", Objective: 10}, &inc); code != http.StatusOK {
		t.Fatalf("incumbent push answered %d", code)
	}
	if !inc.Found || inc.Objective != 10 {
		t.Fatalf("incumbent after first push = %+v", inc)
	}
	if code := postJSON(t, srv.URL+"/incumbent", IncumbentUpdate{SweepID: "wire", Candidate: "b", Objective: 20}, &inc); code != http.StatusOK {
		t.Fatalf("incumbent push answered %d", code)
	}
	if inc.Objective != 10 {
		t.Fatalf("worse push moved the incumbent to %v", inc.Objective)
	}
	if code := postJSON(t, srv.URL+"/incumbent", IncumbentUpdate{SweepID: "none", Objective: 1}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown-sweep push answered %d, want 404", code)
	}

	var lease Lease
	if code := postJSON(t, srv.URL+"/lease", LeaseRequest{Worker: "w"}, &lease); code != http.StatusOK {
		t.Fatalf("lease answered %d", code)
	}
	if err := lease.Validate(); err != nil {
		t.Fatalf("granted lease invalid: %v", err)
	}
	if !lease.Incumbent.Found || lease.Incumbent.Objective != 10 {
		t.Fatalf("lease incumbent = %+v, want the pushed best", lease.Incumbent)
	}
	var renew RenewResponse
	if code := postJSON(t, srv.URL+"/renew", RenewRequest{SweepID: "wire", LeaseID: lease.LeaseID, Worker: "w"}, &renew); code != http.StatusOK {
		t.Fatalf("renew answered %d", code)
	}
	if renew.Incumbent.Objective != 10 {
		t.Fatalf("renew incumbent = %+v", renew.Incumbent)
	}

	// Expire the lease; renewing it is now 410 and the shard is pending
	// again.
	clock.Advance(11 * time.Second)
	if code := postJSON(t, srv.URL+"/renew", RenewRequest{SweepID: "wire", LeaseID: lease.LeaseID, Worker: "w"}, nil); code != http.StatusGone {
		t.Fatalf("expired renew answered %d, want 410", code)
	}
	got, _ := coord.Status("wire")
	if got.Stats.ExpiredLeases != 1 || got.ShardsPending != 4 {
		t.Fatalf("after expiry: %+v, want 1 expired lease and all shards pending", got)
	}

	// A stale-lease upload still merges its cells (they are sound) but
	// answers 410 so the worker learns the shard moved on.
	ses := dse.NewSession()
	cands, _ := spec.Candidates()
	graphs, _ := spec.Graphs()
	opt := spec.Options()
	opt.SAIterations = 10
	if _, _, err := ses.RunContext(context.Background(), cands[:1], graphs, opt); err != nil {
		t.Fatalf("mini run: %v", err)
	}
	var buf bytes.Buffer
	if err := ses.SaveCheckpoint(&buf); err != nil {
		t.Fatalf("mini checkpoint: %v", err)
	}
	if code := postJSON(t, srv.URL+"/checkpoint", CheckpointUpload{
		SweepID: "wire", LeaseID: lease.LeaseID, Worker: "w", Checkpoint: buf.Bytes(),
	}, nil); code != http.StatusGone {
		t.Fatalf("stale upload answered %d, want 410", code)
	}
	got, _ = coord.Status("wire")
	if got.CheckpointCells == 0 {
		t.Fatalf("stale upload's cells were not merged")
	}
	if got.Stats.ExpiredLeases != 1 {
		t.Fatalf("stale upload double-counted expiry: %+v", got.Stats)
	}
}

// TestExchange checks the worker-side incumbent cache: monotone folding,
// +Inf initial state, and last-writer-wins outbox coalescing.
func TestExchange(t *testing.T) {
	ex := newExchange(nil, "s", true)
	if !math.IsInf(ex.Best(), 1) {
		t.Fatalf("fresh exchange best = %v, want +Inf", ex.Best())
	}
	ex.fold(5)
	ex.fold(7) // worse: ignored
	if ex.Best() != 5 {
		t.Fatalf("best = %v, want 5", ex.Best())
	}
	ex.Improved("a", 4)
	ex.Improved("b", 3)
	if ex.Best() != 3 {
		t.Fatalf("best = %v, want 3", ex.Best())
	}
	u := ex.take()
	if u == nil || u.Candidate != "b" || u.Objective != 3 {
		t.Fatalf("outbox = %+v, want the latest improvement", u)
	}
	if ex.take() != nil {
		t.Fatalf("outbox not drained")
	}

	// A non-sharing exchange still caches (the lease seed) but queues
	// nothing.
	solo := newExchange(nil, "s", false)
	solo.Improved("a", 2)
	if solo.Best() != 2 || solo.take() != nil {
		t.Fatalf("non-sharing exchange queued an update")
	}
}
