// Wire messages of the fleet protocol: the JSON bodies workers and the
// coordinator exchange over the lease, renew, incumbent and checkpoint
// endpoints. Every message is a plain JSON struct with a Validate method,
// so the fuzz harness (FuzzFleetWire) can drive arbitrary bytes through
// exactly the decode path the handlers use. Objectives on the wire are
// always achieved finite values — "no incumbent yet" travels as
// IncumbentState.Found=false, never as +Inf, which JSON cannot carry.
package fleet

import (
	"encoding/json"
	"fmt"
	"math"

	"gemini/internal/dse"
)

// LeaseRequest is a worker's POST /lease body: an idle worker asking the
// coordinator for a shard to run.
type LeaseRequest struct {
	// Worker names the requesting worker process (for lease accounting and
	// the fleet health block); required.
	Worker string `json:"worker"`
}

// Validate checks the request shape.
func (r *LeaseRequest) Validate() error {
	if r.Worker == "" {
		return fmt.Errorf("fleet: lease request has no worker name")
	}
	return nil
}

// IncumbentState is the coordinator's view of a fleet sweep's best achieved
// feasible objective. It rides on every lease grant, renew response,
// incumbent push response and checkpoint response, so a worker's cached
// fleet-wide best is refreshed by every control-plane round trip.
type IncumbentState struct {
	// Found reports that some shard has achieved a feasible result; when
	// false the other fields are zero and the state means "+Inf".
	Found bool `json:"found"`
	// Candidate names the architecture that achieved the incumbent.
	Candidate string `json:"candidate,omitempty"`
	// Objective is the achieved objective value (finite when Found).
	Objective float64 `json:"objective,omitempty"`
}

// Validate checks the state's finiteness invariant: a found incumbent must
// carry a finite achieved objective.
func (s *IncumbentState) Validate() error {
	if s.Found && (math.IsNaN(s.Objective) || math.IsInf(s.Objective, 0)) {
		return fmt.Errorf("fleet: incumbent state objective %v is not finite", s.Objective)
	}
	return nil
}

// best returns the state as a foldable objective: the achieved value when
// Found, +Inf otherwise.
func (s IncumbentState) best() float64 {
	if !s.Found {
		return math.Inf(1)
	}
	return s.Objective
}

// Lease is the coordinator's POST /lease grant: one shard of one fleet
// sweep, scoped by a shard-sliced dse.Spec, together with everything the
// worker needs to start warm — the current merged checkpoint and the
// current fleet-wide incumbent.
type Lease struct {
	// SweepID names the fleet sweep the shard belongs to.
	SweepID string `json:"sweep_id"`
	// LeaseID names this grant; renewals and uploads must echo it, and a
	// grant that expires is reissued to another worker under a new id.
	LeaseID string `json:"lease_id"`
	// Shard and Shards locate the slice: the spec keeps candidates whose
	// enumeration index ≡ Shard (mod Shards).
	Shard int `json:"shard"`
	// Shards is the sweep's total shard count.
	Shards int `json:"shards"`
	// Spec is the shard-scoped sweep spec the worker runs verbatim.
	Spec dse.Spec `json:"spec"`
	// Incumbent seeds the worker's cached fleet-wide best.
	Incumbent IncumbentState `json:"incumbent"`
	// TTLMS is the lease's time-to-live in milliseconds; the worker must
	// renew within it or the shard is re-leased to another worker.
	TTLMS int `json:"ttl_ms"`
	// Checkpoint is the coordinator's current merged checkpoint
	// (dse.SaveCheckpoint bytes); the worker loads it before running so
	// cells an expired predecessor already settled restore instead of
	// recompute. May carry cells outside this shard — harmless by
	// construction, checkpoints are fingerprint-keyed.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// Validate checks the grant's internal consistency, including that the
// embedded spec is itself valid and scoped to the advertised shard.
func (l *Lease) Validate() error {
	if l.SweepID == "" || l.LeaseID == "" {
		return fmt.Errorf("fleet: lease missing sweep or lease id")
	}
	if l.Shards < 1 || l.Shard < 0 || l.Shard >= l.Shards {
		return fmt.Errorf("fleet: lease shard %d/%d out of range", l.Shard, l.Shards)
	}
	if l.TTLMS <= 0 {
		return fmt.Errorf("fleet: lease ttl_ms = %d, want > 0", l.TTLMS)
	}
	if err := l.Incumbent.Validate(); err != nil {
		return err
	}
	if err := l.Spec.Validate(); err != nil {
		return fmt.Errorf("fleet: lease spec: %w", err)
	}
	if sh := l.Spec.Shard; sh == nil || sh.Index != l.Shard || sh.Count != l.Shards {
		return fmt.Errorf("fleet: lease spec shard %+v does not match lease shard %d/%d",
			sh, l.Shard, l.Shards)
	}
	return nil
}

// RenewRequest is a worker's POST /renew body: keep a live lease alive.
type RenewRequest struct {
	// SweepID and LeaseID name the lease being renewed.
	SweepID string `json:"sweep_id"`
	// LeaseID is the grant to renew.
	LeaseID string `json:"lease_id"`
	// Worker echoes the renewing worker's name.
	Worker string `json:"worker"`
}

// Validate checks the request shape.
func (r *RenewRequest) Validate() error {
	if r.SweepID == "" || r.LeaseID == "" {
		return fmt.Errorf("fleet: renew request missing sweep or lease id")
	}
	return nil
}

// RenewResponse acknowledges a renewal and piggybacks the current
// fleet-wide incumbent, so renewing doubles as the worker's incumbent pull.
type RenewResponse struct {
	// TTLMS restates the lease time-to-live granted by this renewal.
	TTLMS int `json:"ttl_ms"`
	// Incumbent is the fleet-wide best at renewal time.
	Incumbent IncumbentState `json:"incumbent"`
}

// Validate checks the response a worker accepts off the wire.
func (r *RenewResponse) Validate() error {
	if r.TTLMS <= 0 {
		return fmt.Errorf("fleet: renew response ttl_ms = %d, want > 0", r.TTLMS)
	}
	return r.Incumbent.Validate()
}

// IncumbentUpdate is a worker's POST /incumbent body: a locally achieved
// feasible objective that improved the worker's incumbent. The coordinator
// folds it (monotone min) and answers with the resulting fleet-wide state,
// which may be better than the pushed value if another shard got there
// first.
type IncumbentUpdate struct {
	// SweepID names the fleet sweep the objective belongs to.
	SweepID string `json:"sweep_id"`
	// Candidate names the architecture that achieved the objective.
	Candidate string `json:"candidate"`
	// Objective is the achieved feasible objective (must be finite).
	Objective float64 `json:"objective"`
}

// Validate checks the update: the pushed objective must be a finite
// achieved value — the monotone-min fold is only sound over achieved
// objectives.
func (u *IncumbentUpdate) Validate() error {
	if u.SweepID == "" {
		return fmt.Errorf("fleet: incumbent update missing sweep id")
	}
	if math.IsNaN(u.Objective) || math.IsInf(u.Objective, 0) {
		return fmt.Errorf("fleet: incumbent update objective %v is not finite", u.Objective)
	}
	return nil
}

// ShardStats is the worker-side sweep accounting a completed shard reports:
// the dse.SweepStats fields the coordinator aggregates fleet-wide.
type ShardStats struct {
	// Candidates and Cells size the shard's slice of the grid.
	Candidates int `json:"candidates"`
	// Cells is the shard's (candidate, model) cell count.
	Cells int `json:"cells"`
	// SAIterations is the shard sweep's total annealing iterations.
	SAIterations int `json:"sa_iterations"`
	// ResumedCells counts cells restored from the lease checkpoint instead
	// of recomputed — the zero-recompute re-shard claim is audited from it.
	ResumedCells int `json:"resumed_cells"`
	// PrunedCandidates counts candidates the shard's bound gate skipped.
	PrunedCandidates int `json:"pruned_candidates"`
}

// Validate checks the counters are non-negative.
func (s *ShardStats) Validate() error {
	for _, c := range [...]struct {
		name string
		v    int
	}{
		{"candidates", s.Candidates}, {"cells", s.Cells},
		{"sa_iterations", s.SAIterations}, {"resumed_cells", s.ResumedCells},
		{"pruned_candidates", s.PrunedCandidates},
	} {
		if c.v < 0 {
			return fmt.Errorf("fleet: shard stats %s = %d, want >= 0", c.name, c.v)
		}
	}
	return nil
}

// ShardBest is a completed shard's best feasible candidate, folded into the
// fleet incumbent synchronously at upload time — which is what makes a
// sequential one-worker fleet's pruning deterministic.
type ShardBest struct {
	// Candidate names the shard's best feasible architecture.
	Candidate string `json:"candidate"`
	// Objective is its achieved objective.
	Objective float64 `json:"objective"`
}

// Validate checks the objective is a finite achieved value.
func (b *ShardBest) Validate() error {
	if math.IsNaN(b.Objective) || math.IsInf(b.Objective, 0) {
		return fmt.Errorf("fleet: shard best objective %v is not finite", b.Objective)
	}
	return nil
}

// CheckpointUpload is a worker's POST /checkpoint body: the checkpoint-
// merge envelope. Workers stream partial uploads (Complete=false, coalesced
// per settled candidate) so an expiring lease loses at most the in-flight
// cells, and send one final Complete=true upload carrying the shard's stats
// and best when the shard sweep finishes.
type CheckpointUpload struct {
	// SweepID and LeaseID name the lease the upload belongs to.
	SweepID string `json:"sweep_id"`
	// LeaseID is the grant the upload runs under; a stale id still merges
	// (settled cells are valid regardless of who computed them) but answers
	// 410 so the worker learns its lease lapsed.
	LeaseID string `json:"lease_id"`
	// Worker echoes the uploading worker's name.
	Worker string `json:"worker"`
	// Complete marks the shard finished; Stats and Best are then read.
	Complete bool `json:"complete,omitempty"`
	// Stats is the shard sweep's accounting (Complete uploads only).
	Stats *ShardStats `json:"stats,omitempty"`
	// Best is the shard's best feasible result, if any (Complete uploads
	// only).
	Best *ShardBest `json:"best,omitempty"`
	// Checkpoint is the worker session's dse.SaveCheckpoint bytes; the
	// coordinator merges it into the sweep's canonical checkpoint.
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// Validate checks the envelope shape and its nested records.
func (u *CheckpointUpload) Validate() error {
	if u.SweepID == "" || u.LeaseID == "" {
		return fmt.Errorf("fleet: checkpoint upload missing sweep or lease id")
	}
	if len(u.Checkpoint) == 0 {
		return fmt.Errorf("fleet: checkpoint upload has no checkpoint bytes")
	}
	if u.Stats != nil {
		if err := u.Stats.Validate(); err != nil {
			return err
		}
	}
	if u.Best != nil {
		if err := u.Best.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CheckpointResponse acknowledges an upload with the post-merge fleet
// state.
type CheckpointResponse struct {
	// Incumbent is the fleet-wide best after folding the upload.
	Incumbent IncumbentState `json:"incumbent"`
	// SweepDone reports that every shard of the sweep is now complete.
	SweepDone bool `json:"sweep_done"`
}

// Validate checks the response a worker accepts off the wire.
func (r *CheckpointResponse) Validate() error {
	return r.Incumbent.Validate()
}

// SubmitRequest is the POST /sweeps body: a client submitting a sweep for
// fleet execution.
type SubmitRequest struct {
	// Spec is the full (unsharded) sweep spec; specs carrying a shard slice
	// are rejected — partitioning is the coordinator's job.
	Spec dse.Spec `json:"spec"`
	// Shards is how many shard leases to cut the candidate grid into; it is
	// clamped to the candidate count.
	Shards int `json:"shards"`
}
