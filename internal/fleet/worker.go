package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gemini/internal/dse"
)

// WorkerConfig configures a fleet worker process.
type WorkerConfig struct {
	// Coordinator is the base URL of the coordinator API, including any
	// mount prefix — e.g. "http://host:8080/fleet" against the sweep
	// service, or an httptest server URL against a bare Coordinator.
	Coordinator string
	// Name identifies the worker in leases and logs (default
	// "worker-<pid>").
	Name string
	// Poll is the idle re-poll interval when no shard is pending (default
	// 500ms).
	Poll time.Duration
	// Workers overrides the shard spec's parallelism when > 0; 0 runs each
	// shard at the spec's own Workers setting.
	Workers int
	// DisableSharing runs shards without the fleet incumbent: the worker
	// neither seeds its pruning from lease incumbents nor pushes
	// improvements. It exists for the no-sharing twin in BenchmarkFleetSweep
	// and for apples-to-apples measurements; production fleets leave it off.
	DisableSharing bool
	// ExitWhenIdle returns from RunWorker the first time the coordinator
	// answers 204 (no shard pending) instead of polling. Benchmarks and
	// tests drain a fixed workload with it; long-lived workers leave it off.
	ExitWhenIdle bool
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
	// Logf receives worker logs (default: discard).
	Logf func(format string, args ...any)
	// Session, when set, carries the worker's dse session across RunWorker
	// calls so the evaluation cache stays warm; default is a fresh session
	// reused across this RunWorker's shards.
	Session *dse.Session
}

func (c *WorkerConfig) name() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("worker-%d", os.Getpid())
}

func (c *WorkerConfig) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 500 * time.Millisecond
}

// RunWorker runs the fleet worker loop against cfg.Coordinator: lease a
// shard, run it as a normal (bound-ordered / racing) sweep with the fleet
// incumbent threaded into pruning, stream checkpoints up, repeat. It
// returns when ctx is canceled, or — with ExitWhenIdle — when the
// coordinator has no shard to grant.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Coordinator == "" {
		return errors.New("fleet: worker has no coordinator URL")
	}
	cl := &client{
		base:   cfg.Coordinator,
		hc:     cfg.Client,
		worker: cfg.name(),
	}
	if cl.hc == nil {
		cl.hc = &http.Client{Timeout: 30 * time.Second}
	}
	w := &worker{cfg: cfg, cl: cl, ses: cfg.Session}
	if w.ses == nil {
		w.ses = dse.NewSession()
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := cl.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("fleet worker %s: lease: %v", cfg.name(), err)
			if !sleepCtx(ctx, cfg.poll()) {
				return ctx.Err()
			}
			continue
		}
		if lease == nil {
			if cfg.ExitWhenIdle {
				return nil
			}
			if !sleepCtx(ctx, cfg.poll()) {
				return ctx.Err()
			}
			continue
		}
		if err := w.runShard(ctx, lease); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// worker bundles the loop state RunWorker threads through shards.
type worker struct {
	cfg WorkerConfig
	cl  *client
	ses *dse.Session
}

func (w *worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// runShard executes one leased shard: restore the merged checkpoint, run
// the shard-scoped sweep with the fleet exchange wired into pruning, renew
// the lease in the background, stream partial checkpoints per settled
// candidate, and finish with a Complete upload carrying stats and best.
func (w *worker) runShard(ctx context.Context, lease *Lease) error {
	if err := lease.Validate(); err != nil {
		w.logf("fleet worker %s: rejecting lease %s: %v", w.cfg.name(), lease.LeaseID, err)
		return err
	}
	cands, err := lease.Spec.Candidates()
	if err != nil {
		return err
	}
	graphs, err := lease.Spec.Graphs()
	if err != nil {
		return err
	}
	if len(lease.Checkpoint) > 0 {
		if err := w.ses.LoadCheckpoint(bytes.NewReader(lease.Checkpoint)); err != nil {
			return fmt.Errorf("fleet: loading lease checkpoint: %w", err)
		}
	}
	w.logf("fleet worker %s: running sweep %s shard %d/%d: %d candidates, lease %s",
		w.cfg.name(), lease.SweepID, lease.Shard, lease.Shards, len(cands), lease.LeaseID)

	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	ex := newExchange(w.cl, lease.SweepID, !w.cfg.DisableSharing)
	if !w.cfg.DisableSharing {
		ex.fold(lease.Incumbent.best())
	}

	opt := lease.Spec.Options()
	if w.cfg.Workers > 0 {
		opt.Workers = w.cfg.Workers
	}
	if !w.cfg.DisableSharing {
		opt.Incumbent = ex
	}

	// Coalesced partial checkpoint uploads: each settled candidate pokes
	// the uploader, which snapshots the session checkpoint and ships it.
	// Uploads prove liveness (the coordinator extends the lease), so a
	// worker that is making progress never expires even if a renew is lost.
	ckptPoke := make(chan struct{}, 1)
	prevOnResult := opt.OnResult
	opt.OnResult = func(res dse.CandidateResult) {
		if prevOnResult != nil {
			prevOnResult(res)
		}
		select {
		case ckptPoke <- struct{}{}:
		default:
		}
	}

	stop := make(chan struct{})
	var bg sync.WaitGroup

	// Lease renewal at a third of the TTL. A 410 means the lease lapsed
	// (the shard is someone else's now): cancel the sweep — finished cells
	// are already uploaded, so walking away loses almost nothing.
	ttl := time.Duration(lease.TTLMS) * time.Millisecond
	bg.Add(1)
	go func() {
		defer bg.Done()
		tick := ttl / 3
		if tick < 20*time.Millisecond {
			tick = 20 * time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-shardCtx.Done():
				return
			case <-t.C:
				var resp RenewResponse
				code, err := w.cl.post(shardCtx, "/renew",
					&RenewRequest{SweepID: lease.SweepID, LeaseID: lease.LeaseID, Worker: w.cfg.name()}, &resp)
				switch {
				case err != nil:
					// Transient: uploads also renew, and the next tick
					// retries.
				case code == http.StatusGone, code == http.StatusNotFound:
					w.logf("fleet worker %s: lease %s lapsed; abandoning shard", w.cfg.name(), lease.LeaseID)
					cancel()
					return
				case code == http.StatusOK:
					ex.fold(resp.Incumbent.best())
				}
			}
		}
	}()

	// Incumbent pusher: forwards locally achieved improvements and folds
	// the coordinator's (possibly better) answer back into the cache.
	if !w.cfg.DisableSharing {
		bg.Add(1)
		go func() {
			defer bg.Done()
			for {
				select {
				case <-stop:
					return
				case <-shardCtx.Done():
					return
				case <-ex.poke:
					for u := ex.take(); u != nil; u = ex.take() {
						var st IncumbentState
						code, err := w.cl.post(shardCtx, "/incumbent", u, &st)
						if err == nil && code == http.StatusOK {
							ex.fold(st.best())
						}
					}
				}
			}
		}()
	}

	// Partial checkpoint uploader.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			case <-shardCtx.Done():
				return
			case <-ckptPoke:
				var buf bytes.Buffer
				if err := w.ses.SaveCheckpoint(&buf); err != nil {
					continue
				}
				up := &CheckpointUpload{
					SweepID:    lease.SweepID,
					LeaseID:    lease.LeaseID,
					Worker:     w.cfg.name(),
					Checkpoint: buf.Bytes(),
				}
				var resp CheckpointResponse
				code, err := w.cl.post(shardCtx, "/checkpoint", up, &resp)
				switch {
				case err != nil:
				case code == http.StatusGone, code == http.StatusNotFound:
					w.logf("fleet worker %s: lease %s lapsed; abandoning shard", w.cfg.name(), lease.LeaseID)
					cancel()
					return
				case code == http.StatusOK:
					ex.fold(resp.Incumbent.best())
				}
			}
		}
	}()

	results, stats, runErr := w.ses.RunContext(shardCtx, cands, graphs, opt)
	close(stop)
	bg.Wait()

	// Final upload. Complete only when every cell settled: a canceled shard
	// must stay leased-or-reissued, not be marked done with holes. The
	// upload itself is still worth sending on cancellation — settled cells
	// merge soundly whoever finishes the shard.
	complete := runErr == nil && !stats.Canceled
	var buf bytes.Buffer
	if err := w.ses.SaveCheckpoint(&buf); err != nil {
		return errors.Join(runErr, err)
	}
	up := &CheckpointUpload{
		SweepID:    lease.SweepID,
		LeaseID:    lease.LeaseID,
		Worker:     w.cfg.name(),
		Complete:   complete,
		Checkpoint: buf.Bytes(),
	}
	if complete {
		up.Stats = &ShardStats{
			Candidates:       stats.Candidates,
			Cells:            stats.Cells,
			SAIterations:     stats.SAIterations,
			ResumedCells:     stats.ResumedCells,
			PrunedCandidates: stats.PrunedCandidates,
		}
		if best := dse.Best(results); best != nil && best.Feasible {
			up.Best = &ShardBest{Candidate: best.Cfg.Name, Objective: best.Obj}
		}
	}
	// Detach from shardCtx: the final upload must go out even when the
	// shard was canceled (worker shutdown or lease lapse).
	upCtx, upCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer upCancel()
	if code, err := w.cl.post(upCtx, "/checkpoint", up, nil); err != nil {
		w.logf("fleet worker %s: final upload for lease %s failed: %v", w.cfg.name(), lease.LeaseID, err)
	} else if code != http.StatusOK {
		w.logf("fleet worker %s: final upload for lease %s answered %d", w.cfg.name(), lease.LeaseID, code)
	}
	return runErr
}

// exchange is the worker-side dse.IncumbentExchange: an atomically cached
// fleet-wide best, refreshed by every control-plane round trip, plus a
// coalesced outbox the pusher goroutine drains. Best is read from the
// scheduler's hot gates, so it must stay a bare atomic load.
type exchange struct {
	cl      *client
	sweepID string
	share   bool
	bits    atomic.Uint64

	mu      sync.Mutex
	pending *IncumbentUpdate
	poke    chan struct{}
}

func newExchange(cl *client, sweepID string, share bool) *exchange {
	e := &exchange{cl: cl, sweepID: sweepID, share: share, poke: make(chan struct{}, 1)}
	e.bits.Store(math.Float64bits(math.Inf(1)))
	return e
}

// Best returns the cached fleet-wide best objective (+Inf when none).
func (e *exchange) Best() float64 {
	return math.Float64frombits(e.bits.Load())
}

// fold lowers the cached best to v if v is better (monotone min).
func (e *exchange) fold(v float64) {
	if math.IsNaN(v) {
		return
	}
	for {
		old := e.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Improved receives a locally achieved feasible objective from the
// scheduler, folds it into the cache and queues it for the pusher. Only the
// newest pending improvement is kept — the coordinator folds min anyway.
func (e *exchange) Improved(candidate string, obj float64) {
	e.fold(obj)
	if !e.share {
		return
	}
	e.mu.Lock()
	e.pending = &IncumbentUpdate{SweepID: e.sweepID, Candidate: candidate, Objective: obj}
	e.mu.Unlock()
	select {
	case e.poke <- struct{}{}:
	default:
	}
}

// take pops the pending improvement, if any.
func (e *exchange) take() *IncumbentUpdate {
	e.mu.Lock()
	defer e.mu.Unlock()
	u := e.pending
	e.pending = nil
	return u
}

// client is the worker's thin JSON-over-HTTP coordinator client.
type client struct {
	base   string
	hc     *http.Client
	worker string
}

// post sends in as JSON to base+path and decodes a 2xx response into out
// (when non-nil). It returns the HTTP status code; non-2xx responses are
// not errors — callers branch on the code (e.g. 410 lease lapse).
func (c *client) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	} else {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	}
	return resp.StatusCode, nil
}

// lease asks the coordinator for a shard; (nil, nil) means none pending.
func (c *client) lease(ctx context.Context) (*Lease, error) {
	var l Lease
	code, err := c.post(ctx, "/lease", &LeaseRequest{Worker: c.worker}, &l)
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusOK:
		return &l, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("fleet: lease request answered %d", code)
	}
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
