package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzFleetWire drives arbitrary bytes through the decode+validate path of
// every fleet wire envelope a coordinator or worker accepts off the network
// — lease grants, incumbent updates and checkpoint-merge envelopes — and
// checks the round-trip property: anything that decodes and validates must
// re-marshal, and the re-marshaled form must decode and validate again.
// The seed corpus lives in testdata/fuzz/FuzzFleetWire.
func FuzzFleetWire(f *testing.F) {
	seeds := []string{
		// A plausible lease grant with a shard-scoped spec and checkpoint.
		`{"sweep_id":"s1","lease_id":"lease-1","shard":0,"shards":2,` +
			`"spec":{"id":"s1.s0","space":{"tops":72,"cuts":[1],"dram_per_tops":[2],` +
			`"noc_gbps":[32,64],"d2d_ratios":[0.5],"glb_kb":[1024],"macs":[1024]},` +
			`"models":["tinycnn"],"sa_iterations":60,"shard":{"index":0,"count":2}},` +
			`"incumbent":{"found":true,"candidate":"c","objective":1.5},` +
			`"ttl_ms":10000,"checkpoint":{"version":1,"cells":{}}}`,
		// An incumbent update and its fan-out state.
		`{"sweep_id":"s1","candidate":"(1, 36, 147GB/s)","objective":6.7e-7}`,
		`{"found":true,"candidate":"c","objective":0.25}`,
		// A checkpoint-merge envelope, complete with stats and best.
		`{"sweep_id":"s1","lease_id":"lease-2","worker":"w1","complete":true,` +
			`"stats":{"candidates":2,"cells":2,"sa_iterations":120,"resumed_cells":1,` +
			`"pruned_candidates":0},"best":{"candidate":"c","objective":2},` +
			`"checkpoint":{"version":1,"cells":{"0000/m/0000":{}}}}`,
		// Hostile shapes: non-finite objectives smuggled as strings, shard
		// out of range, duplicate keys, deep junk, truncation.
		`{"sweep_id":"s","candidate":"c","objective":1e309}`,
		`{"sweep_id":"s","lease_id":"l","shard":3,"shards":2,"ttl_ms":-5}`,
		`{"sweep_id":"a","sweep_id":"b","lease_id":"l","checkpoint":"not-an-object"}`,
		`{"incumbent":{"found":true,"objective":`,
		`[1,2,3]`,
		`"just a string"`,
		`{"worker":"x\\ud800"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		checkRoundTrip[Lease](t, data)
		checkRoundTrip[LeaseRequest](t, data)
		checkRoundTrip[RenewRequest](t, data)
		checkRoundTrip[RenewResponse](t, data)
		checkRoundTrip[IncumbentUpdate](t, data)
		checkRoundTrip[IncumbentState](t, data)
		checkRoundTrip[CheckpointUpload](t, data)
		checkRoundTrip[CheckpointResponse](t, data)
	})
}

// validatable is the shape shared by fuzzed wire messages.
type validatable interface {
	Validate() error
}

// checkRoundTrip decodes data as T exactly like the handlers do and, when
// the value decodes and validates, requires marshal → decode → validate to
// survive unchanged in validity.
func checkRoundTrip[T any](t *testing.T, data []byte) {
	var v T
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return
	}
	validator, ok := any(&v).(validatable)
	if !ok {
		t.Fatalf("%T has no Validate method", v)
	}
	if err := validator.Validate(); err != nil {
		return
	}
	out, err := json.Marshal(&v)
	if err != nil {
		t.Fatalf("valid %T failed to marshal: %v", v, err)
	}
	var back T
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("re-decoding marshaled %T: %v\n%s", v, err, out)
	}
	if err := any(&back).(validatable).Validate(); err != nil {
		t.Fatalf("%T became invalid across a marshal round trip: %v\n%s", v, err, out)
	}
}
