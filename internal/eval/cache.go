package eval

import (
	"math"
	"sync"
	"sync/atomic"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

// graphFPs memoizes GraphFingerprint per graph. Graphs must not be mutated
// after evaluation starts (the evaluator documents the same invariant for
// its pointer-keyed memo), so entries can never go stale. The map is
// package-global and graph builders mint fresh pointers per call (a
// long-lived server builds new graphs for every sweep spec), so it is
// bounded like the other memos: past the limit it is flushed wholesale,
// which only costs recomputation.
var (
	graphFPs      sync.Map // *dnn.Graph -> uint64
	graphFPCount  atomic.Int64
	graphFPsLimit = int64(1 << 10)
)

// GraphFingerprint hashes the structural content of a DNN graph —
// everything a GroupResult can depend on: layer kinds, output cubes, kernel
// geometry, channel layout and the typed edge list. The graph's name is
// ignored, so two structurally identical graphs share cache entries
// (results are bit-identical by construction). Unlike the pointer identity
// the per-evaluator memo uses, the fingerprint is stable across processes,
// which is what lets a shared cache spill to disk and warm a successor
// process. Computed once per graph and memoized.
func GraphFingerprint(g *dnn.Graph) uint64 {
	if v, ok := graphFPs.Load(g); ok {
		return v.(uint64)
	}
	h := uint64(fnvOffset)
	for _, l := range g.Layers {
		for _, v := range [...]uint64{
			uint64(l.ID), uint64(l.Kind),
			uint64(l.OH), uint64(l.OW), uint64(l.OK),
			uint64(l.R), uint64(l.S), uint64(l.Stride),
			uint64(l.PadH), uint64(l.PadW),
			uint64(l.IC), uint64(l.Groups),
			uint64(l.FusedOps),
		} {
			h = fnv1a(h, v)
		}
		if l.HasWeights {
			h = fnv1a(h, 1)
		} else {
			h = fnv1a(h, 0)
		}
		for _, in := range l.Inputs {
			h = fnv1a(h, uint64(int64(in.Src)))
			h = fnv1a(h, uint64(in.DstOff))
			h = fnv1a(h, uint64(in.Role))
		}
		h = fnv1a(h, ^uint64(0)) // layer terminator
	}
	if graphFPCount.Add(1) > graphFPsLimit {
		graphFPs.Range(func(k, _ any) bool { graphFPs.Delete(k); return true })
		graphFPCount.Store(1)
	}
	graphFPs.Store(g, h)
	return h
}

// ConfigFingerprint hashes the structural fields of an architecture
// configuration — everything a GroupResult can depend on, and nothing it
// cannot (the Name is ignored). Two configs with equal fingerprints are
// evaluation-equivalent, so shared-cache entries and warmed evaluators can
// serve either: a chiplet-reuse candidate at factor 1 or a repeated request
// for the same tuple lands on the same warm state.
func ConfigFingerprint(cfg *arch.Config) uint64 {
	h := uint64(fnvOffset)
	for _, v := range [...]uint64{
		uint64(cfg.CoresX), uint64(cfg.CoresY),
		uint64(cfg.XCut), uint64(cfg.YCut),
		math.Float64bits(cfg.NoCBW), math.Float64bits(cfg.D2DBW),
		math.Float64bits(cfg.DRAMBW),
		uint64(cfg.MACsPerCore), uint64(cfg.GLBPerCore),
		math.Float64bits(cfg.FreqGHz), uint64(cfg.Topology),
	} {
		h = fnv1a(h, v)
	}
	return h
}

// CacheKey addresses one group evaluation in a shared Cache: the
// architecture fingerprint, the graph fingerprint, and the group
// fingerprint (encoding + batch + params + cross-group context). All three
// components are stable across processes, so a cache can round-trip through
// SaveDisk/LoadDisk and keep serving.
type CacheKey struct {
	Arch  uint64
	Graph uint64
	FP    uint64
}

// cacheShards keeps lock contention low when many DSE workers race on one
// shared cache; the SA hot loop hits the cache on nearly every iteration.
const cacheShards = 64

// cacheShardLimit bounds each shard; a full shard is flushed wholesale
// (same policy as the per-evaluator memo: the working set of any one sweep
// is far below the limit, and a flush only costs recomputation).
const cacheShardLimit = 1 << 14

// cacheEntry is one stored result plus its provenance: disk marks entries
// merged in by LoadDisk, so hit accounting can tell cross-process warmth
// from in-process warmth.
type cacheEntry struct {
	r    GroupResult
	disk bool
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[CacheKey]cacheEntry
}

// Cache is a concurrency-safe group-result store shared across evaluators —
// and therefore across architecture candidates, models, SA restarts and
// whole DSE runs. It memoizes exactly what the per-evaluator memo does, so
// serving from the cache is bit-identical to recomputing. SaveDisk and
// LoadDisk spill and restore it across process boundaries.
type Cache struct {
	shards                [cacheShards]cacheShard
	hits, misses, flushes atomic.Int64

	diskHits, diskLoaded, diskSaves atomic.Int64
}

// NewCache returns an empty shared cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[CacheKey]cacheEntry)
	}
	return c
}

func (c *Cache) shard(k CacheKey) *cacheShard {
	return &c.shards[(k.Arch^k.FP)%cacheShards]
}

// get returns the cached result for k, counting the hit or miss (and,
// separately, hits served by disk-loaded entries).
func (c *Cache) get(k CacheKey) (GroupResult, bool) {
	s := c.shard(k)
	s.mu.RLock()
	e, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		if e.disk {
			c.diskHits.Add(1)
		}
	} else {
		c.misses.Add(1)
	}
	return e.r, ok
}

// put stores a computed result, flushing the shard if it is full.
func (c *Cache) put(k CacheKey, r GroupResult) {
	s := c.shard(k)
	s.mu.Lock()
	if len(s.m) >= cacheShardLimit {
		clear(s.m)
		c.flushes.Add(1)
	}
	s.m[k] = cacheEntry{r: r}
	s.mu.Unlock()
}

// CacheStats is a point-in-time accounting snapshot of a shared cache.
type CacheStats struct {
	Hits, Misses, Flushes int64
	Entries               int

	// DiskHits counts hits served by entries a LoadDisk call merged in —
	// work a predecessor process paid for. DiskLoaded is the total entries
	// merged from disk, DiskSaves the completed SaveDisk calls.
	DiskHits, DiskLoaded, DiskSaves int64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Stats reports the cache's lookup accounting and current size.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Flushes:    c.flushes.Load(),
		DiskHits:   c.diskHits.Load(),
		DiskLoaded: c.diskLoaded.Load(),
		DiskSaves:  c.diskSaves.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}
