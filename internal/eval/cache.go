package eval

import (
	"math"
	"sync"
	"sync/atomic"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

// ConfigFingerprint hashes the structural fields of an architecture
// configuration — everything a GroupResult can depend on, and nothing it
// cannot (the Name is ignored). Two configs with equal fingerprints are
// evaluation-equivalent, so shared-cache entries and warmed evaluators can
// serve either: a chiplet-reuse candidate at factor 1 or a repeated request
// for the same tuple lands on the same warm state.
func ConfigFingerprint(cfg *arch.Config) uint64 {
	h := uint64(fnvOffset)
	for _, v := range [...]uint64{
		uint64(cfg.CoresX), uint64(cfg.CoresY),
		uint64(cfg.XCut), uint64(cfg.YCut),
		math.Float64bits(cfg.NoCBW), math.Float64bits(cfg.D2DBW),
		math.Float64bits(cfg.DRAMBW),
		uint64(cfg.MACsPerCore), uint64(cfg.GLBPerCore),
		math.Float64bits(cfg.FreqGHz), uint64(cfg.Topology),
	} {
		h = fnv1a(h, v)
	}
	return h
}

// CacheKey addresses one group evaluation in a shared Cache: the
// architecture fingerprint, the graph identity, and the group fingerprint
// (encoding + batch + params + cross-group context).
type CacheKey struct {
	Arch  uint64
	Graph *dnn.Graph
	FP    uint64
}

// cacheShards keeps lock contention low when many DSE workers race on one
// shared cache; the SA hot loop hits the cache on nearly every iteration.
const cacheShards = 64

// cacheShardLimit bounds each shard; a full shard is flushed wholesale
// (same policy as the per-evaluator memo: the working set of any one sweep
// is far below the limit, and a flush only costs recomputation).
const cacheShardLimit = 1 << 14

type cacheShard struct {
	mu sync.RWMutex
	m  map[CacheKey]GroupResult
}

// Cache is a concurrency-safe group-result store shared across evaluators —
// and therefore across architecture candidates, models, SA restarts and
// whole DSE runs. It memoizes exactly what the per-evaluator memo does, so
// serving from the cache is bit-identical to recomputing.
type Cache struct {
	shards                [cacheShards]cacheShard
	hits, misses, flushes atomic.Int64
}

// NewCache returns an empty shared cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[CacheKey]GroupResult)
	}
	return c
}

func (c *Cache) shard(k CacheKey) *cacheShard {
	return &c.shards[(k.Arch^k.FP)%cacheShards]
}

// get returns the cached result for k, counting the hit or miss.
func (c *Cache) get(k CacheKey) (GroupResult, bool) {
	s := c.shard(k)
	s.mu.RLock()
	r, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

// put stores a computed result, flushing the shard if it is full.
func (c *Cache) put(k CacheKey, r GroupResult) {
	s := c.shard(k)
	s.mu.Lock()
	if len(s.m) >= cacheShardLimit {
		clear(s.m)
		c.flushes.Add(1)
	}
	s.m[k] = r
	s.mu.Unlock()
}

// CacheStats is a point-in-time accounting snapshot of a shared cache.
type CacheStats struct {
	Hits, Misses, Flushes int64
	Entries               int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Stats reports the cache's lookup accounting and current size.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Flushes: c.flushes.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}
