package eval

import (
	"math"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
)

func TestWeightStreamingRaisesDRAMTraffic(t *testing.T) {
	// With a generous GLB the FC layer's weights are resident (loaded once
	// per run); with a small GLB they stream every pass, multiplying the
	// DRAM traffic by the pass count.
	g := dnn.NewBuilder("fcnet")
	in := g.Input(1, 1, 4096)
	g.FC("fc1", in, 4096)
	graph := g.MustBuild()

	big := arch.GArch72()
	big.GLBPerCore = 32 * arch.MB
	small := arch.GArch72()
	small.GLBPerCore = 256 * arch.KB

	mk := func(cfg *arch.Config) Result {
		s, err := core.StripeScheme(graph, cfg, [][]int{{0}}, []int{1}, 8)
		if err != nil {
			t.Fatal(err)
		}
		return New(cfg).Evaluate(s)
	}
	rb, rs := mk(&big), mk(&small)
	if !rb.Feasible || !rs.Feasible {
		t.Fatal("infeasible")
	}
	// 16 MB of weights, batch 8: streaming should cost ~8x the resident
	// weight traffic.
	if rs.DRAMBytes < rb.DRAMBytes*3 {
		t.Errorf("streaming DRAM %v should far exceed resident %v", rs.DRAMBytes, rb.DRAMBytes)
	}
	if rs.Energy.DRAM <= rb.Energy.DRAM {
		t.Error("streaming should cost more DRAM energy")
	}
}

func TestWeightPreloadAddsDelayOnce(t *testing.T) {
	// Doubling the batch doubles pass-dependent delay but not the one-time
	// weight preload: delay(2B) < 2*delay(B) when preload is significant.
	g := dnn.NewBuilder("wide")
	in := g.Input(1, 1, 2048)
	g.FC("fc1", in, 2048)
	graph := g.MustBuild()
	cfg := arch.GArch72()
	cfg.GLBPerCore = 16 * arch.MB

	ev := New(&cfg)
	mk := func(batch int) Result {
		s, err := core.StripeScheme(graph, &cfg, [][]int{{0}}, []int{1}, batch)
		if err != nil {
			t.Fatal(err)
		}
		return ev.Evaluate(s)
	}
	d1, d2 := mk(8).Delay, mk(16).Delay
	if d2 >= 2*d1 {
		t.Errorf("preload should amortize: delay(16)=%v vs 2*delay(8)=%v", d2, 2*d1)
	}
	if d2 <= d1 {
		t.Errorf("more batch must still take longer: %v vs %v", d2, d1)
	}
}

func TestLowerD2DBandwidthNeverFaster(t *testing.T) {
	fast := arch.GArch72()
	slow := arch.GArch72()
	slow.D2DBW = 2
	sf, evf := tinyOn(t, &fast, 4, 2)
	rf := evf.Evaluate(sf)
	ss, evs := tinyOn(t, &slow, 4, 2)
	rs := evs.Evaluate(ss)
	if rs.Delay < rf.Delay {
		t.Errorf("slower D2D produced faster result: %v < %v", rs.Delay, rf.Delay)
	}
}

func TestEvaluateEmptySchemeIsInfeasible(t *testing.T) {
	cfg := arch.GArch72()
	ev := New(&cfg)
	s := &core.Scheme{Graph: dnn.TinyCNN(), Batch: 1}
	r := ev.Evaluate(s)
	// No groups: nothing computed; delay 0 -> infinite cost.
	if math.IsInf(Cost(r, 1, 1), 1) == false {
		t.Errorf("empty scheme should cost +Inf, got %v", Cost(r, 1, 1))
	}
}

func TestUtilizationReported(t *testing.T) {
	cfg := arch.GArch72()
	s, ev := tinyOn(t, &cfg, 4, 2)
	r := ev.Evaluate(s)
	for gi, gr := range r.Groups {
		if gr.AvgUtil <= 0 || gr.AvgUtil > 1 {
			t.Errorf("group %d utilization = %v", gi, gr.AvgUtil)
		}
	}
}

func TestGroupCostMatchesDefinition(t *testing.T) {
	cfg := arch.GArch72()
	s, ev := tinyOn(t, &cfg, 4, 2)
	gr := ev.EvaluateGroup(s, 0)
	want := math.Pow(gr.Energy.Total(), 2) * math.Pow(gr.Delay, 0.5)
	if got := GroupCost(gr, 2, 0.5); math.Abs(got-want) > want*1e-12 {
		t.Errorf("GroupCost = %v, want %v", got, want)
	}
	if !math.IsInf(GroupCost(GroupResult{}, 1, 1), 1) {
		t.Error("infeasible group cost should be +Inf")
	}
}

func TestEnergyBreakdownAccessors(t *testing.T) {
	b := EnergyBreakdown{MAC: 1, GLB: 2, NoC: 3, D2D: 4, DRAM: 5}
	if b.Total() != 15 {
		t.Errorf("Total = %v", b.Total())
	}
	if b.IntraCore() != 3 {
		t.Errorf("IntraCore = %v", b.IntraCore())
	}
	if b.Network() != 7 {
		t.Errorf("Network = %v", b.Network())
	}
}
