// Disk spill for the shared evaluation cache. Group results are pure
// functions of their (arch, graph, group) fingerprints, so a cache written
// by one process is valid input for any other: a restarted service warms
// from its predecessor's cells instead of recomputing them.
//
// The format is line-oriented JSON — a version header followed by one entry
// per line — written to a temp file and atomically renamed into place.
// Loading tolerates corruption at entry granularity: a truncated tail or a
// damaged line costs exactly the entries it carried, never the file, and a
// file too broken to parse degrades to a cold cache rather than an error.
// Float fields survive the JSON round trip bit-exactly (Go encodes the
// shortest representation that parses back to the same value), so a
// disk-served result is bit-identical to the recomputation it replaces.
package eval

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// diskHeader is the first line of a spilled cache file.
type diskHeader struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
}

const (
	diskKind    = "gemini-eval-cache"
	diskVersion = 1
)

// diskEntry is one cache cell on disk. Fingerprints are hex strings: JSON
// numbers are float64 and would corrupt uint64 keys past 2^53.
type diskEntry struct {
	Arch   string      `json:"a"`
	Graph  string      `json:"g"`
	FP     string      `json:"f"`
	Result GroupResult `json:"r"`
}

// SaveDisk atomically writes a snapshot of every cache entry (locally
// computed and disk-loaded alike) to path, creating parent directories as
// needed. Entries are emitted in sorted key order, so identical caches
// produce identical files. Concurrent SaveDisk calls are safe: each writes
// its own temp file and the rename is atomic, so readers always see a
// complete file (last writer wins).
func (c *Cache) SaveDisk(path string) error {
	type kv struct {
		k CacheKey
		e cacheEntry
	}
	var all []kv
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, e := range s.m {
			all = append(all, kv{k, e})
		}
		s.mu.RUnlock()
	}
	sort.Slice(all, func(a, b int) bool {
		ka, kb := all[a].k, all[b].k
		if ka.Arch != kb.Arch {
			return ka.Arch < kb.Arch
		}
		if ka.Graph != kb.Graph {
			return ka.Graph < kb.Graph
		}
		return ka.FP < kb.FP
	})

	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eval: cache save: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("eval: cache save: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	if err := enc.Encode(diskHeader{Kind: diskKind, Version: diskVersion}); err != nil {
		tmp.Close()
		return fmt.Errorf("eval: cache save: %w", err)
	}
	for _, e := range all {
		de := diskEntry{
			Arch:   fmt.Sprintf("%016x", e.k.Arch),
			Graph:  fmt.Sprintf("%016x", e.k.Graph),
			FP:     fmt.Sprintf("%016x", e.k.FP),
			Result: e.e.r,
		}
		if err := enc.Encode(de); err != nil {
			tmp.Close()
			return fmt.Errorf("eval: cache save: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("eval: cache save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("eval: cache save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("eval: cache save: %w", err)
	}
	c.diskSaves.Add(1)
	return nil
}

// LoadDisk merges a previously spilled cache file into the cache and
// reports how many entries it added. A missing file is a cold start, not an
// error. Corruption is tolerated at entry granularity: undecodable lines
// (and anything past a truncation point) are skipped, a header from an
// unknown version or kind skips the whole file, and in every such case the
// cache simply stays colder — LoadDisk errors only on real I/O failure.
// Entries already present in memory are kept (they are bit-identical by key
// determinism, and keeping them preserves the locally-computed provenance
// of the accounting).
func (c *Cache) LoadDisk(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("eval: cache load: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		return 0, nil // empty or truncated-to-nothing: cold
	}
	var hdr diskHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil ||
		hdr.Kind != diskKind || hdr.Version != diskVersion {
		return 0, nil // foreign or future file: cold, never an error
	}

	loaded := 0
	for sc.Scan() {
		var de diskEntry
		if err := json.Unmarshal(sc.Bytes(), &de); err != nil {
			continue // damaged line: skip just this entry
		}
		var k CacheKey
		if !parseHexFP(de.Arch, &k.Arch) || !parseHexFP(de.Graph, &k.Graph) || !parseHexFP(de.FP, &k.FP) {
			continue
		}
		if c.insertFromDisk(k, de.Result) {
			loaded++
		}
	}
	// A scanner error (oversized or unterminated line) means a damaged
	// tail; everything before it already merged, so degrade, don't fail.
	c.diskLoaded.Add(int64(loaded))
	return loaded, nil
}

// insertFromDisk adds a disk entry unless the key is already present,
// respecting the shard size bound.
func (c *Cache) insertFromDisk(k CacheKey, r GroupResult) bool {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; ok {
		return false
	}
	if len(s.m) >= cacheShardLimit {
		clear(s.m)
		c.flushes.Add(1)
	}
	s.m[k] = cacheEntry{r: r, disk: true}
	return true
}

// parseHexFP decodes a 64-bit hex fingerprint.
func parseHexFP(s string, out *uint64) bool {
	if len(s) == 0 || len(s) > 16 {
		return false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return false
		}
		v = v<<4 | d
	}
	*out = v
	return true
}
