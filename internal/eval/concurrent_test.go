package eval

import (
	"sync"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
)

// TestConcurrentEvaluateGroup hammers one shared Evaluator — and therefore
// one shared route table, scratch pool, and group memo — from many
// goroutines. Run with -race it proves the documented "safe for concurrent
// use" contract survives the allocation-free scratch machinery.
func TestConcurrentEvaluateGroup(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	ids := make([]int, len(g.Layers))
	for i := range ids {
		ids[i] = i
	}
	s, err := core.StripeScheme(g, &cfg, [][]int{ids}, []int{2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(&cfg)
	want := ev.EvaluateGroup(s, 0)
	if !want.Feasible {
		t.Fatal("reference evaluation infeasible")
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := ev.EvaluateGroup(s, 0)
				if got != want {
					errs <- "concurrent evaluation diverged from reference"
					return
				}
				if r := ev.Evaluate(s); r.Delay != want.Delay {
					errs <- "full evaluation diverged from reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
