package eval

import (
	"gemini/internal/core"
	"gemini/internal/noc"
)

// SimulateGroupNet cross-validates the analytic per-pass network time of a
// layer group against the event-driven max-min contention simulator:
// multicast flows are conservatively expanded to per-destination unicasts
// and DRAM transfers enter at their port cores. It returns the simulated
// and the analytic drain times; the simulated time is an upper bound on the
// analytic bottleneck for the same unicast expansion.
func (e *Evaluator) SimulateGroupNet(s *core.Scheme, gi int) (simulated, analytic float64, err error) {
	an, err := core.Analyze(s, gi, e.Cfg)
	if err != nil {
		return 0, 0, err
	}
	var flows []noc.SimFlow
	for _, f := range an.ActFlows {
		for _, d := range f.Dsts {
			flows = append(flows, noc.SimFlow{Src: f.Src, Dst: d, Bytes: f.Bytes})
		}
	}
	ctrls := e.Net.Controllers()
	for _, f := range an.ActDRAM {
		ctrlList := []int{f.Ctrl}
		bytes := f.Bytes
		if f.Ctrl < 0 { // interleaved: spread over all controllers
			ctrlList = ctrlList[:0]
			for c := 0; c < ctrls; c++ {
				ctrlList = append(ctrlList, c)
			}
			bytes /= float64(ctrls)
		}
		for _, ctrl := range ctrlList {
			if f.Write {
				port := e.Net.PortCore(ctrl, f.Cores[0])
				flows = append(flows, noc.SimFlow{Src: f.Cores[0], Dst: port, Bytes: bytes})
				continue
			}
			for _, c := range f.Cores {
				port := e.Net.PortCore(ctrl, c)
				flows = append(flows, noc.SimFlow{Src: port, Dst: c, Bytes: bytes})
			}
		}
	}
	res, err := e.Net.Simulate(flows)
	if err != nil {
		return 0, 0, err
	}
	return res.DrainTime, e.Net.AnalyticDrain(flows), nil
}
