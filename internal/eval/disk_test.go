package eval

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
)

func populatedCache(t *testing.T) (*Cache, int) {
	t.Helper()
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	// One group per layer, so the cache holds several distinct entries.
	groups := make([][]int, len(g.Layers))
	bus := make([]int, len(g.Layers))
	for i := range g.Layers {
		groups[i] = []int{i}
		bus[i] = 1
	}
	s, err := core.StripeScheme(g, &cfg, groups, bus, 4)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	NewWithCache(&cfg, cache).Evaluate(s)
	n := cache.Stats().Entries
	if n < 3 {
		t.Fatalf("populated cache has only %d entries; corruption cases need more", n)
	}
	return cache, n
}

// TestDiskRoundTripBitIdentical: a cache loaded from disk must serve every
// entry the original held, bit-identically, and must account the hits as
// disk-served.
func TestDiskRoundTripBitIdentical(t *testing.T) {
	cfg := arch.GArch72()
	s := cacheTestScheme(t, &cfg)
	cache := NewCache()
	want := NewWithCache(&cfg, cache).Evaluate(s)

	path := filepath.Join(t.TempDir(), "sub", "cache.ndjson")
	if err := cache.SaveDisk(path); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.DiskSaves != 1 {
		t.Errorf("DiskSaves = %d, want 1", st.DiskSaves)
	}

	warm := NewCache()
	n, err := warm.LoadDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != cache.Stats().Entries {
		t.Fatalf("loaded %d entries, want %d", n, cache.Stats().Entries)
	}
	got := NewWithCache(&cfg, warm).Evaluate(s)
	if got.Feasible != want.Feasible || got.Delay != want.Delay ||
		got.Energy != want.Energy || got.DRAMBytes != want.DRAMBytes {
		t.Fatalf("disk-warmed result diverged: %+v vs %+v", got, want)
	}
	st := warm.Stats()
	if st.Misses != 0 {
		t.Errorf("disk-warmed evaluation recomputed %d groups", st.Misses)
	}
	if st.DiskHits == 0 || st.DiskLoaded != int64(n) {
		t.Errorf("disk accounting wrong: %+v", st)
	}
}

// TestDiskSaveDeterministic: identical caches write identical bytes (sorted
// key order), so spill files are diffable and content-addressable.
func TestDiskSaveDeterministic(t *testing.T) {
	cache, _ := populatedCache(t)
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := cache.SaveDisk(a); err != nil {
		t.Fatal(err)
	}
	if err := cache.SaveDisk(b); err != nil {
		t.Fatal(err)
	}
	ab, _ := os.ReadFile(a)
	bb, _ := os.ReadFile(b)
	if !bytes.Equal(ab, bb) {
		t.Error("two saves of one cache differ")
	}
}

// TestDiskLoadMissingIsCold: no file means a cold start, not an error.
func TestDiskLoadMissingIsCold(t *testing.T) {
	c := NewCache()
	n, err := c.LoadDisk(filepath.Join(t.TempDir(), "absent.ndjson"))
	if err != nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v, want 0, nil", n, err)
	}
}

// TestDiskLoadCorruptionTolerance: truncated tails and damaged lines cost
// only the entries they carried; garbage files degrade to cold. Nothing
// here may return an error.
func TestDiskLoadCorruptionTolerance(t *testing.T) {
	cache, total := populatedCache(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.ndjson")
	if err := cache.SaveDisk(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")

	damaged := append([]string{}, lines...)
	damaged[1+total/2] = "{garbage\n" // overwrite one entry line
	cases := map[string]string{
		// Mid-entry truncation: the complete prefix lines must survive.
		"truncated": string(raw[:len(raw)-len(lines[len(lines)-2])/2-1]),
		// One damaged line in the middle: every other entry must survive.
		"damaged-line": strings.Join(damaged, ""),
		// Not a cache file at all.
		"garbage": "hello world\nnot json\n",
		// Wrong version header.
		"future-version": `{"kind":"gemini-eval-cache","version":999}` + "\n" + strings.Join(lines[1:], ""),
		// Empty file.
		"empty": "",
	}
	minLoaded := map[string]int{
		"truncated":      total - 2,
		"damaged-line":   total - 1,
		"garbage":        0,
		"future-version": 0,
		"empty":          0,
	}
	maxLoaded := map[string]int{
		"truncated":      total - 1,
		"damaged-line":   total - 1,
		"garbage":        0,
		"future-version": 0,
		"empty":          0,
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		c := NewCache()
		n, err := c.LoadDisk(p)
		if err != nil {
			t.Errorf("%s: LoadDisk errored (%v); corruption must degrade to cold", name, err)
		}
		if n < minLoaded[name] || n > maxLoaded[name] {
			t.Errorf("%s: loaded %d entries, want in [%d, %d] of %d",
				name, n, minLoaded[name], maxLoaded[name], total)
		}
	}
}

// TestDiskConcurrentSaveLoad exercises save/load racing against live use of
// the cache (run under -race in CI): the coalesced background saver snapshots
// while evaluations insert and a second cache loads the latest spill.
func TestDiskConcurrentSaveLoad(t *testing.T) {
	cfg := arch.GArch72()
	s := cacheTestScheme(t, &cfg)
	cache := NewCache()
	path := filepath.Join(t.TempDir(), "cache.ndjson")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := NewWithCache(&cfg, cache)
			for i := 0; i < 20; i++ {
				ev.Evaluate(s)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := cache.SaveDisk(path); err != nil {
				t.Errorf("save: %v", err)
				return
			}
			other := NewCache()
			if _, err := other.LoadDisk(path); err != nil {
				t.Errorf("load: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestGraphFingerprintStructural: names do not matter, structure does, and
// the fingerprint is stable per pointer.
func TestGraphFingerprintStructural(t *testing.T) {
	a := dnn.TinyCNN()
	b := dnn.TinyCNN()
	b.Name = "renamed"
	if GraphFingerprint(a) != GraphFingerprint(b) {
		t.Error("fingerprint depends on graph name")
	}
	if GraphFingerprint(a) != GraphFingerprint(a) {
		t.Error("fingerprint not stable")
	}
	c := dnn.TinyTransformer()
	if GraphFingerprint(a) == GraphFingerprint(c) {
		t.Error("structurally different graphs collide")
	}
}
