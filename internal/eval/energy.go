package eval

// Params holds the technology constants of the evaluator's energy model.
// All values are picojoules. The absolute values are calibrated analytic
// constants (the paper's come from a chip tape-out); the ratios that drive
// every trend the paper reports are preserved:
//
//   - D2D transfers cost ~8x an on-chip hop per bit (paper Sec. II-A:
//     "several to dozens of times more energy than the less than 0.1 pJ/bit
//     on-chip cost"; GRS is 1.17 pJ/b).
//   - DRAM accesses dwarf on-chip transfers, so LP mapping's DRAM savings
//     dominate (paper Sec. VII-A2).
type Params struct {
	MACpJ           float64 // per int8 multiply-accumulate incl. local regs
	VecOppJ         float64 // per vector-unit operation
	GLBpJPerByte    float64 // per GLB byte read/written
	NoCHoppJPerByte float64 // per byte per on-chip link traversed
	RouterpJPerByte float64 // per byte per router (input buffer + crossbar)
	D2DpJPerByte    float64 // per byte over a D2D link (clock-forwarding GRS)
	DRAMpJPerByte   float64 // per DRAM byte (device + PHY)

	// D2DModel selects between the paper's two D2D energy models
	// (Sec. V-B2). GRS (clock-forwarding) is the default for parity with
	// the Simba baseline.
	D2DModel D2DModel
	// SerDesPJPerBit is the always-on per-bit cost of the clock-embedded
	// model: power per interface = bandwidth x this.
	SerDesPJPerBit float64
}

// D2DModel enumerates the two D2D energy models of Sec. V-B2.
type D2DModel int

const (
	// GRS is clock-forwarding: energy proportional to transferred volume,
	// low-power idle state.
	GRS D2DModel = iota
	// SerDes is clock-embedded: near-constant power whether or not data is
	// being transmitted, so energy = interfaces x power x latency.
	SerDes
)

// DefaultParams returns the calibrated constants used throughout the
// experiments.
func DefaultParams() Params {
	return Params{
		MACpJ:           0.25,
		VecOppJ:         0.4,
		GLBpJPerByte:    1.0,
		NoCHoppJPerByte: 0.8, // 0.1 pJ/bit on-chip lines
		RouterpJPerByte: 0.4,
		D2DpJPerByte:    9.4, // 1.17 pJ/bit GRS
		DRAMpJPerByte:   60,
		D2DModel:        GRS,
		SerDesPJPerBit:  1.55,
	}
}

const pJ = 1e-12

// EnergyBreakdown is the per-component energy of a mapping, in joules,
// matching the stacks of Fig. 5/7/8 (network split into router/wire on-chip
// energy, D2D, intra-core compute+buffer, DRAM).
type EnergyBreakdown struct {
	MAC  float64
	GLB  float64
	NoC  float64
	D2D  float64
	DRAM float64
}

// Total sums all components.
func (e EnergyBreakdown) Total() float64 {
	return e.MAC + e.GLB + e.NoC + e.D2D + e.DRAM
}

// IntraCore groups the components the paper plots as "intra-tile energy".
func (e EnergyBreakdown) IntraCore() float64 { return e.MAC + e.GLB }

// Network groups the on-chip plus D2D transfer energy.
func (e EnergyBreakdown) Network() float64 { return e.NoC + e.D2D }

// add accumulates o scaled by f.
func (e *EnergyBreakdown) add(o EnergyBreakdown, f float64) {
	e.MAC += o.MAC * f
	e.GLB += o.GLB * f
	e.NoC += o.NoC * f
	e.D2D += o.D2D * f
	e.DRAM += o.DRAM * f
}
