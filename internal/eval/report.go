package eval

import (
	"fmt"
	"io"
	"sort"

	"gemini/internal/core"
	"gemini/internal/dnn"
)

// Bottleneck classifies what limits a group's stage time.
type Bottleneck string

// Bottleneck kinds.
const (
	ComputeBound Bottleneck = "compute"
	NetworkBound Bottleneck = "network"
	DRAMBound    Bottleneck = "dram"
)

// LayerReport details one layer's share of a group (the "Energy & Delay
// Report" output of the framework, paper Fig. 4).
type LayerReport struct {
	Layer int
	Name  string
	Kind  dnn.Kind

	Cores          int
	Part           core.Part
	MACs           int64
	MaxCoreCycles  int64
	InBytesPerPass int64
	WeightBytes    int64
}

// GroupReport details one layer group.
type GroupReport struct {
	Index     int
	BatchUnit int
	Passes    int
	Depth     int

	StageTime  float64
	Delay      float64
	Bottleneck Bottleneck

	ComputeTime float64
	NetTime     float64
	DRAMTime    float64

	Layers []LayerReport
}

// SchemeReport is the full per-mapping report.
type SchemeReport struct {
	Model  string
	Arch   string
	Batch  int
	Delay  float64
	Energy EnergyBreakdown
	Groups []GroupReport
}

// Report produces the detailed evaluation report of a validated scheme.
func (e *Evaluator) Report(s *core.Scheme) (*SchemeReport, error) {
	rep := &SchemeReport{
		Model: s.Graph.Name,
		Arch:  e.Cfg.Name,
		Batch: s.Batch,
	}
	total := e.Evaluate(s)
	if !total.Feasible {
		return nil, fmt.Errorf("eval: scheme infeasible on %s", e.Cfg.Name)
	}
	rep.Delay = total.Delay
	rep.Energy = total.Energy
	cp := e.coreParams()
	freqHz := e.Cfg.FreqGHz * 1e9

	for gi, lms := range s.Groups {
		an, err := core.Analyze(s, gi, e.Cfg)
		if err != nil {
			return nil, err
		}
		gr := total.Groups[gi]
		grep := GroupReport{
			Index:     gi,
			BatchUnit: lms.BatchUnit,
			Passes:    gr.Passes,
			Depth:     gr.Depth,
			StageTime: gr.StageTime,
			Delay:     gr.Delay,
		}

		// Per-layer rollup.
		perLayer := map[int]*LayerReport{}
		var order []int
		var maxComp float64
		for _, pi := range an.ByLayer {
			for _, idx := range pi {
				pw := an.PWs[idx]
				lr, ok := perLayer[pw.Layer]
				if !ok {
					l := s.Graph.Layer(pw.Layer)
					ms := lms.MSFor(pw.Layer)
					lr = &LayerReport{Layer: pw.Layer, Name: l.Name, Kind: l.Kind, Part: ms.Part}
					perLayer[pw.Layer] = lr
					order = append(order, pw.Layer)
				}
				lr.Cores++
				w := an.Works[pw.Core]
				lr.MACs += w.MACs
				lr.InBytesPerPass += w.InBytes
				lr.WeightBytes += w.WBytes
				r := e.Memo.Explore(w, cp)
				cycles := r.Cycles
				if r.VecCycles > cycles {
					cycles = r.VecCycles
				}
				if cycles > lr.MaxCoreCycles {
					lr.MaxCoreCycles = cycles
				}
				if t := float64(cycles) / freqHz; t > maxComp {
					maxComp = t
				}
			}
		}
		sort.Ints(order)
		for _, id := range order {
			grep.Layers = append(grep.Layers, *perLayer[id])
		}

		// Bottleneck attribution: recompute the three stage-time terms.
		grep.ComputeTime = maxComp
		tr := e.Net.NewTraffic()
		for _, f := range an.ActFlows {
			tr.AddMulticast(f.Src, f.Dsts, f.Bytes)
		}
		netOnly := tr.BottleneckTime()
		trD := e.Net.NewTraffic()
		for _, f := range an.ActDRAM {
			if f.Write {
				trD.AddDRAMWrite(f.Ctrl, f.Cores[0], f.Bytes)
			} else {
				trD.AddDRAMReadMulticast(f.Ctrl, f.Cores, f.Bytes)
			}
		}
		dramOnly := trD.BottleneckTime()
		grep.NetTime = netOnly
		grep.DRAMTime = dramOnly
		switch {
		case maxComp >= netOnly && maxComp >= dramOnly:
			grep.Bottleneck = ComputeBound
		case netOnly >= dramOnly:
			grep.Bottleneck = NetworkBound
		default:
			grep.Bottleneck = DRAMBound
		}
		rep.Groups = append(rep.Groups, grep)
	}
	return rep, nil
}

// Print writes a human-readable report.
func (r *SchemeReport) Print(w io.Writer) {
	fmt.Fprintf(w, "mapping report: %s on %s, batch %d\n", r.Model, r.Arch, r.Batch)
	fmt.Fprintf(w, "total delay %.6g s, energy %.6g J (dram %.3g, noc %.3g, d2d %.3g, intra %.3g)\n",
		r.Delay, r.Energy.Total(), r.Energy.DRAM, r.Energy.NoC, r.Energy.D2D, r.Energy.IntraCore())
	for _, g := range r.Groups {
		fmt.Fprintf(w, "\ngroup %d: bu=%d passes=%d depth=%d stage=%.4gs (%s-bound: comp %.3g, net %.3g, dram %.3g)\n",
			g.Index, g.BatchUnit, g.Passes, g.Depth, g.StageTime, g.Bottleneck,
			g.ComputeTime, g.NetTime, g.DRAMTime)
		for _, l := range g.Layers {
			fmt.Fprintf(w, "  %-14s %-8s part(%d,%d,%d,%d) cores=%-3d macs=%-12d cycles=%-9d in=%dB w=%dB\n",
				l.Name, l.Kind, l.Part.H, l.Part.W, l.Part.B, l.Part.K,
				l.Cores, l.MACs, l.MaxCoreCycles, l.InBytesPerPass, l.WeightBytes)
		}
	}
}

// BottleneckHistogram counts groups per bottleneck class, used by the
// experiment notes (e.g. explaining S-Arch's compute-bound stages).
func (r *SchemeReport) BottleneckHistogram() map[Bottleneck]int {
	h := map[Bottleneck]int{}
	for _, g := range r.Groups {
		h[g.Bottleneck]++
	}
	return h
}
