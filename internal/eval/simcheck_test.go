package eval

import (
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
)

func TestSimulateGroupNetBounds(t *testing.T) {
	cfg := arch.GArch72()
	s, ev := tinyOn(t, &cfg, 4, 2)
	sim, analytic, err := ev.SimulateGroupNet(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sim <= 0 || analytic <= 0 {
		t.Fatalf("degenerate times: sim=%v analytic=%v", sim, analytic)
	}
	if sim < analytic*(1-1e-9) {
		t.Errorf("simulated %v below analytic bottleneck %v", sim, analytic)
	}
	// The analytic model is a steady-state bound; contention can stretch
	// the drain, but not unboundedly for these small groups.
	if sim > analytic*10 {
		t.Errorf("simulated %v implausibly above analytic %v", sim, analytic)
	}
}

func TestSimulateGroupNetAfterSA(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	s, err := core.StripeScheme(g, &cfg, [][]int{allLayers(g)}, []int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(&cfg)
	sim, analytic, err := ev.SimulateGroupNet(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sim < analytic*(1-1e-9) {
		t.Errorf("simulated %v below analytic %v", sim, analytic)
	}
}
