// Package eval implements the Gemini Evaluator (Sec. V-B2): it turns an
// analyzed LP SPM scheme into delay and energy numbers using the analytic
// bottleneck model — per-pass stage time is the maximum of per-core compute
// time, the most loaded NoC/D2D link, and the most loaded DRAM controller;
// a layer group's delay accounts for pipeline fill/drain via its dependency
// depth; energy sums per-component operation counts times unit energies.
//
//gemini:deterministic
//gemini:documented
package eval

import (
	"math"
	"slices"
	"sync"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/intracore"
	"gemini/internal/noc"
)

// GroupResult is the evaluation of one layer group.
type GroupResult struct {
	Feasible bool

	Passes    int
	Depth     int
	StageTime float64 // seconds per batch-unit pass at steady state
	Delay     float64 // seconds for the whole batch through this group

	Energy EnergyBreakdown

	// Per-pass traffic statistics for the Fig. 7 / Fig. 9 analyses.
	NoCBytes, D2DBytes, DRAMBytes float64
	MaxLinkLoad                   float64
	AvgUtil                       float64
}

// Result is the evaluation of a full scheme.
type Result struct {
	Feasible bool
	Delay    float64 // seconds
	Energy   EnergyBreakdown
	Groups   []GroupResult

	// DRAMBytes is total DRAM traffic, the quantity Fig. 7 tracks against
	// core count.
	DRAMBytes float64
}

// EnergyJ returns total energy in joules.
func (r *Result) EnergyJ() float64 { return r.Energy.Total() }

// EDP returns the energy-delay product (J*s), the Fig. 6 metric.
func (r *Result) EDP() float64 { return r.Energy.Total() * r.Delay }

// AvgLayersPerGroup reports the mean number of layers processed
// simultaneously (paper Sec. VII-A2).
func AvgLayersPerGroup(s *core.Scheme) float64 {
	if len(s.Groups) == 0 {
		return 0
	}
	n := 0
	for _, g := range s.Groups {
		n += len(g.MSs)
	}
	return float64(n) / float64(len(s.Groups))
}

// Evaluator evaluates schemes for one architecture. It is safe for
// concurrent use.
//
// The evaluator memoizes GroupResults keyed by a fingerprint of the group's
// encoding (plus the cross-group flow-of-data context it reads), so SA
// states that revisit a previously seen group configuration skip the whole
// Analyze/explore/traffic pipeline. Graphs are identified by pointer: a
// *dnn.Graph must not be mutated after schemes referencing it have been
// evaluated. Params may change between evaluations (it is hashed into the
// fingerprint) but must not be written concurrently with an in-flight
// evaluation.
type Evaluator struct {
	Cfg    *arch.Config
	Net    *noc.Network
	Memo   *intracore.Memo
	Params Params

	d2dIfaces int
	scratch   sync.Pool

	memoMu    sync.Mutex
	groupMemo map[groupKey]GroupResult

	// shared, when set, replaces the per-evaluator memo with a cache shared
	// across evaluators (and so across DSE candidates and runs); archFP is
	// this evaluator's ConfigFingerprint, computed once.
	shared *Cache
	archFP uint64
}

type groupKey struct {
	graph *dnn.Graph
	fp    uint64
}

// groupMemoLimit bounds the per-evaluator memo; the map is flushed when it
// fills (a full flush is simpler than LRU and the working set of one SA run
// is far below the limit).
const groupMemoLimit = 1 << 16

// evalScratch is the reusable per-evaluation state: one pooled Traffic pair
// (per-pass and load-once), the parsed Analysis, and the resident/coreOrder
// buffers. Pooled per evaluator so concurrent evaluations do not contend.
type evalScratch struct {
	an        *core.Analysis
	tr, wOnce *noc.Traffic
	resident  []bool // indexed by CoreID; valid only for occupied cores
	coreOrder []arch.CoreID
	resBuf    []arch.CoreID
	strBuf    []arch.CoreID
}

// New builds an evaluator with default energy parameters.
func New(cfg *arch.Config) *Evaluator {
	e := &Evaluator{
		Cfg:       cfg,
		Net:       noc.New(cfg),
		Memo:      intracore.NewMemo(),
		Params:    DefaultParams(),
		groupMemo: make(map[groupKey]GroupResult),
	}
	for _, l := range e.Net.Links {
		if l.D2D {
			e.d2dIfaces++
		}
	}
	e.scratch.New = func() any {
		return &evalScratch{
			an:       new(core.Analysis),
			tr:       e.Net.NewTraffic(),
			wOnce:    e.Net.NewTraffic(),
			resident: make([]bool, cfg.Cores()),
		}
	}
	return e
}

// UseCache switches the evaluator from its private memo to a shared cache.
// Must be called before the first evaluation and never concurrently with
// one. Results served from the shared cache are bit-identical to locally
// computed ones: the cache stores exactly what the private memo would.
func (e *Evaluator) UseCache(c *Cache) {
	e.shared = c
	e.archFP = ConfigFingerprint(e.Cfg)
}

// NewWithCache builds an evaluator whose group-result memo is the shared
// cache c instead of a private map.
func NewWithCache(cfg *arch.Config, c *Cache) *Evaluator {
	e := New(cfg)
	e.UseCache(c)
	return e
}

func (e *Evaluator) coreParams() intracore.Core {
	return intracore.Core{MACs: e.Cfg.MACsPerCore, GLB: e.Cfg.GLBPerCore, FreqGHz: e.Cfg.FreqGHz}
}

// EvaluateGroup evaluates one layer group of a validated scheme, consulting
// the group-result memo first: a group configuration seen before (same
// encoding, batch, cross-group data placement and energy parameters) is
// returned without re-analysis.
//
//gemini:noalloc
func (e *Evaluator) EvaluateGroup(s *core.Scheme, gi int) GroupResult {
	fp := e.groupFingerprint(s, gi)
	if e.shared != nil {
		key := CacheKey{Arch: e.archFP, Graph: GraphFingerprint(s.Graph), FP: fp}
		if r, ok := e.shared.get(key); ok {
			return r
		}
		r := e.computeGroup(s, gi)
		e.shared.put(key, r)
		return r
	}

	key := groupKey{graph: s.Graph, fp: fp}
	e.memoMu.Lock()
	if r, ok := e.groupMemo[key]; ok {
		e.memoMu.Unlock()
		return r
	}
	e.memoMu.Unlock()

	r := e.computeGroup(s, gi)

	e.memoMu.Lock()
	if len(e.groupMemo) >= groupMemoLimit {
		clear(e.groupMemo)
	}
	e.groupMemo[key] = r
	e.memoMu.Unlock()
	return r
}

// computeGroup runs the Analyze/explore/traffic pipeline for one group.
//
//gemini:noalloc
func (e *Evaluator) computeGroup(s *core.Scheme, gi int) GroupResult {
	sc := e.scratch.Get().(*evalScratch)
	var r GroupResult
	if err := core.AnalyzeInto(sc.an, s, gi, e.Cfg); err == nil {
		r = e.evaluateAnalysis(sc, s.Batch)
	}
	e.scratch.Put(sc)
	return r
}

// evaluateAnalysis turns one parsed group analysis into a GroupResult using
// the scratch buffers only.
//
//gemini:noalloc
func (e *Evaluator) evaluateAnalysis(sc *evalScratch, batch int) GroupResult {
	an := sc.an
	cp := e.coreParams()
	freqHz := e.Cfg.FreqGHz * 1e9

	// Intra-core exploration per occupied core. resident is indexed by core
	// ID and only written for occupied cores — exactly the cores the weight
	// flows below can reference — so stale entries are never read and the
	// buffer needs no clearing between evaluations.
	var maxComp float64
	var compEnergy EnergyBreakdown
	var utilSum float64
	nUtil := 0
	resident := sc.resident
	coreOrder := sc.coreOrder[:0]
	for c := range an.Works {
		coreOrder = append(coreOrder, c)
	}
	sc.coreOrder = coreOrder
	slices.Sort(coreOrder)
	for _, c := range coreOrder {
		w := an.Works[c]
		r := e.Memo.Explore(w, cp)
		if !r.Feasible {
			return GroupResult{}
		}
		resident[c] = r.WeightsResident
		cycles := r.Cycles
		if r.VecCycles > cycles {
			cycles = r.VecCycles
		}
		if t := float64(cycles) / freqHz; t > maxComp {
			maxComp = t
		}
		compEnergy.MAC += float64(w.MACs)*e.Params.MACpJ*pJ + float64(w.VecOps)*e.Params.VecOppJ*pJ
		compEnergy.GLB += r.GLBBytes * e.Params.GLBpJPerByte * pJ
		if w.MACs > 0 {
			utilSum += r.Util
			nUtil++
		}
	}

	// Per-pass activation traffic.
	tr := sc.tr
	tr.Reset()
	for _, f := range an.ActFlows {
		tr.AddMulticast(f.Src, f.Dsts, f.Bytes)
	}
	for _, f := range an.ActDRAM {
		if f.Write {
			tr.AddDRAMWrite(f.Ctrl, f.Cores[0], f.Bytes)
		} else {
			tr.AddDRAMReadMulticast(f.Ctrl, f.Cores, f.Bytes)
		}
	}

	// Weight loading: GLB-resident slices load once per run; slices that do
	// not fit stream every pass.
	wOnce := sc.wOnce
	wOnce.Reset()
	for _, f := range an.WeightFlows {
		res, str := sc.resBuf[:0], sc.strBuf[:0]
		for _, c := range f.Cores {
			if resident[c] {
				res = append(res, c)
			} else {
				str = append(str, c)
			}
		}
		sc.resBuf, sc.strBuf = res, str
		if len(res) > 0 {
			wOnce.AddDRAMReadMulticast(f.Ctrl, res, f.Bytes)
		}
		if len(str) > 0 {
			tr.AddDRAMReadMulticast(f.Ctrl, str, f.Bytes)
		}
	}

	passes := (batch + an.BatchUnit - 1) / an.BatchUnit
	commTime := tr.BottleneckTime()
	stage := math.Max(maxComp, commTime)
	if stage <= 0 {
		return GroupResult{}
	}
	preload := wOnce.BottleneckTime()
	delay := float64(passes+an.Depth-1)*stage + preload

	res := GroupResult{
		Feasible:  true,
		Passes:    passes,
		Depth:     an.Depth,
		StageTime: stage,
		Delay:     delay,
	}
	res.NoCBytes, res.D2DBytes, res.DRAMBytes = tr.TotalBytes()
	res.MaxLinkLoad, _ = tr.MaxLinkLoad()
	if nUtil > 0 {
		res.AvgUtil = utilSum / float64(nUtil)
	}

	perPass := e.transferEnergy(tr)
	once := e.transferEnergy(wOnce)
	res.Energy.add(compEnergy, float64(passes))
	res.Energy.add(perPass, float64(passes))
	res.Energy.add(once, 1)

	if e.Params.D2DModel == SerDes && e.Cfg.Chiplets() > 1 {
		// Clock-embedded D2D: interfaces burn power for the whole group
		// runtime regardless of traffic.
		powerW := e.Cfg.D2DBW * 1e9 * 8 * e.Params.SerDesPJPerBit * pJ
		res.Energy.D2D = float64(e.d2dIfaces) * powerW * delay
	}
	res.DRAMBytes *= float64(passes)
	res.NoCBytes *= float64(passes)
	res.D2DBytes *= float64(passes)
	ow, dw, drw := wOnce.TotalBytes()
	res.NoCBytes += ow
	res.D2DBytes += dw
	res.DRAMBytes += drw
	return res
}

// transferEnergy converts accumulated traffic into a per-pass energy
// breakdown under the clock-forwarding (volume-proportional) model.
func (e *Evaluator) transferEnergy(tr *noc.Traffic) EnergyBreakdown {
	onchip, d2d, dram := tr.TotalBytes()
	var b EnergyBreakdown
	b.NoC = onchip * (e.Params.NoCHoppJPerByte + e.Params.RouterpJPerByte) * pJ
	b.D2D = d2d * (e.Params.D2DpJPerByte + e.Params.RouterpJPerByte) * pJ
	b.DRAM = dram * e.Params.DRAMpJPerByte * pJ
	return b
}

// FNV-1a constants for the group fingerprint.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv1a folds one 64-bit word into the hash, byte by byte.
func fnv1a(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// groupFingerprint hashes everything EvaluateGroup's result depends on
// beyond the architecture itself: the energy parameters (the Params field is
// mutable), the batch, the group's full encoding, and — for inputs produced
// outside the group — the DRAM where the producer stored its ofmaps.
func (e *Evaluator) groupFingerprint(s *core.Scheme, gi int) uint64 {
	h := uint64(fnvOffset)
	p := &e.Params
	for _, f := range [...]float64{p.MACpJ, p.VecOppJ, p.GLBpJPerByte, p.NoCHoppJPerByte,
		p.RouterpJPerByte, p.D2DpJPerByte, p.DRAMpJPerByte, p.SerDesPJPerBit} {
		h = fnv1a(h, math.Float64bits(f))
	}
	h = fnv1a(h, uint64(p.D2DModel))
	h = fnv1a(h, uint64(s.Batch))
	lms := s.Groups[gi]
	h = fnv1a(h, uint64(lms.BatchUnit))
	for _, ms := range lms.MSs {
		h = fnv1a(h, uint64(ms.Layer))
		h = fnv1a(h, uint64(ms.Part.H))
		h = fnv1a(h, uint64(ms.Part.W))
		h = fnv1a(h, uint64(ms.Part.B))
		h = fnv1a(h, uint64(ms.Part.K))
		h = fnv1a(h, uint64(int64(ms.FD.IF)))
		h = fnv1a(h, uint64(int64(ms.FD.WGT)))
		h = fnv1a(h, uint64(int64(ms.FD.OF)))
		for _, c := range ms.CG {
			h = fnv1a(h, uint64(c))
		}
		h = fnv1a(h, ^uint64(0)) // CG terminator
	}
	// Cross-group context: where each outside-produced input lives. Mirrors
	// Analyze's ofDRAM resolution — "-2" marks a producer with no explicit
	// ofmap destination anywhere in the scheme (interleaved fallback).
	for _, ms := range lms.MSs {
		for _, edge := range s.Graph.Layer(ms.Layer).Inputs {
			if edge.Src < 0 || lms.MSFor(edge.Src) != nil {
				continue
			}
			of := -2
			for _, g2 := range s.Groups {
				if m2 := g2.MSFor(edge.Src); m2 != nil {
					if m2.FD.OF != core.FDImplicit {
						of = m2.FD.OF
					}
					break
				}
			}
			h = fnv1a(h, uint64(edge.Src))
			h = fnv1a(h, uint64(int64(of)))
		}
	}
	return h
}

// Evaluate evaluates a full scheme: groups run one after another, so delays
// and energies sum.
func (e *Evaluator) Evaluate(s *core.Scheme) Result {
	res := Result{Feasible: true, Groups: make([]GroupResult, len(s.Groups))}
	for gi := range s.Groups {
		gr := e.EvaluateGroup(s, gi)
		res.Groups[gi] = gr
		if !gr.Feasible {
			res.Feasible = false
			res.Delay = math.Inf(1)
			return res
		}
		res.Delay += gr.Delay
		res.Energy.add(gr.Energy, 1)
		res.DRAMBytes += gr.DRAMBytes
	}
	return res
}

// Cost computes the mapping objective E^beta * D^gamma (paper Sec. V-A).
// Infeasible results cost +Inf.
func Cost(r Result, beta, gamma float64) float64 {
	if !r.Feasible || r.Delay <= 0 {
		return math.Inf(1)
	}
	return math.Pow(r.Energy.Total(), beta) * math.Pow(r.Delay, gamma)
}

// GroupCost is the incremental SA objective for a single group.
func GroupCost(g GroupResult, beta, gamma float64) float64 {
	if !g.Feasible || g.Delay <= 0 {
		return math.Inf(1)
	}
	return math.Pow(g.Energy.Total(), beta) * math.Pow(g.Delay, gamma)
}
