// Package eval implements the Gemini Evaluator (Sec. V-B2): it turns an
// analyzed LP SPM scheme into delay and energy numbers using the analytic
// bottleneck model — per-pass stage time is the maximum of per-core compute
// time, the most loaded NoC/D2D link, and the most loaded DRAM controller;
// a layer group's delay accounts for pipeline fill/drain via its dependency
// depth; energy sums per-component operation counts times unit energies.
package eval

import (
	"math"
	"sort"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/intracore"
	"gemini/internal/noc"
)

// GroupResult is the evaluation of one layer group.
type GroupResult struct {
	Feasible bool

	Passes    int
	Depth     int
	StageTime float64 // seconds per batch-unit pass at steady state
	Delay     float64 // seconds for the whole batch through this group

	Energy EnergyBreakdown

	// Per-pass traffic statistics for the Fig. 7 / Fig. 9 analyses.
	NoCBytes, D2DBytes, DRAMBytes float64
	MaxLinkLoad                   float64
	AvgUtil                       float64
}

// Result is the evaluation of a full scheme.
type Result struct {
	Feasible bool
	Delay    float64 // seconds
	Energy   EnergyBreakdown
	Groups   []GroupResult

	// DRAMBytes is total DRAM traffic, the quantity Fig. 7 tracks against
	// core count.
	DRAMBytes float64
}

// EnergyJ returns total energy in joules.
func (r *Result) EnergyJ() float64 { return r.Energy.Total() }

// EDP returns the energy-delay product (J*s), the Fig. 6 metric.
func (r *Result) EDP() float64 { return r.Energy.Total() * r.Delay }

// AvgLayersPerGroup reports the mean number of layers processed
// simultaneously (paper Sec. VII-A2).
func AvgLayersPerGroup(s *core.Scheme) float64 {
	if len(s.Groups) == 0 {
		return 0
	}
	n := 0
	for _, g := range s.Groups {
		n += len(g.MSs)
	}
	return float64(n) / float64(len(s.Groups))
}

// Evaluator evaluates schemes for one architecture. It is safe for
// concurrent use.
type Evaluator struct {
	Cfg    *arch.Config
	Net    *noc.Network
	Memo   *intracore.Memo
	Params Params
}

// New builds an evaluator with default energy parameters.
func New(cfg *arch.Config) *Evaluator {
	return &Evaluator{
		Cfg:    cfg,
		Net:    noc.New(cfg),
		Memo:   intracore.NewMemo(),
		Params: DefaultParams(),
	}
}

func (e *Evaluator) coreParams() intracore.Core {
	return intracore.Core{MACs: e.Cfg.MACsPerCore, GLB: e.Cfg.GLBPerCore, FreqGHz: e.Cfg.FreqGHz}
}

// EvaluateGroup evaluates one layer group of a validated scheme.
func (e *Evaluator) EvaluateGroup(s *core.Scheme, gi int) GroupResult {
	an, err := core.Analyze(s, gi, e.Cfg)
	if err != nil {
		return GroupResult{}
	}
	return e.evaluateAnalysis(an, s.Batch)
}

func (e *Evaluator) evaluateAnalysis(an *core.Analysis, batch int) GroupResult {
	cp := e.coreParams()
	freqHz := e.Cfg.FreqGHz * 1e9

	// Intra-core exploration per occupied core.
	var maxComp float64
	var compEnergy EnergyBreakdown
	var utilSum float64
	nUtil := 0
	resident := make(map[arch.CoreID]bool, len(an.Works))
	coreOrder := make([]arch.CoreID, 0, len(an.Works))
	for c := range an.Works {
		coreOrder = append(coreOrder, c)
	}
	sort.Slice(coreOrder, func(i, j int) bool { return coreOrder[i] < coreOrder[j] })
	for _, c := range coreOrder {
		w := an.Works[c]
		r := e.Memo.Explore(w, cp)
		if !r.Feasible {
			return GroupResult{}
		}
		resident[c] = r.WeightsResident
		cycles := r.Cycles
		if r.VecCycles > cycles {
			cycles = r.VecCycles
		}
		if t := float64(cycles) / freqHz; t > maxComp {
			maxComp = t
		}
		compEnergy.MAC += float64(w.MACs)*e.Params.MACpJ*pJ + float64(w.VecOps)*e.Params.VecOppJ*pJ
		compEnergy.GLB += r.GLBBytes * e.Params.GLBpJPerByte * pJ
		if w.MACs > 0 {
			utilSum += r.Util
			nUtil++
		}
	}

	// Per-pass activation traffic.
	tr := e.Net.NewTraffic()
	for _, f := range an.ActFlows {
		tr.AddMulticast(f.Src, f.Dsts, f.Bytes)
	}
	for _, f := range an.ActDRAM {
		if f.Write {
			tr.AddDRAMWrite(f.Ctrl, f.Cores[0], f.Bytes)
		} else {
			tr.AddDRAMReadMulticast(f.Ctrl, f.Cores, f.Bytes)
		}
	}

	// Weight loading: GLB-resident slices load once per run; slices that do
	// not fit stream every pass.
	wOnce := e.Net.NewTraffic()
	for _, f := range an.WeightFlows {
		var res, str []arch.CoreID
		for _, c := range f.Cores {
			if resident[c] {
				res = append(res, c)
			} else {
				str = append(str, c)
			}
		}
		if len(res) > 0 {
			wOnce.AddDRAMReadMulticast(f.Ctrl, res, f.Bytes)
		}
		if len(str) > 0 {
			tr.AddDRAMReadMulticast(f.Ctrl, str, f.Bytes)
		}
	}

	passes := (batch + an.BatchUnit - 1) / an.BatchUnit
	commTime := tr.BottleneckTime()
	stage := math.Max(maxComp, commTime)
	if stage <= 0 {
		return GroupResult{}
	}
	preload := wOnce.BottleneckTime()
	delay := float64(passes+an.Depth-1)*stage + preload

	res := GroupResult{
		Feasible:  true,
		Passes:    passes,
		Depth:     an.Depth,
		StageTime: stage,
		Delay:     delay,
	}
	res.NoCBytes, res.D2DBytes, res.DRAMBytes = tr.TotalBytes()
	res.MaxLinkLoad, _ = tr.MaxLinkLoad()
	if nUtil > 0 {
		res.AvgUtil = utilSum / float64(nUtil)
	}

	perPass := e.transferEnergy(tr)
	once := e.transferEnergy(wOnce)
	res.Energy.add(compEnergy, float64(passes))
	res.Energy.add(perPass, float64(passes))
	res.Energy.add(once, 1)

	if e.Params.D2DModel == SerDes && e.Cfg.Chiplets() > 1 {
		// Clock-embedded D2D: interfaces burn power for the whole group
		// runtime regardless of traffic.
		n := e.countD2DInterfaces()
		powerW := e.Cfg.D2DBW * 1e9 * 8 * e.Params.SerDesPJPerBit * pJ
		res.Energy.D2D = float64(n) * powerW * delay
	}
	res.DRAMBytes *= float64(passes)
	res.NoCBytes *= float64(passes)
	res.D2DBytes *= float64(passes)
	ow, dw, drw := wOnce.TotalBytes()
	res.NoCBytes += ow
	res.D2DBytes += dw
	res.DRAMBytes += drw
	return res
}

// transferEnergy converts accumulated traffic into a per-pass energy
// breakdown under the clock-forwarding (volume-proportional) model.
func (e *Evaluator) transferEnergy(tr *noc.Traffic) EnergyBreakdown {
	onchip, d2d, dram := tr.TotalBytes()
	var b EnergyBreakdown
	b.NoC = onchip * (e.Params.NoCHoppJPerByte + e.Params.RouterpJPerByte) * pJ
	b.D2D = d2d * (e.Params.D2DpJPerByte + e.Params.RouterpJPerByte) * pJ
	b.DRAM = dram * e.Params.DRAMpJPerByte * pJ
	return b
}

// countD2DInterfaces counts directed D2D channels of the network.
func (e *Evaluator) countD2DInterfaces() int {
	n := 0
	for _, l := range e.Net.Links {
		if l.D2D {
			n++
		}
	}
	return n
}

// Evaluate evaluates a full scheme: groups run one after another, so delays
// and energies sum.
func (e *Evaluator) Evaluate(s *core.Scheme) Result {
	res := Result{Feasible: true, Groups: make([]GroupResult, len(s.Groups))}
	for gi := range s.Groups {
		gr := e.EvaluateGroup(s, gi)
		res.Groups[gi] = gr
		if !gr.Feasible {
			res.Feasible = false
			res.Delay = math.Inf(1)
			return res
		}
		res.Delay += gr.Delay
		res.Energy.add(gr.Energy, 1)
		res.DRAMBytes += gr.DRAMBytes
	}
	return res
}

// Cost computes the mapping objective E^beta * D^gamma (paper Sec. V-A).
// Infeasible results cost +Inf.
func Cost(r Result, beta, gamma float64) float64 {
	if !r.Feasible || r.Delay <= 0 {
		return math.Inf(1)
	}
	return math.Pow(r.Energy.Total(), beta) * math.Pow(r.Delay, gamma)
}

// GroupCost is the incremental SA objective for a single group.
func GroupCost(g GroupResult, beta, gamma float64) float64 {
	if !g.Feasible || g.Delay <= 0 {
		return math.Inf(1)
	}
	return math.Pow(g.Energy.Total(), beta) * math.Pow(g.Delay, gamma)
}
