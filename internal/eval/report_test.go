package eval

import (
	"strings"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

func TestReportStructure(t *testing.T) {
	cfg := arch.GArch72()
	s, ev := tinyOn(t, &cfg, 4, 2)
	rep, err := ev.Report(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != "tinycnn" || rep.Batch != 4 {
		t.Errorf("header wrong: %+v", rep)
	}
	if len(rep.Groups) != len(s.Groups) {
		t.Fatalf("groups = %d", len(rep.Groups))
	}
	g := rep.Groups[0]
	if len(g.Layers) != len(s.Groups[0].MSs) {
		t.Errorf("layer rows = %d, want %d", len(g.Layers), len(s.Groups[0].MSs))
	}
	for _, l := range g.Layers {
		if l.Cores < 1 {
			t.Errorf("layer %s cores = %d", l.Name, l.Cores)
		}
		if l.Kind == dnn.Conv && l.MACs <= 0 {
			t.Errorf("conv %s has no MACs", l.Name)
		}
	}
	// Stage time equals the max of the three attributed terms.
	maxTerm := g.ComputeTime
	if g.NetTime > maxTerm {
		maxTerm = g.NetTime
	}
	if g.DRAMTime > maxTerm {
		maxTerm = g.DRAMTime
	}
	// Weight streaming can add to the per-pass traffic beyond the split
	// attribution, so stage >= maxTerm.
	if g.StageTime < maxTerm*(1-1e-9) {
		t.Errorf("stage %v below attributed max %v", g.StageTime, maxTerm)
	}
	switch g.Bottleneck {
	case ComputeBound, NetworkBound, DRAMBound:
	default:
		t.Errorf("unknown bottleneck %q", g.Bottleneck)
	}
}

func TestReportPrintAndHistogram(t *testing.T) {
	cfg := arch.GArch72()
	s, ev := tinyOn(t, &cfg, 4, 2)
	rep, err := ev.Report(s)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "mapping report") || !strings.Contains(out, "group 0") {
		t.Error("print output incomplete")
	}
	h := rep.BottleneckHistogram()
	total := 0
	for _, n := range h {
		total += n
	}
	if total != len(rep.Groups) {
		t.Errorf("histogram covers %d of %d groups", total, len(rep.Groups))
	}
}

func TestReportInfeasible(t *testing.T) {
	cfg := arch.GArch72()
	cfg.GLBPerCore = 512
	s, ev := tinyOn(t, &cfg, 4, 2)
	if _, err := ev.Report(s); err == nil {
		t.Fatal("expected infeasible error")
	}
}
