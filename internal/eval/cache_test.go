package eval

import (
	"sync"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
)

func cacheTestScheme(t testing.TB, cfg *arch.Config) *core.Scheme {
	t.Helper()
	g := dnn.TinyCNN()
	ids := make([]int, len(g.Layers))
	for i := range ids {
		ids[i] = i
	}
	s, err := core.StripeScheme(g, cfg, [][]int{ids}, []int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigFingerprint(t *testing.T) {
	a := arch.GArch72()
	b := arch.GArch72()
	b.Name = "renamed"
	if ConfigFingerprint(&a) != ConfigFingerprint(&b) {
		t.Error("fingerprint depends on Name")
	}
	c := arch.GArch72()
	c.NoCBW++
	if ConfigFingerprint(&a) == ConfigFingerprint(&c) {
		t.Error("fingerprint misses NoCBW")
	}
	d := arch.GArch72()
	d.GLBPerCore *= 2
	if ConfigFingerprint(&a) == ConfigFingerprint(&d) {
		t.Error("fingerprint misses GLBPerCore")
	}
}

// TestSharedCacheBitIdentical pins that serving from the shared cache is
// indistinguishable from recomputing: a private-memo evaluator and two
// cache-sharing evaluators yield identical results.
func TestSharedCacheBitIdentical(t *testing.T) {
	cfg := arch.GArch72()
	s := cacheTestScheme(t, &cfg)

	private := New(&cfg).Evaluate(s)

	cache := NewCache()
	first := NewWithCache(&cfg, cache).Evaluate(s)
	second := NewWithCache(&cfg, cache).Evaluate(s) // all groups warm

	for _, r := range []Result{first, second} {
		if r.Feasible != private.Feasible || r.Delay != private.Delay ||
			r.Energy != private.Energy || r.DRAMBytes != private.DRAMBytes {
			t.Fatalf("shared-cache result diverged: %+v vs %+v", r, private)
		}
	}

	st := cache.Stats()
	if st.Hits == 0 {
		t.Error("second evaluator recorded no hits")
	}
	if st.Misses == 0 || st.Entries == 0 {
		t.Errorf("cold evaluation accounting wrong: %+v", st)
	}
}

func TestCacheStatsAccounting(t *testing.T) {
	cfg := arch.GArch72()
	s := cacheTestScheme(t, &cfg)
	cache := NewCache()
	ev := NewWithCache(&cfg, cache)

	ev.Evaluate(s)
	st := cache.Stats()
	wantMisses := int64(len(s.Groups))
	if st.Misses != wantMisses || st.Hits != 0 {
		t.Fatalf("cold stats = %+v, want %d misses, 0 hits", st, wantMisses)
	}
	ev.Evaluate(s)
	st = cache.Stats()
	if st.Hits != wantMisses || st.Misses != wantMisses {
		t.Fatalf("warm stats = %+v, want %d hits / %d misses", st, wantMisses, wantMisses)
	}
	if st.Entries != len(s.Groups) {
		t.Errorf("entries = %d, want %d", st.Entries, len(s.Groups))
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", hr)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Error("empty stats hit rate not 0")
	}
}

// TestCacheArchIsolation: two architectures must never share entries.
func TestCacheArchIsolation(t *testing.T) {
	a := arch.GArch72()
	b := arch.GArch72()
	b.GLBPerCore = 512 // same geometry, infeasible buffers
	b.Name = "tiny-glb"
	cache := NewCache()

	sa := cacheTestScheme(t, &a)
	ra := NewWithCache(&a, cache).Evaluate(sa)
	if !ra.Feasible {
		t.Fatal("GArch72 should be feasible")
	}
	sb := cacheTestScheme(t, &b)
	rb := NewWithCache(&b, cache).Evaluate(sb)
	if rb.Feasible {
		t.Fatal("512-byte GLB served a feasible result (arch aliasing)")
	}
}

func TestCacheConcurrent(t *testing.T) {
	cfg := arch.GArch72()
	cache := NewCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := cacheTestScheme(t, &cfg)
			ev := NewWithCache(&cfg, cache)
			for i := 0; i < 20; i++ {
				if r := ev.Evaluate(s); !r.Feasible {
					t.Error("infeasible under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("no hits under concurrent reuse: %+v", st)
	}
}
