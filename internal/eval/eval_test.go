package eval

import (
	"math"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
)

func allLayers(g *dnn.Graph) []int {
	ids := make([]int, len(g.Layers))
	for i := range g.Layers {
		ids[i] = i
	}
	return ids
}

func tinyOn(t *testing.T, cfg *arch.Config, batch, bu int) (*core.Scheme, *Evaluator) {
	t.Helper()
	g := dnn.TinyCNN()
	s, err := core.StripeScheme(g, cfg, [][]int{allLayers(g)}, []int{bu}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	return s, New(cfg)
}

func TestEvaluateBasics(t *testing.T) {
	cfg := arch.GArch72()
	s, ev := tinyOn(t, &cfg, 4, 2)
	r := ev.Evaluate(s)
	if !r.Feasible {
		t.Fatal("tiny scheme should be feasible")
	}
	if r.Delay <= 0 || r.Energy.Total() <= 0 {
		t.Fatalf("delay=%v energy=%v", r.Delay, r.Energy.Total())
	}
	if r.Groups[0].Passes != 2 {
		t.Errorf("passes = %d, want 2", r.Groups[0].Passes)
	}
	for _, f := range []float64{r.Energy.MAC, r.Energy.GLB, r.Energy.NoC, r.Energy.DRAM} {
		if f <= 0 {
			t.Errorf("breakdown component missing: %+v", r.Energy)
		}
	}
	if got := r.EDP(); math.Abs(got-r.Energy.Total()*r.Delay) > 1e-18 {
		t.Errorf("EDP inconsistent")
	}
}

func TestMonolithicHasNoD2D(t *testing.T) {
	cfg := arch.GArch72()
	cfg.XCut, cfg.YCut = 1, 1
	s, ev := tinyOn(t, &cfg, 4, 2)
	r := ev.Evaluate(s)
	if !r.Feasible {
		t.Fatal("infeasible")
	}
	if r.Energy.D2D != 0 {
		t.Errorf("monolithic D2D energy = %v, want 0", r.Energy.D2D)
	}
}

func TestMoreChipletsMoreD2DEnergy(t *testing.T) {
	mono := arch.GArch72()
	mono.XCut, mono.YCut = 1, 1
	fine := arch.Simba() // 36 chiplets

	sm, evm := tinyOn(t, &mono, 4, 2)
	rm := evm.Evaluate(sm)
	sf, evf := tinyOn(t, &fine, 4, 2)
	rf := evf.Evaluate(sf)
	if !rm.Feasible || !rf.Feasible {
		t.Fatal("infeasible")
	}
	if rf.Energy.D2D <= rm.Energy.D2D {
		t.Errorf("36-chiplet D2D %v should exceed monolithic %v", rf.Energy.D2D, rm.Energy.D2D)
	}
	// With the same mapping, total network energy is strictly worse on the
	// fine-grained partition (paper insight 1).
	if rf.Energy.Network() <= rm.Energy.Network() {
		t.Errorf("network energy %v should exceed monolithic %v", rf.Energy.Network(), rm.Energy.Network())
	}
}

func TestEnergyScalesWithBatch(t *testing.T) {
	cfg := arch.GArch72()
	s4, ev := tinyOn(t, &cfg, 4, 1)
	r4 := ev.Evaluate(s4)
	s8, _ := tinyOn(t, &cfg, 8, 1)
	r8 := ev.Evaluate(s8)
	if r8.Energy.MAC <= r4.Energy.MAC*1.5 {
		t.Errorf("batch 8 MAC energy %v should be ~2x batch 4 %v", r8.Energy.MAC, r4.Energy.MAC)
	}
	if r8.Delay <= r4.Delay {
		t.Errorf("batch 8 delay %v should exceed batch 4 %v", r8.Delay, r4.Delay)
	}
}

func TestLPReducesDRAMVersusSplitGroups(t *testing.T) {
	// One fused group keeps inter-layer feature maps on-chip; splitting the
	// same layers into two groups forces a DRAM round trip (the core LP
	// benefit, paper Sec. II-B).
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	one, err := core.StripeScheme(g, &cfg, [][]int{allLayers(g)}, []int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	two, err := core.StripeScheme(g, &cfg, [][]int{{0, 1, 2, 3}, {4, 5, 6}}, []int{1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(&cfg)
	r1, r2 := ev.Evaluate(one), ev.Evaluate(two)
	if !r1.Feasible || !r2.Feasible {
		t.Fatal("infeasible")
	}
	if r2.DRAMBytes <= r1.DRAMBytes {
		t.Errorf("split groups DRAM %v should exceed fused %v", r2.DRAMBytes, r1.DRAMBytes)
	}
	if r2.Energy.DRAM <= r1.Energy.DRAM {
		t.Errorf("split groups DRAM energy should be higher")
	}
}

func TestSerDesModelBurnsIdlePower(t *testing.T) {
	cfg := arch.GArch72()
	s, ev := tinyOn(t, &cfg, 4, 2)
	grs := ev.Evaluate(s)

	ev2 := New(&cfg)
	ev2.Params.D2DModel = SerDes
	sd := ev2.Evaluate(s)
	if sd.Energy.D2D <= 0 {
		t.Fatal("serdes D2D energy missing")
	}
	if sd.Energy.D2D == grs.Energy.D2D {
		t.Error("serdes and GRS models should differ")
	}
	// SerDes energy scales with delay, not volume: doubling batch doubles
	// both, so the ratio stays ~constant.
	s8, _ := tinyOn(t, &cfg, 8, 2)
	sd8 := ev2.Evaluate(s8)
	ratio := sd8.Energy.D2D / sd.Energy.D2D
	dratio := sd8.Delay / sd.Delay
	if math.Abs(ratio-dratio) > 0.05*dratio {
		t.Errorf("serdes energy ratio %v should track delay ratio %v", ratio, dratio)
	}
}

func TestInfeasibleTinyGLB(t *testing.T) {
	cfg := arch.GArch72()
	cfg.GLBPerCore = 512 // bytes; nothing fits
	s, ev := tinyOn(t, &cfg, 4, 2)
	r := ev.Evaluate(s)
	if r.Feasible {
		t.Fatal("expected infeasible")
	}
	if !math.IsInf(Cost(r, 1, 1), 1) {
		t.Error("cost of infeasible result should be +Inf")
	}
}

func TestCostObjective(t *testing.T) {
	cfg := arch.GArch72()
	s, ev := tinyOn(t, &cfg, 4, 2)
	r := ev.Evaluate(s)
	ed := Cost(r, 1, 1)
	if math.Abs(ed-r.Energy.Total()*r.Delay) > ed*1e-12 {
		t.Errorf("Cost(1,1) != E*D")
	}
	dOnly := Cost(r, 0, 1)
	if math.Abs(dOnly-r.Delay) > dOnly*1e-12 {
		t.Errorf("Cost(0,1) != D")
	}
}

func TestHigherBandwidthNeverSlower(t *testing.T) {
	slow := arch.GArch72()
	slow.NoCBW, slow.D2DBW = 8, 4
	fast := arch.GArch72()
	fast.NoCBW, fast.D2DBW = 128, 64

	ss, evs := tinyOn(t, &slow, 4, 2)
	rs := evs.Evaluate(ss)
	sf, evf := tinyOn(t, &fast, 4, 2)
	rf := evf.Evaluate(sf)
	if rf.Delay > rs.Delay {
		t.Errorf("faster NoC slower: %v > %v", rf.Delay, rs.Delay)
	}
}

func TestBatchUnitTradeoff(t *testing.T) {
	// Larger batch units mean fewer passes; stage time grows but fill/drain
	// amortizes. Both must produce the same total MAC energy.
	cfg := arch.GArch72()
	s1, ev := tinyOn(t, &cfg, 8, 1)
	r1 := ev.Evaluate(s1)
	s4, _ := tinyOn(t, &cfg, 8, 4)
	r4 := ev.Evaluate(s4)
	if !r1.Feasible || !r4.Feasible {
		t.Fatal("infeasible")
	}
	if math.Abs(r1.Energy.MAC-r4.Energy.MAC) > r1.Energy.MAC*1e-9 {
		t.Errorf("MAC energy should not depend on batch unit: %v vs %v", r1.Energy.MAC, r4.Energy.MAC)
	}
	if r4.Groups[0].Passes != 2 || r1.Groups[0].Passes != 8 {
		t.Errorf("passes = %d/%d, want 2/8", r4.Groups[0].Passes, r1.Groups[0].Passes)
	}
}

func TestAvgLayersPerGroup(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	s, err := core.StripeScheme(g, &cfg, [][]int{{0, 1, 2, 3}, {4, 5, 6}}, []int{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := AvgLayersPerGroup(s); got != 3.5 {
		t.Errorf("avg layers per group = %v, want 3.5", got)
	}
}

func TestTransformerEvaluates(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	s, err := core.StripeScheme(g, &cfg, [][]int{allLayers(g)}, []int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(&cfg)
	r := ev.Evaluate(s)
	if !r.Feasible {
		t.Fatal("transformer stripes infeasible")
	}
	if r.Energy.Total() <= 0 || r.Delay <= 0 {
		t.Fatal("degenerate evaluation")
	}
}
