package graphpart

import (
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

func TestPartitionTinyCNN(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	ev := eval.New(&cfg)
	r, err := Partition(g, &cfg, ev, 8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Scheme.Validate(&cfg); err != nil {
		t.Fatalf("partition scheme invalid: %v", err)
	}
	// All layers covered exactly once in order.
	next := 0
	for _, grp := range r.Groups {
		for _, id := range grp {
			if id != next {
				t.Fatalf("layer order broken: got %d, want %d", id, next)
			}
			next++
		}
	}
	if next != len(g.Layers) {
		t.Fatalf("covered %d layers of %d", next, len(g.Layers))
	}
	if len(r.BatchUnits) != len(r.Groups) {
		t.Fatal("batch unit per group missing")
	}
	for _, bu := range r.BatchUnits {
		if bu < 1 || bu > 8 {
			t.Errorf("batch unit %d outside [1,8]", bu)
		}
	}
}

func TestPartitionRespectsMaxLen(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	ev := eval.New(&cfg)
	opt := DefaultOptions()
	opt.MaxGroupLayers = 3
	r, err := Partition(g, &cfg, ev, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, grp := range r.Groups {
		if len(grp) > 3 {
			t.Errorf("group of %d layers exceeds max 3", len(grp))
		}
	}
	if len(r.Groups) < 3 {
		t.Errorf("7 layers with max 3 needs >= 3 groups, got %d", len(r.Groups))
	}
}

func TestPartitionPrefersFusionOverSplit(t *testing.T) {
	// With generous cores, keeping dependent layers in one group avoids
	// DRAM round trips, so the DP should produce few groups for a tiny net.
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	ev := eval.New(&cfg)
	r, err := Partition(g, &cfg, ev, 8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Groups) > 3 {
		t.Errorf("expected aggressive fusion, got %d groups", len(r.Groups))
	}
}

func TestPartitionTransformer(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	ev := eval.New(&cfg)
	r, err := Partition(g, &cfg, ev, 4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Scheme.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	res := ev.Evaluate(r.Scheme)
	if !res.Feasible {
		t.Fatal("partitioned transformer infeasible")
	}
}

func TestPartitionEmptyGraphErrors(t *testing.T) {
	cfg := arch.GArch72()
	ev := eval.New(&cfg)
	if _, err := Partition(&dnn.Graph{Name: "empty"}, &cfg, ev, 1, DefaultOptions()); err == nil {
		t.Error("expected error for empty graph")
	}
}

func TestPartitionBatchUnitCandidatesFiltered(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	ev := eval.New(&cfg)
	opt := DefaultOptions()
	opt.BatchUnits = []int{4, 16, 64} // batch is 2: only fallback 1 valid? no: all > 2 filtered
	r, err := Partition(g, &cfg, ev, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, bu := range r.BatchUnits {
		if bu > 2 {
			t.Errorf("batch unit %d exceeds batch 2", bu)
		}
	}
}
