package graphpart

import (
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

func TestPartitionDeterministic(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	ev := eval.New(&cfg)
	a, err := Partition(g, &cfg, ev, 8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, &cfg, ev, 8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != len(b.Groups) || a.Cost != b.Cost {
		t.Fatalf("DP not deterministic: %d/%v vs %d/%v", len(a.Groups), a.Cost, len(b.Groups), b.Cost)
	}
	for i := range a.BatchUnits {
		if a.BatchUnits[i] != b.BatchUnits[i] {
			t.Fatal("batch units diverged")
		}
	}
}

func TestPartitionWiderSearchNeverWorse(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	ev := eval.New(&cfg)
	narrow := DefaultOptions()
	narrow.MaxGroupLayers = 2
	wide := DefaultOptions()
	wide.MaxGroupLayers = 7
	rn, err := Partition(g, &cfg, ev, 8, narrow)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Partition(g, &cfg, ev, 8, wide)
	if err != nil {
		t.Fatal(err)
	}
	// Every narrow cut is available to the wide DP, so the wide optimum's
	// internal cost cannot be worse.
	if rw.Cost > rn.Cost*(1+1e-9) {
		t.Errorf("wider DP cost %v worse than narrow %v", rw.Cost, rn.Cost)
	}
}

func TestPartitionDelayObjective(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	ev := eval.New(&cfg)
	opt := DefaultOptions()
	opt.Beta, opt.Gamma = 0, 1 // pure delay: additive DP is exact
	r, err := Partition(g, &cfg, ev, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	res := ev.Evaluate(r.Scheme)
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	// DP cost under the pure-delay objective must equal the evaluated
	// total delay (segment delays sum exactly).
	if diff := r.Cost - res.Delay; diff > res.Delay*1e-9 || diff < -res.Delay*1e-9 {
		t.Errorf("DP delay %v != evaluated delay %v", r.Cost, res.Delay)
	}
}

func TestPartitionLatencyVsThroughputBatchUnits(t *testing.T) {
	// Batch 1 forces batch unit 1 everywhere; batch 64 should allow larger
	// units somewhere.
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	ev := eval.New(&cfg)
	lat, err := Partition(g, &cfg, ev, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, bu := range lat.BatchUnits {
		if bu != 1 {
			t.Errorf("batch 1 produced unit %d", bu)
		}
	}
	thr, err := Partition(g, &cfg, ev, 64, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, bu := range thr.BatchUnits {
		if bu > 1 {
			saw = true
		}
	}
	if !saw {
		t.Log("throughput run kept unit 1 everywhere (allowed, but unusual)")
	}
}

func TestPartitionMobileNet(t *testing.T) {
	// The depthwise-heavy network exercises channel-coupled segments.
	cfg := arch.GArch72()
	g := dnn.MobileNetV2()
	ev := eval.New(&cfg)
	opt := DefaultOptions()
	opt.MaxGroupLayers = 12
	r, err := Partition(g, &cfg, ev, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Scheme.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	if !ev.Evaluate(r.Scheme).Feasible {
		t.Fatal("mobilenet partition infeasible")
	}
}
