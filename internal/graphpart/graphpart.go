// Package graphpart implements the DP-based graph partition engine the
// Gemini framework shares with its Tangram baseline (Sec. V-B): it cuts the
// topologically ordered DNN into layer groups and selects the batch unit
// (samples per pipeline stage) of each group, minimizing the summed
// stripe-mapped group cost under the E^beta * D^gamma objective.
package graphpart

import (
	"errors"
	"fmt"
	"math"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

// ErrInfeasible marks partition failures where the pipeline ran correctly
// but no candidate segmentation fits the architecture (e.g. a GLB too small
// for any stripe mapping). Callers distinguish it from infrastructure
// errors with errors.Is.
var ErrInfeasible = errors.New("graphpart: no feasible partition")

// Options configures the partitioner.
type Options struct {
	// MaxGroupLayers bounds segment length (defaults to min(cores, 20)).
	MaxGroupLayers int
	// BatchUnits are the candidate samples-per-pass values (filtered to
	// divisors-or-batch <= batch).
	BatchUnits []int
	// Beta, Gamma are the objective exponents.
	Beta, Gamma float64
}

// DefaultOptions returns the engine defaults.
func DefaultOptions() Options {
	return Options{BatchUnits: []int{1, 2, 4, 8}, Beta: 1, Gamma: 1}
}

// Result is the chosen partition.
type Result struct {
	Scheme *core.Scheme
	// Groups and BatchUnits mirror the scheme for inspection.
	Groups     [][]int
	BatchUnits []int
	Cost       float64
}

// Partition runs the DP over topological segments and returns the stripe-
// mapped scheme (the SA engine refines it afterwards).
func Partition(g *dnn.Graph, cfg *arch.Config, ev *eval.Evaluator, batch int, opt Options) (*Result, error) {
	n := len(g.Layers)
	if n == 0 {
		return nil, fmt.Errorf("graphpart: empty graph")
	}
	maxLen := opt.MaxGroupLayers
	if maxLen <= 0 {
		maxLen = cfg.Cores()
		if maxLen > 20 {
			maxLen = 20
		}
	}
	if maxLen > cfg.Cores() {
		maxLen = cfg.Cores()
	}
	bus := make([]int, 0, len(opt.BatchUnits))
	for _, b := range opt.BatchUnits {
		if b >= 1 && b <= batch {
			bus = append(bus, b)
		}
	}
	if len(bus) == 0 {
		bus = []int{1}
	}

	type choice struct {
		from int
		bu   int
	}
	dp := make([]float64, n+1)
	ch := make([]choice, n+1)
	for i := 1; i <= n; i++ {
		dp[i] = math.Inf(1)
	}

	segCost := func(j, i, bu int) float64 {
		layers := make([]int, 0, i-j)
		for id := j; id < i; id++ {
			layers = append(layers, id)
		}
		lms, err := core.Stripes(g, layers, cfg, bu)
		if err != nil {
			return math.Inf(1)
		}
		s := &core.Scheme{Graph: g, Batch: batch, Groups: []*core.LMS{lms}}
		gr := ev.EvaluateGroup(s, 0)
		if !gr.Feasible {
			return math.Inf(1)
		}
		// Normalize the objective to be 1-homogeneous in workload size:
		// summing raw E^b * D^g over segments would reward splitting (two
		// halves score 2*(E/2)^b*(D/2)^g < E^b*D^g for b+g > 1). The
		// (b+g)-th root keeps the DP size-unbiased while preserving the
		// objective's E/D weighting; for pure-delay objectives it is exact.
		c := math.Pow(gr.Energy.Total(), opt.Beta) * math.Pow(gr.Delay, opt.Gamma)
		if exp := opt.Beta + opt.Gamma; exp > 1 {
			c = math.Pow(c, 1/exp)
		}
		return c
	}

	for i := 1; i <= n; i++ {
		lo := i - maxLen
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			if math.IsInf(dp[j], 1) {
				continue
			}
			for _, bu := range bus {
				c := segCost(j, i, bu)
				if dp[j]+c < dp[i] {
					dp[i] = dp[j] + c
					ch[i] = choice{from: j, bu: bu}
				}
			}
		}
	}
	if math.IsInf(dp[n], 1) {
		return nil, fmt.Errorf("%w for %s on %s", ErrInfeasible, g.Name, cfg.Name)
	}

	// Reconstruct.
	var groups [][]int
	var batchUnits []int
	for i := n; i > 0; {
		j := ch[i].from
		seg := make([]int, 0, i-j)
		for id := j; id < i; id++ {
			seg = append(seg, id)
		}
		groups = append([][]int{seg}, groups...)
		batchUnits = append([]int{ch[i].bu}, batchUnits...)
		i = j
	}
	scheme, err := core.StripeScheme(g, cfg, groups, batchUnits, batch)
	if err != nil {
		return nil, err
	}
	if err := scheme.Validate(cfg); err != nil {
		return nil, fmt.Errorf("graphpart: produced invalid scheme: %w", err)
	}
	return &Result{Scheme: scheme, Groups: groups, BatchUnits: batchUnits, Cost: dp[n]}, nil
}
