// Package isa implements the instruction-generation backend of the Gemini
// framework (Fig. 4 "Instruction Gen."; Sec. III: cores are managed by
// "statically-compiled instructions"): it compiles an analyzed LP SPM
// scheme into per-core instruction streams — DRAM loads, core-to-core
// sends/receives, compute, and DRAM stores — and provides a functional
// interpreter that executes a program to verify deadlock freedom and byte
// conservation of the compiled schedule.
package isa

import (
	"fmt"
	"sort"

	"gemini/internal/arch"
	"gemini/internal/core"
)

// OpCode enumerates the core's instruction set.
type OpCode int

const (
	// OpLoad moves bytes from a DRAM controller into the core's GLB.
	OpLoad OpCode = iota
	// OpRecv blocks until the matching OpSend's payload has arrived.
	OpRecv
	// OpCompute runs the PE array / vector unit for one layer slice.
	OpCompute
	// OpSend pushes bytes from the GLB to a peer core's GLB.
	OpSend
	// OpStore moves bytes from the GLB to a DRAM controller.
	OpStore
)

// String names the opcode.
func (o OpCode) String() string {
	switch o {
	case OpLoad:
		return "LOAD"
	case OpRecv:
		return "RECV"
	case OpCompute:
		return "COMPUTE"
	case OpSend:
		return "SEND"
	case OpStore:
		return "STORE"
	}
	return "OP?"
}

// Instr is one instruction of a core's stream.
type Instr struct {
	Op    OpCode
	Layer int
	// Peer is the counterpart core for Send/Recv.
	Peer arch.CoreID
	// Ctrl is the DRAM controller for Load/Store (-1 = interleaved).
	Ctrl int
	// Bytes is the payload (Load/Send/Recv/Store) per pass.
	Bytes float64
	// Tag pairs a Send with its Recv.
	Tag int
	// Weights marks a Load that fetches stationary parameters.
	Weights bool
}

// Program is the per-core instruction streams of one layer group pass.
type Program struct {
	Streams map[arch.CoreID][]Instr
	// Tags counts the send/recv pairs, for diagnostics.
	Tags int
}

// Len returns the total instruction count.
func (p *Program) Len() int {
	n := 0
	for _, s := range p.Streams {
		n += len(s)
	}
	return n
}

// Compile turns one analyzed layer group into per-core instruction streams.
// Instructions are ordered by the group's layer order (producers first), so
// a round-robin execution cannot deadlock.
func Compile(an *core.Analysis) (*Program, error) {
	p := &Program{Streams: make(map[arch.CoreID][]Instr)}

	// Layer order: the analyzer enumerates PWs per layer in group order;
	// reconstruct that order from ByLayer via the smallest PW index.
	type layerPos struct {
		layer int
		first int
	}
	var order []layerPos
	for layer, idxs := range an.ByLayer {
		if len(idxs) == 0 {
			continue
		}
		min := idxs[0]
		for _, i := range idxs {
			if i < min {
				min = i
			}
		}
		order = append(order, layerPos{layer, min})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].first < order[b].first })

	emit := func(c arch.CoreID, in Instr) {
		p.Streams[c] = append(p.Streams[c], in)
	}

	// Weight loads precede everything (preloaded once per run).
	for _, f := range an.WeightFlows {
		for _, c := range f.Cores {
			emit(c, Instr{Op: OpLoad, Layer: f.Layer, Ctrl: f.Ctrl, Bytes: f.Bytes, Weights: true})
		}
	}

	// Index activation flows by layer.
	dramByLayer := map[int][]core.DRAMFlow{}
	for _, f := range an.ActDRAM {
		dramByLayer[f.Layer] = append(dramByLayer[f.Layer], f)
	}
	// A core-to-core flow belongs to the consumer layer; the analyzer does
	// not record it, so recover it from the destination core's workload.
	layerOf := map[arch.CoreID]int{}
	for _, pw := range an.PWs {
		layerOf[pw.Core] = pw.Layer
	}
	sendsByLayer := map[int][]core.CoreFlow{}
	for _, f := range an.ActFlows {
		if len(f.Dsts) == 0 {
			continue
		}
		consumer, ok := layerOf[f.Dsts[0]]
		if !ok {
			return nil, fmt.Errorf("isa: flow destination %d hosts no workload", f.Dsts[0])
		}
		sendsByLayer[consumer] = append(sendsByLayer[consumer], f)
	}

	for _, lp := range order {
		layer := lp.layer
		// Inbound DRAM activations for this layer's cores.
		for _, f := range dramByLayer[layer] {
			if f.Write {
				continue
			}
			for _, c := range f.Cores {
				emit(c, Instr{Op: OpLoad, Layer: layer, Ctrl: f.Ctrl, Bytes: f.Bytes})
			}
		}
		// Producer->consumer transfers: the producer Sends (it has already
		// computed, since producers precede consumers in group order), each
		// consumer Recvs.
		for _, f := range sendsByLayer[layer] {
			for _, d := range f.Dsts {
				tag := p.Tags
				p.Tags++
				emit(f.Src, Instr{Op: OpSend, Layer: layer, Peer: d, Bytes: f.Bytes, Tag: tag})
				emit(d, Instr{Op: OpRecv, Layer: layer, Peer: f.Src, Bytes: f.Bytes, Tag: tag})
			}
		}
		// Compute on every core hosting this layer.
		for _, pi := range an.ByLayer[layer] {
			pw := &an.PWs[pi]
			emit(pw.Core, Instr{Op: OpCompute, Layer: layer})
		}
		// Outbound DRAM stores.
		for _, f := range dramByLayer[layer] {
			if !f.Write {
				continue
			}
			emit(f.Cores[0], Instr{Op: OpStore, Layer: layer, Ctrl: f.Ctrl, Bytes: f.Bytes})
		}
	}
	return p, nil
}
