package isa

import (
	"math/rand"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
)

func analyzedTiny(t *testing.T) (*core.Scheme, *core.Analysis, *arch.Config) {
	t.Helper()
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	ids := make([]int, len(g.Layers))
	for i := range ids {
		ids[i] = i
	}
	s, err := core.StripeScheme(g, &cfg, [][]int{ids}, []int{2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Analyze(s, 0, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, an, &cfg
}

func TestCompileProducesAllPhases(t *testing.T) {
	_, an, _ := analyzedTiny(t)
	p, err := Compile(an)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpCode]int{}
	for _, stream := range p.Streams {
		for _, in := range stream {
			counts[in.Op]++
		}
	}
	if counts[OpCompute] != len(an.PWs) {
		t.Errorf("computes = %d, want one per workload (%d)", counts[OpCompute], len(an.PWs))
	}
	if counts[OpSend] != counts[OpRecv] {
		t.Errorf("sends %d != recvs %d", counts[OpSend], counts[OpRecv])
	}
	if counts[OpLoad] == 0 || counts[OpStore] == 0 {
		t.Errorf("missing loads/stores: %v", counts)
	}
}

func TestRunExecutesWithoutDeadlock(t *testing.T) {
	_, an, _ := analyzedTiny(t)
	p, err := Compile(an)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != p.Len() {
		t.Errorf("executed %d of %d", st.Executed, p.Len())
	}
	if st.TotalSent() != st.TotalReceived() {
		t.Errorf("sent %v != received %v", st.TotalSent(), st.TotalReceived())
	}
}

func TestRunConservesFlowTotals(t *testing.T) {
	_, an, _ := analyzedTiny(t)
	p, err := Compile(an)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Per-destination sends match the analysis.
	var wantSend float64
	for _, f := range an.ActFlows {
		wantSend += f.Bytes * float64(len(f.Dsts))
	}
	if st.TotalSent() != wantSend {
		t.Errorf("sent %v, analysis says %v", st.TotalSent(), wantSend)
	}
	// DRAM stores match explicit OF flows.
	var wantStore float64
	for _, f := range an.ActDRAM {
		if f.Write {
			wantStore += f.Bytes
		}
	}
	var gotStore float64
	for _, v := range st.Stored {
		gotStore += v
	}
	if gotStore != wantStore {
		t.Errorf("stored %v, analysis says %v", gotStore, wantStore)
	}
	// Weight loads match the weight flows (per-core replication).
	var wantW float64
	for _, f := range an.WeightFlows {
		wantW += f.Bytes * float64(len(f.Cores))
	}
	var gotW float64
	for _, v := range st.Weights {
		gotW += v
	}
	if gotW != wantW {
		t.Errorf("weights %v, analysis says %v", gotW, wantW)
	}
}

func TestRunAfterRandomOperators(t *testing.T) {
	s, _, cfg := analyzedTiny(t)
	rng := rand.New(rand.NewSource(5))
	mu := &core.Mutator{Graph: s.Graph, Drams: cfg.DRAMControllers(), Rng: rng}
	for trial := 0; trial < 50; trial++ {
		for j := 0; j < 5; j++ {
			mu.Apply(s.Groups[0])
		}
		an, err := core.Analyze(s, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(an)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		st, err := Run(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if st.TotalSent() != st.TotalReceived() {
			t.Fatalf("trial %d: conservation broken", trial)
		}
	}
}

func TestRunMultiGroupScheme(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	ids := make([]int, len(g.Layers))
	for i := range ids {
		ids[i] = i
	}
	half := len(ids) / 2
	s, err := core.StripeScheme(g, &cfg, [][]int{ids[:half], ids[half:]}, []int{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range s.Groups {
		an, err := core.Analyze(s, gi, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(an)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(p); err != nil {
			t.Fatalf("group %d: %v", gi, err)
		}
	}
}

func TestRunDetectsDeadlock(t *testing.T) {
	// A recv whose send never exists must be reported as deadlock.
	p := &Program{Streams: map[arch.CoreID][]Instr{
		0: {{Op: OpRecv, Peer: 1, Bytes: 10, Tag: 42}},
	}}
	if _, err := Run(p); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestRunDetectsByteMismatch(t *testing.T) {
	p := &Program{Streams: map[arch.CoreID][]Instr{
		0: {{Op: OpSend, Peer: 1, Bytes: 10, Tag: 1}},
		1: {{Op: OpRecv, Peer: 0, Bytes: 20, Tag: 1}},
	}}
	if _, err := Run(p); err == nil {
		t.Fatal("expected byte mismatch error")
	}
}

func TestRunDetectsDuplicateTag(t *testing.T) {
	p := &Program{Streams: map[arch.CoreID][]Instr{
		0: {
			{Op: OpSend, Peer: 1, Bytes: 10, Tag: 1},
			{Op: OpSend, Peer: 1, Bytes: 10, Tag: 1},
		},
		1: {{Op: OpRecv, Peer: 0, Bytes: 10, Tag: 1}},
	}}
	if _, err := Run(p); err == nil {
		t.Fatal("expected duplicate tag error")
	}
}

func TestOpCodeString(t *testing.T) {
	names := map[OpCode]string{OpLoad: "LOAD", OpRecv: "RECV", OpCompute: "COMPUTE", OpSend: "SEND", OpStore: "STORE"}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d -> %q, want %q", op, op.String(), want)
		}
	}
}

func TestPeakGLBTracked(t *testing.T) {
	_, an, _ := analyzedTiny(t)
	p, err := Compile(an)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for _, v := range st.PeakGLB {
		if v > 0 {
			any = true
		}
		if v < 0 {
			t.Fatalf("negative peak residency %v", v)
		}
	}
	if !any {
		t.Error("no GLB residency observed")
	}
}
