package isa

import (
	"fmt"

	"gemini/internal/arch"
)

// Stats summarizes a functional execution of a program.
type Stats struct {
	Executed int
	// Per-core byte totals.
	Loaded   map[arch.CoreID]float64 // activation loads
	Weights  map[arch.CoreID]float64 // weight loads
	Received map[arch.CoreID]float64
	Sent     map[arch.CoreID]float64
	Stored   map[arch.CoreID]float64
	// DRAMRead/DRAMWrite aggregate per controller (-1 interleave counts
	// as its own bucket).
	DRAMRead  map[int]float64
	DRAMWrite map[int]float64
	// PeakGLB is the largest resident byte count observed per core
	// (weights + buffered inbound payloads).
	PeakGLB map[arch.CoreID]float64
}

// Run executes the program functionally: cores advance round-robin, a RECV
// blocks until its matching SEND has executed. It returns execution
// statistics or an error on deadlock or on malformed send/recv pairing.
func Run(p *Program) (*Stats, error) {
	st := &Stats{
		Loaded:    map[arch.CoreID]float64{},
		Weights:   map[arch.CoreID]float64{},
		Received:  map[arch.CoreID]float64{},
		Sent:      map[arch.CoreID]float64{},
		Stored:    map[arch.CoreID]float64{},
		DRAMRead:  map[int]float64{},
		DRAMWrite: map[int]float64{},
		PeakGLB:   map[arch.CoreID]float64{},
	}
	pc := map[arch.CoreID]int{}
	resident := map[arch.CoreID]float64{}
	inFlight := map[int]float64{} // tag -> bytes sent, awaiting recv

	cores := make([]arch.CoreID, 0, len(p.Streams))
	for c := range p.Streams {
		cores = append(cores, c)
	}
	// Deterministic order.
	for i := 1; i < len(cores); i++ {
		for j := i; j > 0 && cores[j] < cores[j-1]; j-- {
			cores[j], cores[j-1] = cores[j-1], cores[j]
		}
	}

	bump := func(c arch.CoreID, delta float64) {
		resident[c] += delta
		if resident[c] > st.PeakGLB[c] {
			st.PeakGLB[c] = resident[c]
		}
	}

	total := p.Len()
	for st.Executed < total {
		progressed := false
		for _, c := range cores {
			stream := p.Streams[c]
			for pc[c] < len(stream) {
				in := stream[pc[c]]
				if in.Op == OpRecv {
					bytes, ok := inFlight[in.Tag]
					if !ok {
						break // sender not there yet; try another core
					}
					if bytes != in.Bytes {
						return nil, fmt.Errorf("isa: tag %d: recv expects %.0f bytes, send carried %.0f", in.Tag, in.Bytes, bytes)
					}
					delete(inFlight, in.Tag)
					st.Received[c] += in.Bytes
					bump(c, in.Bytes)
				} else {
					switch in.Op {
					case OpLoad:
						if in.Weights {
							st.Weights[c] += in.Bytes
						} else {
							st.Loaded[c] += in.Bytes
						}
						st.DRAMRead[in.Ctrl] += in.Bytes
						bump(c, in.Bytes)
					case OpSend:
						if _, dup := inFlight[in.Tag]; dup {
							return nil, fmt.Errorf("isa: duplicate send tag %d", in.Tag)
						}
						inFlight[in.Tag] = in.Bytes
						st.Sent[c] += in.Bytes
					case OpStore:
						st.Stored[c] += in.Bytes
						st.DRAMWrite[in.Ctrl] += in.Bytes
						bump(c, -in.Bytes)
					case OpCompute:
						// Functional model: compute frees inbound
						// activations and materializes outputs in place.
					default:
						return nil, fmt.Errorf("isa: unknown opcode %v", in.Op)
					}
				}
				pc[c]++
				st.Executed++
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("isa: deadlock after %d of %d instructions", st.Executed, total)
		}
	}
	if len(inFlight) != 0 {
		return nil, fmt.Errorf("isa: %d sends were never received", len(inFlight))
	}
	return st, nil
}

// TotalSent sums sent bytes over all cores.
func (s *Stats) TotalSent() float64 {
	t := 0.0
	for _, v := range s.Sent {
		t += v
	}
	return t
}

// TotalReceived sums received bytes over all cores.
func (s *Stats) TotalReceived() float64 {
	t := 0.0
	for _, v := range s.Received {
		t += v
	}
	return t
}
