// Objective lower bounds for candidate pruning and bound-ordered dispatch.
//
// Every term here is a compulsory cost: a quantity the evaluation model
// provably charges any feasible mapping the pipeline can produce, derived
// from invariants of core.Scheme validation, the analyzer's flow emission
// and the intra-core residency rule. A bound computed from anything less
// than an invariant could exceed the true optimum's objective and pruning
// would silently discard the best candidate, so each term carries its
// soundness argument next to the code that computes it.
package dse

import (
	"sync"
	"sync/atomic"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/eval"
	"gemini/internal/graphpart"
	"gemini/internal/noc"
)

// BoundLevel selects the lower-bound formulation used for pruning and
// bound-ordered dispatch. Bounds only schedule and prune — they never change
// a mapping — so the level is excluded from the checkpoint fingerprint.
type BoundLevel string

const (
	// BoundCompulsory (and the zero value) is the full compulsory-traffic
	// bound: compute and weight-DRAM floors plus compulsory activation DRAM
	// traffic, GLB-capacity weight streaming, inter-layer transfer energy
	// and the aggregate interconnect capacity. It is the tightest sound
	// bound the engine knows and the default.
	BoundCompulsory BoundLevel = "compulsory"
	// BoundComputeDRAM is the earlier compute + weight-DRAM-only bound. It
	// ignores all activation and interconnect traffic; it is kept so the
	// benchmark suite can quantify the compulsory-traffic gain and so sweeps
	// can be replayed against the historical schedule.
	BoundComputeDRAM BoundLevel = "compute-dram"
	// BoundCut adds the per-cut bisection delay floor on top of the full
	// compulsory-traffic bound: for every chiplet-level bisection of the mesh
	// it charges the narrowest sustained path each explicit DRAM flow can
	// take — across the cut when interleaved, through a single controller
	// when pinned — instead of only the aggregate link-bandwidth sum. See
	// cutFloor for the soundness argument.
	BoundCut BoundLevel = "cut"
)

// modelDemand aggregates the per-sample compulsory quantities of one DNN.
// Everything in it is a property of the graph alone — independent of the
// architecture, batch and mapping options — so it is computed once per graph
// and cached process-wide.
type modelDemand struct {
	macs   float64 // multiply-accumulates per sample
	vecOps float64 // vector-unit operations per sample

	weightBytes      float64   // total stationary weight bytes
	layerWeightBytes []float64 // per-layer weight bytes (capacity streaming)

	// layerExtReadBytes / layerOutWriteBytes split extReadBytes and
	// outWriteBytes per layer. Each explicit flow-of-data channel (a layer's
	// IF, WGT or OF entry) is a single FD value, so the per-cut bisection
	// floor needs per-layer — not aggregate — volumes: the adversary choice
	// interleave-vs-pin is made once per channel, for all of its bytes.
	layerExtReadBytes  []float64
	layerOutWriteBytes []float64

	// ofmapBytes is the total output bytes every layer produces per sample.
	// The intra-core engine charges at least OutBytes of GLB traffic per
	// pass for every workload (vector-only workloads charge In+Out, PE
	// workloads charge inReads+wReads+outWrites >= OutBytes), so each output
	// byte costs at least one GLB write.
	ofmapBytes float64

	// extReadBytes is the minimal external-input volume read from DRAM per
	// sample. Layers consuming the DNN input must carry an explicit IF
	// (core.NeedsExplicitIF / validateFD), and the analyzer emits their
	// needed regions as per-pass DRAM reads unconditionally, so this traffic
	// cannot be mapped away.
	extReadBytes float64

	// outWriteBytes is the ofmap volume of every graph-output layer per
	// sample. A layer with zero consumers must carry an explicit OF
	// (core.NeedsExplicitOF), and the analyzer writes its full per-pass
	// ofmap to DRAM, so the model's outputs are always written back.
	outWriteBytes float64

	// interBytes is the minimal producer-to-consumer volume of every
	// internal edge per sample. Scheme validation keeps the cores of one
	// group disjoint across layers, so when producer and consumer share a
	// group the data crosses at least one NoC/D2D link (distinct cores, and
	// every route between distinct cores has >= 1 link); when they do not,
	// the consumer reads the data from DRAM (the analyzer's prodMS == nil
	// path). Either way each byte is charged at least
	// min(one on-chip hop, one D2D hop, one DRAM access).
	interBytes float64
}

// demandCache memoizes modelDemand per graph. Graphs are immutable after
// construction (the evaluator relies on the same invariant for its pointer
// keyed memo), so entries can never go stale — but graph builders mint
// fresh pointers per call (a long-lived server builds new graphs for every
// sweep spec), so the package-global map is bounded like the other memos:
// past the limit it is flushed wholesale, which only costs recomputation.
var (
	demandCache      sync.Map // *dnn.Graph -> *modelDemand
	demandCount      atomic.Int64
	demandCacheLimit = int64(1 << 10)
)

func demandFor(g *dnn.Graph) *modelDemand {
	if v, ok := demandCache.Load(g); ok {
		return v.(*modelDemand)
	}
	d := computeDemand(g)
	if demandCount.Add(1) > demandCacheLimit {
		demandCache.Range(func(k, _ any) bool { demandCache.Delete(k); return true })
		demandCount.Store(1)
	}
	demandCache.Store(g, d)
	return d
}

func computeDemand(g *dnn.Graph) *modelDemand {
	d := &modelDemand{
		layerWeightBytes:   make([]float64, len(g.Layers)),
		layerExtReadBytes:  make([]float64, len(g.Layers)),
		layerOutWriteBytes: make([]float64, len(g.Layers)),
	}
	cons := g.Consumers()
	for _, l := range g.Layers {
		d.macs += float64(l.MACs())
		d.vecOps += float64(l.VectorOps())
		wb := float64(l.WeightVol()) * dnn.ElemBytes
		d.layerWeightBytes[l.ID] = wb
		d.weightBytes += wb
		ofb := float64(l.OfmapVol()) * dnn.ElemBytes
		d.ofmapBytes += ofb
		if len(cons[l.ID]) == 0 {
			d.layerOutWriteBytes[l.ID] = ofb
			d.outWriteBytes += ofb
		}
		for _, in := range l.Inputs {
			if in.Src == dnn.ExternalInput {
				eb := float64(edgeMinVol(l, in, l.IH(), l.IW(), l.IC)) * dnn.ElemBytes
				d.layerExtReadBytes[l.ID] += eb
				d.extReadBytes += eb
			} else {
				pl := g.Layer(in.Src)
				d.interBytes += float64(edgeMinVol(l, in, pl.OH, pl.OW, pl.OK)) * dnn.ElemBytes
			}
		}
	}
	return d
}

// edgeMinVol returns the minimal producer-region volume (elements per
// sample) any feasible mapping must move across edge in to compute layer l's
// full output cube.
//
// Soundness: dnn.NeededRegion maps an output sub-cube to the producer region
// it requires, and each of its four dimensions depends only on the matching
// output dimension. The union of the needed regions over any partition of
// the output cube therefore contains the union over single output elements,
// which factorizes into the product of per-dimension unions — the partition
// can only enlarge per-part regions, never shrink the union. For Conv/Pool
// the per-dimension union is the gap-aware window cover (stride > kernel
// leaves unread rows, so the convex hull NeededRegion reports for a range
// would overestimate); for every other kind NeededRegion over the full
// ranges already is the union (its dimension maps are constant or the
// identity).
func edgeMinVol(l *dnn.Layer, in dnn.Input, srcOH, srcOW, srcOK int) int64 {
	switch l.Kind {
	case dnn.Conv, dnn.Pool:
		h := coveredDim(l.OH, l.R, l.Stride, l.PadH, srcOH)
		w := coveredDim(l.OW, l.S, l.Stride, l.PadW, srcOW)
		c := l.InputCRange(dnn.Range{Lo: 0, Hi: l.OK}).
			Shift(-in.DstOff).
			Intersect(dnn.Range{Lo: 0, Hi: srcOK}).Len()
		return int64(h) * int64(w) * int64(c)
	default:
		reg := l.NeededRegion(in,
			dnn.Range{Lo: 0, Hi: l.OH}, dnn.Range{Lo: 0, Hi: l.OW},
			dnn.Range{Lo: 0, Hi: 1}, dnn.Range{Lo: 0, Hi: l.OK},
			srcOH, srcOW, srcOK)
		return reg.Vol()
	}
}

// coveredDim counts the input coordinates in [0, src) read by at least one
// of the n sliding windows of length k at positions o*stride-pad. With
// stride <= k the windows tile a contiguous interval; with stride > k they
// leave gaps and only the clipped window lengths count.
func coveredDim(n, k, stride, pad, src int) int {
	if n <= 0 || src <= 0 {
		return 0
	}
	if stride <= 0 {
		stride = 1
	}
	if k < 1 {
		k = 1
	}
	if stride <= k {
		lo, hi := -pad, (n-1)*stride-pad+k
		if lo < 0 {
			lo = 0
		}
		if hi > src {
			hi = src
		}
		if hi <= lo {
			return 0
		}
		return hi - lo
	}
	total := 0
	for o := 0; o < n; o++ {
		lo := o*stride - pad
		hi := lo + k
		if lo < 0 {
			lo = 0
		}
		if hi > src {
			hi = src
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// minPasses returns the smallest per-group pipeline pass count any scheme
// the mapping pipeline can produce for these options: ceil(batch / maxBU)
// where maxBU is the largest usable batch unit. It mirrors graphpart's
// filtering exactly (candidates outside [1, batch] are dropped, an empty
// result falls back to {1}), and the SA operators never mutate a group's
// BatchUnit, so no reachable scheme has fewer passes.
func minPasses(opt Options) int {
	batch := opt.Batch
	if batch < 1 {
		batch = 1
	}
	bus := opt.BatchUnits
	if len(bus) == 0 {
		bus = graphpart.DefaultOptions().BatchUnits
	}
	maxBU := 0
	for _, bu := range bus {
		if bu >= 1 && bu <= batch && bu > maxBU {
			maxBU = bu
		}
	}
	if maxBU < 1 {
		maxBU = 1
	}
	return (batch + maxBU - 1) / maxBU
}

// lowerBoundED returns provable lower bounds on the total energy (J) and
// delay (s) of any feasible mapping of g on cfg under opt.
//
// The BoundComputeDRAM terms rest on two invariants of the evaluation model:
//
//   - every MAC executes on a PE array whose aggregate throughput is
//     Cores * MACsPerCore per cycle, and costs at least MACpJ;
//   - every stationary weight byte is read from DRAM at least once
//     (resident slices load once, streaming slices more), over a DRAM
//     system of DRAMBW GB/s, at DRAMpJPerByte.
//
// The BoundCompulsory level adds floors the evaluator also always charges:
//
//   - vector ops at VecOppJ and one GLB write per produced output byte
//     (the intra-core engine's traffic term is >= OutBytes per pass);
//   - compulsory activation DRAM traffic: external-input reads and
//     graph-output write-backs are explicit flows by scheme validation
//     (core.NeedsExplicitIF/OF), emitted every pass, and pass count times
//     batch unit covers the batch;
//   - GLB-capacity weight streaming: a weight slice is loaded once per run
//     only when every core holding it keeps it GLB-resident, residency
//     implies the slice fits that core's GLB, cores within a group are
//     distinct, so at most Cores*GLBPerCore weight bytes per group escape
//     per-pass streaming; any single layer exceeding that aggregate streams
//     its excess on every one of its group's >= minPasses passes;
//   - inter-layer transfers: disjoint per-group core sets mean same-group
//     producer->consumer data crosses >= 1 link, and cross-group data takes
//     the DRAM path, so each compulsory inter-layer byte costs at least
//     min(NoC hop, D2D hop, DRAM access) energy;
//   - interconnect capacity: each compulsory DRAM byte occupies a DRAM
//     controller and each inter-layer byte occupies a link or a controller,
//     and a sum of per-pass maxima is at least the total load over the total
//     bandwidth, so delay >= (dram + inter) / (DRAMBW + LinkBWSum).
//
// The BoundCut level keeps every BoundCompulsory term and additionally
// floors delay by the per-cut bisection rate of the largest explicit DRAM
// flow (see cutFloor), which tightens the delay bound on multi-chiplet
// meshes whose narrow cuts — not the aggregate link sum — gate traffic.
//
// Every term only charges costs the evaluator actually charges and never
// more of them than any reachable scheme incurs, so the bound can never
// exclude the true optimum.
func lowerBoundED(cfg *arch.Config, g *dnn.Graph, p *eval.Params, opt Options) (eLB, dLB float64) {
	batch := float64(opt.Batch)
	if batch < 1 {
		batch = 1
	}
	d := demandFor(g)
	macs := d.macs * batch

	peakMACsPerSec := float64(cfg.Cores()) * float64(cfg.MACsPerCore) * cfg.FreqGHz * 1e9
	if peakMACsPerSec > 0 {
		dLB = macs / peakMACsPerSec
	}

	dramBytes := d.weightBytes
	full := opt.Bound != BoundComputeDRAM
	if full {
		dramBytes += (d.extReadBytes + d.outWriteBytes) * batch
		if pm := minPasses(opt); pm > 1 {
			agg := float64(cfg.Cores()) * float64(cfg.GLBPerCore)
			excess := 0.0
			for _, wb := range d.layerWeightBytes {
				if wb > agg {
					excess += wb - agg
				}
			}
			dramBytes += float64(pm-1) * excess
		}
	}
	if dram := cfg.DRAMBW * 1e9; dram > 0 {
		if t := dramBytes / dram; t > dLB {
			dLB = t
		}
	}

	eLB = macs*p.MACpJ*1e-12 + dramBytes*p.DRAMpJPerByte*1e-12
	if full {
		inter := d.interBytes * batch
		hop := p.NoCHoppJPerByte + p.RouterpJPerByte
		if v := p.D2DpJPerByte + p.RouterpJPerByte; v < hop {
			hop = v
		}
		if p.DRAMpJPerByte < hop {
			hop = p.DRAMpJPerByte
		}
		eLB += d.vecOps*batch*p.VecOppJ*1e-12 +
			d.ofmapBytes*batch*p.GLBpJPerByte*1e-12 +
			inter*hop*1e-12
		if cap := (cfg.DRAMBW + noc.LinkBWSum(cfg)) * 1e9; cap > 0 {
			if t := (dramBytes + inter) / cap; t > dLB {
				dLB = t
			}
		}
		if opt.Bound == BoundCut {
			if t := cutFloor(cfg, d, batch, minPasses(opt)); t > dLB {
				dLB = t
			}
		}
	}
	return eLB, dLB
}

// cutFloor is the per-cut bisection delay floor of BoundCut: the largest
// compulsory volume any single explicit flow-of-data channel must move,
// times the worst per-byte rate the flow cannot escape.
//
// Soundness. Every explicit DRAM flow of a reachable scheme — a layer's
// weight reads (FD.WGT), external-input reads (FD.IF) or graph-output
// write-backs (FD.OF) — carries one FD value for all of its bytes
// (core.MS holds a single FD per layer; core/parse.go's fdCtrl maps it to
// the controller argument of every noc.Traffic call the analyzer emits for
// that channel). The value leaves exactly two regimes, and the evaluator's
// BottleneckTime charges a provable floor in each:
//
//   - Pinned (FD = specific controller c): every byte of the channel is
//     read from / written to controller c, whose service bandwidth is
//     DRAMBW/d (noc.Traffic.BottleneckTime divides DRAMBW evenly over the
//     d controllers). Summing the per-pass controller maxima over the run,
//     delay >= vol * d / DRAMBW.
//
//   - Interleaved (FD = FDInterleave): the bytes split evenly over all d
//     controllers (noc's ctrl < 0 path), so for any chiplet bisection the
//     controllers attached wholly on the far side of a byte's endpoint core
//     carry their 1/d shares across the cut — the mesh is connected only
//     through the cut's link set, so every port-to-core route of those
//     shares loads at least one crossing link (multicast trees load each
//     crossing link once with the full share, which is >= the one-crossing
//     charge). With nA/nB controllers wholly on either side, at least
//     min(nA, nB)/d of the channel's volume loads the cut every pass
//     (whichever side the endpoint cores are on, the opposite side holds
//     >= min(nA, nB) whole controllers; straddling controllers are counted
//     on neither side and charge nothing). The per-pass delay is at least
//     the cut's total load over its total bandwidth (a weighted mean never
//     exceeds the per-link maximum BottleneckTime takes), and the per-pass
//     inequality sums over passes, so delay >= vol * min(nA,nB)/d / cutBW.
//     Interleaved bytes cross every bisection simultaneously, so the max
//     over cuts applies.
//
// The mapping chooses the regime, so only min(pinned rate, interleaved
// rate) is compulsory — and per-channel volumes cannot be summed, because
// distinct channels can pin to distinct controllers and overlap in time, so
// the floor takes the max over channels. Channel volumes are themselves
// compulsory: weights are read at least once plus the GLB-capacity
// streaming excess on every extra pass (same invariants as the aggregate
// DRAM floor above), and external reads / output write-backs are emitted
// every pass with pass-count times batch-unit covering the batch. A
// monolithic chip has no bisection and the floor is zero; so is a cut whose
// controllers all straddle it (min(nA, nB) = 0).
func cutFloor(cfg *arch.Config, d *modelDemand, batch float64, pm int) float64 {
	cuts := noc.ChipletCuts(cfg)
	if len(cuts) == 0 {
		return 0
	}
	ports := cfg.DRAMPorts()
	dn := len(ports)
	intRate := 0.0 // s per byte (x 1e9), best over cuts
	for _, c := range cuts {
		if c.BW <= 0 {
			continue
		}
		var whole [2]int
		for _, p := range ports {
			side := c.SideOf(cfg, p.Cores[0])
			wholeSide := true
			for _, pc := range p.Cores[1:] {
				if c.SideOf(cfg, pc) != side {
					wholeSide = false
					break
				}
			}
			if wholeSide {
				whole[side]++
			}
		}
		m := whole[0]
		if whole[1] < m {
			m = whole[1]
		}
		if m == 0 {
			continue
		}
		if r := float64(m) / float64(dn) / c.BW; r > intRate {
			intRate = r
		}
	}
	if intRate == 0 {
		return 0
	}
	rate := intRate
	if pin := float64(dn) / cfg.DRAMBW; pin < rate {
		rate = pin
	}
	agg := float64(cfg.Cores()) * float64(cfg.GLBPerCore)
	maxVol := 0.0
	for id, wb := range d.layerWeightBytes {
		v := wb
		if pm > 1 && wb > agg {
			v += float64(pm-1) * (wb - agg)
		}
		if e := d.layerExtReadBytes[id] * batch; e > v {
			v = e
		}
		if o := d.layerOutWriteBytes[id] * batch; o > v {
			v = o
		}
		if v > maxVol {
			maxVol = v
		}
	}
	return maxVol * rate / 1e9
}

// boundParams resolves the technology constants the lower bounds use:
// Options.BoundParams when set, otherwise the evaluator defaults. The
// session's evaluators always charge eval.DefaultParams(), so an override
// is clamped to never exceed the defaults on any constant the bound
// consumes — a "lower bound" computed from larger constants than the
// evaluation actually charges would not bound the evaluated objective, and
// pruning could discard the true optimum. The clamp covers every constant
// the compulsory-traffic bound reads (MAC, vector, GLB, NoC hop, router,
// D2D and DRAM energies); the bound is monotone increasing in each, so
// overrides can only loosen (lower) it, never unsoundly tighten it. Bounds
// only schedule and prune, so the choice is not part of the checkpoint
// fingerprint.
func boundParams(opt Options) *eval.Params {
	p := eval.DefaultParams()
	if bp := opt.BoundParams; bp != nil {
		clamp := func(dst *float64, v float64) {
			if v < *dst {
				*dst = v
			}
		}
		clamp(&p.MACpJ, bp.MACpJ)
		clamp(&p.VecOppJ, bp.VecOppJ)
		clamp(&p.GLBpJPerByte, bp.GLBpJPerByte)
		clamp(&p.NoCHoppJPerByte, bp.NoCHoppJPerByte)
		clamp(&p.RouterpJPerByte, bp.RouterpJPerByte)
		clamp(&p.D2DpJPerByte, bp.D2DpJPerByte)
		clamp(&p.DRAMpJPerByte, bp.DRAMpJPerByte)
	}
	return &p
}

// pruneBound computes the candidate's objective lower bound over a model
// set: MC^alpha * geomean(lowerBound(E))^beta * geomean(lowerBound(D))^gamma.
// It is a thin wrapper over lowerBoundED and the scheduler's mixedBound
// fold, so tests exercising it pin exactly the reduction the sweep runs.
// It is only a bound when every exponent is non-negative; callers must
// gate on objMonotone.
func pruneBound(cfg *arch.Config, models []*dnn.Graph, p *eval.Params, opt Options, mcTotal float64) float64 {
	eLBs := make([]float64, len(models))
	dLBs := make([]float64, len(models))
	for mi, g := range models {
		eLBs[mi], dLBs[mi] = lowerBoundED(cfg, g, p, opt)
	}
	return mixedBound(mcTotal, eLBs, dLBs, nil, opt.Objective)
}

// objMonotone reports whether the objective is monotone non-decreasing in
// MC, E and D — the precondition for lower-bound pruning to be sound.
func objMonotone(o Objective) bool {
	return o.Alpha >= 0 && o.Beta >= 0 && o.Gamma >= 0
}
