package dse

import (
	"math"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

// lowerBoundED returns provable lower bounds on the total energy (J) and
// delay (s) of any feasible mapping of g on cfg at the given batch, from
// two invariants of the evaluation model:
//
//   - every MAC executes on a PE array whose aggregate throughput is
//     Cores * MACsPerCore per cycle, and costs at least MACpJ;
//   - every stationary weight byte is read from DRAM at least once
//     (resident slices load once, streaming slices more), over a DRAM
//     system of DRAMBW GB/s, at DRAMpJPerByte.
//
// The bounds ignore activations, NoC/D2D transfers, pipeline fill and
// utilization loss, all of which only increase cost, so the bound can never
// exclude the true optimum.
func lowerBoundED(cfg *arch.Config, g *dnn.Graph, p *eval.Params, batch int) (eLB, dLB float64) {
	if batch < 1 {
		batch = 1
	}
	macs := float64(g.TotalMACs()) * float64(batch)
	weightBytes := float64(g.TotalWeights()) * dnn.ElemBytes

	peakMACsPerSec := float64(cfg.Cores()) * float64(cfg.MACsPerCore) * cfg.FreqGHz * 1e9
	if peakMACsPerSec > 0 {
		dLB = macs / peakMACsPerSec
	}
	if dram := cfg.DRAMBW * 1e9; dram > 0 {
		if t := weightBytes / dram; t > dLB {
			dLB = t
		}
	}
	eLB = macs*p.MACpJ*1e-12 + weightBytes*p.DRAMpJPerByte*1e-12
	return eLB, dLB
}

// boundParams resolves the technology constants the lower bounds use:
// Options.BoundParams when set, otherwise the evaluator defaults. The
// session's evaluators always charge eval.DefaultParams(), so an override
// is clamped to never exceed the defaults on the constants the bound
// consumes — a "lower bound" computed from larger constants than the
// evaluation actually charges would not bound the evaluated objective, and
// pruning could discard the true optimum. Overrides can therefore only
// loosen (lower) the bound, never unsoundly tighten it; bounds only
// schedule and prune, so the choice is not part of the checkpoint
// fingerprint.
func boundParams(opt Options) *eval.Params {
	p := eval.DefaultParams()
	if bp := opt.BoundParams; bp != nil {
		if bp.MACpJ < p.MACpJ {
			p.MACpJ = bp.MACpJ
		}
		if bp.DRAMpJPerByte < p.DRAMpJPerByte {
			p.DRAMpJPerByte = bp.DRAMpJPerByte
		}
	}
	return &p
}

// pruneBound computes the candidate's objective lower bound over a model
// set: MC^alpha * geomean(lowerBound(E))^beta * geomean(lowerBound(D))^gamma,
// accumulated in log space like reduceCandidate. It is only a bound when
// every exponent is non-negative; callers must gate on objMonotone.
func pruneBound(cfg *arch.Config, models []*dnn.Graph, p *eval.Params, opt Options, mcTotal float64) float64 {
	n := float64(len(models))
	if n == 0 {
		return 0
	}
	// math.Log(0) is -Inf and math.Exp(-Inf) is 0, so zero bounds flow
	// through the log-space mean exactly.
	var sumLogE, sumLogD float64
	for _, g := range models {
		eLB, dLB := lowerBoundED(cfg, g, p, opt.Batch)
		sumLogE += math.Log(eLB)
		sumLogD += math.Log(dLB)
	}
	return Score(mcTotal, math.Exp(sumLogE/n), math.Exp(sumLogD/n), opt.Objective)
}

// objMonotone reports whether the objective is monotone non-decreasing in
// MC, E and D — the precondition for lower-bound pruning to be sound.
func objMonotone(o Objective) bool {
	return o.Alpha >= 0 && o.Beta >= 0 && o.Gamma >= 0
}
