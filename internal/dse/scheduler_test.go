package dse

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

// TestOrderedMatchesGridWithoutPruning pins the determinism satellite: with
// pruning off, the bound-ordered schedule changes only dispatch order, so
// the sorted result set must be bit-identical to grid order.
func TestOrderedMatchesGridWithoutPruning(t *testing.T) {
	cands := testCands()
	big, err := ScaleUp(cands[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	cands = append(cands, big)
	models := []*dnn.Graph{testCNN, testTF}

	grid := testOptions()
	grid.Order = OrderGrid
	grid.Prune = false
	bound := grid
	bound.Order = OrderBound

	want := NewSession().Run(cands, models, grid)
	got := NewSession().Run(cands, models, bound)
	resultsEqual(t, want, got, "bound-ordered vs grid")

	// The scheduler must report the order it used.
	ses := NewSession()
	ses.Run(cands, models, bound)
	if st := ses.LastSweepStats(); st.Order != OrderBound {
		t.Errorf("stats order = %q, want %q", st.Order, OrderBound)
	}
}

// TestBoundOrderDispatchesCheapFirst: the dispatch permutation must sort
// candidates by ascending objective lower bound.
func TestBoundOrderDispatchesCheapFirst(t *testing.T) {
	base := arch.GArch72()
	big, err := ScaleUp(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Order = OrderBound
	opt.Objective = Objective{Alpha: 8, Beta: 1, Gamma: 1}

	// big first in grid order; the scheduler must flip them (its 4x MC at
	// alpha=8 dwarfs its slightly better delay bound).
	ses := NewSession()
	sc := ses.newScheduler(context.Background(), []arch.Config{big, base}, []*dnn.Graph{testCNN}, opt)
	if sc.states[0].lb <= sc.states[1].lb {
		t.Fatalf("bound of big (%g) should exceed base (%g)", sc.states[0].lb, sc.states[1].lb)
	}
	if sc.order[0] != 1 || sc.order[1] != 0 {
		t.Errorf("dispatch order = %v, want [1 0]", sc.order)
	}
}

// TestCheckpointSeededIncumbentPrunes pins the resume satellite: a sweep
// resumed from a checkpoint that already contains a feasible candidate must
// prune a dominated candidate from task one — even in grid order with the
// dominated candidate dispatched first.
func TestCheckpointSeededIncumbentPrunes(t *testing.T) {
	base := arch.GArch72()
	big, err := ScaleUp(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Workers = 1
	opt.Prune = true
	opt.Order = OrderGrid
	opt.Objective = Objective{Alpha: 8, Beta: 1, Gamma: 1}
	models := []*dnn.Graph{testCNN}

	// Session A maps only the base candidate and checkpoints it.
	a := NewSession()
	if Best(a.Run([]arch.Config{base}, models, opt)) == nil {
		t.Fatal("base infeasible")
	}
	var ckpt bytes.Buffer
	if err := a.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Without the checkpoint, grid order runs big first against an infinite
	// incumbent: nothing can be pruned.
	cold := NewSession()
	coldRes := cold.Run([]arch.Config{big, base}, models, opt)
	for i := range coldRes {
		if coldRes[i].Pruned {
			t.Fatalf("cold sweep pruned %s; the seeding test needs a workload only the seed can prune", coldRes[i].Cfg.Name)
		}
	}

	// Resumed session: the checkpointed base seeds the incumbent before the
	// first task, so big is pruned without being mapped.
	calls := 0
	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool) (*MapResult, error) {
		calls++
		return orig(ev, cfg, g, o, stop)
	}
	defer func() { mapModelFn = orig }()

	b := NewSession()
	if err := b.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	rs := b.Run([]arch.Config{big, base}, models, opt)
	if calls != 0 {
		t.Errorf("resumed sweep invoked MapModel %d times (big should be pruned, base restored)", calls)
	}
	if rs[0].Cfg.Name != base.Name || !rs[0].Feasible {
		t.Fatalf("base should win: %s (%s)", rs[0].Cfg.Name, rs[0].Status())
	}
	if !rs[1].Pruned {
		t.Fatalf("big not pruned on resume: %s", rs[1].Status())
	}

	st := b.LastSweepStats()
	if math.IsInf(st.SeededIncumbent, 1) {
		t.Error("stats did not record the seeded incumbent")
	}
	if st.SeededIncumbent != rs[0].Obj {
		t.Errorf("seeded incumbent %g, want base objective %g", st.SeededIncumbent, rs[0].Obj)
	}
	if st.PrunedCandidates != 1 {
		t.Errorf("stats pruned = %d, want 1", st.PrunedCandidates)
	}
	if len(st.Trajectory) == 0 || st.Trajectory[0].Candidate != "(checkpoint seed)" {
		t.Errorf("trajectory missing checkpoint seed: %+v", st.Trajectory)
	}
}

// TestAbandonedCellPrunesCandidate pins the live-incumbent plumbing: a cell
// whose portfolio reports abandonment must turn into a pruned candidate,
// count its saved restarts, and leave no checkpoint record behind.
func TestAbandonedCellPrunesCandidate(t *testing.T) {
	base := arch.GArch72()
	doomed := arch.GArch72()
	doomed.Name = "doomed-arch"
	doomed.NoCBW = 48 // structurally distinct so cells do not alias

	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool) (*MapResult, error) {
		if cfg.Name == "doomed-arch" {
			return nil, &abandonedError{done: 1, planned: 4}
		}
		return orig(ev, cfg, g, o, stop)
	}
	defer func() { mapModelFn = orig }()

	opt := testOptions()
	opt.Prune = true
	opt.Restarts = 4
	ses := NewSession()
	rs := ses.Run([]arch.Config{base, doomed}, []*dnn.Graph{testCNN}, opt)

	var dr *CandidateResult
	for i := range rs {
		if rs[i].Cfg.Name == "doomed-arch" {
			dr = &rs[i]
		}
	}
	if dr == nil || !dr.Pruned || dr.Err != nil {
		t.Fatalf("abandoned candidate not reported pruned: %+v", dr)
	}
	st := ses.LastSweepStats()
	if st.AbandonedRestarts != 3 {
		t.Errorf("abandoned restarts = %d, want 3", st.AbandonedRestarts)
	}
	// An abandoned cell is not a settled outcome: it must not be
	// checkpointed, so a later sweep retries it.
	var ckpt bytes.Buffer
	if err := ses.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ckpt.String(), "doomed") {
		t.Errorf("abandoned cell was checkpointed:\n%s", ckpt.String())
	}
}

// TestAdaptiveSweepCountsSkippedRestarts: patience savings must surface in
// the sweep stats, and a patience wide enough to never fire must leave the
// sweep bit-identical to the fixed schedule.
func TestAdaptiveSweepCountsSkippedRestarts(t *testing.T) {
	cands := testCands()
	models := []*dnn.Graph{testCNN, testTF}

	fixed := testOptions()
	fixed.Restarts = 4

	wide := fixed
	wide.Patience = 4 // can never fire: bit-identical, same fingerprint
	if optsFingerprint(fixed) != optsFingerprint(wide) {
		t.Fatal("inactive patience changed the options fingerprint")
	}
	resultsEqual(t, Run(cands, models, fixed), Run(cands, models, wide), "wide patience")

	adaptive := fixed
	adaptive.Patience = 1
	if optsFingerprint(fixed) == optsFingerprint(adaptive) {
		t.Fatal("active patience must change the options fingerprint")
	}
	ses := NewSession()
	if Best(ses.Run(cands, models, adaptive)) == nil {
		t.Fatal("no feasible candidate")
	}
	st := ses.LastSweepStats()
	if st.SkippedRestarts <= 0 {
		t.Errorf("adaptive sweep skipped %d restarts, want > 0", st.SkippedRestarts)
	}
	if st.SkippedRestarts >= 3*len(cands)*len(models) {
		t.Errorf("skipped %d restarts, more than the %d that exist", st.SkippedRestarts, 3*len(cands)*len(models))
	}
}

// TestSweepStatsTrajectory: every incumbent improvement lands in the
// trajectory in decreasing-objective order, ending at the best result.
func TestSweepStatsTrajectory(t *testing.T) {
	cands := testCands()
	opt := testOptions()
	opt.Prune = true
	ses := NewSession()
	rs := ses.Run(cands, []*dnn.Graph{testCNN}, opt)
	best := Best(rs)
	if best == nil {
		t.Fatal("no feasible candidate")
	}
	st := ses.LastSweepStats()
	if len(st.Trajectory) == 0 {
		t.Fatal("empty incumbent trajectory")
	}
	for i := 1; i < len(st.Trajectory); i++ {
		if st.Trajectory[i].Obj >= st.Trajectory[i-1].Obj {
			t.Errorf("trajectory not strictly improving: %+v", st.Trajectory)
		}
	}
	if last := st.Trajectory[len(st.Trajectory)-1]; last.Obj != best.Obj {
		t.Errorf("trajectory ends at %g, best is %g", last.Obj, best.Obj)
	}
	if st.Candidates != len(cands) || st.Cells != len(cands) {
		t.Errorf("stats counted %d candidates / %d cells, want %d / %d",
			st.Candidates, st.Cells, len(cands), len(cands))
	}
}

// TestBoundParamsOverride: overrides may only loosen the bound — the
// evaluation always charges eval.DefaultParams(), so constants above the
// defaults are clamped (an inflated "lower bound" could prune the true
// optimum), while smaller constants lower the bound as requested.
func TestBoundParamsOverride(t *testing.T) {
	cfg := arch.GArch72()
	opt := testOptions()
	p := eval.DefaultParams()
	def := pruneBound(&cfg, []*dnn.Graph{testCNN}, &p, opt, 100)

	hot := p
	hot.MACpJ *= 10
	hot.DRAMpJPerByte *= 10
	opt.BoundParams = &hot
	if got := pruneBound(&cfg, []*dnn.Graph{testCNN}, boundParams(opt), opt, 100); got != def {
		t.Errorf("10x energy constants must be clamped to the defaults: %g vs %g", got, def)
	}

	cool := p
	cool.MACpJ /= 10
	cool.DRAMpJPerByte /= 10
	opt.BoundParams = &cool
	if got := pruneBound(&cfg, []*dnn.Graph{testCNN}, boundParams(opt), opt, 100); got >= def {
		t.Errorf("0.1x energy constants did not lower the bound: %g vs %g", got, def)
	}

	opt.BoundParams = nil
	if b := pruneBound(&cfg, []*dnn.Graph{testCNN}, boundParams(opt), opt, 100); b != def {
		t.Errorf("default bound params diverged: %g vs %g", b, def)
	}
}

// TestAbandonedErrorNotInfeasible: the sentinel must never be mistaken for
// infeasibility or surface as a user-visible error class.
func TestAbandonedErrorNotInfeasible(t *testing.T) {
	err := error(&abandonedError{done: 1, planned: 4})
	if errors.Is(err, ErrInfeasible) {
		t.Error("abandonedError wraps ErrInfeasible")
	}
	if !strings.Contains(err.Error(), "1/4") {
		t.Errorf("unexpected message: %v", err)
	}
}

// TestFingerprintPatienceNotAliasedWithBatchUnits: the active-patience word
// must be unambiguous against the variable-length BatchUnits tail, or two
// different option sets could share checkpoint cells.
func TestFingerprintPatienceNotAliasedWithBatchUnits(t *testing.T) {
	a := testOptions()
	a.Restarts = 16
	a.BatchUnits = []int{1, 2, 4, 8}
	b := testOptions()
	b.Restarts = 16
	b.BatchUnits = []int{1, 2, 4}
	b.Patience = 8
	if optsFingerprint(a) == optsFingerprint(b) {
		t.Fatal("BatchUnits tail aliases the active patience word")
	}
}

// TestResumedSweepRestoresDominatedCandidate: a candidate whose cells are
// all checkpointed must be restored — not discarded as pruned — even when
// the seeded incumbent dominates its bound; restoring is free, and the
// resumed sweep must report everything the original run reported.
func TestResumedSweepRestoresDominatedCandidate(t *testing.T) {
	base := arch.GArch72()
	big, err := ScaleUp(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Workers = 1
	opt.Order = OrderGrid
	opt.Objective = Objective{Alpha: 8, Beta: 1, Gamma: 1}
	models := []*dnn.Graph{testCNN}
	cands := []arch.Config{big, base}

	// Original run with pruning off: both candidates computed and
	// checkpointed with real objectives.
	a := NewSession()
	want := a.Run(cands, models, opt)
	var ckpt bytes.Buffer
	if err := a.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Resume with pruning ON: the seed dominates big's bound, but big's
	// cell is checkpointed, so it must be restored verbatim.
	calls := 0
	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool) (*MapResult, error) {
		calls++
		return orig(ev, cfg, g, o, stop)
	}
	defer func() { mapModelFn = orig }()

	b := NewSession()
	if err := b.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	pruneOpt := opt
	pruneOpt.Prune = true
	got := b.Run(cands, models, pruneOpt)
	if calls != 0 {
		t.Errorf("resumed sweep invoked MapModel %d times", calls)
	}
	resultsEqual(t, want, got, "resumed prune-on vs original prune-off")
	if st := b.LastSweepStats(); st.PrunedCandidates != 0 {
		t.Errorf("resumed sweep pruned %d fully checkpointed candidates", st.PrunedCandidates)
	}
}
