package dse

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

// TestOrderedMatchesGridWithoutPruning pins the determinism satellite: with
// pruning off, the bound-ordered schedule changes only dispatch order, so
// the sorted result set must be bit-identical to grid order.
func TestOrderedMatchesGridWithoutPruning(t *testing.T) {
	cands := testCands()
	big, err := ScaleUp(cands[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	cands = append(cands, big)
	models := []*dnn.Graph{testCNN, testTF}

	grid := testOptions()
	grid.Order = OrderGrid
	grid.Prune = false
	bound := grid
	bound.Order = OrderBound

	want := NewSession().Run(cands, models, grid)
	got := NewSession().Run(cands, models, bound)
	resultsEqual(t, want, got, "bound-ordered vs grid")

	// The scheduler must report the order it used.
	ses := NewSession()
	ses.Run(cands, models, bound)
	if st := ses.LastSweepStats(); st.Order != OrderBound {
		t.Errorf("stats order = %q, want %q", st.Order, OrderBound)
	}
}

// TestBoundOrderDispatchesCheapFirst: the dispatch permutation must sort
// candidates by ascending objective lower bound.
func TestBoundOrderDispatchesCheapFirst(t *testing.T) {
	base := arch.GArch72()
	big, err := ScaleUp(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Order = OrderBound
	opt.Objective = Objective{Alpha: 8, Beta: 1, Gamma: 1}

	// big first in grid order; the scheduler must flip them (its 4x MC at
	// alpha=8 dwarfs its slightly better delay bound).
	ses := NewSession()
	sc := ses.newScheduler(context.Background(), []arch.Config{big, base}, []*dnn.Graph{testCNN}, opt)
	if sc.states[0].lb <= sc.states[1].lb {
		t.Fatalf("bound of big (%g) should exceed base (%g)", sc.states[0].lb, sc.states[1].lb)
	}
	if sc.order[0] != 1 || sc.order[1] != 0 {
		t.Errorf("dispatch order = %v, want [1 0]", sc.order)
	}
}

// TestCheckpointSeededIncumbentPrunes pins the resume satellite: a sweep
// resumed from a checkpoint that already contains a feasible candidate must
// prune a dominated candidate from task one — even in grid order with the
// dominated candidate dispatched first.
func TestCheckpointSeededIncumbentPrunes(t *testing.T) {
	base := arch.GArch72()
	big, err := ScaleUp(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Workers = 1
	opt.Prune = true
	opt.Order = OrderGrid
	opt.Objective = Objective{Alpha: 8, Beta: 1, Gamma: 1}
	models := []*dnn.Graph{testCNN}

	// Session A maps only the base candidate and checkpoints it.
	a := NewSession()
	if Best(a.Run([]arch.Config{base}, models, opt)) == nil {
		t.Fatal("base infeasible")
	}
	var ckpt bytes.Buffer
	if err := a.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Without the checkpoint, grid order runs big first against an infinite
	// incumbent: nothing can be pruned.
	cold := NewSession()
	coldRes := cold.Run([]arch.Config{big, base}, models, opt)
	for i := range coldRes {
		if coldRes[i].Pruned {
			t.Fatalf("cold sweep pruned %s; the seeding test needs a workload only the seed can prune", coldRes[i].Cfg.Name)
		}
	}

	// Resumed session: the checkpointed base seeds the incumbent before the
	// first task, so big is pruned without being mapped.
	calls := 0
	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool, from, to int) (*MapResult, error) {
		calls++
		return orig(ev, cfg, g, o, stop, from, to)
	}
	defer func() { mapModelFn = orig }()

	b := NewSession()
	if err := b.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	rs := b.Run([]arch.Config{big, base}, models, opt)
	if calls != 0 {
		t.Errorf("resumed sweep invoked MapModel %d times (big should be pruned, base restored)", calls)
	}
	if rs[0].Cfg.Name != base.Name || !rs[0].Feasible {
		t.Fatalf("base should win: %s (%s)", rs[0].Cfg.Name, rs[0].Status())
	}
	if !rs[1].Pruned {
		t.Fatalf("big not pruned on resume: %s", rs[1].Status())
	}

	st := b.LastSweepStats()
	if math.IsInf(st.SeededIncumbent, 1) {
		t.Error("stats did not record the seeded incumbent")
	}
	if st.SeededIncumbent != rs[0].Obj {
		t.Errorf("seeded incumbent %g, want base objective %g", st.SeededIncumbent, rs[0].Obj)
	}
	if st.PrunedCandidates != 1 {
		t.Errorf("stats pruned = %d, want 1", st.PrunedCandidates)
	}
	if len(st.Trajectory) == 0 || st.Trajectory[0].Candidate != "(checkpoint seed)" {
		t.Errorf("trajectory missing checkpoint seed: %+v", st.Trajectory)
	}
}

// TestAbandonedCellPrunesCandidate pins the live-incumbent plumbing: a cell
// whose portfolio reports abandonment must turn into a pruned candidate,
// count its saved restarts, and leave no checkpoint record behind.
func TestAbandonedCellPrunesCandidate(t *testing.T) {
	base := arch.GArch72()
	doomed := arch.GArch72()
	doomed.Name = "doomed-arch"
	doomed.NoCBW = 48 // structurally distinct so cells do not alias

	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool, from, to int) (*MapResult, error) {
		if cfg.Name == "doomed-arch" {
			return nil, &abandonedError{done: 1, planned: 4}
		}
		return orig(ev, cfg, g, o, stop, from, to)
	}
	defer func() { mapModelFn = orig }()

	opt := testOptions()
	opt.Prune = true
	opt.Restarts = 4
	ses := NewSession()
	rs := ses.Run([]arch.Config{base, doomed}, []*dnn.Graph{testCNN}, opt)

	var dr *CandidateResult
	for i := range rs {
		if rs[i].Cfg.Name == "doomed-arch" {
			dr = &rs[i]
		}
	}
	if dr == nil || !dr.Pruned || dr.Err != nil {
		t.Fatalf("abandoned candidate not reported pruned: %+v", dr)
	}
	st := ses.LastSweepStats()
	if st.AbandonedRestarts != 3 {
		t.Errorf("abandoned restarts = %d, want 3", st.AbandonedRestarts)
	}
	// An abandoned cell is not a settled outcome: it must not be
	// checkpointed, so a later sweep retries it.
	var ckpt bytes.Buffer
	if err := ses.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ckpt.String(), "doomed") {
		t.Errorf("abandoned cell was checkpointed:\n%s", ckpt.String())
	}
}

// TestAdaptiveSweepCountsSkippedRestarts: patience savings must surface in
// the sweep stats, and a patience wide enough to never fire must leave the
// sweep bit-identical to the fixed schedule.
func TestAdaptiveSweepCountsSkippedRestarts(t *testing.T) {
	cands := testCands()
	models := []*dnn.Graph{testCNN, testTF}

	fixed := testOptions()
	fixed.Restarts = 4

	wide := fixed
	wide.Patience = 4 // can never fire: bit-identical, same fingerprint
	if optsFingerprint(fixed) != optsFingerprint(wide) {
		t.Fatal("inactive patience changed the options fingerprint")
	}
	resultsEqual(t, Run(cands, models, fixed), Run(cands, models, wide), "wide patience")

	adaptive := fixed
	adaptive.Patience = 1
	if optsFingerprint(fixed) == optsFingerprint(adaptive) {
		t.Fatal("active patience must change the options fingerprint")
	}
	ses := NewSession()
	if Best(ses.Run(cands, models, adaptive)) == nil {
		t.Fatal("no feasible candidate")
	}
	st := ses.LastSweepStats()
	if st.SkippedRestarts <= 0 {
		t.Errorf("adaptive sweep skipped %d restarts, want > 0", st.SkippedRestarts)
	}
	if st.SkippedRestarts >= 3*len(cands)*len(models) {
		t.Errorf("skipped %d restarts, more than the %d that exist", st.SkippedRestarts, 3*len(cands)*len(models))
	}
}

// TestSweepStatsTrajectory: every incumbent improvement lands in the
// trajectory in decreasing-objective order, ending at the best result.
func TestSweepStatsTrajectory(t *testing.T) {
	cands := testCands()
	opt := testOptions()
	opt.Prune = true
	ses := NewSession()
	rs := ses.Run(cands, []*dnn.Graph{testCNN}, opt)
	best := Best(rs)
	if best == nil {
		t.Fatal("no feasible candidate")
	}
	st := ses.LastSweepStats()
	if len(st.Trajectory) == 0 {
		t.Fatal("empty incumbent trajectory")
	}
	for i := 1; i < len(st.Trajectory); i++ {
		if st.Trajectory[i].Obj >= st.Trajectory[i-1].Obj {
			t.Errorf("trajectory not strictly improving: %+v", st.Trajectory)
		}
	}
	if last := st.Trajectory[len(st.Trajectory)-1]; last.Obj != best.Obj {
		t.Errorf("trajectory ends at %g, best is %g", last.Obj, best.Obj)
	}
	if st.Candidates != len(cands) || st.Cells != len(cands) {
		t.Errorf("stats counted %d candidates / %d cells, want %d / %d",
			st.Candidates, st.Cells, len(cands), len(cands))
	}
}

// TestBoundParamsOverride: overrides may only loosen the bound — the
// evaluation always charges eval.DefaultParams(), so constants above the
// defaults are clamped (an inflated "lower bound" could prune the true
// optimum), while smaller constants lower the bound as requested.
func TestBoundParamsOverride(t *testing.T) {
	cfg := arch.GArch72()
	opt := testOptions()
	p := eval.DefaultParams()
	def := pruneBound(&cfg, []*dnn.Graph{testCNN}, &p, opt, 100)

	// The clamp must cover every constant the v2 bound consumes: inflating
	// any one of them (and all of them) must leave the bound at the default.
	inflate := []func(*eval.Params){
		func(q *eval.Params) { q.MACpJ *= 10 },
		func(q *eval.Params) { q.VecOppJ *= 10 },
		func(q *eval.Params) { q.GLBpJPerByte *= 10 },
		func(q *eval.Params) { q.NoCHoppJPerByte *= 10 },
		func(q *eval.Params) { q.RouterpJPerByte *= 10 },
		func(q *eval.Params) { q.D2DpJPerByte *= 10 },
		func(q *eval.Params) { q.DRAMpJPerByte *= 10 },
	}
	all := p
	for i, f := range inflate {
		hot := p
		f(&hot)
		f(&all)
		opt.BoundParams = &hot
		if got := pruneBound(&cfg, []*dnn.Graph{testCNN}, boundParams(opt), opt, 100); got != def {
			t.Errorf("inflated constant #%d must be clamped to the defaults: %g vs %g", i, got, def)
		}
	}
	opt.BoundParams = &all
	if got := pruneBound(&cfg, []*dnn.Graph{testCNN}, boundParams(opt), opt, 100); got != def {
		t.Errorf("all constants inflated must be clamped to the defaults: %g vs %g", got, def)
	}

	cool := p
	cool.MACpJ /= 10
	cool.DRAMpJPerByte /= 10
	opt.BoundParams = &cool
	if got := pruneBound(&cfg, []*dnn.Graph{testCNN}, boundParams(opt), opt, 100); got >= def {
		t.Errorf("0.1x energy constants did not lower the bound: %g vs %g", got, def)
	}
	// Loosening the interconnect constants must also only lower the bound.
	coolNet := p
	coolNet.NoCHoppJPerByte /= 10
	coolNet.RouterpJPerByte /= 10
	opt.BoundParams = &coolNet
	if got := pruneBound(&cfg, []*dnn.Graph{testCNN}, boundParams(opt), opt, 100); got > def {
		t.Errorf("0.1x interconnect constants raised the bound: %g vs %g", got, def)
	}

	opt.BoundParams = nil
	if b := pruneBound(&cfg, []*dnn.Graph{testCNN}, boundParams(opt), opt, 100); b != def {
		t.Errorf("default bound params diverged: %g vs %g", b, def)
	}
}

// TestAbandonedErrorNotInfeasible: the sentinel must never be mistaken for
// infeasibility or surface as a user-visible error class.
func TestAbandonedErrorNotInfeasible(t *testing.T) {
	err := error(&abandonedError{done: 1, planned: 4})
	if errors.Is(err, ErrInfeasible) {
		t.Error("abandonedError wraps ErrInfeasible")
	}
	if !strings.Contains(err.Error(), "1/4") {
		t.Errorf("unexpected message: %v", err)
	}
}

// TestFingerprintPatienceNotAliasedWithBatchUnits: the active-patience word
// must be unambiguous against the variable-length BatchUnits tail, or two
// different option sets could share checkpoint cells.
func TestFingerprintPatienceNotAliasedWithBatchUnits(t *testing.T) {
	a := testOptions()
	a.Restarts = 16
	a.BatchUnits = []int{1, 2, 4, 8}
	b := testOptions()
	b.Restarts = 16
	b.BatchUnits = []int{1, 2, 4}
	b.Patience = 8
	if optsFingerprint(a) == optsFingerprint(b) {
		t.Fatal("BatchUnits tail aliases the active patience word")
	}
}

// TestResumedSweepRestoresDominatedCandidate: a candidate whose cells are
// all checkpointed must be restored — not discarded as pruned — even when
// the seeded incumbent dominates its bound; restoring is free, and the
// resumed sweep must report everything the original run reported.
func TestResumedSweepRestoresDominatedCandidate(t *testing.T) {
	base := arch.GArch72()
	big, err := ScaleUp(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Workers = 1
	opt.Order = OrderGrid
	opt.Objective = Objective{Alpha: 8, Beta: 1, Gamma: 1}
	models := []*dnn.Graph{testCNN}
	cands := []arch.Config{big, base}

	// Original run with pruning off: both candidates computed and
	// checkpointed with real objectives.
	a := NewSession()
	want := a.Run(cands, models, opt)
	var ckpt bytes.Buffer
	if err := a.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Resume with pruning ON: the seed dominates big's bound, but big's
	// cell is checkpointed, so it must be restored verbatim.
	calls := 0
	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool, from, to int) (*MapResult, error) {
		calls++
		return orig(ev, cfg, g, o, stop, from, to)
	}
	defer func() { mapModelFn = orig }()

	b := NewSession()
	if err := b.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	pruneOpt := opt
	pruneOpt.Prune = true
	got := b.Run(cands, models, pruneOpt)
	if calls != 0 {
		t.Errorf("resumed sweep invoked MapModel %d times", calls)
	}
	resultsEqual(t, want, got, "resumed prune-on vs original prune-off")
	if st := b.LastSweepStats(); st.PrunedCandidates != 0 {
		t.Errorf("resumed sweep pruned %d fully checkpointed candidates", st.PrunedCandidates)
	}
}

// TestPartialCheckpointBoundPrunes pins the bound-aware seeding-breadth
// satellite: a half-checkpointed dominated candidate — one model's cell
// settled, the other missing — must be pruned via its refined per-candidate
// bound without mapping the missing cell. The refined value is a bound on
// the candidate itself, never the shared incumbent, so the winning
// candidate is untouched.
func TestPartialCheckpointBoundPrunes(t *testing.T) {
	strong := arch.GArch72()
	weak := arch.GArch72()
	weak.FreqGHz /= 256 // dominated: same cost, 256x the delay
	weak.Name = weak.String()
	models := []*dnn.Graph{testCNN, testTF}

	opt := testOptions()
	opt.Workers = 1
	opt.Prune = true
	opt.Order = OrderGrid // dispatch weak first: only the refined bound can save it

	// Session A settles exactly half of weak's cells (model 1 of 2) plus all
	// of strong's, then checkpoints. Cell keys ignore the model list, so the
	// half-sweep writes the same cells the full sweep will look up.
	a := NewSession()
	if Best(a.Run([]arch.Config{weak, strong}, models[:1], opt)) == nil {
		t.Fatal("half sweep infeasible")
	}
	if Best(a.Run([]arch.Config{strong}, models, opt)) == nil {
		t.Fatal("strong sweep infeasible")
	}
	var ckpt bytes.Buffer
	if err := a.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// The resumed sweep: strong is fully checkpointed (seeds the incumbent),
	// weak is half checkpointed. Its refined bound mixes the settled cell's
	// huge achieved delay with the missing cell's lower bound, exceeding the
	// seeded incumbent — so the missing cell is never mapped.
	calls := 0
	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool, from, to int) (*MapResult, error) {
		calls++
		return orig(ev, cfg, g, o, stop, from, to)
	}
	defer func() { mapModelFn = orig }()

	b := NewSession()
	if err := b.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	rs := b.Run([]arch.Config{weak, strong}, models, opt)
	if calls != 0 {
		t.Errorf("resumed sweep invoked MapModel %d times; the refined bound should prune weak's missing cell", calls)
	}
	if rs[0].Cfg.Name != strong.Name || !rs[0].Feasible {
		t.Fatalf("strong should win: %s (%s)", rs[0].Cfg.Name, rs[0].Status())
	}
	var wr *CandidateResult
	for i := range rs {
		if rs[i].Cfg.Name == weak.Name {
			wr = &rs[i]
		}
	}
	if wr == nil || !wr.Pruned {
		t.Fatalf("half-checkpointed dominated candidate not pruned: %+v", wr)
	}
	if wr.LowerBound <= 0 || wr.LowerBound <= rs[0].Obj {
		t.Errorf("refined bound %g should exceed the incumbent %g", wr.LowerBound, rs[0].Obj)
	}

	// Sanity: without the refinement-carrying checkpoint, the same grid-order
	// sweep maps weak in full (nothing to prune it with when it runs first).
	cold := NewSession()
	coldRes := cold.Run([]arch.Config{weak, strong}, models, opt)
	for i := range coldRes {
		if coldRes[i].Pruned {
			t.Fatalf("cold sweep pruned %s; this workload must only be prunable via the checkpoint", coldRes[i].Cfg.Name)
		}
	}
}

// TestInLoopAbandonBitIdenticalWhenNeverDominated: the in-loop hook is
// active on every sweep with pruning, so a workload where nothing is ever
// dominated must produce bit-identical results and identical SA iteration
// counts with the hook on (default), on with a custom stride, and off.
func TestInLoopAbandonBitIdenticalWhenNeverDominated(t *testing.T) {
	cands := testCands()
	models := []*dnn.Graph{testCNN, testTF}
	opt := testOptions()
	opt.Prune = true
	opt.Restarts = 2

	run := func(abandonEvery int) ([]CandidateResult, SweepStats) {
		o := opt
		o.AbandonEvery = abandonEvery
		ses := NewSession()
		rs := ses.Run(cands, models, o)
		return rs, ses.LastSweepStats()
	}

	off, offSt := run(-1)
	for i := range off {
		if off[i].Pruned {
			t.Fatalf("%s pruned; this workload must have no dominated candidate", off[i].Cfg.Name)
		}
	}
	def, defSt := run(0)
	custom, customSt := run(5)
	resultsEqual(t, off, def, "in-loop default vs off")
	resultsEqual(t, off, custom, "in-loop stride-5 vs off")
	if offSt.SAIterations == 0 {
		t.Fatal("stats recorded no SA iterations")
	}
	if defSt.SAIterations != offSt.SAIterations || customSt.SAIterations != offSt.SAIterations {
		t.Errorf("never-firing hook changed SA iteration counts: off=%d def=%d custom=%d",
			offSt.SAIterations, defSt.SAIterations, customSt.SAIterations)
	}
}

// TestInLoopAbandonSavesIterations: on a workload where dominated cells are
// already mid-anneal when the incumbent lands, the in-loop check must
// strictly reduce total SA iterations versus between-restart checks alone
// (with one restart per cell, the between-restart gate can save nothing),
// while preserving the winning candidate. Mid-cell domination only happens
// under concurrency, so the injected mapModel holds the strong candidate's
// result back until both weak cells have entered their search.
func TestInLoopAbandonSavesIterations(t *testing.T) {
	strong := arch.GArch72()
	var weak []arch.Config
	for _, div := range []float64{64, 128} {
		w := arch.GArch72()
		w.FreqGHz /= div
		w.Name = w.String()
		weak = append(weak, w)
	}
	cands := append([]arch.Config{strong}, weak...)
	models := []*dnn.Graph{testCNN}
	opt := testOptions()
	opt.Prune = true
	opt.Order = OrderBound // strong dispatches first
	opt.Restarts = 1       // no between-restart gaps: only the in-loop check can save work
	opt.Workers = 3        // strong + both weak cells run concurrently
	opt.SAIterations = 400

	orig := mapModelFn
	defer func() { mapModelFn = orig }()

	run := func(abandonEvery int) (*CandidateResult, SweepStats) {
		var weakStarted atomic.Int32
		strongDone := make(chan struct{})
		mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool, from, to int) (*MapResult, error) {
			if cfg.Name == strong.Name {
				// Let the dominated cells pass their pre-cell bound check and
				// enter their mapModel call before the incumbent exists, so
				// only the in-loop poll can cut them off.
				for weakStarted.Load() < 2 {
					runtime.Gosched()
				}
				mr, err := orig(ev, cfg, g, o, stop, from, to)
				close(strongDone)
				return mr, err
			}
			weakStarted.Add(1)
			// Hold the dominated cells — already past their pre-cell gate —
			// until the strong result exists, so the incumbent lands within
			// their first few abandonment polls instead of racing their last:
			// the saved iterations don't depend on wall-clock interleaving.
			<-strongDone
			return orig(ev, cfg, g, o, stop, from, to)
		}
		o := opt
		o.AbandonEvery = abandonEvery
		ses := NewSession()
		best := Best(ses.Run(cands, models, o))
		if best == nil {
			t.Fatal("no feasible candidate")
		}
		return best, ses.LastSweepStats()
	}

	bestOff, offSt := run(-1)
	bestOn, onSt := run(8)
	if bestOn.Cfg.Name != bestOff.Cfg.Name || bestOn.Obj != bestOff.Obj {
		t.Fatalf("in-loop abandonment changed the winner: %s (%g) vs %s (%g)",
			bestOn.Cfg.Name, bestOn.Obj, bestOff.Cfg.Name, bestOff.Obj)
	}
	// Off: every weak cell anneals to completion (the pre-cell and
	// between-restart gates cannot fire mid-cell). On: both weak cells stop
	// at an abandonment poll.
	if offSt.SAIterations != 3*opt.SAIterations {
		t.Fatalf("off-run iterations = %d, want %d (all cells complete)", offSt.SAIterations, 3*opt.SAIterations)
	}
	if onSt.SAIterations >= offSt.SAIterations {
		t.Errorf("in-loop abandonment saved nothing: %d vs %d iterations (pruned %d/%d)",
			onSt.SAIterations, offSt.SAIterations, onSt.PrunedCandidates, offSt.PrunedCandidates)
	}
}
