// Fuzz coverage for the sweep-spec decode path: every byte string a client
// can POST must either be rejected cleanly or produce a spec whose resolved
// options and graphs build without panicking. The seeded corpus under
// testdata/fuzz/FuzzSpecUnmarshal pins regressions found by past runs.
package dse

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzSpecUnmarshal drives json bytes through the same pipeline the sweep
// service uses on POST /sweep: Unmarshal -> Validate -> Options -> Graphs.
// Candidates() is deliberately not called on arbitrary input: Validate caps
// the raw grid product, but materializing up to maxSpecGrid configs per
// fuzz exec would drown the fuzzer, and Enumerate is covered by unit tests.
func FuzzSpecUnmarshal(f *testing.F) {
	seeds := []string{
		`{}`,
		`null`,
		`[1,2,3]`,
		`"sweep"`,
		`{"space":{"tops":72,"reduced":true},"models":["tinycnn"]}`,
		`{"id":"full","space":{"tops":128},"models":["resnet50","transformer"],` +
			`"tenant":"acme","priority":"batch","order":"bound","bound":"cut",` +
			`"racing":true,"racing_keep":0.5,"workers":2,"seed":7,"restarts":4,` +
			`"sa_iterations":100,"batch":16,"batch_units":[1,2],"patience":3,` +
			`"objective":{"alpha":1,"beta":2,"gamma":0.5},"prune":true,` +
			`"retry":{"max":2,"base_delay_ms":5,"max_delay_ms":50},` +
			`"cell_timeout_ms":1000,"abandon_every":-1,"max_group_layers":4}`,
		`{"space":{"tops":42},"models":["tinycnn"]}`,
		`{"space":{"tops":72},"models":["unknown-model"]}`,
		`{"space":{"tops":72},"models":["tinycnn"],"tenant":"../etc"}`,
		`{"space":{"tops":72},"models":["tinycnn"],"priority":"urgent"}`,
		`{"space":{"tops":72},"models":["tinycnn"],"workers":-1}`,
		`{"space":{"tops":72},"models":["tinycnn"],"racing_keep":1.5}`,
		`{"space":{"tops":72},"models":["tinycnn"],"seed":-2}`,
		`{"space":{"tops":72,"glb_kb":[0]},"models":["tinycnn"]}`,
		`{"space":{"tops":72,"cuts":[1,2],"macs":[1024],"glb_kb":[512],` +
			`"noc_gbps":[32],"d2d_ratios":[0.5],"dram_per_tops":[1]},` +
			`"models":["tinycnn"],"order":"grid","bound":"compulsory"}`,
		`{"space":{"tops":72},`,
	}
	// One seed past the grid cap: 64 cuts (squared by XCut x YCut) times 512
	// MAC candidates crosses maxSpecGrid and must be rejected by Validate,
	// never enumerated.
	var big strings.Builder
	big.WriteString(`{"space":{"tops":72,"cuts":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		big.WriteByte('1')
	}
	big.WriteString(`],"macs":[`)
	for i := 0; i < 512; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		big.WriteString(`1024`)
	}
	big.WriteString(`]},"models":["tinycnn"]}`)
	seeds = append(seeds, big.String())

	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		// A validated spec must resolve and build without panicking.
		opt := s.Options()
		if o := opt.Objective; o.Alpha < 0 || o.Beta < 0 || o.Gamma < 0 {
			t.Fatalf("validated spec resolved negative exponents: %+v", o)
		}
		if _, err := s.Graphs(); err != nil {
			t.Fatalf("validated spec failed to build graphs: %v", err)
		}
	})
}

// TestSpecGridCap pins the Validate-time grid bound directly: the full
// Table I spaces pass, an inflated override grid is rejected before any
// enumeration happens.
func TestSpecGridCap(t *testing.T) {
	ok := Spec{Space: SpaceSpec{TOPS: 72}, Models: []string{"tinycnn"}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("full 72tops grid rejected: %v", err)
	}
	huge := ok
	huge.Space.Cuts = make([]int, 2048)
	for i := range huge.Space.Cuts {
		huge.Space.Cuts[i] = 1
	}
	huge.Space.MACs = make([]int, 1024)
	for i := range huge.Space.MACs {
		huge.Space.MACs[i] = 1024
	}
	err := huge.Validate()
	if err == nil || !strings.Contains(err.Error(), "grid combinations") {
		t.Fatalf("oversized grid passed Validate: %v", err)
	}
}
