package dse

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/eval"
	"gemini/internal/faultinject"
)

// chaosInjector builds the canonical chaos schedule over the test grid:
// every cell's first attempt fails with a transient error, one cell panics
// on its second attempt, and one cell hangs past the per-cell deadline on
// its first attempt. With Retry.Max = 2 every cell settles.
func chaosInjector(seed int64, hangKey, panicKey string) *faultinject.Injector {
	return faultinject.New(seed,
		// The hung cell: attempt 0 sleeps far past CellTimeout (rule order
		// matters — this must shadow the fail-everything rule below).
		faultinject.Rule{Point: faultinject.PointCell, Key: hangKey, Kind: faultinject.KindDelay, Delay: 2200 * time.Millisecond, On: []int{0}},
		// The panicking cell: its retry (occurrence 1) panics mid-attempt.
		faultinject.Rule{Point: faultinject.PointCell, Key: panicKey, Kind: faultinject.KindPanic, On: []int{1}},
		// Every cell's first attempt fails with a transient error.
		faultinject.Rule{Point: faultinject.PointCell, Kind: faultinject.KindError, On: []int{0}},
	)
}

// TestChaosSweepBitIdentical pins the tentpole acceptance criterion: a sweep
// with injected panics, transient errors and one hung cell completes with
// results bit-identical to the fault-free run, because every retry re-runs
// the same seeded pipeline from scratch.
func TestChaosSweepBitIdentical(t *testing.T) {
	cands := testCands()
	models := []*dnn.Graph{testCNN, testTF}
	hangKey := cands[0].Name + "/" + testCNN.Name
	panicKey := cands[1].Name + "/" + testTF.Name

	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			opt := testOptions()
			opt.Seed = seed
			opt.Retry = RetryPolicy{Max: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
			opt.CellTimeout = time.Second

			baseline := NewSession().Run(cands, models, opt)

			inj := chaosInjector(seed, hangKey, panicKey)
			chaosOpt := opt
			chaosOpt.FaultInjector = inj
			ses := NewSession()
			results, stats, err := ses.RunContext(context.Background(), cands, models, chaosOpt)
			if err != nil {
				t.Fatalf("chaos sweep errored: %v", err)
			}
			sortResults(results)
			resultsEqual(t, baseline, results, "chaos")
			for i := range results {
				if results[i].Status() != "ok" {
					t.Errorf("candidate %s: status %q, want ok", results[i].Cfg.Name, results[i].Status())
				}
			}

			// The schedule is deterministic, so the accounting is exact:
			// hung cell 1 retry, panic cell 2 (error then panic), the other
			// two cells 1 each.
			if stats.Retries != 5 {
				t.Errorf("Retries = %d, want 5", stats.Retries)
			}
			if stats.Panics != 1 {
				t.Errorf("Panics = %d, want 1", stats.Panics)
			}
			if stats.DeadlineExceeded != 1 {
				t.Errorf("DeadlineExceeded = %d, want 1", stats.DeadlineExceeded)
			}
			if stats.LastPanic == "" || !strings.Contains(stats.LastPanic, "faultinject") {
				t.Errorf("LastPanic = %q, want the injected panic with its stack", stats.LastPanic)
			}
			if got := inj.Fired(faultinject.PointCell); got != 5 {
				t.Errorf("injector fired %d times, want 5", got)
			}
			// Settled cells checkpoint normally after surviving the chaos.
			if ses.CheckpointCells() != len(cands)*len(models) {
				t.Errorf("checkpointed %d cells, want %d", ses.CheckpointCells(), len(cands)*len(models))
			}
		})
	}
}

// TestOptsFingerprintExcludesFaultFields pins checkpoint compatibility:
// retry policy, per-cell deadline and the fault injector must not enter the
// cell fingerprint, so pre-hardening checkpoints resume and retried cells
// stay key-identical to first-try cells.
func TestOptsFingerprintExcludesFaultFields(t *testing.T) {
	opt := testOptions()
	base := optsFingerprint(opt)

	opt.Retry = RetryPolicy{Max: 7, BaseDelay: time.Second, MaxDelay: time.Minute}
	opt.CellTimeout = time.Hour
	opt.FaultInjector = faultinject.New(99, faultinject.Rule{Point: faultinject.PointCell, Count: 1})
	if got := optsFingerprint(opt); got != base {
		t.Errorf("fault-handling options changed the fingerprint: %q vs %q", got, base)
	}

	// Sanity: a mapping-affecting field still does.
	opt.Seed++
	if got := optsFingerprint(opt); got == base {
		t.Error("seed change did not move the fingerprint")
	}
}

// TestPanicSurfacesAsTypedCellError: with retry disabled, a panicking
// mapping attempt fails its cell — typed kind, captured stack, counted in
// stats — and is never checkpointed.
func TestPanicSurfacesAsTypedCellError(t *testing.T) {
	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool, from, to int) (*MapResult, error) {
		if cfg.Name == "panicky-arch" {
			panic("mapper bug")
		}
		return orig(ev, cfg, g, o, stop, from, to)
	}
	defer func() { mapModelFn = orig }()

	ok := arch.GArch72()
	bad := arch.GArch72()
	bad.Name = "panicky-arch"
	bad.NoCBW = 48 // structurally distinct from ok
	ses := NewSession()
	results, stats, err := ses.RunContext(context.Background(), []arch.Config{bad, ok}, []*dnn.Graph{testCNN}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	sortResults(results)

	if results[0].Cfg.Name != ok.Name || !results[0].Feasible {
		t.Fatalf("healthy candidate did not survive its neighbour's panic: %+v", results[0])
	}
	er := &results[1]
	if er.Status() != "error" {
		t.Fatalf("panicked candidate status %q, want error", er.Status())
	}
	var ce *CellError
	if !errors.As(er.Err, &ce) {
		t.Fatalf("error is not a CellError: %v", er.Err)
	}
	if ce.Kind != CellPanic || ce.Stack == "" {
		t.Errorf("CellError kind=%s stack %d bytes, want panic with a stack", ce.Kind, len(ce.Stack))
	}
	if !strings.Contains(ce.Err.Error(), "mapper bug") {
		t.Errorf("panic value lost: %v", ce.Err)
	}
	if stats.Panics != 1 || !strings.Contains(stats.LastPanic, "mapper bug") {
		t.Errorf("stats: panics=%d last=%q", stats.Panics, stats.LastPanic)
	}
	// Only the healthy cell settles into the checkpoint.
	if ses.CheckpointCells() != 1 {
		t.Errorf("checkpointed %d cells, want 1 (panicked cells must be retried on resume)", ses.CheckpointCells())
	}
}

// TestCellTimeoutWithoutRetry: a hung attempt with no retry budget fails
// its cell with the timeout kind, wrapping context.DeadlineExceeded.
func TestCellTimeoutWithoutRetry(t *testing.T) {
	cands := testCands()[:1]
	key := cands[0].Name + "/" + testCNN.Name
	opt := testOptions()
	opt.CellTimeout = 200 * time.Millisecond
	opt.FaultInjector = faultinject.New(1,
		faultinject.Rule{Point: faultinject.PointCell, Key: key, Kind: faultinject.KindDelay, Delay: 1500 * time.Millisecond, On: []int{0}})

	_, stats, err := NewSession().RunContext(context.Background(), cands, []*dnn.Graph{testCNN}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadlineExceeded != 1 {
		t.Errorf("DeadlineExceeded = %d, want 1", stats.DeadlineExceeded)
	}

	// The typed error is visible through Session.MapModel too (fresh
	// injector: occurrence counters are per-injector and the sweep above
	// already consumed index 0).
	opt.FaultInjector = faultinject.New(1,
		faultinject.Rule{Point: faultinject.PointCell, Key: key, Kind: faultinject.KindDelay, Delay: 1500 * time.Millisecond, On: []int{0}})
	_, merr := NewSession().MapModel(&cands[0], testCNN, opt)
	var ce *CellError
	if !errors.As(merr, &ce) || ce.Kind != CellTimeout {
		t.Fatalf("MapModel error %v, want CellError{timeout}", merr)
	}
	if !errors.Is(merr, context.DeadlineExceeded) {
		t.Errorf("timeout error does not wrap context.DeadlineExceeded: %v", merr)
	}
}

// TestTransientClassifier pins the retry/no-retry split.
func TestTransientClassifier(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"infeasible", ErrInfeasible, false},
		{"wrapped infeasible", fmt.Errorf("cell: %w", ErrInfeasible), false},
		{"canceled", context.Canceled, false},
		{"unknown", errors.New("probably a bug"), false},
		{"cell panic", &CellError{Kind: CellPanic}, true},
		{"cell timeout", &CellError{Kind: CellTimeout}, true},
		{"injected", &faultinject.Error{Point: faultinject.PointCell}, true},
		{"wrapped injected", fmt.Errorf("save: %w", &faultinject.Error{}), true},
		{"deadline", context.DeadlineExceeded, true},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestRetryBackoff pins the backoff shape: deterministic per (key, attempt),
// exponential, capped, jittered within [50%, 100%].
func TestRetryBackoff(t *testing.T) {
	p := RetryPolicy{Max: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}.withDefaults()
	for attempt := 1; attempt <= 5; attempt++ {
		a := p.backoff(attempt, "cell-a")
		if a != p.backoff(attempt, "cell-a") {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		full := p.BaseDelay << uint(attempt-1)
		if full > p.MaxDelay || full <= 0 {
			full = p.MaxDelay
		}
		if a < full/2 || a > full {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, a, full/2, full)
		}
	}
	if p.backoff(1, "cell-a") == p.backoff(1, "cell-b") {
		t.Error("jitter does not spread across keys")
	}

	// Disabled policy normalizes to zero; enabled fills defaults.
	if z := (RetryPolicy{BaseDelay: time.Hour}).withDefaults(); z != (RetryPolicy{}) {
		t.Errorf("disabled policy not normalized: %+v", z)
	}
	d := RetryPolicy{Max: 1}.withDefaults()
	if d.BaseDelay != 10*time.Millisecond || d.MaxDelay != time.Second {
		t.Errorf("defaults not applied: %+v", d)
	}
}

// TestPersistenceTracker pins the degradation state machine and the bounded
// in-save retry of Do, including panic isolation of the save function.
func TestPersistenceTracker(t *testing.T) {
	var tr PersistenceTracker
	boom := errors.New("disk full")
	if tr.Fail(boom) || tr.Fail(boom) {
		t.Error("degraded before the third consecutive failure")
	}
	if !tr.Fail(boom) {
		t.Error("third consecutive failure did not report the degrade transition")
	}
	if tr.Fail(boom) {
		t.Error("already-degraded tracker reported the transition again")
	}
	st := tr.State()
	if !st.Degraded || st.Errors != 4 || st.LastError != "disk full" {
		t.Errorf("state: %+v", st)
	}
	tr.OK()
	if st = tr.State(); st.Degraded {
		t.Error("success did not clear degraded mode")
	}
	if st.Errors != 4 {
		t.Errorf("success reset the lifetime error count: %+v", st)
	}

	// Do masks failures that clear within its bounded retry...
	calls := 0
	err := tr.Do(func() error {
		calls++
		if calls < 3 {
			return boom
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("Do = %v after %d calls, want nil after 3", err, calls)
	}
	// ...records ones that do not...
	if err := tr.Do(func() error { return boom }); err == nil {
		t.Error("exhausted Do returned nil")
	}
	if tr.State().Errors != 5 {
		t.Errorf("errors = %d, want 5", tr.State().Errors)
	}
	// ...and recovers a panicking save instead of unwinding the saver
	// goroutine.
	if err := tr.Do(func() error { panic("saver bug") }); err == nil || !strings.Contains(err.Error(), "saver bug") {
		t.Errorf("panicking save: %v", err)
	}
}

// TestRetryBackoffInterruptedByStop: a sweep canceled during a backoff
// settles on the error instead of burning another attempt.
func TestRetryBackoffInterruptedByStop(t *testing.T) {
	cands := testCands()[:1]
	opt := testOptions()
	opt.Retry = RetryPolicy{Max: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	opt.FaultInjector = faultinject.New(1,
		faultinject.Rule{Point: faultinject.PointCell, Kind: faultinject.KindError, Count: 1 << 20})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := NewSession().RunContext(ctx, cands, []*dnn.Graph{testCNN}, opt)
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancel did not interrupt the backoff (took %v)", elapsed)
	}
}
