package dse

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"gemini/internal/dnn"
)

// tinySpec is a one-candidate sweep spec used across the spec tests.
func tinySpec() Spec {
	return Spec{
		ID:     "spec-test",
		Space:  SpaceSpec{TOPS: 72, Cuts: []int{1}, DRAMPerTOPS: []float64{2}, NoCBWs: []float64{32}, D2DRatios: []float64{0.5}, GLBsKB: []int{1024}, MACs: []int{1024}},
		Models: []string{"tinycnn"},

		SAIterations: 40,
		Workers:      1,
	}
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{Space: SpaceSpec{TOPS: 72}, Models: []string{"transformer"}}
	if err := s.Validate(); err != nil {
		t.Fatalf("minimal spec invalid: %v", err)
	}
	opt := s.Options()
	def := DefaultOptions()
	if opt.Batch != def.Batch || opt.SAIterations != def.SAIterations ||
		opt.Restarts != def.Restarts || opt.Seed != def.Seed || opt.Order != def.Order {
		t.Errorf("zero spec fields must take DefaultOptions defaults, got %+v", opt)
	}
	if opt.Objective != MCED {
		t.Errorf("nil objective must default to MCED, got %+v", opt.Objective)
	}
}

func TestSpecOverrides(t *testing.T) {
	raw := `{
		"id": "s1",
		"space": {"tops": 128, "reduced": true, "macs": [2048]},
		"models": ["tinycnn", "tinytransformer"],
		"batch": 8, "sa_iterations": 50, "restarts": 3, "patience": 1,
		"workers": 2, "seed": 7, "batch_units": [1, 2],
		"objective": {"alpha": 1, "beta": 2, "gamma": 0},
		"prune": true, "order": "grid"
	}`
	var s Spec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := s.Options()
	if opt.SweepID != "s1" || opt.Batch != 8 || opt.SAIterations != 50 ||
		opt.Restarts != 3 || opt.Patience != 1 || opt.Workers != 2 || opt.Seed != 7 ||
		!opt.Prune || opt.Order != OrderGrid {
		t.Errorf("spec fields not mapped: %+v", opt)
	}
	if opt.Objective != (Objective{Alpha: 1, Beta: 2, Gamma: 0}) {
		t.Errorf("objective not mapped: %+v", opt.Objective)
	}
	sp, err := s.Space.Space()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.MACs) != 1 || sp.MACs[0] != 2048 || !strings.Contains(sp.Name, "reduced") {
		t.Errorf("space overrides not applied: %+v", sp)
	}
	gs, err := s.Graphs()
	if err != nil || len(gs) != 2 {
		t.Fatalf("Graphs() = %d, %v", len(gs), err)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	base := tinySpec()
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"bad tops", func(s *Spec) { s.Space.TOPS = 100 }, "tops"},
		{"no models", func(s *Spec) { s.Models = nil }, "no models"},
		{"unknown model", func(s *Spec) { s.Models = []string{"nope"} }, "unknown model"},
		{"bad order", func(s *Spec) { s.Order = "random" }, "order"},
		{"negative restarts", func(s *Spec) { s.Restarts = -1 }, "restarts"},
		{"negative seed", func(s *Spec) { s.Seed = -4 }, "seed"},
		{"zero batch unit", func(s *Spec) { s.BatchUnits = []int{0} }, "batch_units"},
		{"negative exponent", func(s *Spec) { s.Objective = &ObjectiveSpec{Alpha: -1} }, "objective"},
		{"bad glb", func(s *Spec) { s.Space.GLBsKB = []int{-3} }, "glb_kb"},
	}
	for _, c := range cases {
		s := base
		c.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base spec must be valid: %v", err)
	}
}

func TestSpecCandidates(t *testing.T) {
	s := tinySpec()
	cands, err := s.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("tiny spec enumerates %d candidates, want 1", len(cands))
	}
	// Cuts that divide no core-array edge enumerate nothing: an error, not
	// an instantly-complete empty sweep.
	s.Space.Cuts = []int{5}
	if _, err := s.Candidates(); err == nil {
		t.Error("empty enumeration must error")
	}
}

// TestSpecSweepMatchesRun pins the spec resolution end to end: running the
// resolved (candidates, graphs, options) through a session is bit-identical
// to the equivalent hand-built Run.
func TestSpecSweepMatchesRun(t *testing.T) {
	s := tinySpec()
	cands, err := s.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	gs, err := s.Graphs()
	if err != nil {
		t.Fatal(err)
	}
	opt := s.Options()
	got, stats, err := NewSession().RunContext(context.Background(), cands, gs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SweepID != "spec-test" || stats.Canceled {
		t.Errorf("stats = %+v, want SweepID spec-test, not canceled", stats)
	}
	want := Run(cands, gs, opt)
	resultsEqual(t, want, got, "spec sweep")
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ses := NewSession()
	opt := testOptions()
	opt.SweepID = "pre-canceled"
	results, stats, err := ses.RunContext(ctx, testCands(), []*dnn.Graph{testCNN}, opt)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !stats.Canceled {
		t.Error("stats.Canceled = false")
	}
	for i := range results {
		if results[i].Err == nil || !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("%s: Err = %v, want context.Canceled", results[i].Cfg.Name, results[i].Err)
		}
	}
	if n := ses.CheckpointCells(); n != 0 {
		t.Errorf("canceled-before-start sweep checkpointed %d cells, want 0", n)
	}
}

// TestRunContextCancelMidSweep pins the resume contract: cells settled
// before cancellation stay checkpointed, canceled cells carry errors and
// are retried — and only they are recomputed — on the resumed sweep.
func TestRunContextCancelMidSweep(t *testing.T) {
	cands := testCands()
	models := []*dnn.Graph{testCNN, testTF}
	opt := testOptions()
	opt.Workers = 1
	opt.Order = OrderGrid

	ses := NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	opt.OnResult = func(CandidateResult) { cancel() } // cancel after the first candidate settles
	results, stats, err := ses.RunContext(ctx, cands, models, opt)
	if !errors.Is(err, context.Canceled) || !stats.Canceled {
		t.Fatalf("err = %v, stats.Canceled = %v, want canceled", err, stats.Canceled)
	}
	var canceled int
	for i := range results {
		if errors.Is(results[i].Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no candidate reported the cancellation")
	}
	settled := ses.CheckpointCells()
	if settled != len(models) {
		t.Fatalf("checkpointed %d cells before cancellation, want %d", settled, len(models))
	}
	if got := ses.SettledCells(cands, models, opt); got != settled {
		t.Errorf("SettledCells = %d, want %d", got, settled)
	}
	other := opt
	other.Seed += 100
	if got := ses.SettledCells(cands, models, other); got != 0 {
		t.Errorf("SettledCells under different options = %d, want 0", got)
	}

	opt.OnResult = nil
	resumed, stats2, err := ses.RunContext(context.Background(), cands, models, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.ResumedCells != settled {
		t.Errorf("resumed sweep restored %d cells, want %d", stats2.ResumedCells, settled)
	}
	want := Run(cands, models, testOptionsLike(opt))
	resultsEqual(t, want, resumed, "resumed after cancel")
}

// testOptionsLike strips the sweep-scoped fields (id, callback) so a fresh
// Run is comparable.
func testOptionsLike(opt Options) Options {
	opt.SweepID = ""
	opt.OnResult = nil
	return opt
}

// TestSweepIDExcludedFromFingerprint pins the checkpoint-compatibility
// claim: renaming a sweep must keep hitting its old cells.
func TestSweepIDExcludedFromFingerprint(t *testing.T) {
	a := testOptions()
	a.SweepID = "first"
	b := a
	b.SweepID = "second"
	if optsFingerprint(a) != optsFingerprint(b) {
		t.Error("SweepID changed the options fingerprint")
	}
}

// TestSpaceSpecOverridesDoNotMutateBase guards against aliasing: resolving
// one spec twice (or two specs from one base) must not share slices with
// the Table I base grids.
func TestSpaceSpecOverridesDoNotMutateBase(t *testing.T) {
	before := len(Space72().Enumerate())
	s := SpaceSpec{TOPS: 72, MACs: []int{1024}}
	if _, err := s.Space(); err != nil {
		t.Fatal(err)
	}
	if got := len(Space72().Enumerate()); got != before {
		t.Errorf("SpaceSpec.Space mutated the base grid: %d != %d candidates", got, before)
	}
}
