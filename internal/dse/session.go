// Session: the long-lived DSE sweep layer. A Session owns a cross-candidate
// shared evaluation cache, a pool of warm per-architecture evaluators, a
// checkpoint of completed (candidate, model) cells, and the bound-pruning
// incumbent, so repeated or overlapping sweeps (the experiments figures, a
// resumed CLI run, chiplet-reuse factors revisiting a base) pay the cold
// evaluation cost once.
package dse

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/eval"
	"gemini/internal/faultinject"
	"gemini/internal/sa"
)

// mapModelFn indirects the per-cell mapping pipeline so tests can inject
// infrastructure failures and assert they are reported as errors, never as
// infeasibility. It carries the restart window [from, to) so the session can
// widen checkpointed cells incrementally (racing rungs, checkpoint re-entry).
var mapModelFn = mapModelRange

// Session shares evaluation state across DSE runs. All methods are safe for
// concurrent use: the sweep service runs several Run/RunContext sweeps on
// one session at once so they share the evaluation cache and checkpoint
// cells (each sweep gets its own scheduler and incumbent; LastSweepStats
// then reports whichever sweep published last — concurrent callers should
// use the stats RunContext returns). The zero value is not usable —
// construct with NewSession.
type Session struct {
	// Logf, when set, receives scheduling decisions that must not be silent
	// (candidate pruning, checkpoint skips). log.Printf fits.
	Logf func(format string, args ...any)

	cache *eval.Cache

	evalMu sync.Mutex
	evals  map[uint64]*eval.Evaluator

	cellMu sync.Mutex
	cells  map[string]cellRecord

	resumed atomic.Int64 // cells served from the checkpoint instead of mapped

	sweepMu   sync.Mutex
	lastSweep SweepStats

	diskMu     sync.Mutex
	diskWarmed map[string]bool // cache dirs already loaded into this session

	// persist tracks disk-cache spill health across the session's sweeps:
	// failed saves degrade persistence (the sweep keeps running in memory),
	// they never fail a sweep.
	persist PersistenceTracker
}

// NewSession returns an empty session with a fresh shared cache.
func NewSession() *Session {
	return &Session{
		cache:      eval.NewCache(),
		evals:      make(map[uint64]*eval.Evaluator),
		cells:      make(map[string]cellRecord),
		diskWarmed: make(map[string]bool),
	}
}

// cacheFileName is the spill file a CacheDir holds.
const cacheFileName = "evalcache.ndjson"

// CachePath returns the spill file path for a cache directory, so CLIs and
// tests can point at the exact file RunContext reads and writes.
func CachePath(dir string) string { return filepath.Join(dir, cacheFileName) }

// WarmDiskCache loads the cache directory's spill file into the session's
// shared evaluation cache, once per (session, directory) — later calls are
// free no-ops. It is called automatically by RunContext when
// Options.CacheDir is set; exposing it lets front ends warm before their
// first sweep and report the entry count. A missing or damaged file
// degrades to a cold cache and is never an error (per-entry corruption
// tolerance lives in eval.Cache.LoadDisk); only real I/O failures surface.
func (s *Session) WarmDiskCache(dir string) (int, error) {
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	if s.diskWarmed[dir] {
		return 0, nil
	}
	n, err := s.cache.LoadDisk(CachePath(dir))
	if err != nil {
		return 0, err
	}
	s.diskWarmed[dir] = true
	if n > 0 {
		s.logf("dse: warmed %d cached group evaluations from %s", n, CachePath(dir))
	}
	return n, nil
}

// startCacheSaver spawns the coalesced background spill loop for one sweep:
// poke requests a save (non-blocking, collapsing bursts into one write, the
// same pattern the sweep service uses for checkpoints), stop drains the
// loop and writes the final snapshot. Each save first merges the file's
// current entries back into the cache and then snapshots it, so writers
// with *different* caches sharing one directory (a multi-session server
// pool, or two processes) converge on the union instead of last-writer-
// wins discarding each other's work; SaveDisk renames atomically, so any
// complete snapshot is valid. Saves run under the session's persistence
// tracker: bounded in-save retry, then the failure is counted and the sweep
// keeps running on its in-memory cache (degraded, never dead).
func (s *Session) startCacheSaver(dir string, inj *faultinject.Injector) (poke, stop func()) {
	req := make(chan struct{}, 1)
	done := make(chan struct{})
	save := func(label string) {
		err := s.persist.Do(func() error {
			if ierr := inj.Check(faultinject.PointCacheSave, dir); ierr != nil {
				return ierr
			}
			if _, err := s.cache.LoadDisk(CachePath(dir)); err != nil {
				return fmt.Errorf("merge: %w", err)
			}
			return s.cache.SaveDisk(CachePath(dir))
		})
		if err != nil {
			st := s.persist.State()
			s.logf("dse: %s cache save failed (errors %d, degraded %t): %v", label, st.Errors, st.Degraded, err)
		}
	}
	go func() {
		defer close(done)
		for range req {
			save("incremental")
		}
	}()
	poke = func() {
		select {
		case req <- struct{}{}:
		default: // a save is already pending; it will pick these entries up
		}
	}
	stop = func() {
		close(req)
		<-done
		save("final")
	}
	return poke, stop
}

// PersistenceState reports the session's disk-cache spill health: error
// count, degraded flag, last failure. Sweep-scoped deltas land in
// SweepStats; this is the session-lifetime view /healthz serves.
func (s *Session) PersistenceState() PersistenceState { return s.persist.State() }

// ResumedCells reports how many cells were served from the checkpoint
// instead of being mapped, across the session's lifetime.
func (s *Session) ResumedCells() int64 { return s.resumed.Load() }

// CacheStats reports the shared evaluation cache's accounting.
func (s *Session) CacheStats() eval.CacheStats { return s.cache.Stats() }

// CheckpointCells reports how many completed (candidate, model) cells the
// session holds (computed this run or loaded from a checkpoint).
func (s *Session) CheckpointCells() int {
	s.cellMu.Lock()
	defer s.cellMu.Unlock()
	return len(s.cells)
}

// SettledCells reports how many of one specific sweep's (candidate, model)
// cells are already settled in the session — the number a run of that
// sweep would restore instead of recompute. Unlike CheckpointCells it is
// scoped to the given grid and options, so a shared session's unrelated
// cells do not inflate it.
func (s *Session) SettledCells(cands []arch.Config, models []*dnn.Graph, opt Options) int {
	optFP := optsFingerprint(opt)
	n := 0
	for ci := range cands {
		fp := eval.ConfigFingerprint(&cands[ci])
		for _, g := range models {
			if _, ok := s.peekCell(cellKey(fp, g.Name, optFP)); ok {
				n++
			}
		}
	}
	return n
}

// LastSweepStats returns the scheduler's observability record of the most
// recent Run/JointRun sweep: dispatch order, pruned candidates, restarts
// saved by the live incumbent and by portfolio patience, and the incumbent
// trajectory.
func (s *Session) LastSweepStats() SweepStats {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	return s.lastSweep
}

func (s *Session) setLastSweep(st SweepStats) {
	s.sweepMu.Lock()
	s.lastSweep = st
	s.sweepMu.Unlock()
}

func (s *Session) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// evalPoolLimit bounds the warm-evaluator pool. Each evaluator holds a
// precomputed NoC route table and scratch pools, so retaining one per
// candidate of a full Table I grid (thousands) would pin significant
// memory for the session's lifetime. A full pool is flushed wholesale,
// like the cache shards: dropping warmth only costs recomputation, and the
// shared group cache (which is what carries the cross-candidate reuse)
// survives the flush.
const evalPoolLimit = 256

// evaluator returns the session's warm evaluator for an architecture,
// creating it (route tables, intra-core memo, shared cache binding) on
// first use. Keyed by structural fingerprint, so a chiplet-reuse factor-1
// candidate or a re-enumerated identical tuple reuses the same evaluator.
func (s *Session) evaluator(cfg *arch.Config) *eval.Evaluator {
	fp := eval.ConfigFingerprint(cfg)
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	if ev, ok := s.evals[fp]; ok {
		return ev
	}
	if len(s.evals) >= evalPoolLimit {
		clear(s.evals)
	}
	ev := eval.NewWithCache(cfg, s.cache)
	s.evals[fp] = ev
	return ev
}

// MapModel maps one model on one architecture through the session's warm
// evaluator and checkpoint cells. It runs under the full cell hardening
// path — panic isolation, Options.Retry, Options.CellTimeout — so a
// panicking pipeline surfaces as a CellError instead of unwinding the
// caller.
func (s *Session) MapModel(cfg *arch.Config, g *dnn.Graph, opt Options) (*MapResult, error) {
	key := cellKey(eval.ConfigFingerprint(cfg), g.Name, optsFingerprint(opt))
	out := s.runCell(cfg, g, opt, key, nil)
	return out.mr, out.err
}

// Run explores every candidate over the session's shared cache and returns
// results sorted by resultLess (feasible by ascending objective first, then
// pruned, infeasible and errored candidates). Completed cells are recorded
// for SaveCheckpoint; cells already present (from a previous run or a
// loaded checkpoint) are restored instead of recomputed.
func (s *Session) Run(cands []arch.Config, models []*dnn.Graph, opt Options) []CandidateResult {
	results, _, _ := s.RunContext(context.Background(), cands, models, opt)
	return results
}

// RunContext is Run with cancellation and per-sweep stats. When ctx is
// canceled mid-sweep the remaining (candidate, model) cells fail fast with
// an error wrapping ctx.Err() (in-flight SA portfolios abandon between
// restarts and, unless Options.AbandonEvery disables the in-loop check,
// mid-anneal), already-settled cells stay checkpointed, and the partial
// results are returned together with a non-nil error — so a canceled sweep
// can be checkpointed and resumed without recomputing its completed cells.
// The returned SweepStats belongs to this sweep, which is the race-free way
// to read stats when several sweeps share the session.
func (s *Session) RunContext(ctx context.Context, cands []arch.Config, models []*dnn.Graph, opt Options) ([]CandidateResult, SweepStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stopSaver func()
	var persistBase int64
	if dir := opt.CacheDir; dir != "" {
		persistBase = s.persist.State().Errors
		if _, err := s.WarmDiskCache(dir); err != nil {
			s.persist.Fail(err)
			s.logf("dse: disk cache warm failed, running cold: %v", err)
		}
		poke, stop := s.startCacheSaver(dir, opt.FaultInjector)
		stopped := false
		stopSaver = func() {
			if !stopped {
				stopped = true
				stop()
			}
		}
		defer stopSaver()
		prev := opt.OnResult
		opt.OnResult = func(cr CandidateResult) {
			if prev != nil {
				prev(cr)
			}
			poke()
		}
	}
	sc := s.newScheduler(ctx, cands, models, opt)
	results := sc.run()
	sortResults(results)
	if stopSaver != nil {
		// Drain the saver before folding persistence health into the sweep's
		// stats, so the final snapshot's outcome is counted too. The delta is
		// best-effort under concurrent sweeps sharing the session (the
		// tracker is session-wide); the degraded flag and last error are the
		// current truth either way.
		stopSaver()
		if st := s.persist.State(); st.Errors > persistBase {
			sc.stats.PersistenceErrors = int(st.Errors - persistBase)
			sc.stats.PersistenceDegraded = st.Degraded
			sc.stats.LastPersistenceError = st.LastError
			s.setLastSweep(sc.stats)
		}
	}
	if err := ctx.Err(); err != nil {
		return results, sc.stats, fmt.Errorf("dse: sweep %s canceled: %w", sweepName(opt.SweepID), err)
	}
	return results, sc.stats, nil
}

// sweepName renders a sweep id for log and error text.
func sweepName(id string) string {
	if id == "" {
		return "(unnamed)"
	}
	return id
}

// sweep runs the (candidate, model) task grid through the scheduler and
// returns one CandidateResult per candidate, in candidate order (unsorted).
func (s *Session) sweep(cands []arch.Config, models []*dnn.Graph, opt Options) []CandidateResult {
	return s.newScheduler(context.Background(), cands, models, opt).run()
}

// runCell executes (or restores) one (candidate, model) mapping cell, named
// by the caller-computed key (the scheduler already built it for its
// checkpoint peek). stop, when non-nil, is the scheduler's live-incumbent
// gate polled between SA restarts; an abandoned portfolio is not a settled
// outcome, so it is returned flagged and never stored.
//
// runCell is the retry boundary of the failure model: transient failures
// (recovered panics, per-cell deadline expiries, transient I/O) re-run the
// attempt up to Options.Retry.Max times with jittered exponential backoff,
// while infeasibility and unrecognized errors settle immediately. Every
// attempt runs the same seeded pipeline, so a success after retries is
// bit-identical to a first-try success, and only settled outcomes reach the
// checkpoint — retry state never enters the cell fingerprint.
func (s *Session) runCell(cfg *arch.Config, g *dnn.Graph, opt Options, key string, stop func() bool) pairOutcome {
	return s.runCellTarget(cfg, g, opt, key, stop, effectiveRestarts(opt))
}

// runCellTarget is runCell with an explicit cumulative portfolio width: the
// cell is settled at exactly target restarts. A checkpointed cell whose
// settled width already covers target restores verbatim; one settled
// narrower (a racing rung, or a sweep widened after a checkpoint) re-enters
// at its stored width and runs only the missing window [stored, target),
// then folds the window with the stored prefix exactly as one contiguous
// portfolio would — so the widened cell is bit-identical to a from-scratch
// target-wide run, minus the restarts the checkpoint already paid for.
// Extension only happens for width-annotated records under a non-adaptive
// schedule: patience sweeps and legacy (width 0) records always restore,
// preserving their historical semantics.
func (s *Session) runCellTarget(cfg *arch.Config, g *dnn.Graph, opt Options, key string, stop func() bool, target int) pairOutcome {
	if target < 1 {
		target = 1
	}
	from := 0
	var prior *cellRecord
	if rec, ok := s.peekCell(key); ok {
		if activePatience(opt) != 0 || rec.Restarts <= 0 || rec.Restarts >= target {
			s.resumed.Add(1)
			p := rec.outcome()
			p.restored = true
			return p
		}
		from = rec.Restarts
		r := rec
		prior = &r
	}
	// The stored width annotation: patience portfolios stop on a
	// data-dependent streak, so their settled width says nothing about a
	// wider run — record 0 (width-unknown, restore-only) for them.
	width := target
	if activePatience(opt) != 0 {
		width = 0
	}
	policy := opt.Retry.withDefaults()
	var out pairOutcome
	for attempt := 0; ; attempt++ {
		mr, err := s.attemptCell(cfg, g, opt, stop, attempt, from, target)
		var ab *abandonedError
		if errors.As(err, &ab) {
			out.abandoned = true
			out.abandonedRestarts += ab.planned - ab.done
			out.saIterations += ab.iters
			return out
		}
		var ce *CellError
		if errors.As(err, &ce) {
			switch ce.Kind {
			case CellPanic:
				out.panics++
				out.panicStack = fmt.Sprintf("%v\n%s", ce.Err, ce.Stack)
			case CellTimeout:
				out.deadlineExceeded++
			}
		}
		if err != nil && Transient(err) && attempt < policy.Max {
			out.retries++
			backoff := policy.backoff(attempt+1, key)
			s.logf("dse: cell %s/%s attempt %d failed, retrying in %v: %v",
				cfg.Name, g.Name, attempt, backoff, err)
			if !sleepUnlessStopped(backoff, stop) {
				// The sweep was canceled (or the incumbent dominated this
				// candidate) while backing off: settle on the error without
				// burning another attempt. Errored cells are never
				// checkpointed, so a resumed sweep retries from scratch.
				out.err = err
				return out
			}
			continue
		}
		if mr != nil {
			// Window-run accounting, captured before the prior fold can
			// replace mr with the checkpointed summary (which did no work).
			out.skippedRestarts += mr.SkippedRestarts
			out.saIterations += mr.SAIterations
		}
		if prior != nil {
			mr, err = foldPriorCell(prior, mr, err, target)
		}
		s.storeCell(key, g.Name, mr, err, width)
		out.mr, out.err = mr, err
		return out
	}
}

// foldPriorCell folds a checkpointed prefix portfolio with the freshly run
// window's settled outcome, exactly as one contiguous portfolio would have:
// the lower SA cost wins and ties go to the prior, because it holds the
// lower restart indices. A feasible side always beats an infeasible one
// (an infeasible portfolio's best is +Inf under the fold's order). The
// merged result reports the cumulative width target. Infrastructure errors
// are not settled outcomes and pass through unfolded.
func foldPriorCell(prior *cellRecord, mr *MapResult, err error, target int) (*MapResult, error) {
	if mr == nil && err != nil && !errors.Is(err, ErrInfeasible) {
		return mr, err
	}
	if mr != nil && (!prior.Feasible || sa.BetterCost(mr.SA.Cost, prior.SACost)) {
		mr.Restarts = target
		return mr, nil
	}
	if !prior.Feasible {
		// Both the prefix and the window settled infeasible: the cell stays
		// infeasible, now established at the wider width.
		return nil, err
	}
	p := prior.outcome()
	p.mr.Restarts = target
	return p.mr, nil
}

// attemptResult carries one attempt's outcome across the deadline goroutine
// boundary.
type attemptResult struct {
	mr  *MapResult
	err error
}

// attemptCell runs one mapping attempt under the failure model: fault
// injection (nil injector: one pointer compare), panic isolation (a panic
// anywhere in the pipeline becomes CellError{Kind: CellPanic} with its
// stack), and the per-cell deadline. With no deadline the attempt runs
// inline — the hot path allocates nothing new. With a deadline the attempt
// runs in a goroutine and the deadline expiry returns CellError{Kind:
// CellTimeout} immediately; the late goroutine's stop gate trips at the
// next in-loop abandonment poll, its result is discarded, and a portfolio
// abandoned *because of* the expiry can never be mistaken for an
// incumbent-dominated cell (the select already settled on timeout).
func (s *Session) attemptCell(cfg *arch.Config, g *dnn.Graph, opt Options, stop func() bool, attempt, from, to int) (*MapResult, error) {
	body := func(innerStop func() bool) (mr *MapResult, err error) {
		defer func() {
			if v := recover(); v != nil {
				mr, err = nil, &CellError{
					Kind: CellPanic, Candidate: cfg.Name, Model: g.Name, Attempt: attempt,
					Stack: string(debug.Stack()), Err: fmt.Errorf("%v", v),
				}
			}
		}()
		if ierr := opt.FaultInjector.Check(faultinject.PointCell, cfg.Name+"/"+g.Name); ierr != nil {
			return nil, &CellError{
				Kind: CellTransient, Candidate: cfg.Name, Model: g.Name, Attempt: attempt, Err: ierr,
			}
		}
		return mapModelFn(s.evaluator(cfg), cfg, g, opt, innerStop, from, to)
	}
	if opt.CellTimeout <= 0 {
		return body(stop)
	}
	var timedOut atomic.Bool
	innerStop := func() bool {
		if timedOut.Load() {
			return true
		}
		return stop != nil && stop()
	}
	done := make(chan attemptResult, 1)
	go func() {
		var r attemptResult
		r.mr, r.err = body(innerStop)
		done <- r
	}()
	timer := time.NewTimer(opt.CellTimeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.mr, r.err
	case <-timer.C:
		timedOut.Store(true)
		return nil, &CellError{
			Kind: CellTimeout, Candidate: cfg.Name, Model: g.Name, Attempt: attempt,
			Err: fmt.Errorf("attempt exceeded %v: %w", opt.CellTimeout, context.DeadlineExceeded),
		}
	}
}

// sleepUnlessStopped sleeps d in small steps, polling the stop gate, and
// reports false when the gate fired — a canceled sweep must not sit out a
// backoff before noticing.
func sleepUnlessStopped(d time.Duration, stop func() bool) bool {
	const step = 5 * time.Millisecond
	for d > 0 {
		if stop != nil && stop() {
			return false
		}
		chunk := d
		if chunk > step {
			chunk = step
		}
		time.Sleep(chunk)
		d -= chunk
	}
	return stop == nil || !stop()
}

// JointRun explores chiplet reuse over the session (see the package-level
// JointRun). Bound pruning is force-disabled: the product ranking needs
// every (base, factor) cell evaluated, and a per-candidate incumbent is not
// a sound bound for a product-of-objectives ranking.
func (s *Session) JointRun(bases []arch.Config, factors []int, models []*dnn.Graph, opt Options) []JointResult {
	opt.Prune = false
	opt.OnResult = nil

	// Flatten every (base, factor) that scales into one candidate list.
	flatIdx := make([][]int, len(bases))
	var flat []arch.Config
	for bi := range bases {
		flatIdx[bi] = make([]int, 0, len(factors))
		for _, f := range factors {
			scaled, err := ScaleUp(bases[bi], f)
			if err != nil {
				flatIdx[bi] = append(flatIdx[bi], -1)
				break
			}
			flatIdx[bi] = append(flatIdx[bi], len(flat))
			flat = append(flat, scaled)
		}
	}

	crs := s.sweep(flat, models, opt)

	out := make([]JointResult, 0, len(bases))
	for bi := range bases {
		jr := JointResult{Base: bases[bi], Feasible: true, Product: 1}
		for _, k := range flatIdx[bi] {
			if k < 0 {
				jr.Feasible = false
				break
			}
			jr.Scaled = append(jr.Scaled, crs[k])
			if !crs[k].Feasible {
				jr.Feasible = false
				break
			}
			jr.Product *= crs[k].Obj
		}
		if !jr.Feasible {
			jr.Product = math.Inf(1)
		}
		out = append(out, jr)
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := out[a].Product, out[b].Product
		if pa != pb && !math.IsNaN(pa) && !math.IsNaN(pb) {
			return pa < pb
		}
		if math.IsNaN(pa) != math.IsNaN(pb) {
			return !math.IsNaN(pa)
		}
		return out[a].Base.Name < out[b].Base.Name
	})
	return out
}

// --- checkpointing -------------------------------------------------------

// cellRecord is the serialized outcome of one completed (candidate, model)
// cell. Float64 fields survive the JSON round trip bit-exactly (Go encodes
// the shortest representation that parses back to the same value). Only
// settled outcomes are recorded — a feasible mapping or honest
// infeasibility; infrastructure errors are never checkpointed, so a
// resumed sweep retries them instead of replaying a possibly transient
// failure forever.
type cellRecord struct {
	Model    string `json:"model"`
	Feasible bool   `json:"feasible"`

	Energy            float64 `json:"energy,omitempty"`
	Delay             float64 `json:"delay,omitempty"`
	Groups            int     `json:"groups,omitempty"`
	AvgLayersPerGroup float64 `json:"avg_layers_per_group,omitempty"`
	DRAMBytes         float64 `json:"dram_bytes,omitempty"`

	EMAC  float64 `json:"e_mac,omitempty"`
	EGLB  float64 `json:"e_glb,omitempty"`
	ENoC  float64 `json:"e_noc,omitempty"`
	ED2D  float64 `json:"e_d2d,omitempty"`
	EDRAM float64 `json:"e_dram,omitempty"`

	SACost      float64 `json:"sa_cost,omitempty"`
	SAInitCost  float64 `json:"sa_init_cost,omitempty"`
	Restarts    int     `json:"restarts,omitempty"`
	BestRestart int     `json:"best_restart,omitempty"`
}

// outcome reconstructs the cell as a pairOutcome. Feasible cells come back
// as summary MapResults: exact energies/delays/statistics, but without
// per-group evaluation detail or the SA scheme.
func (r cellRecord) outcome() pairOutcome {
	if !r.Feasible {
		return pairOutcome{err: fmt.Errorf("%w for %s (checkpointed)", ErrInfeasible, r.Model)}
	}
	bd := eval.EnergyBreakdown{MAC: r.EMAC, GLB: r.EGLB, NoC: r.ENoC, D2D: r.ED2D, DRAM: r.EDRAM}
	mr := &MapResult{
		Model:             r.Model,
		Energy:            r.Energy,
		Delay:             r.Delay,
		Groups:            r.Groups,
		AvgLayersPerGroup: r.AvgLayersPerGroup,
		Restarts:          r.Restarts,
		BestRestart:       r.BestRestart,
		Summary:           true,
	}
	mr.Eval = eval.Result{Feasible: true, Delay: r.Delay, Energy: bd, DRAMBytes: r.DRAMBytes}
	mr.SA.Cost = r.SACost
	mr.SA.InitCost = r.SAInitCost
	mr.SA.Eval = mr.Eval
	return mr.asOutcome()
}

func (m *MapResult) asOutcome() pairOutcome { return pairOutcome{mr: m} }

// peekCell reads a checkpoint cell without counting it as resumed; the
// scheduler uses it to seed the pruning incumbent before dispatch.
func (s *Session) peekCell(key string) (cellRecord, bool) {
	s.cellMu.Lock()
	rec, ok := s.cells[key]
	s.cellMu.Unlock()
	return rec, ok
}

// storeCell records a settled cell. width annotates an infeasible verdict
// with the portfolio width that established it, so racing rungs and widened
// sweeps can re-enter and keep searching instead of trusting a narrow
// verdict forever; 0 (patience runs, legacy checkpoints) means
// width-unknown and the record restores at any width. Feasible cells carry
// their own cumulative width in mr.Restarts.
func (s *Session) storeCell(key, model string, mr *MapResult, err error, width int) {
	rec := cellRecord{Model: model}
	switch {
	case mr != nil:
		rec.Feasible = true
		rec.Energy = mr.Energy
		rec.Delay = mr.Delay
		rec.Groups = mr.Groups
		rec.AvgLayersPerGroup = mr.AvgLayersPerGroup
		rec.DRAMBytes = mr.Eval.DRAMBytes
		rec.EMAC, rec.EGLB = mr.Eval.Energy.MAC, mr.Eval.Energy.GLB
		rec.ENoC, rec.ED2D, rec.EDRAM = mr.Eval.Energy.NoC, mr.Eval.Energy.D2D, mr.Eval.Energy.DRAM
		rec.SACost, rec.SAInitCost = mr.SA.Cost, mr.SA.InitCost
		rec.Restarts, rec.BestRestart = mr.Restarts, mr.BestRestart
	case err != nil && !errors.Is(err, ErrInfeasible):
		// Infrastructure errors are not settled outcomes: leave the cell
		// unrecorded so a resumed or repeated sweep retries it.
		return
	default:
		rec.Restarts = width
	}
	s.cellMu.Lock()
	s.cells[key] = rec
	s.cellMu.Unlock()
}

// checkpointFile is the JSON checkpoint envelope.
type checkpointFile struct {
	Version int                   `json:"version"`
	Cells   map[string]cellRecord `json:"cells"`
}

const checkpointVersion = 1

// SaveCheckpoint writes the session's completed cells as JSON. Keys are
// emitted in sorted order, so identical sessions produce identical bytes.
func (s *Session) SaveCheckpoint(w io.Writer) error {
	s.cellMu.Lock()
	cp := checkpointFile{Version: checkpointVersion, Cells: make(map[string]cellRecord, len(s.cells))}
	for k, v := range s.cells {
		cp.Cells[k] = v
	}
	s.cellMu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// LoadCheckpoint merges a previously saved checkpoint into the session;
// matching cells in subsequent runs are restored instead of recomputed.
// Cells keyed under different mapping options (batch, iterations, seeds,
// restarts, objective exponents) never collide, so one checkpoint file can
// serve several sweep configurations.
func (s *Session) LoadCheckpoint(r io.Reader) error {
	var cp checkpointFile
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("dse: reading checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("dse: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	s.cellMu.Lock()
	for k, v := range cp.Cells {
		s.cells[k] = v
	}
	s.cellMu.Unlock()
	return nil
}

// --- cell keying ---------------------------------------------------------

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// optsFingerprintExclusions records, per excluded Options field, why its
// value can never change a (candidate, model) cell's computed result — the
// checkpoint-compatibility decision the fingerprintcomplete analyzer forces
// whenever a field is added. A field missing from both optsFingerprint and
// this list fails `geminilint`.
//
//gemini:fingerprint-exclude Options
var optsFingerprintExclusions = map[string]string{
	"Workers":       "parallelism only; any worker count computes identical cells",
	"Prune":         "pruning skips whole cells, it never changes a computed cell",
	"Order":         "dispatch order only; checkpoints must survive reordering",
	"AbandonEvery":  "abandonment stride only gates early exits against the live incumbent; completed cells are unchanged",
	"Bound":         "bound formulation feeds pruning/abandonment thresholds, not the mapping itself",
	"BoundParams":   "evaluator params for bound computation; never touch a cell's SA search",
	"CacheDir":      "storage location, not content; moving the cache must not invalidate it",
	"OnResult":      "observer callback; notification cannot alter results",
	"Dispatch":      "cell-feed wrapper; it schedules or withholds cells, never changes a computed cell",
	"SweepID":       "labels the sweep — a renamed sweep must keep hitting its old cells",
	"Retry":         "failure-handling policy; a cell that succeeds is attempt-count-independent",
	"CellTimeout":   "wall-clock guard producing typed failures, never different values",
	"FaultInjector": "test-only chaos hook; production sweeps run with none installed",
	"Racing":        "re-allocates restart budget across candidates; every settled cell is a prefix of the same derived-seed portfolio, so racing and uniform sweeps must share cells",
	"RacingKeep":    "racing promotion fraction; like Racing it only schedules rung widths, never a cell's seeds",
	"OnRung":        "observer callback; rung notification cannot alter results",
	"Incumbent":     "external pruning signal; like Prune it only skips whole cells, it never changes a computed cell",
}

// optsFingerprint hashes every Options field the mapping result depends on.
// Alpha is deliberately excluded: it only ranks candidates, it never changes
// a (candidate, model) mapping, so checkpoints survive re-ranking sweeps.
// Order and SweepID are likewise excluded (one only schedules, the other
// only labels — a renamed sweep must keep hitting its old cells), and
// Patience is folded in only when it can actually change a portfolio
// (0 < Patience < restarts), so pre-adaptive checkpoints keep matching
// non-adaptive sweeps. The full field-by-field accounting lives in
// optsFingerprintExclusions and is enforced by the fingerprintcomplete
// analyzer.
//
//gemini:fingerprint-of Options
func optsFingerprint(opt Options) uint64 {
	restarts := opt.Restarts
	if restarts < 1 {
		restarts = 1
	}
	h := uint64(fnvOffset64)
	for _, v := range [...]uint64{
		uint64(int64(opt.Batch)), uint64(int64(opt.SAIterations)),
		uint64(int64(restarts)), uint64(opt.Seed),
		math.Float64bits(opt.Objective.Beta), math.Float64bits(opt.Objective.Gamma),
		uint64(int64(opt.MaxGroupLayers)),
	} {
		h = fnvWord(h, v)
	}
	for _, bu := range opt.BatchUnits {
		h = fnvWord(h, uint64(int64(bu)))
	}
	if p := activePatience(opt); p > 0 {
		// The sentinel word terminates the variable-length BatchUnits list,
		// so {BatchUnits: [1,2,4], Patience: 8} can never alias
		// {BatchUnits: [1,2,4,8]}: ^0 is not a representable batch unit
		// (batch units are positive ints).
		h = fnvWord(h, ^uint64(0))
		h = fnvWord(h, uint64(int64(p)))
	}
	return h
}

// activePatience normalizes Options.Patience to its effective value: 0
// whenever the portfolio cannot stop early (non-positive patience, or
// patience wide enough that the consecutive-miss streak can never reach it).
func activePatience(opt Options) int {
	restarts := opt.Restarts
	if restarts < 1 {
		restarts = 1
	}
	if opt.Patience <= 0 || opt.Patience >= restarts {
		return 0
	}
	return opt.Patience
}

// cellKey names one (candidate, model, options) cell in the checkpoint.
func cellKey(archFP uint64, model string, optFP uint64) string {
	return fmt.Sprintf("%016x/%s/%016x", archFP, model, optFP)
}
