package dse

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/cost"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

// sweepModels returns stable graph instances for session tests (cache and
// checkpoint keys include graph identity and model name).
var (
	testCNN = dnn.TinyCNN()
	testTF  = dnn.TinyTransformer()
)

func testCands() []arch.Config {
	a := arch.GArch72()
	b := arch.GArch72()
	b.NoCBW, b.D2DBW = 64, 32
	b.Name = b.String()
	return []arch.Config{a, b}
}

// resultsEqual requires bit-identical headline numbers per candidate.
func resultsEqual(t *testing.T, want, got []CandidateResult, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d results", label, len(want), len(got))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if w.Cfg.Name != g.Cfg.Name {
			t.Fatalf("%s[%d]: order differs: %s vs %s", label, i, w.Cfg.Name, g.Cfg.Name)
		}
		if w.Energy != g.Energy || w.Delay != g.Delay || w.Obj != g.Obj || w.Feasible != g.Feasible {
			t.Errorf("%s[%d] %s: (E=%v D=%v obj=%v feas=%v) vs (E=%v D=%v obj=%v feas=%v)",
				label, i, w.Cfg.Name,
				w.Energy, w.Delay, w.Obj, w.Feasible,
				g.Energy, g.Delay, g.Obj, g.Feasible)
		}
	}
}

// TestSessionMatchesRun pins the acceptance criterion: a fixed-seed Session
// sweep — cold, and re-run warm on the shared cache — is bit-identical to
// the equivalent single dse.Run.
func TestSessionMatchesRun(t *testing.T) {
	cands := testCands()
	models := []*dnn.Graph{testCNN, testTF}
	opt := testOptions()

	baseline := Run(cands, models, opt)

	ses := NewSession()
	cold := ses.Run(cands, models, opt)
	resultsEqual(t, baseline, cold, "cold session")

	// The warm re-run restores checkpointed cells; headline numbers must
	// still match bit for bit.
	warm := ses.Run(cands, models, opt)
	resultsEqual(t, baseline, warm, "warm session")
	if ses.ResumedCells() == 0 {
		t.Error("warm re-run resumed no cells")
	}

	// A different seed forces real re-mapping on the warm cache; that too
	// must match a fresh Run bit for bit (the cache stores exactly what
	// recomputation yields).
	opt2 := opt
	opt2.Seed = 42
	warm2 := ses.Run(cands, models, opt2)
	resultsEqual(t, Run(cands, models, opt2), warm2, "warm cache, new seed")
}

func TestSessionCacheAccounting(t *testing.T) {
	ses := NewSession()
	cands := testCands()
	models := []*dnn.Graph{testCNN}
	opt := testOptions()

	ses.Run(cands, models, opt)
	st1 := ses.CacheStats()
	if st1.Misses == 0 {
		t.Fatal("cold run recorded no misses")
	}
	if st1.Entries == 0 {
		t.Fatal("cold run cached no entries")
	}

	// Same sweep with a different seed: cells miss (different options key),
	// so the mapping really re-runs — but over a warm cache.
	opt2 := opt
	opt2.Seed = 99
	ses.Run(cands, models, opt2)
	st2 := ses.CacheStats()
	if st2.Hits <= st1.Hits {
		t.Errorf("warm run added no cache hits: %+v -> %+v", st1, st2)
	}
	warmHits := st2.Hits - st1.Hits
	warmMisses := st2.Misses - st1.Misses
	if warmHits <= warmMisses {
		t.Errorf("warm run should be hit-dominated: %d hits vs %d misses", warmHits, warmMisses)
	}
}

func TestSessionCheckpointRoundTrip(t *testing.T) {
	cands := testCands()
	models := []*dnn.Graph{testCNN, testTF}
	opt := testOptions()

	a := NewSession()
	want := a.Run(cands, models, opt)
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	// A fresh session with the checkpoint loaded must not map anything.
	calls := 0
	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool, from, to int) (*MapResult, error) {
		calls++
		return orig(ev, cfg, g, o, stop, from, to)
	}
	defer func() { mapModelFn = orig }()

	b := NewSession()
	if err := b.LoadCheckpoint(strings.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	got := b.Run(cands, models, opt)
	if calls != 0 {
		t.Errorf("resumed run invoked MapModel %d times", calls)
	}
	if int(b.ResumedCells()) != len(cands)*len(models) {
		t.Errorf("resumed %d cells, want %d", b.ResumedCells(), len(cands)*len(models))
	}
	resultsEqual(t, want, got, "resumed")
	for i := range got {
		for _, mr := range got[i].PerModel {
			if !mr.Summary {
				t.Error("restored MapResult not marked Summary")
			}
		}
	}

	// Round-trip stability: saving the resumed session reproduces the bytes.
	var buf2 bytes.Buffer
	if err := b.SaveCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != saved {
		t.Error("checkpoint bytes not stable across save/load/save")
	}

	// A different option set must not collide with checkpointed cells.
	opt2 := opt
	opt2.SAIterations += 5
	b.Run(cands, models, opt2)
	if calls == 0 {
		t.Error("changed options should have forced re-mapping")
	}
}

func TestSessionCheckpointVersion(t *testing.T) {
	s := NewSession()
	err := s.LoadCheckpoint(strings.NewReader(`{"version": 999, "cells": {}}`))
	if err == nil {
		t.Fatal("version mismatch not rejected")
	}
	if err := s.LoadCheckpoint(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage checkpoint not rejected")
	}
}

// TestSessionErrorNotInfeasible pins the honest-error satellite: an injected
// infrastructure failure must surface as an error, never as infeasibility.
func TestSessionErrorNotInfeasible(t *testing.T) {
	boom := errors.New("injected mapper crash")
	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool, from, to int) (*MapResult, error) {
		if cfg.Name == "bad-arch" {
			return nil, boom
		}
		return orig(ev, cfg, g, o, stop, from, to)
	}
	defer func() { mapModelFn = orig }()

	ok := arch.GArch72()
	bad := arch.GArch72()
	bad.Name = "bad-arch"
	bad.NoCBW = 33 // structurally distinct so it is not cache/cell-aliased
	rs := NewSession().Run([]arch.Config{bad, ok}, []*dnn.Graph{testCNN}, testOptions())

	if rs[0].Cfg.Name != ok.Name || !rs[0].Feasible {
		t.Fatalf("healthy candidate should rank first, got %s (%s)", rs[0].Cfg.Name, rs[0].Status())
	}
	er := &rs[1]
	if er.Cfg.Name != "bad-arch" {
		t.Fatalf("expected bad-arch last, got %s", er.Cfg.Name)
	}
	if er.Err == nil || !errors.Is(er.Err, boom) {
		t.Fatalf("error not threaded: %v", er.Err)
	}
	if er.Status() != "error" {
		t.Errorf("status = %q, want error", er.Status())
	}
	if er.Feasible {
		t.Error("errored candidate reported feasible")
	}
	if errs := Errors(rs); len(errs) != 1 || !errors.Is(errs[0], boom) {
		t.Errorf("Errors() = %v", errs)
	}

	var sb strings.Builder
	if err := WriteCSV(&sb, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "error,\"injected mapper crash\"") {
		t.Errorf("CSV does not surface the error:\n%s", sb.String())
	}
}

// TestSessionRetriesErroredCells: infrastructure errors are not settled
// outcomes, so they are never checkpointed — a resumed sweep retries them
// instead of replaying a possibly transient failure forever.
func TestSessionRetriesErroredCells(t *testing.T) {
	boom := errors.New("transient failure")
	failing := true
	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool, from, to int) (*MapResult, error) {
		if failing && cfg.Name == "flaky-arch" {
			return nil, boom
		}
		return orig(ev, cfg, g, o, stop, from, to)
	}
	defer func() { mapModelFn = orig }()

	flaky := arch.GArch72()
	flaky.Name = "flaky-arch"
	cands := []arch.Config{flaky}
	models := []*dnn.Graph{testCNN}

	a := NewSession()
	rs := a.Run(cands, models, testOptions())
	if rs[0].Status() != "error" {
		t.Fatalf("first run status %q, want error", rs[0].Status())
	}
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "transient failure") {
		t.Fatalf("infrastructure error was checkpointed:\n%s", buf.String())
	}

	// The failure clears; a resumed session must re-run the cell and map it.
	failing = false
	b := NewSession()
	if err := b.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	rs = b.Run(cands, models, testOptions())
	if rs[0].Status() != "ok" {
		t.Fatalf("resumed run status %q, want ok (errored cell must be retried)", rs[0].Status())
	}
}

func TestInfeasibleIsNotError(t *testing.T) {
	bad := arch.GArch72()
	bad.GLBPerCore = 512 // nothing fits
	bad.Name = "bad"
	rs := Run([]arch.Config{bad}, []*dnn.Graph{testCNN}, testOptions())
	if rs[0].Err != nil {
		t.Errorf("infeasible candidate carries error: %v", rs[0].Err)
	}
	if rs[0].Status() != "infeasible" {
		t.Errorf("status = %q, want infeasible", rs[0].Status())
	}
	if rs[0].Feasible {
		t.Error("512-byte GLB should be infeasible")
	}
}

func TestMapModelInfeasibleSentinel(t *testing.T) {
	bad := arch.GArch72()
	bad.GLBPerCore = 512
	bad.Name = "bad"
	_, err := MapModel(&bad, testCNN, testOptions())
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible mapping error %v does not wrap ErrInfeasible", err)
	}
}

func TestSessionStreamsResults(t *testing.T) {
	cands := testCands()
	var streamed []string
	opt := testOptions()
	opt.OnResult = func(r CandidateResult) { streamed = append(streamed, r.Cfg.Name) }
	NewSession().Run(cands, []*dnn.Graph{testCNN}, opt)
	if len(streamed) != len(cands) {
		t.Fatalf("streamed %d results, want %d", len(streamed), len(cands))
	}
}

func TestSessionPruning(t *testing.T) {
	base := arch.GArch72()
	big, err := ScaleUp(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Workers = 1 // candidate 0 completes before candidate 1 starts
	opt.Prune = true
	// An MC-dominated objective makes the 4x machine's lower bound
	// hopeless against the base incumbent.
	opt.Objective = Objective{Alpha: 8, Beta: 1, Gamma: 1}

	var logged []string
	ses := NewSession()
	ses.Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	rs := ses.Run([]arch.Config{base, big}, []*dnn.Graph{testCNN}, opt)

	if rs[0].Cfg.Name != base.Name || !rs[0].Feasible {
		t.Fatalf("base should win: %s (%s)", rs[0].Cfg.Name, rs[0].Status())
	}
	pr := &rs[1]
	if !pr.Pruned || pr.Status() != "pruned" {
		t.Fatalf("big candidate not pruned: %s (%+v)", pr.Status(), pr)
	}
	if pr.LowerBound <= rs[0].Obj {
		t.Errorf("pruned with bound %v <= best %v", pr.LowerBound, rs[0].Obj)
	}
	found := false
	for _, l := range logged {
		if strings.Contains(l, "pruned") && strings.Contains(l, big.Name) {
			found = true
		}
	}
	if !found {
		t.Errorf("pruning decision not logged: %v", logged)
	}

	var sb strings.Builder
	if err := WriteCSV(&sb, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pruned") {
		t.Error("CSV does not surface pruning")
	}
}

func TestPruningSoundness(t *testing.T) {
	// The bound must lie at or below the mapped outcome for a feasible pair.
	cfg := arch.GArch72()
	opt := testOptions()
	mr, err := MapModel(&cfg, testCNN, opt)
	if err != nil {
		t.Fatal(err)
	}
	p := eval.DefaultParams()
	eLB, dLB := lowerBoundED(&cfg, testCNN, &p, opt)
	if eLB <= 0 || dLB <= 0 {
		t.Fatalf("degenerate bounds: e=%v d=%v", eLB, dLB)
	}
	if eLB > mr.Energy {
		t.Errorf("energy bound %v exceeds achieved %v", eLB, mr.Energy)
	}
	if dLB > mr.Delay {
		t.Errorf("delay bound %v exceeds achieved %v", dLB, mr.Delay)
	}
}

func TestPruningDisabledForNonMonotoneObjective(t *testing.T) {
	if objMonotone(Objective{Alpha: -1, Beta: 1, Gamma: 1}) {
		t.Error("negative alpha accepted as monotone")
	}
	if !objMonotone(MCED) {
		t.Error("MCED rejected")
	}
}

// TestSortTotalOrderWithNaN pins the comparator satellite: NaN and Inf
// objectives sort last deterministically, and the order is a valid strict
// weak order for any permutation.
func TestSortTotalOrderWithNaN(t *testing.T) {
	mk := func(name string, obj float64, feasible bool) CandidateResult {
		r := CandidateResult{Obj: obj, Feasible: feasible}
		r.Cfg.Name = name
		return r
	}
	nan := math.NaN()
	inf := math.Inf(1)
	base := []CandidateResult{
		mk("nan-b", nan, true),
		mk("fin-2", 2, true),
		mk("inf-a", inf, true),
		mk("nan-a", nan, true),
		mk("infeasible", inf, false),
		mk("fin-1", 1, true),
	}
	wantOrder := []string{"fin-1", "fin-2", "inf-a", "nan-a", "nan-b", "infeasible"}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := make([]CandidateResult, len(base))
		for i, j := range rng.Perm(len(base)) {
			perm[i] = base[j]
		}
		sortResults(perm)
		for i, want := range wantOrder {
			if perm[i].Cfg.Name != want {
				t.Fatalf("trial %d: pos %d = %s, want %s", trial, i, perm[i].Cfg.Name, want)
			}
		}
	}

	// Irreflexivity and asymmetry spot checks with NaN present.
	for i := range base {
		if resultLess(&base[i], &base[i]) {
			t.Errorf("resultLess(%s, itself) = true", base[i].Cfg.Name)
		}
		for j := range base {
			if resultLess(&base[i], &base[j]) && resultLess(&base[j], &base[i]) {
				t.Errorf("asymmetry violated for %s, %s", base[i].Cfg.Name, base[j].Cfg.Name)
			}
		}
	}
}

// TestGeomeanLogSpace pins the underflow satellite: folding many models with
// tiny energies must not collapse the geometric mean to zero.
func TestGeomeanLogSpace(t *testing.T) {
	cfg := arch.GArch72()
	const n = 40
	per := make([]pairOutcome, n)
	models := make([]*dnn.Graph, n)
	for i := range per {
		per[i] = pairOutcome{mr: &MapResult{Energy: 1e-200, Delay: 1e-150}}
		models[i] = testCNN
	}
	// The naive running product would be (1e-200)^40 = 0 (underflow).
	res := reduceCandidate(&cfg, per, models, cost.New(), testOptions())
	if !res.Feasible {
		t.Fatal("reduce failed")
	}
	if res.Energy == 0 || res.Delay == 0 {
		t.Fatalf("geomean underflowed: E=%v D=%v", res.Energy, res.Delay)
	}
	if rel := math.Abs(res.Energy-1e-200) / 1e-200; rel > 1e-12 {
		t.Errorf("geomean energy %v, want 1e-200 (rel err %v)", res.Energy, rel)
	}
	if rel := math.Abs(res.Delay-1e-150) / 1e-150; rel > 1e-12 {
		t.Errorf("geomean delay %v, want 1e-150 (rel err %v)", res.Delay, rel)
	}
}

func TestSessionJointRunMatchesPackageJointRun(t *testing.T) {
	bases := []arch.Config{arch.GArch72()}
	models := []*dnn.Graph{testCNN}
	opt := testOptions()
	want := JointRun(bases, []int{1, 4}, models, opt)
	ses := NewSession()
	got := ses.JointRun(bases, []int{1, 4}, models, opt)
	if len(want) != len(got) {
		t.Fatalf("length %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Product != got[i].Product || want[i].Feasible != got[i].Feasible {
			t.Errorf("joint[%d]: product %v vs %v", i, want[i].Product, got[i].Product)
		}
	}
	// Warm re-run: identical again.
	again := ses.JointRun(bases, []int{1, 4}, models, opt)
	for i := range want {
		if want[i].Product != again[i].Product {
			t.Errorf("warm joint[%d]: product %v vs %v", i, want[i].Product, again[i].Product)
		}
	}
}
