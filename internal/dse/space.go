// Package dse implements the Gemini design-space exploration driver
// (Sec. V-A, VI-A1): exhaustive enumeration of the Table I architecture
// candidates, parallel mapping of each candidate via the graph-partition +
// simulated-annealing pipeline, MC^alpha * E^beta * D^gamma ranking with
// geometric-mean aggregation over DNNs, and the joint multi-TOPs chiplet-
// reuse exploration of Sec. VII-B.
//
//gemini:deterministic
//gemini:documented
package dse

import (
	"fmt"
	"math"
	"sort"

	"gemini/internal/arch"
)

// Space describes an architecture candidate grid in the style of Table I.
// Total compute is held constant at TOPS; core count follows MAC/Core.
type Space struct {
	Name string
	TOPS float64

	Cuts        []int     // candidate XCut/YCut values
	DRAMPerTOPS []float64 // GB/s per TOPs
	NoCBWs      []float64 // GB/s
	D2DRatios   []float64 // D2D = NoC x ratio
	GLBs        []int     // bytes per core
	MACs        []int     // MACs per core

	FreqGHz  float64
	Topology arch.Topology
}

// Table I parameter lists (paper Sec. VI-A1).
func tableIBase(tops float64, cuts []int) Space {
	return Space{
		Name:        fmt.Sprintf("%.0fTOPs", tops),
		TOPS:        tops,
		Cuts:        cuts,
		DRAMPerTOPS: []float64{0.5, 1, 2},
		NoCBWs:      []float64{8, 16, 32, 64, 128},
		D2DRatios:   []float64{0.25, 0.5, 1},
		GLBs: []int{256 * arch.KB, 512 * arch.KB, 1024 * arch.KB,
			2048 * arch.KB, 4096 * arch.KB, 8192 * arch.KB},
		MACs:    []int{512, 1024, 2048, 4096, 8192},
		FreqGHz: 1,
	}
}

// Space72 returns the 72 TOPs Table I space (cuts 1,2,3,6). The paper's
// "72 TOPs" is Simba's 36 cores x 1024 MACs x 1 GHz = 73.7 TOPs; using the
// exact figure reproduces the paper's 36/18/9-core arrangements.
func Space72() Space {
	sp := tableIBase(73.728, []int{1, 2, 3, 6})
	sp.Name = "72TOPs"
	return sp
}

// Space128 returns the 128 TOPs Table I space (cuts 1,2,4,8).
func Space128() Space { return tableIBase(128, []int{1, 2, 4, 8}) }

// Space512 returns the 512 TOPs Table I space (cuts 1,2,4,8).
func Space512() Space { return tableIBase(512, []int{1, 2, 4, 8}) }

// Reduced trims the space to a coarse but representative sub-grid so the
// exhaustive sweep finishes quickly (used by benches and examples; the cmd
// tools run the full grids).
func (sp Space) Reduced() Space {
	r := sp
	r.Name = sp.Name + "-reduced"
	r.DRAMPerTOPS = []float64{2}
	r.NoCBWs = []float64{32, 64}
	r.D2DRatios = []float64{0.5}
	r.GLBs = []int{1024 * arch.KB, 2048 * arch.KB}
	r.MACs = []int{1024, 2048, 4096}
	return r
}

// GridFor returns the most square core-array factorization for a core
// count, as the paper arranges cores (e.g. 36 -> 6x6, 18 -> 6x3).
func GridFor(cores int) (w, h int) {
	best := 1
	for d := 1; d*d <= cores; d++ {
		if cores%d == 0 {
			best = d
		}
	}
	return cores / best, best
}

// CoresFor returns the core count for the space's TOPS at a MAC/Core value:
// the count nearest the exact ratio whose most-square grid keeps a sane
// aspect ratio, matching the paper's "length and width as close as
// possible" arrangement rule. Grids with both edges even are preferred so
// the XCut/YCut candidates of Table I can actually divide them (the paper's
// arrangements — 36=6x6, 18=6x3, 64=8x8 — all admit cuts).
func (sp Space) CoresFor(macs int) int {
	ideal := sp.TOPS * 1000 / (2 * float64(macs) * sp.FreqGHz)
	best, bestScore := 0, math.Inf(1)
	for v := int(ideal) - 3; v <= int(ideal)+4; v++ {
		if v < 1 {
			continue
		}
		w, h := GridFor(v)
		aspect := float64(w) / float64(h)
		if aspect > 2.5 {
			continue
		}
		score := math.Abs(float64(v)-ideal) + 0.3*(aspect-1)
		if w%2 == 0 && h%2 == 0 {
			score -= 1.2
		}
		if score < bestScore {
			best, bestScore = v, score
		}
	}
	if best == 0 {
		best = 1
	}
	return best
}

// Enumerate expands the grid into validated architecture configurations.
// Cut candidates that do not divide the respective core-array edge are
// invalid and skipped (paper Sec. VI-A1).
func (sp Space) Enumerate() []arch.Config {
	var out []arch.Config
	freq := sp.FreqGHz
	if freq <= 0 {
		freq = 1
	}
	for _, macs := range sp.MACs {
		cores := sp.CoresFor(macs)
		w, h := GridFor(cores)
		if w > 4*h {
			// Degenerate aspect ratios (e.g. prime core counts) are not
			// buildable as sensible meshes; skip, as the paper's
			// squareness rule implies.
			continue
		}
		for _, xc := range sp.Cuts {
			if w%xc != 0 {
				continue
			}
			for _, yc := range sp.Cuts {
				if h%yc != 0 {
					continue
				}
				for _, dpt := range sp.DRAMPerTOPS {
					for _, nocBW := range sp.NoCBWs {
						for _, ratio := range sp.D2DRatios {
							// Distinct D2D ratios only matter for
							// multi-chiplet configurations; skip duplicate
							// monolithic candidates.
							if xc == 1 && yc == 1 && ratio != sp.D2DRatios[0] {
								continue
							}
							for _, glb := range sp.GLBs {
								cfg := arch.Config{
									CoresX: w, CoresY: h,
									XCut: xc, YCut: yc,
									NoCBW:       nocBW,
									D2DBW:       nocBW * ratio,
									DRAMBW:      dpt * sp.TOPS,
									MACsPerCore: macs,
									GLBPerCore:  glb,
									FreqGHz:     freq,
									Topology:    sp.Topology,
								}
								cfg.Name = cfg.String()
								if cfg.Validate() == nil {
									out = append(out, cfg)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScaleUp replicates a base configuration's chiplet to reach factor x the
// compute (Sec. VII-B chiplet reuse): the chiplet grid grows by the most
// square split of factor; DRAM bandwidth scales with compute.
func ScaleUp(base arch.Config, factor int) (arch.Config, error) {
	if factor < 1 {
		return arch.Config{}, fmt.Errorf("dse: factor %d < 1", factor)
	}
	fx, fy := GridFor(factor)
	cfg := base
	cfg.CoresX *= fx
	cfg.XCut *= fx
	cfg.CoresY *= fy
	cfg.YCut *= fy
	cfg.DRAMBW *= float64(factor)
	if cfg.Chiplets() > 1 && cfg.D2DBW <= 0 {
		cfg.D2DBW = cfg.NoCBW / 2
	}
	cfg.Name = cfg.String()
	if err := cfg.Validate(); err != nil {
		return arch.Config{}, err
	}
	return cfg, nil
}
