package dse

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"gemini/internal/arch"
	"gemini/internal/cost"
	"gemini/internal/dnn"
	"gemini/internal/eval"
	"gemini/internal/faultinject"
	"gemini/internal/graphpart"
	"gemini/internal/sa"
)

// ErrInfeasible marks mapping outcomes where the pipeline ran correctly but
// no feasible mapping exists for the (architecture, model) pair. Everything
// else MapModel returns is an infrastructure error — a bad configuration, an
// invalid scheme, a real bug — and must never be reported as infeasibility.
var ErrInfeasible = errors.New("dse: no feasible mapping")

// Objective holds the DSE exponents of MC^alpha * E^beta * D^gamma
// (paper Sec. V-A). The default DSE objective is MC*E*D.
type Objective struct {
	Alpha, Beta, Gamma float64
}

// MCED is the paper's default DSE objective.
var MCED = Objective{1, 1, 1}

// Options configures a DSE run.
type Options struct {
	Objective Objective
	Batch     int
	// SAIterations per (candidate, DNN) mapping search.
	SAIterations int
	// Restarts is the SA portfolio width per (candidate, model) cell:
	// each cell anneals Restarts times with deterministically derived seeds
	// and keeps the best outcome (<=1 means a single run, bit-identical to
	// the pre-portfolio engine).
	Restarts int
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	Seed    int64
	// MaxGroupLayers and BatchUnits forward to the graph partitioner.
	MaxGroupLayers int
	BatchUnits     []int
	// Prune enables bound-based candidate pruning: a candidate whose
	// MC^alpha * lowerBound(E)^beta * lowerBound(D)^gamma already exceeds
	// the best feasible objective seen so far is skipped without mapping.
	// The bound is sound (it can never prune the true optimum) but which
	// non-winning candidates get pruned depends on completion order, so
	// pruned rows carry Pruned=true rather than silently vanishing. Pruning
	// is disabled when any exponent is negative (the bound is only a bound
	// for monotone objectives). The incumbent is live: it is re-read before
	// every cell and between SA restarts, and it is seeded from checkpointed
	// cells on resumed sessions, so the gate tightens as early as possible.
	Prune bool
	// Order selects the candidate dispatch order: OrderBound schedules
	// candidates in ascending objective-lower-bound order so the pruning
	// incumbent tightens before expensive candidates run; OrderGrid (and
	// the zero value) keeps enumeration order. Order never changes which
	// results are computed when pruning is off, only their schedule, so it
	// is excluded from the checkpoint fingerprint.
	Order SweepOrder
	// Patience makes the per-cell SA portfolio adaptive: the portfolio
	// stops after this many consecutive non-improving restarts. 0 (and any
	// value >= Restarts) runs the full fixed schedule, bit-identical to the
	// pre-adaptive engine.
	Patience int
	// Racing switches restart allocation from uniform (every cell runs the
	// full Restarts-wide portfolio) to successive halving across candidates:
	// the scheduler dispatches one cheap exploratory restart per surviving
	// candidate, ranks candidates by their best-so-far objective against the
	// live incumbent, promotes only the top RacingKeep fraction to the next
	// rung with a doubled restart budget, and repeats until the budget
	// concentrates on the finalists at the full Restarts width. Every cell a
	// rung settles is a prefix of the same derived-seed portfolio a uniform
	// sweep would run, so racing only re-allocates restart budget across
	// candidates — it never changes which seeds a given restart index uses.
	// That is why Racing is excluded from the checkpoint cell fingerprint:
	// checkpointed cells re-enter at the rung their settled restart count
	// implies, and a finalist's cell is bit-identical to the uniform sweep's.
	// Racing forces Patience off (rung widths are the adaptive schedule) and
	// is off by default, leaving sweeps bit-identical to the uniform engine.
	Racing bool `json:"racing,omitempty"`
	// RacingKeep is the fraction of surviving candidates promoted at each
	// racing rung, in (0, 1); a rung always promotes at least one candidate.
	// 0 (the zero value) uses the default 1/2. Like Racing it only
	// re-allocates restart budget, so it is excluded from the checkpoint
	// fingerprint.
	RacingKeep float64 `json:"racing_keep,omitempty"`
	// OnRung, when set, streams one RungStats record as each racing rung
	// completes (no calls unless Racing is on). Calls are serialized in rung
	// order. Purely observational — excluded from the checkpoint fingerprint.
	OnRung func(RungStats) `json:"-"`
	// AbandonEvery controls in-loop abandonment: with pruning active, every
	// cell's SA search polls the scheduler's live incumbent on this
	// iteration stride and walks away mid-anneal once its candidate is
	// dominated (on top of the existing between-restart checks). 0 uses the
	// engine default (32); < 0 disables the in-loop check, restoring the
	// between-restarts-only behavior. Abandoned cells are never settled or
	// checkpointed, so the option only schedules — like Order it is excluded
	// from the checkpoint fingerprint and non-abandoned results stay
	// bit-identical.
	AbandonEvery int `json:"abandon_every,omitempty"`
	// Bound selects the lower-bound formulation behind Prune and OrderBound:
	// BoundCompulsory (the zero value) is the full compulsory-traffic bound;
	// BoundComputeDRAM is the historical compute+weight-DRAM bound, kept for
	// benchmarking the compulsory-traffic gain. Like Order it only schedules
	// and prunes — it never changes a mapping — so it is excluded from the
	// checkpoint fingerprint.
	Bound BoundLevel `json:"bound,omitempty"`
	// BoundParams loosens the technology constants the pruning lower
	// bounds are computed from (default: eval.DefaultParams()). Because the
	// evaluation itself always charges the defaults, overrides are clamped
	// to never exceed them — raising a bound constant above what the
	// evaluator charges would let pruning discard the true optimum. Bounds
	// only schedule and prune — they never change a mapping — so the field
	// is excluded from the checkpoint fingerprint.
	BoundParams *eval.Params `json:"-"`
	// CacheDir, when set, backs the session's shared evaluation cache with a
	// disk spill in this directory: RunContext warms the cache from the
	// directory's spill file once per session, re-saves it in the background
	// as candidates complete (coalesced off the result path, atomic rename),
	// and saves a final snapshot when the sweep ends. Group results are
	// keyed by stable (arch, graph, group) fingerprints, so a restarted
	// process pointed at the same directory recomputes none of its
	// predecessor's cached group evaluations. Serving from disk is
	// bit-identical to recomputing, and the option never changes a mapping,
	// so it is excluded from the checkpoint fingerprint. Not settable
	// through the JSON sweep spec: where a server spills its cache is the
	// operator's choice, not the client's.
	CacheDir string `json:"-"`
	// OnResult, when set, streams each candidate's result as soon as it
	// completes (including pruned and errored candidates). Calls are
	// serialized but arrive in completion order, not candidate order.
	OnResult func(CandidateResult) `json:"-"`
	// Dispatch, when set, wraps the scheduler's cell feed: the scheduler
	// builds its default bound-ordered Dispatcher (one per sweep, one per
	// racing rung) and hands it to Dispatch, whose return value the workers
	// pull from instead. The sweep service uses this to bind sweeps to queue
	// slots and to gate a preempted sweep's feed shut. A feed only schedules
	// — cells it never delivers are reported as canceled, not computed — so
	// like Order it is excluded from the checkpoint fingerprint.
	Dispatch func(Dispatcher) Dispatcher `json:"-"`
	// SweepID optionally names the sweep for logs and SweepStats; the sweep
	// service keys server-side checkpoints by it. Like Order it only
	// labels/schedules — it never changes a mapping — so it is excluded
	// from the checkpoint fingerprint.
	SweepID string `json:"sweep_id,omitempty"`
	// Retry bounds transient-failure retries per (candidate, model) cell:
	// panics, per-cell deadline expiries and transient I/O errors re-run the
	// cell with jittered exponential backoff; infeasibility and unrecognized
	// errors never retry (see Transient). The zero value disables retry.
	// Every attempt runs the same seeded pipeline, so a cell that succeeds
	// after retries is bit-identical to one that succeeded first try — which
	// is why Retry is excluded from the checkpoint cell fingerprint.
	Retry RetryPolicy `json:"retry,omitempty"`
	// CellTimeout, when positive, bounds one mapping attempt's wall time: a
	// cell exceeding it fails with CellError{Kind: CellTimeout} (retryable
	// under Retry) instead of stalling the sweep's worker pool. Like Retry
	// it cannot change a successful cell's bits and is excluded from the
	// checkpoint fingerprint. Zero means no deadline, the pre-hardening
	// behavior.
	CellTimeout time.Duration `json:"cell_timeout,omitempty"`
	// FaultInjector, when non-nil, arms the deterministic fault-injection
	// harness for chaos tests (see internal/faultinject). nil — the
	// production state — is a pointer comparison on the hot path and
	// changes nothing.
	FaultInjector *faultinject.Injector `json:"-"`
	// Incumbent, when set, connects this sweep's pruning incumbent to an
	// external exchange (a fleet coordinator): the scheduler's incumbent
	// reads min(local best, Incumbent.Best()) wherever it gates work — the
	// pre-cell prune check, the between-restart stop gate and the in-loop
	// abandonment poll — and forwards every local improvement through
	// Incumbent.Improved. The exchange carries only achieved feasible
	// objectives for the same spec, so the fold stays a sound pruning bound
	// (the global optimum can never be dominated by an achieved value). Like
	// Prune it only skips work — it never changes a computed cell's bits —
	// so it is excluded from the checkpoint fingerprint.
	Incumbent IncumbentExchange `json:"-"`
}

// IncumbentExchange is the external incumbent source/sink a fleet worker
// threads into Options.Incumbent. Best is polled from the scheduler's hot
// gates (between SA restarts and inside the annealing abandonment hook), so
// implementations must make it cheap — an atomic load of a locally cached
// fleet-wide best, refreshed off the hot path — and return +Inf while no
// fleet incumbent exists. Improved receives every local incumbent
// improvement (an achieved feasible objective) and must not block the
// caller beyond an atomic update; network publication belongs on a
// background goroutine.
type IncumbentExchange interface {
	// Best returns the best fleet-wide feasible objective currently known
	// (+Inf when none).
	Best() float64
	// Improved reports a new locally achieved feasible objective that
	// improved this sweep's incumbent.
	Improved(candidate string, obj float64)
}

// DefaultOptions returns throughput-scenario settings (batch 64, Sec. VI-A1).
func DefaultOptions() Options {
	return Options{
		Objective:    MCED,
		Batch:        64,
		SAIterations: 600,
		Restarts:     1,
		Seed:         1,
		BatchUnits:   []int{1, 2, 4, 8},
		Order:        OrderBound,
	}
}

// MapResult is the outcome of mapping one DNN onto one architecture.
type MapResult struct {
	Model             string
	Energy            float64 // joules
	Delay             float64 // seconds
	Eval              eval.Result
	SA                sa.Result
	Groups            int
	AvgLayersPerGroup float64

	// Restarts and BestRestart describe the SA portfolio that produced this
	// result (1/0 for a single-seed run). Restarts counts the cumulative
	// portfolio width settled so far — restarts that actually ran, plus the
	// checkpointed prefix when a cell was widened incrementally;
	// SkippedRestarts counts planned restarts that portfolio patience
	// stopped early (0 for fixed schedules and restored cells).
	Restarts        int
	BestRestart     int
	SkippedRestarts int
	// SAIterations is the total annealing iterations attempted across the
	// portfolio (0 for restored cells, which did no search work).
	SAIterations int

	// Summary marks results restored from a session checkpoint: energies,
	// delays and group statistics are exact, but per-group evaluation detail
	// and SA trajectory counters were not serialized.
	Summary bool
}

// abandonedError marks a cell whose SA portfolio the scheduler's live
// incumbent cut off mid-flight — between restarts or mid-anneal. It is
// internal to the sweep machinery: the candidate is reported Pruned, never
// errored, and the partial cell is not checkpointed. iters carries the SA
// iterations the cell burned before walking away, for the scheduler's
// work accounting.
type abandonedError struct{ done, planned, iters int }

func (e *abandonedError) Error() string {
	return fmt.Sprintf("dse: portfolio abandoned by incumbent after %d/%d restarts", e.done, e.planned)
}

// MapModel runs the full Mapping Engine pipeline for one DNN on one
// architecture: DP graph partition, then SA refinement of the LP SPM
// (a portfolio of opt.Restarts annealing runs). Infeasibility is reported
// as an error wrapping ErrInfeasible; any other error is an infrastructure
// failure.
func MapModel(cfg *arch.Config, g *dnn.Graph, opt Options) (*MapResult, error) {
	return mapModelEval(eval.New(cfg), cfg, g, opt, nil)
}

// effectiveRestarts is the settled portfolio width opt implies (Restarts
// clamped to >= 1, exactly as the portfolio layer clamps it).
func effectiveRestarts(opt Options) int {
	if opt.Restarts < 1 {
		return 1
	}
	return opt.Restarts
}

// mapModelEval is MapModel on a caller-supplied evaluator, so sessions can
// reuse warm evaluators (route tables, intra-core memo, shared group cache)
// across candidates and runs. stop, when non-nil, is polled between SA
// restarts; if it fires, the cell is abandoned with an abandonedError.
func mapModelEval(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, opt Options, stop func() bool) (*MapResult, error) {
	return mapModelRange(ev, cfg, g, opt, stop, 0, effectiveRestarts(opt))
}

// mapModelRange is mapModelEval restricted to the restart window [from, to)
// of the portfolio opt defines. Restart i always anneals with the same
// derived seed regardless of the window, so the session layer can widen a
// checkpointed cell incrementally: folding a stored prefix [0, from) with a
// fresh window [from, to) is bit-identical to one [0, to) run (the racing
// rungs and checkpoint re-entry rely on this). MapResult.Restarts reports
// the cumulative width from + restarts-run, and BestRestart is the absolute
// winning restart index within the window.
func mapModelRange(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, opt Options, stop func() bool, from, to int) (*MapResult, error) {
	gp := graphpart.DefaultOptions()
	gp.Beta, gp.Gamma = opt.Objective.Beta, opt.Objective.Gamma
	if opt.MaxGroupLayers > 0 {
		gp.MaxGroupLayers = opt.MaxGroupLayers
	}
	if len(opt.BatchUnits) > 0 {
		gp.BatchUnits = opt.BatchUnits
	}
	part, err := graphpart.Partition(g, cfg, ev, opt.Batch, gp)
	if err != nil {
		if errors.Is(err, graphpart.ErrInfeasible) {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, err
	}
	so := sa.DefaultOptions()
	so.Iterations = opt.SAIterations
	so.Seed = opt.Seed
	so.Beta, so.Gamma = opt.Objective.Beta, opt.Objective.Gamma
	if stop != nil && opt.AbandonEvery >= 0 {
		// In-loop abandonment: the scheduler's stop gate also interrupts the
		// annealing hot loop itself, not just the gaps between restarts, so
		// a cell dominated mid-anneal stops within AbandonEvery iterations.
		so.Dominated = func(float64) bool { return stop() }
		so.CheckEvery = opt.AbandonEvery
	}
	pf := sa.MultiStartRange(part.Scheme, ev, so, from, to,
		sa.AdaptiveOptions{Patience: activePatience(opt), Stop: stop})
	if pf.Panic != nil {
		// A panicked restart poisons the whole portfolio: folding only the
		// restarts that preceded the fault would tie the result to where the
		// fault landed. The typed error is transient, so a retry re-runs the
		// full portfolio with identical seeds — bit-identical on success.
		return nil, &CellError{
			Kind: CellPanic, Candidate: cfg.Name, Model: g.Name,
			Stack: pf.Panic.Stack,
			Err:   fmt.Errorf("sa restart %d panicked: %v", pf.Panic.Restart, pf.Panic.Value),
		}
	}
	if pf.Abandoned {
		return nil, &abandonedError{done: len(pf.Costs), planned: pf.Planned, iters: pf.Iterations}
	}
	res := pf.Best
	if !res.Eval.Feasible {
		return nil, fmt.Errorf("%w for %s on %s", ErrInfeasible, g.Name, cfg.Name)
	}
	return &MapResult{
		Model:             g.Name,
		Energy:            res.Eval.Energy.Total(),
		Delay:             res.Eval.Delay,
		Eval:              res.Eval,
		SA:                res,
		Groups:            len(res.Scheme.Groups),
		AvgLayersPerGroup: eval.AvgLayersPerGroup(res.Scheme),
		Restarts:          from + len(pf.Costs),
		BestRestart:       pf.BestRestart,
		SkippedRestarts:   pf.Skipped(),
		SAIterations:      pf.Iterations,
	}, nil
}

// pairOutcome is one (candidate, model) mapping cell: a result, an
// infeasibility (mr == nil, err wraps ErrInfeasible), or an infrastructure
// error (mr == nil, any other err). The scheduler accounting fields ride
// along: restored cells came from the checkpoint, skippedRestarts were
// saved by portfolio patience, and an abandoned cell was cut off by the
// live incumbent (no settled outcome at all).
type pairOutcome struct {
	mr  *MapResult
	err error

	restored          bool
	skippedRestarts   int
	abandoned         bool
	abandonedRestarts int
	saIterations      int

	// Fault accounting across the cell's attempts: retries after transient
	// failures, recovered panics, deadline expiries, and the most recent
	// panic's rendered stack (for SweepStats.LastPanic).
	retries          int
	panics           int
	deadlineExceeded int
	panicStack       string
}

// infeasible reports whether the cell ran correctly but found no mapping.
func (p pairOutcome) infeasible() bool {
	return p.mr == nil && (p.err == nil || errors.Is(p.err, ErrInfeasible))
}

// CandidateResult is one architecture candidate's DSE evaluation.
type CandidateResult struct {
	Cfg      arch.Config
	MC       cost.Breakdown
	Energy   float64 // geometric mean over DNNs (J)
	Delay    float64 // geometric mean over DNNs (s)
	Obj      float64
	Feasible bool
	PerModel []*MapResult

	// Err is non-nil when any model's mapping failed with an infrastructure
	// error (as opposed to being infeasible); such candidates are never
	// reported as merely infeasible.
	Err error
	// Pruned marks candidates skipped by bound-based pruning; LowerBound is
	// the objective bound that justified the skip.
	Pruned     bool
	LowerBound float64
}

// EDP returns the candidate's energy-delay product.
func (c *CandidateResult) EDP() float64 { return c.Energy * c.Delay }

// Status summarizes the candidate outcome: "ok", "infeasible", "pruned" or
// "error".
func (c *CandidateResult) Status() string {
	switch {
	case c.Err != nil:
		return "error"
	case c.Pruned:
		return "pruned"
	case c.Feasible:
		return "ok"
	default:
		return "infeasible"
	}
}

// Run explores every candidate and returns results sorted by ascending
// objective (infeasible, pruned and errored candidates last). Work is
// scheduled at (candidate, model) granularity over a bounded worker pool,
// so all cores stay busy even when one candidate's mapping search dominates
// the tail. Run is a convenience wrapper over a throwaway Session; use a
// Session directly to share the evaluation cache across calls.
func Run(cands []arch.Config, models []*dnn.Graph, opt Options) []CandidateResult {
	return NewSession().Run(cands, models, opt)
}

// reduceCandidate folds one candidate's per-model mappings into its DSE
// result (geometric-mean energy/delay, MC^alpha E^beta D^gamma objective).
// A candidate with any errored model is an error; with any infeasible model
// it is infeasible; either way it publishes no per-model results. The
// geometric mean is accumulated in log space so many-model sweeps with tiny
// per-model energies cannot underflow the running product to zero.
func reduceCandidate(cfg *arch.Config, per []pairOutcome, models []*dnn.Graph, mce *cost.Evaluator, opt Options) CandidateResult {
	res := CandidateResult{Cfg: *cfg, MC: mce.Evaluate(cfg)}
	var errs []error
	infeasible := false
	var sumLogE, sumLogD float64
	for _, p := range per {
		if p.mr == nil {
			if p.infeasible() {
				infeasible = true
			} else {
				errs = append(errs, p.err)
			}
			continue
		}
		res.PerModel = append(res.PerModel, p.mr)
		sumLogE += math.Log(p.mr.Energy)
		sumLogD += math.Log(p.mr.Delay)
	}
	if len(errs) > 0 {
		res.Err = errors.Join(errs...)
		res.Obj = math.Inf(1)
		res.PerModel = nil
		return res
	}
	if infeasible {
		res.Obj = math.Inf(1)
		res.PerModel = nil
		return res
	}
	n := float64(len(models))
	if n == 0 {
		res.Obj = math.Inf(1)
		return res
	}
	res.Energy = math.Exp(sumLogE / n)
	res.Delay = math.Exp(sumLogD / n)
	res.Feasible = true
	res.Obj = Score(res.MC.Total(), res.Energy, res.Delay, opt.Objective)
	return res
}

// Score computes MC^alpha * E^beta * D^gamma.
func Score(mc, e, d float64, o Objective) float64 {
	return math.Pow(mc, o.Alpha) * math.Pow(e, o.Beta) * math.Pow(d, o.Gamma)
}

// resultClass buckets candidates for ranking: feasible first, then pruned
// (possibly good, just skipped), then genuinely infeasible, then errored.
func resultClass(r *CandidateResult) int {
	switch {
	case r.Feasible:
		return 0
	case r.Pruned:
		return 1
	case r.Err == nil:
		return 2
	default:
		return 3
	}
}

// objRank orders objective values within the feasible class so that the
// comparator stays a strict weak order even for NaN (e.g. a 0*Inf product
// from a zero MC under a negative alpha): finite < +/-Inf-free handled by
// value, +Inf next, NaN last.
func objRank(o float64) int {
	switch {
	case math.IsNaN(o):
		return 2
	case math.IsInf(o, 1):
		return 1
	default:
		return 0
	}
}

// resultLess is the total order Run sorts by: class, then objective (NaN and
// +Inf deterministically last within feasible), then name. It is a valid
// strict weak order for any float inputs, so sort.Slice cannot misbehave on
// NaN objectives.
func resultLess(a, b *CandidateResult) bool {
	ca, cb := resultClass(a), resultClass(b)
	if ca != cb {
		return ca < cb
	}
	if ca == 0 {
		ra, rb := objRank(a.Obj), objRank(b.Obj)
		if ra != rb {
			return ra < rb
		}
		if ra == 0 && a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
	}
	return a.Cfg.Name < b.Cfg.Name
}

// sortResults orders a result slice by resultLess.
func sortResults(results []CandidateResult) {
	sort.Slice(results, func(a, b int) bool {
		return resultLess(&results[a], &results[b])
	})
}

// Best returns the first feasible result, or nil.
func Best(results []CandidateResult) *CandidateResult {
	for i := range results {
		if results[i].Feasible {
			return &results[i]
		}
	}
	return nil
}

// Errors collects the infrastructure errors of a sweep, one per errored
// candidate, prefixed with the candidate name. An empty slice means every
// cell either mapped or was honestly infeasible/pruned.
func Errors(results []CandidateResult) []error {
	var out []error
	for i := range results {
		if results[i].Err != nil {
			out = append(out, fmt.Errorf("%s: %w", results[i].Cfg.Name, results[i].Err))
		}
	}
	return out
}

// WriteCSV emits the result table in the artifact's result.csv style, plus
// the status ("ok", "infeasible", "pruned", "error") and error message of
// each candidate so failed sweeps are never silently mistaken for clean
// infeasibility.
func WriteCSV(w io.Writer, results []CandidateResult) error {
	if _, err := fmt.Fprintln(w, "arch,chiplets,cores,dram_gbps,noc_gbps,d2d_gbps,glb_kb,macs,mc_usd,energy_j,delay_s,edp,objective,feasible,status,error"); err != nil {
		return err
	}
	for i := range results {
		r := &results[i]
		msg := ""
		if r.Err != nil {
			msg = r.Err.Error()
		}
		_, err := fmt.Fprintf(w, "%q,%d,%d,%.0f,%.0f,%.0f,%d,%d,%.3f,%.6g,%.6g,%.6g,%.6g,%t,%s,%q\n",
			r.Cfg.Name, r.Cfg.Chiplets(), r.Cfg.Cores(), r.Cfg.DRAMBW, r.Cfg.NoCBW, r.Cfg.D2DBW,
			r.Cfg.GLBPerCore/arch.KB, r.Cfg.MACsPerCore,
			r.MC.Total(), r.Energy, r.Delay, r.EDP(), r.Obj, r.Feasible, r.Status(), msg)
		if err != nil {
			return err
		}
	}
	return nil
}

// JointResult is the Sec. VII-B multi-accelerator chiplet-reuse outcome for
// one base (lowest-TOPs) candidate.
type JointResult struct {
	Base     arch.Config
	Scaled   []CandidateResult // one per target factor, including factor 1
	Product  float64           // product of MC*E*D over all accelerators
	Feasible bool
}

// JointRun explores chiplet reuse: each base candidate's chiplet is
// replicated to build accelerators at every factor in factors (1 = the base
// itself), and candidates are ranked by the product of their objectives
// (paper Sec. VII-B "Joint Optimal"). JointRun is a convenience wrapper
// over a throwaway Session.
func JointRun(bases []arch.Config, factors []int, models []*dnn.Graph, opt Options) []JointResult {
	return NewSession().JointRun(bases, factors, models, opt)
}
