package dse

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"gemini/internal/arch"
	"gemini/internal/cost"
	"gemini/internal/dnn"
	"gemini/internal/eval"
	"gemini/internal/graphpart"
	"gemini/internal/sa"
)

// Objective holds the DSE exponents of MC^alpha * E^beta * D^gamma
// (paper Sec. V-A). The default DSE objective is MC*E*D.
type Objective struct {
	Alpha, Beta, Gamma float64
}

// MCED is the paper's default DSE objective.
var MCED = Objective{1, 1, 1}

// Options configures a DSE run.
type Options struct {
	Objective Objective
	Batch     int
	// SAIterations per (candidate, DNN) mapping search.
	SAIterations int
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	Seed    int64
	// MaxGroupLayers and BatchUnits forward to the graph partitioner.
	MaxGroupLayers int
	BatchUnits     []int
}

// DefaultOptions returns throughput-scenario settings (batch 64, Sec. VI-A1).
func DefaultOptions() Options {
	return Options{
		Objective:    MCED,
		Batch:        64,
		SAIterations: 600,
		Seed:         1,
		BatchUnits:   []int{1, 2, 4, 8},
	}
}

// MapResult is the outcome of mapping one DNN onto one architecture.
type MapResult struct {
	Model             string
	Energy            float64 // joules
	Delay             float64 // seconds
	Eval              eval.Result
	SA                sa.Result
	Groups            int
	AvgLayersPerGroup float64
}

// MapModel runs the full Mapping Engine pipeline for one DNN on one
// architecture: DP graph partition, then SA refinement of the LP SPM.
func MapModel(cfg *arch.Config, g *dnn.Graph, opt Options) (*MapResult, error) {
	ev := eval.New(cfg)
	gp := graphpart.DefaultOptions()
	gp.Beta, gp.Gamma = opt.Objective.Beta, opt.Objective.Gamma
	if opt.MaxGroupLayers > 0 {
		gp.MaxGroupLayers = opt.MaxGroupLayers
	}
	if len(opt.BatchUnits) > 0 {
		gp.BatchUnits = opt.BatchUnits
	}
	part, err := graphpart.Partition(g, cfg, ev, opt.Batch, gp)
	if err != nil {
		return nil, err
	}
	so := sa.DefaultOptions()
	so.Iterations = opt.SAIterations
	so.Seed = opt.Seed
	so.Beta, so.Gamma = opt.Objective.Beta, opt.Objective.Gamma
	res := sa.Optimize(part.Scheme, ev, so)
	if !res.Eval.Feasible {
		return nil, fmt.Errorf("dse: no feasible mapping for %s on %s", g.Name, cfg.Name)
	}
	return &MapResult{
		Model:             g.Name,
		Energy:            res.Eval.Energy.Total(),
		Delay:             res.Eval.Delay,
		Eval:              res.Eval,
		SA:                res,
		Groups:            len(res.Scheme.Groups),
		AvgLayersPerGroup: eval.AvgLayersPerGroup(res.Scheme),
	}, nil
}

// CandidateResult is one architecture candidate's DSE evaluation.
type CandidateResult struct {
	Cfg      arch.Config
	MC       cost.Breakdown
	Energy   float64 // geometric mean over DNNs (J)
	Delay    float64 // geometric mean over DNNs (s)
	Obj      float64
	Feasible bool
	PerModel []*MapResult
}

// EDP returns the candidate's energy-delay product.
func (c *CandidateResult) EDP() float64 { return c.Energy * c.Delay }

// Run explores every candidate with a parallel worker pool and returns
// results sorted by ascending objective (infeasible candidates last).
func Run(cands []arch.Config, models []*dnn.Graph, opt Options) []CandidateResult {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mce := cost.New()
	results := make([]CandidateResult, len(cands))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range cands {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = evaluateCandidate(&cands[i], models, mce, opt)
		}(i)
	}
	wg.Wait()
	sort.Slice(results, func(a, b int) bool {
		ra, rb := results[a], results[b]
		if ra.Feasible != rb.Feasible {
			return ra.Feasible
		}
		if ra.Obj != rb.Obj {
			return ra.Obj < rb.Obj
		}
		return ra.Cfg.Name < rb.Cfg.Name
	})
	return results
}

func evaluateCandidate(cfg *arch.Config, models []*dnn.Graph, mce *cost.Evaluator, opt Options) CandidateResult {
	res := CandidateResult{Cfg: *cfg, MC: mce.Evaluate(cfg)}
	prodE, prodD := 1.0, 1.0
	for _, g := range models {
		mr, err := MapModel(cfg, g, opt)
		if err != nil {
			res.Feasible = false
			res.Obj = math.Inf(1)
			return res
		}
		res.PerModel = append(res.PerModel, mr)
		prodE *= mr.Energy
		prodD *= mr.Delay
	}
	n := float64(len(models))
	if n == 0 {
		res.Obj = math.Inf(1)
		return res
	}
	res.Energy = math.Pow(prodE, 1/n)
	res.Delay = math.Pow(prodD, 1/n)
	res.Feasible = true
	res.Obj = Score(res.MC.Total(), res.Energy, res.Delay, opt.Objective)
	return res
}

// Score computes MC^alpha * E^beta * D^gamma.
func Score(mc, e, d float64, o Objective) float64 {
	return math.Pow(mc, o.Alpha) * math.Pow(e, o.Beta) * math.Pow(d, o.Gamma)
}

// Best returns the first feasible result, or nil.
func Best(results []CandidateResult) *CandidateResult {
	for i := range results {
		if results[i].Feasible {
			return &results[i]
		}
	}
	return nil
}

// WriteCSV emits the result table in the artifact's result.csv style.
func WriteCSV(w io.Writer, results []CandidateResult) error {
	if _, err := fmt.Fprintln(w, "arch,chiplets,cores,dram_gbps,noc_gbps,d2d_gbps,glb_kb,macs,mc_usd,energy_j,delay_s,edp,objective,feasible"); err != nil {
		return err
	}
	for i := range results {
		r := &results[i]
		_, err := fmt.Fprintf(w, "%q,%d,%d,%.0f,%.0f,%.0f,%d,%d,%.3f,%.6g,%.6g,%.6g,%.6g,%t\n",
			r.Cfg.Name, r.Cfg.Chiplets(), r.Cfg.Cores(), r.Cfg.DRAMBW, r.Cfg.NoCBW, r.Cfg.D2DBW,
			r.Cfg.GLBPerCore/arch.KB, r.Cfg.MACsPerCore,
			r.MC.Total(), r.Energy, r.Delay, r.EDP(), r.Obj, r.Feasible)
		if err != nil {
			return err
		}
	}
	return nil
}

// JointResult is the Sec. VII-B multi-accelerator chiplet-reuse outcome for
// one base (lowest-TOPs) candidate.
type JointResult struct {
	Base     arch.Config
	Scaled   []CandidateResult // one per target factor, including factor 1
	Product  float64           // product of MC*E*D over all accelerators
	Feasible bool
}

// JointRun explores chiplet reuse: each base candidate's chiplet is
// replicated to build accelerators at every factor in factors (1 = the base
// itself), and candidates are ranked by the product of their objectives
// (paper Sec. VII-B "Joint Optimal").
func JointRun(bases []arch.Config, factors []int, models []*dnn.Graph, opt Options) []JointResult {
	out := make([]JointResult, 0, len(bases))
	mce := cost.New()
	for i := range bases {
		jr := JointResult{Base: bases[i], Feasible: true, Product: 1}
		for _, f := range factors {
			scaled, err := ScaleUp(bases[i], f)
			if err != nil {
				jr.Feasible = false
				break
			}
			cr := evaluateCandidate(&scaled, models, mce, opt)
			jr.Scaled = append(jr.Scaled, cr)
			if !cr.Feasible {
				jr.Feasible = false
				break
			}
			jr.Product *= cr.Obj
		}
		if !jr.Feasible {
			jr.Product = math.Inf(1)
		}
		out = append(out, jr)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Product < out[b].Product })
	return out
}
