package dse

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"gemini/internal/arch"
	"gemini/internal/cost"
	"gemini/internal/dnn"
	"gemini/internal/eval"
	"gemini/internal/graphpart"
	"gemini/internal/sa"
)

// Objective holds the DSE exponents of MC^alpha * E^beta * D^gamma
// (paper Sec. V-A). The default DSE objective is MC*E*D.
type Objective struct {
	Alpha, Beta, Gamma float64
}

// MCED is the paper's default DSE objective.
var MCED = Objective{1, 1, 1}

// Options configures a DSE run.
type Options struct {
	Objective Objective
	Batch     int
	// SAIterations per (candidate, DNN) mapping search.
	SAIterations int
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	Seed    int64
	// MaxGroupLayers and BatchUnits forward to the graph partitioner.
	MaxGroupLayers int
	BatchUnits     []int
}

// DefaultOptions returns throughput-scenario settings (batch 64, Sec. VI-A1).
func DefaultOptions() Options {
	return Options{
		Objective:    MCED,
		Batch:        64,
		SAIterations: 600,
		Seed:         1,
		BatchUnits:   []int{1, 2, 4, 8},
	}
}

// MapResult is the outcome of mapping one DNN onto one architecture.
type MapResult struct {
	Model             string
	Energy            float64 // joules
	Delay             float64 // seconds
	Eval              eval.Result
	SA                sa.Result
	Groups            int
	AvgLayersPerGroup float64
}

// MapModel runs the full Mapping Engine pipeline for one DNN on one
// architecture: DP graph partition, then SA refinement of the LP SPM.
func MapModel(cfg *arch.Config, g *dnn.Graph, opt Options) (*MapResult, error) {
	ev := eval.New(cfg)
	gp := graphpart.DefaultOptions()
	gp.Beta, gp.Gamma = opt.Objective.Beta, opt.Objective.Gamma
	if opt.MaxGroupLayers > 0 {
		gp.MaxGroupLayers = opt.MaxGroupLayers
	}
	if len(opt.BatchUnits) > 0 {
		gp.BatchUnits = opt.BatchUnits
	}
	part, err := graphpart.Partition(g, cfg, ev, opt.Batch, gp)
	if err != nil {
		return nil, err
	}
	so := sa.DefaultOptions()
	so.Iterations = opt.SAIterations
	so.Seed = opt.Seed
	so.Beta, so.Gamma = opt.Objective.Beta, opt.Objective.Gamma
	res := sa.Optimize(part.Scheme, ev, so)
	if !res.Eval.Feasible {
		return nil, fmt.Errorf("dse: no feasible mapping for %s on %s", g.Name, cfg.Name)
	}
	return &MapResult{
		Model:             g.Name,
		Energy:            res.Eval.Energy.Total(),
		Delay:             res.Eval.Delay,
		Eval:              res.Eval,
		SA:                res,
		Groups:            len(res.Scheme.Groups),
		AvgLayersPerGroup: eval.AvgLayersPerGroup(res.Scheme),
	}, nil
}

// CandidateResult is one architecture candidate's DSE evaluation.
type CandidateResult struct {
	Cfg      arch.Config
	MC       cost.Breakdown
	Energy   float64 // geometric mean over DNNs (J)
	Delay    float64 // geometric mean over DNNs (s)
	Obj      float64
	Feasible bool
	PerModel []*MapResult
}

// EDP returns the candidate's energy-delay product.
func (c *CandidateResult) EDP() float64 { return c.Energy * c.Delay }

// Run explores every candidate and returns results sorted by ascending
// objective (infeasible candidates last). Work is scheduled at (candidate,
// model) granularity over a bounded worker pool, so all cores stay busy even
// when one candidate's mapping search dominates the tail.
func Run(cands []arch.Config, models []*dnn.Graph, opt Options) []CandidateResult {
	mce := cost.New()
	per := runPairs(cands, models, opt)
	results := make([]CandidateResult, len(cands))
	for i := range cands {
		results[i] = reduceCandidate(&cands[i], per[i], models, mce, opt)
	}
	sort.Slice(results, func(a, b int) bool {
		ra, rb := results[a], results[b]
		if ra.Feasible != rb.Feasible {
			return ra.Feasible
		}
		if ra.Obj != rb.Obj {
			return ra.Obj < rb.Obj
		}
		return ra.Cfg.Name < rb.Cfg.Name
	})
	return results
}

// runPairs maps every model onto every candidate on a bounded worker pool —
// at most opt.Workers (default GOMAXPROCS) goroutines total, fed from a task
// channel rather than one goroutine per candidate. out[ci][mi] is nil when
// the mapping was infeasible.
func runPairs(cands []arch.Config, models []*dnn.Graph, opt Options) [][]*MapResult {
	out := make([][]*MapResult, len(cands))
	for i := range out {
		out[i] = make([]*MapResult, len(models))
	}
	total := len(cands) * len(models)
	if total == 0 {
		return out
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	tasks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range tasks {
				ci, mi := k/len(models), k%len(models)
				if mr, err := MapModel(&cands[ci], models[mi], opt); err == nil {
					out[ci][mi] = mr
				}
			}
		}()
	}
	for k := 0; k < total; k++ {
		tasks <- k
	}
	close(tasks)
	wg.Wait()
	return out
}

// reduceCandidate folds one candidate's per-model mappings into its DSE
// result (geometric-mean energy/delay, MC^alpha E^beta D^gamma objective).
// A candidate with any infeasible model is infeasible and publishes no
// per-model results.
func reduceCandidate(cfg *arch.Config, per []*MapResult, models []*dnn.Graph, mce *cost.Evaluator, opt Options) CandidateResult {
	res := CandidateResult{Cfg: *cfg, MC: mce.Evaluate(cfg)}
	prodE, prodD := 1.0, 1.0
	for _, mr := range per {
		if mr == nil {
			res.Feasible = false
			res.Obj = math.Inf(1)
			res.PerModel = nil
			return res
		}
		res.PerModel = append(res.PerModel, mr)
		prodE *= mr.Energy
		prodD *= mr.Delay
	}
	n := float64(len(models))
	if n == 0 {
		res.Obj = math.Inf(1)
		return res
	}
	res.Energy = math.Pow(prodE, 1/n)
	res.Delay = math.Pow(prodD, 1/n)
	res.Feasible = true
	res.Obj = Score(res.MC.Total(), res.Energy, res.Delay, opt.Objective)
	return res
}

// Score computes MC^alpha * E^beta * D^gamma.
func Score(mc, e, d float64, o Objective) float64 {
	return math.Pow(mc, o.Alpha) * math.Pow(e, o.Beta) * math.Pow(d, o.Gamma)
}

// Best returns the first feasible result, or nil.
func Best(results []CandidateResult) *CandidateResult {
	for i := range results {
		if results[i].Feasible {
			return &results[i]
		}
	}
	return nil
}

// WriteCSV emits the result table in the artifact's result.csv style.
func WriteCSV(w io.Writer, results []CandidateResult) error {
	if _, err := fmt.Fprintln(w, "arch,chiplets,cores,dram_gbps,noc_gbps,d2d_gbps,glb_kb,macs,mc_usd,energy_j,delay_s,edp,objective,feasible"); err != nil {
		return err
	}
	for i := range results {
		r := &results[i]
		_, err := fmt.Fprintf(w, "%q,%d,%d,%.0f,%.0f,%.0f,%d,%d,%.3f,%.6g,%.6g,%.6g,%.6g,%t\n",
			r.Cfg.Name, r.Cfg.Chiplets(), r.Cfg.Cores(), r.Cfg.DRAMBW, r.Cfg.NoCBW, r.Cfg.D2DBW,
			r.Cfg.GLBPerCore/arch.KB, r.Cfg.MACsPerCore,
			r.MC.Total(), r.Energy, r.Delay, r.EDP(), r.Obj, r.Feasible)
		if err != nil {
			return err
		}
	}
	return nil
}

// JointResult is the Sec. VII-B multi-accelerator chiplet-reuse outcome for
// one base (lowest-TOPs) candidate.
type JointResult struct {
	Base     arch.Config
	Scaled   []CandidateResult // one per target factor, including factor 1
	Product  float64           // product of MC*E*D over all accelerators
	Feasible bool
}

// JointRun explores chiplet reuse: each base candidate's chiplet is
// replicated to build accelerators at every factor in factors (1 = the base
// itself), and candidates are ranked by the product of their objectives
// (paper Sec. VII-B "Joint Optimal"). All scalable (base, factor, model)
// combinations are mapped concurrently on one bounded worker pool; the
// results are then folded per base with the same early-stop semantics as a
// serial sweep (factors after the first unscalable one are not reported).
func JointRun(bases []arch.Config, factors []int, models []*dnn.Graph, opt Options) []JointResult {
	// Flatten every (base, factor) that scales into one candidate list.
	flatIdx := make([][]int, len(bases))
	var flat []arch.Config
	for bi := range bases {
		flatIdx[bi] = make([]int, 0, len(factors))
		for _, f := range factors {
			scaled, err := ScaleUp(bases[bi], f)
			if err != nil {
				flatIdx[bi] = append(flatIdx[bi], -1)
				break
			}
			flatIdx[bi] = append(flatIdx[bi], len(flat))
			flat = append(flat, scaled)
		}
	}

	mce := cost.New()
	per := runPairs(flat, models, opt)
	crs := make([]CandidateResult, len(flat))
	for i := range flat {
		crs[i] = reduceCandidate(&flat[i], per[i], models, mce, opt)
	}

	out := make([]JointResult, 0, len(bases))
	for bi := range bases {
		jr := JointResult{Base: bases[bi], Feasible: true, Product: 1}
		for _, k := range flatIdx[bi] {
			if k < 0 {
				jr.Feasible = false
				break
			}
			jr.Scaled = append(jr.Scaled, crs[k])
			if !crs[k].Feasible {
				jr.Feasible = false
				break
			}
			jr.Product *= crs[k].Obj
		}
		if !jr.Feasible {
			jr.Product = math.Inf(1)
		}
		out = append(out, jr)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Product < out[b].Product })
	return out
}
