package dse

import "testing"

func TestCoresForCutFriendly(t *testing.T) {
	// 128 TOPs @ 1024 MACs: 62.5 ideal -> 64 (8x8) so cuts 2/4/8 divide.
	if got := Space128().CoresFor(1024); got != 64 {
		t.Errorf("128T@1024 cores = %d, want 64", got)
	}
	if got := Space128().CoresFor(2048); got != 32 {
		t.Errorf("128T@2048 cores = %d, want 32", got)
	}
	if got := Space512().CoresFor(4096); got != 64 {
		t.Errorf("512T@4096 cores = %d, want 64", got)
	}
	// The paper's 72 TOPs arrangements survive the bonus.
	sp := Space72()
	for macs, want := range map[int]int{1024: 36, 2048: 18, 4096: 9, 512: 72} {
		if got := sp.CoresFor(macs); got != want {
			t.Errorf("72T@%d cores = %d, want %d", macs, got, want)
		}
	}
}
