package dse

import (
	"math"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

func TestScoreObjectives(t *testing.T) {
	mc, e, d := 30.0, 0.1, 0.01
	cases := []struct {
		o    Objective
		want float64
	}{
		{Objective{1, 1, 1}, 30 * 0.1 * 0.01},
		{Objective{0, 1, 1}, 0.1 * 0.01},
		{Objective{1, 0, 1}, 30 * 0.01},
		{Objective{1, 1, 0}, 30 * 0.1},
		{Objective{2, 1, 1}, 900 * 0.1 * 0.01},
	}
	for _, c := range cases {
		if got := Score(mc, e, d, c.o); math.Abs(got-c.want) > c.want*1e-12 {
			t.Errorf("Score(%+v) = %v, want %v", c.o, got, c.want)
		}
	}
}

func TestObjectiveChangesWinner(t *testing.T) {
	// A cheap slow arch and an expensive fast arch: MC-heavy objectives
	// pick the former, delay-heavy the latter. Bandwidth drives both the
	// delay gap (tiny models are communication-bound) and the cost gap
	// (NoC area, DRAM dies).
	cheap := arch.GArch72()
	cheap.NoCBW, cheap.D2DBW, cheap.DRAMBW = 4, 2, 64
	cheap.Name = "zcheap" // alphabetically last: ties cannot favor it
	fast := arch.GArch72()
	fast.NoCBW, fast.D2DBW, fast.DRAMBW = 128, 64, 288
	fast.Name = "fast"
	models := []*dnn.Graph{dnn.TinyCNN()}

	run := func(o Objective) string {
		opt := testOptions()
		opt.Objective = o
		rs := Run([]arch.Config{cheap, fast}, models, opt)
		b := Best(rs)
		if b == nil {
			t.Fatal("no feasible result")
		}
		return b.Cfg.Name
	}
	mcWinner := run(Objective{Alpha: 4, Beta: 0, Gamma: 0.1})
	dWinner := run(Objective{Alpha: 0, Beta: 0, Gamma: 1})
	if mcWinner != "zcheap" {
		t.Errorf("MC-heavy objective picked %s", mcWinner)
	}
	if dWinner != "fast" {
		t.Errorf("delay objective picked %s", dWinner)
	}
}

func TestGeometricMeanAggregation(t *testing.T) {
	cfg := arch.GArch72()
	models := []*dnn.Graph{dnn.TinyCNN(), dnn.TinyTransformer()}
	rs := Run([]arch.Config{cfg}, models, testOptions())
	if len(rs) != 1 || !rs[0].Feasible {
		t.Fatal("run failed")
	}
	r := rs[0]
	if len(r.PerModel) != 2 {
		t.Fatalf("per-model results = %d", len(r.PerModel))
	}
	wantE := math.Sqrt(r.PerModel[0].Energy * r.PerModel[1].Energy)
	wantD := math.Sqrt(r.PerModel[0].Delay * r.PerModel[1].Delay)
	if math.Abs(r.Energy-wantE) > wantE*1e-12 || math.Abs(r.Delay-wantD) > wantD*1e-12 {
		t.Errorf("geomean mismatch: %v/%v vs %v/%v", r.Energy, r.Delay, wantE, wantD)
	}
}

func TestRunInfeasibleCandidateRankedLast(t *testing.T) {
	ok := arch.GArch72()
	bad := arch.GArch72()
	bad.GLBPerCore = 512 // nothing fits
	bad.Name = "bad"
	rs := Run([]arch.Config{bad, ok}, []*dnn.Graph{dnn.TinyCNN()}, testOptions())
	if !rs[0].Feasible {
		t.Fatal("feasible candidate should sort first")
	}
	if rs[1].Feasible {
		t.Fatal("512-byte GLB should be infeasible")
	}
	if !math.IsInf(rs[1].Obj, 1) {
		t.Errorf("infeasible objective = %v", rs[1].Obj)
	}
}

func TestMapModelLatencyScenario(t *testing.T) {
	// Batch 1 (latency scenario, Sec. VI-A1) must work end to end.
	cfg := arch.GArch72()
	opt := testOptions()
	opt.Batch = 1
	mr, err := MapModel(&cfg, dnn.TinyCNN(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range mr.Eval.Groups {
		if gr.Passes != 1 {
			t.Errorf("batch 1 should give single-pass groups, got %d", gr.Passes)
		}
	}
}
