package dse

import (
	"math"
	"strings"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

func TestGridFor(t *testing.T) {
	cases := []struct{ cores, w, h int }{
		{36, 6, 6}, {18, 6, 3}, {9, 3, 3}, {70, 10, 7}, {1, 1, 1}, {64, 8, 8}, {12, 4, 3},
	}
	for _, c := range cases {
		w, h := GridFor(c.cores)
		if w != c.w || h != c.h {
			t.Errorf("GridFor(%d) = %dx%d, want %dx%d", c.cores, w, h, c.w, c.h)
		}
		if w*h != c.cores {
			t.Errorf("GridFor(%d) loses cores", c.cores)
		}
	}
}

func TestCoresFor(t *testing.T) {
	sp := Space72()
	// Paper: 1024 MACs -> 36 cores (6x6); 2048 -> 18 (6x3); 4096 -> 9 (3x3).
	for macs, want := range map[int]int{1024: 36, 2048: 18, 4096: 9} {
		if got := sp.CoresFor(macs); got != want {
			t.Errorf("CoresFor(%d) = %d, want %d", macs, got, want)
		}
	}
}

func TestEnumerateValidates(t *testing.T) {
	sp := Space72().Reduced()
	cands := sp.Enumerate()
	if len(cands) == 0 {
		t.Fatal("empty candidate list")
	}
	for i := range cands {
		if err := cands[i].Validate(); err != nil {
			t.Errorf("candidate %s invalid: %v", cands[i].Name, err)
		}
		if tops := cands[i].TOPS(); math.Abs(tops-72) > 8 {
			t.Errorf("candidate %s TOPS = %.1f, want ~72", cands[i].Name, tops)
		}
	}
}

func TestEnumerateSkipsInvalidCuts(t *testing.T) {
	sp := Space72()
	sp.MACs = []int{2048} // 18 cores -> 6x3: YCut 6 invalid
	for _, c := range sp.Enumerate() {
		if c.CoresY%c.YCut != 0 || c.CoresX%c.XCut != 0 {
			t.Errorf("invalid cut survived: %s", c.Name)
		}
		if c.YCut == 6 {
			t.Errorf("YCut=6 should be invalid for 6x3 array")
		}
	}
}

func TestEnumerateDedupesMonolithicD2D(t *testing.T) {
	sp := Space72()
	sp.MACs = []int{1024}
	sp.DRAMPerTOPS = []float64{2}
	sp.NoCBWs = []float64{32}
	sp.GLBs = []int{1024 * arch.KB}
	mono := 0
	for _, c := range sp.Enumerate() {
		if c.Chiplets() == 1 {
			mono++
		}
	}
	if mono != 1 {
		t.Errorf("monolithic candidates = %d, want 1 (D2D ratio dedup)", mono)
	}
}

func TestScaleUp(t *testing.T) {
	base := arch.GArch72() // 6x6, 2x1 cuts
	quad, err := ScaleUp(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if quad.Cores() != 4*base.Cores() {
		t.Errorf("cores = %d, want %d", quad.Cores(), 4*base.Cores())
	}
	if quad.Chiplets() != 4*base.Chiplets() {
		t.Errorf("chiplets = %d, want %d", quad.Chiplets(), 4*base.Chiplets())
	}
	// Chiplet geometry is preserved: that is the whole point of reuse.
	if quad.ChipletW() != base.ChipletW() || quad.ChipletH() != base.ChipletH() {
		t.Error("chiplet geometry changed under scaling")
	}
	if quad.DRAMBW != 4*base.DRAMBW {
		t.Errorf("DRAM BW = %v, want %v", quad.DRAMBW, 4*base.DRAMBW)
	}
	if _, err := ScaleUp(base, 0); err == nil {
		t.Error("factor 0 should fail")
	}
	same, err := ScaleUp(base, 1)
	if err != nil || same.Cores() != base.Cores() {
		t.Error("factor 1 should be identity")
	}
}

func testOptions() Options {
	opt := DefaultOptions()
	opt.Batch = 4
	opt.SAIterations = 60
	opt.MaxGroupLayers = 7
	opt.BatchUnits = []int{1, 2}
	return opt
}

func TestMapModelPipeline(t *testing.T) {
	cfg := arch.GArch72()
	mr, err := MapModel(&cfg, dnn.TinyCNN(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mr.Energy <= 0 || mr.Delay <= 0 {
		t.Fatalf("degenerate mapping result: %+v", mr)
	}
	if mr.Groups < 1 || mr.AvgLayersPerGroup <= 0 {
		t.Errorf("group stats missing: %+v", mr)
	}
}

func TestRunRanksByObjective(t *testing.T) {
	cands := []arch.Config{arch.GArch72(), arch.Simba()}
	models := []*dnn.Graph{dnn.TinyCNN()}
	results := Run(cands, models, testOptions())
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Feasible && results[i].Feasible && results[i-1].Obj > results[i].Obj {
			t.Error("results not sorted by objective")
		}
	}
	best := Best(results)
	if best == nil {
		t.Fatal("no feasible candidate")
	}
	if got := Score(best.MC.Total(), best.Energy, best.Delay, MCED); math.Abs(got-best.Obj) > best.Obj*1e-9 {
		t.Errorf("objective mismatch: %v vs %v", got, best.Obj)
	}
}

func TestWriteCSV(t *testing.T) {
	cands := []arch.Config{arch.GArch72()}
	results := Run(cands, []*dnn.Graph{dnn.TinyCNN()}, testOptions())
	var sb strings.Builder
	if err := WriteCSV(&sb, results); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "arch,chiplets") {
		t.Error("missing header")
	}
	if strings.Count(out, "\n") != len(results)+1 {
		t.Errorf("row count mismatch:\n%s", out)
	}
	if !strings.Contains(out, "true") {
		t.Error("no feasible row serialized")
	}
}

func TestJointRun(t *testing.T) {
	bases := []arch.Config{arch.GArch72()}
	models := []*dnn.Graph{dnn.TinyCNN()}
	res := JointRun(bases, []int{1, 4}, models, testOptions())
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	jr := res[0]
	if !jr.Feasible {
		t.Fatal("joint result infeasible")
	}
	if len(jr.Scaled) != 2 {
		t.Fatalf("scaled results = %d", len(jr.Scaled))
	}
	wantProduct := jr.Scaled[0].Obj * jr.Scaled[1].Obj
	if math.Abs(jr.Product-wantProduct) > wantProduct*1e-9 {
		t.Errorf("product = %v, want %v", jr.Product, wantProduct)
	}
}

func TestSpaceSizesRoughlyTableI(t *testing.T) {
	// The full 72 TOPs grid should be in the thousands of candidates after
	// validity filtering — the scale the paper's 38-minute DSE implies.
	n := len(Space72().Enumerate())
	if n < 1000 || n > 50000 {
		t.Errorf("72 TOPs candidates = %d, expected thousands", n)
	}
	if rn := len(Space72().Reduced().Enumerate()); rn >= n || rn == 0 {
		t.Errorf("reduced space = %d, full = %d", rn, n)
	}
}
