package dse

import (
	"bytes"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

// racingCands returns four structurally distinct candidates spanning a wide
// quality range, so a race has something to eliminate.
func racingCands(t *testing.T) []arch.Config {
	t.Helper()
	a := arch.GArch72()
	b := arch.GArch72()
	b.NoCBW, b.D2DBW = 64, 32
	b.Name = b.String()
	c := arch.GArch72()
	c.DRAMBW = 64
	c.Name = c.String()
	d, err := ScaleUp(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []arch.Config{a, b, c, d}
}

// TestRacingFingerprintExcluded pins the checkpoint-compatibility claim:
// Racing and RacingKeep re-allocate restart budget across candidates but
// never change which seeds a restart index anneals with, so they must not
// move cells to a different fingerprint — racing and uniform sweeps share
// (and extend) each other's checkpoints.
func TestRacingFingerprintExcluded(t *testing.T) {
	a := testOptions()
	b := a
	b.Racing = true
	b.RacingKeep = 0.25
	b.OnRung = func(RungStats) {}
	if optsFingerprint(a) != optsFingerprint(b) {
		t.Error("Racing/RacingKeep/OnRung changed the options fingerprint")
	}
	// Racing forces Patience off before fingerprinting, so a racing sweep
	// with a stray Patience still lands on the uniform sweep's cells.
	c := b
	c.Patience = 2
	c.Restarts = 8
	u := a
	u.Restarts = 8
	ses := NewSession()
	sc := ses.newScheduler(t.Context(), nil, nil, c)
	if sc.optFP != optsFingerprint(u) {
		t.Error("racing scheduler did not normalize Patience out of the fingerprint")
	}
}

// TestRacingBudgets pins the rung schedule: doubling cumulative widths,
// deduplicated and terminated at the full portfolio width.
func TestRacingBudgets(t *testing.T) {
	cases := []struct {
		r    int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{3, []int{1, 2, 3}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
	}
	for _, c := range cases {
		got := racingBudgets(c.r)
		if len(got) != len(c.want) {
			t.Fatalf("racingBudgets(%d) = %v, want %v", c.r, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("racingBudgets(%d) = %v, want %v", c.r, got, c.want)
			}
		}
	}
}

// TestRacingWinnerMatchesUniform pins the tentpole's identical-best claim:
// with pruning off, the racing sweep's finalists run the full portfolio
// width, so the best candidate must be bit-identical to the uniform sweep's
// best — racing may only cheapen the losers, never change the winner.
func TestRacingWinnerMatchesUniform(t *testing.T) {
	cands := racingCands(t)
	models := []*dnn.Graph{testCNN, testTF}
	opt := testOptions()
	opt.Prune = false
	opt.Restarts = 4

	uniform := NewSession().Run(cands, models, opt)

	ropt := opt
	ropt.Racing = true
	var rungs []RungStats
	ropt.OnRung = func(rs RungStats) { rungs = append(rungs, rs) }
	ses := NewSession()
	racing := ses.Run(cands, models, ropt)

	ub, rb := Best(uniform), Best(racing)
	if ub == nil || rb == nil {
		t.Fatal("no feasible best")
	}
	if ub.Cfg.Name != rb.Cfg.Name || ub.Obj != rb.Obj || ub.Energy != rb.Energy || ub.Delay != rb.Delay {
		t.Errorf("racing best (%s, %v) != uniform best (%s, %v)", rb.Cfg.Name, rb.Obj, ub.Cfg.Name, ub.Obj)
	}

	st := ses.LastSweepStats()
	if !st.Racing {
		t.Error("stats did not mark the sweep as racing")
	}
	if len(st.Rungs) == 0 || len(rungs) != len(st.Rungs) {
		t.Fatalf("rung records: OnRung saw %d, stats %d", len(rungs), len(st.Rungs))
	}
	// Budgets double to the full width; survivors never increase and the
	// exploratory rung admits everyone.
	last := st.Rungs[len(st.Rungs)-1]
	if st.Rungs[0].Budget != 1 || st.Rungs[0].Candidates != len(cands) || last.Budget != opt.Restarts {
		t.Errorf("rung schedule %+v does not span width 1..%d over %d candidates", st.Rungs, opt.Restarts, len(cands))
	}
	for i := 1; i < len(st.Rungs); i++ {
		if st.Rungs[i].Candidates != st.Rungs[i-1].Survivors {
			t.Errorf("rung %d admitted %d candidates, previous rung promoted %d",
				i, st.Rungs[i].Candidates, st.Rungs[i-1].Survivors)
		}
		if st.Rungs[i].Budget <= st.Rungs[i-1].Budget {
			t.Errorf("rung budgets not increasing: %+v", st.Rungs)
		}
	}

	// Eliminated candidates carry real partial-width results, never Pruned:
	// strictly fewer restarts than the finalists, but real energies.
	widths := map[string]int{}
	for i := range racing {
		cr := &racing[i]
		if cr.Pruned {
			t.Errorf("%s marked Pruned in an unpruned racing sweep", cr.Cfg.Name)
		}
		if !cr.Feasible {
			continue
		}
		for _, mr := range cr.PerModel {
			if mr != nil {
				widths[cr.Cfg.Name] = mr.Restarts
			}
		}
	}
	if widths[rb.Cfg.Name] != opt.Restarts {
		t.Errorf("winner settled at width %d, want full %d", widths[rb.Cfg.Name], opt.Restarts)
	}
	saved := false
	for name, w := range widths {
		if w < opt.Restarts {
			saved = true
		} else if name != rb.Cfg.Name && w > opt.Restarts {
			t.Errorf("%s settled beyond the full width: %d", name, w)
		}
	}
	if !saved {
		t.Error("no candidate was eliminated early; the race saved nothing")
	}
}

// TestRacingCheckpointReentry pins the re-entry rule end to end: cells a
// racing sweep settled at partial widths re-enter a later uniform sweep at
// the width their stored restart count implies, run only the missing window,
// and fold to results bit-identical to a cold uniform sweep.
func TestRacingCheckpointReentry(t *testing.T) {
	cands := racingCands(t)
	models := []*dnn.Graph{testCNN}
	opt := testOptions()
	opt.Prune = false
	opt.Restarts = 4

	cold := NewSession().Run(cands, models, opt)

	ropt := opt
	ropt.Racing = true
	a := NewSession()
	a.Run(cands, models, ropt)
	var ckpt bytes.Buffer
	if err := a.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// The uniform resume must only anneal the missing restart windows: every
	// injected call carries from > 0 (the full-width finalist cells restore
	// without any call at all).
	windows := 0
	orig := mapModelFn
	mapModelFn = func(ev *eval.Evaluator, cfg *arch.Config, g *dnn.Graph, o Options, stop func() bool, from, to int) (*MapResult, error) {
		windows++
		if from <= 0 || to != opt.Restarts {
			t.Errorf("resumed sweep ran window [%d, %d); want partial re-entry to the full width %d", from, to, opt.Restarts)
		}
		return orig(ev, cfg, g, o, stop, from, to)
	}
	defer func() { mapModelFn = orig }()

	b := NewSession()
	if err := b.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := b.Run(cands, models, opt)
	resultsEqual(t, cold, got, "uniform resume over racing checkpoint")
	if windows == 0 {
		t.Error("no partial cell was widened; the race eliminated nobody")
	}
	if windows >= len(cands)*len(models) {
		t.Errorf("%d windows for %d cells; finalist cells should have restored without re-annealing",
			windows, len(cands)*len(models))
	}
}

// TestRacingSingleCandidate: a race with one candidate degenerates to the
// uniform sweep — every rung promotes the only survivor to the full width.
func TestRacingSingleCandidate(t *testing.T) {
	cands := []arch.Config{arch.GArch72()}
	models := []*dnn.Graph{testCNN}
	opt := testOptions()
	opt.Prune = false
	opt.Restarts = 3

	want := NewSession().Run(cands, models, opt)
	ropt := opt
	ropt.Racing = true
	got := NewSession().Run(cands, models, ropt)
	resultsEqual(t, want, got, "single-candidate race vs uniform")
}

// TestRacingKeepFraction: a harsher keep fraction eliminates more candidates
// per rung while a keep near 1 promotes everyone until the final rung.
func TestRacingKeepFraction(t *testing.T) {
	cands := racingCands(t)
	models := []*dnn.Graph{testCNN}
	opt := testOptions()
	opt.Prune = false
	opt.Restarts = 4
	opt.Racing = true

	harsh := opt
	harsh.RacingKeep = 0.26 // ceil(0.26*4) = 2, then ceil(0.26*2) = 1
	ses := NewSession()
	ses.Run(cands, models, harsh)
	hr := ses.LastSweepStats().Rungs
	if len(hr) == 0 || hr[0].Survivors != 2 {
		t.Fatalf("keep=0.26 rung 0 promoted %+v, want 2 of 4", hr)
	}

	lax := opt
	lax.RacingKeep = 0.99 // ceil(0.99*n) = n: nobody is eliminated
	ses2 := NewSession()
	lr := ses2.Run(cands, models, lax)
	want := NewSession().Run(cands, models, func() Options { o := opt; o.Racing = false; return o }())
	resultsEqual(t, want, lr, "keep~1 race vs uniform")
}
