package dse

import (
	"math/rand"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

// randomCandidate perturbs GArch72 into a random valid configuration,
// covering cuts, topologies, bandwidths and core resources.
func randomCandidate(rng *rand.Rand) arch.Config {
	cfg := arch.GArch72()
	cfg.NoCBW = float64(8 * (1 + rng.Intn(8)))
	cfg.D2DBW = float64(4 * (1 + rng.Intn(8)))
	cfg.DRAMBW = float64(32 * (1 + rng.Intn(8)))
	cfg.GLBPerCore = []int{512 * 1024, 1 * arch.MB, 2 * arch.MB}[rng.Intn(3)]
	cfg.MACsPerCore = []int{256, 512, 1024}[rng.Intn(3)]
	cfg.FreqGHz = []float64{0.5, 1, 2}[rng.Intn(3)]
	cfg.XCut = 1 + rng.Intn(3) // 6x6 cores: 1, 2 and 3 all divide
	cfg.YCut = 1 + rng.Intn(3)
	if rng.Intn(2) == 1 {
		cfg.Topology = arch.FoldedTorus
	}
	cfg.Name = cfg.String()
	return cfg
}

// TestBoundSoundnessRandomized is the property test behind pruning: for
// randomized candidates, models and batch options, the energy/delay lower
// bounds must never exceed what the real mapping pipeline achieves. A
// violation here means pruning can discard the true optimum.
func TestBoundSoundnessRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	models := []*dnn.Graph{
		testCNN,
		testTF,
		dnn.Synth(11, dnn.DefaultSynthParams()),
		dnn.Synth(42, dnn.SynthParams{Layers: 9, MaxChannels: 48, Spatial: 24, ResidualProb: 0.5, BranchProb: 0.5}),
	}
	optVariants := []Options{
		func() Options { o := testOptions(); return o }(),
		func() Options {
			o := testOptions()
			o.Batch = 8
			o.BatchUnits = []int{1, 2, 4}
			return o
		}(),
		func() Options {
			o := testOptions()
			o.Batch = 3
			o.BatchUnits = []int{1}
			o.SAIterations = 40
			return o
		}(),
	}
	p := eval.DefaultParams()
	checked := 0
	for i := 0; i < 6; i++ {
		cfg := randomCandidate(rng)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("generated invalid candidate: %v", err)
		}
		g := models[i%len(models)]
		opt := optVariants[i%len(optVariants)]
		opt.Seed = int64(i + 1)
		eLB, dLB := lowerBoundED(&cfg, g, &p, opt)
		if eLB <= 0 || dLB <= 0 {
			t.Fatalf("%s/%s: degenerate bounds e=%v d=%v", cfg.Name, g.Name, eLB, dLB)
		}
		mr, err := MapModel(&cfg, g, opt)
		if err != nil {
			continue // infeasible pair: nothing to bound
		}
		checked++
		if eLB > mr.Energy {
			t.Errorf("%s/%s: energy bound %v exceeds achieved %v", cfg.Name, g.Name, eLB, mr.Energy)
		}
		if dLB > mr.Delay {
			t.Errorf("%s/%s: delay bound %v exceeds achieved %v", cfg.Name, g.Name, dLB, mr.Delay)
		}
		// The v2 bound must dominate (be at least as tight as) the v1 bound:
		// it only adds non-negative compulsory terms.
		v1 := opt
		v1.Bound = BoundComputeDRAM
		e1, d1 := lowerBoundED(&cfg, g, &p, v1)
		if eLB < e1 || dLB < d1 {
			t.Errorf("%s/%s: compulsory bound (%v, %v) below compute-dram bound (%v, %v)",
				cfg.Name, g.Name, eLB, dLB, e1, d1)
		}
		// The v3 per-cut bisection bound must also stay below the achieved
		// outcome, and dominate the compulsory bound it extends.
		v3 := opt
		v3.Bound = BoundCut
		e3, d3 := lowerBoundED(&cfg, g, &p, v3)
		if e3 > mr.Energy {
			t.Errorf("%s/%s: cut energy bound %v exceeds achieved %v", cfg.Name, g.Name, e3, mr.Energy)
		}
		if d3 > mr.Delay {
			t.Errorf("%s/%s: cut delay bound %v exceeds achieved %v", cfg.Name, g.Name, d3, mr.Delay)
		}
		if e3 < eLB || d3 < dLB {
			t.Errorf("%s/%s: cut bound (%v, %v) below compulsory bound (%v, %v)",
				cfg.Name, g.Name, e3, d3, eLB, dLB)
		}
	}
	if checked == 0 {
		t.Fatal("no feasible pair was checked; the property test is vacuous")
	}
}

// TestBoundGLBStreamingExcess: a single layer whose weights exceed the
// aggregate GLB must stream its excess on every pass, so the bound rises
// with the capacity term — and must still lie below the mapped outcome.
func TestBoundGLBStreamingExcess(t *testing.T) {
	cfg := arch.GArch72() // 36 cores x 2 MB = 72 MB aggregate GLB
	b := dnn.NewBuilder("bigfc")
	in := b.Input(1, 1, 16384)
	b.FC("fc", in, 8192) // 16384x8192 = 128 MB of weights
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	opt := testOptions()
	opt.Batch = 8
	opt.BatchUnits = []int{1, 2} // >= 4 passes, excess streams >= 3 extra times
	p := eval.DefaultParams()
	eLB, dLB := lowerBoundED(&cfg, g, &p, opt)

	v1 := opt
	v1.Bound = BoundComputeDRAM
	e1, d1 := lowerBoundED(&cfg, g, &p, v1)
	// weights alone: 128 MB; excess (128-72) MB streams on >= 3 more passes,
	// so the v2 DRAM floor must clearly exceed the load-once floor.
	if eLB <= e1 || dLB <= d1 {
		t.Fatalf("capacity term missing: v2 (%v, %v) vs v1 (%v, %v)", eLB, dLB, e1, d1)
	}

	mr, err := MapModel(&cfg, g, opt)
	if err != nil {
		t.Fatalf("big-FC model unexpectedly unmappable: %v", err)
	}
	if eLB > mr.Energy || dLB > mr.Delay {
		t.Fatalf("bound (%v, %v) exceeds achieved (%v, %v)", eLB, dLB, mr.Energy, mr.Delay)
	}
}

// TestCoveredDim pins the gap-aware window cover against brute force.
func TestCoveredDim(t *testing.T) {
	brute := func(n, k, stride, pad, src int) int {
		if stride <= 0 {
			stride = 1
		}
		if k < 1 {
			k = 1
		}
		seen := make(map[int]bool)
		for o := 0; o < n; o++ {
			for x := o*stride - pad; x < o*stride-pad+k; x++ {
				if x >= 0 && x < src {
					seen[x] = true
				}
			}
		}
		return len(seen)
	}
	cases := [][5]int{
		{56, 3, 1, 1, 56},  // dense conv
		{28, 1, 2, 0, 56},  // strided 1x1 projection: every other row unread
		{28, 3, 2, 1, 56},  // strided 3x3
		{7, 2, 3, 0, 20},   // stride > kernel with tail clipping
		{5, 7, 1, 3, 5},    // kernel larger than input
		{1, 1, 1, 0, 1},    // degenerate
		{14, 3, 5, 2, 100}, // sparse windows inside a large input
	}
	for _, c := range cases {
		got := coveredDim(c[0], c[1], c[2], c[3], c[4])
		want := brute(c[0], c[1], c[2], c[3], c[4])
		if got != want {
			t.Errorf("coveredDim%v = %d, want %d", c, got, want)
		}
	}
}

// TestBoundCutTightensOnStarvedD2D: on a multi-chiplet candidate whose
// bisection bandwidth is far below the aggregate link sum, a model with one
// dominant weight channel must get a strictly tighter delay floor from the
// per-cut bound than from the compulsory aggregate — that gap is what the
// BenchmarkDSESweepCutBound pruning gate measures — while still bounding
// the real mapped outcome from below.
func TestBoundCutTightensOnStarvedD2D(t *testing.T) {
	cfg := arch.GArch72()
	cfg.D2DBW = 1 // 12 GB/s bisection vs 144 GB/s DRAM + ~3.8 TB/s link sum
	cfg.Name = cfg.String()
	b := dnn.NewBuilder("bigfc")
	in := b.Input(1, 1, 8192)
	b.FC("fc", in, 8192) // 64 MB: one dominant explicit weight flow
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := eval.DefaultParams()
	opt := testOptions()
	v3 := opt
	v3.Bound = BoundCut
	e2, d2 := lowerBoundED(&cfg, g, &p, opt)
	e3, d3 := lowerBoundED(&cfg, g, &p, v3)
	if d3 <= d2 {
		t.Errorf("cut delay bound did not tighten: v3 %v <= v2 %v", d3, d2)
	}
	if e3 != e2 {
		t.Errorf("cut bound changed the energy floor: v3 %v vs v2 %v", e3, e2)
	}
	mr, err := MapModel(&cfg, g, opt)
	if err != nil {
		t.Fatalf("dominant-FC model unexpectedly unmappable: %v", err)
	}
	if d3 > mr.Delay {
		t.Fatalf("cut bound %v exceeds achieved delay %v", d3, mr.Delay)
	}
}

// TestBoundTightensOrdering: on a memory-starved candidate the
// compulsory-traffic bound must be strictly tighter than the compute-DRAM
// bound (that gap is what buys the earlier pruning the benchmarks gate on).
func TestBoundTightensOrdering(t *testing.T) {
	cfg := arch.GArch72()
	cfg.DRAMBW = 32 // memory-bound: activation floors dominate
	cfg.Name = cfg.String()
	p := eval.DefaultParams()
	opt := testOptions()
	v1 := opt
	v1.Bound = BoundComputeDRAM
	e2, d2 := lowerBoundED(&cfg, testCNN, &p, opt)
	e1, d1 := lowerBoundED(&cfg, testCNN, &p, v1)
	if e2 <= e1 {
		t.Errorf("energy bound did not tighten: v2 %v <= v1 %v", e2, e1)
	}
	if d2 < d1 {
		t.Errorf("delay bound regressed: v2 %v < v1 %v", d2, d1)
	}
}
