// Sweep specs: the transport-level description of one DSE sweep. A Spec is
// what an HTTP client POSTs to the sweep service (internal/serve) and what
// the CLI could read from a file: it names a Table I candidate space (with
// optional list overrides for small or custom grids), a workload list, and
// the mapping options, all as plain JSON. Spec.Options, Spec.Candidates and
// Spec.Graphs resolve it into the in-memory types Session.RunContext
// consumes, so every front end shares one validation and defaulting path.
package dse

import (
	"fmt"
	"regexp"
	"time"

	"gemini/internal/arch"
	"gemini/internal/dnn"
)

// SpaceSpec selects an architecture candidate space in JSON form: a Table I
// base grid by TOPs, optionally reduced, with any of the per-dimension
// candidate lists overridden. Overrides make tiny smoke grids (one MAC
// count, one NoC bandwidth) and custom studies expressible without new
// code; an override replaces the base list wholesale.
type SpaceSpec struct {
	// TOPS selects the Table I base space: 72, 128 or 512.
	TOPS int `json:"tops"`
	// Reduced starts from the coarse representative sub-grid (Space.Reduced)
	// instead of the full Table I grid.
	Reduced bool `json:"reduced,omitempty"`

	// Cuts overrides the candidate XCut/YCut list.
	Cuts []int `json:"cuts,omitempty"`
	// DRAMPerTOPS overrides the DRAM GB/s-per-TOPs list.
	DRAMPerTOPS []float64 `json:"dram_per_tops,omitempty"`
	// NoCBWs overrides the NoC bandwidth (GB/s) list.
	NoCBWs []float64 `json:"noc_gbps,omitempty"`
	// D2DRatios overrides the D2D/NoC bandwidth ratio list.
	D2DRatios []float64 `json:"d2d_ratios,omitempty"`
	// GLBsKB overrides the per-core global-buffer list, in KB.
	GLBsKB []int `json:"glb_kb,omitempty"`
	// MACs overrides the MACs-per-core list.
	MACs []int `json:"macs,omitempty"`
}

// Space resolves the spec into a concrete candidate space.
func (sp SpaceSpec) Space() (Space, error) {
	var base Space
	switch sp.TOPS {
	case 72:
		base = Space72()
	case 128:
		base = Space128()
	case 512:
		base = Space512()
	default:
		return Space{}, fmt.Errorf("dse: unsupported space tops %d (want 72, 128 or 512)", sp.TOPS)
	}
	if sp.Reduced {
		base = base.Reduced()
	}
	if len(sp.Cuts) > 0 {
		base.Cuts = sp.Cuts
	}
	if len(sp.DRAMPerTOPS) > 0 {
		base.DRAMPerTOPS = sp.DRAMPerTOPS
	}
	if len(sp.NoCBWs) > 0 {
		base.NoCBWs = sp.NoCBWs
	}
	if len(sp.D2DRatios) > 0 {
		base.D2DRatios = sp.D2DRatios
	}
	if len(sp.GLBsKB) > 0 {
		glbs := make([]int, len(sp.GLBsKB))
		for i, kb := range sp.GLBsKB {
			if kb <= 0 {
				return Space{}, fmt.Errorf("dse: glb_kb[%d] = %d, want > 0", i, kb)
			}
			glbs[i] = kb * arch.KB
		}
		base.GLBs = glbs
	}
	if len(sp.MACs) > 0 {
		base.MACs = sp.MACs
	}
	return base, nil
}

// ObjectiveSpec is the JSON form of the MC^alpha * E^beta * D^gamma
// exponents. A nil *ObjectiveSpec in a Spec means the paper default MC*E*D.
type ObjectiveSpec struct {
	// Alpha is the monetary-cost exponent.
	Alpha float64 `json:"alpha"`
	// Beta is the energy exponent.
	Beta float64 `json:"beta"`
	// Gamma is the delay exponent.
	Gamma float64 `json:"gamma"`
}

// Spec is one sweep request in JSON form. Zero-valued optional fields take
// the DefaultOptions defaults, so the minimal useful spec is just a space
// and a model list. Validate checks the whole spec; Options, Candidates and
// Graphs resolve it (they assume a validated spec).
type Spec struct {
	// ID optionally names the sweep. The sweep service uses it to key
	// server-side checkpoints, so a client that re-POSTs a spec under the
	// same ID resumes instead of recomputing; empty means the server
	// assigns a fresh ID.
	ID string `json:"id,omitempty"`
	// Tenant names the submitting tenant for the sweep service's admission
	// control and fair-share dispatch; empty means the default tenant. The
	// mapping engine itself ignores it — which tenant paid for a cell can
	// never change the cell's bits.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the sweep's scheduling class at the sweep service:
	// "interactive" (the default) dispatches ahead of "batch", and only
	// batch sweeps are preemptible. Like Tenant it never reaches the
	// mapping engine.
	Priority string `json:"priority,omitempty"`
	// Space selects the candidate grid.
	Space SpaceSpec `json:"space"`
	// Models lists the workloads (dnn.Model names) mapped on every
	// candidate.
	Models []string `json:"models"`

	// Batch is the inference batch size (default 64, the paper's
	// throughput scenario).
	Batch int `json:"batch,omitempty"`
	// SAIterations is the annealing length per (candidate, model) mapping
	// (default 600).
	SAIterations int `json:"sa_iterations,omitempty"`
	// Restarts is the SA portfolio width per cell (default 1).
	Restarts int `json:"restarts,omitempty"`
	// Patience stops a cell's portfolio after this many consecutive
	// non-improving restarts (0 = fixed schedule).
	Patience int `json:"patience,omitempty"`
	// Workers bounds sweep parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Seed is the base SA seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// MaxGroupLayers forwards to the graph partitioner (0 = default).
	MaxGroupLayers int `json:"max_group_layers,omitempty"`
	// BatchUnits forwards the partitioner's batch-unit candidates
	// (default 1,2,4,8).
	BatchUnits []int `json:"batch_units,omitempty"`
	// Objective overrides the ranking exponents (nil = MC*E*D).
	Objective *ObjectiveSpec `json:"objective,omitempty"`
	// Prune enables bound-based candidate pruning.
	Prune bool `json:"prune,omitempty"`
	// Order is the dispatch order: "bound" (default) or "grid".
	Order string `json:"order,omitempty"`
	// Bound is the lower-bound formulation: "compulsory" (default),
	// "cut" (compulsory plus the per-cut bisection delay floor) or
	// "compute-dram" (the legacy compute+weight bound).
	Bound string `json:"bound,omitempty"`
	// Racing allocates restart budget by successive halving across
	// candidates instead of running every cell at the full width.
	Racing bool `json:"racing,omitempty"`
	// RacingKeep is the fraction of candidates promoted at each racing rung,
	// strictly inside (0, 1); 0 means the default 1/2.
	RacingKeep float64 `json:"racing_keep,omitempty"`
	// AbandonEvery is the in-loop abandonment stride (0 = engine default,
	// negative = between-restart checks only).
	AbandonEvery int `json:"abandon_every,omitempty"`
	// Retry bounds transient-failure retries per (candidate, model) cell
	// (nil = no retry, the pre-hardening behavior).
	Retry *RetrySpec `json:"retry,omitempty"`
	// CellTimeoutMS bounds one mapping attempt's wall time in milliseconds
	// (0 = no deadline). A timed-out attempt fails with a typed, retryable
	// cell error instead of stalling the sweep's worker pool.
	CellTimeoutMS int `json:"cell_timeout_ms,omitempty"`
	// Shard, when set, scopes the sweep to one shard of the candidate grid:
	// Candidates() keeps only every Count-th enumerated candidate starting
	// at Index, so Count shards of the same spec partition the full grid
	// exactly. Cell keys are unchanged — a shard's checkpoint merges into
	// (and is a subset of) the unsharded sweep's — which is what lets a
	// fleet coordinator fold worker checkpoints into the canonical file.
	// Shards are coordinator-assigned: the fleet submit endpoint rejects
	// client specs that carry one.
	Shard *ShardSpec `json:"shard,omitempty"`
}

// ShardSpec selects one modulo-slice of a spec's enumerated candidate grid.
type ShardSpec struct {
	// Index is the shard's position, in [0, Count).
	Index int `json:"index"`
	// Count is the total number of shards partitioning the grid.
	Count int `json:"count"`
}

// RetrySpec is the JSON form of RetryPolicy: retry counts and backoff in
// milliseconds, since JSON clients should not speak time.Duration.
type RetrySpec struct {
	// Max is the number of retries after the first attempt.
	Max int `json:"max"`
	// BaseDelayMS is the first backoff in milliseconds (0 = the engine
	// default, 10ms).
	BaseDelayMS int `json:"base_delay_ms,omitempty"`
	// MaxDelayMS caps the backoff in milliseconds (0 = the engine default,
	// 1000ms).
	MaxDelayMS int `json:"max_delay_ms,omitempty"`
}

// SweepPriority is a sweep's scheduling class at the sweep service.
type SweepPriority string

const (
	// PriorityInteractive is the default class: interactive sweeps dispatch
	// ahead of batch sweeps and are never preempted.
	PriorityInteractive SweepPriority = "interactive"
	// PriorityBatch marks throughput work: batch sweeps yield dispatch
	// priority to interactive ones and may be preempted (checkpointed and
	// later resumed) when an interactive sweep needs their worker slots.
	PriorityBatch SweepPriority = "batch"
)

// tenantPattern is the accepted tenant-name shape: short, path- and
// filename-safe, the same alphabet sweep ids use.
var tenantPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// maxSpecGrid bounds the raw cross product of a spec's dimension lists
// before cut-divisibility filtering. The full Table I grids sit around
// 2x10^4 combinations; anything past a million is a malformed or hostile
// spec, not an experiment.
const maxSpecGrid = 1 << 20

// Validate checks the spec without enumerating the space: space selection,
// model names, order keyword and numeric ranges. It returns the first
// problem found, phrased for an API client.
func (s *Spec) Validate() error {
	sp, err := s.Space.Space()
	if err != nil {
		return err
	}
	// Cap the dimension-list cross product before anything enumerates it:
	// Candidates() materializes the grid, and a hostile spec could otherwise
	// request an absurd one. Cuts counts twice (XCut x YCut); the product is
	// compared with overflow-safe division, never computed past the cap.
	grid := 1
	for _, n := range [...]int{
		len(sp.Cuts), len(sp.Cuts), len(sp.DRAMPerTOPS),
		len(sp.NoCBWs), len(sp.D2DRatios), len(sp.GLBs), len(sp.MACs),
	} {
		if n == 0 {
			continue
		}
		if grid > maxSpecGrid/n {
			return fmt.Errorf("dse: spec space exceeds %d raw grid combinations", maxSpecGrid)
		}
		grid *= n
	}
	if s.Tenant != "" && !tenantPattern.MatchString(s.Tenant) {
		return fmt.Errorf("dse: spec tenant %q: want %s", s.Tenant, tenantPattern)
	}
	switch SweepPriority(s.Priority) {
	case "", PriorityInteractive, PriorityBatch:
	default:
		return fmt.Errorf("dse: unsupported priority %q (want %q or %q)",
			s.Priority, PriorityInteractive, PriorityBatch)
	}
	if len(s.Models) == 0 {
		return fmt.Errorf("dse: spec has no models (have %v)", dnn.ModelNames())
	}
	for _, name := range s.Models {
		// Membership check only: building the graphs is deferred to
		// Graphs(), so rejecting a bad spec costs nothing.
		if !dnn.HasModel(name) {
			return fmt.Errorf("dse: unknown model %q (have %v)", name, dnn.ModelNames())
		}
	}
	switch SweepOrder(s.Order) {
	case "", OrderBound, OrderGrid:
	default:
		return fmt.Errorf("dse: unsupported order %q (want %q or %q)", s.Order, OrderBound, OrderGrid)
	}
	switch BoundLevel(s.Bound) {
	case "", BoundCompulsory, BoundComputeDRAM, BoundCut:
	default:
		return fmt.Errorf("dse: unsupported bound %q (want %q, %q or %q)",
			s.Bound, BoundCompulsory, BoundCut, BoundComputeDRAM)
	}
	if s.RacingKeep != 0 && (s.RacingKeep <= 0 || s.RacingKeep >= 1) {
		return fmt.Errorf("dse: spec racing_keep = %v, want inside (0, 1)", s.RacingKeep)
	}
	for _, c := range [...]struct {
		name string
		v    int
	}{
		{"batch", s.Batch}, {"sa_iterations", s.SAIterations},
		{"restarts", s.Restarts}, {"patience", s.Patience},
		{"workers", s.Workers}, {"max_group_layers", s.MaxGroupLayers},
	} {
		if c.v < 0 {
			return fmt.Errorf("dse: spec %s = %d, want >= 0", c.name, c.v)
		}
	}
	if s.Seed < 0 {
		return fmt.Errorf("dse: spec seed = %d, want >= 0", s.Seed)
	}
	for i, bu := range s.BatchUnits {
		if bu <= 0 {
			return fmt.Errorf("dse: spec batch_units[%d] = %d, want > 0", i, bu)
		}
	}
	if r := s.Retry; r != nil && (r.Max < 0 || r.BaseDelayMS < 0 || r.MaxDelayMS < 0) {
		return fmt.Errorf("dse: spec retry fields must be >= 0, got %+v", *r)
	}
	if s.CellTimeoutMS < 0 {
		return fmt.Errorf("dse: spec cell_timeout_ms = %d, want >= 0", s.CellTimeoutMS)
	}
	if sh := s.Shard; sh != nil {
		if sh.Count < 1 {
			return fmt.Errorf("dse: spec shard count = %d, want >= 1", sh.Count)
		}
		if sh.Index < 0 || sh.Index >= sh.Count {
			return fmt.Errorf("dse: spec shard index = %d, want in [0, %d)", sh.Index, sh.Count)
		}
	}
	if o := s.Objective; o != nil && (o.Alpha < 0 || o.Beta < 0 || o.Gamma < 0) {
		// Negative exponents silently disable pruning and produce
		// non-monotone rankings; reject them at the API boundary rather
		// than surprise a service client.
		return fmt.Errorf("dse: spec objective exponents must be >= 0, got %+v", *o)
	}
	return nil
}

// specResolveExclusions records the Spec fields Options deliberately does
// not resolve: both are expanded by their own methods and keyed into cells
// separately, so forgetting a *new* transport field here would silently drop
// it — which is exactly what the fingerprintcomplete analyzer flags.
//
//gemini:fingerprint-exclude Spec
var specResolveExclusions = map[string]string{
	"Space":    "resolved by Candidates(); the architecture fingerprint keys each cell",
	"Models":   "resolved by Graphs(); the model name keys each cell",
	"Tenant":   "queueing identity consumed by the sweep service's admission control; the mapping engine never sees it",
	"Priority": "scheduling class consumed by the sweep service's dispatcher; it orders and preempts sweeps, never changes a cell",
	"Shard":    "resolved by Candidates() as a modulo slice of the enumeration; cell keys are shard-independent so shard checkpoints merge into the unsharded sweep's",
}

// Options resolves the spec's mapping options, applying the DefaultOptions
// defaults to zero-valued fields. The spec's ID becomes Options.SweepID.
// Every Spec field must be consumed here or accounted for in
// specResolveExclusions (enforced by the fingerprintcomplete analyzer).
//
//gemini:fingerprint-of Spec
func (s *Spec) Options() Options {
	opt := DefaultOptions()
	opt.SweepID = s.ID
	if s.Batch > 0 {
		opt.Batch = s.Batch
	}
	if s.SAIterations > 0 {
		opt.SAIterations = s.SAIterations
	}
	if s.Restarts > 0 {
		opt.Restarts = s.Restarts
	}
	opt.Patience = s.Patience
	opt.Workers = s.Workers
	if s.Seed > 0 {
		opt.Seed = s.Seed
	}
	opt.MaxGroupLayers = s.MaxGroupLayers
	if len(s.BatchUnits) > 0 {
		opt.BatchUnits = s.BatchUnits
	}
	if s.Objective != nil {
		opt.Objective = Objective{Alpha: s.Objective.Alpha, Beta: s.Objective.Beta, Gamma: s.Objective.Gamma}
	}
	opt.Prune = s.Prune
	if s.Order != "" {
		opt.Order = SweepOrder(s.Order)
	}
	if s.Bound != "" {
		opt.Bound = BoundLevel(s.Bound)
	}
	opt.Racing = s.Racing
	opt.RacingKeep = s.RacingKeep
	opt.AbandonEvery = s.AbandonEvery
	if r := s.Retry; r != nil {
		opt.Retry = RetryPolicy{
			Max:       r.Max,
			BaseDelay: time.Duration(r.BaseDelayMS) * time.Millisecond,
			MaxDelay:  time.Duration(r.MaxDelayMS) * time.Millisecond,
		}
	}
	opt.CellTimeout = time.Duration(s.CellTimeoutMS) * time.Millisecond
	return opt
}

// Candidates enumerates the spec's candidate space, then applies the shard
// slice when one is set: candidate i survives iff i % Count == Index, so
// the Count shards of a spec are disjoint and their union is exactly the
// unsharded enumeration. An empty result is an error: for an unsharded spec
// it means the overrides produced a grid with no buildable configuration;
// for a sharded one it means the coordinator cut more shards than there are
// candidates — a client should hear about either rather than receive an
// instantly-"complete" sweep.
func (s *Spec) Candidates() ([]arch.Config, error) {
	sp, err := s.Space.Space()
	if err != nil {
		return nil, err
	}
	cands := sp.Enumerate()
	if sh := s.Shard; sh != nil && sh.Count > 1 {
		kept := cands[:0]
		for i := range cands {
			if i%sh.Count == sh.Index {
				kept = append(kept, cands[i])
			}
		}
		cands = kept
	}
	if len(cands) == 0 {
		if s.Shard != nil {
			return nil, fmt.Errorf("dse: shard %d/%d of space %s selects no candidates",
				s.Shard.Index, s.Shard.Count, sp.Name)
		}
		return nil, fmt.Errorf("dse: space %s enumerates no valid candidates", sp.Name)
	}
	return cands, nil
}

// Graphs builds the spec's workload graphs.
func (s *Spec) Graphs() ([]*dnn.Graph, error) {
	out := make([]*dnn.Graph, 0, len(s.Models))
	for _, name := range s.Models {
		g, err := dnn.Model(name)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}
