package dse

import (
	"os"
	"path/filepath"
	"testing"

	"gemini/internal/dnn"
)

// TestDiskCacheRestartWarm simulates a killed-and-restarted process: a
// fresh session pointed at the predecessor's cache directory must recompute
// zero cached group evaluations (every lookup of the identical sweep hits),
// and its results must be bit-identical.
func TestDiskCacheRestartWarm(t *testing.T) {
	dir := t.TempDir()
	cands := testCands()
	models := []*dnn.Graph{testCNN, testTF}
	opt := testOptions()
	opt.CacheDir = dir

	first := NewSession()
	want := first.Run(cands, models, opt)
	if Best(want) == nil {
		t.Fatal("no feasible candidate")
	}
	if _, err := os.Stat(CachePath(dir)); err != nil {
		t.Fatalf("sweep left no cache spill: %v", err)
	}

	// "Restart": a brand-new session (new process stand-in) with the same
	// cache directory. The graphs are the same pointers here, but the disk
	// keys are content fingerprints — rebuilt graphs hash identically, which
	// TestGraphFingerprintStructural pins on the eval side.
	second := NewSession()
	got := second.Run(cands, models, opt)
	resultsEqual(t, want, got, "disk-warmed restart")

	st := second.CacheStats()
	if st.Misses != 0 {
		t.Errorf("restarted session recomputed %d group evaluations, want 0", st.Misses)
	}
	if st.DiskHits == 0 || st.DiskLoaded == 0 {
		t.Errorf("disk accounting empty after warm restart: %+v", st)
	}
}

// TestDiskCacheCorruptSpillDegradesToCold: a damaged spill file must not
// fail the sweep — it recomputes and rewrites the spill.
func TestDiskCacheCorruptSpillDegradesToCold(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(CachePath(dir), []byte("not a cache\n{..\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.CacheDir = dir
	ses := NewSession()
	rs := ses.Run(testCands(), []*dnn.Graph{testCNN}, opt)
	if Best(rs) == nil {
		t.Fatal("sweep with corrupt spill found no feasible candidate")
	}
	if st := ses.CacheStats(); st.DiskLoaded != 0 || st.Misses == 0 {
		t.Errorf("corrupt spill should load nothing and run cold: %+v", st)
	}
	// The sweep's saver must have replaced the corrupt file with a valid one.
	warm := NewSession()
	if n, err := warm.WarmDiskCache(dir); err != nil || n == 0 {
		t.Fatalf("rewritten spill unusable: n=%d err=%v", n, err)
	}
}

// TestWarmDiskCacheOncePerDir: the load is idempotent per (session, dir).
func TestWarmDiskCacheOncePerDir(t *testing.T) {
	dir := t.TempDir()
	opt := testOptions()
	opt.CacheDir = dir
	ses := NewSession()
	ses.Run(testCands()[:1], []*dnn.Graph{testCNN}, opt)

	other := NewSession()
	n1, err := other.WarmDiskCache(dir)
	if err != nil || n1 == 0 {
		t.Fatalf("first warm: n=%d err=%v", n1, err)
	}
	n2, err := other.WarmDiskCache(dir)
	if err != nil || n2 != 0 {
		t.Fatalf("second warm should be a no-op: n=%d err=%v", n2, err)
	}
}

// TestCacheDirExcludedFromCellFingerprint: pointing a sweep at a cache
// directory must keep hitting the same checkpoint cells (CacheDir only
// warms evaluations, it never renames results).
func TestCacheDirExcludedFromCellFingerprint(t *testing.T) {
	a := testOptions()
	b := testOptions()
	b.CacheDir = filepath.Join(t.TempDir(), "x")
	b.Bound = BoundComputeDRAM
	b.AbandonEvery = 7
	if optsFingerprint(a) != optsFingerprint(b) {
		t.Error("scheduling-only options leak into the cell fingerprint")
	}
}

// TestDiskCacheMultiSessionUnion pins the multi-writer durability fix: two
// sessions with distinct caches sharing one cache directory (a server's
// session pool) must converge on the union of their work — the
// last-finishing session's save must not discard the other's entries. A
// fresh "restarted" session must then replay either sweep with zero
// recomputed group evaluations.
func TestDiskCacheMultiSessionUnion(t *testing.T) {
	dir := t.TempDir()
	opt := testOptions()
	opt.CacheDir = dir
	cands := testCands()

	// Session A evaluates candidate 0, session B candidate 1 — disjoint
	// entry sets, saved to the same spill file in sequence.
	a := NewSession()
	if Best(a.Run(cands[:1], []*dnn.Graph{testCNN}, opt)) == nil {
		t.Fatal("sweep A infeasible")
	}
	b := NewSession()
	if Best(b.Run(cands[1:], []*dnn.Graph{testCNN}, opt)) == nil {
		t.Fatal("sweep B infeasible")
	}

	// The restarted process must warm both sweeps from the union.
	c := NewSession()
	opt.CacheDir = ""
	if n, err := c.WarmDiskCache(dir); err != nil || n == 0 {
		t.Fatalf("warm failed: n=%d err=%v", n, err)
	}
	if Best(c.Run(cands, []*dnn.Graph{testCNN}, opt)) == nil {
		t.Fatal("restarted sweep infeasible")
	}
	if st := c.CacheStats(); st.Misses != 0 {
		t.Errorf("restarted session recomputed %d group evaluations; session B's save clobbered session A's entries", st.Misses)
	}
}
