// Cell dispatch: the feed the sweep scheduler's workers pull their
// (candidate, model) cell indices from. The default feed walks the
// bound-ordered schedule candidate-major; Options.Dispatch lets a front end
// (the sweep service's multi-tenant queue) wrap that feed — to gate it shut
// when a sweep is preempted, to interleave it with other work, or to observe
// dispatch order — without the scheduler knowing or caring. A feed only ever
// schedules: which cells run, and in what order, can never change a computed
// cell's bits, which is why Dispatch is excluded from the checkpoint
// fingerprint.
package dse

import "sync"

// Dispatcher feeds cell indices to the sweep scheduler's worker pool. A cell
// index k encodes the (candidate, model) pair (k/len(models), k%len(models))
// of the running sweep. Implementations must be safe for concurrent Next
// calls: every worker pulls from the one feed.
type Dispatcher interface {
	// Next returns the next cell index to run. ok == false means the feed is
	// exhausted — or shut by a wrapper — and the calling worker should exit.
	// Once Next has returned ok == false it must keep doing so.
	Next() (cell int, ok bool)
}

// sliceDispatcher is the default feed: a fixed schedule walked front to
// back under a mutex. The scheduler builds one per sweep (and one per racing
// rung) from its bound-ordered candidate schedule.
type sliceDispatcher struct {
	mu    sync.Mutex
	cells []int
	pos   int
}

func newSliceDispatcher(cells []int) *sliceDispatcher {
	return &sliceDispatcher{cells: cells}
}

func (d *sliceDispatcher) Next() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pos >= len(d.cells) {
		return 0, false
	}
	k := d.cells[d.pos]
	d.pos++
	return k, true
}

// feed builds the dispatch feed for the given candidates (in schedule
// order), cells candidate-major, wrapping it with Options.Dispatch when set.
func (sc *scheduler) feed(cands []int, nm int) Dispatcher {
	cells := make([]int, 0, len(cands)*nm)
	for _, ci := range cands {
		for mi := 0; mi < nm; mi++ {
			cells = append(cells, ci*nm+mi)
		}
	}
	var d Dispatcher = newSliceDispatcher(cells)
	if sc.opt.Dispatch != nil {
		if wrapped := sc.opt.Dispatch(d); wrapped != nil {
			d = wrapped
		}
	}
	return d
}
