// Failure model of the sweep engine: the typed cell-error taxonomy, the
// transient-vs-permanent classifier retry decisions are made with, the
// per-cell retry policy, and the persistence degradation tracker shared by
// the background savers. See docs/architecture.md "Failure model".
package dse

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// CellErrorKind classifies a cell-level infrastructure failure.
type CellErrorKind string

const (
	// CellPanic marks a mapping attempt that panicked; the panic was
	// recovered, its stack captured, and the cell failed instead of the
	// process.
	CellPanic CellErrorKind = "panic"
	// CellTimeout marks an attempt cut off by Options.CellTimeout.
	CellTimeout CellErrorKind = "timeout"
	// CellTransient marks an I/O-shaped failure worth retrying (including
	// injected faults in chaos tests).
	CellTransient CellErrorKind = "transient"
)

// CellError is the typed failure of one (candidate, model) mapping attempt.
// Every kind is transient under the Transient classifier: a panic may be a
// one-off allocation failure, a timeout a scheduling hiccup — the retry
// policy decides how often to find out. Cells that fail with a CellError are
// never checkpointed, so resumed sweeps retry them too.
type CellError struct {
	Kind      CellErrorKind
	Candidate string
	Model     string
	// Attempt is the 0-based attempt index that failed.
	Attempt int
	// Stack is the recovered goroutine stack for CellPanic, empty otherwise.
	Stack string
	// Err is the underlying failure (the panic value's rendering, the
	// deadline error, or the injected/transport error).
	Err error
}

// Error renders the failure with its cell coordinates.
func (e *CellError) Error() string {
	msg := fmt.Sprintf("dse: cell %s/%s attempt %d: %s", e.Candidate, e.Model, e.Attempt, e.Kind)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Transient reports whether an error is worth retrying. The classification
// is deliberately explicit: infeasibility is a settled outcome, context
// cancellation means the sweep is over, and an unrecognized error is assumed
// to be a bug or a bad configuration that a retry would only repeat. Only
// typed cell errors (panic, timeout, transient I/O), errors carrying their
// own Transient() bool (e.g. injected faults), and deadline expiries retry.
func Transient(err error) bool {
	if err == nil || errors.Is(err, ErrInfeasible) || errors.Is(err, context.Canceled) {
		return false
	}
	var ce *CellError
	if errors.As(err, &ce) {
		return true
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// RetryPolicy bounds transient-failure retries of one (candidate, model)
// cell. The zero value disables retry (one attempt, exactly the
// pre-hardening engine). Retry state never enters the checkpoint cell
// fingerprint: a cell that succeeds on attempt 3 is bit-identical to one
// that succeeds on attempt 0, because every attempt runs the same seeded
// pipeline from scratch.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt (so Max 2 means
	// up to 3 attempts). <= 0 disables retry.
	Max int
	// BaseDelay is the backoff before the first retry (default 10ms when
	// Max > 0); each further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s when Max > 0).
	MaxDelay time.Duration
}

// withDefaults normalizes the policy: a disabled policy stays zero, an
// enabled one gets the default delays.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max <= 0 {
		return RetryPolicy{}
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// backoff returns the sleep before retry attempt (1-based): exponential in
// the attempt, capped at MaxDelay, with a deterministic jitter in [50%,
// 100%] derived from (key, attempt) so concurrent cells retrying the same
// incident spread out without consuming any randomness source.
func (p RetryPolicy) backoff(attempt int, key string) time.Duration {
	d := p.MaxDelay
	if shift := uint(attempt - 1); shift < 32 {
		if e := p.BaseDelay << shift; e > 0 && e < d {
			d = e
		}
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	h = fnvWord(h, uint64(attempt))
	frac := 0.5 + 0.5*float64(h>>11)/float64(uint64(1)<<53)
	return time.Duration(float64(d) * frac)
}

// persistDegradeAfter is how many consecutive persistence failures flip a
// tracker into degraded mode (a single hiccup on a healthy disk is not a
// degradation).
const persistDegradeAfter = 3

// persistSaveAttempts bounds the in-save retry loop of one persistence
// write; persistRetryDelay is the pause before the first in-save retry
// (doubling after).
const (
	persistSaveAttempts = 3
	persistRetryDelay   = 5 * time.Millisecond
)

// PersistenceState is a point-in-time snapshot of a persistence path's
// health, reported by SweepStats and the sweep service's /healthz.
type PersistenceState struct {
	// Errors counts failed save operations (after their bounded in-save
	// retries) since the tracker was created.
	Errors int64 `json:"errors"`
	// Degraded reports persistDegradeAfter or more consecutive failures:
	// the sweep keeps running with in-memory state only, and the next
	// successful save clears the flag.
	Degraded bool `json:"degraded"`
	// LastError is the most recent failure's message, empty when none has
	// occurred yet.
	LastError string `json:"last_error,omitempty"`
}

// PersistenceTracker accounts for background persistence failures
// (checkpoint, status and disk-cache saves) without ever failing the sweep
// they serve: persistence is an optimization, losing it degrades restart
// cost, not correctness. The zero value is ready to use; all methods are
// safe for concurrent use.
type PersistenceTracker struct {
	mu          sync.Mutex
	errors      int64
	consecutive int
	degraded    bool
	lastErr     string
}

// Fail records a failed save and reports whether the tracker just entered
// degraded mode (so the caller can log the transition once).
func (t *PersistenceTracker) Fail(err error) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errors++
	t.consecutive++
	t.lastErr = err.Error()
	if !t.degraded && t.consecutive >= persistDegradeAfter {
		t.degraded = true
		return true
	}
	return false
}

// OK records a successful save, clearing the consecutive-failure streak and
// the degraded flag.
func (t *PersistenceTracker) OK() {
	t.mu.Lock()
	t.consecutive = 0
	t.degraded = false
	t.mu.Unlock()
}

// State snapshots the tracker.
func (t *PersistenceTracker) State() PersistenceState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return PersistenceState{Errors: t.errors, Degraded: t.degraded, LastError: t.lastErr}
}

// Do runs one persistence save under the tracker's bounded-retry
// discipline: up to persistSaveAttempts attempts with a short doubling
// pause, then the failure is recorded (possibly entering degraded mode) and
// returned for logging. A success clears the streak. The sweep the save
// serves never sees the error. A panicking save is recovered into a failed
// attempt: savers run on background goroutines where an escaped panic would
// kill the process, and persistence is never worth that.
func (t *PersistenceTracker) Do(save func() error) error {
	guarded := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("save panicked: %v", v)
			}
		}()
		return save()
	}
	var err error
	for a := 0; a < persistSaveAttempts; a++ {
		if a > 0 {
			time.Sleep(persistRetryDelay << uint(a-1))
		}
		if err = guarded(); err == nil {
			t.OK()
			return nil
		}
	}
	t.Fail(err)
	return err
}
