// Sweep scheduler: decides the order (candidate, model) cells are
// dispatched in, owns the live pruning incumbent, and accounts for the work
// the bound gate saved. The naive grid feed evaluates candidates in
// enumeration order, so the incumbent tightens only after whatever happens
// to be enumerated first completes; the bound-ordered schedule dispatches
// cells in ascending objective-lower-bound order instead, so the candidates
// most likely to produce a tight incumbent run first and the expensive,
// hopeless tail is pruned without ever being mapped. On resumed sessions
// the incumbent is additionally seeded from fully checkpointed candidates,
// so pruning is active from the very first task.
package dse

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"gemini/internal/arch"
	"gemini/internal/cost"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

// SweepOrder selects the candidate dispatch order of a sweep.
type SweepOrder string

const (
	// OrderGrid dispatches candidates in enumeration (grid) order. The
	// zero value "" behaves like OrderGrid.
	OrderGrid SweepOrder = "grid"
	// OrderBound dispatches candidates in ascending objective-lower-bound
	// order, so cheap candidates tighten the pruning incumbent before
	// expensive ones are attempted. With pruning off this only changes
	// scheduling, never results.
	OrderBound SweepOrder = "bound"
)

// RungStats records one completed rung of a racing (successive-halving)
// sweep: how many candidates entered, the cumulative per-cell restart width
// the rung settled, and how many candidates were promoted to the next rung
// (on the final rung, how many finished as finalists).
type RungStats struct {
	// Rung is the rung index; rung 0 is the cheap exploratory rung.
	Rung int `json:"rung"`
	// Budget is the cumulative per-cell restart width this rung settled.
	Budget int `json:"budget"`
	// Candidates is how many surviving candidates entered the rung.
	Candidates int `json:"candidates"`
	// Survivors is how many candidates the rung promoted (or, on the final
	// rung, finished at the full width). Candidates the bound gate pruned
	// mid-rung count in neither number of the next rung.
	Survivors int `json:"survivors"`
}

// IncumbentStep is one tightening of the pruning incumbent during a sweep.
type IncumbentStep struct {
	// Candidate names the feasible candidate that improved the incumbent;
	// the synthetic name "(checkpoint seed)" marks the initial value
	// restored from checkpointed cells.
	Candidate string
	Obj       float64
}

// SweepStats is the scheduler's per-sweep observability record.
type SweepStats struct {
	// SweepID echoes Options.SweepID (empty for unnamed sweeps).
	SweepID string
	// Order is the dispatch order the sweep actually used.
	Order SweepOrder
	// Candidates is the number of architecture candidates in the sweep.
	Candidates int
	// Cells is the total (candidate, model) grid size.
	Cells int
	// Canceled reports that the sweep's context was canceled before every
	// cell settled; unfinished cells carry errors wrapping the context's
	// error and are never checkpointed.
	Canceled bool

	// ResumedCells counts cells served from the checkpoint this sweep.
	ResumedCells int
	// PrunedCandidates counts candidates the bound gate skipped or cut off.
	PrunedCandidates int
	// AbandonedRestarts counts SA restarts never completed because the live
	// incumbent dominated a cell's candidate mid-portfolio (a restart cut
	// off mid-anneal by the in-loop check counts: it never finished).
	AbandonedRestarts int
	// SkippedRestarts counts SA restarts saved by portfolio patience.
	SkippedRestarts int
	// SAIterations is the total annealing iterations the sweep attempted
	// across every cell, partial abandoned restarts included. With in-loop
	// abandonment active a dominated-cell workload spends strictly fewer
	// iterations than with between-restart checks alone.
	SAIterations int

	// Retries counts cell attempts re-run after a transient failure
	// (Options.Retry); 0 whenever retry is disabled or nothing failed.
	Retries int
	// Panics counts recovered panics — each one became a typed
	// CellError{Kind: CellPanic} on its cell instead of killing the sweep.
	Panics int
	// DeadlineExceeded counts cell attempts cut off by Options.CellTimeout.
	DeadlineExceeded int
	// LastPanic is the most recent recovered panic's message and stack
	// (empty when Panics == 0), so a one-off crash is diagnosable from the
	// sweep record alone.
	LastPanic string
	// PersistenceErrors counts background persistence failures (disk-cache
	// spill saves) during this sweep. The sweep itself keeps running on
	// in-memory state; persistence failures degrade restart cost, never
	// correctness.
	PersistenceErrors int
	// PersistenceDegraded reports that the persistence layer ended the
	// sweep in degraded mode (several consecutive failed saves);
	// LastPersistenceError is the most recent failure.
	PersistenceDegraded  bool
	LastPersistenceError string

	// Racing reports the sweep allocated restarts by successive halving
	// across candidates; Rungs then records every completed rung in order.
	Racing bool
	Rungs  []RungStats

	// SeededIncumbent is the incumbent value restored from checkpointed
	// cells before the first task ran (+Inf when nothing seeded).
	SeededIncumbent float64
	// Trajectory records every incumbent improvement in the order it
	// happened, checkpoint seed included.
	Trajectory []IncumbentStep
}

// incumbent is a sweep-scoped best-feasible-objective tracker for pruning.
// It is deliberately NOT session-scoped: two Run calls may use different
// objectives or batches, and an incumbent from one is no bound for the
// other. get is lock-free (it is polled between SA restarts and before
// every cell); note serializes improvements and the trajectory. An optional
// external exchange (Options.Incumbent, set by fleet workers) folds a
// fleet-wide best into get and hears about local improvements — the
// exchange only ever carries achieved feasible objectives, so the min fold
// stays a sound pruning bound.
type incumbent struct {
	bits atomic.Uint64 // Float64bits of the current best
	ext  IncumbentExchange

	mu    sync.Mutex
	steps []IncumbentStep
}

func newIncumbent(ext IncumbentExchange) *incumbent {
	in := &incumbent{ext: ext}
	in.bits.Store(math.Float64bits(math.Inf(1)))
	return in
}

func (in *incumbent) get() float64 {
	best := math.Float64frombits(in.bits.Load())
	if in.ext != nil {
		if ext := in.ext.Best(); ext < best {
			best = ext
		}
	}
	return best
}

func (in *incumbent) note(name string, obj float64) {
	if math.IsNaN(obj) || math.IsInf(obj, 1) {
		return
	}
	improved := false
	in.mu.Lock()
	if obj < math.Float64frombits(in.bits.Load()) {
		in.bits.Store(math.Float64bits(obj))
		in.steps = append(in.steps, IncumbentStep{Candidate: name, Obj: obj})
		improved = true
	}
	in.mu.Unlock()
	// Forward outside the lock: the exchange's atomic update must never
	// serialize against trajectory appends, and a slow network push belongs
	// on the exchange's own background goroutine anyway.
	if improved && in.ext != nil {
		in.ext.Improved(name, obj)
	}
}

func (in *incumbent) trajectory() []IncumbentStep {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]IncumbentStep, len(in.steps))
	copy(out, in.steps)
	return out
}

// candState tracks one candidate's progress through the scheduler.
type candState struct {
	remaining atomic.Int32
	pruned    atomic.Bool
	lb        float64 // objective lower bound (0 when bounds are not in use)
}

// scheduler runs one sweep's (candidate, model) grid.
type scheduler struct {
	ses    *Session
	ctx    context.Context
	cands  []arch.Config
	models []*dnn.Graph
	opt    Options
	optFP  uint64
	mce    *cost.Evaluator

	// stats is the published per-sweep record, valid after run returns; it
	// is what RunContext hands back so concurrent sweeps never read each
	// other's numbers through the session.
	stats SweepStats

	prune  bool
	inc    *incumbent
	states []*candState
	order  []int // candidate dispatch order

	// rungs collects the racing rung records; runRacing appends between
	// rung barriers, so no lock is needed until publishStats copies it.
	rungs []RungStats

	seeded    float64
	resumed   atomic.Int64
	pruned    atomic.Int64
	abandoned atomic.Int64
	skipped   atomic.Int64
	saIters   atomic.Int64

	retries  atomic.Int64
	panics   atomic.Int64
	deadline atomic.Int64

	panicMu   sync.Mutex
	lastPanic string
}

// notePanic records the most recent recovered panic for SweepStats and logs
// it — a recovered panic must never be silent.
func (sc *scheduler) notePanic(where, stack string) {
	sc.panicMu.Lock()
	sc.lastPanic = stack
	sc.panicMu.Unlock()
	sc.ses.logf("dse: recovered panic in %s: %s", where, stack)
}

// newScheduler computes per-candidate bounds, fixes the dispatch order and
// seeds the incumbent from checkpointed cells.
func (s *Session) newScheduler(ctx context.Context, cands []arch.Config, models []*dnn.Graph, opt Options) *scheduler {
	if opt.Racing {
		// Racing is the adaptive schedule: rung widths replace portfolio
		// patience. Normalizing it away here keeps the cell fingerprint
		// identical to the plain uniform sweep's, so racing and uniform
		// sweeps extend each other's checkpointed cells.
		opt.Patience = 0
	}
	sc := &scheduler{
		ses:    s,
		ctx:    ctx,
		cands:  cands,
		models: models,
		opt:    opt,
		optFP:  optsFingerprint(opt),
		mce:    cost.New(),
		inc:    newIncumbent(opt.Incumbent),
		states: make([]*candState, len(cands)),
		order:  make([]int, len(cands)),
		seeded: math.Inf(1),
	}
	sc.prune = opt.Prune && objMonotone(opt.Objective)
	if opt.Prune && !sc.prune {
		s.logf("dse: pruning disabled: objective %+v is not monotone", opt.Objective)
	}
	ordered := opt.Order == OrderBound
	for ci := range cands {
		sc.states[ci] = &candState{}
		sc.states[ci].remaining.Store(int32(len(models)))
		sc.order[ci] = ci
	}
	if sc.prune || ordered {
		params := boundParams(opt)
		eLBs := make([]float64, len(models))
		dLBs := make([]float64, len(models))
		for ci := range cands {
			mc := sc.mce.Evaluate(&cands[ci]).Total()
			for mi, g := range models {
				eLBs[mi], dLBs[mi] = lowerBoundED(&cands[ci], g, params, opt)
			}
			lb := mixedBound(mc, eLBs, dLBs, nil, opt.Objective)
			if sc.prune {
				// Bound-aware seeding breadth: a partially checkpointed
				// candidate's own bound tightens by substituting the actual
				// (restored-verbatim) energies and delays of its settled
				// cells for their lower bounds. The mix stays a lower bound
				// on the candidate's final objective — never an incumbent:
				// an unachieved value must not prune *other* candidates, but
				// it may prune its own, so partial resumes cut dominated
				// candidates off before their missing cells are mapped.
				if mixed := sc.partialCheckpointBound(ci, mc, eLBs, dLBs); mixed > lb {
					lb = mixed
				}
			}
			sc.states[ci].lb = lb
		}
	}
	if ordered {
		sort.SliceStable(sc.order, func(a, b int) bool {
			return sc.states[sc.order[a]].lb < sc.states[sc.order[b]].lb
		})
	}
	if sc.prune {
		sc.seedIncumbent()
	}
	return sc
}

// mixedBound folds per-model energy/delay values into the candidate
// objective in log space (exactly reduceCandidate's geomean; math.Log(0)
// is -Inf and math.Exp(-Inf) is 0, so zero bounds flow through the mean
// exactly). When rec is non-nil, rec[mi] overrides the bound with a
// checkpointed cell's actual values; a nil entry keeps the lower bound.
func mixedBound(mc float64, eLBs, dLBs []float64, rec []*cellRecord, obj Objective) float64 {
	n := float64(len(eLBs))
	if n == 0 {
		return 0
	}
	var sumLogE, sumLogD float64
	for mi := range eLBs {
		e, d := eLBs[mi], dLBs[mi]
		if rec != nil && rec[mi] != nil {
			e, d = rec[mi].Energy, rec[mi].Delay
		}
		sumLogE += math.Log(e)
		sumLogD += math.Log(d)
	}
	return Score(mc, math.Exp(sumLogE/n), math.Exp(sumLogD/n), obj)
}

// partialCheckpointBound refines a candidate's lower bound from its
// partially checkpointed cells: settled feasible cells contribute their
// achieved energy/delay (they will be restored verbatim, so those values
// are exact), missing cells keep their per-model lower bounds. The result
// is therefore still a lower bound on the candidate's final objective —
// sound for pruning the candidate itself and for ordering, unlike seeding
// the shared incumbent with it, which would unsoundly prune others. It
// returns 0 (no refinement) when nothing is checkpointed, when everything
// is (the full-checkpoint incumbent seed already covers that case and the
// restored candidate must keep reporting its real outcome), or when any
// settled cell is infeasible (the candidate must be reported infeasible,
// not pruned).
func (sc *scheduler) partialCheckpointBound(ci int, mc float64, eLBs, dLBs []float64) float64 {
	if len(sc.models) == 0 {
		return 0
	}
	fp := eval.ConfigFingerprint(&sc.cands[ci])
	recs := make([]*cellRecord, len(sc.models))
	settled := 0
	for mi, g := range sc.models {
		rec, ok := sc.ses.peekCell(cellKey(fp, g.Name, sc.optFP))
		if !ok {
			continue
		}
		if !rec.Feasible {
			return 0
		}
		r := rec
		recs[mi] = &r
		settled++
	}
	if settled == 0 || settled == len(sc.models) {
		return 0
	}
	return mixedBound(mc, eLBs, dLBs, recs, sc.opt.Objective)
}

// seedIncumbent restores the pruning incumbent from the checkpoint: any
// candidate of this sweep whose every (candidate, model) cell is already
// checkpointed feasible will be restored verbatim during the sweep, so its
// folded objective is an achieved value — a sound incumbent before the
// first task runs. Restricting the scan to this sweep's candidates keeps
// the invariant that the sweep's true optimum can never be pruned.
func (sc *scheduler) seedIncumbent() {
	if len(sc.models) == 0 {
		return
	}
	for ci := range sc.cands {
		fp := eval.ConfigFingerprint(&sc.cands[ci])
		per := make([]pairOutcome, len(sc.models))
		complete := true
		for mi, g := range sc.models {
			rec, ok := sc.ses.peekCell(cellKey(fp, g.Name, sc.optFP))
			if !ok || !rec.Feasible {
				complete = false
				break
			}
			per[mi] = rec.outcome()
		}
		if !complete {
			continue
		}
		cr := reduceCandidate(&sc.cands[ci], per, sc.models, sc.mce, sc.opt)
		if cr.Feasible {
			sc.inc.note("(checkpoint seed)", cr.Obj)
		}
	}
	sc.seeded = sc.inc.get()
	if !math.IsInf(sc.seeded, 1) {
		sc.ses.logf("dse: incumbent seeded from checkpoint: %.6g", sc.seeded)
	}
}

// markPruned cuts a candidate off (idempotently) and logs the decision.
func (sc *scheduler) markPruned(ci int, best float64) {
	st := sc.states[ci]
	if st.pruned.CompareAndSwap(false, true) {
		sc.pruned.Add(1)
		sc.ses.logf("dse: pruned %s: objective lower bound %.6g > best feasible %.6g",
			sc.cands[ci].Name, st.lb, best)
	}
}

// run executes the sweep and returns one CandidateResult per candidate, in
// candidate order (unsorted).
func (sc *scheduler) run() []CandidateResult {
	nm := len(sc.models)
	results := make([]CandidateResult, len(sc.cands))
	per := make([][]pairOutcome, len(sc.cands))
	for i := range sc.cands {
		per[i] = make([]pairOutcome, nm)
	}

	var onMu sync.Mutex
	finish := func(ci int) {
		// Backstop recover: reduceCandidate and the OnResult callback run
		// user-adjacent code (custom callbacks, exotic objectives); a panic
		// here must cost one candidate's result row, not the worker pool or
		// — through the sweep service — the server process.
		defer func() {
			if v := recover(); v != nil {
				sc.panics.Add(1)
				sc.notePanic(fmt.Sprintf("finishing candidate %s", sc.cands[ci].Name),
					fmt.Sprintf("%v\n%s", v, debug.Stack()))
			}
		}()
		st := sc.states[ci]
		var cr CandidateResult
		if st.pruned.Load() {
			cr = CandidateResult{
				Cfg: sc.cands[ci], MC: sc.mce.Evaluate(&sc.cands[ci]),
				Obj: math.Inf(1), Pruned: true, LowerBound: st.lb,
			}
		} else {
			cr = reduceCandidate(&sc.cands[ci], per[ci], sc.models, sc.mce, sc.opt)
			if cr.Feasible {
				sc.inc.note(cr.Cfg.Name, cr.Obj)
			}
		}
		results[ci] = cr
		if sc.opt.OnResult != nil {
			// Deferred unlock: the recover above fields OnResult panics, and a
			// plain Unlock after the call would be skipped during the unwind —
			// deadlocking every later candidate on a mutex nobody holds usefully.
			onMu.Lock()
			defer onMu.Unlock()
			sc.opt.OnResult(cr)
		}
	}

	total := len(sc.cands) * nm
	if total == 0 {
		for ci := range sc.cands {
			finish(ci)
		}
		sc.publishStats()
		return results
	}

	if sc.opt.Racing {
		sc.runRacing(nm, per, finish)
		sc.publishStats()
		return results
	}

	workers := sc.workerCount(total)
	// The feed walks the schedule candidate-major, so a candidate's cells
	// complete (and its objective lands in the incumbent) as early as
	// possible; Options.Dispatch may wrap it (queue binding, preemption).
	feed := sc.feed(sc.order, nm)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k, ok := feed.Next()
				if !ok {
					return
				}
				sc.runTaskGuarded(k, nm, per, effectiveRestarts(sc.opt), true)
				if sc.states[k/nm].remaining.Add(-1) == 0 {
					finish(k / nm)
				}
			}
		}()
	}
	wg.Wait()
	// A wrapped feed may shut before delivering every cell (a preempted
	// sweep): candidates with undelivered cells never hit remaining == 0, so
	// fill the gaps with a cancellation error and finish them here — an
	// undelivered cell must read as canceled, never as spurious
	// infeasibility (a zero pairOutcome), and every candidate must produce
	// its result row exactly once.
	for _, ci := range sc.order {
		if sc.states[ci].remaining.Load() > 0 {
			sc.fillUndelivered(ci, nm, per)
			finish(ci)
		}
	}
	sc.publishStats()
	return results
}

// fillUndelivered marks one candidate's never-dispatched cells as canceled.
// Only zero outcomes are touched: delivered cells keep their results, and
// pruned candidates need no cell outcomes at all.
func (sc *scheduler) fillUndelivered(ci, nm int, per [][]pairOutcome) {
	if sc.states[ci].pruned.Load() {
		return
	}
	err := sc.ctx.Err()
	if err == nil {
		// The feed was shut without the sweep context being canceled (a
		// dispatcher wrapper withheld cells): still a cancellation from the
		// cell's point of view.
		err = context.Canceled
	}
	for mi := 0; mi < nm; mi++ {
		p := &per[ci][mi]
		if p.mr == nil && p.err == nil && !p.abandoned {
			*p = pairOutcome{err: fmt.Errorf("dse: cell not dispatched: %w", err)}
		}
	}
}

func (sc *scheduler) workerCount(tasks int) int {
	workers := sc.opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	return workers
}

// racingBudgets is the successive-halving rung schedule for full portfolio
// width r: cumulative per-cell restart widths 1, 2, 4, ... terminated at r.
func racingBudgets(r int) []int {
	var b []int
	for w := 1; w < r; w *= 2 {
		b = append(b, w)
	}
	return append(b, r)
}

// runRacing executes the sweep as a successive-halving race: every surviving
// candidate's cells are settled at the rung's cumulative restart width (a
// checkpointed or earlier-rung cell re-enters at its stored width and runs
// only the missing restart window), the candidates are ranked by their
// folded objective against each other, and only the top RacingKeep fraction
// is promoted to the next, twice-as-wide rung. A rung-b outcome is a real
// achieved mapping, so it both feeds the pruning incumbent and stands as an
// eliminated candidate's final (partial-width, never Pruned) result.
// Finalists end at the full width, bit-identical to the uniform sweep's
// result for the same candidate.
func (sc *scheduler) runRacing(nm int, per [][]pairOutcome, finish func(ci int)) {
	keep := sc.opt.RacingKeep
	if keep <= 0 || keep >= 1 {
		keep = 0.5
	}
	finished := make([]bool, len(sc.cands))
	emit := func(ci int) {
		if !finished[ci] {
			finished[ci] = true
			finish(ci)
		}
	}
	surviving := append([]int(nil), sc.order...)
	budgets := racingBudgets(effectiveRestarts(sc.opt))
	for r, budget := range budgets {
		entered := len(surviving)
		sc.dispatchRung(surviving, nm, per, budget, r == 0)

		// Candidates the bound gate pruned mid-rung are decided: emit their
		// Pruned rows and drop them from the race.
		alive := make([]int, 0, len(surviving))
		for _, ci := range surviving {
			if sc.states[ci].pruned.Load() {
				emit(ci)
				continue
			}
			alive = append(alive, ci)
		}

		// Rank the rung by each survivor's folded objective at the current
		// width — an achieved value, so feasible ones also tighten the
		// incumbent. Infeasible and errored candidates rank +Inf and are
		// eliminated first; ties break by candidate name, then dispatch
		// order, so the promotion is deterministic.
		type rank struct {
			ci  int
			obj float64
		}
		ranked := make([]rank, 0, len(alive))
		for _, ci := range alive {
			cr := reduceCandidate(&sc.cands[ci], per[ci], sc.models, sc.mce, sc.opt)
			obj := math.Inf(1)
			if cr.Feasible {
				obj = cr.Obj
				sc.inc.note(cr.Cfg.Name, cr.Obj)
			}
			ranked = append(ranked, rank{ci, obj})
		}
		sort.SliceStable(ranked, func(a, b int) bool {
			if ranked[a].obj != ranked[b].obj {
				return ranked[a].obj < ranked[b].obj
			}
			return sc.cands[ranked[a].ci].Name < sc.cands[ranked[b].ci].Name
		})

		promoted := len(ranked)
		if r < len(budgets)-1 {
			promoted = int(math.Ceil(keep * float64(len(ranked))))
			if promoted < 1 {
				promoted = 1
			}
			if promoted > len(ranked) {
				promoted = len(ranked)
			}
		}
		rs := RungStats{Rung: r, Budget: budget, Candidates: entered, Survivors: promoted}
		sc.rungs = append(sc.rungs, rs)
		if sc.opt.OnRung != nil {
			sc.onRungGuarded(rs)
		}
		surviving = surviving[:0]
		for i, rk := range ranked {
			if i < promoted {
				surviving = append(surviving, rk.ci)
				continue
			}
			// Eliminated: the candidate's partial-width outcome is its real
			// result — finish reduces it normally, never as Pruned.
			emit(rk.ci)
		}
		if len(surviving) == 0 {
			break
		}
	}
	// Finalists — and, after a canceled sweep, whatever the race never
	// decided — emit with the cells they settled. A shut feed may have left
	// cells undelivered (zero outcomes); fill those with the cancellation
	// error first, so an undecided candidate is reported canceled rather
	// than spuriously infeasible.
	for ci := range sc.cands {
		if !finished[ci] {
			sc.fillUndelivered(ci, nm, per)
		}
		emit(ci)
	}
}

// onRungGuarded shields the race loop from a panicking OnRung observer, the
// same way finish shields reduceCandidate's callback path.
func (sc *scheduler) onRungGuarded(rs RungStats) {
	defer func() {
		if v := recover(); v != nil {
			sc.panics.Add(1)
			sc.notePanic(fmt.Sprintf("OnRung callback (rung %d)", rs.Rung),
				fmt.Sprintf("%v\n%s", v, debug.Stack()))
		}
	}()
	sc.opt.OnRung(rs)
}

// dispatchRung settles every (surviving candidate, model) cell at the rung's
// cumulative width on a fresh worker pool and barriers on completion.
// countRestores is true only on rung 0: a cell checkpointed at full width
// restores verbatim on every rung it touches, and counting each rung would
// inflate ResumedCells.
func (sc *scheduler) dispatchRung(surviving []int, nm int, per [][]pairOutcome, target int, countRestores bool) {
	total := len(surviving) * nm
	if total == 0 {
		return
	}
	feed := sc.feed(surviving, nm)
	var wg sync.WaitGroup
	for w := 0; w < sc.workerCount(total); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k, ok := feed.Next()
				if !ok {
					return
				}
				sc.runTaskGuarded(k, nm, per, target, countRestores)
			}
		}()
	}
	wg.Wait()
}

// runTaskGuarded is the worker-level panic backstop. The mapping pipeline
// itself is already recovered inside the cell attempt, but the scheduler's
// own cell bookkeeping (bound math, checkpoint peeks) runs outside it; a
// panic there records a typed CellError on the cell and keeps the worker —
// and with it the sweep and the serving process — alive.
func (sc *scheduler) runTaskGuarded(k, nm int, per [][]pairOutcome, target int, countRestores bool) {
	defer func() {
		if v := recover(); v != nil {
			ci, mi := k/nm, k%nm
			ce := &CellError{
				Kind: CellPanic, Candidate: sc.cands[ci].Name, Model: sc.models[mi].Name,
				Stack: string(debug.Stack()), Err: fmt.Errorf("%v", v),
			}
			per[ci][mi] = pairOutcome{err: ce}
			sc.panics.Add(1)
			sc.notePanic("scheduler task", fmt.Sprintf("%v\n%s", ce.Err, ce.Stack))
		}
	}()
	sc.runTask(k, nm, per, target, countRestores)
}

// runTask executes one (candidate, model) cell under the live bound gate
// and the sweep context, settling it at the cumulative portfolio width
// target (the full Restarts for uniform sweeps, the rung budget under
// racing).
func (sc *scheduler) runTask(k, nm int, per [][]pairOutcome, target int, countRestores bool) {
	ci, mi := k/nm, k%nm
	st := sc.states[ci]
	key := cellKey(eval.ConfigFingerprint(&sc.cands[ci]), sc.models[mi].Name, sc.optFP)
	if err := sc.ctx.Err(); err != nil {
		// Canceled sweep: fail the remaining cells fast. Nothing is stored,
		// so a resumed sweep retries exactly these cells.
		per[ci][mi] = pairOutcome{err: fmt.Errorf("dse: cell not run: %w", err)}
		return
	}
	if sc.prune && !st.pruned.Load() {
		// The incumbent is live: re-check before every cell, not just the
		// candidate's first, so a candidate whose remaining cells became
		// hopeless mid-sweep is cut off. Checkpointed cells are exempt:
		// restoring them is free, and discarding a finished result as
		// "pruned" would make a resumed sweep report less than the run
		// that produced the checkpoint.
		if _, done := sc.ses.peekCell(key); !done {
			if best := sc.inc.get(); st.lb > best {
				sc.markPruned(ci, best)
			}
		}
	}
	if st.pruned.Load() {
		return
	}
	// The stop gate is polled between SA restarts: it abandons the cell
	// when the sweep is canceled, or — with pruning active — when the live
	// incumbent already dominates this candidate's bound.
	gated := sc.prune && st.lb > 0
	stop := func() bool {
		if sc.ctx.Err() != nil {
			return true
		}
		return gated && st.lb > sc.inc.get()
	}
	out := sc.ses.runCellTarget(&sc.cands[ci], sc.models[mi], sc.opt, key, stop, target)
	sc.saIters.Add(int64(out.saIterations))
	sc.retries.Add(int64(out.retries))
	sc.panics.Add(int64(out.panics))
	sc.deadline.Add(int64(out.deadlineExceeded))
	if out.panicStack != "" {
		sc.notePanic(fmt.Sprintf("cell %s/%s", sc.cands[ci].Name, sc.models[mi].Name), out.panicStack)
	}
	if out.abandoned {
		if err := sc.ctx.Err(); err != nil {
			// Abandoned because the sweep was canceled, not because the
			// candidate is dominated: report the cancellation, never
			// "pruned".
			per[ci][mi] = pairOutcome{err: fmt.Errorf("dse: cell abandoned: %w", err)}
			return
		}
		// The portfolio walked away mid-cell because the incumbent already
		// dominates this candidate's bound; the partial result is not a
		// settled outcome, so it is neither recorded nor checkpointed.
		sc.abandoned.Add(int64(out.abandonedRestarts))
		sc.markPruned(ci, sc.inc.get())
		return
	}
	if out.restored && countRestores {
		sc.resumed.Add(1)
	}
	sc.skipped.Add(int64(out.skippedRestarts))
	per[ci][mi] = out
}

// publishStats folds the counters into the session's last-sweep stats and
// logs the one-line summary.
func (sc *scheduler) publishStats() {
	order := sc.opt.Order
	if order == "" {
		order = OrderGrid
	}
	stats := SweepStats{
		SweepID:           sc.opt.SweepID,
		Order:             order,
		Candidates:        len(sc.cands),
		Cells:             len(sc.cands) * len(sc.models),
		Canceled:          sc.ctx.Err() != nil,
		ResumedCells:      int(sc.resumed.Load()),
		PrunedCandidates:  int(sc.pruned.Load()),
		AbandonedRestarts: int(sc.abandoned.Load()),
		SkippedRestarts:   int(sc.skipped.Load()),
		SAIterations:      int(sc.saIters.Load()),
		Retries:           int(sc.retries.Load()),
		Panics:            int(sc.panics.Load()),
		DeadlineExceeded:  int(sc.deadline.Load()),
		Racing:            sc.opt.Racing,
		Rungs:             append([]RungStats(nil), sc.rungs...),
		SeededIncumbent:   sc.seeded,
		Trajectory:        sc.inc.trajectory(),
	}
	sc.panicMu.Lock()
	stats.LastPanic = sc.lastPanic
	sc.panicMu.Unlock()
	sc.stats = stats
	sc.ses.setLastSweep(stats)
	state := "done"
	if stats.Canceled {
		state = "canceled"
	}
	sc.ses.logf("dse: sweep %s %s (order %s): %d candidates (%d pruned), %d cells (%d resumed), %d restarts abandoned, %d skipped by patience, incumbent %.6g",
		sweepName(sc.opt.SweepID), state, order, stats.Candidates, stats.PrunedCandidates, stats.Cells, stats.ResumedCells,
		stats.AbandonedRestarts, stats.SkippedRestarts, sc.inc.get())
	if stats.Racing {
		for _, r := range stats.Rungs {
			sc.ses.logf("dse: sweep %s rung %d (budget %d): %d candidates, %d promoted",
				sweepName(sc.opt.SweepID), r.Rung, r.Budget, r.Candidates, r.Survivors)
		}
	}
	if stats.Retries+stats.Panics+stats.DeadlineExceeded > 0 {
		sc.ses.logf("dse: sweep %s faults: %d retries, %d recovered panics, %d deadline expiries",
			sweepName(sc.opt.SweepID), stats.Retries, stats.Panics, stats.DeadlineExceeded)
	}
}
