// The scheduling-conformance suite for the multi-tenant sweep queue. Every
// test drives sweepQueue directly — no HTTP, no goroutines, no sleeps: the
// queue is a synchronous state machine, so dispatch decisions are asserted
// as exact sequences. Determinism itself is a pinned property: the same
// arrival pattern must produce the same grant order on every run.
package serve

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"gemini/internal/dse"
)

// queueRecorder collects the queue's transition events in order.
type queueRecorder struct {
	events []queueEvent
}

func (r *queueRecorder) hook(ev queueEvent) { r.events = append(r.events, ev) }

// ids returns the ids of every recorded event of one kind, in order.
func (r *queueRecorder) ids(kind string) []string {
	var out []string
	for _, ev := range r.events {
		if ev.kind == kind {
			out = append(out, ev.id)
		}
	}
	return out
}

// fakeClock is a deterministic queue clock: each call advances one second.
func fakeClock() func() time.Time {
	t0 := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

// isGranted consumes a pending grant token, reporting whether one existed.
func isGranted(j *job) bool {
	select {
	case <-j.granted():
		return true
	default:
		return false
	}
}

// drain completes every admitted job in dispatch order (each dispatched job
// finishes before the next completion), returning the full grant sequence.
func drain(t *testing.T, q *sweepQueue, rec *queueRecorder, jobs map[string]*job) []string {
	t.Helper()
	released := make(map[string]bool)
	for done := 0; done < len(jobs); {
		progressed := false
		for _, ev := range rec.events {
			if ev.kind != "dispatch" || released[ev.id] {
				continue
			}
			released[ev.id] = true
			q.Release(jobs[ev.id])
			done++
			progressed = true
			break
		}
		if !progressed {
			t.Fatalf("queue stalled with %d of %d jobs finished; events: %+v", done, len(jobs), rec.events)
		}
	}
	return rec.ids("dispatch")
}

// TestQueueDispatchOrderDeterministic pins the acceptance criterion: for
// three fixed seeds, a randomized multi-tenant arrival pattern dispatches
// in exactly the same order every time it is replayed.
func TestQueueDispatchOrderDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		run := func() []string {
			rec := &queueRecorder{}
			q := newSweepQueue(queueConfig{
				slots: 4, queueDepth: 64, maxQueued: 256,
				weights: map[string]int{"a": 2, "b": 1, "c": 1},
				now:     fakeClock(), hook: rec.hook,
			})
			rng := rand.New(rand.NewSource(seed))
			tenants := []string{"a", "b", "c"}
			jobs := make(map[string]*job)
			for i := 0; i < 24; i++ {
				ten := tenants[rng.Intn(len(tenants))]
				pri := dse.PriorityBatch
				if rng.Intn(2) == 0 {
					pri = dse.PriorityInteractive
				}
				id := fmt.Sprintf("s%02d", i)
				j, aerr := q.Admit(id, ten, pri, 1+rng.Intn(2))
				if aerr != nil {
					t.Fatalf("seed %d: admit %s: %v", seed, id, aerr)
				}
				jobs[id] = j
			}
			return drain(t, q, rec, jobs)
		}
		first := run()
		if len(first) != 24 {
			t.Fatalf("seed %d: dispatched %d of 24 jobs", seed, len(first))
		}
		second := run()
		if !reflect.DeepEqual(first, second) {
			t.Errorf("seed %d: dispatch order is not deterministic:\n first: %v\nsecond: %v", seed, first, second)
		}
	}
}

// TestQueuePriorityClasses pins that a later-arriving interactive sweep
// dispatches ahead of an earlier-queued batch sweep.
func TestQueuePriorityClasses(t *testing.T) {
	rec := &queueRecorder{}
	q := newSweepQueue(queueConfig{slots: 1, queueDepth: 8, maxQueued: 64, now: fakeClock(), hook: rec.hook})
	filler, _ := q.Admit("filler", "t1", dse.PriorityInteractive, 1)
	if !isGranted(filler) {
		t.Fatal("uncontended filler did not dispatch synchronously")
	}
	batch, _ := q.Admit("batch", "t1", dse.PriorityBatch, 1)
	inter, _ := q.Admit("inter", "t2", dse.PriorityInteractive, 1)
	if isGranted(batch) || isGranted(inter) {
		t.Fatal("jobs dispatched while the pool was full")
	}
	q.Release(filler)
	if !isGranted(inter) {
		t.Error("interactive sweep did not jump the earlier batch sweep")
	}
	if isGranted(batch) {
		t.Error("batch sweep dispatched alongside the interactive one on a 1-slot pool")
	}
	q.Release(inter)
	if !isGranted(batch) {
		t.Error("batch sweep did not dispatch once the interactive class drained")
	}
	q.Release(batch)
	if got := rec.ids("dispatch"); !reflect.DeepEqual(got, []string{"filler", "inter", "batch"}) {
		t.Errorf("dispatch order = %v", got)
	}
}

// TestQueueFairShareWeights pins the deficit round-robin ratio: with
// weights 2:1 and unit-slot batch jobs on a 1-slot pool, the long-run grant
// pattern is exactly two of tenant a per one of tenant b.
func TestQueueFairShareWeights(t *testing.T) {
	rec := &queueRecorder{}
	q := newSweepQueue(queueConfig{
		slots: 1, queueDepth: 16, maxQueued: 64,
		weights: map[string]int{"a": 2, "b": 1},
		now:     fakeClock(), hook: rec.hook,
	})
	jobs := make(map[string]*job)
	for i := 0; i < 6; i++ {
		for _, ten := range []string{"a", "b"} {
			id := fmt.Sprintf("%s%d", ten, i)
			j, aerr := q.Admit(id, ten, dse.PriorityBatch, 1)
			if aerr != nil {
				t.Fatal(aerr)
			}
			jobs[id] = j
		}
	}
	order := drain(t, q, rec, jobs)
	// a0 dispatches on admission (empty pool); thereafter every AAB block
	// realizes the 2:1 weight ratio until tenant a drains.
	want := []string{"a0", "a1", "b0", "a2", "a3", "b1", "a4", "a5", "b2", "b3", "b4", "b5"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("weighted fair-share order:\n got: %v\nwant: %v", order, want)
	}
}

// TestQueuePreemptResume pins the preemption protocol end to end at the
// queue level: signal on the newest batch job, yield, interactive dispatch,
// and front-of-queue resume once the slots free — with the counters the
// health endpoint reports.
func TestQueuePreemptResume(t *testing.T) {
	rec := &queueRecorder{}
	q := newSweepQueue(queueConfig{slots: 1, queueDepth: 8, maxQueued: 64, now: fakeClock(), hook: rec.hook})
	batch, _ := q.Admit("batch", "bulk", dse.PriorityBatch, 1)
	if !isGranted(batch) {
		t.Fatal("batch job did not dispatch on an idle pool")
	}
	inter, _ := q.Admit("inter", "dev", dse.PriorityInteractive, 1)
	if got := rec.ids("preempt"); !reflect.DeepEqual(got, []string{"batch"}) {
		t.Fatalf("preempt signals = %v, want [batch]", got)
	}
	// The handler binds its round-cancel hook after the signal raced ahead:
	// it must fire immediately.
	fired := false
	q.BindPreempt(batch, func() { fired = true })
	if !fired {
		t.Error("late-bound preempt hook did not fire for an already-signaled job")
	}
	// The preempted handler checkpoints, then acks.
	q.Yield(batch)
	if !isGranted(inter) {
		t.Error("interactive sweep did not dispatch after the batch yield")
	}
	if isGranted(batch) {
		t.Error("yielded batch sweep kept a grant")
	}
	q.Release(inter)
	if !isGranted(batch) {
		t.Error("preempted batch sweep did not resume once the interactive sweep finished")
	}
	q.Release(batch)
	qh := q.health()
	if qh.Preemptions != 1 || qh.Resumes != 1 {
		t.Errorf("preemptions=%d resumes=%d, want 1 and 1", qh.Preemptions, qh.Resumes)
	}
	if got := rec.ids("dispatch"); !reflect.DeepEqual(got, []string{"batch", "inter", "batch"}) {
		t.Errorf("dispatch sequence = %v", got)
	}
}

// TestQueueMultiVictimPreemption pins the livelock fix: when satisfying a
// blocked interactive sweep requires preempting more than one batch sweep,
// the slots each victim yields are reserved for the interactive demand — a
// yielded victim must not re-dispatch into them — so free slots accumulate
// across yields until the interactive sweep fits.
func TestQueueMultiVictimPreemption(t *testing.T) {
	rec := &queueRecorder{}
	q := newSweepQueue(queueConfig{slots: 8, queueDepth: 8, maxQueued: 64, now: fakeClock(), hook: rec.hook})
	i1, _ := q.Admit("i1", "dev", dse.PriorityInteractive, 4)
	b1, _ := q.Admit("b1", "bulk", dse.PriorityBatch, 2)
	b2, _ := q.Admit("b2", "bulk", dse.PriorityBatch, 2)
	if !isGranted(i1) || !isGranted(b1) || !isGranted(b2) {
		t.Fatal("initial load did not dispatch on an idle pool")
	}
	// The pool is full; a second interactive sweep needs both batch sweeps'
	// slots. Both must be signaled, newest-dispatched first.
	i2, _ := q.Admit("i2", "dev", dse.PriorityInteractive, 4)
	if got := rec.ids("preempt"); !reflect.DeepEqual(got, []string{"b2", "b1"}) {
		t.Fatalf("preempt signals = %v, want [b2 b1]", got)
	}
	// First victim yields: its two slots cover only half the demand. They
	// must be held for i2 — not handed back to the victim's own queue head —
	// and the yield must not trigger another round of preemption signals.
	q.Yield(b2)
	if isGranted(b2) || isGranted(b1) || isGranted(i2) {
		t.Fatal("a sweep dispatched into slots reserved for blocked interactive demand")
	}
	if got := len(rec.ids("preempt")); got != 2 {
		t.Fatalf("preempt signals after first yield = %d, want still 2", got)
	}
	// Second victim yields: the accumulated slots now cover the demand.
	q.Yield(b1)
	if !isGranted(i2) {
		t.Fatal("interactive sweep did not dispatch once both victims yielded")
	}
	if isGranted(b1) || isGranted(b2) {
		t.Error("batch sweep resumed while the pool was full of interactive work")
	}
	// With the interactive class no longer blocked, freed slots resume the
	// parked victims.
	q.Release(i1)
	if !isGranted(b1) || !isGranted(b2) {
		t.Error("preempted batch sweeps did not resume once slots freed")
	}
	q.Release(i2)
	q.Release(b1)
	q.Release(b2)
	qh := q.health()
	if qh.Preemptions != 2 || qh.Resumes != 2 {
		t.Errorf("preemptions=%d resumes=%d, want 2 and 2", qh.Preemptions, qh.Resumes)
	}
}

// TestQueueUnsatisfiableDemandNoPreempt pins that preemption only fires when
// it can actually help: interactive demand that exceeds the free slots plus
// every preemptible batch slot (the rest pinned by other interactive work)
// preempts nothing — checkpoint-thrashing batch sweeps for an interactive
// sweep that still cannot fit buys no forward progress — and the queue stays
// work-conserving for batch in the meantime.
func TestQueueUnsatisfiableDemandNoPreempt(t *testing.T) {
	rec := &queueRecorder{}
	q := newSweepQueue(queueConfig{slots: 8, queueDepth: 8, maxQueued: 64, now: fakeClock(), hook: rec.hook})
	i1, _ := q.Admit("i1", "dev", dse.PriorityInteractive, 5)
	b1, _ := q.Admit("b1", "bulk", dse.PriorityBatch, 2)
	if !isGranted(i1) || !isGranted(b1) {
		t.Fatal("initial load did not dispatch on an idle pool")
	}
	// i2 needs 4 slots; 1 free + 2 preemptible can never cover it while i1
	// holds 5. No victim may be signaled.
	i2, _ := q.Admit("i2", "dev", dse.PriorityInteractive, 4)
	if isGranted(i2) {
		t.Fatal("interactive sweep dispatched without slots for it")
	}
	if got := rec.ids("preempt"); len(got) != 0 {
		t.Fatalf("preempt signals = %v for unsatisfiable demand, want none", got)
	}
	// The unreachable demand reserves nothing: a batch sweep that fits the
	// free slot (and the batch share) still dispatches.
	b2, _ := q.Admit("b2", "bulk", dse.PriorityBatch, 1)
	if !isGranted(b2) {
		t.Error("batch sweep gated by interactive demand no yielding could satisfy")
	}
	// Once the blocking interactive sweep finishes, the waiting one fits
	// without any preemption having happened.
	q.Release(i1)
	if !isGranted(i2) {
		t.Error("interactive sweep did not dispatch once its blocker finished")
	}
	q.Release(i2)
	q.Release(b1)
	q.Release(b2)
	if got := rec.ids("preempt"); len(got) != 0 {
		t.Fatalf("preempt signals = %v over the whole scenario, want none", got)
	}
}

// TestQueueBatchShare pins the batch slot cap: while interactive work is
// present, batch may not grow past BatchShare of the pool, but with no
// interactive work the queue is work-conserving.
func TestQueueBatchShare(t *testing.T) {
	q := newSweepQueue(queueConfig{slots: 4, queueDepth: 16, maxQueued: 64, batchShare: 0.5, now: fakeClock()})
	b1, _ := q.Admit("b1", "bulk", dse.PriorityBatch, 1)
	i1, _ := q.Admit("i1", "dev", dse.PriorityInteractive, 1)
	b3, _ := q.Admit("b3", "bulk", dse.PriorityBatch, 1)
	if !isGranted(b1) || !isGranted(i1) || !isGranted(b3) {
		t.Fatal("jobs within the share did not dispatch")
	}
	// Two batch slots are the whole share on a 4-slot pool while i1 runs:
	// b2 must wait even though two slots are free.
	b2, _ := q.Admit("b2", "bulk", dse.PriorityBatch, 2)
	if isGranted(b2) {
		t.Fatal("batch sweep dispatched past the batch share under interactive load")
	}
	q.Release(i1)
	// No interactive work left: work conservation lets batch take the pool.
	if !isGranted(b2) {
		t.Error("batch sweep still gated with no interactive work present")
	}
	q.Release(b1)
	q.Release(b2)
	q.Release(b3)
}

// TestQueueQuotaRejections pins the admission envelopes: per-tenant 429,
// server-wide 503, Retry-After growth with backlog, and the health
// counters.
func TestQueueQuotaRejections(t *testing.T) {
	q := newSweepQueue(queueConfig{slots: 1, queueDepth: 2, maxQueued: 3, now: fakeClock()})
	if _, aerr := q.Admit("r1", "a", dse.PriorityBatch, 1); aerr != nil {
		t.Fatal(aerr)
	}
	for i := 0; i < 2; i++ {
		if _, aerr := q.Admit(fmt.Sprintf("w%d", i), "a", dse.PriorityBatch, 1); aerr != nil {
			t.Fatal(aerr)
		}
	}
	// Tenant a has two sweeps waiting: its quota.
	_, aerr := q.Admit("over", "a", dse.PriorityBatch, 1)
	if aerr == nil || aerr.code != 429 {
		t.Fatalf("over-quota admit: %+v, want 429", aerr)
	}
	if aerr.retryAfter != 3 { // 1 + 2 waiting
		t.Errorf("429 retryAfter = %d, want 3", aerr.retryAfter)
	}
	// Tenant b fits under its own quota and fills the global bound.
	if _, aerr := q.Admit("w3", "b", dse.PriorityBatch, 1); aerr != nil {
		t.Fatal(aerr)
	}
	_, aerr = q.Admit("flood", "c", dse.PriorityBatch, 1)
	if aerr == nil || aerr.code != 503 {
		t.Fatalf("over-backlog admit: %+v, want 503", aerr)
	}
	if aerr.retryAfter != 4 { // 1 + 3 waiting
		t.Errorf("503 retryAfter = %d, want 4", aerr.retryAfter)
	}
	qh := q.health()
	if qh.Rejected429 != 1 || qh.Rejected503 != 1 {
		t.Errorf("rejected counters = %d/%d, want 1/1", qh.Rejected429, qh.Rejected503)
	}
}

// TestQueueInteractiveTTFRBeatsFIFO pins the acceptance criterion that
// priority scheduling improves interactive time-to-first-result under mixed
// load: the interactive sweep's dispatch index (the TTFR proxy — every
// dispatch is one sweep completion away) must beat the no-priority FIFO
// baseline's on the identical arrival pattern.
func TestQueueInteractiveTTFRBeatsFIFO(t *testing.T) {
	run := func(fifo bool) uint64 {
		rec := &queueRecorder{}
		q := newSweepQueue(queueConfig{slots: 2, queueDepth: 16, maxQueued: 64, fifo: fifo, now: fakeClock(), hook: rec.hook})
		jobs := make(map[string]*job)
		for i := 0; i < 6; i++ {
			id := fmt.Sprintf("bulk%d", i)
			j, aerr := q.Admit(id, "bulk", dse.PriorityBatch, 1)
			if aerr != nil {
				t.Fatal(aerr)
			}
			jobs[id] = j
		}
		dev, aerr := q.Admit("dev", "dev", dse.PriorityInteractive, 1)
		if aerr != nil {
			t.Fatal(aerr)
		}
		jobs["dev"] = dev
		drain(t, q, rec, jobs)
		if fifo && len(rec.ids("preempt")) != 0 {
			t.Errorf("FIFO baseline preempted %v; the no-priority baseline must not preempt", rec.ids("preempt"))
		}
		return dev.grantIndex
	}
	priority := run(false)
	baseline := run(true)
	if priority >= baseline {
		t.Errorf("interactive dispatch index %d under priority scheduling, %d under FIFO; priority must win", priority, baseline)
	}
	if baseline != 7 {
		t.Errorf("FIFO baseline dispatched the interactive sweep %dth, want 7th (behind every batch job)", baseline)
	}
}
