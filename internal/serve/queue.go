// The multi-tenant sweep queue: admission control, priority classes,
// deficit-round-robin fair share and preemption, in front of the sweep
// scheduler. The queue owns a fixed pool of worker slots; every sweep asks
// for a slot count (its clamped workers request) and runs only while it
// holds them. Interactive sweeps dispatch ahead of batch sweeps; tenants
// inside a class share slots by deficit round-robin (weighted); a tenant
// over its waiting-sweep quota is rejected with 429 and a server over its
// global backlog bound with 503; and when an interactive sweep cannot fit,
// the newest-dispatched batch sweeps are preempted — signaled to checkpoint,
// yield their slots and re-queue at the front of their tenant's batch queue,
// where resume is free (settled cells restore from the session and the
// checkpoint, recomputing nothing).
//
// The queue is a synchronous state machine under one mutex: admission,
// dispatch, yield and release decisions happen entirely inside locked
// sections, in deterministic order, which is what makes the conformance
// suite (queue_test.go) reproducible without sleeping.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gemini/internal/dse"
)

// defaultTenant is the tenant name used when a spec names none.
const defaultTenant = "default"

// queueConfig sizes a sweepQueue. The server derives it from Config; tests
// construct it directly with an injected clock and observation hook.
type queueConfig struct {
	// slots is the worker-slot pool the queue dispatches against.
	slots int
	// maxRunning bounds concurrently dispatched sweeps (<= 0: no bound
	// beyond the slot pool).
	maxRunning int
	// queueDepth is the per-tenant waiting-sweep quota; admission beyond it
	// is rejected with 429.
	queueDepth int
	// maxQueued is the server-wide waiting-sweep bound; admission beyond it
	// is rejected with 503.
	maxQueued int
	// batchShare is the fraction of slots batch sweeps may hold while
	// interactive work is present (queued or running). Outside that the
	// queue is work-conserving: idle slots go to batch freely.
	batchShare float64
	// weights are per-tenant fair-share weights (missing tenants weigh 1).
	weights map[string]int
	// fifo drops priority classes, fair share and preemption: strict
	// admission-order dispatch. Test-only — the baseline the conformance
	// suite measures interactive time-to-first-result against.
	fifo bool
	// now is the queue's clock (tests inject a fake one).
	now func() time.Time
	// hook, when set, observes every queue transition (tests only). It is
	// called with the queue lock held; hooks must not call back into the
	// queue.
	hook func(queueEvent)
}

// queueEvent is one observed queue transition, for the conformance suite.
type queueEvent struct {
	kind     string // "dispatch", "preempt", "yield", "reject"
	id       string
	tenant   string
	priority dse.SweepPriority
	slots    int
}

// job is one sweep's queue-side record. The immutable identity fields are
// set at admission; the scheduling state is guarded by the queue mutex.
type job struct {
	id       string
	tenant   string
	priority dse.SweepPriority
	slots    int
	seq      uint64
	// grant receives one token per dispatch (initial and after each
	// preemption-yield cycle).
	grant chan struct{}
	// position is the server-wide waiting count at admission, 1-based;
	// informational (the queued event carries it).
	position int

	// Guarded by sweepQueue.mu.
	waiting    bool
	running    bool
	preempting bool
	preempt    func() // cancels the job's current run round
	resumes    int
	grantIndex uint64 // global dispatch counter at first dispatch (TTFR)
	queuedAt   time.Time
}

// granted exposes the dispatch channel for select loops.
func (j *job) granted() <-chan struct{} { return j.grant }

// admitError is a typed admission rejection.
type admitError struct {
	code       int // 429 (tenant quota) or 503 (server backlog)
	retryAfter int // seconds, for the Retry-After header and envelope
	msg        string
}

func (e *admitError) Error() string { return e.msg }

// sweepQueue is the multi-tenant job queue. Construct with newSweepQueue.
type sweepQueue struct {
	cfg queueConfig

	mu      sync.Mutex
	tenants map[string]*tenantState
	ring    []string // tenant names in first-activation order
	sched   map[dse.SweepPriority]*classSched

	free        int
	runningJobs int
	batchSlots  int
	runningInt  int // running interactive jobs
	waitingInt  int
	waitingBat  int
	runningList []*job // dispatch order, newest last (preemption victims)

	seq    uint64
	grants uint64

	preemptions int64
	resumes     int64
	rejected429 int64
	rejected503 int64
}

// classSched is the deficit-round-robin cursor state of one priority class:
// which ring position is being served and whether it has received its
// quantum for the current visit.
type classSched struct {
	cursor int
	fresh  bool
}

func newSweepQueue(cfg queueConfig) *sweepQueue {
	if cfg.slots <= 0 {
		cfg.slots = 1
	}
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 8
	}
	if cfg.maxQueued <= 0 {
		cfg.maxQueued = 64
	}
	if cfg.batchShare <= 0 || cfg.batchShare > 1 {
		cfg.batchShare = 0.5
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &sweepQueue{
		cfg:     cfg,
		tenants: make(map[string]*tenantState),
		sched: map[dse.SweepPriority]*classSched{
			dse.PriorityInteractive: {fresh: true},
			dse.PriorityBatch:       {fresh: true},
		},
		free: cfg.slots,
	}
}

func (q *sweepQueue) emit(kind string, j *job) {
	if q.cfg.hook != nil {
		q.cfg.hook(queueEvent{kind: kind, id: j.id, tenant: j.tenant, priority: j.priority, slots: j.slots})
	}
}

// tenantLocked returns (creating on first sight) one tenant's state.
func (q *sweepQueue) tenantLocked(name string) *tenantState {
	if t, ok := q.tenants[name]; ok {
		return t
	}
	w := q.cfg.weights[name]
	if w <= 0 {
		w = 1
	}
	t := &tenantState{name: name, weight: w}
	q.tenants[name] = t
	q.ring = append(q.ring, name)
	return t
}

// clampSlots turns a spec's workers request into a slot count: 0 (default)
// asks for the whole pool, anything else is clamped into [1, slots].
func (q *sweepQueue) clampSlots(workers int) int {
	if workers <= 0 || workers > q.cfg.slots {
		return q.cfg.slots
	}
	return workers
}

// Admit enqueues one sweep, enforcing the per-tenant quota (429) and the
// server-wide backlog bound (503), and dispatches whatever the new state
// allows. On success the caller must eventually call Release exactly once.
func (q *sweepQueue) Admit(id, tenant string, priority dse.SweepPriority, workers int) (*job, *admitError) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if priority == "" {
		priority = dse.PriorityInteractive
	}
	t := q.tenantLocked(tenant)
	j := &job{
		id: id, tenant: tenant, priority: priority,
		slots: q.clampSlots(workers), grant: make(chan struct{}, 1),
		queuedAt: q.cfg.now(),
	}
	if q.waitingInt+q.waitingBat >= q.cfg.maxQueued {
		q.rejected503++
		t.rejected++
		q.emit("reject", j)
		return nil, &admitError{
			code: 503, retryAfter: q.retryAfterLocked(),
			msg: fmt.Sprintf("queue full: %d sweeps waiting server-wide (bound %d)",
				q.waitingInt+q.waitingBat, q.cfg.maxQueued),
		}
	}
	if t.waiting() >= q.cfg.queueDepth {
		q.rejected429++
		t.rejected++
		q.emit("reject", j)
		return nil, &admitError{
			code: 429, retryAfter: q.retryAfterLocked(),
			msg: fmt.Sprintf("tenant %q queue depth %d reached (quota %d)",
				tenant, t.waiting(), q.cfg.queueDepth),
		}
	}
	j.seq = q.seq
	q.seq++
	j.waiting = true
	t.push(j, false)
	q.noteWaiting(priority, +1)
	j.position = q.waitingInt + q.waitingBat
	q.dispatchLocked()
	return j, nil
}

// retryAfterLocked estimates how long a rejected client should back off:
// one second per waiting sweep, bounded — deterministic, and monotone in the
// backlog.
func (q *sweepQueue) retryAfterLocked() int {
	after := 1 + q.waitingInt + q.waitingBat
	if after > 60 {
		after = 60
	}
	return after
}

func (q *sweepQueue) noteWaiting(p dse.SweepPriority, d int) {
	if p == dse.PriorityBatch {
		q.waitingBat += d
	} else {
		q.waitingInt += d
	}
}

// dispatchLocked drains the queue into free slots in scheduling order, then
// signals preemption for whatever interactive demand is still blocked.
func (q *sweepQueue) dispatchLocked() {
	for q.free > 0 {
		if q.cfg.maxRunning > 0 && q.runningJobs >= q.cfg.maxRunning {
			break
		}
		j := q.pickLocked()
		if j == nil {
			break
		}
		q.grantLocked(j)
	}
	q.maybePreemptLocked()
}

// pickLocked selects the next waiting job that fits the free slots:
// interactive class first, deficit round-robin across tenants within a
// class (strict admission order in fifo baseline mode). nil means nothing
// dispatchable right now.
func (q *sweepQueue) pickLocked() *job {
	if q.cfg.fifo {
		return q.pickFIFOLocked()
	}
	if j := q.pickClassLocked(dse.PriorityInteractive); j != nil {
		return j
	}
	return q.pickClassLocked(dse.PriorityBatch)
}

// pickFIFOLocked is the no-priority baseline: the globally oldest waiting
// job runs next, with head-of-line blocking when it does not fit.
func (q *sweepQueue) pickFIFOLocked() *job {
	var oldest *job
	for _, name := range q.ring {
		for _, h := range q.tenants[name].heads() {
			if oldest == nil || h.seq < oldest.seq {
				oldest = h
			}
		}
	}
	if oldest == nil || oldest.slots > q.free {
		return nil
	}
	q.tenants[oldest.tenant].remove(oldest)
	return oldest
}

// pickClassLocked runs one class's deficit round-robin: each tenant visit
// grants a quantum proportional to its weight, and the visit serves that
// tenant's queue head for as long as the accumulated deficit covers the
// head's slot cost. Deficits persist across calls (a tenant whose head did
// not fit keeps its credit, bounded) and reset when a tenant's class queue
// drains, so long-run slot share converges to the weight ratio.
func (q *sweepQueue) pickClassLocked(class dse.SweepPriority) *job {
	n := len(q.ring)
	if n == 0 {
		return nil
	}
	// Nothing in this class can dispatch right now (empty, blocked on free
	// slots, or gated by the batch share): return before touching deficits,
	// so blocked passes do not bank credit.
	dispatchable := false
	for _, name := range q.ring {
		if h := q.tenants[name].head(class); h != nil && h.slots <= q.free && q.classAllowedLocked(h) {
			dispatchable = true
			break
		}
	}
	if !dispatchable {
		return nil
	}
	cs := q.sched[class]
	// Each visit adds weight >= 1 to a deficit that must reach at most
	// cfg.slots, so slots+1 full ring passes always suffice to serve the
	// dispatchable head found above.
	for iter := 0; iter < n*(q.cfg.slots+2); iter++ {
		if cs.cursor >= n {
			cs.cursor = 0
		}
		t := q.tenants[q.ring[cs.cursor]]
		h := t.head(class)
		if h == nil {
			// Idle tenants bank no credit.
			t.setDeficit(class, 0)
			cs.cursor, cs.fresh = (cs.cursor+1)%n, true
			continue
		}
		if cs.fresh {
			d := t.deficit(class) + t.weight
			// Bank at most one full burst: the larger of the pool (the
			// biggest single job cost) and the tenant's own quantum, so a
			// weight-w tenant can serve w unit jobs per visit even on a
			// small pool, while a blocked tenant's credit stays bounded.
			limit := q.cfg.slots
			if t.weight > limit {
				limit = t.weight
			}
			if d > limit {
				d = limit
			}
			t.setDeficit(class, d)
			cs.fresh = false
		}
		if t.deficit(class) >= h.slots && h.slots <= q.free && q.classAllowedLocked(h) {
			t.setDeficit(class, t.deficit(class)-h.slots)
			t.remove(h)
			// The visit continues: the same tenant may serve its next head
			// on the following pick call while its deficit lasts.
			return h
		}
		cs.cursor, cs.fresh = (cs.cursor+1)%n, true
	}
	return nil
}

// batchCapLocked is the slot cap batch sweeps share while interactive work
// is present.
func (q *sweepQueue) batchCapLocked() int {
	return int(q.cfg.batchShare * float64(q.cfg.slots))
}

// classAllowedLocked gates a batch dispatch on the batch share: while
// interactive work is queued or running, batch may not grow past its share
// of the slot pool. With no interactive work the queue is work-conserving.
//
// It also reserves slots for blocked interactive demand that preemption is
// (or will be) satisfying: while an interactive sweep waits and yielding
// batch work can cover it, no batch sweep dispatches — otherwise a yielded
// victim's own head would re-take the just-freed slots before the other
// victims yield, and multi-victim preemption would livelock (yield,
// re-dispatch, preempt, forever) with the interactive sweep starved.
// Demand that no amount of batch yielding can cover (slots pinned by other
// interactive work) reserves nothing: the queue stays work-conserving.
func (q *sweepQueue) classAllowedLocked(j *job) bool {
	if j.priority != dse.PriorityBatch {
		return true
	}
	if q.waitingInt == 0 && q.runningInt == 0 {
		return true
	}
	if d := q.interactiveDemandLocked(); d > 0 && q.free+q.preemptibleBatchLocked() >= d {
		return false
	}
	return q.batchSlots+j.slots <= q.batchCapLocked()
}

// interactiveDemandLocked is the smallest waiting interactive request's slot
// count, 0 when no interactive sweep waits. Callers run after the dispatch
// loop drained, so a nonzero demand is blocked demand.
func (q *sweepQueue) interactiveDemandLocked() int {
	if q.waitingInt == 0 {
		return 0
	}
	demand := 0
	for _, name := range q.ring {
		if h := q.tenants[name].head(dse.PriorityInteractive); h != nil {
			if demand == 0 || h.slots < demand {
				demand = h.slots
			}
		}
	}
	return demand
}

// preemptibleBatchLocked sums the slots of every running batch sweep —
// including ones already signaled preempting, whose slots are in flight back
// to the pool.
func (q *sweepQueue) preemptibleBatchLocked() int {
	s := 0
	for _, r := range q.runningList {
		if r.priority == dse.PriorityBatch {
			s += r.slots
		}
	}
	return s
}

// grantLocked moves one job from waiting to running and signals its grant
// channel.
func (q *sweepQueue) grantLocked(j *job) {
	t := q.tenants[j.tenant]
	j.waiting = false
	j.running = true
	q.noteWaiting(j.priority, -1)
	q.free -= j.slots
	q.runningJobs++
	if j.priority == dse.PriorityBatch {
		q.batchSlots += j.slots
	} else {
		q.runningInt++
	}
	t.running++
	t.dispatched++
	q.grants++
	if j.grantIndex == 0 {
		j.grantIndex = q.grants
	} else {
		q.resumes++
	}
	q.runningList = append(q.runningList, j)
	q.emit("dispatch", j)
	j.grant <- struct{}{}
}

// maybePreemptLocked signals preemption when interactive demand is blocked
// on slots held by batch work: the newest-dispatched preemptible batch jobs
// are told to checkpoint and yield until the projected free slots cover the
// smallest blocked interactive request. Slots free asynchronously — when
// the preempted handler acks via Yield; until then classAllowedLocked
// reserves them for the blocked demand, so they accumulate instead of
// re-dispatching the victims. Demand that even yielding every batch sweep
// cannot cover (slots pinned by other interactive work) preempts nothing:
// checkpoint-thrashing batch work for an interactive sweep that still
// cannot fit buys no forward progress.
func (q *sweepQueue) maybePreemptLocked() {
	if q.cfg.fifo {
		return // the no-priority baseline does not preempt
	}
	demand := q.interactiveDemandLocked()
	if demand == 0 {
		return
	}
	if q.free+q.preemptibleBatchLocked() < demand {
		return
	}
	projected := q.free
	for _, r := range q.runningList {
		if r.preempting {
			projected += r.slots
		}
	}
	for i := len(q.runningList) - 1; i >= 0 && projected < demand; i-- {
		v := q.runningList[i]
		if v.priority != dse.PriorityBatch || v.preempting {
			continue
		}
		v.preempting = true
		projected += v.slots
		q.emit("preempt", v)
		if v.preempt != nil {
			v.preempt()
		}
	}
}

// BindPreempt registers the cancel hook for a dispatched job's current run
// round. If the queue already signaled preemption before the hook existed,
// it fires immediately.
func (q *sweepQueue) BindPreempt(j *job, cancel func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j.preempt = cancel
	if j.preempting {
		cancel()
	}
}

// ClearPreempt detaches the current round's cancel hook (the round ended).
func (q *sweepQueue) ClearPreempt(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j.preempt = nil
}

// Yield acks a preemption: the job's slots free, it re-queues at the front
// of its tenant's queue for its class, and dispatch runs. The caller then
// waits on the job's grant channel for re-dispatch.
func (q *sweepQueue) Yield(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !j.running {
		return
	}
	q.releaseRunningLocked(j)
	j.preempting = false
	j.preempt = nil
	j.waiting = true
	j.resumes++
	q.preemptions++
	q.tenants[j.tenant].preemptions++
	q.tenants[j.tenant].push(j, true)
	q.noteWaiting(j.priority, +1)
	q.emit("yield", j)
	q.dispatchLocked()
}

// releaseRunningLocked returns a running job's slots to the pool.
func (q *sweepQueue) releaseRunningLocked(j *job) {
	t := q.tenants[j.tenant]
	j.running = false
	q.free += j.slots
	q.runningJobs--
	if j.priority == dse.PriorityBatch {
		q.batchSlots -= j.slots
	} else {
		q.runningInt--
	}
	t.running--
	for i, r := range q.runningList {
		if r == j {
			q.runningList = append(q.runningList[:i], q.runningList[i+1:]...)
			break
		}
	}
}

// Release ends a job's relationship with the queue, whatever state it is in
// — running (slots return to the pool), waiting (it leaves its tenant
// queue), or already released (no-op) — and dispatches successors. Safe to
// defer unconditionally.
func (q *sweepQueue) Release(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	switch {
	case j.running:
		q.releaseRunningLocked(j)
	case j.waiting:
		j.waiting = false
		q.tenants[j.tenant].remove(j)
		q.noteWaiting(j.priority, -1)
	default:
		return
	}
	j.preempt = nil
	q.emit("finish", j)
	q.dispatchLocked()
}

// GateFeed binds one dispatch round's cell feed to the job's slot grant:
// the wrapped feed stops delivering cells the moment the queue signals
// preemption, so workers wind down at the next cell boundary while the
// round-context cancellation interrupts the in-flight ones. The scheduler
// reports withheld cells as canceled (never computed), so gating only
// schedules — resumed rounds restore settled cells bit-identically.
func (q *sweepQueue) GateFeed(j *job, d dse.Dispatcher) dse.Dispatcher {
	return &gatedFeed{q: q, j: j, inner: d}
}

// gatedFeed is GateFeed's Dispatcher wrapper. Each dispatch round wraps a
// fresh inner feed, and a job's preempting flag only clears in Yield — after
// the round's workers have exited — so within one instance's lifetime a shut
// feed stays shut, as the Dispatcher contract requires.
type gatedFeed struct {
	q     *sweepQueue
	j     *job
	inner dse.Dispatcher
}

func (g *gatedFeed) Next() (int, bool) {
	g.q.mu.Lock()
	shut := g.j.preempting
	g.q.mu.Unlock()
	if shut {
		return 0, false
	}
	return g.inner.Next()
}

// health snapshots the queue for the health endpoint.
func (q *sweepQueue) health() *QueueHealth {
	q.mu.Lock()
	defer q.mu.Unlock()
	qh := &QueueHealth{
		Slots:              q.cfg.slots,
		FreeSlots:          q.free,
		BatchShare:         q.cfg.batchShare,
		RunningSweeps:      q.runningJobs,
		WaitingInteractive: q.waitingInt,
		WaitingBatch:       q.waitingBat,
		Preemptions:        q.preemptions,
		Resumes:            q.resumes,
		Rejected429:        q.rejected429,
		Rejected503:        q.rejected503,
	}
	for _, name := range q.ring {
		t := q.tenants[name]
		qh.Tenants = append(qh.Tenants, TenantHealth{
			Name:        t.name,
			Weight:      t.weight,
			Waiting:     t.waiting(),
			Running:     t.running,
			Dispatched:  t.dispatched,
			Preemptions: t.preemptions,
			Rejected:    t.rejected,
		})
	}
	sort.Slice(qh.Tenants, func(a, b int) bool { return qh.Tenants[a].Name < qh.Tenants[b].Name })
	return qh
}
