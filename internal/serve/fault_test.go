// Fault-tolerance tests of the sweep service: saver failures and degraded
// persistence, corrupt-checkpoint quarantine, handler-level panic isolation,
// and the /healthz fault counters.
package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gemini/internal/dse"
	"gemini/internal/faultinject"
)

// TestResumeAfterSaverFailures pins the satellite acceptance criterion: a
// sweep whose first checkpoint save fails (after its bounded in-save
// retries) still completes and still persists — a later save covers the
// tail — so a restarted server resumes it with zero settled-cell recompute.
func TestResumeAfterSaverFailures(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("flaky-save", 8, 16, 32, 64)

	// Count 3 = exactly the three in-save attempts of the first save
	// operation: the first checkpoint save fails outright, every later one
	// succeeds.
	inj := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointCheckpointSave, Kind: faultinject.KindError, Count: 3,
	})
	_, hsA := newTestServer(t, Config{DataDir: dir, FaultInjector: inj})
	events := runSweep(t, hsA.URL, spec)
	done := events[len(events)-1]
	if done.Type != "done" {
		t.Fatalf("sweep with failing saver ended with %q: %+v", done.Type, done)
	}
	if done.Stats.PersistenceErrors != 1 {
		t.Errorf("persistence_errors = %d, want 1 (one save died, the rest recovered)", done.Stats.PersistenceErrors)
	}
	if done.Stats.PersistenceDegraded {
		t.Error("a single failed save must not report degraded persistence")
	}
	if !strings.Contains(done.Stats.LastPersistenceError, "faultinject") {
		t.Errorf("last_persistence_error = %q, want the injected error", done.Stats.LastPersistenceError)
	}
	hsA.Close()

	_, hsB := newTestServer(t, Config{DataDir: dir})
	second := runSweep(t, hsB.URL, spec)
	if second[0].CheckpointCells != second[0].Cells {
		t.Errorf("restart found %d of %d cells checkpointed; the surviving saves should have covered all of them",
			second[0].CheckpointCells, second[0].Cells)
	}
	redone := second[len(second)-1]
	if redone.Type != "done" || redone.Stats.ResumedCells != redone.Stats.Cells {
		t.Errorf("resumed %d of %d cells, want zero recompute: %+v",
			redone.Stats.ResumedCells, redone.Stats.Cells, redone)
	}
}

// TestSweepSurvivesDeadPersistence: when every checkpoint and status save
// fails, the sweep still streams to completion — persistence degrades,
// /healthz says so, the work is not lost to the client.
func TestSweepSurvivesDeadPersistence(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1,
		faultinject.Rule{Point: faultinject.PointCheckpointSave, Kind: faultinject.KindError, Count: 1 << 20},
		faultinject.Rule{Point: faultinject.PointStatusSave, Kind: faultinject.KindError, Count: 1 << 20},
	)
	_, hs := newTestServer(t, Config{DataDir: dir, FaultInjector: inj})
	events := runSweep(t, hs.URL, tinySpec("doomed-saves", 8, 16, 32, 64))
	done := events[len(events)-1]
	if done.Type != "done" {
		t.Fatalf("sweep with dead persistence ended with %q: %+v", done.Type, done)
	}
	if done.Stats.PersistenceErrors < 2 {
		t.Errorf("persistence_errors = %d, want >= 2 (incremental + final)", done.Stats.PersistenceErrors)
	}
	if _, err := os.Stat(filepath.Join(dir, "doomed-saves.ckpt")); !os.IsNotExist(err) {
		t.Errorf("checkpoint file exists despite every save failing (stat err %v)", err)
	}

	// By now checkpoint saves and the status save have all failed — three or
	// more consecutive failures — so the server must report degradation.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.PersistenceDegraded || !h.Persistence.Degraded {
		t.Errorf("healthz does not report degraded persistence: %+v", h.Persistence)
	}
	if h.Persistence.Errors < 3 || h.Persistence.LastError == "" {
		t.Errorf("healthz persistence accounting: %+v", h.Persistence)
	}
}

// TestCorruptCheckpointQuarantined: a damaged checkpoint file must not fail
// the sweep — it is moved aside to <name>.corrupt, the sweep resumes cold,
// and the completion save writes a fresh valid checkpoint.
func TestCorruptCheckpointQuarantined(t *testing.T) {
	dir := t.TempDir()
	const id = "damaged"
	garbage := []byte("{this is not a checkpoint")
	if err := os.WriteFile(filepath.Join(dir, id+".ckpt"), garbage, 0o644); err != nil {
		t.Fatal(err)
	}

	_, hs := newTestServer(t, Config{DataDir: dir})
	events := runSweep(t, hs.URL, tinySpec(id, 32, 64))
	if events[0].CheckpointCells != 0 {
		t.Errorf("start reports %d checkpoint cells from a corrupt file, want 0", events[0].CheckpointCells)
	}
	done := events[len(events)-1]
	if done.Type != "done" || done.Stats.ResumedCells != 0 {
		t.Fatalf("corrupt-checkpoint sweep: %+v", done)
	}

	kept, err := os.ReadFile(filepath.Join(dir, id+".ckpt.corrupt"))
	if err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if !bytes.Equal(kept, garbage) {
		t.Error("quarantine did not preserve the damaged bytes")
	}
	// The fresh checkpoint is valid: a restart resumes from it.
	_, hsB := newTestServer(t, Config{DataDir: dir})
	second := runSweep(t, hsB.URL, tinySpec(id, 32, 64))
	redone := second[len(second)-1]
	if redone.Type != "done" || redone.Stats.ResumedCells != redone.Stats.Cells {
		t.Errorf("fresh checkpoint after quarantine did not resume: %+v", redone)
	}
}

// bombWriter is a ResponseWriter whose Nth write panics — a stand-in for a
// streaming-layer bug — and which records every other write.
type bombWriter struct {
	header http.Header
	bombAt int

	mu     sync.Mutex
	writes int
	buf    bytes.Buffer
}

func (b *bombWriter) Header() http.Header { return b.header }
func (b *bombWriter) WriteHeader(int)     {}
func (b *bombWriter) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writes++
	if b.writes == b.bombAt {
		panic("injected stream bug")
	}
	return b.buf.Write(p)
}

func (b *bombWriter) lines(t *testing.T) []Event {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var events []Event
	for _, line := range strings.Split(strings.TrimSpace(b.buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

// TestHandlerPanicEmitsTerminalErrorEvent pins the terminal backstop: a
// panic in the handler itself (here: the very first stream write) must end
// the stream with a typed error event and mark the sweep failed — never
// crash the server.
func TestHandlerPanicEmitsTerminalErrorEvent(t *testing.T) {
	s := New(Config{Logf: t.Logf})
	defer s.Close()
	body, err := json.Marshal(tinySpec("boom-handler", 32))
	if err != nil {
		t.Fatal(err)
	}
	w := &bombWriter{header: make(http.Header), bombAt: 1}
	s.handleSweep(w, httptest.NewRequest(http.MethodPost, "/sweep", bytes.NewReader(body)))

	events := w.lines(t)
	if len(events) != 1 || events[0].Type != "error" {
		t.Fatalf("stream after handler panic: %+v", events)
	}
	if !strings.Contains(events[0].Error, "panicked") {
		t.Errorf("error event text %q does not mention the panic", events[0].Error)
	}
	sw, ok := s.lookup("boom-handler")
	if !ok || sw.stateNow() != StateFailed {
		t.Errorf("sweep state after handler panic: found=%t %+v", ok, sw)
	}
	// The server is still alive and serving.
	hs := httptest.NewServer(s)
	defer hs.Close()
	after := runSweep(t, hs.URL, tinySpec("after-boom", 32))
	if after[len(after)-1].Type != "done" {
		t.Errorf("server did not survive the handler panic: %+v", after[len(after)-1])
	}
}

// TestWorkerPanicLosesOneCandidateNotTheSweep: a panic while finishing one
// candidate (here: its result event's stream write) is recovered at the
// worker level — the sweep completes, the panic is counted, and the done
// event still arrives.
func TestWorkerPanicLosesOneCandidateNotTheSweep(t *testing.T) {
	s := New(Config{Logf: t.Logf})
	defer s.Close()
	spec := tinySpec("boom-result", 32, 64)
	spec.Workers = 1
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Write 1 is the start event; write 2 is the first result event, sent
	// from inside the scheduler's OnResult callback.
	w := &bombWriter{header: make(http.Header), bombAt: 2}
	s.handleSweep(w, httptest.NewRequest(http.MethodPost, "/sweep", bytes.NewReader(body)))

	events := w.lines(t)
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	done := events[len(events)-1]
	if done.Type != "done" {
		t.Fatalf("sweep with a panicking result write ended with %q: %+v", done.Type, done)
	}
	if done.Stats == nil || done.Stats.Panics < 1 {
		t.Errorf("recovered worker panic not counted: %+v", done.Stats)
	}
	if done.Stats.LastPanic == "" || !strings.Contains(done.Stats.LastPanic, "injected stream bug") {
		t.Errorf("last_panic = %q", done.Stats.LastPanic)
	}
}

// TestHealthzFaultCounters: injected cell faults handled by the spec's retry
// policy show up on /healthz as lifetime fault counters, end to end through
// the Spec retry/cell-timeout fields.
func TestHealthzFaultCounters(t *testing.T) {
	inj := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointCell, Kind: faultinject.KindError, On: []int{0},
	})
	_, hs := newTestServer(t, Config{FaultInjector: inj})
	spec := tinySpec("retried", 32, 64)
	spec.Retry = &dse.RetrySpec{Max: 1, BaseDelayMS: 1, MaxDelayMS: 5}
	spec.CellTimeoutMS = 60000

	events := runSweep(t, hs.URL, spec)
	done := events[len(events)-1]
	if done.Type != "done" {
		t.Fatalf("sweep ended with %q: %+v", done.Type, done)
	}
	if done.Stats.Retries != 2 {
		t.Errorf("stats retries = %d, want 2 (one per cell)", done.Stats.Retries)
	}

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Faults.Retries != 2 || h.Faults.Panics != 0 || h.Faults.DeadlineExceeded != 0 {
		t.Errorf("healthz faults: %+v", h.Faults)
	}
	if h.PersistenceDegraded {
		t.Error("healthy server reports degraded persistence")
	}
}
