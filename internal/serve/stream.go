// Event-log streaming: every sweep keeps a bounded in-memory log of the
// NDJSON events it has emitted, so a client that loses its POST /sweep
// connection — or a second observer — can attach GET /sweeps/{id}/stream
// and replay the whole stream from the first event, then follow it live
// until the terminal done/error line.
package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
)

// errPreempted is the cancellation cause the queue uses to interrupt a
// batch sweep's run round. The handler tells it apart from a real cancel
// (client disconnect, DELETE, shutdown): a preempted round checkpoints,
// yields its slots and waits for re-dispatch instead of finishing.
var errPreempted = errors.New("serve: sweep preempted")

// maxLogEvents bounds one sweep's retained event history; when a stream
// outgrows it the oldest half is dropped, so a late re-attach on a huge
// sweep replays a suffix rather than nothing.
const maxLogEvents = 8192

// eventLog is one sweep's append-only event history plus a condition
// variable for live followers. Terminal events (done/error) close the log.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	base   int // stream index of events[0] (grows when old events drop)
	events []Event
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append records one emitted event and wakes followers. Events after the
// terminal one are dropped (the backstop can race the normal finish path).
func (l *eventLog) append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if len(l.events) >= maxLogEvents {
		drop := len(l.events) / 2
		l.events = append([]Event(nil), l.events[drop:]...)
		l.base += drop
	}
	l.events = append(l.events, ev)
	if ev.Type == "done" || ev.Type == "error" {
		l.closed = true
	}
	l.cond.Broadcast()
}

// next returns the events at stream index cursor and beyond, blocking until
// some exist, the log closes, or stop reports the follower is gone (pair
// stop with wake). drained means the log is closed and fully delivered.
func (l *eventLog) next(cursor int, stop func() bool) (evs []Event, nextCursor int, drained bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < l.base {
		cursor = l.base
	}
	for cursor >= l.base+len(l.events) && !l.closed && !stop() {
		l.cond.Wait()
	}
	evs = append([]Event(nil), l.events[cursor-l.base:]...)
	nextCursor = cursor + len(evs)
	drained = l.closed && nextCursor == l.base+len(l.events)
	return evs, nextCursor, drained
}

// wake unblocks followers so they can re-check their stop condition (wired
// to the follower's request context).
func (l *eventLog) wake() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cond.Broadcast()
}

// handleStream serves GET /sweeps/{id}/stream: replay the sweep's event log
// from the beginning as NDJSON, then follow it live until the terminal
// event or client disconnect. The same typed events as the POST stream, so
// a client that lost its POST connection re-attaches here losslessly.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sw, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Id", sw.id)
	w.WriteHeader(http.StatusOK)
	stream := newStreamWriter(w)
	ctx := r.Context()
	stopWake := context.AfterFunc(ctx, sw.log.wake)
	defer stopWake()
	cursor := 0
	for {
		evs, next, drained := sw.log.next(cursor, func() bool { return ctx.Err() != nil })
		for _, ev := range evs {
			stream.send(ev)
		}
		cursor = next
		if drained || ctx.Err() != nil {
			return
		}
	}
}
