// Package serve is the HTTP front end of the DSE sweep engine: a long-lived
// server owning a bounded pool of dse.Sessions, accepting JSON sweep specs
// and streaming per-candidate results back as NDJSON while the sweep runs.
//
// Endpoints:
//
//	POST   /sweep        submit a dse.Spec; the response body is an NDJSON
//	                     event stream (start, one result per candidate in
//	                     completion order, done/error)
//	GET    /sweeps       list every sweep the server knows about
//	GET    /sweeps/{id}  one sweep's status, progress and final stats
//	DELETE /sweeps/{id}  cancel a running sweep
//	GET    /healthz      liveness plus session-cache and incumbent metrics
//
// Sweeps are checkpointed server-side per sweep id (Config.DataDir): every
// settled (candidate, model) cell is persisted as it completes, so a killed
// client that re-POSTs its spec under the same id — or a restarted server —
// resumes from the checkpoint and recomputes none of the finished cells.
// Concurrent sweeps are spread round-robin over the session pool and share
// each session's evaluation cache through the existing sweep scheduler.
//
//gemini:deterministic-output
//gemini:documented
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gemini/internal/dse"
	"gemini/internal/faultinject"
)

// Config sizes and locates a Server. The zero value is usable: it serves
// from a single session with modest concurrency and no persistence.
type Config struct {
	// Sessions is the session-pool size (default 1). More sessions mean
	// less cache sharing but also less cache-lock contention; sweeps are
	// assigned round-robin.
	Sessions int
	// MaxConcurrentSweeps bounds simultaneously running sweeps (default 4).
	// Excess POSTs are rejected with 429 rather than queued, so a client
	// can fail over to another replica.
	MaxConcurrentSweeps int
	// MaxCells caps a single sweep's (candidate, model) grid (default
	// 1<<20 cells); larger specs are rejected with 400.
	MaxCells int
	// DataDir is where per-sweep checkpoints live; empty disables
	// persistence (sweeps then only share state within the process).
	DataDir string
	// CacheDir, when set, spills every pool session's shared evaluation
	// cache to disk (dse.Options.CacheDir semantics): sweeps warm from the
	// previous process's group evaluations — not just from their own
	// checkpoint cells — and re-save the cache as candidates complete. All
	// sessions share the one directory; every save merges the file's
	// entries before snapshotting, so sessions with distinct caches
	// converge on the union of their work rather than overwriting it.
	CacheDir string
	// Logf, when set, receives server lifecycle and scheduling lines.
	Logf func(format string, args ...any)
	// FaultInjector, when non-nil, arms the deterministic fault-injection
	// harness across the server's sweeps and persistence paths (chaos tests
	// only; nil in production).
	FaultInjector *faultinject.Injector
}

func (c Config) sessions() int {
	if c.Sessions <= 0 {
		return 1
	}
	return c.Sessions
}

func (c Config) maxSweeps() int {
	if c.MaxConcurrentSweeps <= 0 {
		return 4
	}
	return c.MaxConcurrentSweeps
}

func (c Config) maxCells() int {
	if c.MaxCells <= 0 {
		return 1 << 20
	}
	return c.MaxCells
}

// Server is the sweep service. Create with New, mount as an http.Handler,
// and Close on shutdown to cancel running sweeps. Server is safe for
// concurrent use.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	base  context.Context
	stop  context.CancelFunc
	start time.Time

	pool []*dse.Session
	next atomic.Uint64

	mu      sync.Mutex
	sweeps  map[string]*sweep
	order   []string // sweep ids in registration order (for listing/eviction)
	running int

	// persist tracks checkpoint/status save health server-wide; a failing
	// DataDir degrades persistence (sweeps keep running and streaming), it
	// never fails a sweep. /healthz surfaces the state.
	persist dse.PersistenceTracker

	// Lifetime fault counters aggregated from every finished sweep's stats,
	// served by /healthz.
	faultRetries   atomic.Int64
	faultPanics    atomic.Int64
	faultDeadlines atomic.Int64
}

// noteFaults folds a finished sweep's fault counters into the server-wide
// aggregates.
func (s *Server) noteFaults(st dse.SweepStats) {
	s.faultRetries.Add(int64(st.Retries))
	s.faultPanics.Add(int64(st.Panics))
	s.faultDeadlines.Add(int64(st.DeadlineExceeded))
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		base:   base,
		stop:   stop,
		start:  time.Now(),
		pool:   make([]*dse.Session, cfg.sessions()),
		sweeps: make(map[string]*sweep),
	}
	for i := range s.pool {
		s.pool[i] = dse.NewSession()
		s.pool[i].Logf = s.logf
	}
	// Restore the finished-sweep history before serving: GET /sweeps then
	// reports the predecessor process's sweeps alongside new ones.
	s.loadStatuses()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("GET /sweeps", s.handleList)
	mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the server's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every running sweep and refuses new work. In-flight POST
// handlers observe the cancellation, checkpoint their settled cells and
// finish their streams; Close does not wait for them — callers that need
// the drain should pair it with http.Server.Shutdown.
func (s *Server) Close() { s.stop() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// session picks the next pool session round-robin.
func (s *Server) session() *dse.Session {
	return s.pool[int(s.next.Add(1))%len(s.pool)]
}

// sweepIDPattern is the accepted client-supplied sweep id shape: short,
// path- and filename-safe (ids key checkpoint files on disk).
var sweepIDPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// retiredSweeps bounds the finished-sweep history kept for GET /sweeps.
const retiredSweeps = 1024

// register records a new running sweep, enforcing the id-uniqueness and
// concurrency limits. The returned http status is 0 on success.
func (s *Server) register(sw *sweep) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.base.Err() != nil {
		return http.StatusServiceUnavailable, fmt.Errorf("server is shutting down")
	}
	if old, ok := s.sweeps[sw.id]; ok {
		if old.stateNow() == StateRunning {
			return http.StatusConflict, fmt.Errorf("sweep %q is already running", sw.id)
		}
		// A finished record under the same id is superseded: re-POSTing a
		// spec is how clients resume after a disconnect or server restart.
	}
	if s.running >= s.cfg.maxSweeps() {
		return http.StatusTooManyRequests, fmt.Errorf("at capacity: %d sweeps running", s.running)
	}
	s.running++
	if _, ok := s.sweeps[sw.id]; !ok {
		s.order = append(s.order, sw.id)
	}
	s.sweeps[sw.id] = sw
	// Evict the oldest finished sweeps beyond the history bound.
	for len(s.order) > retiredSweeps {
		evicted := false
		for i, id := range s.order {
			if s.sweeps[id].stateNow() != StateRunning {
				delete(s.sweeps, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				s.removeStatus(id)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
	return 0, nil
}

// release marks a sweep's run slot free.
func (s *Server) release() {
	s.mu.Lock()
	s.running--
	s.mu.Unlock()
}

func (s *Server) lookup(id string) (*sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// statuses snapshots every known sweep in registration order.
func (s *Server) statuses() []SweepStatus {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	sws := make([]*sweep, 0, len(ids))
	for _, id := range ids {
		if sw, ok := s.sweeps[id]; ok {
			sws = append(sws, sw)
		}
	}
	s.mu.Unlock()
	out := make([]SweepStatus, len(sws))
	for i, sw := range sws {
		out[i] = sw.status()
	}
	return out
}

// --- plain-JSON handlers -------------------------------------------------

// errorBody is the JSON error envelope of every non-streaming failure.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	type listBody struct {
		Sweeps []SweepStatus `json:"sweeps"`
	}
	writeJSON(w, http.StatusOK, listBody{Sweeps: s.statuses()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sw.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	sw.cancel()
	writeJSON(w, http.StatusAccepted, sw.status())
}

// SessionHealth is one pool session's health snapshot.
type SessionHealth struct {
	// Index is the session's pool slot.
	Index int `json:"index"`
	// CacheHits / CacheMisses / CacheEntries mirror eval.CacheStats.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// CacheHitRate is hits / (hits + misses), 0 when idle.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheDiskHits counts cache hits served by entries loaded from the
	// disk spill — group evaluations a predecessor process paid for.
	CacheDiskHits int64 `json:"cache_disk_hits,omitempty"`
	// CacheDiskLoaded counts entries the session merged from the disk spill.
	CacheDiskLoaded int64 `json:"cache_disk_loaded,omitempty"`
	// CacheDiskSaves counts completed background spills of this session's
	// cache.
	CacheDiskSaves int64 `json:"cache_disk_saves,omitempty"`
	// CheckpointCells counts the settled cells the session holds.
	CheckpointCells int `json:"checkpoint_cells"`
	// ResumedCells counts cells served from checkpoints over the session's
	// lifetime.
	ResumedCells int64 `json:"resumed_cells"`
	// Persistence is the session's disk-cache spill health: failed spills
	// degrade restart cost, never the sweeps themselves.
	Persistence dse.PersistenceState `json:"persistence"`
}

// FaultCounts aggregates the fault-handling counters of every sweep the
// server has finished: transient retries, recovered panics and per-cell
// deadline expiries. Steadily growing counts under a steady workload are
// the signal to look at LastError fields and logs.
type FaultCounts struct {
	Retries          int64 `json:"retries"`
	Panics           int64 `json:"panics"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
}

// SweepCounts aggregates sweep states for the health endpoint.
type SweepCounts struct {
	// Running, Done, Canceled and Failed count sweeps by state.
	Running  int `json:"running"`
	Done     int `json:"done"`
	Canceled int `json:"canceled"`
	Failed   int `json:"failed"`
}

// RunningSweep is the health endpoint's live view of one running sweep: its
// progress and the current pruning incumbent.
type RunningSweep struct {
	// ID names the sweep.
	ID string `json:"id"`
	// DoneCandidates / Candidates is the sweep's progress.
	DoneCandidates int `json:"done_candidates"`
	// Candidates is the sweep's total candidate count.
	Candidates int `json:"candidates"`
	// Incumbent is the best feasible objective streamed so far (absent
	// until one candidate is feasible).
	Incumbent *CandidateSummary `json:"incumbent,omitempty"`
	// Trajectory is the live incumbent trajectory: every improvement of
	// Incumbent streamed so far, in order.
	Trajectory []TrajectoryStep `json:"trajectory,omitempty"`
	// Rungs lists the racing rungs completed so far with per-rung
	// survivor counts (racing sweeps only).
	Rungs []RungSummary `json:"rungs,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	// Status is "ok" while the server accepts work, "closing" after Close.
	Status string `json:"status"`
	// UptimeSeconds is the time since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Sessions reports per-session cache metrics.
	Sessions []SessionHealth `json:"sessions"`
	// Sweeps aggregates sweep states.
	Sweeps SweepCounts `json:"sweeps"`
	// Running lists every running sweep with its live incumbent.
	Running []RunningSweep `json:"running,omitempty"`
	// Faults aggregates fault-handling counters across finished sweeps.
	Faults FaultCounts `json:"faults"`
	// Persistence is the server-side checkpoint/status save health.
	Persistence dse.PersistenceState `json:"persistence"`
	// PersistenceDegraded reports that any persistence path — the server's
	// checkpoint/status saves or a session's disk-cache spill — is currently
	// degraded (several consecutive failed saves). Work continues in memory;
	// restart cost is what degrades.
	PersistenceDegraded bool `json:"persistence_degraded"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := Health{Status: "ok", UptimeSeconds: time.Since(s.start).Seconds()}
	if s.base.Err() != nil {
		h.Status = "closing"
	}
	h.Faults = FaultCounts{
		Retries:          s.faultRetries.Load(),
		Panics:           s.faultPanics.Load(),
		DeadlineExceeded: s.faultDeadlines.Load(),
	}
	h.Persistence = s.persist.State()
	h.PersistenceDegraded = h.Persistence.Degraded
	for i, ses := range s.pool {
		cs := ses.CacheStats()
		ps := ses.PersistenceState()
		h.PersistenceDegraded = h.PersistenceDegraded || ps.Degraded
		h.Sessions = append(h.Sessions, SessionHealth{
			Index:           i,
			CacheHits:       cs.Hits,
			CacheMisses:     cs.Misses,
			CacheEntries:    cs.Entries,
			CacheHitRate:    cs.HitRate(),
			CacheDiskHits:   cs.DiskHits,
			CacheDiskLoaded: cs.DiskLoaded,
			CacheDiskSaves:  cs.DiskSaves,
			CheckpointCells: ses.CheckpointCells(),
			ResumedCells:    ses.ResumedCells(),
			Persistence:     ps,
		})
	}
	for _, st := range s.statuses() {
		switch st.State {
		case StateRunning:
			h.Sweeps.Running++
			h.Running = append(h.Running, RunningSweep{
				ID:             st.ID,
				DoneCandidates: st.DoneCandidates,
				Candidates:     st.Candidates,
				Incumbent:      st.Best,
				Trajectory:     st.Trajectory,
				Rungs:          st.Rungs,
			})
		case StateDone:
			h.Sweeps.Done++
		case StateCanceled:
			h.Sweeps.Canceled++
		case StateFailed:
			h.Sweeps.Failed++
		}
	}
	sort.Slice(h.Running, func(a, b int) bool { return h.Running[a].ID < h.Running[b].ID })
	writeJSON(w, http.StatusOK, h)
}
