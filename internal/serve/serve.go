// Package serve is the HTTP front end of the DSE sweep engine: a long-lived
// server owning a bounded pool of dse.Sessions, accepting JSON sweep specs
// and streaming per-candidate results back as NDJSON while the sweep runs.
//
// Endpoints:
//
//	POST   /sweep               submit a dse.Spec; the response body is an
//	                            NDJSON event stream (queued when the sweep
//	                            waits, start, one result per candidate in
//	                            completion order, preempted/resumed around
//	                            queue preemptions, done/error)
//	GET    /sweeps              list every sweep the server knows about
//	GET    /sweeps/{id}         one sweep's status, progress and final stats
//	GET    /sweeps/{id}/stream  replay the sweep's event stream from the
//	                            beginning, then follow it live (re-attach)
//	DELETE /sweeps/{id}         cancel a running or queued sweep
//	GET    /healthz             liveness plus session-cache, incumbent and
//	                            queue metrics
//
// Sweeps are checkpointed server-side per sweep id (Config.DataDir): every
// settled (candidate, model) cell is persisted as it completes, so a killed
// client that re-POSTs its spec under the same id — or a restarted server —
// resumes from the checkpoint and recomputes none of the finished cells.
//
// Execution is gated by a multi-tenant job queue over a fixed worker-slot
// pool: interactive sweeps dispatch ahead of batch sweeps, tenants share
// slots by weighted deficit round-robin, per-tenant quotas reject excess
// backlog with 429 (server-wide overload with 503), and a blocked
// interactive sweep preempts the newest batch work — which checkpoints,
// yields and later resumes from its settled cells for free. Dispatched
// sweeps are spread round-robin over the session pool and share each
// session's evaluation cache through the existing sweep scheduler.
//
//gemini:deterministic-output
//gemini:documented
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gemini/internal/dse"
	"gemini/internal/faultinject"
	"gemini/internal/fleet"
)

// Config sizes and locates a Server. The zero value is usable: it serves
// from a single session with modest concurrency and no persistence.
type Config struct {
	// Sessions is the session-pool size (default 1). More sessions mean
	// less cache sharing but also less cache-lock contention; sweeps are
	// assigned round-robin.
	Sessions int
	// MaxConcurrentSweeps bounds simultaneously dispatched sweeps (default
	// 4). Excess admitted sweeps wait in the queue; excess backlog is
	// rejected (QueueDepth, MaxQueuedSweeps).
	MaxConcurrentSweeps int
	// WorkerSlots is the worker-slot pool the queue dispatches sweeps
	// against (default GOMAXPROCS). A sweep occupies its clamped Workers
	// request in slots while it runs.
	WorkerSlots int
	// QueueDepth is the per-tenant waiting-sweep quota (default 8); a
	// tenant POSTing beyond it gets 429 with a Retry-After.
	QueueDepth int
	// MaxQueuedSweeps is the server-wide waiting-sweep bound (default 64);
	// beyond it POSTs get 503 so clients fail over to another replica.
	MaxQueuedSweeps int
	// BatchShare is the fraction of WorkerSlots batch-priority sweeps may
	// hold while interactive work is queued or running (default 0.5). With
	// no interactive work the queue is work-conserving and batch may use
	// every slot.
	BatchShare float64
	// TenantWeights sets per-tenant fair-share weights for the queue's
	// deficit round-robin; unlisted tenants weigh 1.
	TenantWeights map[string]int
	// MaxCells caps a single sweep's (candidate, model) grid (default
	// 1<<20 cells); larger specs are rejected with 400.
	MaxCells int
	// DataDir is where per-sweep checkpoints live; empty disables
	// persistence (sweeps then only share state within the process).
	DataDir string
	// FleetLeaseTTL is how long a fleet shard lease lives without renewal
	// before the coordinator re-shards it onto another worker (default
	// 10s). Lower it for fast failover in tests; raise it on networks
	// where renewals may stall.
	FleetLeaseTTL time.Duration
	// CacheDir, when set, spills every pool session's shared evaluation
	// cache to disk (dse.Options.CacheDir semantics): sweeps warm from the
	// previous process's group evaluations — not just from their own
	// checkpoint cells — and re-save the cache as candidates complete. All
	// sessions share the one directory; every save merges the file's
	// entries before snapshotting, so sessions with distinct caches
	// converge on the union of their work rather than overwriting it.
	CacheDir string
	// Logf, when set, receives server lifecycle and scheduling lines.
	Logf func(format string, args ...any)
	// FaultInjector, when non-nil, arms the deterministic fault-injection
	// harness across the server's sweeps and persistence paths (chaos tests
	// only; nil in production).
	FaultInjector *faultinject.Injector
}

func (c Config) sessions() int {
	if c.Sessions <= 0 {
		return 1
	}
	return c.Sessions
}

func (c Config) maxSweeps() int {
	if c.MaxConcurrentSweeps <= 0 {
		return 4
	}
	return c.MaxConcurrentSweeps
}

func (c Config) maxCells() int {
	if c.MaxCells <= 0 {
		return 1 << 20
	}
	return c.MaxCells
}

func (c Config) workerSlots() int {
	if c.WorkerSlots <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.WorkerSlots
}

// Server is the sweep service. Create with New, mount as an http.Handler,
// and Close on shutdown to cancel running sweeps. Server is safe for
// concurrent use.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	base  context.Context
	stop  context.CancelFunc
	start time.Time

	pool []*dse.Session
	next atomic.Uint64

	// queue is the multi-tenant admission/dispatch state machine every
	// sweep passes through before it may touch a session.
	queue *sweepQueue

	// fleet is the distributed-sweep coordinator, mounted under /fleet/:
	// shard leases, incumbent fan-out and checkpoint merging for worker
	// processes (gemini-serve -worker).
	fleet *fleet.Coordinator

	mu     sync.Mutex
	sweeps map[string]*sweep
	order  []string // sweep ids in registration order (for listing/eviction)

	// persist tracks checkpoint/status save health server-wide; a failing
	// DataDir degrades persistence (sweeps keep running and streaming), it
	// never fails a sweep. /healthz surfaces the state.
	persist dse.PersistenceTracker

	// Lifetime fault counters aggregated from every finished sweep's stats,
	// served by /healthz.
	faultRetries   atomic.Int64
	faultPanics    atomic.Int64
	faultDeadlines atomic.Int64
}

// noteFaults folds a finished sweep's fault counters into the server-wide
// aggregates.
func (s *Server) noteFaults(st dse.SweepStats) {
	s.faultRetries.Add(int64(st.Retries))
	s.faultPanics.Add(int64(st.Panics))
	s.faultDeadlines.Add(int64(st.DeadlineExceeded))
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		base:   base,
		stop:   stop,
		start:  time.Now(),
		pool:   make([]*dse.Session, cfg.sessions()),
		sweeps: make(map[string]*sweep),
	}
	for i := range s.pool {
		s.pool[i] = dse.NewSession()
		s.pool[i].Logf = s.logf
	}
	s.queue = newSweepQueue(queueConfig{
		slots:      cfg.workerSlots(),
		maxRunning: cfg.maxSweeps(),
		queueDepth: cfg.QueueDepth,
		maxQueued:  cfg.MaxQueuedSweeps,
		batchShare: cfg.BatchShare,
		weights:    cfg.TenantWeights,
	})
	// Restore the finished-sweep history before serving: GET /sweeps then
	// reports the predecessor process's sweeps alongside new ones.
	s.loadStatuses()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("GET /sweeps", s.handleList)
	mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /sweeps/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.fleet = s.newFleetCoordinator()
	mux.Handle("/fleet/", http.StripPrefix("/fleet", s.fleet))
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the server's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every running sweep and refuses new work. In-flight POST
// handlers observe the cancellation, checkpoint their settled cells and
// finish their streams; Close does not wait for them — callers that need
// the drain should pair it with http.Server.Shutdown.
func (s *Server) Close() { s.stop() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// session picks the next pool session round-robin.
func (s *Server) session() *dse.Session {
	return s.pool[s.next.Add(1)%uint64(len(s.pool))]
}

// sweepIDPattern is the accepted client-supplied sweep id shape: short,
// path- and filename-safe (ids key checkpoint files on disk).
var sweepIDPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// retiredSweeps bounds the finished-sweep history kept for GET /sweeps.
const retiredSweeps = 1024

// register records a new sweep, enforcing id uniqueness. The returned http
// status is 0 on success; undo then reverses the registration (restoring
// any superseded finished record) should queue admission reject the sweep.
func (s *Server) register(sw *sweep) (undo func(), code int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.base.Err() != nil {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down")
	}
	old, existed := s.sweeps[sw.id]
	if existed && old.active() {
		return nil, http.StatusConflict, fmt.Errorf("sweep %q is already running", sw.id)
	}
	// A finished record under the same id is superseded: re-POSTing a
	// spec is how clients resume after a disconnect or server restart.
	if !existed {
		s.order = append(s.order, sw.id)
	}
	s.sweeps[sw.id] = sw
	// Evict the oldest finished sweeps beyond the history bound.
	for len(s.order) > retiredSweeps {
		evicted := false
		for i, id := range s.order {
			if !s.sweeps[id].active() {
				delete(s.sweeps, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				s.removeStatus(id)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
	undo = func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if cur, ok := s.sweeps[sw.id]; !ok || cur != sw {
			return
		}
		if existed {
			s.sweeps[sw.id] = old
			return
		}
		delete(s.sweeps, sw.id)
		for i, id := range s.order {
			if id == sw.id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	return undo, 0, nil
}

func (s *Server) lookup(id string) (*sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// statuses snapshots every known sweep in registration order.
func (s *Server) statuses() []SweepStatus {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	sws := make([]*sweep, 0, len(ids))
	for _, id := range ids {
		if sw, ok := s.sweeps[id]; ok {
			sws = append(sws, sw)
		}
	}
	s.mu.Unlock()
	out := make([]SweepStatus, len(sws))
	for i, sw := range sws {
		out[i] = sw.status()
	}
	return out
}

// --- plain-JSON handlers -------------------------------------------------

// errorBody is the JSON error envelope of every non-streaming failure.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on queue rejections
	// (429 per-tenant quota, 503 server-wide backlog); zero otherwise.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeRejection writes a queue admission rejection: the Retry-After header
// plus the error envelope mirroring it.
func writeRejection(w http.ResponseWriter, aerr *admitError) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", aerr.retryAfter))
	writeJSON(w, aerr.code, errorBody{Error: aerr.msg, RetryAfterSeconds: aerr.retryAfter})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	type listBody struct {
		Sweeps []SweepStatus `json:"sweeps"`
	}
	writeJSON(w, http.StatusOK, listBody{Sweeps: s.statuses()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sw.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	sw.cancel()
	writeJSON(w, http.StatusAccepted, sw.status())
}

// SessionHealth is one pool session's health snapshot.
type SessionHealth struct {
	// Index is the session's pool slot.
	Index int `json:"index"`
	// CacheHits / CacheMisses / CacheEntries mirror eval.CacheStats.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// CacheHitRate is hits / (hits + misses), 0 when idle.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheDiskHits counts cache hits served by entries loaded from the
	// disk spill — group evaluations a predecessor process paid for.
	CacheDiskHits int64 `json:"cache_disk_hits,omitempty"`
	// CacheDiskLoaded counts entries the session merged from the disk spill.
	CacheDiskLoaded int64 `json:"cache_disk_loaded,omitempty"`
	// CacheDiskSaves counts completed background spills of this session's
	// cache.
	CacheDiskSaves int64 `json:"cache_disk_saves,omitempty"`
	// CheckpointCells counts the settled cells the session holds.
	CheckpointCells int `json:"checkpoint_cells"`
	// ResumedCells counts cells served from checkpoints over the session's
	// lifetime.
	ResumedCells int64 `json:"resumed_cells"`
	// Persistence is the session's disk-cache spill health: failed spills
	// degrade restart cost, never the sweeps themselves.
	Persistence dse.PersistenceState `json:"persistence"`
}

// FaultCounts aggregates the fault-handling counters of every sweep the
// server has finished: transient retries, recovered panics and per-cell
// deadline expiries. Steadily growing counts under a steady workload are
// the signal to look at LastError fields and logs.
type FaultCounts struct {
	Retries          int64 `json:"retries"`
	Panics           int64 `json:"panics"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
}

// SweepCounts aggregates sweep states for the health endpoint.
type SweepCounts struct {
	// Queued, Running, Done, Canceled and Failed count sweeps by state.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Canceled int `json:"canceled"`
	Failed   int `json:"failed"`
}

// TenantHealth is one tenant's queue accounting in the health body.
type TenantHealth struct {
	// Name is the tenant (dse.Spec.Tenant, "default" when unset).
	Name string `json:"name"`
	// Weight is the tenant's fair-share weight.
	Weight int `json:"weight"`
	// Waiting and Running count the tenant's queued and dispatched sweeps.
	Waiting int `json:"waiting"`
	// Running counts the tenant's dispatched sweeps.
	Running int `json:"running"`
	// Dispatched, Preemptions and Rejected are lifetime counters.
	Dispatched int64 `json:"dispatched"`
	// Preemptions counts the tenant's preemption-yield cycles.
	Preemptions int64 `json:"preemptions"`
	// Rejected counts the tenant's admission rejections (429 and 503).
	Rejected int64 `json:"rejected"`
}

// QueueHealth is the sweep queue's snapshot in the health body.
type QueueHealth struct {
	// Slots and FreeSlots size the worker-slot pool.
	Slots int `json:"slots"`
	// FreeSlots is how many slots are currently unheld.
	FreeSlots int `json:"free_slots"`
	// BatchShare is the configured batch slot share under interactive load.
	BatchShare float64 `json:"batch_share"`
	// RunningSweeps counts dispatched sweeps holding slots.
	RunningSweeps int `json:"running_sweeps"`
	// WaitingInteractive and WaitingBatch count queued sweeps by class.
	WaitingInteractive int `json:"waiting_interactive"`
	// WaitingBatch counts queued batch-priority sweeps.
	WaitingBatch int `json:"waiting_batch"`
	// Preemptions and Resumes are lifetime preemption-cycle counters.
	Preemptions int64 `json:"preemptions"`
	// Resumes counts re-dispatches of previously preempted sweeps.
	Resumes int64 `json:"resumes"`
	// Rejected429 and Rejected503 count admission rejections by status.
	Rejected429 int64 `json:"rejected_429"`
	// Rejected503 counts server-wide backlog rejections.
	Rejected503 int64 `json:"rejected_503"`
	// Tenants lists per-tenant accounting, sorted by name.
	Tenants []TenantHealth `json:"tenants,omitempty"`
}

// RunningSweep is the health endpoint's live view of one running sweep: its
// progress and the current pruning incumbent.
type RunningSweep struct {
	// ID names the sweep.
	ID string `json:"id"`
	// DoneCandidates / Candidates is the sweep's progress.
	DoneCandidates int `json:"done_candidates"`
	// Candidates is the sweep's total candidate count.
	Candidates int `json:"candidates"`
	// Incumbent is the best feasible objective streamed so far (absent
	// until one candidate is feasible).
	Incumbent *CandidateSummary `json:"incumbent,omitempty"`
	// Trajectory is the live incumbent trajectory: every improvement of
	// Incumbent streamed so far, in order.
	Trajectory []TrajectoryStep `json:"trajectory,omitempty"`
	// Rungs lists the racing rungs completed so far with per-rung
	// survivor counts (racing sweeps only).
	Rungs []RungSummary `json:"rungs,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	// Status is "ok" while the server accepts work, "closing" after Close.
	Status string `json:"status"`
	// UptimeSeconds is the time since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Sessions reports per-session cache metrics.
	Sessions []SessionHealth `json:"sessions"`
	// Sweeps aggregates sweep states.
	Sweeps SweepCounts `json:"sweeps"`
	// Running lists every running sweep with its live incumbent.
	Running []RunningSweep `json:"running,omitempty"`
	// Faults aggregates fault-handling counters across finished sweeps.
	Faults FaultCounts `json:"faults"`
	// Persistence is the server-side checkpoint/status save health.
	Persistence dse.PersistenceState `json:"persistence"`
	// PersistenceDegraded reports that any persistence path — the server's
	// checkpoint/status saves or a session's disk-cache spill — is currently
	// degraded (several consecutive failed saves). Work continues in memory;
	// restart cost is what degrades.
	PersistenceDegraded bool `json:"persistence_degraded"`
	// Queue is the sweep queue's snapshot: slot occupancy, per-class
	// backlog, preemption and rejection counters, per-tenant accounting.
	Queue *QueueHealth `json:"queue,omitempty"`
	// Fleet is the distributed-sweep coordinator's snapshot: sweep and
	// shard counts, live lease holders, lease-expiry total.
	Fleet *fleet.Health `json:"fleet,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := Health{Status: "ok", UptimeSeconds: time.Since(s.start).Seconds()}
	if s.base.Err() != nil {
		h.Status = "closing"
	}
	h.Faults = FaultCounts{
		Retries:          s.faultRetries.Load(),
		Panics:           s.faultPanics.Load(),
		DeadlineExceeded: s.faultDeadlines.Load(),
	}
	h.Persistence = s.persist.State()
	h.PersistenceDegraded = h.Persistence.Degraded
	for i, ses := range s.pool {
		cs := ses.CacheStats()
		ps := ses.PersistenceState()
		h.PersistenceDegraded = h.PersistenceDegraded || ps.Degraded
		h.Sessions = append(h.Sessions, SessionHealth{
			Index:           i,
			CacheHits:       cs.Hits,
			CacheMisses:     cs.Misses,
			CacheEntries:    cs.Entries,
			CacheHitRate:    cs.HitRate(),
			CacheDiskHits:   cs.DiskHits,
			CacheDiskLoaded: cs.DiskLoaded,
			CacheDiskSaves:  cs.DiskSaves,
			CheckpointCells: ses.CheckpointCells(),
			ResumedCells:    ses.ResumedCells(),
			Persistence:     ps,
		})
	}
	h.Queue = s.queue.health()
	fh := s.fleet.Health()
	h.Fleet = &fh
	for _, st := range s.statuses() {
		switch st.State {
		case StateQueued:
			h.Sweeps.Queued++
		case StateRunning:
			h.Sweeps.Running++
			h.Running = append(h.Running, RunningSweep{
				ID:             st.ID,
				DoneCandidates: st.DoneCandidates,
				Candidates:     st.Candidates,
				Incumbent:      st.Best,
				Trajectory:     st.Trajectory,
				Rungs:          st.Rungs,
			})
		case StateDone:
			h.Sweeps.Done++
		case StateCanceled:
			h.Sweeps.Canceled++
		case StateFailed:
			h.Sweeps.Failed++
		}
	}
	sort.Slice(h.Running, func(a, b int) bool { return h.Running[a].ID < h.Running[b].ID })
	writeJSON(w, http.StatusOK, h)
}
