// Sweep execution: one POST /sweep request's lifecycle. The handler
// resolves the spec, registers the sweep, binds it to a pool session,
// replays the sweep's server-side checkpoint, and streams typed NDJSON
// events while dse.Session.RunContext walks the grid. Every settled cell is
// re-checkpointed as candidates complete, so the on-disk state is never
// more than one candidate behind the stream.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gemini/internal/dse"
	"gemini/internal/faultinject"
)

// SweepState is the lifecycle state of a sweep.
type SweepState string

// Sweep lifecycle states.
const (
	// StateQueued marks a sweep admitted by the queue but not yet holding
	// worker slots — waiting for dispatch, or parked mid-run by a
	// preemption.
	StateQueued SweepState = "queued"
	// StateRunning marks a sweep whose grid is still being walked.
	StateRunning SweepState = "running"
	// StateDone marks a sweep whose every candidate settled.
	StateDone SweepState = "done"
	// StateCanceled marks a sweep stopped early (client disconnect,
	// DELETE /sweeps/{id}, or server shutdown); its checkpoint survives.
	StateCanceled SweepState = "canceled"
	// StateFailed marks a sweep that died of an infrastructure error.
	StateFailed SweepState = "failed"
)

// CandidateSummary is the JSON shape of one candidate's outcome, used in
// result events, done events and sweep statuses. Objective-class numbers
// are omitted rather than sent as +Inf (which JSON cannot carry) when the
// candidate is not feasible.
type CandidateSummary struct {
	// Arch is the candidate's configuration name.
	Arch string `json:"arch"`
	// Chiplets and Cores describe the candidate's partitioning.
	Chiplets int `json:"chiplets"`
	// Cores is the candidate's total core count.
	Cores int `json:"cores"`
	// Status is "ok", "infeasible", "pruned" or "error".
	Status string `json:"status"`
	// Objective is MC^alpha * E^beta * D^gamma (feasible candidates only).
	Objective float64 `json:"objective,omitempty"`
	// MCUSD is the candidate's monetary cost in dollars.
	MCUSD float64 `json:"mc_usd,omitempty"`
	// EnergyJ is the geometric-mean mapping energy (feasible only).
	EnergyJ float64 `json:"energy_j,omitempty"`
	// DelayS is the geometric-mean mapping delay (feasible only).
	DelayS float64 `json:"delay_s,omitempty"`
	// EDP is EnergyJ * DelayS (feasible only).
	EDP float64 `json:"edp,omitempty"`
	// LowerBound is the objective bound that justified a prune (pruned
	// candidates only).
	LowerBound float64 `json:"lower_bound,omitempty"`
	// Error carries the infrastructure error (errored candidates only).
	Error string `json:"error,omitempty"`
}

// finite returns v when it is a real number, else 0 so the field is omitted
// from JSON instead of breaking the encoder.
func finite(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// summarize converts a dse.CandidateResult to its wire shape.
func summarize(r *dse.CandidateResult) *CandidateSummary {
	cs := &CandidateSummary{
		Arch:       r.Cfg.Name,
		Chiplets:   r.Cfg.Chiplets(),
		Cores:      r.Cfg.Cores(),
		Status:     r.Status(),
		MCUSD:      finite(r.MC.Total()),
		LowerBound: finite(r.LowerBound),
	}
	if r.Feasible {
		cs.Objective = finite(r.Obj)
		cs.EnergyJ = finite(r.Energy)
		cs.DelayS = finite(r.Delay)
		cs.EDP = finite(r.EDP())
	}
	if r.Err != nil {
		cs.Error = r.Err.Error()
	}
	return cs
}

// StatsSummary is the JSON shape of dse.SweepStats (which itself is not
// JSON-safe: an unseeded incumbent is +Inf).
type StatsSummary struct {
	// Order is the dispatch order the sweep used ("bound" or "grid").
	Order string `json:"order"`
	// Candidates and Cells size the sweep grid.
	Candidates int `json:"candidates"`
	// Cells is the total (candidate, model) cell count.
	Cells int `json:"cells"`
	// Canceled reports an early stop; unfinished cells were not run.
	Canceled bool `json:"canceled,omitempty"`
	// ResumedCells counts cells served from the server-side checkpoint.
	ResumedCells int `json:"resumed_cells"`
	// PrunedCandidates counts candidates the bound gate skipped.
	PrunedCandidates int `json:"pruned_candidates"`
	// AbandonedRestarts counts SA restarts cut off by the live incumbent.
	AbandonedRestarts int `json:"abandoned_restarts"`
	// SkippedRestarts counts SA restarts saved by portfolio patience.
	SkippedRestarts int `json:"skipped_restarts"`
	// Racing reports the sweep allocated restarts by successive halving;
	// Rungs then records every completed racing rung in order.
	Racing bool          `json:"racing,omitempty"`
	Rungs  []RungSummary `json:"rungs,omitempty"`
	// SeededIncumbent is the incumbent restored from the checkpoint before
	// the first task (omitted when nothing seeded).
	SeededIncumbent float64 `json:"seeded_incumbent,omitempty"`
	// Trajectory records every incumbent improvement in order.
	Trajectory []TrajectoryStep `json:"trajectory,omitempty"`
	// Retries counts cell attempts re-run after transient failures.
	Retries int `json:"retries,omitempty"`
	// Panics counts recovered panics (each failed its cell, not the server).
	Panics int `json:"panics,omitempty"`
	// DeadlineExceeded counts cell attempts cut off by the per-cell timeout.
	DeadlineExceeded int `json:"deadline_exceeded,omitempty"`
	// LastPanic is the most recent recovered panic's message and stack.
	LastPanic string `json:"last_panic,omitempty"`
	// PersistenceErrors counts failed background saves (checkpoint and
	// disk-cache) during the sweep; the sweep itself kept running.
	PersistenceErrors int `json:"persistence_errors,omitempty"`
	// PersistenceDegraded reports the persistence layer ended the sweep
	// degraded; LastPersistenceError is the most recent failure.
	PersistenceDegraded  bool   `json:"persistence_degraded,omitempty"`
	LastPersistenceError string `json:"last_persistence_error,omitempty"`
}

// RungSummary is the JSON shape of one racing rung (dse.RungStats): the
// cumulative restart budget the rung settled, how many candidates entered,
// and how many survived promotion.
type RungSummary struct {
	Rung       int `json:"rung"`
	Budget     int `json:"budget"`
	Candidates int `json:"candidates"`
	Survivors  int `json:"survivors"`
}

// TrajectoryStep is one incumbent improvement in a StatsSummary.
type TrajectoryStep struct {
	// Candidate is the improving candidate ("(checkpoint seed)" for the
	// restored initial value).
	Candidate string `json:"candidate"`
	// Objective is the improved incumbent value.
	Objective float64 `json:"objective"`
}

// summarizeStats converts dse.SweepStats to its wire shape.
func summarizeStats(st dse.SweepStats) *StatsSummary {
	out := &StatsSummary{
		Order:             string(st.Order),
		Candidates:        st.Candidates,
		Cells:             st.Cells,
		Canceled:          st.Canceled,
		ResumedCells:      st.ResumedCells,
		PrunedCandidates:  st.PrunedCandidates,
		AbandonedRestarts: st.AbandonedRestarts,
		SkippedRestarts:   st.SkippedRestarts,
		Racing:            st.Racing,
		SeededIncumbent:   finite(st.SeededIncumbent),

		Retries:              st.Retries,
		Panics:               st.Panics,
		DeadlineExceeded:     st.DeadlineExceeded,
		LastPanic:            st.LastPanic,
		PersistenceErrors:    st.PersistenceErrors,
		PersistenceDegraded:  st.PersistenceDegraded,
		LastPersistenceError: st.LastPersistenceError,
	}
	for _, r := range st.Rungs {
		out.Rungs = append(out.Rungs, RungSummary(r))
	}
	for _, step := range st.Trajectory {
		out.Trajectory = append(out.Trajectory, TrajectoryStep{Candidate: step.Candidate, Objective: finite(step.Obj)})
	}
	return out
}

// Event is one NDJSON line of a POST /sweep (or GET /sweeps/{id}/stream)
// response stream.
type Event struct {
	// Type is "queued", "start", "result", "rung", "preempted", "resumed",
	// "done" or "error".
	Type string `json:"type"`
	// Tenant and Priority identify the sweep's queue identity (queued,
	// preempted and resumed events).
	Tenant string `json:"tenant,omitempty"`
	// Priority is the sweep's class, "interactive" or "batch" (queued,
	// preempted and resumed events).
	Priority string `json:"priority,omitempty"`
	// Position is the server-wide waiting count at admission, 1-based
	// (queued events).
	Position int `json:"position,omitempty"`
	// SweepID names the sweep (every event carries it, so streams can be
	// demultiplexed by tooling that merges them).
	SweepID string `json:"sweep_id"`
	// Seq is the 1-based completion index of a result event.
	Seq int `json:"seq,omitempty"`
	// Candidates, Cells and Models describe the grid (start events).
	Candidates int `json:"candidates,omitempty"`
	// Cells is the (candidate, model) grid size (start events).
	Cells int `json:"cells,omitempty"`
	// Models lists the workloads (start events).
	Models []string `json:"models,omitempty"`
	// CheckpointCells is how many of this sweep's own (candidate, model)
	// cells were already settled — and will be restored, not recomputed —
	// when it started (start events; > 0 means the sweep is resuming). On
	// preempted and resumed events it is the settled-cell count carried
	// across the preemption: resume restores exactly these for free.
	// Cells of unrelated sweeps sharing the session are not counted.
	CheckpointCells int `json:"checkpoint_cells,omitempty"`
	// Result is the candidate outcome (result events).
	Result *CandidateSummary `json:"result,omitempty"`
	// Rung is one completed racing rung (rung events).
	Rung *RungSummary `json:"rung,omitempty"`
	// Best is the winning candidate (done events, when any is feasible).
	Best *CandidateSummary `json:"best,omitempty"`
	// Stats is the sweep's scheduler accounting (done events).
	Stats *StatsSummary `json:"stats,omitempty"`
	// ElapsedMS is the sweep wall time (done events).
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// Error explains an error event (spec rejected mid-flight, sweep
	// canceled, infrastructure failure).
	Error string `json:"error,omitempty"`
}

// SweepStatus is the GET /sweeps/{id} body: a point-in-time view of one
// sweep's progress.
type SweepStatus struct {
	// ID names the sweep.
	ID string `json:"id"`
	// State is the sweep's lifecycle state.
	State SweepState `json:"state"`
	// Tenant is the sweep's queue tenant ("default" when the spec named
	// none; empty on records persisted before tenancy existed).
	Tenant string `json:"tenant,omitempty"`
	// Priority is the sweep's queue class, "interactive" or "batch".
	Priority string `json:"priority,omitempty"`
	// Preemptions counts how many times the queue preempted this sweep.
	Preemptions int `json:"preemptions,omitempty"`
	// Candidates and Cells size the grid.
	Candidates int `json:"candidates"`
	// Cells is the (candidate, model) grid size.
	Cells int `json:"cells"`
	// DoneCandidates counts candidates whose outcome has streamed.
	DoneCandidates int `json:"done_candidates"`
	// Best is the best feasible candidate streamed so far.
	Best *CandidateSummary `json:"best,omitempty"`
	// Trajectory is the live incumbent trajectory: every improvement of
	// Best streamed so far, in order. Unlike Stats.Trajectory (which is
	// only available once the sweep finishes), it is populated while the
	// sweep is still running.
	Trajectory []TrajectoryStep `json:"trajectory,omitempty"`
	// Rungs lists the racing rungs completed so far (racing sweeps only),
	// with per-rung survivor counts. Live like Trajectory.
	Rungs []RungSummary `json:"rungs,omitempty"`
	// Stats is the final scheduler accounting (finished sweeps only).
	Stats *StatsSummary `json:"stats,omitempty"`
	// Checkpoint reports whether a server-side checkpoint file exists for
	// this sweep id.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// Error is the sweep-level failure (canceled or failed sweeps).
	Error string `json:"error,omitempty"`
	// StartedAt is when the sweep registered.
	StartedAt time.Time `json:"started_at"`
	// FinishedAt is when the sweep left StateRunning (finished sweeps).
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// sweep is the server-side record of one sweep.
type sweep struct {
	id       string
	server   *Server
	cancel   context.CancelFunc
	tenant   string
	priority dse.SweepPriority
	// log is the sweep's bounded event history, replayed by
	// GET /sweeps/{id}/stream.
	log *eventLog
	// ckpt caches whether a checkpoint file exists for this sweep id, so
	// status snapshots (GET /sweeps, /healthz, the eviction scan) never
	// touch the filesystem.
	ckpt atomic.Bool

	mu       sync.Mutex
	state    SweepState
	cands    int
	cells    int
	done     int
	preempts int
	best     *CandidateSummary
	traj     []TrajectoryStep
	rungs    []RungSummary
	stats    *StatsSummary
	err      string
	started  time.Time
	finished time.Time
}

// stateNow reads just the lifecycle state — cheap enough for the server's
// registration path, which runs under the server-wide mutex.
func (sw *sweep) stateNow() SweepState {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state
}

// active reports the sweep still owns its id: queued or running. Only
// inactive records may be superseded by a re-POST or evicted.
func (sw *sweep) active() bool {
	st := sw.stateNow()
	return st == StateRunning || st == StateQueued
}

// markRunning flips the sweep to running (initial dispatch and every
// post-preemption resume).
func (sw *sweep) markRunning() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.state = StateRunning
}

// notePreempted parks the sweep back in the queued state and counts the
// preemption.
func (sw *sweep) notePreempted() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.state = StateQueued
	sw.preempts++
}

// status snapshots the sweep.
func (sw *sweep) status() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := SweepStatus{
		ID:             sw.id,
		State:          sw.state,
		Tenant:         sw.tenant,
		Priority:       string(sw.priority),
		Preemptions:    sw.preempts,
		Candidates:     sw.cands,
		Cells:          sw.cells,
		DoneCandidates: sw.done,
		Best:           sw.best,
		Trajectory:     append([]TrajectoryStep(nil), sw.traj...),
		Rungs:          append([]RungSummary(nil), sw.rungs...),
		Stats:          sw.stats,
		Error:          sw.err,
		StartedAt:      sw.started,
		Checkpoint:     sw.ckpt.Load(),
	}
	if !sw.finished.IsZero() {
		f := sw.finished
		st.FinishedAt = &f
	}
	return st
}

// noteResult folds one streamed candidate into the live progress view,
// extending the live incumbent trajectory on every improvement.
func (sw *sweep) noteResult(cs *CandidateSummary) {
	sw.mu.Lock()
	sw.done++
	if cs.Status == "ok" && (sw.best == nil || cs.Objective < sw.best.Objective) {
		sw.best = cs
		sw.traj = append(sw.traj, TrajectoryStep{Candidate: cs.Arch, Objective: cs.Objective})
	}
	sw.mu.Unlock()
}

// noteRung records one completed racing rung in the live progress view.
func (sw *sweep) noteRung(rs RungSummary) {
	sw.mu.Lock()
	sw.rungs = append(sw.rungs, rs)
	sw.mu.Unlock()
}

// finish settles the sweep's final state.
func (sw *sweep) finish(state SweepState, stats *StatsSummary, best *CandidateSummary, errText string) {
	sw.mu.Lock()
	sw.state = state
	sw.stats = stats
	if best != nil {
		sw.best = best
	}
	sw.err = errText
	sw.finished = time.Now()
	sw.mu.Unlock()
}

// newSweepID generates a server-assigned sweep id.
func newSweepID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// a time-derived id rather than crash the handler.
		return fmt.Sprintf("sweep-%d", time.Now().UnixNano())
	}
	return "sweep-" + hex.EncodeToString(b[:])
}

// streamWriter serializes NDJSON events onto a response, flushing per line
// and going quiet (rather than erroring the sweep) once the client is gone.
type streamWriter struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flush   func()
	enc     *json.Encoder
	stopped bool
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	sw := &streamWriter{w: w, enc: json.NewEncoder(w), flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		sw.flush = f.Flush
	}
	return sw
}

func (sw *streamWriter) send(ev Event) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.stopped {
		return
	}
	if err := sw.enc.Encode(ev); err != nil {
		sw.stopped = true
		return
	}
	sw.flush()
}

// --- status persistence --------------------------------------------------

// statusPath maps a sweep id to its on-disk status record, or "" when
// persistence is disabled. Status records live next to the checkpoints so
// GET /sweeps survives a server restart with the same history a live server
// would report.
func (s *Server) statusPath(id string) string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, id+".status.json")
}

// saveStatus persists a finished sweep's status record (atomic rename) and
// prunes the on-disk history to the same bound the in-memory map keeps. A
// failed save only costs history-after-restart, so it runs under the
// server's persistence tracker — bounded retry, degradation accounting —
// and is never fatal.
func (s *Server) saveStatus(sw *sweep) {
	path := s.statusPath(sw.id)
	if path == "" {
		return
	}
	write := func() error {
		if ierr := s.cfg.FaultInjector.Check(faultinject.PointStatusSave, sw.id); ierr != nil {
			return ierr
		}
		if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(s.cfg.DataDir, sw.id+".status.tmp-*")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		enc := json.NewEncoder(tmp)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sw.status()); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), path)
	}
	if err := s.persist.Do(write); err != nil {
		s.logf("serve: sweep %s: status save failed: %v", sw.id, err)
		return
	}
	s.pruneStatusFiles()
}

// removeStatus deletes a sweep's persisted status record (used when the
// in-memory history evicts it, so disk and memory stay in step).
func (s *Server) removeStatus(id string) {
	if path := s.statusPath(id); path != "" {
		_ = os.Remove(path)
	}
}

// pruneStatusFiles bounds the on-disk status history like the in-memory
// retiredSweeps cap: oldest finished records (by recorded finish time) go
// first.
func (s *Server) pruneStatusFiles() {
	entries, err := filepath.Glob(filepath.Join(s.cfg.DataDir, "*.status.json"))
	if err != nil || len(entries) <= retiredSweeps {
		return
	}
	type rec struct {
		path string
		at   time.Time
	}
	recs := make([]rec, 0, len(entries))
	for _, p := range entries {
		st, err := readStatusFile(p)
		if err != nil {
			// Unreadable records would otherwise pin the history forever;
			// they are the first to go.
			recs = append(recs, rec{path: p})
			continue
		}
		at := st.StartedAt
		if st.FinishedAt != nil {
			at = *st.FinishedAt
		}
		recs = append(recs, rec{path: p, at: at})
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].at.Before(recs[b].at) })
	for _, r := range recs[:len(recs)-retiredSweeps] {
		_ = os.Remove(r.path)
	}
}

// readStatusFile decodes one persisted status record.
func readStatusFile(path string) (SweepStatus, error) {
	var st SweepStatus
	raw, err := os.ReadFile(path)
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return st, err
	}
	if st.ID == "" {
		return st, fmt.Errorf("serve: status file %s has no sweep id", path)
	}
	return st, nil
}

// loadStatuses restores the finished-sweep history from DataDir at startup.
// A sweep recorded as running died with its server: it is restored as
// canceled (its checkpoint survives, so re-POSTing the spec resumes it).
// Damaged records are skipped — history is a convenience, never worth
// failing startup over.
func (s *Server) loadStatuses() {
	if s.cfg.DataDir == "" {
		return
	}
	entries, err := filepath.Glob(filepath.Join(s.cfg.DataDir, "*.status.json"))
	if err != nil {
		return
	}
	var sts []SweepStatus
	for _, p := range entries {
		st, err := readStatusFile(p)
		if err != nil {
			s.logf("serve: skipping damaged status record %s: %v", p, err)
			continue
		}
		if st.State == StateRunning || st.State == StateQueued {
			st.State = StateCanceled
			st.Error = "server restarted while the sweep was running"
		}
		sts = append(sts, st)
	}
	sort.Slice(sts, func(a, b int) bool {
		if !sts[a].StartedAt.Equal(sts[b].StartedAt) {
			return sts[a].StartedAt.Before(sts[b].StartedAt)
		}
		return sts[a].ID < sts[b].ID
	})
	if len(sts) > retiredSweeps {
		sts = sts[len(sts)-retiredSweeps:]
	}
	for _, st := range sts {
		sw := restoredSweep(s, st)
		s.sweeps[sw.id] = sw
		s.order = append(s.order, sw.id)
	}
	if len(sts) > 0 {
		s.logf("serve: restored %d sweep status records from %s", len(sts), s.cfg.DataDir)
	}
}

// restoredSweep rebuilds a sweep record from its persisted status. The
// cancel hook is a no-op: nothing is running.
func restoredSweep(s *Server, st SweepStatus) *sweep {
	sw := &sweep{
		id:       st.ID,
		server:   s,
		cancel:   func() {},
		tenant:   st.Tenant,
		priority: dse.SweepPriority(st.Priority),
		log:      newEventLog(),
		state:    st.State,
		cands:    st.Candidates,
		cells:    st.Cells,
		done:     st.DoneCandidates,
		preempts: st.Preemptions,
		best:     st.Best,
		traj:     st.Trajectory,
		rungs:    st.Rungs,
		stats:    st.Stats,
		err:      st.Error,
		started:  st.StartedAt,
	}
	if st.FinishedAt != nil {
		sw.finished = *st.FinishedAt
	}
	// The live event history died with the old process; synthesize the
	// terminal event so GET /sweeps/{id}/stream on a restored sweep returns
	// a closed one-line stream instead of hanging.
	if st.State == StateDone {
		sw.log.append(Event{Type: "done", SweepID: st.ID, Best: st.Best, Stats: st.Stats})
	} else {
		sw.log.append(Event{Type: "error", SweepID: st.ID, Error: st.Error, Stats: st.Stats})
	}
	sw.ckpt.Store(s.hasCheckpoint(st.ID))
	return sw
}

// --- checkpoint persistence ----------------------------------------------

// checkpointPath maps a sweep id to its on-disk checkpoint, or "" when
// persistence is disabled.
func (s *Server) checkpointPath(id string) string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, id+".ckpt")
}

func (s *Server) hasCheckpoint(id string) bool {
	path := s.checkpointPath(id)
	if path == "" {
		return false
	}
	_, err := os.Stat(path)
	return err == nil
}

// loadCheckpoint merges a sweep's persisted cells into the session, if a
// checkpoint exists. Failures are never fatal — the sweep resumes cold and
// recomputes. A checkpoint that opens but does not decode is corrupt; it is
// quarantined to "<path>.corrupt" so the next save starts a fresh file and
// the damaged bytes stay on disk for diagnosis.
func (s *Server) loadCheckpoint(ses *dse.Session, id string) error {
	path := s.checkpointPath(id)
	if path == "" {
		return nil
	}
	if ierr := s.cfg.FaultInjector.Check(faultinject.PointCheckpointLoad, id); ierr != nil {
		return ierr
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	lerr := ses.LoadCheckpoint(f)
	f.Close()
	if lerr == nil {
		return nil
	}
	quarantine := path + ".corrupt"
	if rerr := os.Rename(path, quarantine); rerr != nil {
		s.logf("serve: sweep %s: corrupt checkpoint could not be quarantined: %v", id, rerr)
	} else {
		s.logf("serve: sweep %s: corrupt checkpoint quarantined to %s", id, quarantine)
	}
	return fmt.Errorf("corrupt checkpoint quarantined: %w", lerr)
}

// saveCheckpoint atomically persists the session's settled cells under the
// sweep's id. The session is shared, so the file may also carry cells of
// concurrent sweeps — harmless (cells are keyed by architecture, model and
// options) and useful: resuming one sweep warms its neighbours too.
func (s *Server) saveCheckpoint(ses *dse.Session, id string) error {
	path := s.checkpointPath(id)
	if path == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.cfg.DataDir, id+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := ses.SaveCheckpoint(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// --- the POST /sweep handler ---------------------------------------------

// specBodyLimit bounds a POST /sweep request body.
const specBodyLimit = 1 << 20

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var spec dse.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, specBodyLimit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding sweep spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.ID == "" {
		spec.ID = newSweepID()
	} else if !sweepIDPattern.MatchString(spec.ID) {
		writeError(w, http.StatusBadRequest, "sweep id %q: want %s", spec.ID, sweepIDPattern)
		return
	}
	cands, err := spec.Candidates()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	graphs, err := spec.Graphs()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells := len(cands) * len(graphs)
	if cells > s.cfg.maxCells() {
		writeError(w, http.StatusBadRequest, "sweep has %d cells, server cap is %d", cells, s.cfg.maxCells())
		return
	}

	tenant := spec.Tenant
	if tenant == "" {
		tenant = defaultTenant
	}
	priority := dse.SweepPriority(spec.Priority)
	if priority == "" {
		priority = dse.PriorityInteractive
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	sw := &sweep{
		id:       spec.ID,
		server:   s,
		cancel:   cancel,
		tenant:   tenant,
		priority: priority,
		log:      newEventLog(),
		state:    StateQueued,
		cands:    len(cands),
		cells:    cells,
		started:  time.Now(),
	}
	undoRegister, code, err := s.register(sw)
	if code != 0 {
		writeError(w, code, "%v", err)
		return
	}
	j, aerr := s.queue.Admit(spec.ID, tenant, priority, spec.Workers)
	if aerr != nil {
		// Admission rejections leave no trace: the registration rolls back
		// (restoring any superseded finished record) and nothing was
		// persisted, so a rejected client can simply retry after backoff.
		undoRegister()
		writeRejection(w, aerr)
		return
	}
	defer s.queue.Release(j)
	// Server shutdown cancels the sweep like a client disconnect would.
	stopWatch := context.AfterFunc(s.base, cancel)
	defer stopWatch()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Id", spec.ID)
	w.WriteHeader(http.StatusOK)
	stream := newStreamWriter(w)
	// emit records every event in the sweep's replayable log (the
	// GET /sweeps/{id}/stream source) and sends it down the POST stream.
	emit := func(ev Event) {
		sw.log.append(ev)
		stream.send(ev)
	}
	// Terminal backstop: the engine recovers panics at the cell and worker
	// level, but if anything above those nets still panics, the stream must
	// end with a typed error event — carrying whatever fault counters the
	// sweep accumulated — not a dropped connection, and the server must keep
	// serving its other sweeps.
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		stack := debug.Stack()
		s.logf("serve: sweep %s: handler panicked (recovered): %v\n%s", spec.ID, v, stack)
		msg := fmt.Sprintf("internal error: sweep handler panicked: %v", v)
		st := sw.status()
		if st.State == StateRunning || st.State == StateQueued {
			sw.finish(StateFailed, st.Stats, nil, msg)
		}
		emit(Event{Type: "error", SweepID: spec.ID, Error: msg, Stats: sw.status().Stats})
		s.saveStatus(sw)
	}()

	// Wait for the queue to dispatch the sweep. Uncontended admission
	// grants synchronously inside Admit, so the common stream still begins
	// with its start event; only a sweep that actually waits emits queued.
	select {
	case <-j.granted():
	default:
		emit(Event{Type: "queued", SweepID: spec.ID, Tenant: tenant, Priority: string(priority), Position: j.position})
		select {
		case <-j.granted():
		case <-ctx.Done():
			msg := "sweep canceled while queued"
			sw.finish(StateCanceled, nil, nil, msg)
			emit(Event{Type: "error", SweepID: spec.ID, Error: msg})
			s.saveStatus(sw)
			return
		}
	}
	sw.markRunning()

	ses := s.session()
	if err := s.loadCheckpoint(ses, spec.ID); err != nil {
		s.logf("serve: sweep %s: checkpoint load failed, recomputing: %v", spec.ID, err)
	}
	// Record checkpoint existence after the load, so a just-quarantined
	// corrupt file is not reported as a usable checkpoint.
	sw.ckpt.Store(s.hasCheckpoint(spec.ID))
	opt := spec.Options()
	opt.FaultInjector = s.cfg.FaultInjector
	// The disk cache location is server policy, not part of the sweep spec:
	// every sweep on this server spills through the one operator-chosen
	// directory.
	opt.CacheDir = s.cfg.CacheDir
	// The queue granted this sweep j.slots worker slots; that grant is its
	// whole worker budget (the spec's Workers request was clamped into it).
	opt.Workers = j.slots
	// Bind the scheduler's cell feed to the queue grant: a preemption signal
	// gates the feed shut, so workers stop pulling new cells at the next cell
	// boundary even before the round-context cancellation below reaches
	// their in-flight work.
	opt.Dispatch = func(d dse.Dispatcher) dse.Dispatcher { return s.queue.GateFeed(j, d) }

	emit(Event{
		Type:            "start",
		SweepID:         spec.ID,
		Candidates:      len(cands),
		Cells:           cells,
		Models:          spec.Models,
		CheckpointCells: ses.SettledCells(cands, graphs, opt),
	})

	// Checkpoint continuously but off the result path: OnResult runs in
	// the scheduler's serialized callback section, so serializing the
	// whole session to disk there would stall sweep workers. A dedicated
	// saver goroutine coalesces save requests instead — the on-disk state
	// trails the stream only by saves still in flight, and the final save
	// below covers the tail.
	saveReq := make(chan struct{}, 1)
	saverDone := make(chan struct{})
	// sweepPersistErrs counts this sweep's own failed checkpoint saves; it is
	// folded into the sweep's stats after the run (the server-wide tracker
	// also counts them, but it is shared across sweeps).
	var sweepPersistErrs atomic.Int64
	save := func(label string) {
		if s.checkpointPath(spec.ID) == "" {
			return
		}
		err := s.persist.Do(func() error {
			if ierr := s.cfg.FaultInjector.Check(faultinject.PointCheckpointSave, spec.ID); ierr != nil {
				return ierr
			}
			return s.saveCheckpoint(ses, spec.ID)
		})
		if err != nil {
			sweepPersistErrs.Add(1)
			st := s.persist.State()
			s.logf("serve: sweep %s: %s checkpoint save failed (errors %d, degraded %t): %v",
				spec.ID, label, st.Errors, st.Degraded, err)
			return
		}
		sw.ckpt.Store(true)
	}
	go func() {
		defer close(saverDone)
		for range saveReq {
			save("incremental")
		}
	}()
	// Drain the saver exactly once, whether the run returns or the backstop
	// above is unwinding a panic (a leaked saver goroutine would pin the
	// session forever).
	saverStopped := false
	stopSaver := func() {
		if !saverStopped {
			saverStopped = true
			close(saveReq)
			<-saverDone
		}
	}
	defer stopSaver()

	// runCtx is the current dispatch round's context; OnResult reads it to
	// tell preemption cancellations apart from real outcomes.
	var roundMu sync.Mutex
	var runCtx context.Context

	var seqMu sync.Mutex
	seq := 0
	// streamed dedupes result events across dispatch rounds: a preempted
	// sweep re-reduces every candidate after resume, but each architecture
	// streams exactly once.
	streamed := make(map[string]bool)
	opt.OnResult = func(cr dse.CandidateResult) {
		roundMu.Lock()
		rc := runCtx
		roundMu.Unlock()
		// A preempted round reports its undelivered cells as canceled;
		// those candidates re-run after resume and stream their real
		// outcome then. Suppress the interim error rows.
		if cr.Err != nil && rc != nil && errors.Is(context.Cause(rc), errPreempted) {
			return
		}
		cs := summarize(&cr)
		seqMu.Lock()
		if streamed[cs.Arch] {
			seqMu.Unlock()
			return
		}
		streamed[cs.Arch] = true
		seq++
		n := seq
		seqMu.Unlock()
		sw.noteResult(cs)
		emit(Event{Type: "result", SweepID: spec.ID, Seq: n, Result: cs})
		select {
		case saveReq <- struct{}{}:
		default: // a save is already pending; it will pick this cell up
		}
	}
	// Racing sweeps additionally stream one event per completed rung, so a
	// client watching the NDJSON stream sees budget concentrate on the
	// survivors as it happens. Rungs a resumed round replays (their cells
	// restore from the checkpoint) are deduped by rung index.
	var rungMu sync.Mutex
	maxRung := -1
	opt.OnRung = func(rs dse.RungStats) {
		rungMu.Lock()
		replay := rs.Rung <= maxRung
		if !replay {
			maxRung = rs.Rung
		}
		rungMu.Unlock()
		if replay {
			return
		}
		rsum := RungSummary(rs)
		sw.noteRung(rsum)
		emit(Event{Type: "rung", SweepID: spec.ID, Rung: &rsum})
	}

	s.logf("serve: sweep %s: %d candidates x %d models (%d cells)", spec.ID, len(cands), len(graphs), cells)
	begin := time.Now()
	// The dispatch-round loop: each iteration runs the sweep under a
	// cancelable round context the queue can interrupt with errPreempted.
	// A preempted round checkpoints its settled cells, yields its slots and
	// parks until the queue re-dispatches the job; the resumed round then
	// restores every settled cell for free and continues. Any other exit —
	// completion, client disconnect, DELETE, shutdown — leaves the loop.
	var (
		results []dse.CandidateResult
		stats   dse.SweepStats
		runErr  error
	)
	for {
		rc, cancelRound := context.WithCancelCause(ctx)
		roundMu.Lock()
		runCtx = rc
		roundMu.Unlock()
		s.queue.BindPreempt(j, func() { cancelRound(errPreempted) })
		results, stats, runErr = ses.RunContext(rc, cands, graphs, opt)
		s.queue.ClearPreempt(j)
		preempted := errors.Is(context.Cause(rc), errPreempted) && ctx.Err() == nil
		cancelRound(context.Canceled)
		if !preempted {
			break
		}
		// Flush the settled cells before parking, so the on-disk checkpoint
		// matches what the resumed round will restore even across a crash.
		save("preempt")
		settled := ses.SettledCells(cands, graphs, opt)
		sw.notePreempted()
		emit(Event{Type: "preempted", SweepID: spec.ID, Tenant: tenant, Priority: string(priority), CheckpointCells: settled})
		s.logf("serve: sweep %s: preempted with %d settled cells", spec.ID, settled)
		s.queue.Yield(j)
		resumed := false
		select {
		case <-j.granted():
			resumed = true
		case <-ctx.Done():
		}
		if !resumed {
			// Canceled while parked: the preempted round's canceled runErr
			// already classifies the sweep below.
			break
		}
		sw.markRunning()
		emit(Event{Type: "resumed", SweepID: spec.ID, Tenant: tenant, Priority: string(priority), CheckpointCells: settled})
	}
	stopSaver()
	save("final")

	// Fold this sweep's own checkpoint-save failures into its stats: the
	// session already contributed disk-cache saver failures, these are the
	// serve-side checkpoint path's.
	if n := int(sweepPersistErrs.Load()); n > 0 {
		stats.PersistenceErrors += n
		pst := s.persist.State()
		stats.PersistenceDegraded = stats.PersistenceDegraded || pst.Degraded
		if stats.LastPersistenceError == "" {
			stats.LastPersistenceError = pst.LastError
		}
	}
	s.noteFaults(stats)

	elapsed := time.Since(begin).Milliseconds()
	switch {
	case runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded)):
		sw.finish(StateCanceled, summarizeStats(stats), nil, runErr.Error())
		emit(Event{Type: "error", SweepID: spec.ID, Error: runErr.Error(), Stats: summarizeStats(stats), ElapsedMS: elapsed})
	case runErr != nil:
		sw.finish(StateFailed, summarizeStats(stats), nil, runErr.Error())
		emit(Event{Type: "error", SweepID: spec.ID, Error: runErr.Error(), Stats: summarizeStats(stats), ElapsedMS: elapsed})
	default:
		var best *CandidateSummary
		if b := dse.Best(results); b != nil {
			best = summarize(b)
		}
		sw.finish(StateDone, summarizeStats(stats), best, "")
		emit(Event{Type: "done", SweepID: spec.ID, Best: best, Stats: summarizeStats(stats), ElapsedMS: elapsed})
	}
	// Persist the final status next to the checkpoint, so GET /sweeps
	// survives a server restart.
	s.saveStatus(sw)
}
