package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestRacingSweepStream pins the racing sweep's wire contract: the NDJSON
// stream carries one "rung" event per completed rung, the done event's stats
// mark the sweep as racing with the full rung schedule, and the finished
// status keeps the incumbent trajectory and rung history queryable.
func TestRacingSweepStream(t *testing.T) {
	_, hs := newTestServer(t, Config{DataDir: t.TempDir()})
	spec := tinySpec("raced", 8, 16, 32, 64)
	spec.Racing = true
	spec.Restarts = 4

	events := runSweep(t, hs.URL, spec)
	done := events[len(events)-1]
	if done.Type != "done" || done.Stats == nil {
		t.Fatalf("sweep ended with %+v", done)
	}
	if !done.Stats.Racing {
		t.Error("done stats did not mark the sweep as racing")
	}
	var rungs []RungSummary
	results := 0
	for _, ev := range events {
		switch ev.Type {
		case "rung":
			if ev.Rung == nil {
				t.Fatalf("rung event without a rung record: %+v", ev)
			}
			rungs = append(rungs, *ev.Rung)
		case "result":
			results++
		}
	}
	if results != 4 {
		t.Errorf("streamed %d results, want one per candidate (4)", results)
	}
	// Restarts=4 races through cumulative budgets 1, 2, 4.
	if len(rungs) != 3 || len(done.Stats.Rungs) != len(rungs) {
		t.Fatalf("streamed %d rung events, done stats carry %d; want 3 each: %+v",
			len(rungs), len(done.Stats.Rungs), rungs)
	}
	for i, r := range rungs {
		if r != done.Stats.Rungs[i] {
			t.Errorf("rung %d: streamed %+v != stats %+v", i, r, done.Stats.Rungs[i])
		}
	}
	if rungs[0].Budget != 1 || rungs[0].Candidates != 4 || rungs[len(rungs)-1].Budget != 4 {
		t.Errorf("rung schedule %+v does not span budgets 1..4 over 4 candidates", rungs)
	}

	st, code := getStatus(t, hs.URL, "raced")
	if code != http.StatusOK {
		t.Fatalf("GET /sweeps/raced: %d", code)
	}
	if len(st.Rungs) != len(rungs) {
		t.Errorf("status exposes %d rungs, want %d", len(st.Rungs), len(rungs))
	}
	if len(st.Trajectory) == 0 {
		t.Error("status exposes no incumbent trajectory")
	}
	last := st.Trajectory[len(st.Trajectory)-1]
	if st.Best == nil || last.Candidate != st.Best.Arch || last.Objective != st.Best.Objective {
		t.Errorf("trajectory tail %+v does not land on best %+v", last, st.Best)
	}
	for i := 1; i < len(st.Trajectory); i++ {
		if st.Trajectory[i].Objective >= st.Trajectory[i-1].Objective {
			t.Errorf("trajectory not strictly improving: %+v", st.Trajectory)
		}
	}
}

// TestRacingLiveProgress pins the mid-flight view: while a racing sweep is
// still running, GET /sweeps/{id} and /healthz expose the rungs completed so
// far and the live incumbent trajectory.
func TestRacingLiveProgress(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	spec := tinySpec("live-race", 8, 16, 32, 64)
	spec.Racing = true
	spec.Restarts = 6
	spec.SAIterations = 3000
	spec.Workers = 1

	resp := postSpec(t, hs.URL, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	defer resp.Body.Close()
	// Read the stream until the first rung event: noteRung runs before the
	// event is written, so the server-side view is guaranteed to carry the
	// rung by the time the client sees it.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawRung := false
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Type == "rung" {
			sawRung = true
			break
		}
	}
	if !sawRung {
		t.Fatal("stream ended without a rung event")
	}

	st, code := getStatus(t, hs.URL, "live-race")
	if code != http.StatusOK {
		t.Fatalf("GET /sweeps/live-race: %d", code)
	}
	if len(st.Rungs) == 0 {
		t.Error("running status exposes no rungs after a streamed rung event")
	}

	// The sweep still has at least three rungs of annealing ahead; check the
	// health endpoint's live view while it runs (skip without failing if the
	// machine outran the sweep).
	if st.State == StateRunning {
		hr, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h Health
		derr := json.NewDecoder(hr.Body).Decode(&h)
		hr.Body.Close()
		if derr != nil {
			t.Fatal(derr)
		}
		for _, run := range h.Running {
			if run.ID != "live-race" {
				continue
			}
			if len(run.Rungs) == 0 {
				t.Error("healthz running view exposes no rungs")
			}
			if run.Incumbent != nil && len(run.Trajectory) == 0 {
				t.Error("healthz running view has an incumbent but no trajectory")
			}
		}
	}
	for sc.Scan() { // drain to completion
	}
}

// TestRacingKeepRejected pins the 400 envelope for a racing_keep outside
// (0, 1): the spec is rejected before any sweep registers.
func TestRacingKeepRejected(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, keep := range []string{"1.5", "-0.25", "1", "0.0001e6"} {
		body := `{"space":{"tops":72},"models":["tinycnn"],"racing":true,"racing_keep":` + keep + `}`
		resp, err := http.Post(hs.URL+"/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		derr := json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if derr != nil {
			t.Fatal(derr)
		}
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(eb.Error, "racing_keep") {
			t.Errorf("racing_keep=%s: code=%d msg=%q, want 400 naming racing_keep", keep, resp.StatusCode, eb.Error)
		}
	}
}
