package serve

import (
	"os"

	"gemini/internal/fleet"
)

// persistFleetCheckpoint writes a completed fleet sweep's canonical merged
// checkpoint to the same DataDir file a /sweep checkpoint of that id would
// use (atomic temp+rename, persistence-tracker accounting). A fleet sweep
// and a later /sweep of the same spec therefore resume each other's cells.
func (s *Server) persistFleetCheckpoint(id string, data []byte) {
	path := s.checkpointPath(id)
	if path == "" {
		return
	}
	write := func() error {
		if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(s.cfg.DataDir, id+".tmp-*")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if _, err := tmp.Write(data); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), path)
	}
	if err := s.persist.Do(write); err != nil {
		s.logf("serve: fleet sweep %s: checkpoint save failed: %v", id, err)
		return
	}
	s.logf("serve: fleet sweep %s: canonical checkpoint saved to %s", id, path)
}

// loadFleetCheckpoint hands the coordinator a prior checkpoint for a
// submitted fleet sweep id, if one is on disk; a re-submitted fleet sweep
// then starts from its predecessor's settled cells.
func (s *Server) loadFleetCheckpoint(id string) []byte {
	path := s.checkpointPath(id)
	if path == "" {
		return nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return b
}

// newFleetCoordinator builds the server's fleet coordinator, bound to the
// server's logging, grid cap and DataDir persistence.
func (s *Server) newFleetCoordinator() *fleet.Coordinator {
	return fleet.NewCoordinator(fleet.CoordinatorConfig{
		LeaseTTL:       s.cfg.FleetLeaseTTL,
		MaxCells:       s.cfg.maxCells(),
		Logf:           s.logf,
		Persist:        s.persistFleetCheckpoint,
		LoadCheckpoint: s.loadFleetCheckpoint,
	})
}
