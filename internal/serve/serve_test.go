package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gemini/internal/dse"
)

// tinySpec builds a cheap sweep spec with candidates = len(nocs) (one MAC
// count, cut 1x1, so the NoC list is the only multi-valued dimension).
func tinySpec(id string, nocs ...float64) dse.Spec {
	if len(nocs) == 0 {
		nocs = []float64{32}
	}
	return dse.Spec{
		ID: id,
		Space: dse.SpaceSpec{
			TOPS: 72, Cuts: []int{1}, DRAMPerTOPS: []float64{2},
			NoCBWs: nocs, D2DRatios: []float64{0.5},
			GLBsKB: []int{1024}, MACs: []int{1024},
		},
		Models:       []string{"tinycnn"},
		SAIterations: 30,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() { hs.Close(); s.Close() })
	return s, hs
}

func postSpec(t *testing.T, url string, spec dse.Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readEvents drains an NDJSON stream.
func readEvents(t *testing.T, resp *http.Response) []Event {
	t.Helper()
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return events
}

func runSweep(t *testing.T, url string, spec dse.Spec) []Event {
	t.Helper()
	resp := postSpec(t, url, spec)
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		t.Fatalf("POST /sweep: status %d: %s", resp.StatusCode, eb.Error)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	return readEvents(t, resp)
}

func getStatus(t *testing.T, url, id string) (SweepStatus, int) {
	t.Helper()
	resp, err := http.Get(url + "/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SweepStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// TestSweepRoundTrip pins the tentpole's happy path: POST a spec, stream
// start / one result per candidate / done, then read the finished status.
func TestSweepRoundTrip(t *testing.T) {
	_, hs := newTestServer(t, Config{DataDir: t.TempDir()})
	spec := tinySpec("round-trip", 32, 64)

	events := runSweep(t, hs.URL, spec)
	if len(events) != 4 { // start + 2 results + done
		t.Fatalf("got %d events, want 4: %+v", len(events), events)
	}
	start := events[0]
	if start.Type != "start" || start.SweepID != "round-trip" || start.Candidates != 2 || start.Cells != 2 {
		t.Errorf("bad start event: %+v", start)
	}
	if len(start.Models) != 1 || start.Models[0] != "tinycnn" {
		t.Errorf("start models = %v", start.Models)
	}
	for _, ev := range events[1:3] {
		if ev.Type != "result" || ev.Result == nil {
			t.Fatalf("bad result event: %+v", ev)
		}
		if ev.Result.Status != "ok" || ev.Result.Objective <= 0 {
			t.Errorf("candidate %s: status=%s obj=%g", ev.Result.Arch, ev.Result.Status, ev.Result.Objective)
		}
	}
	done := events[3]
	if done.Type != "done" || done.Best == nil || done.Stats == nil {
		t.Fatalf("bad done event: %+v", done)
	}
	if done.Stats.Candidates != 2 || done.Stats.Cells != 2 || done.Stats.Canceled {
		t.Errorf("done stats: %+v", done.Stats)
	}
	// The winner must be the lower-objective streamed result.
	best := events[1].Result
	if events[2].Result.Objective < best.Objective {
		best = events[2].Result
	}
	if done.Best.Arch != best.Arch {
		t.Errorf("done best = %s, want %s", done.Best.Arch, best.Arch)
	}

	// A fresh sweep with different mapping options on the same (shared)
	// session must not report the first sweep's cells as its own
	// checkpoint: checkpoint_cells is scoped to the sweep's grid+options.
	fresh := tinySpec("fresh-after", 32)
	fresh.Seed = 99
	freshEvents := runSweep(t, hs.URL, fresh)
	if freshEvents[0].CheckpointCells != 0 {
		t.Errorf("fresh sweep start reports checkpoint_cells=%d, want 0", freshEvents[0].CheckpointCells)
	}

	st, code := getStatus(t, hs.URL, "round-trip")
	if code != http.StatusOK {
		t.Fatalf("GET /sweeps/round-trip: %d", code)
	}
	if st.State != StateDone || st.DoneCandidates != 2 || st.Best == nil || st.Stats == nil || !st.Checkpoint {
		t.Errorf("status: %+v", st)
	}
	if st.FinishedAt == nil || st.FinishedAt.Before(st.StartedAt) {
		t.Errorf("finished_at not set sanely: %+v", st)
	}
}

// TestStreamOrder pins the NDJSON framing contract: start first, done last,
// result seq strictly 1..N in stream order.
func TestStreamOrder(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	events := runSweep(t, hs.URL, tinySpec("ordered", 8, 16, 32, 64))
	if events[0].Type != "start" {
		t.Fatalf("first event %q, want start", events[0].Type)
	}
	if events[len(events)-1].Type != "done" {
		t.Fatalf("last event %q, want done", events[len(events)-1].Type)
	}
	seq := 0
	for _, ev := range events[1 : len(events)-1] {
		seq++
		if ev.Type != "result" || ev.Seq != seq {
			t.Errorf("event %d: type=%s seq=%d, want result seq=%d", seq, ev.Type, ev.Seq, seq)
		}
	}
	if seq != 4 {
		t.Errorf("streamed %d results, want 4", seq)
	}
}

// TestResumeAfterRestart pins the acceptance criterion: a brand-new server
// process (fresh sessions) pointed at the same data dir resumes a finished
// sweep from its checkpoint and recomputes zero completed cells.
func TestResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("restart-me", 32, 64)

	_, hsA := newTestServer(t, Config{DataDir: dir})
	first := runSweep(t, hsA.URL, spec)
	firstDone := first[len(first)-1]
	if firstDone.Type != "done" || firstDone.Stats.ResumedCells != 0 {
		t.Fatalf("first run: %+v", firstDone)
	}
	hsA.Close()

	_, hsB := newTestServer(t, Config{DataDir: dir})
	second := runSweep(t, hsB.URL, spec)
	if second[0].CheckpointCells == 0 {
		t.Error("restarted server loaded no checkpoint cells")
	}
	done := second[len(second)-1]
	if done.Type != "done" {
		t.Fatalf("second run ended with %q", done.Type)
	}
	if done.Stats.ResumedCells != done.Stats.Cells {
		t.Errorf("resumed %d of %d cells; a restarted sweep must recompute zero completed cells",
			done.Stats.ResumedCells, done.Stats.Cells)
	}
	// Identical outcome either way.
	if firstDone.Best.Arch != done.Best.Arch || firstDone.Best.Objective != done.Best.Objective {
		t.Errorf("resumed best %+v != original %+v", done.Best, firstDone.Best)
	}
}

// TestResumeAfterMidSweepCancel kills a sweep partway (DELETE), restarts
// the server, and re-POSTs: cells settled before the kill must be restored,
// not recomputed, and the sweep must complete.
func TestResumeAfterMidSweepCancel(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("killed", 8, 16, 32, 64)
	spec.Workers = 1
	spec.SAIterations = 400
	spec.Restarts = 4

	_, hsA := newTestServer(t, Config{DataDir: dir})
	resp := postSpec(t, hsA.URL, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	// Read events until the first candidate settles, then cancel.
	sc := bufio.NewScanner(resp.Body)
	var seen int
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "result" {
			seen++
			req, _ := http.NewRequest(http.MethodDelete, hsA.URL+"/sweeps/killed", nil)
			dresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			dresp.Body.Close()
			if dresp.StatusCode != http.StatusAccepted {
				t.Fatalf("DELETE: %d", dresp.StatusCode)
			}
			break
		}
	}
	if seen == 0 {
		t.Fatal("no result before cancel")
	}
	// Drain the rest of the stream: it must end in a typed error event.
	var last Event
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	if last.Type != "error" || !strings.Contains(last.Error, "canceled") {
		t.Fatalf("canceled sweep ended with %+v", last)
	}
	st, _ := getStatus(t, hsA.URL, "killed")
	if st.State != StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
	hsA.Close()

	_, hsB := newTestServer(t, Config{DataDir: dir})
	events := runSweep(t, hsB.URL, spec)
	if events[0].CheckpointCells == 0 {
		t.Error("no checkpoint cells survived the kill")
	}
	done := events[len(events)-1]
	if done.Type != "done" {
		t.Fatalf("resumed sweep ended with %q: %+v", done.Type, done)
	}
	if done.Stats.ResumedCells == 0 {
		t.Error("resumed sweep recomputed every cell")
	}
	if done.Stats.ResumedCells < seen {
		t.Errorf("resumed %d cells, want >= the %d that settled before the kill", done.Stats.ResumedCells, seen)
	}
}

// TestConcurrentSweeps runs two sweeps at once on one shared session; under
// -race this is the concurrency acceptance test.
func TestConcurrentSweeps(t *testing.T) {
	_, hs := newTestServer(t, Config{Sessions: 1, DataDir: t.TempDir()})
	specs := []dse.Spec{tinySpec("conc-a", 8, 32), tinySpec("conc-b", 16, 64)}
	// Overlap the grids so the sweeps race on the same shared cache keys.
	specs[1].Models = []string{"tinycnn"}
	// One worker slot each, so the queue dispatches both at once and the
	// sweeps genuinely overlap (a defaulted request asks for the whole
	// pool and would serialize them).
	specs[0].Workers = 1
	specs[1].Workers = 1

	// No t.Fatal from goroutines: collect raw streams, parse on the main
	// goroutine.
	type outcome struct {
		status int
		lines  []string
		err    error
	}
	var wg sync.WaitGroup
	outs := make([]outcome, len(specs))
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(specs[i])
			if err != nil {
				outs[i].err = err
				return
			}
			resp, err := http.Post(hs.URL+"/sweep", "application/json", bytes.NewReader(body))
			if err != nil {
				outs[i].err = err
				return
			}
			defer resp.Body.Close()
			outs[i].status = resp.StatusCode
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				outs[i].lines = append(outs[i].lines, sc.Text())
			}
			outs[i].err = sc.Err()
		}(i)
	}
	wg.Wait()
	results := make([][]Event, len(specs))
	for i, o := range outs {
		if o.err != nil || o.status != http.StatusOK {
			t.Fatalf("sweep %d: status %d, err %v", i, o.status, o.err)
		}
		for _, line := range o.lines {
			var ev Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("sweep %d: bad line %q: %v", i, line, err)
			}
			results[i] = append(results[i], ev)
		}
	}
	for i, events := range results {
		if len(events) == 0 {
			t.Fatalf("sweep %d: no events", i)
		}
		done := events[len(events)-1]
		if done.Type != "done" || done.Stats == nil || done.Stats.Canceled {
			t.Errorf("sweep %d ended badly: %+v", i, done)
		}
	}
	// Both sweeps must be visible, finished, on the status API.
	for _, id := range []string{"conc-a", "conc-b"} {
		st, code := getStatus(t, hs.URL, id)
		if code != http.StatusOK || st.State != StateDone {
			t.Errorf("%s: code=%d state=%s", id, code, st.State)
		}
	}
}

func TestSweepValidationErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxCells: 1})
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb.Error
	}
	cases := []struct {
		name, body, want string
	}{
		{"garbage", "{", "decoding"},
		{"unknown field", `{"space":{"tops":72},"models":["tinycnn"],"bogus":1}`, "unknown field"},
		{"bad space", `{"space":{"tops":3},"models":["tinycnn"]}`, "tops"},
		{"unknown model", `{"space":{"tops":72},"models":["nope"]}`, "unknown model"},
		{"bad id", `{"id":"../etc/passwd","space":{"tops":72},"models":["tinycnn"]}`, "sweep id"},
		{"too many cells", `{"space":{"tops":72,"reduced":true},"models":["tinycnn","tinytransformer"]}`, "cells"},
	}
	for _, c := range cases {
		code, msg := post(c.body)
		if code != http.StatusBadRequest || !strings.Contains(msg, c.want) {
			t.Errorf("%s: code=%d msg=%q, want 400 containing %q", c.name, code, msg, c.want)
		}
	}
}

// assertRejection checks a queue admission rejection's whole envelope:
// status code, Retry-After header, and the JSON body mirroring it.
func assertRejection(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("status %d, want %d", resp.StatusCode, want)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Errorf("%d rejection has no Retry-After header", want)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("%d rejection body is not the JSON envelope: %v", want, err)
	}
	if eb.Error == "" {
		t.Errorf("%d rejection envelope has no error text", want)
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs != eb.RetryAfterSeconds {
		t.Errorf("Retry-After header %q does not mirror retry_after_seconds %d", ra, eb.RetryAfterSeconds)
	}
}

// TestDuplicateAndCapacity pins the 409 (same id already queued or running)
// rejection and the queue's admission envelopes: a tenant over its waiting
// quota gets 429 and a server over its global backlog bound gets 503, both
// carrying a Retry-After header mirrored in the JSON body — and a rejected
// sweep leaves no checkpoint or status file behind in the data dir.
func TestDuplicateAndCapacity(t *testing.T) {
	dir := t.TempDir()
	_, hs := newTestServer(t, Config{
		DataDir:             dir,
		MaxConcurrentSweeps: 1,
		WorkerSlots:         1,
		QueueDepth:          1,
		MaxQueuedSweeps:     2,
	})
	slow := tinySpec("slow", 8, 16, 32, 64)
	slow.SAIterations = 3000
	slow.Restarts = 6
	slow.Workers = 1

	resp := postSpec(t, hs.URL, slow)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	defer resp.Body.Close()
	// Wait for the start event so the sweep is registered and dispatched.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no start event")
	}

	dup := postSpec(t, hs.URL, slow)
	dup.Body.Close()
	if dup.StatusCode != http.StatusConflict {
		t.Errorf("duplicate running id: %d, want 409", dup.StatusCode)
	}

	// Fill the default tenant's one waiting slot: this sweep queues behind
	// slow and its stream opens with a queued event.
	parked := postSpec(t, hs.URL, tinySpec("parked"))
	defer parked.Body.Close()
	if parked.StatusCode != http.StatusOK {
		t.Fatalf("parked POST: %d", parked.StatusCode)
	}
	psc := bufio.NewScanner(parked.Body)
	if !psc.Scan() {
		t.Fatal("no queued event on the parked sweep")
	}
	var queued Event
	if err := json.Unmarshal(psc.Bytes(), &queued); err != nil {
		t.Fatal(err)
	}
	if queued.Type != "queued" || queued.Tenant != "default" || queued.Position != 1 {
		t.Errorf("parked sweep's first event = %+v, want queued at position 1", queued)
	}

	// One waiting sweep is the default tenant's whole quota: 429.
	assertRejection(t, postSpec(t, hs.URL, tinySpec("rejected")), http.StatusTooManyRequests)

	// Another tenant still fits (global bound 2 not yet reached)...
	other := tinySpec("other-tenant")
	other.Tenant = "acme"
	otherResp := postSpec(t, hs.URL, other)
	defer otherResp.Body.Close()
	if otherResp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant POST: %d", otherResp.StatusCode)
	}
	osc := bufio.NewScanner(otherResp.Body)
	if !osc.Scan() {
		t.Fatal("no queued event on the other tenant's sweep")
	}
	// ...and now the backlog is at the server-wide bound: 503 for everyone.
	flood := tinySpec("flood")
	flood.Tenant = "flood"
	assertRejection(t, postSpec(t, hs.URL, flood), http.StatusServiceUnavailable)

	// Rejected sweeps must leave no server-side trace: no status record on
	// the API, no checkpoint or status file on disk.
	for _, id := range []string{"rejected", "flood"} {
		if _, code := getStatus(t, hs.URL, id); code != http.StatusNotFound {
			t.Errorf("rejected sweep %q has a status record (code %d)", id, code)
		}
		matches, _ := filepath.Glob(filepath.Join(dir, id+"*"))
		if len(matches) != 0 {
			t.Errorf("rejected sweep %q left files behind: %v", id, matches)
		}
	}

	// Unblock the queue: cancel slow and drain every held stream.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/sweeps/slow", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	for sc.Scan() {
	}
	for psc.Scan() {
	}
	for osc.Scan() {
	}

	// With the slots free and the old sweep finished, the same id may rerun.
	waitFor(t, func() bool {
		st, _ := getStatus(t, hs.URL, "slow")
		return st.State != StateRunning && st.State != StateQueued
	})
	quick := tinySpec("slow")
	events := runSweep(t, hs.URL, quick)
	if events[len(events)-1].Type != "done" {
		t.Errorf("rerun under a retired id failed: %+v", events[len(events)-1])
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestHealthz(t *testing.T) {
	_, hs := newTestServer(t, Config{Sessions: 2, DataDir: t.TempDir()})
	runSweep(t, hs.URL, tinySpec("healthy", 32, 64))

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
	if len(h.Sessions) != 2 {
		t.Fatalf("%d sessions, want 2", len(h.Sessions))
	}
	var cells int
	for _, sh := range h.Sessions {
		cells += sh.CheckpointCells
	}
	if cells != 2 {
		t.Errorf("sessions hold %d cells, want 2", cells)
	}
	if h.Sweeps.Done != 1 || h.Sweeps.Running != 0 {
		t.Errorf("sweep counts: %+v", h.Sweeps)
	}
}

func TestListAndUnknownSweep(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	runSweep(t, hs.URL, tinySpec("listed"))

	resp, err := http.Get(hs.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Sweeps []SweepStatus `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Sweeps) != 1 || body.Sweeps[0].ID != "listed" {
		t.Errorf("list: %+v", body.Sweeps)
	}
	if _, code := getStatus(t, hs.URL, "nope"); code != http.StatusNotFound {
		t.Errorf("unknown sweep: %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/sweeps/nope", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown: %d, want 404", dresp.StatusCode)
	}
}

// TestServerAssignsID covers id generation and the X-Sweep-Id header.
func TestServerAssignsID(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	spec := tinySpec("")
	resp := postSpec(t, hs.URL, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Sweep-Id")
	events := readEvents(t, resp)
	if id == "" || !strings.HasPrefix(id, "sweep-") {
		t.Errorf("X-Sweep-Id = %q", id)
	}
	if events[0].SweepID != id {
		t.Errorf("stream sweep_id %q != header %q", events[0].SweepID, id)
	}
	if _, code := getStatus(t, hs.URL, id); code != http.StatusOK {
		t.Errorf("GET by assigned id: %d", code)
	}
}

// TestShutdownCancelsSweeps pins Close semantics: running sweeps end as
// canceled with their streams closed by a typed error event.
func TestShutdownCancelsSweeps(t *testing.T) {
	s, hs := newTestServer(t, Config{DataDir: t.TempDir()})
	slow := tinySpec("shutdown", 8, 16, 32, 64)
	slow.SAIterations = 3000
	slow.Restarts = 6
	slow.Workers = 1

	resp := postSpec(t, hs.URL, slow)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() { // start event: sweep is registered
		t.Fatal("no start event")
	}
	s.Close()
	var last Event
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	if last.Type != "error" {
		t.Fatalf("shutdown stream ended with %+v", last)
	}
	// New work is refused while closing.
	refused := postSpec(t, hs.URL, tinySpec("late"))
	refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST after Close: %d, want 503", refused.StatusCode)
	}
	if s.base.Err() == nil {
		t.Error("base context not canceled")
	}
}

// TestSweepHistorySurvivesRestart pins the status-persistence satellite:
// GET /sweeps on a restarted server must list the predecessor's finished
// sweeps with their final state, best candidate and stats.
func TestSweepHistorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, hsA := newTestServer(t, Config{DataDir: dir})
	runSweep(t, hsA.URL, tinySpec("history-1", 32, 64))
	runSweep(t, hsA.URL, tinySpec("history-2", 32, 64))
	wantSt, code := getStatus(t, hsA.URL, "history-1")
	if code != http.StatusOK || wantSt.State != StateDone {
		t.Fatalf("first server status: %d %+v", code, wantSt)
	}
	hsA.Close()

	_, hsB := newTestServer(t, Config{DataDir: dir})
	st, code := getStatus(t, hsB.URL, "history-1")
	if code != http.StatusOK {
		t.Fatalf("restarted server lost sweep history-1 (status %d)", code)
	}
	if st.State != StateDone || st.Best == nil || st.Stats == nil {
		t.Fatalf("restored record incomplete: %+v", st)
	}
	if st.Best.Arch != wantSt.Best.Arch || st.Best.Objective != wantSt.Best.Objective {
		t.Errorf("restored best %+v != original %+v", st.Best, wantSt.Best)
	}
	if !st.Checkpoint {
		t.Error("restored record lost its checkpoint flag")
	}

	// The list endpoint sees both, in start order.
	resp, err := http.Get(hsB.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Sweeps []SweepStatus `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 2 || list.Sweeps[0].ID != "history-1" || list.Sweeps[1].ID != "history-2" {
		t.Fatalf("restored history wrong: %+v", list.Sweeps)
	}

	// Re-POSTing a restored id supersedes the record (resume), as before.
	ev := runSweep(t, hsB.URL, tinySpec("history-1", 32, 64))
	if done := ev[len(ev)-1]; done.Type != "done" || done.Stats.ResumedCells != done.Stats.Cells {
		t.Errorf("resume over restored history record failed: %+v", ev[len(ev)-1])
	}
}

// TestDamagedStatusRecordSkipped: a corrupt status file must not break
// startup or hide the healthy records.
func TestDamagedStatusRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	_, hsA := newTestServer(t, Config{DataDir: dir})
	runSweep(t, hsA.URL, tinySpec("ok-sweep", 32, 64))
	hsA.Close()
	if err := os.WriteFile(filepath.Join(dir, "broken.status.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, hsB := newTestServer(t, Config{DataDir: dir})
	if _, code := getStatus(t, hsB.URL, "ok-sweep"); code != http.StatusOK {
		t.Errorf("healthy record lost next to a damaged one (status %d)", code)
	}
	if _, code := getStatus(t, hsB.URL, "broken"); code != http.StatusNotFound {
		t.Errorf("damaged record should be absent, got status %d", code)
	}
}
