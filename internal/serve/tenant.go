// Per-tenant queue state for the sweep queue: one FIFO of waiting jobs per
// priority class, the tenant's deficit-round-robin credit per class, and
// the counters the health endpoint reports.
package serve

import "gemini/internal/dse"

// tenantState is one tenant's slice of the sweep queue. All fields are
// guarded by the owning sweepQueue's mutex.
type tenantState struct {
	name   string
	weight int

	qInteractive []*job
	qBatch       []*job

	defInteractive int
	defBatch       int

	running     int   // dispatched jobs
	dispatched  int64 // lifetime dispatch count
	preemptions int64 // lifetime preemption-yield count
	rejected    int64 // lifetime admission rejections
}

// queueFor returns the tenant's waiting FIFO for one class.
func (t *tenantState) queueFor(class dse.SweepPriority) *[]*job {
	if class == dse.PriorityBatch {
		return &t.qBatch
	}
	return &t.qInteractive
}

// waiting is the tenant's total waiting-job count across classes, the
// quantity the admission quota bounds.
func (t *tenantState) waiting() int {
	return len(t.qInteractive) + len(t.qBatch)
}

// head returns the tenant's next waiting job in one class without removing
// it, or nil.
func (t *tenantState) head(class dse.SweepPriority) *job {
	q := *t.queueFor(class)
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

// heads returns the next waiting job of each non-empty class (for the FIFO
// baseline's global-oldest scan).
func (t *tenantState) heads() []*job {
	var hs []*job
	if h := t.head(dse.PriorityInteractive); h != nil {
		hs = append(hs, h)
	}
	if h := t.head(dse.PriorityBatch); h != nil {
		hs = append(hs, h)
	}
	return hs
}

// push appends a job to its class FIFO — or prepends it when front is set,
// which is how a preempted job keeps its place for resume.
func (t *tenantState) push(j *job, front bool) {
	q := t.queueFor(j.priority)
	if front {
		*q = append([]*job{j}, *q...)
		return
	}
	*q = append(*q, j)
}

// remove deletes a specific job from its class FIFO (dispatch or abandon).
func (t *tenantState) remove(j *job) {
	q := t.queueFor(j.priority)
	for i, x := range *q {
		if x == j {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
}

// deficit returns the tenant's round-robin credit in one class.
func (t *tenantState) deficit(class dse.SweepPriority) int {
	if class == dse.PriorityBatch {
		return t.defBatch
	}
	return t.defInteractive
}

// setDeficit stores the tenant's round-robin credit in one class.
func (t *tenantState) setDeficit(class dse.SweepPriority, d int) {
	if class == dse.PriorityBatch {
		t.defBatch = d
	} else {
		t.defInteractive = d
	}
}
