// Golden tests for the NDJSON event schema, and re-attach fidelity for
// GET /sweeps/{id}/stream. The golden files under testdata/ pin the exact
// wire shape: a renamed or dropped JSON field breaks them loudly.
// Regenerate deliberately with: go test ./internal/serve -run Golden -update
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// canonicalLines renders events one JSON object per line with wall-clock
// fields scrubbed, the comparable form of an NDJSON stream.
func canonicalLines(t *testing.T, events []Event) string {
	t.Helper()
	var b strings.Builder
	for _, ev := range events {
		ev.ElapsedMS = 0
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(raw)
		b.WriteByte('\n')
	}
	return b.String()
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("stream diverges from %s (regenerate with -update if the change is intended)\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestStreamGoldenAndReattach runs a fixed-seed racing sweep single-worker
// (fully deterministic event order), pins the whole NDJSON stream against a
// golden file, and asserts GET /sweeps/{id}/stream replays it byte-for-byte.
func TestStreamGoldenAndReattach(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	spec := tinySpec("golden", 8, 32, 64)
	spec.Workers = 1
	spec.Seed = 7
	spec.Racing = true
	spec.Restarts = 4
	spec.SAIterations = 50

	events := runSweep(t, hs.URL, spec)
	live := canonicalLines(t, events)
	checkGolden(t, "stream.golden", live)

	// Re-attach: the replay endpoint must reproduce the POST stream exactly
	// — same events, same order, same encoding.
	resp, err := http.Get(hs.URL + "/sweeps/golden/stream")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("replay Content-Type = %q", ct)
	}
	replayed := readEvents(t, resp)
	if replay := canonicalLines(t, replayed); replay != live {
		t.Errorf("re-attached stream diverges from the live one:\n got:\n%s\nwant:\n%s", replay, live)
	}

	// A second re-attach mid-history must also terminate (closed log).
	resp2, err := http.Get(hs.URL + "/sweeps/golden/stream")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp2.Body)
	n := 0
	for sc.Scan() {
		n++
	}
	resp2.Body.Close()
	if n != len(events) {
		t.Errorf("second replay returned %d lines, want %d", n, len(events))
	}

	// Unknown sweeps 404 like the status endpoint.
	resp3, err := http.Get(hs.URL + "/sweeps/nope/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep stream: %d, want 404", resp3.StatusCode)
	}
}

// TestEventSchemaGolden pins the canonical encoding of every event type —
// including the queue lifecycle events (queued, preempted, resumed) — so
// wire-schema drift is a deliberate golden-file update, never an accident.
func TestEventSchemaGolden(t *testing.T) {
	events := []Event{
		{Type: "queued", SweepID: "s1", Tenant: "acme", Priority: "batch", Position: 3},
		{Type: "start", SweepID: "s1", Candidates: 2, Cells: 2, Models: []string{"tinycnn"}, CheckpointCells: 1},
		{Type: "result", SweepID: "s1", Seq: 1, Result: &CandidateSummary{
			Arch: "x4g1024n32d0.5", Chiplets: 4, Cores: 16, Status: "ok",
			Objective: 1.25, MCUSD: 100.5, EnergyJ: 0.25, DelayS: 0.5, EDP: 0.125,
		}},
		{Type: "rung", SweepID: "s1", Rung: &RungSummary{Rung: 1, Budget: 2, Candidates: 4, Survivors: 2}},
		{Type: "preempted", SweepID: "s1", Tenant: "acme", Priority: "batch", CheckpointCells: 2},
		{Type: "resumed", SweepID: "s1", Tenant: "acme", Priority: "batch", CheckpointCells: 2},
		{Type: "done", SweepID: "s1", Best: &CandidateSummary{Arch: "x4g1024n32d0.5", Status: "ok"}, Stats: &StatsSummary{
			Order: "bound", Candidates: 2, Cells: 2, ResumedCells: 2,
		}},
		{Type: "error", SweepID: "s1", Error: "sweep canceled: context canceled"},
	}
	var b bytes.Buffer
	for _, ev := range events {
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(raw)
		b.WriteByte('\n')
	}
	checkGolden(t, "events.golden", b.String())
}
