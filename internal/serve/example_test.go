package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"gemini/internal/dse"
	"gemini/internal/serve"
)

// Example_sweep is the minimal service round trip: start an in-process
// sweep server, POST a one-candidate sweep spec, and consume the NDJSON
// event stream. examples/serve runs the same flow against a real listener.
func Example_sweep() {
	srv := serve.New(serve.Config{})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	spec := dse.Spec{
		ID: "example",
		Space: dse.SpaceSpec{
			TOPS: 72, Cuts: []int{1}, DRAMPerTOPS: []float64{2},
			NoCBWs: []float64{32}, D2DRatios: []float64{0.5},
			GLBsKB: []int{1024}, MACs: []int{1024},
		},
		Models:       []string{"tinycnn"},
		SAIterations: 30,
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(hs.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev serve.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			panic(err)
		}
		switch ev.Type {
		case "start":
			fmt.Printf("start: %d candidate(s), %d cell(s)\n", ev.Candidates, ev.Cells)
		case "result":
			fmt.Printf("result %d: %s\n", ev.Seq, ev.Result.Status)
		case "done":
			fmt.Printf("done: best is %s, resumed %d cell(s)\n", ev.Best.Status, ev.Stats.ResumedCells)
		}
	}
	// Output:
	// start: 1 candidate(s), 1 cell(s)
	// result 1: ok
	// done: best is ok, resumed 0 cell(s)
}
