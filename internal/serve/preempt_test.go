// End-to-end preemption over HTTP: an interactive sweep arriving on a full
// 1-slot pool preempts a running batch sweep, which checkpoints, parks,
// resumes after the interactive sweep finishes, and completes having
// recomputed zero settled cells — the PR's acceptance criterion.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"gemini/internal/dse"
)

func TestPreemptionResumesWithZeroRecompute(t *testing.T) {
	_, hs := newTestServer(t, Config{DataDir: t.TempDir(), WorkerSlots: 1})

	batch := tinySpec("bulk-sweep", 8, 16, 32, 64)
	batch.Tenant = "bulk"
	batch.Priority = string(dse.PriorityBatch)
	batch.Workers = 1
	batch.SAIterations = 2000
	batch.Restarts = 6

	resp := postSpec(t, hs.URL, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch POST: %d", resp.StatusCode)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := func() Event {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("batch stream ended early: %v", sc.Err())
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad batch stream line %q: %v", sc.Text(), err)
		}
		return ev
	}
	if ev := next(); ev.Type != "start" {
		t.Fatalf("first batch event %q, want start (uncontended dispatch)", ev.Type)
	}
	// Let at least one candidate settle so the preemption has cells to
	// carry across.
	for {
		if ev := next(); ev.Type == "result" {
			break
		}
	}

	// The interactive sweep arrives on a full pool: it must queue, preempt
	// the batch sweep, run, and finish first.
	interactive := tinySpec("dev-sweep")
	interactive.Tenant = "dev"
	interactive.Workers = 1
	type streamOut struct {
		events []Event
		err    error
	}
	devc := make(chan streamOut, 1)
	go func() {
		body, err := json.Marshal(interactive)
		if err != nil {
			devc <- streamOut{err: err}
			return
		}
		r, err := http.Post(hs.URL+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			devc <- streamOut{err: err}
			return
		}
		defer r.Body.Close()
		var out streamOut
		dsc := bufio.NewScanner(r.Body)
		dsc.Buffer(make([]byte, 1<<20), 1<<20)
		for dsc.Scan() {
			var ev Event
			if err := json.Unmarshal(dsc.Bytes(), &ev); err != nil {
				out.err = err
				break
			}
			out.events = append(out.events, ev)
		}
		if out.err == nil {
			out.err = dsc.Err()
		}
		devc <- out
	}()

	// The batch stream must now show the preemption cycle, then finish.
	var preempted, resumed, done Event
	for done.Type == "" {
		switch ev := next(); ev.Type {
		case "preempted":
			if preempted.Type != "" {
				t.Fatal("batch sweep preempted twice")
			}
			preempted = ev
		case "resumed":
			resumed = ev
		case "done":
			done = ev
		case "result", "rung":
		default:
			t.Fatalf("unexpected batch event: %+v", ev)
		}
	}
	if preempted.Type == "" || resumed.Type == "" {
		t.Fatalf("batch stream missing preemption cycle: preempted=%q resumed=%q", preempted.Type, resumed.Type)
	}
	if preempted.Tenant != "bulk" || preempted.Priority != "batch" {
		t.Errorf("preempted event identity = %s/%s", preempted.Tenant, preempted.Priority)
	}
	if preempted.CheckpointCells == 0 {
		t.Error("preempted with zero settled cells; the test meant to carry work across")
	}
	if resumed.CheckpointCells != preempted.CheckpointCells {
		t.Errorf("resumed with %d checkpoint cells, preempted with %d", resumed.CheckpointCells, preempted.CheckpointCells)
	}
	// The acceptance criterion: the resumed run restored every cell that
	// was settled at preemption time — zero recompute.
	if done.Stats == nil || done.Stats.ResumedCells != preempted.CheckpointCells {
		t.Errorf("final stats resumed %d cells, want the %d settled at preemption",
			done.Stats.ResumedCells, preempted.CheckpointCells)
	}

	dev := <-devc
	if dev.err != nil {
		t.Fatalf("interactive stream: %v", dev.err)
	}
	if len(dev.events) < 3 || dev.events[0].Type != "queued" || dev.events[1].Type != "start" {
		t.Fatalf("interactive stream should open queued then start: %+v", dev.events)
	}
	if last := dev.events[len(dev.events)-1]; last.Type != "done" {
		t.Errorf("interactive sweep ended with %q", last.Type)
	}

	// Status and health surface the cycle.
	st, _ := getStatus(t, hs.URL, "bulk-sweep")
	if st.Preemptions != 1 || st.Tenant != "bulk" || st.Priority != "batch" {
		t.Errorf("batch status: preemptions=%d tenant=%s priority=%s", st.Preemptions, st.Tenant, st.Priority)
	}
	hr, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Queue == nil || h.Queue.Preemptions != 1 || h.Queue.Resumes != 1 {
		t.Errorf("health queue = %+v, want 1 preemption and 1 resume", h.Queue)
	}
}
