// Package loading for the lint suite: a standard-library-only substitute
// for go/packages. Module packages are parsed from source and type-checked
// recursively; standard-library imports are satisfied by the compiler's
// source importer, so the loader needs neither export data nor any external
// dependency.

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: syntax, type information and
// the pre-indexed //gemini: suppression comments.
type Package struct {
	// Path is the package's import path (module packages) or its directory
	// (packages loaded by directory, e.g. analyzer testdata).
	Path string
	// Dir is the directory the package was parsed from.
	Dir string
	// Fset positions every file in the package (shared across one Loader).
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records expression types, uses, defs and selections.
	TypesInfo *types.Info

	// suppressions indexes //gemini:<key> comments carrying a reason:
	// key -> filename -> line.
	suppressions map[string]map[string]map[int]bool
}

// Loader loads and type-checks module packages for analysis. One Loader
// shares a FileSet, a module root and an import cache across all loads.
type Loader struct {
	fset *token.FileSet
	// root is the module root directory, modPath the module's import path.
	root    string
	modPath string
	// std satisfies standard-library imports from $GOROOT source.
	std types.Importer
	// cache memoizes loaded module packages by directory.
	cache map[string]*Package
	// loading guards against import cycles.
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir (the
// nearest enclosing go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the module
// root and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		raw, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(raw), "\n") {
				line = strings.TrimSpace(line)
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(name), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
	}
}

// Load resolves the patterns (import paths, directories, or the ./...
// wildcard) and returns the matching packages, type-checked, sorted by
// path. Directories without buildable Go files are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walk(l.root)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				dirs[d] = true
			}
		case strings.HasSuffix(pat, "/..."):
			base, err := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, err
			}
			walked, err := l.walk(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				dirs[d] = true
			}
		default:
			d, err := l.resolveDir(pat)
			if err != nil {
				return nil, err
			}
			dirs[d] = true
		}
	}
	var out []*Package
	for dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Path < out[b].Path })
	return out, nil
}

// resolveDir maps one pattern to a directory: module import paths resolve
// under the module root, everything else is a file-system path.
func (l *Loader) resolveDir(pat string) (string, error) {
	if pat == l.modPath {
		return l.root, nil
	}
	if rest, ok := strings.CutPrefix(pat, l.modPath+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), nil
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return "", err
	}
	if _, err := os.Stat(abs); err != nil {
		return "", fmt.Errorf("lint: cannot resolve pattern %q: %w", pat, err)
	}
	return abs, nil
}

// walk collects every package directory under base, skipping testdata,
// hidden directories and VCS metadata.
func (l *Loader) walk(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// hasGoFiles reports whether dir holds at least one non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir (non-test files only).
// Results are memoized, so a package reached both as a pattern and as an
// import is loaded once.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.cache[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    l.importerFor(abs),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	path := l.importPath(abs)
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}

	pkg := &Package{
		Path:         path,
		Dir:          abs,
		Fset:         l.fset,
		Files:        files,
		Types:        tpkg,
		TypesInfo:    info,
		suppressions: indexSuppressions(l.fset, files),
	}
	l.cache[abs] = pkg
	return pkg, nil
}

// importPath derives the package's import path from its location: module
// packages get their real path, out-of-module directories (testdata) are
// keyed by directory.
func (l *Loader) importPath(abs string) string {
	if abs == l.root {
		return l.modPath
	}
	if rel, err := filepath.Rel(l.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return abs
}

// moduleImporter satisfies one package's imports: module-internal paths
// load recursively from source, everything else is treated as standard
// library and delegated to the $GOROOT source importer.
type moduleImporter struct {
	l   *Loader
	dir string
}

func (l *Loader) importerFor(dir string) types.Importer {
	return &moduleImporter{l: l, dir: dir}
}

// Import loads one dependency package.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir, err := l.resolveDir(path)
		if err != nil {
			return nil, err
		}
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// indexSuppressions records, per //gemini: directive key, the file:line of
// every directive comment that carries a non-empty value — the "must state
// a reason" half of the suppression contract.
func indexSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[string]map[int]bool {
	idx := map[string]map[string]map[int]bool{}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parseDirective(c)
				if !ok || d.Value == "" {
					continue
				}
				pos := fset.Position(d.Pos)
				byFile, ok := idx[d.Key]
				if !ok {
					byFile = map[string]map[int]bool{}
					idx[d.Key] = byFile
				}
				lines, ok := byFile[pos.Filename]
				if !ok {
					lines = map[int]bool{}
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
	return idx
}
