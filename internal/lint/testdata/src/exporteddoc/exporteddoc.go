// Package exporteddoc is analyzer testdata for the documented contract:
// every exported symbol needs a doc comment.
//
//gemini:documented
package exporteddoc

// Documented is properly documented.
type Documented struct{}

type Undocumented struct{} // want `exported type Undocumented has no doc comment`

// DoThing is documented.
func DoThing() {}

func DoOther() {} // want `exported function DoOther has no doc comment`

// Touch is documented.
func (Documented) Touch() {}

func (Documented) Poke() {} // want `exported method Documented.Poke has no doc comment`

func helper() {}

type hidden struct{}

func (hidden) Exported() {}

const MaxDepth = 3 // want `exported const MaxDepth has no doc comment`

// Batch bounds for the sweep engine.
const (
	MinBatch = 1
	MaxBatch = 64
)

var Registry = map[string]int{} // want `exported var Registry has no doc comment`

var internalRegistry = map[string]int{}

func init() {
	helper()
	hidden{}.Exported()
	internalRegistry["x"] = 1
}
