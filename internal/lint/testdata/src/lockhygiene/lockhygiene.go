// Package lockhygiene is analyzer testdata: callbacks and panics inside
// non-deferred critical sections, in all the shapes the scheduler uses.
package lockhygiene

import "sync"

type sched struct {
	mu       sync.Mutex
	rw       sync.RWMutex
	onResult func(int)
	n        int
}

// badCallback is the PR 6 OnResult deadlock shape: a user callback between
// Lock and a plain Unlock, so a panicking callback leaves the lock held.
func (s *sched) badCallback(v int) {
	s.mu.Lock()
	s.onResult(v) // want `callback s.onResult called between s.mu.Lock and non-deferred s.mu.Unlock`
	s.mu.Unlock()
}

// goodDefer is the fix: the deferred unlock survives a callback panic.
func (s *sched) goodDefer(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onResult(v)
}

// goodPlain holds the lock across plain field updates only: fine.
func (s *sched) goodPlain() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// goodStatic calls a statically known method, which the analyzer trusts.
func (s *sched) goodStatic() {
	s.mu.Lock()
	s.bump()
	s.mu.Unlock()
}

func (s *sched) bump() { s.n++ }

// badPanic panics inside the critical section.
func (s *sched) badPanic() {
	s.mu.Lock()
	panic("boom") // want `panic between s.mu.Lock and non-deferred s.mu.Unlock`
	s.mu.Unlock()
}

// badParam takes the callback as a parameter: still dynamic, still flagged.
func badParam(mu *sync.Mutex, cb func()) {
	mu.Lock()
	cb() // want `callback cb called between mu.Lock and non-deferred mu.Unlock`
	mu.Unlock()
}

// badRead shows the read-lock variant.
func (s *sched) badRead(cb func() int) int {
	s.rw.RLock()
	v := cb() // want `callback cb called between s.rw.Lock and non-deferred s.rw.Unlock`
	s.rw.RUnlock()
	return v
}

// suppressed documents why holding the lock across the callback is safe.
func (s *sched) suppressed(v int) {
	s.mu.Lock()
	s.onResult(v) //gemini:lock-ok callback contract forbids panics; defer measured too slow here
	s.mu.Unlock()
}
