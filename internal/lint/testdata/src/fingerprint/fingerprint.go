// Package fingerprint is analyzer testdata: structs whose fingerprint
// functions cover, miss, stale-exclude and contradict their fields.
package fingerprint

// BadOpt has a field (B) that is neither read nor excluded.
type BadOpt struct {
	A int
	B int
	C int
}

//gemini:fingerprint-exclude BadOpt
var badOptExclusions = map[string]string{
	"C": "display-only; never affects results",
}

//gemini:fingerprint-of BadOpt
func fingerprintBad(o BadOpt) uint64 { // want `fingerprint of BadOpt does not cover field\(s\) B`
	return uint64(o.A)
}

// GoodOpt is fully covered: A directly, B through a forwarded helper, P
// excluded with a reason.
type GoodOpt struct {
	A int
	B int
	P int
}

//gemini:fingerprint-exclude GoodOpt
var goodOptExclusions = map[string]string{
	"P": "worker parallelism; identical results at any setting",
}

//gemini:fingerprint-of GoodOpt
func fingerprintGood(o GoodOpt) uint64 {
	return uint64(o.A) + helperB(o)
}

// helperB reads B on the fingerprint function's behalf; the analyzer
// follows the forwarded parameter.
func helperB(o GoodOpt) uint64 {
	return uint64(o.B)
}

// PtrOpt is covered through a pointer receiver-style helper chain.
type PtrOpt struct {
	A int
}

//gemini:fingerprint-of PtrOpt
func fingerprintPtr(o *PtrOpt) uint64 {
	return uint64(o.A)
}

// StaleOpt exercises stale and contradictory exclusion entries.
type StaleOpt struct {
	A int
}

//gemini:fingerprint-of StaleOpt
func fingerprintStale(o StaleOpt) uint64 {
	return uint64(o.A)
}

//gemini:fingerprint-exclude StaleOpt
var staleOptExclusions = map[string]string{ // want `names "Gone", which is not a field of StaleOpt` `field StaleOpt.A is both read by the fingerprint function and excluded`
	"Gone": "field was removed in a refactor",
	"A":    "wrong: the function reads this",
}

// NoReasonOpt's exclusion entry carries no reason, which defeats the
// list's purpose; the field therefore also counts as uncovered.
type NoReasonOpt struct {
	A int
	B int
}

//gemini:fingerprint-of NoReasonOpt
func fingerprintNoReason(o NoReasonOpt) uint64 { // want `fingerprint of NoReasonOpt does not cover field\(s\) B`
	return uint64(o.A)
}

//gemini:fingerprint-exclude NoReasonOpt
var noReasonOptExclusions = map[string]string{
	"B": "", // want `fingerprint exclusion for NoReasonOpt.B has no reason`
}
