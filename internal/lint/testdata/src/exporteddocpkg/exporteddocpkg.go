//gemini:documented
package exporteddocpkg // want `package exporteddocpkg has no package doc comment`
