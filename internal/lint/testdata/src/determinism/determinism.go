// Package determinism is analyzer testdata: a fully deterministic engine
// package (clock, randomness and map-order checks all active).
//
//gemini:deterministic
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// clock reads the wall clock, which a deterministic package must not.
func clock() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

// clockSuppressed documents why its wall-clock read is harmless.
func clockSuppressed() int64 {
	//gemini:nondeterministic-ok log timestamp only, never reaches results
	return time.Now().UnixNano()
}

// globalRand uses the ambient generator; seeded generators are the
// sanctioned path.
func globalRand() int {
	return rand.Intn(10) // want `global math/rand.Intn in deterministic package`
}

// seededRand is the sanctioned reproducible path.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// collectUnsorted leaks map order into the returned slice.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration order reaches an appended slice`
	}
	return keys
}

// collectSorted is the collect-then-sort idiom: deterministic.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printUnsorted serializes in iteration order.
func printUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration order reaches fmt output`
	}
}

// writeUnsorted serializes through a writer method.
func writeUnsorted(w *interface{ WriteString(string) (int, error) }, m map[string]bool) {
	for k := range m {
		(*w).WriteString(k) // want `map iteration order reaches a WriteString call`
	}
}

// sendUnsorted leaks order through a channel.
func sendUnsorted(ch chan string, m map[string]bool) {
	for k := range m {
		ch <- k // want `map iteration order reaches a channel send`
	}
}

// floatAccum accumulates floats in map order: the rounding differs run to
// run.
func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `map iteration order reaches a floating-point accumulation`
	}
	return sum
}

// intAccum is exactly commutative: fine.
func intAccum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// mapCopy writes into another map: order-insensitive.
func mapCopy(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// suppressedRange documents why its ordering is acceptable.
func suppressedRange(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //gemini:nondeterministic-ok test-only scratch, order never observed
	}
	return keys
}
