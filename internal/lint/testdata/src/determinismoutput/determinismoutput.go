// Package determinismoutput is analyzer testdata for the
// //gemini:deterministic-output mode: wall clocks are fine (service
// timestamps), but serialized output must still not depend on map order.
//
//gemini:deterministic-output
package determinismoutput

import (
	"encoding/json"
	"io"
	"time"
)

// timestamp is fine here: output-only packages may read the clock.
func timestamp() time.Time {
	return time.Now()
}

// statusJSON streams records in map order: a client diffing two identical
// states sees different bytes.
func statusJSON(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k, v := range m {
		_ = enc.Encode(map[string]int{k: v}) // want `map iteration order reaches a Encode call`
	}
}
