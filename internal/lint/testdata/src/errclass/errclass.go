// Package errclass is analyzer testdata: error identity comparisons,
// string matching and classification-dropping wraps, next to the
// errors.Is/As/%w forms that keep classification intact.
package errclass

import (
	"errors"
	"fmt"
	"strings"
)

// ErrInfeasible mirrors the engine's sentinel.
var ErrInfeasible = errors.New("infeasible")

// CellError mirrors the engine's typed cell failure.
type CellError struct{ Kind string }

func (e *CellError) Error() string { return e.Kind }

func compareEq(err error) bool {
	return err == ErrInfeasible // want `error compared with ==`
}

func compareNeq(err error) bool {
	return err != ErrInfeasible // want `error compared with !=`
}

func compareNil(err error) bool {
	return err == nil // the one sanctioned identity check
}

func compareIs(err error) bool {
	return errors.Is(err, ErrInfeasible)
}

func compareAs(err error) bool {
	var ce *CellError
	return errors.As(err, &ce)
}

func switchIdentity(err error) int {
	switch err {
	case nil:
		return 0
	case ErrInfeasible: // want `switch compares errors by identity`
		return 1
	}
	return 2
}

func stringMatch(err error) bool {
	return strings.Contains(err.Error(), "infeasible") // want `matching err.Error\(\) text with strings.Contains`
}

func flatten(err error) error {
	return fmt.Errorf("sweep failed: %v", err) // want `error flattened into fmt.Errorf without %w`
}

func wrap(err error) error {
	return fmt.Errorf("sweep failed: %w", err)
}

func suppressed(err error) bool {
	return err == ErrInfeasible //gemini:errclass-ok sentinel returned unwrapped by contract, identity is exact here
}
