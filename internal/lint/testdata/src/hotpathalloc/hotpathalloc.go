// Package hotpathalloc is analyzer testdata: allocating constructs inside
// //gemini:noalloc functions, next to the sanctioned warm-buffer idioms.
package hotpathalloc

import (
	"fmt"
	"slices"
)

type scratch struct {
	buf []int
}

// fmtCall formats on the hot path.
//
//gemini:noalloc
func fmtCall(x int) string {
	return fmt.Sprintf("%d", x) // want `fmt.Sprintf allocates`
}

// makeCall allocates a fresh buffer per call.
//
//gemini:noalloc
func makeCall(n int) []int {
	return make([]int, n) // want `make allocates`
}

// newCall heap-allocates per call.
//
//gemini:noalloc
func newCall() *scratch {
	return new(scratch) // want `new allocates`
}

// freshAppend grows a slice that starts empty every call.
//
//gemini:noalloc
func freshAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append to a fresh per-call slice allocates`
	}
	return out
}

// reusedAppend is the sanctioned idiom: re-slice a persistent buffer to
// length zero and append into its existing capacity.
//
//gemini:noalloc
func (s *scratch) reusedAppend(xs []int) []int {
	out := s.buf[:0]
	for _, x := range xs {
		out = append(out, x)
	}
	s.buf = out
	return out
}

// capturing returns a closure over a local, which escapes to the heap.
//
//gemini:noalloc
func capturing(seed int) func() int {
	total := seed
	return func() int { // want `closure capturing total allocates`
		return total
	}
}

// escape returns an address-taken composite literal.
//
//gemini:noalloc
func escape() *scratch {
	return &scratch{} // want `address-taken composite literal escapes`
}

// concat builds a string at runtime.
//
//gemini:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// boxed passes a concrete value where an interface is expected.
//
//gemini:noalloc
func boxed(x int) {
	sink(x) // want `boxing int into interface parameter allocates`
}

// boxFree passes a pointer: fits the interface word without allocating.
//
//gemini:noalloc
func boxFree(p *scratch) {
	sink(p)
}

// constArg passes a constant, which the compiler boxes statically.
//
//gemini:noalloc
func constArg() {
	sink(42)
}

// genericArg instantiates a type parameter: the constraint is an interface
// but the argument is passed concretely, so nothing is boxed.
//
//gemini:noalloc
func genericArg(xs []int) {
	slices.Sort(xs)
	clamp(xs[0], 0, 9)
}

func clamp[T int | float64](v, lo, hi T) T {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// coldError allocates only on the cold validation path, with the reason
// recorded in the suppression.
//
//gemini:noalloc
func coldError(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n) //gemini:alloc-ok cold validation path, unreachable from the hot loop
	}
	return nil
}

// unannotated functions may allocate freely.
func unannotated(n int) []int {
	return make([]int, n)
}

func sink(v any) {
	_ = v
}
