// Shared AST/type helpers for the analyzers.

package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call's static callee, or nil for dynamic calls
// (function values, callbacks) and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleePath returns the static callee's package path and name, or "", "".
func calleePath(info *types.Info, call *ast.CallExpr) (pkg, name string) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return "", ""
	}
	return f.Pkg().Path(), f.Name()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exprObject resolves an identifier (possibly parenthesized) to its object.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

// funcDecls yields every function declaration in the package.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
