// A miniature analysistest: testdata packages carry // want "regex"
// comments on the lines where an analyzer must report, and AnalyzerTest
// fails on any mismatch in either direction. Suppressed cases are simply
// lines with a suppression comment and no want — the harness verifies the
// absence of a diagnostic for free.

package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// wantRx extracts the quoted regexes of one // want comment: backtick-quoted
// (taken literally) or double-quoted (unescaped like a Go string).
var wantRx = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one // want entry: a regex a diagnostic on that line must
// match.
type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// The shared test loader: one srcimporter and package cache across every
// AnalyzerTest call, so the standard library is type-checked once per test
// binary instead of once per testdata package.
var (
	testLoaderOnce sync.Once
	testLoader     *Loader
	testLoaderErr  error
)

func sharedLoader() (*Loader, error) {
	testLoaderOnce.Do(func() { testLoader, testLoaderErr = NewLoader(".") })
	return testLoader, testLoaderErr
}

// AnalyzerTest runs one analyzer over the package in dir and checks its
// diagnostics against the package's // want comments: every want must be
// matched by a diagnostic on its line, and every diagnostic must be covered
// by a want.
func AnalyzerTest(t testing.TB, dir string, a *Analyzer) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		exps := wants[key]
		matched := false
		for _, e := range exps {
			if !e.matched && e.rx.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, e.rx)
			}
		}
	}
}

// collectWants indexes every // want comment by file:line.
func collectWants(t testing.TB, pkg *Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRx.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want string %q: %v", key, m[2], err)
						}
						pat = unq
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	return wants
}
