package lint

import (
	"encoding/json"
	"go/ast"
	"os"
	"sort"
	"strings"
	"testing"
)

func TestDeterminismAnalyzer(t *testing.T) {
	AnalyzerTest(t, "testdata/src/determinism", DeterminismAnalyzer)
}

func TestDeterminismOutputMode(t *testing.T) {
	AnalyzerTest(t, "testdata/src/determinismoutput", DeterminismAnalyzer)
}

func TestFingerprintAnalyzer(t *testing.T) {
	AnalyzerTest(t, "testdata/src/fingerprint", FingerprintAnalyzer)
}

func TestLockHygieneAnalyzer(t *testing.T) {
	AnalyzerTest(t, "testdata/src/lockhygiene", LockHygieneAnalyzer)
}

func TestHotPathAllocAnalyzer(t *testing.T) {
	AnalyzerTest(t, "testdata/src/hotpathalloc", HotPathAllocAnalyzer)
}

func TestErrClassAnalyzer(t *testing.T) {
	AnalyzerTest(t, "testdata/src/errclass", ErrClassAnalyzer)
}

func TestExportedDocAnalyzer(t *testing.T) {
	AnalyzerTest(t, "testdata/src/exporteddoc", ExportedDocAnalyzer)
}

func TestExportedDocPackageClause(t *testing.T) {
	AnalyzerTest(t, "testdata/src/exporteddocpkg", ExportedDocAnalyzer)
}

// TestLoaderModulePatterns exercises import-path and wildcard loading
// against the real module.
func TestLoaderModulePatterns(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load("gemini/internal/lint")
	if err != nil {
		t.Fatalf("load by import path: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "gemini/internal/lint" {
		t.Fatalf("load by import path: got %d packages, want exactly gemini/internal/lint", len(pkgs))
	}
	pkgs, err = l.Load("gemini/internal/...")
	if err != nil {
		t.Fatalf("load wildcard: %v", err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.Path] = true
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("wildcard load matched testdata package %s", p.Path)
		}
	}
	for _, want := range []string{"gemini/internal/dse", "gemini/internal/eval", "gemini/internal/sa"} {
		if !seen[want] {
			t.Errorf("wildcard load missed %s (got %v)", want, pkgs)
		}
	}
}

// TestSuiteCleanOnRepo is the regression pin for the suite's first real run:
// every engine and command package must pass every analyzer with zero
// findings. Any new finding is either a real regression (fix it) or a
// deliberate exception (suppress it with a reasoned //gemini:*-ok comment).
func TestSuiteCleanOnRepo(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load("gemini/internal/...", "gemini/cmd/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestNoallocAnnotationsMatchBenchCoverage ties the //gemini:noalloc
// annotation set to measured zero-allocation evidence: every function
// covered by a 0 allocs/op benchmark in BENCH_1.json (per the coverage table
// below) or by a testing.AllocsPerRun pin must be annotated, and every
// annotated function in the module must appear in exactly that evidence set.
// Annotating an unmeasured function or measuring an unannotated one fails
// here, so the analyzer's reach and the benchmarks cannot drift apart.
func TestNoallocAnnotationsMatchBenchCoverage(t *testing.T) {
	// Functions whose 0 allocs/op behavior each BENCH_1 benchmark exercises
	// end to end.
	benchCover := map[string][]string{
		"BenchmarkEvaluateGroup": {
			"gemini/internal/core.AnalyzeInto",
			"gemini/internal/eval.Evaluator.EvaluateGroup",
			"gemini/internal/eval.Evaluator.computeGroup",
			"gemini/internal/eval.Evaluator.evaluateAnalysis",
		},
	}
	// Functions pinned by testing.AllocsPerRun instead of a BENCH_1 entry
	// (internal/sa/alloc_test.go, internal/noc/alloc_test.go).
	allocsPerRunPins := []string{
		"gemini/internal/sa.measure",
		"gemini/internal/sa.state.cost",
		"gemini/internal/noc.Cut.SideOf",
	}

	raw, err := os.ReadFile("../../BENCH_1.json")
	if err != nil {
		t.Fatalf("reading BENCH_1.json: %v", err)
	}
	var doc struct {
		Benchmarks map[string]struct {
			Optimized struct {
				AllocsPerOp float64 `json:"allocs_per_op"`
			} `json:"optimized"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing BENCH_1.json: %v", err)
	}

	expected := map[string]bool{}
	for name, b := range doc.Benchmarks {
		if b.Optimized.AllocsPerOp != 0 {
			continue
		}
		funcs, ok := benchCover[name]
		if !ok {
			t.Errorf("BENCH_1 benchmark %s is 0 allocs/op but has no entry in the coverage table", name)
			continue
		}
		for _, f := range funcs {
			expected[f] = true
		}
	}
	for _, f := range allocsPerRunPins {
		expected[f] = true
	}

	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load("gemini/internal/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	annotated := map[string]bool{}
	for _, pkg := range pkgs {
		for _, name := range NoallocFuncs(pkg) {
			annotated[pkg.Path+"."+name] = true
		}
	}

	var missing, extra []string
	for f := range expected {
		if !annotated[f] {
			missing = append(missing, f)
		}
	}
	for f := range annotated {
		if !expected[f] {
			extra = append(extra, f)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	for _, f := range missing {
		t.Errorf("%s has measured 0 allocs/op coverage but no //gemini:noalloc annotation", f)
	}
	for _, f := range extra {
		t.Errorf("%s is annotated //gemini:noalloc but has no benchmark or AllocsPerRun evidence", f)
	}
}

// TestDirectiveParsing pins the //gemini: comment grammar.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		text      string
		key, val  string
		directive bool
	}{
		{"//gemini:noalloc", "noalloc", "", true},
		{"//gemini:fingerprint-of Options", "fingerprint-of", "Options", true},
		{"//gemini:lock-ok callback cannot panic", "lock-ok", "callback cannot panic", true},
		{"// gemini:noalloc", "", "", false},
		{"// ordinary comment mentioning //gemini:noalloc inline", "", "", false},
		{"//gemini:", "", "", false},
	}
	for _, c := range cases {
		d, ok := parseDirective(&ast.Comment{Text: c.text})
		if ok != c.directive || d.Key != c.key || d.Value != c.val {
			t.Errorf("parseDirective(%q) = %+v, %v; want key=%q val=%q ok=%v", c.text, d, ok, c.key, c.val, c.directive)
		}
	}
}
