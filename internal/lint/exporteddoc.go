// The exporteddoc analyzer: the godoc contract formerly enforced by a
// standalone exported-doc walk, as an analyzer so one binary owns all
// custom static analysis. Packages opt in with //gemini:documented; every
// exported top-level symbol (and the package itself) must carry a doc
// comment.

package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ExportedDocAnalyzer enforces doc comments on the package clause and every
// exported type, function, method-on-exported-type, and const/var name in
// packages annotated //gemini:documented.
var ExportedDocAnalyzer = &Analyzer{
	Name: "exporteddoc",
	Doc: "in //gemini:documented packages, the package and every exported " +
		"symbol must have a doc comment (the exported-doc contract)",
	Run: runExportedDoc,
}

func runExportedDoc(pass *Pass) error {
	if !pass.Pkg.PackageDirective("documented") {
		return nil
	}
	hasPkgDoc := false
	exportedTypes := map[string]bool{}
	for _, f := range pass.Pkg.Files {
		if realComment(f.Doc) {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
					exportedTypes[ts.Name.Name] = true
				}
			}
		}
	}
	if !hasPkgDoc {
		pass.Reportf(pass.Pkg.Files[0].Package, "package %s has no package doc comment", pass.Pkg.Types.Name())
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if recv := docRecvType(d); recv != "" && !exportedTypes[recv] {
					continue // method on an unexported type, invisible in godoc
				}
				if !realComment(d.Doc) {
					pass.Reportf(d.Pos(), "exported %s %s has no doc comment", docFuncKind(d), docFuncName(d))
				}
			case *ast.GenDecl:
				checkGenDeclDocs(pass, d)
			}
		}
	}
	return nil
}

// checkGenDeclDocs checks one const/var/type block. A doc comment on the
// block covers its specs (grouped constants are conventionally documented
// once); without one, every exported spec needs its own comment.
func checkGenDeclDocs(pass *Pass, d *ast.GenDecl) {
	kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
	if kind == "" { // import blocks
		return
	}
	blockDoc := realComment(d.Doc)
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && !blockDoc && !realComment(sp.Doc) {
				pass.Reportf(sp.Pos(), "exported type %s has no doc comment", sp.Name.Name)
			}
		case *ast.ValueSpec:
			if blockDoc || realComment(sp.Doc) || realComment(sp.Comment) {
				continue
			}
			for _, n := range sp.Names {
				if n.IsExported() {
					pass.Reportf(n.Pos(), "exported %s %s has no doc comment (or block comment)", kind, n.Name)
				}
			}
		}
	}
}

// realComment reports whether the comment group contains actual prose:
// machine directives (//gemini:...) and analyzer-test // want markers do not
// document anything, so a symbol whose only comment is an annotation still
// needs a doc sentence.
func realComment(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "gemini:") ||
			strings.HasPrefix(text, "want `") || strings.HasPrefix(text, `want "`) {
			continue
		}
		if text != "" {
			return true
		}
	}
	return false
}

// docRecvType resolves a method's receiver base type name.
func docRecvType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func docFuncKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func docFuncName(d *ast.FuncDecl) string {
	if recv := docRecvType(d); recv != "" {
		return recv + "." + d.Name.Name
	}
	return d.Name.Name
}
