// The hotpathalloc analyzer: functions annotated //gemini:noalloc are the
// PR 1 zero-allocation hot loop (AnalyzeInto, the EvaluateGroup pipeline,
// the SA move measurement). Their 0 allocs/op is pinned by benchmarks, but
// benchmarks only run in CI's bench job; this check catches the common
// allocation regressions at vet speed, on every build, in the diff that
// introduces them.
//
// Flagged constructs: fmt calls, closures capturing locals, make/new,
// appends to fresh (per-call) slices, address-taken composite literals,
// string concatenation, and implicit boxing of non-pointer values into
// interface arguments. The sanctioned warm-buffer idioms stay unflagged:
// appending to a reused buffer (a struct field, or a local re-sliced from
// one, like `buf := sc.buf[:0]`), writing to a reused map, and passing
// pointers through interfaces (pointers box without allocating).

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAllocAnalyzer flags allocating constructs in //gemini:noalloc
// functions. Cold paths inside a hot function (error returns) are
// suppressed per line with //gemini:alloc-ok <reason>.
var HotPathAllocAnalyzer = &Analyzer{
	Name: "hotpathalloc",
	Doc: "no allocating constructs (fmt, capturing closures, make/new, " +
		"fresh-slice append, string concat, value-into-interface boxing) in " +
		"//gemini:noalloc functions; suppress cold paths with " +
		"//gemini:alloc-ok <reason>",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, fd := range funcDecls(pass.Pkg) {
		if _, ok := hasDirective(fd.Doc, "noalloc"); !ok {
			continue
		}
		checkNoAlloc(pass, fd)
	}
	return nil
}

// NoallocFuncs returns the names of the package's //gemini:noalloc
// functions ("Recv.Name" for methods), for the annotation-coverage test
// that ties annotations to the 0 allocs/op benchmarks.
func NoallocFuncs(pkg *Package) []string {
	var out []string
	for _, fd := range funcDecls(pkg) {
		if _, ok := hasDirective(fd.Doc, "noalloc"); !ok {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			name = recvTypeName(fd.Recv.List[0].Type) + "." + name
		}
		out = append(out, name)
	}
	return out
}

// recvTypeName renders a receiver type expression's base identifier.
func recvTypeName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return x.Name
		default:
			return types.ExprString(e)
		}
	}
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if name, ok := captures(pass, fd, e); ok {
				pass.Reportf(e.Pos(), "closure capturing %s allocates in //gemini:noalloc %s: hoist the closure or pass state explicitly", name, fd.Name.Name)
			}
			return false // do not descend: the literal body runs elsewhere
		case *ast.CallExpr:
			checkAllocCall(pass, fd, e)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "address-taken composite literal escapes to the heap in //gemini:noalloc %s", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringExpr(info, e) && !isConstExpr(info, e) {
				pass.Reportf(e.Pos(), "string concatenation allocates in //gemini:noalloc %s", fd.Name.Name)
			}
		}
		return true
	})
}

// checkAllocCall flags allocating calls: fmt, make/new, fresh-slice append,
// and concrete-value-into-interface boxing at call boundaries.
func checkAllocCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Pkg.TypesInfo
	if pkg, name := calleePath(info, call); pkg == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates (format state + boxed arguments) in //gemini:noalloc %s", name, fd.Name.Name)
		return
	}
	switch {
	case isBuiltin(info, call, "make"):
		pass.Reportf(call.Pos(), "make allocates in //gemini:noalloc %s: hoist the buffer into reusable state", fd.Name.Name)
		return
	case isBuiltin(info, call, "new"):
		pass.Reportf(call.Pos(), "new allocates in //gemini:noalloc %s", fd.Name.Name)
		return
	case isBuiltin(info, call, "append"):
		if len(call.Args) > 0 && freshLocalSlice(pass, fd, call.Args[0]) {
			pass.Reportf(call.Pos(), "append to a fresh per-call slice allocates in //gemini:noalloc %s: reuse a buffer (b = b[:0]) instead", fd.Name.Name)
		}
		return
	}
	checkBoxing(pass, fd, call)
}

// checkBoxing flags non-pointer concrete values passed where the callee
// expects an interface — each such argument is boxed onto the heap (pointer
// and interface arguments are exempt: they fit the interface word without
// allocating in practice for reused values).
func checkBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Pkg.TypesInfo
	callee := calleeFunc(info, call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // xs... forwards an existing slice, no per-value boxing
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			// A generic parameter's underlying constraint is an interface,
			// but instantiation substitutes the concrete type: no boxing
			// happens (slices.Sort(xs) does not box xs).
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || isBoxFree(at) {
			continue
		}
		if tv := info.Types[arg]; tv.Value != nil {
			continue // constants may be boxed statically
		}
		pass.Reportf(arg.Pos(), "boxing %s into interface parameter allocates in //gemini:noalloc %s: pass a pointer or avoid the interface", at, fd.Name.Name)
	}
}

// isBoxFree reports types whose conversion to interface does not allocate
// per value: pointers, interfaces themselves, and untyped nil.
func isBoxFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan:
		return true
	case *types.Basic:
		return u.Kind() == types.UntypedNil
	}
	return false
}

// freshLocalSlice reports whether the append target is a local slice whose
// declaration makes it a per-call allocation: `var x []T`, `x := []T{...}`
// or `x := make(...)`. Locals initialized from a field or parameter (the
// reuse idiom `x := sc.buf[:0]`) and non-identifier targets are exempt.
func freshLocalSlice(pass *Pass, fd *ast.FuncDecl, target ast.Expr) bool {
	info := pass.Pkg.TypesInfo
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	if obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
		return false // package-level or outer-scope variable
	}
	fresh := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.DeclStmt:
			gd, ok := d.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for vi, name := range vs.Names {
					if info.Defs[name] != obj {
						continue
					}
					if len(vs.Values) == 0 {
						fresh = true // var x []T; x = append(x, ...) allocates
					} else if vi < len(vs.Values) {
						fresh = freshInit(info, vs.Values[vi])
					}
				}
			}
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range d.Lhs {
				name, ok := lhs.(*ast.Ident)
				if !ok || info.Defs[name] != obj || i >= len(d.Rhs) {
					continue
				}
				fresh = freshInit(info, d.Rhs[i])
			}
		}
		return true
	})
	return fresh
}

// freshInit reports whether an initializer expression denotes a fresh
// allocation (nil, empty literal, make) rather than a view of existing
// storage.
func freshInit(info *types.Info, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		return isBuiltin(info, v, "make")
	case *ast.Ident:
		return v.Name == "nil"
	}
	return false
}

// captures reports whether the function literal references a variable
// declared in the enclosing function outside the literal itself — the
// closure-capture case that forces a heap allocation for the closure (and
// often the captured variable).
func captures(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	info := pass.Pkg.TypesInfo
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		pos := v.Pos()
		if pos >= fd.Pos() && pos <= fd.End() && (pos < lit.Pos() || pos > lit.End()) {
			captured = id.Name
		}
		return true
	})
	return captured, captured != ""
}

// isStringExpr reports whether the expression has string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the expression folds to a constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	return info.Types[e].Value != nil
}
