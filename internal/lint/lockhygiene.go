// The lockhygiene analyzer: a mutex locked and then unlocked *without
// defer* must not have a panic-capable user callback between the Lock and
// the Unlock. This is exactly the PR 6 OnResult deadlock: the scheduler
// held its serialization mutex across the user's OnResult callback with a
// plain Unlock after it, so a panicking callback left the lock held forever
// and every later candidate's finish path deadlocked. The recover fixed the
// panic; the deferred unlock fixed the hang; this check keeps the pattern
// out of the tree.

package lint

import (
	"go/ast"
	"go/types"
)

// LockHygieneAnalyzer flags dynamic (callback) calls and explicit panics
// between a mu.Lock() and a non-deferred mu.Unlock() on the same statement
// list. The fix is `defer mu.Unlock()` (or hoisting the callback out of the
// critical section); //gemini:lock-ok <reason> suppresses a finding.
var LockHygieneAnalyzer = &Analyzer{
	Name: "lockhygiene",
	Doc: "no user callback or panic between mu.Lock() and a non-deferred " +
		"mu.Unlock(): a panic there leaves the lock held (the PR 6 OnResult " +
		"deadlock class); use defer mu.Unlock() or //gemini:lock-ok <reason>",
	Run: runLockHygiene,
}

func runLockHygiene(pass *Pass) error {
	for _, fd := range funcDecls(pass.Pkg) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkLockBlock(pass, block.List)
			return true
		})
	}
	return nil
}

// checkLockBlock scans one statement list for Lock .. risky .. Unlock
// windows.
func checkLockBlock(pass *Pass, stmts []ast.Stmt) {
	for i, st := range stmts {
		recv, kind := lockCall(pass, st)
		if recv == "" {
			continue
		}
		// Find the matching non-deferred unlock later in the same list. A
		// deferred unlock anywhere ends the search: the lock is panic-safe.
		for j := i + 1; j < len(stmts); j++ {
			if isDeferredUnlock(pass, stmts[j], recv, kind) {
				break
			}
			if isUnlock(pass, stmts[j], recv, kind) {
				reportRisky(pass, stmts[i+1:j], recv)
				break
			}
		}
	}
}

// lockCall matches an expression statement of the form recv.Lock() or
// recv.RLock() and returns the receiver's printed form and the lock kind
// ("" when the statement is not a lock).
func lockCall(pass *Pass, st ast.Stmt) (recv, kind string) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return "", ""
	}
	return lockExpr(pass, es.X, "Lock", "RLock")
}

// lockExpr matches call as recv.<name>() for one of names.
func lockExpr(pass *Pass, e ast.Expr, names ...string) (recv, kind string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	for _, name := range names {
		if sel.Sel.Name == name {
			return types.ExprString(sel.X), name
		}
	}
	return "", ""
}

// isUnlock matches the plain unlock statement paired with kind.
func isUnlock(pass *Pass, st ast.Stmt, recv, kind string) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	r, _ := lockExpr(pass, es.X, unlockName(kind))
	return r == recv
}

// isDeferredUnlock matches `defer recv.Unlock()` for the lock kind.
func isDeferredUnlock(pass *Pass, st ast.Stmt, recv, kind string) bool {
	ds, ok := st.(*ast.DeferStmt)
	if !ok {
		return false
	}
	r, _ := lockExpr(pass, ds.Call, unlockName(kind))
	return r == recv
}

func unlockName(kind string) string {
	if kind == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// reportRisky flags panic-capable calls inside the critical section:
// dynamic calls (function values, callback fields — the OnResult class)
// and explicit panics.
func reportRisky(pass *Pass, stmts []ast.Stmt, recv string) {
	info := pass.Pkg.TypesInfo
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // not executed here
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isBuiltin(info, call, "panic") {
				pass.Reportf(call.Pos(), "panic between %s.Lock and non-deferred %s.Unlock leaves the lock held: use defer %s.Unlock()", recv, recv, recv)
				return true
			}
			if name, ok := dynamicCall(info, call); ok {
				pass.Reportf(call.Pos(), "callback %s called between %s.Lock and non-deferred %s.Unlock: a panicking callback leaves the lock held (the PR 6 OnResult deadlock) — use defer %s.Unlock()", name, recv, recv, recv)
			}
			return true
		})
	}
}

// dynamicCall reports whether the call goes through a function value (a
// variable, parameter or struct field of function type) rather than a
// statically known function, and names it.
func dynamicCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fun := ast.Unparen(call.Fun)
	// Type conversions are not calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return "", false
	}
	switch e := fun.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
				return e.Name, true
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if _, isSig := sel.Type().Underlying().(*types.Signature); isSig {
				return types.ExprString(e), true
			}
		}
	}
	return "", false
}
