// The determinism analyzer: no wall clocks, no ambient randomness, and no
// map-iteration order leaking into order-sensitive sinks inside packages
// that promise deterministic results. The engine's golden bit-identity
// (PR 1), fingerprint-keyed checkpoint resume (PR 2/5) and chaos-equal
// fault tolerance (PR 6) all die quietly the first time a map range decides
// the order of a serialized stream or a float accumulation.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismAnalyzer flags wall-clock reads, global math/rand use and
// order-sensitive map iteration in packages annotated //gemini:deterministic
// (full engine determinism) or //gemini:deterministic-output (serialized
// output order only: the map-range check without the clock/randomness
// check, for service packages that legitimately read the clock).
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now, global math/rand and order-sensitive map ranges " +
		"in //gemini:deterministic packages (map ranges only in " +
		"//gemini:deterministic-output packages); fix with sorted-key " +
		"iteration or //gemini:nondeterministic-ok <reason>",
	Run: runDeterminism,
}

// seededRandConstructors are the sanctioned math/rand entry points: seeded
// sources and generators are the engine's reproducibility mechanism, only
// the ambient global generator is banned.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	full := pass.Pkg.PackageDirective("deterministic")
	outputOnly := pass.Pkg.PackageDirective("deterministic-output")
	if !full && !outputOnly {
		return nil
	}
	for _, fd := range funcDecls(pass.Pkg) {
		if full {
			checkClockAndRand(pass, fd)
		}
		checkMapRanges(pass, fd)
	}
	return nil
}

// checkClockAndRand flags time.Now and global math/rand calls.
func checkClockAndRand(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := calleePath(info, call)
		switch {
		case pkg == "time" && name == "Now":
			pass.Reportf(call.Pos(), "time.Now in deterministic package %s: results must not depend on the wall clock (inject the value or suppress with //gemini:nondeterministic-ok <reason>)", pass.Pkg.Types.Name())
		case (pkg == "math/rand" || pkg == "math/rand/v2") && !seededRandConstructors[name]:
			if f := calleeFunc(info, call); f != nil && f.Signature().Recv() == nil {
				pass.Reportf(call.Pos(), "global %s.%s in deterministic package %s: use a seeded *rand.Rand so runs are reproducible", pkg, name, pass.Pkg.Types.Name())
			}
		}
		return true
	})
}

// checkMapRanges flags `range` over a map whose body feeds an
// order-sensitive sink: an append to a slice that is not subsequently
// sorted in the same function, a channel send, a write/print/encode call,
// or a floating-point accumulation. Map-to-map copies, counters and other
// commutative folds are fine and stay unflagged.
func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := info.Types[rng.X].Type; t == nil || !isMapType(t) {
			return true
		}
		for _, sink := range mapRangeSinks(pass, fd, rng) {
			pass.Reportf(sink.pos, "map iteration order reaches %s: iterate sorted keys or suppress with //gemini:nondeterministic-ok <reason>", sink.what)
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// sink is one order-sensitive use of a map range's iteration order.
type sink struct {
	pos  token.Pos
	what string
}

// writerMethods are methods whose call order determines serialized output.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Print": true, "Printf": true, "Println": true,
}

// mapRangeSinks scans one map-range body for order-sensitive sinks.
func mapRangeSinks(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) []sink {
	info := pass.Pkg.TypesInfo
	var sinks []sink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			sinks = append(sinks, sink{st.Pos(), "a channel send (receiver observes iteration order)"})
		case *ast.AssignStmt:
			sinks = append(sinks, assignSinks(pass, fd, rng, st)...)
		case *ast.CallExpr:
			if s, ok := callSink(info, st); ok {
				sinks = append(sinks, s)
			}
		}
		return true
	})
	return sinks
}

// assignSinks classifies one assignment inside a map range: growing a slice
// with append (unless sorted afterwards) and accumulating floats or strings
// with op= are order-sensitive.
func assignSinks(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, st *ast.AssignStmt) []sink {
	info := pass.Pkg.TypesInfo
	var sinks []sink
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "append") || i >= len(st.Lhs) {
				continue
			}
			target := st.Lhs[i]
			if declaredWithin(info, target, rng) {
				continue // scoped to one iteration, order cannot escape
			}
			if sortedAfter(pass, fd, rng, target) {
				continue // collect-then-sort idiom: order is re-established
			}
			sinks = append(sinks, sink{call.Pos(), "an appended slice never re-sorted in this function"})
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(st.Lhs) != 1 {
			return sinks
		}
		t := info.Types[st.Lhs[0]].Type
		if t == nil || declaredWithin(info, st.Lhs[0], rng) {
			return sinks
		}
		switch b := t.Underlying().(type) {
		case *types.Basic:
			switch {
			case b.Info()&types.IsFloat != 0:
				// Float addition is not associative: the accumulated value
				// depends on iteration order in the low bits — exactly the
				// class of divergence that breaks bit-identical goldens.
				sinks = append(sinks, sink{st.Pos(), "a floating-point accumulation (rounding depends on iteration order)"})
			case b.Info()&types.IsString != 0 && st.Tok == token.ADD_ASSIGN:
				sinks = append(sinks, sink{st.Pos(), "a string concatenation (output depends on iteration order)"})
			}
		}
	}
	return sinks
}

// callSink classifies one call inside a map range: fmt printing and
// writer/encoder methods serialize in call order.
func callSink(info *types.Info, call *ast.CallExpr) (sink, bool) {
	pkg, name := calleePath(info, call)
	if pkg == "fmt" {
		return sink{call.Pos(), "fmt output (serialized in iteration order)"}, true
	}
	if f := calleeFunc(info, call); f != nil && f.Signature().Recv() != nil && writerMethods[name] {
		return sink{call.Pos(), "a " + name + " call (serialized in iteration order)"}, true
	}
	return sink{}, false
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isb := info.Uses[id].(*types.Builtin)
	return isb
}

// declaredWithin reports whether the expression resolves to a variable
// declared inside the range statement (per-iteration locals cannot leak
// iteration order out of the loop).
func declaredWithin(info *types.Info, e ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

// sortFuncs are the sort entry points that re-establish a deterministic
// order over a collected slice.
var sortFuncs = map[string]bool{
	"sort.Sort": true, "sort.Stable": true, "sort.Slice": true, "sort.SliceStable": true,
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortedAfter reports whether target is passed to a sort function after the
// range statement, anywhere in the enclosing function — the collect-then-
// sort idiom that makes map collection deterministic.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, target ast.Expr) bool {
	info := pass.Pkg.TypesInfo
	obj := exprObject(info, target)
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		pkg, name := calleePath(info, call)
		if !sortFuncs[shortPath(pkg)+"."+name] {
			return true
		}
		arg := call.Args[0]
		if obj != nil && exprObject(info, arg) == obj {
			sorted = true
		} else if sameSelector(target, arg) {
			sorted = true
		}
		return true
	})
	return sorted
}

// shortPath reduces an import path to its last element ("sort", "slices").
func shortPath(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// sameSelector reports whether two expressions are the same simple selector
// chain (x.y.z), the buffer-field case the object comparison cannot cover.
func sameSelector(a, b ast.Expr) bool {
	sa, oka := ast.Unparen(a).(*ast.SelectorExpr)
	sb, okb := ast.Unparen(b).(*ast.SelectorExpr)
	if !oka || !okb || sa.Sel.Name != sb.Sel.Name {
		return false
	}
	ia, oka := ast.Unparen(sa.X).(*ast.Ident)
	ib, okb := ast.Unparen(sb.X).(*ast.Ident)
	if oka && okb {
		return ia.Name == ib.Name
	}
	return sameSelector(sa.X, sb.X)
}
